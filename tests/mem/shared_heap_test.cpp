#include "mem/shared_heap.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mem/address_space.hpp"

namespace lssim {
namespace {

TEST(SharedHeap, AllocationsDoNotOverlap) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  const Addr a = heap.alloc(64, 8);
  const Addr b = heap.alloc(64, 8);
  EXPECT_GE(b, a + 64);
}

TEST(SharedHeap, RespectsAlignment) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  (void)heap.alloc(3, 1);
  const Addr a = heap.alloc(64, 64);
  EXPECT_EQ(a % 64, 0u);
  const Addr b = heap.alloc(8, 256);
  EXPECT_EQ(b % 256, 0u);
}

TEST(SharedHeap, NodeLocalAllocationsLandOnRequestedNode) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  for (NodeId node = 0; node < 4; ++node) {
    for (int i = 0; i < 10; ++i) {
      const Addr a = heap.alloc_on_node(node, 128, 8);
      EXPECT_EQ(space.home_of(a), node);
      EXPECT_EQ(space.home_of(a + 127), node);
    }
  }
}

TEST(SharedHeap, NodeLocalArenaSpillsToNextOwnedPage) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  std::set<Addr> seen;
  // 40 x 512B = 20 kB > one 4 kB page: must advance through pages whose
  // home is still node 2.
  for (int i = 0; i < 40; ++i) {
    const Addr a = heap.alloc_on_node(2, 512, 8);
    EXPECT_EQ(space.home_of(a), 2);
    EXPECT_TRUE(seen.insert(a).second) << "duplicate address";
  }
}

TEST(SharedHeap, GlobalAndNodeArenasDisjoint) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  const Addr g = heap.alloc(4096, 8);
  const Addr n = heap.alloc_on_node(1, 4096, 8);
  EXPECT_TRUE(g + 4096 <= n || n + 4096 <= g);
}

TEST(SharedHeap, TracksBytesAllocated) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  (void)heap.alloc(100, 8);
  (void)heap.alloc_on_node(0, 50, 8);
  EXPECT_EQ(heap.bytes_allocated(), 150u);
}

TEST(SharedArray, ElementAddressing) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  SharedArray<std::uint64_t> arr(heap, 100);
  EXPECT_EQ(arr.size(), 100u);
  EXPECT_EQ(arr.addr(1), arr.base() + 8);
  EXPECT_EQ(arr.addr(99), arr.base() + 99 * 8);
  EXPECT_EQ(arr.base() % 8, 0u);
}

TEST(SharedArray, OnNodePlacement) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  const auto arr = SharedArray<std::uint32_t>::on_node(heap, 3, 64);
  EXPECT_EQ(space.home_of(arr.base()), 3);
}

TEST(SharedArray, DoubleBitsRoundTrip) {
  EXPECT_EQ(from_bits(to_bits(3.14159)), 3.14159);
  EXPECT_EQ(from_bits(to_bits(-0.0)), -0.0);
  EXPECT_EQ(from_bits(to_bits(1e300)), 1e300);
}

}  // namespace
}  // namespace lssim
