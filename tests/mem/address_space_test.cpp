#include "mem/address_space.hpp"

#include <gtest/gtest.h>

namespace lssim {
namespace {

TEST(AddressSpace, RoundRobinHomeAssignment) {
  AddressSpace space(4, 4096);
  EXPECT_EQ(space.home_of(0), 0);
  EXPECT_EQ(space.home_of(4095), 0);
  EXPECT_EQ(space.home_of(4096), 1);
  EXPECT_EQ(space.home_of(2 * 4096), 2);
  EXPECT_EQ(space.home_of(3 * 4096), 3);
  EXPECT_EQ(space.home_of(4 * 4096), 0);  // Wraps.
}

TEST(AddressSpace, SingleNodeOwnsEverything) {
  AddressSpace space(1, 4096);
  EXPECT_EQ(space.home_of(0), 0);
  EXPECT_EQ(space.home_of(123456789), 0);
}

TEST(AddressSpace, UntouchedMemoryReadsZero) {
  AddressSpace space(4, 4096);
  EXPECT_EQ(space.load(0x1234, 8), 0u);
  EXPECT_EQ(space.resident_pages(), 0u);
}

TEST(AddressSpace, StoreLoadRoundTrip) {
  AddressSpace space(4, 4096);
  space.store(0x100, 8, 0x1122334455667788ull);
  EXPECT_EQ(space.load(0x100, 8), 0x1122334455667788ull);
  EXPECT_EQ(space.load(0x100, 4), 0x55667788u);
  EXPECT_EQ(space.load(0x104, 4), 0x11223344u);
  EXPECT_EQ(space.load(0x100, 1), 0x88u);
}

TEST(AddressSpace, PartialStorePreservesNeighbours) {
  AddressSpace space(4, 4096);
  space.store(0x200, 8, 0xffffffffffffffffull);
  space.store(0x202, 2, 0);
  EXPECT_EQ(space.load(0x200, 8), 0xffffffff0000ffffull);
}

TEST(AddressSpace, PagesMaterializeLazily) {
  AddressSpace space(4, 4096);
  space.store(0, 4, 1);
  EXPECT_EQ(space.resident_pages(), 1u);
  space.store(4096, 4, 1);
  EXPECT_EQ(space.resident_pages(), 2u);
  space.store(8, 4, 1);  // Same first page.
  EXPECT_EQ(space.resident_pages(), 2u);
}

TEST(AddressSpace, HighAddressesWork) {
  AddressSpace space(4, 4096);
  const Addr high = Addr{1} << 40;
  space.store(high, 8, 42);
  EXPECT_EQ(space.load(high, 8), 42u);
}

TEST(AddressSpace, DistinctPagesAreIndependent) {
  AddressSpace space(2, 4096);
  space.store(100, 8, 7);
  space.store(4096 + 100, 8, 9);
  EXPECT_EQ(space.load(100, 8), 7u);
  EXPECT_EQ(space.load(4096 + 100, 8), 9u);
}

}  // namespace
}  // namespace lssim
