// Property tests for the shared heap: randomized allocation sequences
// must produce non-overlapping, correctly aligned, correctly homed
// intervals.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/shared_heap.hpp"
#include "sim/rng.hpp"

namespace lssim {
namespace {

struct Interval {
  Addr begin;
  Addr end;
};

TEST(HeapProperty, RandomAllocationsNeverOverlap) {
  for (int nodes : {1, 2, 4, 8}) {
    AddressSpace space(nodes, 4096);
    SharedHeap heap(space);
    Rng rng(static_cast<std::uint64_t>(nodes) * 1234567);
    std::vector<Interval> intervals;

    for (int i = 0; i < 500; ++i) {
      const std::uint64_t bytes = 1 + rng.next_below(2000);
      const std::uint32_t align = std::uint32_t{1}
                                  << rng.next_below(8);  // 1..128.
      Addr base;
      if (rng.next_bool(0.5)) {
        base = heap.alloc(bytes, align);
      } else {
        const NodeId node = static_cast<NodeId>(rng.next_below(
            static_cast<std::uint64_t>(nodes)));
        const std::uint64_t capped = std::min<std::uint64_t>(bytes, 4096);
        base = heap.alloc_on_node(node, capped, align);
        EXPECT_EQ(space.home_of(base), node);
        EXPECT_EQ(space.home_of(base + capped - 1), node);
        intervals.push_back({base, base + capped});
        EXPECT_EQ(base % align, 0u);
        continue;
      }
      EXPECT_EQ(base % align, 0u);
      intervals.push_back({base, base + bytes});
    }

    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_LE(intervals[i - 1].end, intervals[i].begin)
          << "overlap at interval " << i << " (nodes=" << nodes << ")";
    }
  }
}

TEST(HeapProperty, NodeArenasInterleaveWithoutCollision) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  // Alternating node allocations must stay disjoint even as every arena
  // spills across multiple pages.
  std::vector<Interval> intervals;
  for (int round = 0; round < 64; ++round) {
    for (NodeId node = 0; node < 4; ++node) {
      const Addr base = heap.alloc_on_node(node, 1024, 16);
      EXPECT_EQ(space.home_of(base), node);
      intervals.push_back({base, base + 1024});
    }
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_LE(intervals[i - 1].end, intervals[i].begin) << i;
  }
}

TEST(HeapProperty, StoresToEveryAllocationAreIndependent) {
  AddressSpace space(4, 4096);
  SharedHeap heap(space);
  Rng rng(99);
  std::vector<Addr> slots;
  for (int i = 0; i < 200; ++i) {
    slots.push_back(heap.alloc(8, 8));
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    space.store(slots[i], 8, 0xA000 + i);
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(space.load(slots[i], 8), 0xA000 + i) << i;
  }
}

}  // namespace
}  // namespace lssim
