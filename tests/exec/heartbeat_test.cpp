// Heartbeat emitter: line schema, interval-zero determinism, phase
// attribution, final-line semantics and the null-emitter no-op paths.
#include "exec/heartbeat.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace lssim {
namespace {

std::vector<Json> parse_lines(const std::string& text) {
  std::vector<Json> out;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) {
    if (line.empty()) continue;
    std::string error;
    Json doc = Json::parse(line, &error);
    EXPECT_TRUE(error.empty()) << error << " in: " << line;
    out.push_back(std::move(doc));
  }
  return out;
}

TEST(Heartbeat, IntervalZeroEmitsOneLinePerUnitPlusFinal) {
  std::ostringstream os;
  HeartbeatEmitter hb(&os, /*interval_seconds=*/0.0, /*total_units=*/3,
                      "run");
  hb.unit_done(100);
  hb.unit_done(50);
  hb.unit_done(25);
  hb.finish();
  hb.finish();  // Idempotent: no second final line.

  const std::vector<Json> lines = parse_lines(os.str());
  ASSERT_EQ(lines.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(lines[i].find("type")->as_string(), "heartbeat");
    EXPECT_EQ(lines[i].find("unit")->as_string(), "run");
    EXPECT_EQ(lines[i].find("done")->as_uint(), i + 1);
    EXPECT_EQ(lines[i].find("total")->as_uint(), 3u);
    ASSERT_NE(lines[i].find("accesses"), nullptr);
    ASSERT_NE(lines[i].find("elapsed_seconds"), nullptr);
    ASSERT_NE(lines[i].find("accesses_per_sec"), nullptr);
  }
  EXPECT_EQ(lines[3].find("type")->as_string(), "final");
  EXPECT_EQ(lines[3].find("done")->as_uint(), 3u);
  EXPECT_EQ(lines[3].find("accesses")->as_uint(), 175u);
}

TEST(Heartbeat, LongIntervalSuppressesHeartbeatsButNotFinal) {
  std::ostringstream os;
  HeartbeatEmitter hb(&os, /*interval_seconds=*/3600.0, /*total_units=*/0,
                      "trace");
  hb.unit_done(1);
  hb.unit_done(1);
  EXPECT_TRUE(os.str().empty());  // Interval far from elapsed.
  hb.finish();
  const std::vector<Json> lines = parse_lines(os.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].find("type")->as_string(), "final");
  // total_units == 0: the total member is omitted, not zero.
  EXPECT_EQ(lines[0].find("total"), nullptr);
}

TEST(Heartbeat, PhaseTimerAttributesWallTime) {
  std::ostringstream os;
  HeartbeatEmitter hb(&os, 0.0, 1, "run");
  { PhaseTimer timer(&hb, "simulate"); }
  hb.add_phase_seconds("artifacts", 1.5);
  hb.unit_done(10);
  hb.finish();

  const std::vector<Json> lines = parse_lines(os.str());
  ASSERT_EQ(lines.size(), 2u);
  const Json* phases = lines[1].find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->find("simulate"), nullptr);
  EXPECT_GE(phases->find("simulate")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(phases->find("artifacts")->as_double(), 1.5);
}

TEST(Heartbeat, NullEmitterPhaseTimerIsANoOp) {
  // PhaseTimer must be safe when heartbeats are disabled entirely.
  PhaseTimer timer(nullptr, "simulate");
  SUCCEED();
}

}  // namespace
}  // namespace lssim
