#include "exec/parallel_executor.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace lssim {
namespace {

TEST(ParallelExecutor, DefaultJobsIsPositive) {
  EXPECT_GE(default_jobs(), 1);
}

TEST(ParallelExecutor, EveryIndexRunsExactlyOnce) {
  const std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for_index(kCount, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelExecutor, MapResultsAreIndexOrdered) {
  const std::vector<int> squares =
      parallel_map<int>(50, 4, [](std::size_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(squares.size(), 50u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(ParallelExecutor, SingleJobRunsInlineOnCallerThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  parallel_for_index(seen.size(), 1, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ParallelExecutor, MoreJobsThanTasksStillRunsAll) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for_index(hits.size(), 64, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelExecutor, ZeroTasksIsANoOp) {
  bool called = false;
  parallel_for_index(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelExecutor, TaskExceptionIsRethrownToCaller) {
  std::atomic<int> completed{0};
  const auto run = [&completed](int jobs) {
    parallel_for_index(100, jobs, [&](std::size_t i) {
      if (i == 7) {
        throw std::runtime_error("task 7 failed");
      }
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  };
  EXPECT_THROW(run(4), std::runtime_error);
  // The inline (jobs == 1) path must propagate the same way.
  EXPECT_THROW(run(1), std::runtime_error);
}

TEST(ParallelExecutor, NonPositiveJobsFallsBackToDefault) {
  std::vector<std::atomic<int>> hits(16);
  parallel_for_index(hits.size(), 0, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

}  // namespace
}  // namespace lssim
