#include "stats/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace lssim {
namespace {

RunResult fake_result(ProtocolKind kind, Cycles busy, Cycles rs, Cycles ws,
                      std::uint64_t reads, std::uint64_t writes,
                      std::uint64_t other) {
  RunResult r;
  r.protocol = kind;
  r.time.busy = busy;
  r.time.read_stall = rs;
  r.time.write_stall = ws;
  r.exec_time = busy + rs + ws;
  r.traffic[0] = reads;
  r.traffic[1] = writes;
  r.traffic[2] = other;
  r.traffic_total = reads + writes + other;
  r.global_read_misses = 100;
  r.read_miss_home[0] = 100;
  return r;
}

TEST(Report, NormalizedHelper) {
  EXPECT_DOUBLE_EQ(normalized(50, 100), 50.0);
  EXPECT_DOUBLE_EQ(normalized(100, 100), 100.0);
  EXPECT_DOUBLE_EQ(normalized(1, 0), 0.0);
}

TEST(Report, PctFormatting) {
  EXPECT_EQ(pct(0.5), "50.0%");
  EXPECT_EQ(pct(0.123), "12.3%");
}

TEST(Report, BehaviorFigureMentionsAllProtocols) {
  std::vector<RunResult> results{
      fake_result(ProtocolKind::kBaseline, 50, 30, 20, 600, 300, 100),
      fake_result(ProtocolKind::kAd, 50, 30, 10, 600, 200, 100),
      fake_result(ProtocolKind::kLs, 50, 30, 5, 600, 150, 100),
  };
  std::ostringstream os;
  print_behavior_figure(os, "TestApp", results);
  const std::string out = os.str();
  EXPECT_NE(out.find("TestApp"), std::string::npos);
  EXPECT_NE(out.find("Baseline"), std::string::npos);
  EXPECT_NE(out.find("AD"), std::string::npos);
  EXPECT_NE(out.find("LS"), std::string::npos);
  EXPECT_NE(out.find("busy"), std::string::npos);
  EXPECT_NE(out.find("100.0"), std::string::npos);  // Baseline total.
}

TEST(Report, BehaviorFigureNormalizesToBaseline) {
  std::vector<RunResult> results{
      fake_result(ProtocolKind::kBaseline, 100, 0, 0, 100, 0, 0),
      fake_result(ProtocolKind::kLs, 50, 0, 0, 50, 0, 0),
  };
  std::ostringstream os;
  print_behavior_figure(os, "Half", results);
  const std::string out = os.str();
  EXPECT_NE(out.find("50.0"), std::string::npos);
}

TEST(Report, InvalidationFigurePrints) {
  std::vector<RunResult> results(3);
  results[0].ownership_acquisitions = 100;
  results[0].invalidations = 20;
  results[1].ownership_acquisitions = 50;
  results[1].invalidations = 20;
  results[2].ownership_acquisitions = 10;
  results[2].invalidations = 5;
  const std::vector<std::string> labels{"Base-4", "AD-4", "LS-4"};
  std::ostringstream os;
  print_invalidation_figure(os, "Cholesky", results, labels);
  const std::string out = os.str();
  EXPECT_NE(out.find("Cholesky"), std::string::npos);
  EXPECT_NE(out.find("Base-4"), std::string::npos);
  EXPECT_NE(out.find("global inv"), std::string::npos);
}

TEST(Report, LatencyHistogramRendering) {
  LatencyHistogram hist;
  for (int i = 0; i < 80; ++i) hist.record(1);
  for (int i = 0; i < 20; ++i) hist.record(300);
  std::ostringstream os;
  print_latency_histogram(os, "reads", hist);
  const std::string out = os.str();
  EXPECT_NE(out.find("reads"), std::string::npos);
  EXPECT_NE(out.find("100 samples"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);
  EXPECT_NE(out.find("[    256,     512)"), std::string::npos);
}

TEST(Report, TrafficMatrixRendering) {
  TrafficMatrix matrix(3);
  matrix.record(0, 1);
  matrix.record(0, 1);
  matrix.record(2, 0);
  std::ostringstream os;
  print_traffic_matrix(os, matrix);
  const std::string out = os.str();
  EXPECT_NE(out.find("traffic matrix"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Report, TimelineRendering) {
  EpochTimeline timeline(100);
  timeline.observe(150, 10, 20, 3, 2, 1);
  std::ostringstream os;
  print_timeline(os, timeline);
  const std::string out = os.str();
  EXPECT_NE(out.find("epoch timeline"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
}

TEST(Report, EmptyResultsAreSafe) {
  std::ostringstream os;
  print_behavior_figure(os, "empty", {});
  print_invalidation_figure(os, "empty", {}, {});
  EXPECT_TRUE(os.str().empty());
}

}  // namespace
}  // namespace lssim
