#include "stats/false_sharing.hpp"

#include <gtest/gtest.h>

namespace lssim {
namespace {

TEST(WordMask, SingleWordAccess) {
  EXPECT_EQ(word_mask_of(0, 4, 32, 4), 0b1u);
  EXPECT_EQ(word_mask_of(4, 4, 32, 4), 0b10u);
  EXPECT_EQ(word_mask_of(28, 4, 32, 4), 1u << 7);
}

TEST(WordMask, EightByteAccessSpansTwoWords) {
  EXPECT_EQ(word_mask_of(0, 8, 32, 4), 0b11u);
  EXPECT_EQ(word_mask_of(8, 8, 32, 4), 0b1100u);
}

TEST(WordMask, OffsetWithinBlock) {
  // Address 0x48 in a 32-byte block: offset 8.
  EXPECT_EQ(word_mask_of(0x48, 4, 32, 4), 0b100u);
}

TEST(WordMask, LargeBlockUses64Words) {
  EXPECT_EQ(word_mask_of(252, 4, 256, 4), std::uint64_t{1} << 63);
}

class FsTest : public ::testing::Test {
 protected:
  FsTest() : stats_(4), fs_(true, stats_) {}
  Stats stats_;
  FalseSharingClassifier fs_;
};

TEST_F(FsTest, DisabledClassifierIsNoop) {
  Stats stats(4);
  FalseSharingClassifier fs(false, stats);
  fs.on_invalidated(0, 0x100);
  fs.on_write_words(1, 0x100, 0b1);
  CacheLine line;
  line.block = 0x100;
  line.state = CacheState::kShared;
  fs.on_fill(0, 0x100, line);
  EXPECT_FALSE(line.fs_pending);
  EXPECT_EQ(stats.coherence_misses, 0u);
}

TEST_F(FsTest, ColdMissIsNotCoherenceMiss) {
  CacheLine line;
  line.block = 0x100;
  line.state = CacheState::kShared;
  fs_.on_fill(0, 0x100, line);
  EXPECT_FALSE(line.fs_pending);
  EXPECT_EQ(stats_.coherence_misses, 0u);
}

TEST_F(FsTest, TrueSharingDetectedOnIntersection) {
  // Node 0 invalidated; node 1 writes word 0; node 0 refetches and reads
  // word 0 -> true sharing (classified, not false).
  fs_.on_invalidated(0, 0x100);
  fs_.on_write_words(1, 0x100, 0b1);
  CacheLine line;
  line.block = 0x100;
  line.state = CacheState::kShared;
  fs_.on_fill(0, 0x100, line);
  EXPECT_TRUE(line.fs_pending);
  EXPECT_EQ(stats_.coherence_misses, 1u);
  fs_.on_access(line, 0b1);
  EXPECT_FALSE(line.fs_pending);
  fs_.on_line_death(line);
  EXPECT_EQ(stats_.false_sharing_misses, 0u);
}

TEST_F(FsTest, FalseSharingWhenDisjointWordsTouched) {
  // Node 1 wrote word 0, but node 0 only ever touches word 3.
  fs_.on_invalidated(0, 0x100);
  fs_.on_write_words(1, 0x100, 0b1);
  CacheLine line;
  line.block = 0x100;
  line.state = CacheState::kShared;
  fs_.on_fill(0, 0x100, line);
  fs_.on_access(line, 0b1000);
  EXPECT_TRUE(line.fs_pending);
  fs_.on_line_death(line);
  EXPECT_EQ(stats_.false_sharing_misses, 1u);
}

TEST_F(FsTest, WriterOwnWordsNotCountedAgainstIt) {
  // The writer's own mask must not accumulate into its own pending entry.
  fs_.on_invalidated(0, 0x100);
  fs_.on_write_words(0, 0x100, 0b1);  // Node 0 itself writes? (no-op for 0)
  CacheLine line;
  line.block = 0x100;
  line.state = CacheState::kShared;
  fs_.on_fill(0, 0x100, line);
  EXPECT_TRUE(line.fs_pending);
  EXPECT_EQ(line.fs_foreign_mask, 0u);
}

TEST_F(FsTest, MultipleForeignWritesAccumulate) {
  fs_.on_invalidated(0, 0x100);
  fs_.on_write_words(1, 0x100, 0b01);
  fs_.on_write_words(2, 0x100, 0b10);
  CacheLine line;
  line.block = 0x100;
  line.state = CacheState::kShared;
  fs_.on_fill(0, 0x100, line);
  EXPECT_EQ(line.fs_foreign_mask, 0b11u);
}

TEST_F(FsTest, IndependentNodesTrackedSeparately) {
  fs_.on_invalidated(0, 0x100);
  fs_.on_invalidated(1, 0x100);
  fs_.on_write_words(2, 0x100, 0b100);
  CacheLine l0;
  l0.block = 0x100;
  l0.state = CacheState::kShared;
  CacheLine l1 = l0;
  fs_.on_fill(0, 0x100, l0);
  fs_.on_fill(1, 0x100, l1);
  EXPECT_EQ(l0.fs_foreign_mask, 0b100u);
  EXPECT_EQ(l1.fs_foreign_mask, 0b100u);
  EXPECT_EQ(stats_.coherence_misses, 2u);
}

TEST_F(FsTest, RefetchClearsPendingState) {
  fs_.on_invalidated(0, 0x100);
  CacheLine line;
  line.block = 0x100;
  line.state = CacheState::kShared;
  fs_.on_fill(0, 0x100, line);
  // Second fill without another invalidation: cold/replacement miss.
  CacheLine line2;
  line2.block = 0x100;
  line2.state = CacheState::kShared;
  fs_.on_fill(0, 0x100, line2);
  EXPECT_FALSE(line2.fs_pending);
  EXPECT_EQ(stats_.coherence_misses, 1u);
}

}  // namespace
}  // namespace lssim
