// Latency histograms, traffic matrix and the epoch timeline.
#include "stats/timeline.hpp"

#include <gtest/gtest.h>

#include "workloads/harness.hpp"
#include "workloads/micro.hpp"

namespace lssim {
namespace {

TEST(LatencyHistogram, BucketsByPowerOfTwo) {
  LatencyHistogram hist;
  hist.record(1);    // Bucket 0: [1, 2).
  hist.record(1);
  hist.record(3);    // Bucket 1: [2, 4).
  hist.record(100);  // Bucket 6: [64, 128).
  EXPECT_EQ(hist.samples(), 4u);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(6), 1u);
  EXPECT_DOUBLE_EQ(hist.mean(), (1 + 1 + 3 + 100) / 4.0);
}

TEST(LatencyHistogram, PercentileIsBucketUpperEdge) {
  LatencyHistogram hist;
  for (int i = 0; i < 90; ++i) hist.record(1);
  for (int i = 0; i < 10; ++i) hist.record(400);  // Bucket 8: [256, 512).
  EXPECT_EQ(hist.percentile(0.5), 1u);
  EXPECT_EQ(hist.percentile(0.99), 511u);
}

TEST(LatencyHistogram, EmptyIsSafe) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.samples(), 0u);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.percentile(0.9), 0u);
}

TEST(TrafficMatrix, CountsPerPair) {
  TrafficMatrix matrix(4);
  matrix.record(0, 1);
  matrix.record(0, 1);
  matrix.record(2, 3);
  EXPECT_EQ(matrix.count(0, 1), 2u);
  EXPECT_EQ(matrix.count(1, 0), 0u);
  EXPECT_EQ(matrix.count(2, 3), 1u);
  EXPECT_EQ(matrix.row_total(0), 2u);
}

TEST(EpochTimeline, DisabledByDefault) {
  EpochTimeline timeline;
  EXPECT_FALSE(timeline.enabled());
  timeline.observe(1000, 1, 1, 1, 1, 1);
  EXPECT_TRUE(timeline.samples().empty());
}

TEST(EpochTimeline, EmitsDeltasPerEpoch) {
  EpochTimeline timeline(100);
  timeline.observe(50, 10, 5, 1, 1, 0);    // Within epoch 0.
  timeline.observe(120, 30, 12, 3, 2, 1);  // Crosses the 100 boundary.
  ASSERT_EQ(timeline.samples().size(), 1u);
  // The boundary sample carries the deltas as of the crossing
  // observation (bucketed reporting, not interpolation).
  const EpochSample& s = timeline.samples().front();
  EXPECT_EQ(s.end_time, 100u);
  EXPECT_EQ(s.accesses, 30u);
  EXPECT_EQ(s.messages, 12u);
}

TEST(EpochTimeline, MultipleBoundariesInOneStep) {
  EpochTimeline timeline(10);
  timeline.observe(35, 7, 7, 7, 7, 7);
  // Boundaries 10, 20 and 30 crossed.
  EXPECT_EQ(timeline.samples().size(), 3u);
  EXPECT_EQ(timeline.samples().back().end_time, 30u);
}

TEST(SystemIntegration, HistogramsAndMatrixPopulated) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{8192, 1, 16};
  cfg.protocol.kind = ProtocolKind::kBaseline;
  cfg.stats_epoch = 10000;
  System sys(cfg);
  build_pingpong(sys, PingPongParams{.rounds = 100, .counters = 2});
  sys.run();
  const Stats& stats = sys.stats();
  EXPECT_GT(stats.read_latency.samples(), 100u);
  EXPECT_GT(stats.write_latency.samples(), 100u);
  // Hits land in bucket 0; misses around 100-500 cycles in buckets 6-9.
  EXPECT_GT(stats.read_latency.percentile(0.99), 60u);
  std::uint64_t cross_traffic = 0;
  for (NodeId s = 0; s < 4; ++s) {
    cross_traffic += stats.traffic_matrix.row_total(s);
  }
  EXPECT_EQ(cross_traffic, stats.messages_total());
  EXPECT_GT(sys.timeline().samples().size(), 2u);
  // Epoch deltas sum to (at most) the totals.
  std::uint64_t accesses = 0;
  for (const EpochSample& s : sys.timeline().samples()) {
    accesses += s.accesses;
  }
  EXPECT_LE(accesses, stats.accesses);
}

}  // namespace
}  // namespace lssim
