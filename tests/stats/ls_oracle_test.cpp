#include "stats/ls_oracle.hpp"

#include <gtest/gtest.h>

namespace lssim {
namespace {

TEST(LsOracle, SimpleLoadStoreSequence) {
  LoadStoreOracle oracle(true);
  oracle.on_global_read(0, 0x100);
  oracle.on_global_write(0, 0x100, false, StreamTag::kApp);
  const LsOracleCounters c = oracle.total();
  EXPECT_EQ(c.global_writes, 1u);
  EXPECT_EQ(c.ls_writes, 1u);
  EXPECT_EQ(c.migratory_writes, 0u);  // First sequence: no prior owner.
}

TEST(LsOracle, LoneWriteIsNotLoadStore) {
  LoadStoreOracle oracle(true);
  oracle.on_global_write(0, 0x100, false, StreamTag::kApp);
  const LsOracleCounters c = oracle.total();
  EXPECT_EQ(c.global_writes, 1u);
  EXPECT_EQ(c.ls_writes, 0u);
}

TEST(LsOracle, InterveningReadBreaksSequence) {
  LoadStoreOracle oracle(true);
  oracle.on_global_read(0, 0x100);
  oracle.on_global_read(1, 0x100);  // Overwrites the pending reader.
  oracle.on_global_write(0, 0x100, false, StreamTag::kApp);
  EXPECT_EQ(oracle.total().ls_writes, 0u);
}

TEST(LsOracle, InterveningWriteBreaksSequence) {
  LoadStoreOracle oracle(true);
  oracle.on_global_read(0, 0x100);
  oracle.on_global_write(1, 0x100, false, StreamTag::kApp);
  oracle.on_global_write(0, 0x100, false, StreamTag::kApp);
  const LsOracleCounters c = oracle.total();
  EXPECT_EQ(c.global_writes, 2u);
  EXPECT_EQ(c.ls_writes, 0u);
}

TEST(LsOracle, MigratoryClassification) {
  LoadStoreOracle oracle(true);
  // P0 and P1 take turns doing load-store on the same block.
  oracle.on_global_read(0, 0x100);
  oracle.on_global_write(0, 0x100, false, StreamTag::kApp);
  oracle.on_global_read(1, 0x100);
  oracle.on_global_write(1, 0x100, false, StreamTag::kApp);
  oracle.on_global_read(0, 0x100);
  oracle.on_global_write(0, 0x100, false, StreamTag::kApp);
  const LsOracleCounters c = oracle.total();
  EXPECT_EQ(c.ls_writes, 3u);
  EXPECT_EQ(c.migratory_writes, 2u);  // Second and third sequences migrate.
}

TEST(LsOracle, RepeatLoadStoreBySameProcessorIsNotMigratory) {
  LoadStoreOracle oracle(true);
  for (int i = 0; i < 3; ++i) {
    oracle.on_global_read(2, 0x100);
    oracle.on_global_write(2, 0x100, false, StreamTag::kApp);
  }
  const LsOracleCounters c = oracle.total();
  EXPECT_EQ(c.ls_writes, 3u);
  EXPECT_EQ(c.migratory_writes, 0u);
}

TEST(LsOracle, EliminatedWritesTracked) {
  LoadStoreOracle oracle(true);
  oracle.on_global_read(0, 0x100);
  oracle.on_global_write(0, 0x100, true, StreamTag::kApp);
  oracle.on_global_read(1, 0x100);
  oracle.on_global_write(1, 0x100, true, StreamTag::kApp);
  const LsOracleCounters c = oracle.total();
  EXPECT_EQ(c.eliminated, 2u);
  EXPECT_EQ(c.eliminated_ls, 2u);
  EXPECT_EQ(c.eliminated_migratory, 1u);
  EXPECT_DOUBLE_EQ(c.ls_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(c.migratory_coverage(), 1.0);
}

TEST(LsOracle, PerStreamTagSeparation) {
  LoadStoreOracle oracle(true);
  oracle.on_global_read(0, 0x100);
  oracle.on_global_write(0, 0x100, false, StreamTag::kApp);
  oracle.on_global_read(0, 0x200);
  oracle.on_global_write(0, 0x200, false, StreamTag::kLibrary);
  oracle.on_global_write(0, 0x300, false, StreamTag::kOs);
  EXPECT_EQ(oracle.counters(StreamTag::kApp).global_writes, 1u);
  EXPECT_EQ(oracle.counters(StreamTag::kLibrary).global_writes, 1u);
  EXPECT_EQ(oracle.counters(StreamTag::kOs).global_writes, 1u);
  EXPECT_EQ(oracle.counters(StreamTag::kOs).ls_writes, 0u);
  EXPECT_EQ(oracle.total().global_writes, 3u);
}

TEST(LsOracle, FractionsComputed) {
  LsOracleCounters c;
  c.global_writes = 100;
  c.ls_writes = 42;
  c.migratory_writes = 20;
  c.eliminated_ls = 24;
  c.eliminated_migratory = 10;
  EXPECT_DOUBLE_EQ(c.ls_fraction(), 0.42);
  EXPECT_NEAR(c.migratory_fraction(), 0.476, 0.001);
  EXPECT_NEAR(c.ls_coverage(), 0.571, 0.001);
  EXPECT_DOUBLE_EQ(c.migratory_coverage(), 0.5);
}

TEST(LsOracle, ZeroDenominatorsAreSafe) {
  const LsOracleCounters c;
  EXPECT_DOUBLE_EQ(c.ls_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(c.migratory_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(c.ls_coverage(), 0.0);
  EXPECT_DOUBLE_EQ(c.migratory_coverage(), 0.0);
}

TEST(LsOracle, IndependentBlocks) {
  LoadStoreOracle oracle(true);
  oracle.on_global_read(0, 0x100);
  oracle.on_global_read(1, 0x200);
  oracle.on_global_write(0, 0x100, false, StreamTag::kApp);
  oracle.on_global_write(1, 0x200, false, StreamTag::kApp);
  EXPECT_EQ(oracle.total().ls_writes, 2u);
}

}  // namespace
}  // namespace lssim
