#!/usr/bin/env python3
"""End-to-end smoke test for the observability artifacts.

Runs the lssim_run driver (path via $LSSIM_RUN) with all three
observability outputs enabled on a small five-protocol pingpong sweep,
then validates every artifact with tools/check_observability.py (path
via $CHECK_OBSERVABILITY) — the same validator the CI smoke step uses.
Also asserts the validator actually rejects corrupted artifacts, so a
validator that rubber-stamps everything cannot pass.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

LSSIM_RUN = os.environ.get("LSSIM_RUN")
CHECK = os.environ.get(
    "CHECK_OBSERVABILITY",
    os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                 "check_observability.py"),
)
PROTOCOLS = "Baseline,AD,LS,ILS,LS+AD"


def run_check(*args):
    return subprocess.run(
        [sys.executable, CHECK, *args], capture_output=True, text=True
    )


@unittest.skipUnless(LSSIM_RUN and os.path.exists(LSSIM_RUN),
                     "LSSIM_RUN not set (needs the built driver binary)")
class ObservabilitySmokeTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tmp = tempfile.TemporaryDirectory()
        cls.latency = os.path.join(cls.tmp.name, "latency.json")
        cls.audit = os.path.join(cls.tmp.name, "audit.jsonl")
        cls.heartbeat = os.path.join(cls.tmp.name, "heartbeat.jsonl")
        proc = subprocess.run(
            [
                LSSIM_RUN,
                "--workload", "pingpong",
                "--protocols", "baseline,ad,ls,ils,ls+ad",
                "--latency-out", cls.latency,
                "--audit-out", cls.audit,
                "--heartbeat-out", cls.heartbeat,
                "--heartbeat-interval", "0",
            ],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                "lssim_run failed (%d):\n%s" % (proc.returncode, proc.stderr)
            )

    @classmethod
    def tearDownClass(cls):
        cls.tmp.cleanup()

    def test_all_artifacts_pass_the_validator(self):
        proc = run_check(
            "--latency", self.latency,
            "--audit", self.audit,
            "--heartbeat", self.heartbeat,
            "--protocols", PROTOCOLS,
        )
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("latency report OK", proc.stdout)
        self.assertIn("audit trail OK", proc.stdout)
        self.assertIn("heartbeat OK", proc.stdout)

    def test_heartbeat_has_one_line_per_run_plus_final(self):
        with open(self.heartbeat) as f:
            lines = [json.loads(l) for l in f if l.strip()]
        # --heartbeat-interval 0: one heartbeat per protocol run, then
        # exactly one final line — a deterministic count.
        self.assertEqual(len(lines), 6)
        self.assertEqual([l["type"] for l in lines[:-1]], ["heartbeat"] * 5)
        self.assertEqual(lines[-1]["type"], "final")
        self.assertEqual(lines[-1]["done"], 5)
        self.assertIn("simulate", lines[-1].get("phases", {}))

    def test_validator_rejects_missing_protocol(self):
        proc = run_check("--latency", self.latency,
                         "--protocols", "Baseline,NoSuchProtocol")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("NoSuchProtocol", proc.stderr)

    def test_validator_rejects_corrupted_latency_report(self):
        with open(self.latency) as f:
            doc = json.load(f)
        doc["runs"][0]["ownership_latency"]["read-miss"].pop("p95")
        bad = os.path.join(self.tmp.name, "bad_latency.json")
        with open(bad, "w") as f:
            json.dump(doc, f)
        proc = run_check("--latency", bad)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("p95", proc.stderr)

    def test_validator_rejects_truncated_audit_trail(self):
        with open(self.audit) as f:
            lines = f.readlines()
        # Drop one record line: the per-protocol count no longer matches
        # the summary's `retained`.
        record_idx = next(
            i for i, l in enumerate(lines)
            if json.loads(l).get("event") != "summary"
        )
        bad = os.path.join(self.tmp.name, "bad_audit.jsonl")
        with open(bad, "w") as f:
            f.writelines(lines[:record_idx] + lines[record_idx + 1:])
        proc = run_check("--audit", bad)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("retained", proc.stderr)


if __name__ == "__main__":
    unittest.main()
