#!/usr/bin/env python3
"""End-to-end smoke test for the capture/replay CLI (docs/PERFORMANCE.md).

Drives the real lssim_run binary (path via $LSSIM_RUN) through the
capture-once / replay-many surface and asserts the documented exit
codes:

  0 — capture, replay from a matching trace, and a cross-check on a
      feedback-insensitive workload (private-RMW with sync=0)
  2 — replaying a trace on a machine whose protocol-insensitive config
      differs (both config hashes must appear in the diagnostic)
  5 — cross-check divergence on a feedback-sensitive workload
      (ping-pong's spin count depends on protocol-induced timing)
"""

import os
import subprocess
import tempfile
import unittest

LSSIM_RUN = os.environ.get("LSSIM_RUN")

# Small, fast workload parameters shared by every invocation.
PRIVATE = ["--workload", "private", "--set", "words_per_proc=512",
           "--set", "sweeps=1", "--set", "sync=0"]
PINGPONG = ["--workload", "pingpong", "--set", "rounds=40"]


def run(*args):
    return subprocess.run([LSSIM_RUN, *args], capture_output=True, text=True)


@unittest.skipUnless(LSSIM_RUN and os.path.exists(LSSIM_RUN),
                     "LSSIM_RUN not set (needs the built driver binary)")
class ReplaySmokeTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.trace = os.path.join(self.tmp.name, "run.lstrace")

    def tearDown(self):
        self.tmp.cleanup()

    def test_capture_then_replay_from_matching_machine(self):
        proc = run(*PRIVATE, "--capture-trace", self.trace)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertTrue(os.path.getsize(self.trace) > 0)

        proc = run(*PRIVATE, "--replay-from", self.trace,
                   "--protocols", "baseline,ad,ls,ils,ls+ad")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        # One result row per protocol in the normal driver output.
        for name in ("Baseline", "AD", "LS", "ILS", "LS+AD"):
            self.assertIn(name, proc.stdout)

    def test_replay_from_mismatched_machine_exits_2_with_both_hashes(self):
        proc = run(*PRIVATE, "--capture-trace", self.trace)
        self.assertEqual(proc.returncode, 0, proc.stderr)

        proc = run(*PRIVATE, "--replay-from", self.trace, "--l2", "32k")
        self.assertEqual(proc.returncode, 2, proc.stderr)
        # The diagnostic lists the trace's hash and the machine's hash.
        hashes = [w for w in proc.stderr.split() if w.startswith("0x")]
        self.assertGreaterEqual(len(hashes), 2, proc.stderr)
        self.assertNotEqual(hashes[0], hashes[1])

    def test_crosscheck_agrees_on_feedback_insensitive_workload(self):
        proc = run(*PRIVATE, "--replay-crosscheck",
                   "--protocols", "baseline,ad,ls,ils,ls+ad",
                   "--directories", "full-map,limited-ptr",
                   "--jobs", "2")
        self.assertEqual(proc.returncode, 0,
                         proc.stderr + "\n" + proc.stdout)

    def test_crosscheck_reports_divergence_on_spin_workload(self):
        proc = run(*PINGPONG, "--replay-crosscheck",
                   "--protocols", "baseline,ls")
        self.assertEqual(proc.returncode, 5, proc.stderr)
        self.assertIn("executed", proc.stderr)
        self.assertIn("replayed", proc.stderr)

    def test_replay_compare_runs_matrix_from_one_capture(self):
        proc = run(*PINGPONG, "--replay-compare",
                   "--protocols", "baseline,ad,ls",
                   "--format", "csv")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        for name in ("Baseline", "AD", "LS"):
            self.assertIn(name, proc.stdout)


if __name__ == "__main__":
    unittest.main()
