#!/usr/bin/env python3
"""Regression tests for tools/bench_compare.py.

Invokes the script as a subprocess, the way CI does. The key regression:
a baseline captured with a zero or missing total `serial_seconds` (an
interrupted run, or a synthetic capture) must not crash the comparison
with a ZeroDivisionError and must still print the total summary line.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.environ.get(
    "BENCH_COMPARE",
    os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                 "bench_compare.py"),
)


def capture(figures, total, jobs=4, speedup=2.0, cores=None):
    doc = {"figures": figures, "jobs": jobs, "speedup": speedup}
    if total is not None:
        doc["serial_seconds"] = total
    if cores is not None:
        doc["host_hardware_concurrency"] = cores
    return doc


def fig(name, seconds):
    f = {"name": name}
    if seconds is not None:
        f["serial_seconds"] = seconds
    return f


def run_compare(old_doc, new_doc, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        old_path = os.path.join(tmp, "old.json")
        new_path = os.path.join(tmp, "new.json")
        with open(old_path, "w") as f:
            json.dump(old_doc, f)
        with open(new_path, "w") as f:
            json.dump(new_doc, f)
        return subprocess.run(
            [sys.executable, SCRIPT, old_path, new_path, *extra],
            capture_output=True,
            text=True,
        )


class BenchCompareTest(unittest.TestCase):
    def test_zero_old_total_prints_summary_without_crashing(self):
        old = capture([fig("fig4", 1.0)], total=0.0)
        new = capture([fig("fig4", 1.0)], total=3.5)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("total serial: 0.00s -> 3.50s (+0.0%)", proc.stdout)

    def test_missing_old_total_prints_summary_without_crashing(self):
        old = capture([fig("fig4", 1.0)], total=None)
        new = capture([fig("fig4", 1.0)], total=3.5)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("total serial", proc.stdout)

    def test_zero_per_figure_serial_does_not_divide(self):
        old = capture([fig("fig4", 0.0)], total=0.0)
        new = capture([fig("fig4", 2.0)], total=2.0)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_missing_fields_everywhere_still_compares(self):
        old = capture([fig("fig4", None), fig("gone", None)], total=None)
        new = capture([fig("fig4", None), fig("fresh", None)], total=None,
                      speedup=None)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertIn("new figure", proc.stdout)
        self.assertIn("removed", proc.stdout)

    def test_regression_still_fails(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        new = capture([fig("fig4", 2.0)], total=2.0)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("FAIL", proc.stderr)

    def test_different_core_counts_warn_but_pass(self):
        old = capture([fig("fig4", 1.0)], total=1.0, cores=8)
        new = capture([fig("fig4", 1.0)], total=1.0, cores=32)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("host core counts differ", proc.stderr)
        self.assertIn("old: 8", proc.stderr)
        self.assertIn("new: 32", proc.stderr)

    def test_different_jobs_warn_but_pass(self):
        old = capture([fig("fig4", 1.0)], total=1.0, jobs=4, cores=8)
        new = capture([fig("fig4", 1.0)], total=1.0, jobs=16, cores=8)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("different --jobs", proc.stderr)
        self.assertNotIn("host core counts differ", proc.stderr)

    def test_matching_provenance_does_not_warn(self):
        old = capture([fig("fig4", 1.0)], total=1.0, cores=8)
        new = capture([fig("fig4", 1.0)], total=1.0, cores=8)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("differ", proc.stderr)

    def test_within_threshold_passes(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        new = capture([fig("fig4", 1.05)], total=1.05)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("total serial: 1.00s -> 1.05s (+5.0%)", proc.stdout)

    def test_old_baseline_without_replay_section_still_compares(self):
        # Baselines captured before the replay_compare section existed
        # must keep working — the new rows show as "new", nothing gates.
        old = capture([fig("fig4", 1.0)], total=1.0)
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [
            {"name": "fig3_mp3d", "execute_seconds": 5.0,
             "replay_seconds": 1.0, "speedup": 5.0, "agree": True}
        ]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertIn("fig3_mp3d", proc.stdout)
        self.assertIn("new", proc.stdout)

    def test_replay_sections_compare_speedups(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        old["replay_compare"] = [
            {"name": "fig3_mp3d", "execute_seconds": 5.0,
             "replay_seconds": 2.0, "speedup": 2.5}
        ]
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [
            {"name": "fig3_mp3d", "execute_seconds": 5.0,
             "replay_seconds": 1.0, "speedup": 5.0}
        ]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("2.50x -> 5.00x", proc.stdout)

    def test_replay_entry_missing_fields_does_not_crash(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        old["replay_compare"] = [{"name": "gone"}]
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [{}]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertIn("removed", proc.stdout)


if __name__ == "__main__":
    unittest.main()
