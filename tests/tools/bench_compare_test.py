#!/usr/bin/env python3
"""Regression tests for tools/bench_compare.py.

Invokes the script as a subprocess, the way CI does. The key regression:
a baseline captured with a zero or missing total `serial_seconds` (an
interrupted run, or a synthetic capture) must not crash the comparison
with a ZeroDivisionError and must still print the total summary line.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.environ.get(
    "BENCH_COMPARE",
    os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                 "bench_compare.py"),
)


def capture(figures, total, jobs=4, speedup=2.0, cores=None):
    doc = {"figures": figures, "jobs": jobs, "speedup": speedup}
    if total is not None:
        doc["serial_seconds"] = total
    if cores is not None:
        doc["host_hardware_concurrency"] = cores
    return doc


def fig(name, seconds):
    f = {"name": name}
    if seconds is not None:
        f["serial_seconds"] = seconds
    return f


def run_compare(old_doc, new_doc, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        old_path = os.path.join(tmp, "old.json")
        new_path = os.path.join(tmp, "new.json")
        with open(old_path, "w") as f:
            json.dump(old_doc, f)
        with open(new_path, "w") as f:
            json.dump(new_doc, f)
        return subprocess.run(
            [sys.executable, SCRIPT, old_path, new_path, *extra],
            capture_output=True,
            text=True,
        )


class BenchCompareTest(unittest.TestCase):
    def test_zero_old_total_prints_summary_without_crashing(self):
        old = capture([fig("fig4", 1.0)], total=0.0)
        new = capture([fig("fig4", 1.0)], total=3.5)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("total serial: 0.00s -> 3.50s (+0.0%)", proc.stdout)

    def test_missing_old_total_prints_summary_without_crashing(self):
        old = capture([fig("fig4", 1.0)], total=None)
        new = capture([fig("fig4", 1.0)], total=3.5)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("total serial", proc.stdout)

    def test_zero_per_figure_serial_does_not_divide(self):
        old = capture([fig("fig4", 0.0)], total=0.0)
        new = capture([fig("fig4", 2.0)], total=2.0)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_missing_fields_everywhere_still_compares(self):
        old = capture([fig("fig4", None), fig("gone", None)], total=None)
        new = capture([fig("fig4", None), fig("fresh", None)], total=None,
                      speedup=None)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertIn("new figure", proc.stdout)
        self.assertIn("removed", proc.stdout)

    def test_regression_still_fails(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        new = capture([fig("fig4", 2.0)], total=2.0)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("FAIL", proc.stderr)

    def test_different_core_counts_warn_but_pass(self):
        old = capture([fig("fig4", 1.0)], total=1.0, cores=8)
        new = capture([fig("fig4", 1.0)], total=1.0, cores=32)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("host core counts differ", proc.stderr)
        self.assertIn("old: 8", proc.stderr)
        self.assertIn("new: 32", proc.stderr)

    def test_different_jobs_warn_but_pass(self):
        old = capture([fig("fig4", 1.0)], total=1.0, jobs=4, cores=8)
        new = capture([fig("fig4", 1.0)], total=1.0, jobs=16, cores=8)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("different --jobs", proc.stderr)
        self.assertNotIn("host core counts differ", proc.stderr)

    def test_matching_provenance_does_not_warn(self):
        old = capture([fig("fig4", 1.0)], total=1.0, cores=8)
        new = capture([fig("fig4", 1.0)], total=1.0, cores=8)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("differ", proc.stderr)

    def test_within_threshold_passes(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        new = capture([fig("fig4", 1.05)], total=1.05)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("total serial: 1.00s -> 1.05s (+5.0%)", proc.stdout)

    def test_old_baseline_without_replay_section_still_compares(self):
        # Baselines captured before the replay_compare section existed
        # must keep working — the new rows show as "new", nothing gates.
        old = capture([fig("fig4", 1.0)], total=1.0)
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [
            {"name": "fig3_mp3d", "execute_seconds": 5.0,
             "replay_seconds": 1.0, "speedup": 5.0, "agree": True}
        ]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertIn("fig3_mp3d", proc.stdout)
        self.assertIn("new", proc.stdout)

    def test_replay_sections_compare_speedups(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        old["replay_compare"] = [
            {"name": "fig3_mp3d", "execute_seconds": 5.0,
             "replay_seconds": 2.0, "speedup": 2.5}
        ]
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [
            {"name": "fig3_mp3d", "execute_seconds": 5.0,
             "replay_seconds": 1.0, "speedup": 5.0}
        ]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("2.50x -> 5.00x", proc.stdout)

    def test_replay_entry_missing_fields_does_not_crash(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        old["replay_compare"] = [{"name": "gone"}]
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [{}]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertIn("removed", proc.stdout)

    def test_replay_speedup_regression_fails(self):
        # The replay steady-state speedup is gated like figure times: a
        # drop beyond --threshold fails the comparison.
        old = capture([fig("fig4", 1.0)], total=1.0)
        old["replay_compare"] = [
            {"name": "fig3_mp3d", "execute_seconds": 5.0,
             "replay_seconds": 1.0, "speedup": 5.0}
        ]
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [
            {"name": "fig3_mp3d", "execute_seconds": 5.0,
             "replay_seconds": 2.0, "speedup": 2.5}
        ]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("replay fig3_mp3d", proc.stderr)

    def test_replay_speedup_within_threshold_passes(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        old["replay_compare"] = [
            {"name": "fig3_mp3d", "speedup": 5.0}
        ]
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [
            {"name": "fig3_mp3d", "speedup": 4.8}
        ]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_null_replay_speedup_warns_and_is_not_gated(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        old["replay_compare"] = [{"name": "fig3_mp3d", "speedup": 5.0}]
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [{"name": "fig3_mp3d", "speedup": None}]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertIn("not gated", proc.stderr)

    def test_null_doc_speedup_prints_na_and_warns(self):
        # bench/perf_baseline writes speedup: null when the capture had
        # no real concurrency (1-core host or --jobs 1); the comparison
        # must skip it with a warning instead of crashing or gating.
        old = capture([fig("fig4", 1.0)], total=1.0)
        new = capture([fig("fig4", 1.0)], total=1.0, speedup=None)
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertIn("n/a", proc.stdout)
        self.assertIn("null speedup", proc.stderr)

    def test_zero_replay_divisions_are_guarded(self):
        old = capture([fig("fig4", 1.0)], total=1.0)
        old["replay_compare"] = [{"name": "w", "speedup": 0.0}]
        new = capture([fig("fig4", 1.0)], total=1.0)
        new["replay_compare"] = [
            {"name": "w", "execute_seconds": 0.0, "replay_seconds": 0.0,
             "speedup": 0.0}
        ]
        proc = run_compare(old, new)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)


def store_header(hash_version=1, cores=8):
    return {"kind": "header", "schema_version": 1,
            "hash_version": hash_version, "generator": "lssim_sweep",
            "host_hardware_concurrency": cores, "jobs": 2}


def store_record(hash_hex, wall, cycles, label=None):
    return {"kind": "result", "hash": hash_hex,
            "label": label or f"cfg-{hash_hex}", "workload": "pingpong",
            "seed": 1, "nodes": 2, "wall_seconds": wall,
            "result": {"exec_cycles": cycles}}


def write_store(path, header, records, partial_tail=None):
    with open(path, "w") as f:
        for doc in [header, *records]:
            f.write(json.dumps(doc) + "\n")
        if partial_tail is not None:
            f.write(partial_tail)  # No newline: an interrupted append.


class StoreCompareTest(unittest.TestCase):
    def run_script(self, *argv):
        return subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True,
            text=True,
        )

    def make_stores(self, tmp, old_records, new_records):
        old_path = os.path.join(tmp, "old.jsonl")
        new_path = os.path.join(tmp, "new.jsonl")
        write_store(old_path, store_header(), old_records)
        write_store(new_path, store_header(), new_records)
        return old_path, new_path

    def test_wall_clock_regression_fails_per_config(self):
        with tempfile.TemporaryDirectory() as tmp:
            old, new = self.make_stores(
                tmp,
                [store_record("0x1", 1.0, 100), store_record("0x2", 1.0, 50)],
                [store_record("0x1", 2.0, 100), store_record("0x2", 1.0, 50)],
            )
            proc = self.run_script("--store", old, new)
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertIn("REGRESSION", proc.stdout)
            self.assertIn("cfg-0x1", proc.stderr)

    def test_within_threshold_passes_and_reports_membership(self):
        with tempfile.TemporaryDirectory() as tmp:
            old, new = self.make_stores(
                tmp,
                [store_record("0x1", 1.0, 100), store_record("0x3", 1.0, 9)],
                [store_record("0x1", 1.05, 100), store_record("0x2", 1.0, 5)],
            )
            proc = self.run_script("--store", old, new)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertIn("new config", proc.stdout)
            self.assertIn("removed", proc.stdout)

    def test_untimed_stores_skip_wall_gate_but_report_stat_changes(self):
        with tempfile.TemporaryDirectory() as tmp:
            old, new = self.make_stores(
                tmp,
                [store_record("0x1", 0.0, 100)],
                [store_record("0x1", 0.0, 999)],
            )
            proc = self.run_script("--store", old, new)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertIn("stats changed", proc.stdout)
            self.assertIn("no timing", proc.stdout)

    def test_partial_trailing_line_is_skipped(self):
        with tempfile.TemporaryDirectory() as tmp:
            old_path = os.path.join(tmp, "old.jsonl")
            new_path = os.path.join(tmp, "new.jsonl")
            write_store(old_path, store_header(),
                        [store_record("0x1", 1.0, 100)])
            write_store(new_path, store_header(),
                        [store_record("0x1", 1.0, 100)],
                        partial_tail='{"kind":"result","hash":"0x2')
            proc = self.run_script("--store", old_path, new_path)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertNotIn("Traceback", proc.stderr)

    def test_headerless_file_is_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = os.path.join(tmp, "bad.jsonl")
            with open(bad, "w") as f:
                f.write(json.dumps(store_record("0x1", 1.0, 1)) + "\n")
            good = os.path.join(tmp, "good.jsonl")
            write_store(good, store_header(), [])
            proc = self.run_script("--store", bad, good)
            self.assertNotEqual(proc.returncode, 0)
            self.assertIn("no header", proc.stderr + proc.stdout)

    def test_hash_version_mismatch_warns(self):
        with tempfile.TemporaryDirectory() as tmp:
            old_path = os.path.join(tmp, "old.jsonl")
            new_path = os.path.join(tmp, "new.jsonl")
            write_store(old_path, store_header(hash_version=1),
                        [store_record("0x1", 1.0, 100)])
            write_store(new_path, store_header(hash_version=2),
                        [store_record("0x1", 1.0, 100)])
            proc = self.run_script("--store", old_path, new_path)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertIn("hash versions", proc.stderr.replace("-", " "))

    def test_trend_summarises_stores_and_never_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for i, wall in enumerate([1.0, 2.0, 10.0]):
                path = os.path.join(tmp, f"s{i}.jsonl")
                write_store(path, store_header(),
                            [store_record("0x1", wall, 100)])
                paths.append(path)
            proc = self.run_script("--store", "--trend", *paths)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            # A 5x wall-clock blowup is reported, not gated.
            self.assertIn("+400.0%", proc.stdout)

    def test_trend_requires_store(self):
        proc = self.run_script("--trend", "a", "b")
        self.assertNotEqual(proc.returncode, 0)


if __name__ == "__main__":
    unittest.main()
