#!/usr/bin/env python3
"""End-to-end smoke tests for tools/lssim_sweep + bench_compare --store.

Drives the real binary the way CI's sweep smoke job does: generate a
small matrix, run it sharded into JSONL stores, interrupt + resume, and
feed the stores to tools/bench_compare.py --store. Needs LSSIM_SWEEP
(and optionally BENCH_COMPARE) in the environment — tests/CMakeLists.txt
wires both.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SWEEP = os.environ.get("LSSIM_SWEEP")
BENCH_COMPARE = os.environ.get(
    "BENCH_COMPARE",
    os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                 "bench_compare.py"),
)

SMALL_MATRIX = [
    "--workloads", "pingpong",
    "--protocols", "Baseline,LS",
    "--nodes", "2,4",
    "--set", "rounds=20",
    "--no-timing",
]


def run_sweep(*argv):
    return subprocess.run([SWEEP, *argv], capture_output=True, text=True)


def load_store(path):
    header, records = None, []
    with open(path) as f:
        for line in f:
            doc = json.loads(line)
            if doc.get("kind") == "header":
                header = doc
            elif doc.get("kind") == "result":
                records.append(doc)
    return header, records


@unittest.skipIf(SWEEP is None, "LSSIM_SWEEP not set")
class SweepSmokeTest(unittest.TestCase):
    def test_count_and_list_need_no_store(self):
        proc = run_sweep(*SMALL_MATRIX, "--count")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("units 4", proc.stdout)
        proc = run_sweep(*SMALL_MATRIX, "--list")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        lines = proc.stdout.strip().splitlines()
        self.assertEqual(len(lines), 4)
        hashes = [line.split()[0] for line in lines]
        self.assertEqual(len(set(hashes)), 4, "config hashes must be unique")
        for h in hashes:
            self.assertTrue(h.startswith("0x"))

    def test_run_resume_and_store_contents(self):
        with tempfile.TemporaryDirectory() as tmp:
            store = os.path.join(tmp, "sweep.jsonl")
            proc = run_sweep(*SMALL_MATRIX, "--store", store, "--jobs", "2")
            self.assertEqual(proc.returncode, 0, proc.stderr)
            header, records = load_store(store)
            self.assertEqual(header["schema_version"], 1)
            self.assertEqual(header["generator"], "lssim_sweep")
            self.assertEqual(len(records), 4)
            self.assertTrue(all(r["result"]["exec_cycles"] > 0
                                for r in records))

            # Rerun: everything skips, zero re-executed hashes.
            before = open(store, "rb").read()
            proc = run_sweep(*SMALL_MATRIX, "--store", store, "--jobs", "2")
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertIn("4 skipped", proc.stderr)
            self.assertIn("0 executed", proc.stderr)
            self.assertEqual(open(store, "rb").read(), before)

            # Interrupt (truncate mid-record) and resume: byte-identical.
            newline_offsets = [i for i, b in enumerate(before)
                               if b == ord("\n")]
            with open(store, "r+b") as f:
                f.truncate(newline_offsets[2] + 12)
            proc = run_sweep(*SMALL_MATRIX, "--store", store, "--jobs", "2")
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertEqual(open(store, "rb").read(), before,
                             "resume is not byte-identical")

    def test_sharding_partitions_without_overlap(self):
        with tempfile.TemporaryDirectory() as tmp:
            stores = []
            for shard in range(2):
                store = os.path.join(tmp, f"shard{shard}.jsonl")
                proc = run_sweep(*SMALL_MATRIX, "--store", store,
                                 "--shard", f"{shard}/2")
                self.assertEqual(proc.returncode, 0, proc.stderr)
                stores.append(store)
            seen = []
            for store in stores:
                _, records = load_store(store)
                seen.extend(r["hash"] for r in records)
            self.assertEqual(len(seen), 4)
            self.assertEqual(len(set(seen)), 4, "shards overlap")

    def test_usage_errors_exit_2(self):
        self.assertEqual(run_sweep("--no-such-flag").returncode, 2)
        self.assertEqual(run_sweep(*SMALL_MATRIX).returncode, 2)  # No store.
        self.assertEqual(
            run_sweep(*SMALL_MATRIX, "--store", "x", "--shard", "3/2")
            .returncode, 2)

    def test_refuses_non_store_file_without_clobbering(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "precious.txt")
            with open(path, "w") as f:
                f.write("not a results store\n")
            proc = run_sweep(*SMALL_MATRIX, "--store", path)
            self.assertEqual(proc.returncode, 3, proc.stderr)
            self.assertEqual(open(path).read(), "not a results store\n")

    def test_bench_compare_store_gate_and_trend(self):
        with tempfile.TemporaryDirectory() as tmp:
            old = os.path.join(tmp, "old.jsonl")
            new = os.path.join(tmp, "new.jsonl")
            for store in (old, new):
                proc = run_sweep(*SMALL_MATRIX, "--store", store)
                self.assertEqual(proc.returncode, 0, proc.stderr)
            compare = subprocess.run(
                [sys.executable, BENCH_COMPARE, "--store", old, new],
                capture_output=True, text=True)
            self.assertEqual(compare.returncode, 0, compare.stderr)
            self.assertIn("4 shared", compare.stdout)
            trend = subprocess.run(
                [sys.executable, BENCH_COMPARE, "--store", "--trend",
                 old, new],
                capture_output=True, text=True)
            self.assertEqual(trend.returncode, 0, trend.stderr)


if __name__ == "__main__":
    unittest.main()
