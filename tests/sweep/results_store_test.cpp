#include "sweep/results_store.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/json.hpp"

namespace lssim {
namespace {

namespace fs = std::filesystem;

std::string temp_store(const char* name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  return path.string();
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

SweepRecord sample_record(std::uint64_t hash) {
  SweepRecord record;
  record.config_hash = hash;
  record.label = "pingpong/LS/full-map/network/n2/l1=4096/l2=65536/b16";
  record.workload = "pingpong";
  record.params = {{"rounds", "50"}};
  record.seed = 1;
  record.nodes = 2;
  record.l1_bytes = 4096;
  record.l2_bytes = 65536;
  record.block_bytes = 16;
  record.wall_seconds = 0.0;
  record.result.exec_time = 1234;
  record.result.traffic_total = 99;
  return record;
}

ResultsStore::Provenance sample_provenance() {
  ResultsStore::Provenance p;
  p.git_commit = "0123456789abcdef0123456789abcdef01234567";
  p.host_hardware_concurrency = 8;
  p.jobs = 2;
  return p;
}

TEST(ResultsStore, CreatesHeaderAndRoundTripsRecords) {
  const std::string path = temp_store("store_roundtrip.jsonl");
  {
    ResultsStore store;
    std::string error;
    ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
    ASSERT_TRUE(store.append(sample_record(0x11), &error)) << error;
    ASSERT_TRUE(store.append(sample_record(0x22), &error)) << error;
    EXPECT_TRUE(store.contains(0x11));
    EXPECT_FALSE(store.contains(0x33));
  }
  const std::string text = read_all(path);
  EXPECT_NE(text.find("\"kind\":\"header\""), std::string::npos);
  EXPECT_NE(text.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(text.find("\"git_commit\""), std::string::npos);

  std::vector<SweepRecord> records;
  std::string error;
  ASSERT_TRUE(ResultsStore::load(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].config_hash, 0x11u);
  EXPECT_EQ(records[0].workload, "pingpong");
  ASSERT_EQ(records[0].params.size(), 1u);
  EXPECT_EQ(records[0].params[0].first, "rounds");
  EXPECT_EQ(records[0].result.exec_time, 1234u);
  EXPECT_EQ(records[0].result.traffic_total, 99u);
  EXPECT_EQ(records[1].config_hash, 0x22u);
}

TEST(ResultsStore, ReopenSeesCompletedHashesAndAppends) {
  const std::string path = temp_store("store_reopen.jsonl");
  std::string error;
  {
    ResultsStore store;
    ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
    ASSERT_TRUE(store.append(sample_record(0x11), &error)) << error;
  }
  ResultsStore store;
  ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
  EXPECT_TRUE(store.contains(0x11));
  EXPECT_EQ(store.records().size(), 1u);
  ASSERT_TRUE(store.append(sample_record(0x22), &error)) << error;

  std::vector<SweepRecord> records;
  ASSERT_TRUE(ResultsStore::load(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  // Reopening must not write a second header.
  const std::string text = read_all(path);
  EXPECT_EQ(text.find("\"kind\":\"header\""),
            text.rfind("\"kind\":\"header\""));
}

TEST(ResultsStore, TruncatedTrailingLineIsRepairedOnOpen) {
  const std::string path = temp_store("store_truncated.jsonl");
  std::string error;
  {
    ResultsStore store;
    ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
    ASSERT_TRUE(store.append(sample_record(0x11), &error)) << error;
    ASSERT_TRUE(store.append(sample_record(0x22), &error)) << error;
  }
  // Chop the file mid-way through the second record, simulating an
  // interrupted append.
  const std::string full = read_all(path);
  const std::size_t first_record_end = full.find('\n', full.find('\n') + 1);
  ASSERT_NE(first_record_end, std::string::npos);
  fs::resize_file(path, first_record_end + 1 + 20);

  ResultsStore store;
  ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
  EXPECT_TRUE(store.contains(0x11));
  EXPECT_FALSE(store.contains(0x22));  // The partial line was dropped.
  EXPECT_EQ(fs::file_size(path), first_record_end + 1);
  ASSERT_TRUE(store.append(sample_record(0x22), &error)) << error;
  EXPECT_EQ(read_all(path), full);  // Byte-identical after repair+append.
}

TEST(ResultsStore, LoadSkipsPartialTrailingLine) {
  const std::string path = temp_store("store_load_partial.jsonl");
  std::string error;
  {
    ResultsStore store;
    ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
    ASSERT_TRUE(store.append(sample_record(0x11), &error)) << error;
  }
  std::ofstream(path, std::ios::binary | std::ios::app)
      << "{\"kind\":\"result\",\"hash\":\"0x22";  // No newline: partial.
  std::vector<SweepRecord> records;
  ASSERT_TRUE(ResultsStore::load(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].config_hash, 0x11u);
}

TEST(ResultsStore, RefusesCompleteMalformedMidStoreLine) {
  const std::string path = temp_store("store_corrupt.jsonl");
  std::string error;
  {
    ResultsStore store;
    ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
    ASSERT_TRUE(store.append(sample_record(0x11), &error)) << error;
  }
  std::ofstream(path, std::ios::binary | std::ios::app) << "not json\n";
  ResultsStore store;
  EXPECT_FALSE(store.open(path, sample_provenance(), &error));
  EXPECT_NE(error.find("malformed"), std::string::npos);
}

TEST(ResultsStore, RefusesNewerSchemaAndHeaderlessFiles) {
  const std::string newer = temp_store("store_newer.jsonl");
  std::ofstream(newer, std::ios::binary)
      << "{\"kind\":\"header\",\"schema_version\":999}\n";
  ResultsStore store;
  std::string error;
  EXPECT_FALSE(store.open(newer, sample_provenance(), &error));
  EXPECT_NE(error.find("newer"), std::string::npos);

  const std::string headerless = temp_store("store_headerless.jsonl");
  std::ofstream(headerless, std::ios::binary)
      << "{\"kind\":\"result\",\"hash\":\"0x11\",\"result\":{}}\n";
  error.clear();
  EXPECT_FALSE(store.open(headerless, sample_provenance(), &error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(ResultsStore, CountsDuplicateHashes) {
  const std::string path = temp_store("store_dup.jsonl");
  std::string error;
  {
    ResultsStore store;
    ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
    ASSERT_TRUE(store.append(sample_record(0x11), &error)) << error;
  }
  // Hand-concatenate the same record again (the runner never does this).
  {
    ResultsStore store;
    ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
    EXPECT_EQ(store.duplicate_hashes(), 0u);
    ASSERT_TRUE(store.append(sample_record(0x11), &error)) << error;
    EXPECT_EQ(store.duplicate_hashes(), 1u);
  }
  ResultsStore reloaded;
  ASSERT_TRUE(reloaded.open(path, sample_provenance(), &error)) << error;
  EXPECT_EQ(reloaded.duplicate_hashes(), 1u);
}

TEST(ResultsStore, UnknownRecordKindsAreSkippedNotFatal) {
  const std::string path = temp_store("store_forward.jsonl");
  std::string error;
  {
    ResultsStore store;
    ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
    ASSERT_TRUE(store.append(sample_record(0x11), &error)) << error;
  }
  std::ofstream(path, std::ios::binary | std::ios::app)
      << "{\"kind\":\"future-annotation\",\"payload\":42}\n";
  ResultsStore store;
  ASSERT_TRUE(store.open(path, sample_provenance(), &error)) << error;
  EXPECT_EQ(store.records().size(), 1u);
  std::vector<SweepRecord> records;
  ASSERT_TRUE(ResultsStore::load(path, &records, &error)) << error;
  EXPECT_EQ(records.size(), 1u);
}

TEST(ResultsStore, RecordJsonRoundTrip) {
  const SweepRecord record = sample_record(0xabcdef0123456789ull);
  const Json json = sweep_record_to_json(record);
  SweepRecord back;
  std::string error;
  ASSERT_TRUE(sweep_record_from_json(json, &back, &error)) << error;
  EXPECT_EQ(back.config_hash, record.config_hash);
  EXPECT_EQ(back.label, record.label);
  EXPECT_EQ(back.workload, record.workload);
  EXPECT_EQ(back.params, record.params);
  EXPECT_EQ(back.seed, record.seed);
  EXPECT_EQ(back.nodes, record.nodes);
  EXPECT_EQ(back.l1_bytes, record.l1_bytes);
  EXPECT_EQ(back.block_bytes, record.block_bytes);
  EXPECT_EQ(back.result.exec_time, record.result.exec_time);
  EXPECT_EQ(back.result.traffic_total, record.result.traffic_total);
}

}  // namespace
}  // namespace lssim
