// Sweep-runner contract tests, including ROADMAP item 4's resumability
// acceptance: interrupt a sweep mid-store, resume, and the final store
// is byte-identical to an uninterrupted run with no config hash
// executed (or recorded) twice.
#include "sweep/runner.hpp"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sweep/matrix.hpp"

namespace lssim {
namespace {

namespace fs = std::filesystem;

std::string temp_store(const char* name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  return path.string();
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Four quick pingpong cells (two protocols x two node counts).
std::vector<SweepUnit> quick_units() {
  SweepAxes axes;
  axes.workloads = {"pingpong"};
  axes.protocols = {ProtocolKind::kBaseline, ProtocolKind::kLs};
  axes.directories = {DirectoryKind::kFullMap};
  axes.interconnects = {InterconnectKind::kNetwork};
  axes.node_counts = {2, 4};
  axes.l1_sizes = {axes.base.l1.size_bytes};
  axes.l2_sizes = {axes.base.l2.size_bytes};
  axes.block_sizes = {axes.base.l1.block_bytes};
  axes.params.emplace_back("rounds", "20");
  SweepMatrix matrix;
  std::string error;
  EXPECT_TRUE(generate_sweep(axes, &matrix, &error)) << error;
  return matrix.units;
}

SweepRunOptions no_timing_options() {
  SweepRunOptions options;
  options.jobs = 1;
  options.batch = 2;
  options.record_timing = false;  // Reproducible-store mode.
  return options;
}

/// Runs all `units` into a fresh store at `path`; returns the summary.
SweepRunSummary run_all(const std::vector<SweepUnit>& units,
                        const std::string& path,
                        const SweepRunOptions& options) {
  ResultsStore store;
  std::string error;
  EXPECT_TRUE(store.open(path, ResultsStore::Provenance{}, &error)) << error;
  SweepRunSummary summary;
  EXPECT_TRUE(run_sweep(units, store, options, &summary, &error)) << error;
  return summary;
}

TEST(SweepRunner, ExecutesEveryUnitOnceAndRecordsResults) {
  const std::vector<SweepUnit> units = quick_units();
  ASSERT_EQ(units.size(), 4u);
  const std::string path = temp_store("runner_basic.jsonl");
  const SweepRunSummary summary =
      run_all(units, path, no_timing_options());
  EXPECT_EQ(summary.in_shard, 4u);
  EXPECT_EQ(summary.executed, 4u);
  EXPECT_EQ(summary.skipped, 0u);
  EXPECT_EQ(summary.failed, 0u);

  std::vector<SweepRecord> records;
  std::string error;
  ASSERT_TRUE(ResultsStore::load(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].config_hash, units[i].config_hash);
    EXPECT_EQ(records[i].label, units[i].label);
    EXPECT_GT(records[i].result.exec_time, 0u);
    EXPECT_EQ(records[i].wall_seconds, 0.0);  // record_timing off.
  }
}

TEST(SweepRunner, RerunSkipsEverythingAndChangesNothing) {
  const std::vector<SweepUnit> units = quick_units();
  const std::string path = temp_store("runner_rerun.jsonl");
  (void)run_all(units, path, no_timing_options());
  const std::string first = read_all(path);

  ResultsStore store;
  std::string error;
  ASSERT_TRUE(store.open(path, ResultsStore::Provenance{}, &error)) << error;
  SweepRunSummary summary;
  ASSERT_TRUE(run_sweep(units, store, no_timing_options(), &summary, &error))
      << error;
  EXPECT_EQ(summary.skipped, 4u);
  EXPECT_EQ(summary.executed, 0u);  // Zero re-executed hashes on resume.
  EXPECT_EQ(read_all(path), first);
}

// The acceptance test: truncate the store mid-way (as a crash would),
// resume, and the final store is byte-identical to the uninterrupted
// run's — and no config hash appears twice.
TEST(SweepRunner, TruncatedStoreResumesToByteIdenticalResult) {
  const std::vector<SweepUnit> units = quick_units();
  const std::string uninterrupted = temp_store("runner_full.jsonl");
  (void)run_all(units, uninterrupted, no_timing_options());
  const std::string expected = read_all(uninterrupted);

  const std::string resumed = temp_store("runner_resumed.jsonl");
  (void)run_all(units, resumed, no_timing_options());
  // Chop mid-way through the third record line: the second record
  // survives, the third becomes the partial trailing line open() repairs.
  const std::string full = read_all(resumed);
  std::size_t offset = 0;
  for (int newlines = 0; newlines < 3; ++newlines) {
    offset = full.find('\n', offset) + 1;
  }
  ASSERT_LT(offset + 10, full.size());
  fs::resize_file(resumed, offset + 10);

  ResultsStore store;
  std::string error;
  ASSERT_TRUE(store.open(resumed, ResultsStore::Provenance{}, &error))
      << error;
  SweepRunSummary summary;
  ASSERT_TRUE(run_sweep(units, store, no_timing_options(), &summary, &error))
      << error;
  EXPECT_EQ(summary.skipped, 2u);   // Header + two complete records kept.
  EXPECT_EQ(summary.executed, 2u);  // The chopped one and the missing one.
  EXPECT_EQ(read_all(resumed), expected) << "resume is not byte-identical";

  std::vector<SweepRecord> records;
  ASSERT_TRUE(ResultsStore::load(resumed, &records, &error)) << error;
  std::set<std::uint64_t> seen;
  for (const SweepRecord& record : records) {
    EXPECT_TRUE(seen.insert(record.config_hash).second)
        << "hash recorded twice: " << record.label;
  }
  EXPECT_EQ(seen.size(), units.size());
}

TEST(SweepRunner, ShardsPartitionTheMatrix) {
  const std::vector<SweepUnit> units = quick_units();
  const std::string shard0 = temp_store("runner_shard0.jsonl");
  const std::string shard1 = temp_store("runner_shard1.jsonl");
  SweepRunOptions options = no_timing_options();
  options.shard_count = 2;
  options.shard_index = 0;
  const SweepRunSummary s0 = run_all(units, shard0, options);
  options.shard_index = 1;
  const SweepRunSummary s1 = run_all(units, shard1, options);
  EXPECT_EQ(s0.in_shard, 2u);
  EXPECT_EQ(s1.in_shard, 2u);
  EXPECT_EQ(s0.executed + s1.executed, units.size());

  std::vector<SweepRecord> r0, r1;
  std::string error;
  ASSERT_TRUE(ResultsStore::load(shard0, &r0, &error)) << error;
  ASSERT_TRUE(ResultsStore::load(shard1, &r1, &error)) << error;
  std::set<std::uint64_t> seen;
  for (const SweepRecord& record : r0) seen.insert(record.config_hash);
  for (const SweepRecord& record : r1) seen.insert(record.config_hash);
  EXPECT_EQ(seen.size(), units.size()) << "shards overlap or drop units";
}

TEST(SweepRunner, ParallelJobsProduceTheSameStoreBytes) {
  const std::vector<SweepUnit> units = quick_units();
  const std::string serial = temp_store("runner_serial.jsonl");
  const std::string parallel = temp_store("runner_parallel.jsonl");
  (void)run_all(units, serial, no_timing_options());
  SweepRunOptions options = no_timing_options();
  options.jobs = 4;
  (void)run_all(units, parallel, options);
  EXPECT_EQ(read_all(serial), read_all(parallel));
}

TEST(SweepRunner, FailedUnitsAreReportedNotRecorded) {
  std::vector<SweepUnit> units = quick_units();
  // Sabotage one cell with a parameter pingpong rejects; the runner
  // must keep going and leave the bad cell out of the store.
  units[1].params.emplace_back("no_such_param", "1");
  const std::string path = temp_store("runner_failed.jsonl");
  const SweepRunSummary summary =
      run_all(units, path, no_timing_options());
  EXPECT_EQ(summary.executed, 3u);
  EXPECT_EQ(summary.failed, 1u);
  ASSERT_EQ(summary.errors.size(), 1u);
  EXPECT_NE(summary.errors[0].find(units[1].label), std::string::npos);

  std::vector<SweepRecord> records;
  std::string error;
  ASSERT_TRUE(ResultsStore::load(path, &records, &error)) << error;
  EXPECT_EQ(records.size(), 3u);
}

}  // namespace
}  // namespace lssim
