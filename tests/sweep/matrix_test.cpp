#include "sweep/matrix.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/protocol_registry.hpp"

namespace lssim {
namespace {

SweepAxes small_axes() {
  SweepAxes axes;
  axes.workloads = {"pingpong"};
  axes.protocols = {ProtocolKind::kBaseline, ProtocolKind::kLs};
  axes.directories = {DirectoryKind::kFullMap};
  axes.interconnects = {InterconnectKind::kNetwork};
  axes.node_counts = {2, 4};
  axes.l1_sizes = {axes.base.l1.size_bytes};
  axes.l2_sizes = {axes.base.l2.size_bytes};
  axes.block_sizes = {axes.base.l1.block_bytes};
  return axes;
}

std::vector<DirectoryKind> all_directories() {
  std::vector<DirectoryKind> kinds;
  for (const DirectoryNameEntry& entry : kDirectoryNameTable) {
    kinds.push_back(entry.kind);
  }
  return kinds;
}

std::vector<InterconnectKind> all_interconnects() {
  std::vector<InterconnectKind> kinds;
  for (const InterconnectNameEntry& entry : kInterconnectNameTable) {
    kinds.push_back(entry.kind);
  }
  return kinds;
}

TEST(SweepMatrix, ExpandsCrossProductInDocumentedOrder) {
  SweepMatrix matrix;
  std::string error;
  ASSERT_TRUE(generate_sweep(small_axes(), &matrix, &error)) << error;
  ASSERT_EQ(matrix.units.size(), 4u);
  EXPECT_EQ(matrix.combinations, 4u);
  // Protocol-major over node counts (workload/protocol/.../nodes order).
  EXPECT_EQ(matrix.units[0].label,
            "pingpong/Baseline/full-map/network/n2/l1=4096/l2=65536/b16");
  EXPECT_EQ(matrix.units[1].label,
            "pingpong/Baseline/full-map/network/n4/l1=4096/l2=65536/b16");
  EXPECT_EQ(matrix.units[2].label,
            "pingpong/LS/full-map/network/n2/l1=4096/l2=65536/b16");
  EXPECT_EQ(matrix.units[3].label,
            "pingpong/LS/full-map/network/n4/l1=4096/l2=65536/b16");
  for (const SweepUnit& unit : matrix.units) {
    EXPECT_TRUE(unit.machine.validate().empty());
    EXPECT_NE(unit.config_hash, 0u);
  }
}

TEST(SweepMatrix, GenerationIsDeterministic) {
  SweepMatrix a, b;
  std::string error;
  ASSERT_TRUE(generate_sweep(small_axes(), &a, &error)) << error;
  ASSERT_TRUE(generate_sweep(small_axes(), &b, &error)) << error;
  ASSERT_EQ(a.units.size(), b.units.size());
  for (std::size_t i = 0; i < a.units.size(); ++i) {
    EXPECT_EQ(a.units[i].label, b.units[i].label);
    EXPECT_EQ(a.units[i].config_hash, b.units[i].config_hash);
  }
}

TEST(SweepMatrix, HashesAreUniqueAcrossCells) {
  SweepAxes axes = small_axes();
  axes.protocols = all_protocol_kinds();
  axes.directories = all_directories();
  axes.interconnects = all_interconnects();
  axes.node_counts = {2, 4, 8};
  SweepMatrix matrix;
  std::string error;
  ASSERT_TRUE(generate_sweep(axes, &matrix, &error)) << error;
  std::set<std::uint64_t> hashes;
  for (const SweepUnit& unit : matrix.units) {
    EXPECT_TRUE(hashes.insert(unit.config_hash).second)
        << "duplicate hash for " << unit.label;
  }
}

TEST(SweepMatrix, PrunesInvalidMachinesInsteadOfErroring) {
  SweepAxes axes = small_axes();
  // full-map past 64 nodes is invalid; 96 must be pruned, 4 kept.
  axes.node_counts = {4, 96};
  SweepMatrix matrix;
  std::string error;
  ASSERT_TRUE(generate_sweep(axes, &matrix, &error)) << error;
  EXPECT_EQ(matrix.combinations, 4u);
  EXPECT_EQ(matrix.units.size(), 2u);
  EXPECT_EQ(matrix.pruned_invalid, 2u);
  for (const SweepUnit& unit : matrix.units) {
    EXPECT_EQ(unit.machine.num_nodes, 4);
  }
}

TEST(SweepMatrix, IncludeExcludeFiltersMatchLabels) {
  SweepAxes axes = small_axes();
  axes.include = {"/LS/"};
  SweepMatrix matrix;
  std::string error;
  ASSERT_TRUE(generate_sweep(axes, &matrix, &error)) << error;
  ASSERT_EQ(matrix.units.size(), 2u);
  EXPECT_EQ(matrix.filtered_out, 2u);

  axes.include.clear();
  axes.exclude = {"/n4/"};
  ASSERT_TRUE(generate_sweep(axes, &matrix, &error)) << error;
  ASSERT_EQ(matrix.units.size(), 2u);
  for (const SweepUnit& unit : matrix.units) {
    EXPECT_EQ(unit.machine.num_nodes, 2);
  }
}

TEST(SweepMatrix, RejectsEmptyAxesAndUnknownWorkloads) {
  SweepMatrix matrix;
  std::string error;
  SweepAxes axes = small_axes();
  axes.protocols.clear();
  EXPECT_FALSE(generate_sweep(axes, &matrix, &error));
  EXPECT_FALSE(error.empty());

  axes = small_axes();
  axes.workloads = {"no-such-workload"};
  EXPECT_FALSE(generate_sweep(axes, &matrix, &error));
  EXPECT_NE(error.find("no-such-workload"), std::string::npos);
}

TEST(SweepMatrix, ParamsAndSeedChangeTheHash) {
  SweepAxes plain = small_axes();
  SweepAxes with_params = small_axes();
  with_params.params.emplace_back("rounds", "50");
  SweepAxes with_seed = small_axes();
  with_seed.seed = 7;
  SweepMatrix a, b, c;
  std::string error;
  ASSERT_TRUE(generate_sweep(plain, &a, &error)) << error;
  ASSERT_TRUE(generate_sweep(with_params, &b, &error)) << error;
  ASSERT_TRUE(generate_sweep(with_seed, &c, &error)) << error;
  EXPECT_NE(a.units[0].config_hash, b.units[0].config_hash);
  EXPECT_NE(a.units[0].config_hash, c.units[0].config_hash);
  EXPECT_NE(b.units[0].config_hash, c.units[0].config_hash);
}

// The acceptance floor from ROADMAP item 4: a realistic filter
// expression must expand to at least 500 valid configurations.
TEST(SweepMatrix, RealisticAxesYieldAtLeast500ValidConfigs) {
  SweepAxes axes = small_axes();
  axes.workloads = {"pingpong", "private", "readmostly"};
  axes.protocols = all_protocol_kinds();
  axes.directories = all_directories();
  axes.interconnects = all_interconnects();
  axes.node_counts = {2, 4, 8, 16};
  axes.exclude = {"/Dragon/"};  // A filter expression, as the floor asks.
  SweepMatrix matrix;
  std::string error;
  ASSERT_TRUE(generate_sweep(axes, &matrix, &error)) << error;
  EXPECT_GE(matrix.units.size(), 500u);
  for (const SweepUnit& unit : matrix.units) {
    EXPECT_TRUE(unit.machine.validate().empty()) << unit.label;
  }
}

}  // namespace
}  // namespace lssim
