// OLTP workload: transactional consistency (balances must reconcile) and
// the sharing-profile diagnostics the paper reports in §5.4.
#include "workloads/oltp.hpp"

#include <gtest/gtest.h>

#include "workloads/harness.hpp"

namespace lssim {
namespace {

MachineConfig oltp_cfg(ProtocolKind kind) {
  MachineConfig cfg = MachineConfig::oltp_default(kind);
  // Smaller caches keep unit-test runtimes low while preserving the
  // capacity-miss-heavy character.
  cfg.l1 = CacheConfig{8 * 1024, 2, 32};
  cfg.l2 = CacheConfig{64 * 1024, 1, 32};
  return cfg;
}

OltpParams small_params() {
  OltpParams p;
  p.accounts = 8192;
  p.txns_per_proc = 300;
  p.hot_accounts = 512;
  return p;
}

TEST(Oltp, RunsToCompletionUnderAllProtocols) {
  for (ProtocolKind kind :
       {ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs}) {
    const RunResult r = run_experiment(
        oltp_cfg(kind),
        [&](System& sys) { build_oltp(sys, small_params()); });
    EXPECT_GT(r.accesses, 10000u) << to_string(kind);
    EXPECT_GT(r.exec_time, 0u);
  }
}

TEST(Oltp, CoherenceInvariantsHoldAfterRun) {
  System sys(oltp_cfg(ProtocolKind::kLs));
  build_oltp(sys, small_params());
  sys.run();
  EXPECT_TRUE(sys.memory().check_coherence_invariants());
}

TEST(Oltp, AllStreamComponentsAppear) {
  const RunResult r = run_experiment(
      oltp_cfg(ProtocolKind::kBaseline),
      [&](System& sys) { build_oltp(sys, small_params()); });
  // Table 2's three-way split requires all components to issue global
  // write actions.
  EXPECT_GT(r.oracle_by_tag[static_cast<int>(StreamTag::kApp)].global_writes,
            0u);
  EXPECT_GT(
      r.oracle_by_tag[static_cast<int>(StreamTag::kLibrary)].global_writes,
      0u);
  EXPECT_GT(r.oracle_by_tag[static_cast<int>(StreamTag::kOs)].global_writes,
            0u);
}

TEST(Oltp, SharingProfileInPaperRegime) {
  const RunResult r = run_experiment(
      oltp_cfg(ProtocolKind::kBaseline),
      [&](System& sys) { build_oltp(sys, small_params()); });
  // Paper §5.4 / Table 2: ~42% of global writes are load-store; ~47% of
  // those migratory; ~1.4 invalidations per global write. Accept a broad
  // band — the tests pin the regime, EXPERIMENTS.md records the values.
  EXPECT_GT(r.oracle_total.ls_fraction(), 0.25);
  EXPECT_LT(r.oracle_total.ls_fraction(), 0.75);
  EXPECT_GT(r.oracle_total.migratory_fraction(), 0.25);
  EXPECT_LT(r.oracle_total.migratory_fraction(), 0.8);
  // Writes hit read-shared copies regularly (the paper reports ~1.4
  // invalidations per global write on the full-size workload; the
  // miniaturized working set keeps reader copies alive for less time, so
  // the ratio lands lower — see EXPERIMENTS.md).
  EXPECT_GT(r.invalidations_per_write(), 0.35);
}

TEST(Oltp, LsBeatsAdOnWriteStall) {
  const RunResult base = run_experiment(
      oltp_cfg(ProtocolKind::kBaseline),
      [&](System& sys) { build_oltp(sys, small_params()); });
  const RunResult ad = run_experiment(
      oltp_cfg(ProtocolKind::kAd),
      [&](System& sys) { build_oltp(sys, small_params()); });
  const RunResult ls = run_experiment(
      oltp_cfg(ProtocolKind::kLs),
      [&](System& sys) { build_oltp(sys, small_params()); });
  EXPECT_LT(ls.time.write_stall, base.time.write_stall);
  EXPECT_LT(ls.time.write_stall, ad.time.write_stall);
  EXPECT_GT(ls.eliminated_acquisitions, ad.eliminated_acquisitions);
}

TEST(Oltp, Deterministic) {
  auto once = [] {
    return run_experiment(
        oltp_cfg(ProtocolKind::kLs),
        [&](System& sys) { build_oltp(sys, small_params()); });
  };
  const RunResult a = once();
  const RunResult b = once();
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.traffic_total, b.traffic_total);
}

TEST(Oltp, FalseSharingClassifierFindsFalseSharing) {
  MachineConfig cfg = oltp_cfg(ProtocolKind::kBaseline);
  cfg.classify_false_sharing = true;
  const RunResult r = run_experiment(
      cfg, [&](System& sys) { build_oltp(sys, small_params()); });
  EXPECT_GT(r.coherence_misses, 0u);
  EXPECT_GT(r.false_sharing_misses, 0u);
  EXPECT_LE(r.false_sharing_misses, r.coherence_misses);
}

}  // namespace
}  // namespace lssim
