// Radix sort workload: correctness (sortedness + permutation) and its
// role as a negative control for ownership-overhead techniques.
#include "workloads/radix.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "workloads/harness.hpp"

namespace lssim {
namespace {

MachineConfig small_cfg(ProtocolKind kind) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{8192, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

TEST(Radix, SortsCorrectly) {
  RadixParams params;
  params.keys = 2048;
  System sys(small_cfg(ProtocolKind::kLs));
  build_radix(sys, params);
  sys.run();
  const Addr base = radix_result_base(params);
  std::uint64_t prev = 0;
  std::map<std::uint64_t, int> histogram;
  for (int i = 0; i < params.keys; ++i) {
    const std::uint64_t key =
        sys.space().load(base + static_cast<Addr>(i) * 4, 4);
    EXPECT_GE(key, prev) << "unsorted at index " << i;
    prev = key;
    histogram[key] += 1;
  }
  // The output must be a permutation of the input: regenerate the input
  // multiset from the same per-processor seeds.
  std::map<std::uint64_t, int> expected;
  System fresh(small_cfg(ProtocolKind::kLs));
  for (int n = 0; n < 4; ++n) {
    Rng& rng = fresh.proc(static_cast<NodeId>(n)).rng();
    const int first = params.keys * n / 4;
    const int last = params.keys * (n + 1) / 4;
    for (int i = first; i < last; ++i) {
      expected[rng.next_below(std::uint64_t{1} << params.key_bits)] += 1;
    }
  }
  EXPECT_EQ(histogram, expected);
}

TEST(Radix, SortsUnderEveryProtocol) {
  for (ProtocolKind kind : {ProtocolKind::kBaseline, ProtocolKind::kAd,
                            ProtocolKind::kLs, ProtocolKind::kIls}) {
    RadixParams params;
    params.keys = 1024;
    System sys(small_cfg(kind));
    build_radix(sys, params);
    sys.run();
    const Addr base = radix_result_base(params);
    std::uint64_t prev = 0;
    for (int i = 0; i < params.keys; ++i) {
      const std::uint64_t key =
          sys.space().load(base + static_cast<Addr>(i) * 4, 4);
      ASSERT_GE(key, prev) << to_string(kind) << " index " << i;
      prev = key;
    }
  }
}

TEST(Radix, IsANegativeControlForLs) {
  // Permutation writes are lone writes: LS must not find much to
  // eliminate, and must not hurt either.
  RadixParams params;
  params.keys = 8192;
  const RunResult base = run_experiment(
      small_cfg(ProtocolKind::kBaseline),
      [&](System& sys) { build_radix(sys, params); });
  const RunResult ls = run_experiment(
      small_cfg(ProtocolKind::kLs),
      [&](System& sys) { build_radix(sys, params); });
  // Little opportunity: eliminated acquisitions are a small fraction of
  // global writes (histogram counters only).
  EXPECT_LT(static_cast<double>(ls.eliminated_acquisitions),
            0.45 * static_cast<double>(base.global_write_actions));
  // And no material harm.
  EXPECT_LT(static_cast<double>(ls.exec_time),
            1.10 * static_cast<double>(base.exec_time));
  EXPECT_LT(base.oracle_total.ls_fraction(), 0.7);
}

TEST(Radix, DeterministicAcrossRuns) {
  auto once = [] {
    RadixParams params;
    params.keys = 1024;
    return run_experiment(small_cfg(ProtocolKind::kAd), [&](System& sys) {
      build_radix(sys, params);
    });
  };
  const RunResult a = once();
  const RunResult b = once();
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.traffic_total, b.traffic_total);
}

TEST(Radix, ResultBaseAccountsForPassParity) {
  RadixParams two_pass;  // 16-bit keys, 8-bit digits: 2 passes -> A.
  EXPECT_EQ(radix_result_base(two_pass), Addr{1} << 40);
  RadixParams three_pass;
  three_pass.key_bits = 24;  // 3 passes -> B.
  EXPECT_GT(radix_result_base(three_pass), Addr{1} << 40);
}

}  // namespace
}  // namespace lssim
