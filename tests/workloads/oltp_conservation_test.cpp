// OLTP money conservation: TPC-B applies the same delta to an account, a
// teller and a branch, all inside the transaction's locks. If mutual
// exclusion or coherence ever delivered a stale balance, the three table
// totals would disagree. This is an end-to-end data-race detector for
// the whole stack (locks over simulated memory + protocol + scheduler).
#include <gtest/gtest.h>

#include "workloads/harness.hpp"
#include "workloads/oltp.hpp"

namespace lssim {
namespace {

// Mirrors the layout constants in workloads/oltp.cpp.
constexpr Addr kHeapBase = Addr{1} << 40;
constexpr Addr kRecordBytes = 16;

struct Totals {
  std::int64_t branches = 0;
  std::int64_t tellers = 0;
  std::int64_t accounts = 0;
};

Totals read_totals(System& sys, const OltpParams& p) {
  Totals totals;
  Addr cursor = kHeapBase;
  for (int b = 0; b < p.branches; ++b) {
    totals.branches += static_cast<std::int64_t>(
                           sys.space().load(cursor + b * kRecordBytes, 8)) -
                       1000;
  }
  cursor += static_cast<Addr>(p.branches) * kRecordBytes;
  const int tellers = p.branches * p.tellers_per_branch;
  for (int t = 0; t < tellers; ++t) {
    totals.tellers += static_cast<std::int64_t>(
                          sys.space().load(cursor + t * kRecordBytes, 8)) -
                      100;
  }
  cursor += static_cast<Addr>(tellers) * kRecordBytes;
  for (int a = 0; a < p.accounts; ++a) {
    totals.accounts += static_cast<std::int64_t>(
        sys.space().load(cursor + static_cast<Addr>(a) * kRecordBytes, 8));
  }
  return totals;
}

class OltpConservation : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(OltpConservation, TableTotalsAgree) {
  MachineConfig cfg = MachineConfig::oltp_default(GetParam());
  cfg.l1 = CacheConfig{8 * 1024, 2, 32};
  cfg.l2 = CacheConfig{32 * 1024, 1, 32};
  OltpParams params;
  params.accounts = 16384;  // Keep the final table scan cheap.
  params.hot_accounts = 2048;
  params.txns_per_proc = 400;
  System sys(cfg);
  build_oltp(sys, params);
  sys.run();

  const Totals totals = read_totals(sys, params);
  // Every update adds delta to exactly one row of each table, under the
  // teller+branch locks — the totals must match exactly.
  EXPECT_EQ(totals.branches, totals.tellers);
  EXPECT_EQ(totals.branches, totals.accounts);
  // And money actually moved.
  EXPECT_NE(totals.branches, 0);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, OltpConservation,
                         ::testing::Values(ProtocolKind::kBaseline,
                                           ProtocolKind::kAd,
                                           ProtocolKind::kLs,
                                           ProtocolKind::kIls,
                                           ProtocolKind::kLsAd),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == '+') c = '_';  // "LS+AD" -> "LS_AD".
                           }
                           return name;
                         });

}  // namespace
}  // namespace lssim
