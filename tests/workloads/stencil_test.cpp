// Red-black stencil: numerical behaviour and sharing profile.
#include "workloads/stencil.hpp"

#include <gtest/gtest.h>

#include "mem/shared_heap.hpp"
#include "workloads/harness.hpp"

namespace lssim {
namespace {

MachineConfig small_cfg(ProtocolKind kind) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{8192, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

std::vector<double> residuals_of(System& sys, const StencilParams& p) {
  std::vector<double> out;
  const Addr base = stencil_residual_base(p);
  for (int s = 0; s < p.sweeps; ++s) {
    out.push_back(
        from_bits(sys.space().load(base + static_cast<Addr>(s) * 8, 8)));
  }
  return out;
}

TEST(Stencil, ResidualDecreases) {
  StencilParams params;
  params.width = 32;
  params.height = 32;
  params.sweeps = 10;
  System sys(small_cfg(ProtocolKind::kLs));
  build_stencil(sys, params);
  sys.run();
  const std::vector<double> residuals = residuals_of(sys, params);
  ASSERT_EQ(residuals.size(), 10u);
  EXPECT_GT(residuals.front(), 0.0);
  EXPECT_LT(residuals.back(), residuals.front() / 2);
}

TEST(Stencil, HeatSpreadsFromHotEdge) {
  StencilParams params;
  params.width = 16;
  params.height = 16;
  params.sweeps = 8;
  System sys(small_cfg(ProtocolKind::kBaseline));
  build_stencil(sys, params);
  sys.run();
  const double near_edge =
      from_bits(sys.space().load(stencil_cell_addr(params, 1, 8), 8));
  const double far_side = from_bits(
      sys.space().load(stencil_cell_addr(params, params.width - 2, 8), 8));
  EXPECT_GT(near_edge, far_side);
  EXPECT_GT(near_edge, 1.0);
}

TEST(Stencil, AllProtocolsComputeIdenticalFields) {
  StencilParams params;
  params.width = 16;
  params.height = 16;
  params.sweeps = 6;
  std::vector<std::vector<double>> fields;
  for (ProtocolKind kind : {ProtocolKind::kBaseline, ProtocolKind::kAd,
                            ProtocolKind::kLs, ProtocolKind::kIls}) {
    System sys(small_cfg(kind));
    build_stencil(sys, params);
    sys.run();
    std::vector<double> flat;
    for (int y = 0; y < params.height; ++y) {
      for (int x = 0; x < params.width; ++x) {
        flat.push_back(from_bits(
            sys.space().load(stencil_cell_addr(params, x, y), 8)));
      }
    }
    fields.push_back(std::move(flat));
  }
  EXPECT_EQ(fields[0], fields[1]);
  EXPECT_EQ(fields[0], fields[2]);
  EXPECT_EQ(fields[0], fields[3]);
}

TEST(Stencil, InteriorSequencesAreLsNotMigratory) {
  StencilParams params;
  params.width = 96;
  params.height = 96;  // 72 kB grid >> the 8 kB L2 here.
  params.sweeps = 4;
  const RunResult base = run_experiment(
      small_cfg(ProtocolKind::kBaseline),
      [&](System& sys) { build_stencil(sys, params); });
  // In-place cell updates: read-then-write by the same owner every sweep.
  EXPECT_GT(base.oracle_total.ls_fraction(), 0.6);
  EXPECT_LT(base.oracle_total.migratory_fraction(), 0.3);
  // LS eliminates; migratory detection cannot.
  const RunResult ls = run_experiment(
      small_cfg(ProtocolKind::kLs),
      [&](System& sys) { build_stencil(sys, params); });
  const RunResult ad = run_experiment(
      small_cfg(ProtocolKind::kAd),
      [&](System& sys) { build_stencil(sys, params); });
  EXPECT_GT(ls.eliminated_acquisitions,
            4 * ad.eliminated_acquisitions + 100);
  EXPECT_LT(ls.time.write_stall, base.time.write_stall * 3 / 4);
}

TEST(Stencil, Deterministic) {
  auto once = [] {
    StencilParams params;
    params.width = 24;
    params.height = 24;
    params.sweeps = 4;
    return run_experiment(small_cfg(ProtocolKind::kLs), [&](System& sys) {
      build_stencil(sys, params);
    });
  };
  EXPECT_EQ(once().exec_time, once().exec_time);
}

}  // namespace
}  // namespace lssim
