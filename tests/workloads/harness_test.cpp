// Harness: collect() must be a faithful snapshot of the System's stats.
#include "workloads/harness.hpp"

#include <gtest/gtest.h>

#include "workloads/micro.hpp"

namespace lssim {
namespace {

MachineConfig tiny_cfg(ProtocolKind kind = ProtocolKind::kLs) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{4096, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

TEST(Harness, CollectMatchesStats) {
  System sys(tiny_cfg());
  build_pingpong(sys, PingPongParams{.rounds = 80, .counters = 2});
  sys.run();
  const RunResult r = collect(sys);
  const Stats& stats = sys.stats();
  EXPECT_EQ(r.protocol, ProtocolKind::kLs);
  EXPECT_EQ(r.exec_time, sys.exec_time());
  EXPECT_EQ(r.accesses, stats.accesses);
  EXPECT_EQ(r.traffic_total, stats.messages_total());
  EXPECT_EQ(r.traffic[0], stats.messages_of_class(MsgClass::kRead));
  EXPECT_EQ(r.traffic[1], stats.messages_of_class(MsgClass::kWrite));
  EXPECT_EQ(r.traffic[2], stats.messages_of_class(MsgClass::kOther));
  EXPECT_EQ(r.global_read_misses, stats.global_read_misses);
  EXPECT_EQ(r.eliminated_acquisitions, stats.eliminated_acquisitions);
  EXPECT_EQ(r.time.busy, stats.time_total().busy);
  EXPECT_EQ(r.oracle_total.global_writes,
            sys.memory().oracle().total().global_writes);
}

TEST(Harness, TimeBreakdownSumsToProcessorClocks) {
  System sys(tiny_cfg());
  build_pingpong(sys, PingPongParams{.rounds = 60, .counters = 1});
  sys.run();
  Cycles clocks = 0;
  for (int n = 0; n < sys.num_procs(); ++n) {
    clocks += sys.proc(static_cast<NodeId>(n)).time();
  }
  EXPECT_EQ(sys.stats().time_total().total(), clocks);
}

TEST(Harness, ReadMissHomeStatesSumToReadMisses) {
  const RunResult r = run_experiment(tiny_cfg(), [](System& sys) {
    build_read_mostly(sys, ReadMostlyParams{.words = 256, .rounds = 40});
  });
  std::uint64_t by_state = 0;
  for (auto c : r.read_miss_home) by_state += c;
  EXPECT_EQ(by_state, r.global_read_misses);
}

TEST(Harness, InvalidationsPerWriteMath) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.invalidations_per_write(), 0.0);
  r.global_write_actions = 10;
  r.invalidations = 14;
  EXPECT_DOUBLE_EQ(r.invalidations_per_write(), 1.4);
}

TEST(Harness, RunExperimentHonorsSeed) {
  auto run = [](std::uint64_t seed) {
    return run_experiment(
        tiny_cfg(),
        [](System& sys) {
          build_pingpong(sys, PingPongParams{.rounds = 40, .counters = 1});
        },
        seed);
  };
  EXPECT_EQ(run(3).exec_time, run(3).exec_time);
  // Different seeds change per-processor RNG (backoffs) and thus timing.
  EXPECT_NE(run(3).exec_time, run(4).exec_time);
}

TEST(Harness, OracleByTagSumsToTotal) {
  const RunResult r = run_experiment(tiny_cfg(), [](System& sys) {
    build_pingpong(sys, PingPongParams{.rounds = 50, .counters = 1});
  });
  std::uint64_t writes = 0;
  for (const auto& c : r.oracle_by_tag) writes += c.global_writes;
  EXPECT_EQ(writes, r.oracle_total.global_writes);
}

}  // namespace
}  // namespace lssim
