// Micro-workloads: behaviour is analytically predictable, so these tests
// pin down the protocol-vs-workload interactions the paper describes.
#include "workloads/micro.hpp"

#include <gtest/gtest.h>

#include "workloads/harness.hpp"

namespace lssim {
namespace {

MachineConfig cfg_for(ProtocolKind kind) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{8192, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

RunResult run_pingpong(ProtocolKind kind) {
  return run_experiment(cfg_for(kind), [](System& sys) {
    build_pingpong(sys, PingPongParams{.rounds = 300, .counters = 1});
  });
}

TEST(MicroPingPong, BothTechniquesEliminateOwnership) {
  const RunResult base = run_pingpong(ProtocolKind::kBaseline);
  const RunResult ad = run_pingpong(ProtocolKind::kAd);
  const RunResult ls = run_pingpong(ProtocolKind::kLs);
  EXPECT_EQ(base.eliminated_acquisitions, 0u);
  EXPECT_GT(ad.eliminated_acquisitions, 500u);
  EXPECT_GT(ls.eliminated_acquisitions, 500u);
  // Write stall drops substantially for both techniques (the turn word's
  // upgrades remain, the counter's ownership acquisitions disappear).
  EXPECT_LT(ls.time.write_stall, base.time.write_stall * 3 / 4);
  EXPECT_LT(ad.time.write_stall, base.time.write_stall * 3 / 4);
}

TEST(MicroPingPong, TechniquesReduceTraffic) {
  const RunResult base = run_pingpong(ProtocolKind::kBaseline);
  const RunResult ls = run_pingpong(ProtocolKind::kLs);
  EXPECT_LT(ls.traffic_total, base.traffic_total);
}

TEST(MicroPingPong, OracleSeesMigratorySharing) {
  const RunResult base = run_pingpong(ProtocolKind::kBaseline);
  // The counter's writes (about half of all global writes; the rest are
  // the turn word's) are load-store sequences, and nearly all of them
  // migrate between the four processors.
  EXPECT_GT(base.oracle_total.ls_fraction(), 0.4);
  EXPECT_GT(base.oracle_total.migratory_fraction(), 0.9);
}

RunResult run_private(ProtocolKind kind) {
  return run_experiment(cfg_for(kind), [](System& sys) {
    build_private_rmw(sys,
                      PrivateRmwParams{.words_per_proc = 4096, .sweeps = 3});
  });
}

TEST(MicroPrivateRmw, OnlyLsEliminatesReplacementBrokenSequences) {
  // 4096 words * 8B = 32 kB per processor >> 8 kB L2: every sweep misses
  // and re-establishes ownership. The data never migrates, so AD finds
  // nothing; LS tags on the first sweep's upgrades and converts later
  // sweeps' writes into local ones.
  const RunResult base = run_private(ProtocolKind::kBaseline);
  const RunResult ad = run_private(ProtocolKind::kAd);
  const RunResult ls = run_private(ProtocolKind::kLs);
  EXPECT_EQ(base.eliminated_acquisitions, 0u);
  EXPECT_EQ(ad.eliminated_acquisitions, 0u);
  // 2048 blocks per processor (2 words/block), tagged during sweep 1, one
  // eliminated ownership acquisition per block in each later sweep:
  // 2048 * 2 sweeps * 4 processors = 16384.
  EXPECT_GT(ls.eliminated_acquisitions, 15000u);
  EXPECT_LT(ls.time.write_stall, base.time.write_stall / 2);
  // AD behaves like baseline here (paper: Cholesky at 4 processors).
  EXPECT_NEAR(static_cast<double>(ad.time.write_stall),
              static_cast<double>(base.time.write_stall),
              0.05 * static_cast<double>(base.time.write_stall));
}

TEST(MicroPrivateRmw, OracleSeesLoadStoreWithoutMigration) {
  const RunResult base = run_private(ProtocolKind::kBaseline);
  EXPECT_GT(base.oracle_total.ls_fraction(), 0.9);
  EXPECT_LT(base.oracle_total.migratory_fraction(), 0.05);
}

RunResult run_read_mostly(ProtocolKind kind) {
  return run_experiment(cfg_for(kind), [](System& sys) {
    build_read_mostly(sys, ReadMostlyParams{.words = 512, .rounds = 100});
  });
}

TEST(MicroReadMostly, LsDoesNotExplodeReadMisses) {
  // Writes to read-shared data can mis-tag blocks; adaptive de-tagging
  // must keep the read-miss inflation modest (paper reports +8% for OLTP
  // and ~1% for LU).
  const RunResult base = run_read_mostly(ProtocolKind::kBaseline);
  const RunResult ls = run_read_mostly(ProtocolKind::kLs);
  EXPECT_LT(static_cast<double>(ls.global_read_misses),
            1.35 * static_cast<double>(base.global_read_misses));
}

TEST(MicroWorkloads, DeterministicResults) {
  const RunResult a = run_pingpong(ProtocolKind::kLs);
  const RunResult b = run_pingpong(ProtocolKind::kLs);
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.traffic_total, b.traffic_total);
  EXPECT_EQ(a.global_read_misses, b.global_read_misses);
}

}  // namespace
}  // namespace lssim
