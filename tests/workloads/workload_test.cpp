// Scientific workloads: correctness of the computations themselves (the
// simulator executes real arithmetic over simulated memory) and basic
// sanity of their sharing profiles.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workloads/cholesky.hpp"
#include "workloads/harness.hpp"
#include "workloads/lu.hpp"
#include "workloads/mp3d.hpp"

namespace lssim {
namespace {

MachineConfig small_cfg(ProtocolKind kind) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{16 * 1024, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

TEST(Lu, FactorizationIsNumericallyCorrect) {
  // Factor a small matrix and verify L*U == A elementwise.
  const int n = 24;
  MachineConfig cfg = small_cfg(ProtocolKind::kLs);
  System sys(cfg);
  LuParams params;
  params.n = n;
  build_lu(sys, params);

  // Snapshot A before running: rebuild the deterministic initial matrix.
  auto init = [&](int i, int j) {
    return (i == j) ? 2.0 * n
                    : 1.0 / (1.0 + static_cast<double>((i * 31 + j * 17) %
                                                       97));
  };
  sys.run();

  // Read back LU from simulated memory. The matrix base is the first
  // global heap allocation; recompute addresses the same way the
  // workload does.
  const Addr base = (Addr{1} << 40);
  auto elem = [&](int i, int j) {
    return from_bits(
        sys.space().load(base + (static_cast<Addr>(i) * n + j) * 8, 8));
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) {
        const double l_ik = (k == i) ? 1.0 : elem(i, k);
        const double u_kj = elem(k, j);
        if (k < i) {
          sum += l_ik * u_kj;
        } else {
          sum += u_kj;  // k == i: L_ii = 1.
        }
      }
      EXPECT_NEAR(sum, init(i, j), 1e-9)
          << "mismatch at (" << i << "," << j << ")";
    }
  }
}

TEST(Lu, AllProtocolsComputeIdenticalFactors) {
  const int n = 16;
  std::vector<std::vector<double>> factors;
  for (ProtocolKind kind :
       {ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs}) {
    System sys(small_cfg(kind));
    LuParams params;
    params.n = n;
    build_lu(sys, params);
    sys.run();
    std::vector<double> flat;
    const Addr base = (Addr{1} << 40);
    for (int i = 0; i < n * n; ++i) {
      flat.push_back(
          from_bits(sys.space().load(base + static_cast<Addr>(i) * 8, 8)));
    }
    factors.push_back(std::move(flat));
  }
  EXPECT_EQ(factors[0], factors[1]);
  EXPECT_EQ(factors[0], factors[2]);
}

TEST(Cholesky, FactorizationSatisfiesLLT) {
  const int n = 32;
  const int bw = 8;
  MachineConfig cfg = small_cfg(ProtocolKind::kLs);
  System sys(cfg);
  CholeskyParams params;
  params.mode = CholeskyMode::kDenseBand;  // True factorization mode.
  params.n = n;
  params.bandwidth = bw;
  build_cholesky(sys, params);
  sys.run();

  // Band storage starts at the global heap base.
  const Addr base = (Addr{1} << 40);
  auto l = [&](int j, int i) {  // L(i, j), i >= j, i - j < bw.
    if (i < j || i - j >= bw) return 0.0;
    return from_bits(sys.space().load(
        base + (static_cast<Addr>(j) * bw + (i - j)) * 8, 8));
  };
  auto init = [&](int j, int i) {  // Original A(i, j).
    if (i < j || i - j >= bw) return 0.0;
    return (i == j) ? 2.0 * bw : 1.0 / (1.0 + i - j);
  };
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < std::min(n, j + bw); ++i) {
      double sum = 0;
      for (int k = 0; k <= j; ++k) {
        sum += l(k, i) * l(k, j);
      }
      EXPECT_NEAR(sum, init(j, i), 1e-9)
          << "mismatch at (" << i << "," << j << ")";
    }
  }
}

TEST(Cholesky, BaselineShowsOwnershipWithoutMigration) {
  // The paper's §5.2 signature at 4 processors: ownership acquisitions
  // dominate; migratory accesses are rare.
  MachineConfig cfg = small_cfg(ProtocolKind::kBaseline);
  CholeskyParams params;
  params.n = 120;
  params.bandwidth = 96;
  params.window = 120;  // Wide visit spacing -> inter-visit evictions.
  const RunResult r = run_experiment(
      cfg, [&](System& sys) { build_cholesky(sys, params); });
  EXPECT_GT(r.ownership_acquisitions, 500u);
  // Task-queue/lock words and residual stealing migrate; the column data
  // (the bulk of the load-store sequences) does not.
  EXPECT_LT(r.oracle_total.migratory_fraction(), 0.45);
  EXPECT_GT(r.oracle_total.ls_fraction(), 0.4);
}

TEST(Mp3d, RunsAndConservesParticleCount) {
  MachineConfig cfg = small_cfg(ProtocolKind::kLs);
  System sys(cfg);
  Mp3dParams params;
  params.particles = 400;
  params.steps = 3;
  build_mp3d(sys, params);
  sys.run();
  // Sum of cell counts == particles * steps (every particle lands in
  // exactly one cell each step).
  const int cells = params.cells_x * params.cells_y * params.cells_z;
  // Cells array follows the particle array in the global arena; easier:
  // total updates tracked via the reservoir-independent invariant below.
  std::uint64_t total = 0;
  const Addr particles_bytes =
      static_cast<Addr>(params.particles) * 4 * 8;
  const Addr base = (Addr{1} << 40);
  const Addr cells_base = (base + particles_bytes + 15) & ~Addr{15};
  for (int c = 0; c < cells; ++c) {
    total += sys.space().load(cells_base + static_cast<Addr>(c) * 16, 8);
  }
  // The cell-count update is an unlocked read-modify-write, exactly like
  // the original MP3D's racy cell accounting: concurrent updates can lose
  // an increment occasionally. Allow a sliver of loss.
  const auto expected =
      static_cast<std::uint64_t>(params.particles) * params.steps;
  EXPECT_LE(total, expected);
  EXPECT_GE(total, expected - expected / 100);
}

TEST(Mp3d, ShowsMigratorySharing) {
  MachineConfig cfg = small_cfg(ProtocolKind::kBaseline);
  Mp3dParams params;
  params.particles = 800;
  params.steps = 4;
  const RunResult r =
      run_experiment(cfg, [&](System& sys) { build_mp3d(sys, params); });
  // Gupta/Weber: MP3D's *invalidations* are dominated by migratory
  // sharing (the cell array). Particle records are load-store by the
  // same owner every step, so of all load-store sequences only the cell
  // share migrates — assert a solid migratory presence, not dominance.
  EXPECT_GT(r.oracle_total.migratory_fraction(), 0.15);
  EXPECT_GT(r.oracle_total.ls_fraction(), 0.5);
}

TEST(Workloads, DeterministicAcrossRuns) {
  auto once = [] {
    MachineConfig cfg = small_cfg(ProtocolKind::kLs);
    Mp3dParams params;
    params.particles = 300;
    params.steps = 2;
    return run_experiment(cfg,
                          [&](System& sys) { build_mp3d(sys, params); });
  };
  const RunResult a = once();
  const RunResult b = once();
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.traffic_total, b.traffic_total);
}

}  // namespace
}  // namespace lssim
