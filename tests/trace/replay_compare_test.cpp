// Capture-once / replay-many engine: stat agreement with live execution.
//
// Three claims, per docs/PERFORMANCE.md "Capture once, replay many":
//   1. Same-protocol replay is ALWAYS bit-identical to the execution the
//      trace was captured from — any workload, any protocol x directory.
//   2. Cross-protocol replay matches live execution exactly on
//      feedback-insensitive workloads (private-RMW / read-mostly with
//      sync = 0: no spin loops, no timing-dependent control flow).
//   3. On feedback-sensitive workloads (ping-pong's turn-word spin),
//      cross-protocol replay legitimately diverges from execution — and
//      compare_replay() reports it instead of staying silent.
#include "trace/replay_compare.hpp"

#include <gtest/gtest.h>

#include "core/directory_registry.hpp"
#include "core/protocol_registry.hpp"
#include "workloads/harness.hpp"
#include "workloads/micro.hpp"

namespace lssim {
namespace {

MachineConfig small_cfg() {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{8192, 1, 16};
  return cfg;
}

WorkloadBuilder pingpong_builder() {
  return [](System& sys) {
    build_pingpong(sys, PingPongParams{.rounds = 60, .counters = 2});
  };
}

// Feedback-insensitive micro workloads: sync = 0 removes the spin
// barrier, the only timing-dependent control flow they have.
WorkloadBuilder private_rmw_nosync() {
  return [](System& sys) {
    build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 2048,
                                            .sweeps = 2,
                                            .sync = 0});
  };
}

WorkloadBuilder read_mostly_nosync() {
  return [](System& sys) {
    build_read_mostly(sys,
                      ReadMostlyParams{.words = 256, .rounds = 40,
                                       .sync = 0});
  };
}

TEST(ReplayCompare, SameProtocolReplayBitIdenticalAcrossMatrix) {
  // Claim 1 on the full registered matrix: capture under each
  // protocol x directory cell, replay under the same cell, demand an
  // empty diff. Ping-pong is feedback-SENSITIVE — which is the point:
  // same-protocol agreement must not depend on the workload.
  for (ProtocolKind protocol : all_protocol_kinds()) {
    for (DirectoryKind directory : all_directory_kinds()) {
      MachineConfig cfg = small_cfg();
      cfg.protocol.kind = protocol;
      cfg.directory_scheme = directory;
      const CapturedTrace captured =
          capture_trace(cfg, pingpong_builder(), /*seed=*/1, "pingpong");
      const ReplayCompareEngine engine(captured.trace, cfg);
      const RunResult replayed = engine.replay(protocol, directory);
      const std::vector<std::string> diffs =
          compare_replay(captured.executed, replayed);
      EXPECT_TRUE(diffs.empty())
          << to_string(protocol) << " / " << to_string(directory) << ": "
          << (diffs.empty() ? "" : diffs.front());
    }
  }
}

TEST(ReplayCompare, CrossProtocolAgreesOnFeedbackInsensitiveWorkloads) {
  // Claim 2: one baseline capture drives every protocol, and each
  // replay matches that protocol's live execution bit for bit.
  struct Case {
    const char* name;
    WorkloadBuilder build;
  };
  const Case cases[] = {{"private_rmw", private_rmw_nosync()},
                        {"read_mostly", read_mostly_nosync()}};
  for (const Case& c : cases) {
    const MachineConfig base = small_cfg();
    const CapturedTrace captured =
        capture_trace(base, c.build, /*seed=*/1, c.name);
    const ReplayCompareEngine engine(captured.trace, base);
    for (ProtocolKind protocol : all_protocol_kinds()) {
      MachineConfig cfg = base;
      cfg.protocol.kind = protocol;
      const RunResult executed = run_experiment(cfg, c.build, /*seed=*/1);
      const RunResult replayed = engine.replay(protocol);
      const std::vector<std::string> diffs =
          compare_replay(executed, replayed);
      EXPECT_TRUE(diffs.empty())
          << c.name << " under " << to_string(protocol) << ": "
          << (diffs.empty() ? "" : diffs.front());
    }
  }
}

TEST(ReplayCompare, CrossProtocolDivergenceOnSpinWorkloadIsReported) {
  // Claim 3: ping-pong's spin count depends on protocol-induced
  // latencies, so a baseline-captured trace replayed under LS cannot
  // match a live LS run — compare_replay must say so.
  const MachineConfig base = small_cfg();
  const CapturedTrace captured =
      capture_trace(base, pingpong_builder(), /*seed=*/1, "pingpong");
  const ReplayCompareEngine engine(captured.trace, base);
  MachineConfig ls = base;
  ls.protocol.kind = ProtocolKind::kLs;
  const RunResult executed =
      run_experiment(ls, pingpong_builder(), /*seed=*/1);
  const std::vector<std::string> diffs =
      compare_replay(executed, engine.replay(ProtocolKind::kLs));
  EXPECT_FALSE(diffs.empty());
}

TEST(ReplayCompare, MatrixParallelFanoutMatchesSerial) {
  const MachineConfig base = small_cfg();
  const CapturedTrace captured =
      capture_trace(base, pingpong_builder(), /*seed=*/1, "pingpong");
  const ReplayCompareEngine engine(captured.trace, base);
  const std::vector<ProtocolKind> protocols = all_protocol_kinds();
  const std::vector<DirectoryKind> directories = all_directory_kinds();
  const std::vector<RunResult> serial =
      engine.replay_matrix(protocols, directories, /*jobs=*/1);
  const std::vector<RunResult> parallel =
      engine.replay_matrix(protocols, directories, /*jobs=*/3);
  ASSERT_EQ(serial.size(), protocols.size() * directories.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const std::vector<std::string> diffs =
        compare_replay(serial[i], parallel[i]);
    EXPECT_TRUE(diffs.empty())
        << "cell " << i << ": " << (diffs.empty() ? "" : diffs.front());
    EXPECT_EQ(serial[i].protocol, parallel[i].protocol);
    EXPECT_EQ(serial[i].directory, parallel[i].directory);
  }
  // Protocol-major order, the driver's run order.
  EXPECT_EQ(serial[0].protocol, protocols[0]);
  EXPECT_EQ(serial[0].directory, directories[0]);
  EXPECT_EQ(serial[1].directory, directories[1]);
  EXPECT_EQ(serial[directories.size()].protocol, protocols[1]);
}

TEST(ReplayCompare, CaptureProvidesGroundTruthResult) {
  const MachineConfig base = small_cfg();
  const CapturedTrace captured =
      capture_trace(base, pingpong_builder(), /*seed=*/1, "pingpong");
  const RunResult executed =
      run_experiment(base, pingpong_builder(), /*seed=*/1);
  // capture_trace's attached recorder must not perturb the run.
  EXPECT_TRUE(compare_replay(executed, captured.executed).empty());
  EXPECT_EQ(captured.trace.meta().workload, "pingpong");
  EXPECT_EQ(captured.trace.meta().seed, 1u);
  EXPECT_NE(captured.trace.meta().config_hash, 0u);
}

}  // namespace
}  // namespace lssim
