// Trace capture, serialization and replay.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "trace/config_hash.hpp"
#include "trace/recorder.hpp"
#include "trace/replay_compare.hpp"
#include "workloads/harness.hpp"
#include "workloads/micro.hpp"

namespace lssim {
namespace {

MachineConfig tiny_cfg(ProtocolKind kind = ProtocolKind::kBaseline) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{8192, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

Trace record_pingpong(ProtocolKind kind = ProtocolKind::kBaseline) {
  System sys(tiny_cfg(kind));
  Trace trace;
  TraceRecorder recorder(sys, trace);
  build_pingpong(sys, PingPongParams{.rounds = 50, .counters = 2});
  sys.run();
  return trace;
}

TEST(Trace, RecorderCapturesEveryAccess) {
  System sys(tiny_cfg());
  Trace trace;
  TraceRecorder recorder(sys, trace);
  build_pingpong(sys, PingPongParams{.rounds = 50, .counters = 2});
  sys.run();
  EXPECT_EQ(trace.size(), sys.stats().accesses);
  EXPECT_GT(trace.size(), 100u);
}

TEST(Trace, RecordsCarryProgramOrderGaps) {
  const Trace trace = record_pingpong();
  // Gaps are compute time between accesses; the ping-pong program
  // computes think_cycles between RMW pairs, so nonzero gaps must exist.
  bool nonzero_gap = false;
  for (const TraceRecord& r : trace.records()) {
    if (r.issue_gap > 0) nonzero_gap = true;
  }
  EXPECT_TRUE(nonzero_gap);
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace trace = record_pingpong();
  std::stringstream buffer;
  trace.save(buffer);
  const Trace loaded = Trace::load(buffer);
  EXPECT_EQ(trace, loaded);
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream buffer;
  buffer << "this is not a trace";
  EXPECT_THROW((void)Trace::load(buffer), std::runtime_error);
}

TEST(Trace, LoadRejectsTruncated) {
  const Trace trace = record_pingpong();
  std::stringstream buffer;
  trace.save(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)Trace::load(truncated), std::runtime_error);
}

TEST(Trace, ReplayExecutesAllAccesses) {
  const Trace trace = record_pingpong();
  Stats stats(4);
  const ReplayResult result = replay_trace(trace, tiny_cfg(), stats);
  EXPECT_EQ(result.accesses, trace.size());
  EXPECT_EQ(stats.accesses, trace.size());
  EXPECT_GT(result.total_cycles, 0u);
}

TEST(Trace, ReplayUnderLsEliminatesOwnership) {
  // A baseline-recorded migratory trace replayed under LS shows the
  // technique's effect — the cheap way to sweep protocols over one
  // workload recording.
  const Trace trace = record_pingpong();
  Stats base_stats(4);
  (void)replay_trace(trace, tiny_cfg(ProtocolKind::kBaseline), base_stats);
  Stats ls_stats(4);
  (void)replay_trace(trace, tiny_cfg(ProtocolKind::kLs), ls_stats);
  EXPECT_EQ(base_stats.eliminated_acquisitions, 0u);
  EXPECT_GT(ls_stats.eliminated_acquisitions, 50u);
  EXPECT_LT(ls_stats.messages_total(), base_stats.messages_total());
}

TEST(Trace, ReplayRejectsOutOfRangeNode) {
  Trace trace;
  TraceRecord r;
  r.node = 9;  // Machine below has 4 nodes.
  trace.append(r);
  Stats stats(4);
  EXPECT_THROW((void)replay_trace(trace, tiny_cfg(), stats),
               std::out_of_range);
}

TEST(Trace, ReplayIsDeterministic) {
  const Trace trace = record_pingpong();
  Stats a(4);
  Stats b(4);
  const ReplayResult ra = replay_trace(trace, tiny_cfg(), a);
  const ReplayResult rb = replay_trace(trace, tiny_cfg(), b);
  EXPECT_EQ(ra.total_cycles, rb.total_cycles);
  EXPECT_EQ(a.messages_total(), b.messages_total());
}

TEST(Trace, EmptyTraceReplaysToNothing) {
  Trace trace;
  Stats stats(4);
  const ReplayResult result = replay_trace(trace, tiny_cfg(), stats);
  EXPECT_EQ(result.accesses, 0u);
  EXPECT_EQ(result.total_cycles, 0u);
}

TEST(Trace, MetaRoundTrips) {
  Trace trace;
  trace.meta().config_hash = 0xdeadbeefcafef00dull;
  trace.meta().seed = 42;
  trace.meta().workload = "pingpong";
  trace.meta().final_gaps = {5, 0, 17, 0};
  TraceRecord r;
  r.addr = 64;
  r.issue_gap = 3;
  r.wdata = 7;
  r.expected = 9;
  r.site = 12;
  r.node = 300;  // > 255: needs the v2 16-bit node field.
  trace.append(r);
  std::stringstream buffer;
  trace.save(buffer);
  const Trace loaded = Trace::load(buffer);
  EXPECT_EQ(trace, loaded);
  EXPECT_EQ(loaded.meta().workload, "pingpong");
  EXPECT_EQ(loaded.records()[0].node, 300);
}

namespace v1 {
// Little-endian emitters for hand-crafting a legacy version-1 file.
void put64(std::ostream& os, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) os.put(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}
}  // namespace v1

TEST(Trace, LoadsLegacyVersion1Files) {
  // A v1 file is magic + u64 count + per record (addr u64, gap u64,
  // node u8, op u8, size u8, tag u8) — no metadata, no data payloads.
  std::stringstream buffer;
  buffer.write("LSTRACE1", 8);
  v1::put64(buffer, 2);  // record count
  v1::put64(buffer, 0x40);
  v1::put64(buffer, 3);
  v1::put8(buffer, 1);  // node
  v1::put8(buffer, 0);  // op
  v1::put8(buffer, 4);  // size
  v1::put8(buffer, 0);  // tag
  v1::put64(buffer, 0x80);
  v1::put64(buffer, 0);
  v1::put8(buffer, 2);
  v1::put8(buffer, 1);
  v1::put8(buffer, 4);
  v1::put8(buffer, 0);

  const Trace loaded = Trace::load(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.meta().config_hash, 0u);  // v1: compatibility unchecked
  EXPECT_TRUE(loaded.meta().final_gaps.empty());
  EXPECT_EQ(loaded.records()[0].addr, 0x40u);
  EXPECT_EQ(loaded.records()[0].issue_gap, 3u);
  EXPECT_EQ(loaded.records()[0].node, 1);
  // v1 records carried no store values; replay substitutes the
  // historical placeholder 1.
  EXPECT_EQ(loaded.records()[0].wdata, 1u);
  EXPECT_EQ(loaded.records()[1].node, 2);

  // A hash-less trace replays against any machine without a config check.
  Stats stats(4);
  const ReplayResult result = replay_trace(loaded, tiny_cfg(), stats);
  EXPECT_EQ(result.accesses, 2u);
}

TEST(Trace, ConfigHashIgnoresProtocolKnobs) {
  // Sweeping protocol/directory over one trace is the point of the
  // engine, so those fields must not participate in the hash.
  MachineConfig a = tiny_cfg(ProtocolKind::kBaseline);
  MachineConfig b = tiny_cfg(ProtocolKind::kLs);
  b.directory_scheme = DirectoryKind::kSparse;
  b.protocol.default_tagged = true;
  b.protocol.tag_hysteresis = 2;
  EXPECT_EQ(trace_config_hash(a), trace_config_hash(b));
}

TEST(Trace, ConfigHashCoversTimingAndGeometry) {
  const std::uint64_t base = trace_config_hash(tiny_cfg());

  MachineConfig bigger_l2 = tiny_cfg();
  bigger_l2.l2.size_bytes *= 2;
  EXPECT_NE(trace_config_hash(bigger_l2), base);

  MachineConfig slower_hop = tiny_cfg();
  slower_hop.latency.hop += 1;
  EXPECT_NE(trace_config_hash(slower_hop), base);

  MachineConfig more_nodes = tiny_cfg();
  more_nodes.num_nodes = 8;
  EXPECT_NE(trace_config_hash(more_nodes), base);
}

TEST(Trace, ConfigHashCoversTransport) {
  // Hash-schema version 1 (current) covers the coherence transport;
  // version 0 — the pre-seam schema — ignores it entirely.
  const std::uint64_t base = trace_config_hash(tiny_cfg());
  MachineConfig bus = tiny_cfg();
  bus.interconnect = InterconnectKind::kBus;
  EXPECT_NE(trace_config_hash(bus), base);
  MachineConfig rr = bus;
  rr.bus_arbitration = BusArbitration::kRoundRobin;
  EXPECT_NE(trace_config_hash(rr), trace_config_hash(bus));
  EXPECT_EQ(trace_config_hash(bus, 0), trace_config_hash(tiny_cfg(), 0));
}

TEST(Trace, HashVersionRoundTripsThroughTheFile) {
  Trace trace;
  trace.meta().config_hash = 1;
  EXPECT_EQ(trace.meta().hash_version, kTraceConfigHashVersion);
  std::stringstream buffer;
  trace.save(buffer);
  EXPECT_EQ(Trace::load(buffer).meta().hash_version,
            kTraceConfigHashVersion);
}

TEST(Trace, PreSeamCapturesOnlyReplayOnTheDirectoryNetwork) {
  // A version-0 hash cannot vouch for the transport, and such captures
  // could only have run on the directory network — replaying one on the
  // bus must be a config mismatch even though the hashed fields agree.
  Trace trace = record_pingpong();
  trace.meta().hash_version = 0;
  trace.meta().config_hash = trace_config_hash(tiny_cfg(), 0);
  Stats stats(4);
  EXPECT_GT(replay_trace(trace, tiny_cfg(), stats).accesses, 0u);
  MachineConfig bus = tiny_cfg();
  bus.interconnect = InterconnectKind::kBus;
  Stats bus_stats(4);
  EXPECT_THROW(replay_trace(trace, bus, bus_stats), TraceConfigMismatch);
}

TEST(Trace, MismatchListsBothHashes) {
  Trace trace = record_pingpong();
  trace.meta().config_hash = trace_config_hash(tiny_cfg());
  MachineConfig other = tiny_cfg();
  other.latency.hop += 1;
  Stats stats(4);
  try {
    (void)replay_trace(trace, other, stats);
    FAIL() << "expected TraceConfigMismatch";
  } catch (const TraceConfigMismatch& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find(format_config_hash(trace.meta().config_hash)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(format_config_hash(trace_config_hash(other))),
              std::string::npos)
        << what;
  }
}

TEST(Trace, RecorderComposesWithSecondObserver) {
  // Attaching an observer after the recorder (or vice versa) must not
  // silently drop either party's records — set_access_observer used to
  // replace the previous observer.
  System sys(tiny_cfg());
  Trace trace;
  TraceRecorder recorder(sys, trace);
  std::uint64_t observed = 0;
  sys.add_access_observer(
      [&observed](NodeId, const AccessRequest&, Cycles, Cycles) {
        ++observed;
      });
  build_pingpong(sys, PingPongParams{.rounds = 50, .counters = 2});
  sys.run();
  EXPECT_EQ(trace.size(), sys.stats().accesses);
  EXPECT_EQ(observed, sys.stats().accesses);
}

TEST(Trace, CaptureRejectsProcessorConsistency) {
  // PC buffered stores complete after later issues; the unsigned
  // per-node gap encoding cannot represent that, so capture must refuse
  // rather than record a corrupt stream.
  MachineConfig cfg = tiny_cfg();
  cfg.consistency = ConsistencyModel::kPc;
  EXPECT_THROW((void)capture_trace(
                   cfg,
                   [](System& sys) {
                     build_pingpong(sys,
                                    PingPongParams{.rounds = 10});
                   }),
               std::invalid_argument);
}

}  // namespace
}  // namespace lssim
