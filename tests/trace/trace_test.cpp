// Trace capture, serialization and replay.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/recorder.hpp"
#include "workloads/harness.hpp"
#include "workloads/micro.hpp"

namespace lssim {
namespace {

MachineConfig tiny_cfg(ProtocolKind kind = ProtocolKind::kBaseline) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{8192, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

Trace record_pingpong(ProtocolKind kind = ProtocolKind::kBaseline) {
  System sys(tiny_cfg(kind));
  Trace trace;
  TraceRecorder recorder(sys, trace);
  build_pingpong(sys, PingPongParams{.rounds = 50, .counters = 2});
  sys.run();
  return trace;
}

TEST(Trace, RecorderCapturesEveryAccess) {
  System sys(tiny_cfg());
  Trace trace;
  TraceRecorder recorder(sys, trace);
  build_pingpong(sys, PingPongParams{.rounds = 50, .counters = 2});
  sys.run();
  EXPECT_EQ(trace.size(), sys.stats().accesses);
  EXPECT_GT(trace.size(), 100u);
}

TEST(Trace, RecordsCarryProgramOrderGaps) {
  const Trace trace = record_pingpong();
  // Gaps are compute time between accesses; the ping-pong program
  // computes think_cycles between RMW pairs, so nonzero gaps must exist.
  bool nonzero_gap = false;
  for (const TraceRecord& r : trace.records()) {
    if (r.issue_gap > 0) nonzero_gap = true;
  }
  EXPECT_TRUE(nonzero_gap);
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace trace = record_pingpong();
  std::stringstream buffer;
  trace.save(buffer);
  const Trace loaded = Trace::load(buffer);
  EXPECT_EQ(trace, loaded);
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream buffer;
  buffer << "this is not a trace";
  EXPECT_THROW((void)Trace::load(buffer), std::runtime_error);
}

TEST(Trace, LoadRejectsTruncated) {
  const Trace trace = record_pingpong();
  std::stringstream buffer;
  trace.save(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)Trace::load(truncated), std::runtime_error);
}

TEST(Trace, ReplayExecutesAllAccesses) {
  const Trace trace = record_pingpong();
  Stats stats(4);
  const ReplayResult result = replay_trace(trace, tiny_cfg(), stats);
  EXPECT_EQ(result.accesses, trace.size());
  EXPECT_EQ(stats.accesses, trace.size());
  EXPECT_GT(result.total_cycles, 0u);
}

TEST(Trace, ReplayUnderLsEliminatesOwnership) {
  // A baseline-recorded migratory trace replayed under LS shows the
  // technique's effect — the cheap way to sweep protocols over one
  // workload recording.
  const Trace trace = record_pingpong();
  Stats base_stats(4);
  (void)replay_trace(trace, tiny_cfg(ProtocolKind::kBaseline), base_stats);
  Stats ls_stats(4);
  (void)replay_trace(trace, tiny_cfg(ProtocolKind::kLs), ls_stats);
  EXPECT_EQ(base_stats.eliminated_acquisitions, 0u);
  EXPECT_GT(ls_stats.eliminated_acquisitions, 50u);
  EXPECT_LT(ls_stats.messages_total(), base_stats.messages_total());
}

TEST(Trace, ReplayRejectsOutOfRangeNode) {
  Trace trace;
  TraceRecord r;
  r.node = 9;  // Machine below has 4 nodes.
  trace.append(r);
  Stats stats(4);
  EXPECT_THROW((void)replay_trace(trace, tiny_cfg(), stats),
               std::out_of_range);
}

TEST(Trace, ReplayIsDeterministic) {
  const Trace trace = record_pingpong();
  Stats a(4);
  Stats b(4);
  const ReplayResult ra = replay_trace(trace, tiny_cfg(), a);
  const ReplayResult rb = replay_trace(trace, tiny_cfg(), b);
  EXPECT_EQ(ra.total_cycles, rb.total_cycles);
  EXPECT_EQ(a.messages_total(), b.messages_total());
}

TEST(Trace, EmptyTraceReplaysToNothing) {
  Trace trace;
  Stats stats(4);
  const ReplayResult result = replay_trace(trace, tiny_cfg(), stats);
  EXPECT_EQ(result.accesses, 0u);
  EXPECT_EQ(result.total_cycles, 0u);
}

}  // namespace
}  // namespace lssim
