// Command-line driver: argument parsing and the workload factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "driver/options.hpp"
#include "driver/runner.hpp"

namespace lssim {
namespace {

bool parse(std::initializer_list<const char*> args, DriverOptions* options,
           std::string* error) {
  std::vector<const char*> argv{"lssim_run"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_driver_args(static_cast<int>(argv.size()), argv.data(),
                           options, error);
}

TEST(DriverOptions, Defaults) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({}, &options, &error)) << error;
  EXPECT_EQ(options.workload, "pingpong");
  EXPECT_EQ(options.protocols.size(), 1u);
  EXPECT_EQ(options.protocols[0], ProtocolKind::kBaseline);
  EXPECT_EQ(options.format, OutputFormat::kText);
}

TEST(DriverOptions, FullCommandLine) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--workload", "OLTP", "--protocol", "ls", "--procs",
                     "8", "--l1", "8k", "--l2", "32k", "--assoc", "2",
                     "--block", "32", "--topology", "ring",
                     "--consistency", "pc", "--false-sharing", "--seed",
                     "42", "--set", "txns_per_proc=100", "--format", "csv"},
                    &options, &error))
      << error;
  EXPECT_EQ(options.workload, "oltp");
  EXPECT_EQ(options.protocols[0], ProtocolKind::kLs);
  EXPECT_EQ(options.machine.num_nodes, 8);
  EXPECT_EQ(options.machine.l1.size_bytes, 8u * 1024);
  EXPECT_EQ(options.machine.l2.size_bytes, 32u * 1024);
  EXPECT_EQ(options.machine.l1.assoc, 2u);
  EXPECT_EQ(options.machine.l1.block_bytes, 32u);
  EXPECT_EQ(options.machine.l2.block_bytes, 32u);
  EXPECT_EQ(options.machine.topology, Topology::kRing);
  EXPECT_EQ(options.machine.consistency, ConsistencyModel::kPc);
  EXPECT_TRUE(options.machine.classify_false_sharing);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_EQ(options.params.at("txns_per_proc"), "100");
  EXPECT_EQ(options.format, OutputFormat::kCsv);
}

TEST(DriverOptions, CompareSelectsAllRegisteredProtocols) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--compare"}, &options, &error));
  EXPECT_EQ(options.protocols.size(),
            static_cast<std::size_t>(kNumProtocolKinds));
  EXPECT_EQ(options.protocols.front(), ProtocolKind::kBaseline);
  EXPECT_EQ(options.protocols.back(), ProtocolKind::kLsDragon);
}

TEST(DriverOptions, ProtocolsListResolvesAliasesAndDedupes) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--protocols", "baseline,LS,ls,migratory,Ls+Ad"},
                    &options, &error))
      << error;
  const std::vector<ProtocolKind> expected{
      ProtocolKind::kBaseline, ProtocolKind::kLs, ProtocolKind::kAd,
      ProtocolKind::kLsAd};
  EXPECT_EQ(options.protocols, expected);
}

TEST(DriverOptions, UnknownProtocolListsRegisteredNames) {
  DriverOptions options;
  std::string error;
  EXPECT_FALSE(parse({"--protocols", "Baseline,mesif"}, &options, &error));
  EXPECT_NE(error.find("mesif"), std::string::npos) << error;
  for (const char* name : {"Baseline", "AD", "LS", "ILS", "LS+AD"}) {
    EXPECT_NE(error.find(name), std::string::npos) << error;
  }
}

TEST(DriverOptions, DirectoryFlagResolvesAliases) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--directory", "dir-ib", "--dir-pointers", "3"},
                    &options, &error))
      << error;
  EXPECT_EQ(options.machine.directory_scheme, DirectoryKind::kLimitedPtr);
  EXPECT_EQ(options.machine.directory_pointers, 3);
  ASSERT_EQ(options.directories.size(), 1u);
  EXPECT_EQ(options.directories[0], DirectoryKind::kLimitedPtr);
}

TEST(DriverOptions, UnknownDirectoryListsRegisteredNames) {
  DriverOptions options;
  std::string error;
  EXPECT_FALSE(parse({"--directory", "mesif"}, &options, &error));
  EXPECT_NE(error.find("mesif"), std::string::npos) << error;
  for (const char* name : {"full-map", "limited-ptr", "coarse", "sparse"}) {
    EXPECT_NE(error.find(name), std::string::npos) << error;
  }
}

TEST(DriverOptions, DirectoriesListResolvesAliasesAndDedupes) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--directories", "fullmap,dir-ib,limited-ptr,sparse"},
                    &options, &error))
      << error;
  const std::vector<DirectoryKind> expected{DirectoryKind::kFullMap,
                                            DirectoryKind::kLimitedPtr,
                                            DirectoryKind::kSparse};
  EXPECT_EQ(options.directories, expected);
  // The machine config carries the first entry so a single-organisation
  // sweep behaves exactly like --directory.
  EXPECT_EQ(options.machine.directory_scheme, DirectoryKind::kFullMap);
  EXPECT_FALSE(parse({"--directories", "full-map,bogus"}, &options, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
}

TEST(DriverOptions, InterconnectFlagResolvesAliases) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--interconnect", "snoop", "--bus-arb", "rr"},
                    &options, &error))
      << error;
  EXPECT_EQ(options.machine.interconnect, InterconnectKind::kBus);
  EXPECT_EQ(options.machine.bus_arbitration, BusArbitration::kRoundRobin);
  ASSERT_EQ(options.interconnects.size(), 1u);
  EXPECT_EQ(options.interconnects[0], InterconnectKind::kBus);
}

TEST(DriverOptions, InterconnectsListResolvesAliasesAndDedupes) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--interconnects", "bus,dir,BUS"}, &options, &error))
      << error;
  ASSERT_EQ(options.interconnects.size(), 2u);
  EXPECT_EQ(options.interconnects[0], InterconnectKind::kBus);
  EXPECT_EQ(options.interconnects[1], InterconnectKind::kNetwork);
  // The single-run machine takes the first listed transport.
  EXPECT_EQ(options.machine.interconnect, InterconnectKind::kBus);
}

TEST(DriverOptions, UnknownInterconnectListsRegisteredNames) {
  DriverOptions options;
  std::string error;
  EXPECT_FALSE(parse({"--interconnect", "hypercube"}, &options, &error));
  EXPECT_NE(error.find("network"), std::string::npos) << error;
  EXPECT_NE(error.find("bus"), std::string::npos) << error;
  EXPECT_FALSE(parse({"--bus-arb", "lottery"}, &options, &error));
  EXPECT_NE(error.find("round-robin"), std::string::npos) << error;
}

TEST(DriverOptions, ListFlagsParseAndSelectListMode) {
  const char* flags[] = {"--list-protocols", "--list-directories",
                         "--list-interconnects"};
  for (const char* flag : flags) {
    DriverOptions options;
    std::string error;
    ASSERT_TRUE(parse({flag}, &options, &error)) << flag << ": " << error;
    EXPECT_TRUE(options.list_mode()) << flag;
  }
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({}, &options, &error));
  EXPECT_FALSE(options.list_mode());
}

TEST(DriverOptions, RegisteredInterconnectNamesMatchTable) {
  EXPECT_EQ(registered_interconnect_names(), "network, bus");
  EXPECT_EQ(registered_interconnect_names(" | "), "network | bus");
}

TEST(DriverOptions, DirectoryKnobsValidateTheirRanges) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--dir-pointers", "7", "--dir-region", "4",
                     "--dir-entries", "512"},
                    &options, &error))
      << error;
  EXPECT_EQ(options.machine.directory_pointers, 7);
  EXPECT_EQ(options.machine.directory_region, 4);
  EXPECT_EQ(options.machine.directory_entries, 512u);
  EXPECT_FALSE(parse({"--dir-pointers", "0"}, &options, &error));
  EXPECT_FALSE(parse({"--dir-pointers", "9"}, &options, &error));
}

TEST(DriverOptions, ProcsAcceptsUpToMaxNodes) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--procs", "256", "--directory", "coarse-vector"},
                    &options, &error))
      << error;
  EXPECT_EQ(options.machine.num_nodes, 256);
  EXPECT_FALSE(parse({"--procs", "257"}, &options, &error));
}

TEST(DriverOptions, RejectsUnknownArgument) {
  DriverOptions options;
  std::string error;
  EXPECT_FALSE(parse({"--bogus"}, &options, &error));
  EXPECT_NE(error.find("--bogus"), std::string::npos);
}

TEST(DriverOptions, RejectsMissingValue) {
  DriverOptions options;
  std::string error;
  EXPECT_FALSE(parse({"--workload"}, &options, &error));
}

TEST(DriverOptions, RejectsBadProtocol) {
  DriverOptions options;
  std::string error;
  EXPECT_FALSE(parse({"--protocol", "mesif"}, &options, &error));
}

TEST(DriverOptions, RejectsMalformedSet) {
  DriverOptions options;
  std::string error;
  EXPECT_FALSE(parse({"--set", "noequals"}, &options, &error));
  EXPECT_FALSE(parse({"--set", "=value"}, &options, &error));
}

TEST(DriverOptions, ParseSizeSuffixes) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_size("512", &v));
  EXPECT_EQ(v, 512u);
  EXPECT_TRUE(parse_size("64k", &v));
  EXPECT_EQ(v, 64u * 1024);
  EXPECT_TRUE(parse_size("2M", &v));
  EXPECT_EQ(v, 2u * 1024 * 1024);
  EXPECT_FALSE(parse_size("", &v));
  EXPECT_FALSE(parse_size("k", &v));
  EXPECT_FALSE(parse_size("12x", &v));
}

TEST(DriverOptions, ReplayFlagsParseAndSelectReplayMode) {
  DriverOptions options;
  std::string error;
  EXPECT_FALSE(options.replay_mode());
  ASSERT_TRUE(parse({"--replay-compare", "--capture-trace", "t.lstrace"},
                    &options, &error))
      << error;
  EXPECT_TRUE(options.replay_compare);
  EXPECT_EQ(options.capture_trace_out, "t.lstrace");
  EXPECT_TRUE(options.replay_mode());

  DriverOptions from;
  ASSERT_TRUE(parse({"--replay-from", "t.lstrace"}, &from, &error)) << error;
  EXPECT_EQ(from.replay_from, "t.lstrace");
  EXPECT_TRUE(from.replay_mode());

  DriverOptions crosscheck;
  ASSERT_TRUE(parse({"--replay-crosscheck"}, &crosscheck, &error)) << error;
  EXPECT_TRUE(crosscheck.replay_crosscheck);
  EXPECT_TRUE(crosscheck.replay_mode());
}

TEST(DriverOptions, ReplayFileFlagsRequireValues) {
  DriverOptions options;
  std::string error;
  EXPECT_FALSE(parse({"--capture-trace"}, &options, &error));
  EXPECT_NE(error.find("--capture-trace"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(parse({"--replay-from"}, &options, &error));
  EXPECT_NE(error.find("--replay-from"), std::string::npos) << error;
}

TEST(DriverOptions, HelpFlag) {
  DriverOptions options;
  std::string error;
  ASSERT_TRUE(parse({"--help"}, &options, &error));
  EXPECT_TRUE(options.show_help);
  EXPECT_NE(driver_usage().find("--workload"), std::string::npos);
}

TEST(DriverRunner, KnowsAllWorkloads) {
  for (const char* name : {"mp3d", "cholesky", "lu", "oltp", "radix",
                           "stencil", "pingpong", "private",
                           "readmostly"}) {
    EXPECT_TRUE(driver_knows_workload(name)) << name;
  }
  EXPECT_FALSE(driver_knows_workload("barnes"));
}

TEST(DriverRunner, RunsSmallWorkload) {
  DriverOptions options;
  options.workload = "pingpong";
  options.params["rounds"] = "50";
  options.machine.l1 = CacheConfig{1024, 1, 16};
  options.machine.l2 = CacheConfig{4096, 1, 16};
  const RunResult r = run_driver_workload(options, ProtocolKind::kLs);
  EXPECT_GT(r.accesses, 100u);
  EXPECT_GT(r.eliminated_acquisitions, 0u);
}

TEST(DriverRunner, RejectsUnknownParameter) {
  DriverOptions options;
  options.workload = "pingpong";
  options.params["bogus_param"] = "1";
  EXPECT_THROW((void)run_driver_workload(options, ProtocolKind::kBaseline),
               std::invalid_argument);
}

TEST(DriverRunner, RejectsInvalidMachine) {
  DriverOptions options;
  options.workload = "pingpong";
  options.machine.l1.block_bytes = 24;  // Not a power of two.
  options.machine.l2.block_bytes = 24;
  EXPECT_THROW((void)run_driver_workload(options, ProtocolKind::kBaseline),
               std::invalid_argument);
}

TEST(DriverRunner, WorkloadParametersReachTheWorkload) {
  DriverOptions options;
  options.workload = "pingpong";
  options.machine.l1 = CacheConfig{1024, 1, 16};
  options.machine.l2 = CacheConfig{4096, 1, 16};
  options.params["rounds"] = "10";
  const RunResult small = run_driver_workload(options,
                                              ProtocolKind::kBaseline);
  options.params["rounds"] = "100";
  const RunResult big = run_driver_workload(options,
                                            ProtocolKind::kBaseline);
  EXPECT_GT(big.accesses, small.accesses * 5);
}

TEST(DriverRunner, MatrixRunsProtocolMajorAcrossDirectories) {
  DriverOptions options;
  options.workload = "pingpong";
  options.params["rounds"] = "30";
  options.machine.l1 = CacheConfig{1024, 1, 16};
  options.machine.l2 = CacheConfig{4096, 1, 16};
  options.protocols = {ProtocolKind::kBaseline, ProtocolKind::kLs};
  options.directories = {DirectoryKind::kFullMap,
                         DirectoryKind::kLimitedPtr};
  options.machine.directory_pointers = 1;  // Overflow with 2 sharers.
  const std::vector<DriverRun> runs =
      run_driver_workloads_captured(options);
  ASSERT_EQ(runs.size(), 4u);
  const struct {
    ProtocolKind protocol;
    DirectoryKind directory;
  } expected[] = {
      {ProtocolKind::kBaseline, DirectoryKind::kFullMap},
      {ProtocolKind::kBaseline, DirectoryKind::kLimitedPtr},
      {ProtocolKind::kLs, DirectoryKind::kFullMap},
      {ProtocolKind::kLs, DirectoryKind::kLimitedPtr},
  };
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].result.protocol, expected[i].protocol) << i;
    EXPECT_EQ(runs[i].result.directory, expected[i].directory) << i;
    EXPECT_GT(runs[i].result.accesses, 0u) << i;
  }
  // One-pointer Dir_iB broadcasts on overflow, so within a protocol row
  // the limited-pointer run can only send more invalidations.
  EXPECT_GE(runs[1].result.invalidations, runs[0].result.invalidations);
  EXPECT_GE(runs[3].result.invalidations, runs[2].result.invalidations);
}

TEST(DriverRunner, MatrixRunsInterconnectInnermost) {
  DriverOptions options;
  options.workload = "pingpong";
  options.params["rounds"] = "30";
  options.machine.l1 = CacheConfig{1024, 1, 16};
  options.machine.l2 = CacheConfig{4096, 1, 16};
  options.protocols = {ProtocolKind::kBaseline, ProtocolKind::kLs};
  options.interconnects = {InterconnectKind::kNetwork,
                           InterconnectKind::kBus};
  const std::vector<DriverRun> runs =
      run_driver_workloads_captured(options);
  ASSERT_EQ(runs.size(), 4u);
  const struct {
    ProtocolKind protocol;
    InterconnectKind interconnect;
  } expected[] = {
      {ProtocolKind::kBaseline, InterconnectKind::kNetwork},
      {ProtocolKind::kBaseline, InterconnectKind::kBus},
      {ProtocolKind::kLs, InterconnectKind::kNetwork},
      {ProtocolKind::kLs, InterconnectKind::kBus},
  };
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].result.protocol, expected[i].protocol) << i;
    EXPECT_EQ(runs[i].result.interconnect, expected[i].interconnect) << i;
    EXPECT_GT(runs[i].result.accesses, 0u) << i;
  }
  // Same protocol, same workload: the transport changes timing only.
  // Pingpong's flag spins react to timing, so counts drift by a few
  // accesses across transports — the protocol behaviour must still be
  // the same to within that jitter.
  const auto near = [](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t hi = std::max(a, b);
    const std::uint64_t lo = std::min(a, b);
    return hi - lo <= hi / 50 + 5;  // within 2% + slack
  };
  EXPECT_TRUE(near(runs[0].result.invalidations,
                   runs[1].result.invalidations))
      << runs[0].result.invalidations << " vs "
      << runs[1].result.invalidations;
  EXPECT_TRUE(near(runs[2].result.invalidations,
                   runs[3].result.invalidations))
      << runs[2].result.invalidations << " vs "
      << runs[3].result.invalidations;
  EXPECT_TRUE(near(runs[2].result.eliminated_acquisitions,
                   runs[3].result.eliminated_acquisitions))
      << runs[2].result.eliminated_acquisitions << " vs "
      << runs[3].result.eliminated_acquisitions;
  // LS still eliminates acquisitions on both transports.
  EXPECT_GT(runs[2].result.eliminated_acquisitions, 0u);
  EXPECT_GT(runs[3].result.eliminated_acquisitions, 0u);
}

TEST(DriverOutput, CsvFormat) {
  DriverOptions options;
  options.format = OutputFormat::kCsv;
  RunResult r;
  r.protocol = ProtocolKind::kLs;
  r.exec_time = 123;
  std::ostringstream os;
  print_driver_results(os, options, {r});
  const std::string out = os.str();
  EXPECT_NE(out.find("protocol,directory,exec_cycles"), std::string::npos);
  EXPECT_NE(out.find("LS,full-map,123"), std::string::npos);
}

TEST(DriverOutput, JsonFormat) {
  DriverOptions options;
  options.format = OutputFormat::kJson;
  RunResult r;
  r.protocol = ProtocolKind::kAd;
  r.exec_time = 7;
  std::ostringstream os;
  print_driver_results(os, options, {r});
  const std::string out = os.str();
  EXPECT_NE(out.find("\"protocol\":\"AD\""), std::string::npos);
  EXPECT_NE(out.find("\"exec_cycles\":7"), std::string::npos);
  EXPECT_EQ(out.front(), '[');
}

TEST(DriverOutput, TextComparisonShowsNormalizedColumn) {
  DriverOptions options;
  options.format = OutputFormat::kText;
  RunResult a;
  a.protocol = ProtocolKind::kBaseline;
  a.exec_time = 200;
  RunResult b;
  b.protocol = ProtocolKind::kLs;
  b.exec_time = 100;
  std::ostringstream os;
  print_driver_results(os, options, {a, b});
  EXPECT_NE(os.str().find("50.0"), std::string::npos);
}

}  // namespace
}  // namespace lssim
