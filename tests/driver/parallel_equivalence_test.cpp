// Serial-vs-parallel equivalence: a multi-protocol sweep run with
// --jobs N must produce byte-identical artifacts to --jobs 1 — same
// report text, same manifest document (wall clock aside), same captured
// metrics. This is the determinism contract of exec/parallel_executor.hpp
// checked end to end through the driver.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "telemetry/manifest.hpp"

namespace lssim {
namespace {

const std::vector<ProtocolKind> kAllFive = {
    ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs,
    ProtocolKind::kIls, ProtocolKind::kLsAd};

DriverOptions sweep_options(const std::string& workload, int jobs) {
  DriverOptions options;
  options.workload = workload;
  options.protocols = kAllFive;
  options.jobs = jobs;
  if (workload == "oltp") {
    options.params["txns_per_proc"] = "50";
  }
  // Non-empty metrics_out enables telemetry capture; nothing is written
  // here (write_driver_artifacts is never called).
  options.metrics_out = "unused.json";
  return options;
}

std::string report_text(const DriverOptions& options,
                        const std::vector<DriverRun>& runs) {
  std::vector<RunResult> results;
  results.reserve(runs.size());
  for (const DriverRun& run : runs) {
    results.push_back(run.result);
  }
  std::ostringstream os;
  print_driver_results(os, options, results);
  return os.str();
}

std::string manifest_text(const DriverOptions& options,
                          const std::vector<DriverRun>& runs) {
  RunManifest manifest;
  manifest.workload = options.workload;
  manifest.seed = options.seed;
  manifest.params = options.params;
  manifest.machine = options.machine;
  manifest.wall_seconds = 0.0;  // The one legitimately host-dependent field.
  for (const DriverRun& run : runs) {
    manifest.runs.push_back({run.result, run.metrics});
  }
  std::ostringstream os;
  write_manifest(os, manifest);
  return os.str();
}

class ParallelEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelEquivalence, JobsFourMatchesSerialByteForByte) {
  const std::string workload = GetParam();
  const DriverOptions serial_opts = sweep_options(workload, 1);
  const DriverOptions parallel_opts = sweep_options(workload, 4);

  const std::vector<DriverRun> serial =
      run_driver_workloads_captured(serial_opts);
  const std::vector<DriverRun> parallel =
      run_driver_workloads_captured(parallel_opts);

  ASSERT_EQ(serial.size(), kAllFive.size());
  ASSERT_EQ(parallel.size(), kAllFive.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.protocol, kAllFive[i])
        << "parallel results must keep --protocols order";
    EXPECT_EQ(serial[i].result.exec_time, parallel[i].result.exec_time);
    EXPECT_EQ(serial[i].result.traffic_total,
              parallel[i].result.traffic_total);
  }
  EXPECT_EQ(report_text(serial_opts, serial),
            report_text(parallel_opts, parallel));
  EXPECT_EQ(manifest_text(serial_opts, serial),
            manifest_text(parallel_opts, parallel));
}

INSTANTIATE_TEST_SUITE_P(Workloads, ParallelEquivalence,
                         ::testing::Values("pingpong", "oltp"));

}  // namespace
}  // namespace lssim
