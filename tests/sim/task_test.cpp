#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lssim {
namespace {

SimTask<int> answer() { co_return 42; }

SimTask<int> add(int a, int b) { co_return a + b; }

SimTask<int> nested_sum(int depth) {
  if (depth == 0) {
    co_return 0;
  }
  const int below = co_await nested_sum(depth - 1);
  co_return below + depth;
}

SimTask<void> record(std::vector<int>& log, int value) {
  log.push_back(value);
  co_return;
}

SimTask<void> sequence(std::vector<int>& log) {
  co_await record(log, 1);
  co_await record(log, 2);
  const int v = co_await add(20, 22);
  log.push_back(v);
}

TEST(SimTask, LazyStart) {
  std::vector<int> log;
  SimTask<void> task = record(log, 7);
  EXPECT_TRUE(log.empty());  // Not started until resumed/awaited.
  task.resume();
  EXPECT_EQ(log, std::vector<int>({7}));
  EXPECT_TRUE(task.done());
}

TEST(SimTask, ValueTask) {
  SimTask<int> task = answer();
  task.resume();
  EXPECT_TRUE(task.done());
  EXPECT_EQ(task.value(), 42);
}

TEST(SimTask, NestedAwaitChainsContinuations) {
  std::vector<int> log;
  SimTask<void> task = sequence(log);
  task.resume();
  EXPECT_TRUE(task.done());
  EXPECT_EQ(log, std::vector<int>({1, 2, 42}));
}

TEST(SimTask, DeepRecursionViaSymmetricTransfer) {
  // 10k nested co_awaits must not overflow the host stack.
  SimTask<int> task = nested_sum(10000);
  task.resume();
  EXPECT_TRUE(task.done());
  EXPECT_EQ(task.value(), 10000 * 10001 / 2);
}

TEST(SimTask, MoveTransfersOwnership) {
  SimTask<int> a = answer();
  SimTask<int> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.resume();
  EXPECT_EQ(b.value(), 42);
}

TEST(SimTask, DefaultConstructedIsDone) {
  SimTask<void> task;
  EXPECT_FALSE(task.valid());
  EXPECT_TRUE(task.done());
}

TEST(SimTask, DestroyWithoutRunningDoesNotLeak) {
  // Destroying a never-started coroutine must free its frame (checked by
  // ASAN builds; here we just exercise the path).
  { SimTask<int> task = answer(); }
  SUCCEED();
}

struct SuspendingAwaiter {
  bool* flagged;
  std::coroutine_handle<>* out;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept {
    *flagged = true;
    *out = h;
  }
  int await_resume() const noexcept { return 5; }
};

SimTask<void> waits_outside(bool* flagged, std::coroutine_handle<>* out,
                            int* result) {
  *result = co_await SuspendingAwaiter{flagged, out};
}

TEST(SimTask, ExternalAwaiterSuspendAndResume) {
  bool flagged = false;
  std::coroutine_handle<> handle;
  int result = 0;
  SimTask<void> task = waits_outside(&flagged, &handle, &result);
  task.resume();
  EXPECT_TRUE(flagged);
  EXPECT_FALSE(task.done());
  handle.resume();  // Scheduler-style external resumption.
  EXPECT_TRUE(task.done());
  EXPECT_EQ(result, 5);
}

SimTask<void> outer_with_inner_suspend(bool* flagged,
                                       std::coroutine_handle<>* out,
                                       std::vector<int>& log) {
  log.push_back(1);
  int v = 0;
  {
    // The inner coroutine suspends on the external awaiter; resuming the
    // stored handle must propagate completion through the continuation
    // chain back into this coroutine.
    SimTask<void> inner = waits_outside(flagged, out, &v);
    co_await inner;
  }
  log.push_back(v);
}

TEST(SimTask, SuspensionInsideNestedTaskResumesChain) {
  bool flagged = false;
  std::coroutine_handle<> handle;
  std::vector<int> log;
  SimTask<void> task = outer_with_inner_suspend(&flagged, &handle, log);
  task.resume();
  EXPECT_EQ(log, std::vector<int>({1}));
  EXPECT_FALSE(task.done());
  handle.resume();
  EXPECT_TRUE(task.done());
  EXPECT_EQ(log, std::vector<int>({1, 5}));
}

}  // namespace
}  // namespace lssim
