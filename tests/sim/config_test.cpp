#include "sim/config.hpp"

#include <gtest/gtest.h>

namespace lssim {
namespace {

TEST(Config, ScientificDefaultMatchesPaper) {
  const MachineConfig cfg = MachineConfig::scientific_default();
  EXPECT_EQ(cfg.num_nodes, 4);
  EXPECT_EQ(cfg.l1.size_bytes, 4u * 1024);
  EXPECT_EQ(cfg.l1.assoc, 1u);
  EXPECT_EQ(cfg.l2.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.l2.assoc, 1u);
  EXPECT_EQ(cfg.l1.block_bytes, 16u);
  EXPECT_EQ(cfg.l2.block_bytes, 16u);
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(Config, OltpDefaultMatchesPaper) {
  const MachineConfig cfg = MachineConfig::oltp_default(ProtocolKind::kLs);
  EXPECT_EQ(cfg.l1.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.l1.assoc, 2u);
  EXPECT_EQ(cfg.l2.size_bytes, 512u * 1024);
  EXPECT_EQ(cfg.l1.block_bytes, 32u);
  EXPECT_EQ(cfg.protocol.kind, ProtocolKind::kLs);
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(Config, LatencyDefaultsMatchTable1) {
  const LatencyConfig lat;
  EXPECT_EQ(lat.l1_access, 1u);
  EXPECT_EQ(lat.l2_access, 10u);
  EXPECT_EQ(lat.controller, 20u);
  EXPECT_EQ(lat.memory, 40u);
  EXPECT_EQ(lat.hop, 40u);
}

TEST(Config, RejectsNonPowerOfTwoBlock) {
  MachineConfig cfg = MachineConfig::scientific_default();
  cfg.l1.block_bytes = 24;
  cfg.l2.block_bytes = 24;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, RejectsMismatchedBlockSizes) {
  MachineConfig cfg = MachineConfig::scientific_default();
  cfg.l1.block_bytes = 16;
  cfg.l2.block_bytes = 32;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, RejectsL1LargerThanL2) {
  MachineConfig cfg = MachineConfig::scientific_default();
  cfg.l1.size_bytes = 128 * 1024;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, RejectsTooManyNodes) {
  MachineConfig cfg = MachineConfig::scientific_default();
  cfg.num_nodes = 65;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, RejectsOversizedBlocks) {
  MachineConfig cfg = MachineConfig::scientific_default();
  cfg.l1.block_bytes = 512;
  cfg.l2.block_bytes = 512;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, RejectsZeroHysteresis) {
  MachineConfig cfg = MachineConfig::scientific_default();
  cfg.protocol.tag_hysteresis = 0;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, BlockSizeSweepValidates) {
  for (std::uint32_t block : {16u, 32u, 64u, 128u, 256u}) {
    MachineConfig cfg = MachineConfig::oltp_default();
    cfg.l1.block_bytes = block;
    cfg.l2.block_bytes = block;
    EXPECT_TRUE(cfg.validate().empty()) << "block=" << block;
  }
}

TEST(Config, NumSetsComputed) {
  const CacheConfig cache{64 * 1024, 2, 32};
  EXPECT_EQ(cache.num_sets(), 1024u);
}

TEST(Config, ProtocolKindNames) {
  EXPECT_STREQ(to_string(ProtocolKind::kBaseline), "Baseline");
  EXPECT_STREQ(to_string(ProtocolKind::kAd), "AD");
  EXPECT_STREQ(to_string(ProtocolKind::kLs), "LS");
  EXPECT_STREQ(to_string(ProtocolKind::kIls), "ILS");
  EXPECT_STREQ(to_string(ProtocolKind::kLsAd), "LS+AD");
}

TEST(Config, ProtocolNameRoundTripsExactly) {
  // The printer and the parser share one table: every kind's canonical
  // name must parse back to the same kind.
  for (const ProtocolNameEntry& entry : kProtocolNameTable) {
    ProtocolKind kind;
    ASSERT_TRUE(protocol_from_name(protocol_name(entry.kind), &kind))
        << entry.name;
    EXPECT_EQ(kind, entry.kind);
  }
}

TEST(Config, ProtocolFromNameAcceptsAliasesCaseInsensitively) {
  ProtocolKind kind;
  ASSERT_TRUE(protocol_from_name("BASELINE", &kind));
  EXPECT_EQ(kind, ProtocolKind::kBaseline);
  ASSERT_TRUE(protocol_from_name("wi", &kind));
  EXPECT_EQ(kind, ProtocolKind::kBaseline);
  ASSERT_TRUE(protocol_from_name("migratory", &kind));
  EXPECT_EQ(kind, ProtocolKind::kAd);
  ASSERT_TRUE(protocol_from_name("ls-ad", &kind));
  EXPECT_EQ(kind, ProtocolKind::kLsAd);
  ASSERT_TRUE(protocol_from_name("hybrid", &kind));
  EXPECT_EQ(kind, ProtocolKind::kLsAd);
  EXPECT_FALSE(protocol_from_name("", &kind));
  EXPECT_FALSE(protocol_from_name("mesif", &kind));
}

}  // namespace
}  // namespace lssim
