#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lssim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound :
       {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 20}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BoolRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, RoughUniformityOverBuckets) {
  Rng rng(23);
  std::vector<int> buckets(16, 0);
  const int trials = 32000;
  for (int i = 0; i < trials; ++i) {
    buckets[rng.next_below(16)]++;
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, trials / 16, trials / 64);
  }
}

TEST(Rng, ProducesManyDistinctValues) {
  Rng rng(29);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.next());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace lssim
