// Synchronization primitives over simulated memory: mutual exclusion,
// barrier semantics, queue FIFO order — all under the real scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "machine/system.hpp"
#include "mem/shared_heap.hpp"
#include "sync/barrier.hpp"
#include "sync/spinlock.hpp"
#include "sync/task_queue.hpp"

namespace lssim {
namespace {

MachineConfig tiny_cfg(ProtocolKind kind = ProtocolKind::kBaseline) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{64, 1, 16};
  cfg.l2 = CacheConfig{256, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

SimTask<void> locked_increment(System& sys, NodeId id, SpinLock& lock,
                               Addr counter, int rounds) {
  Processor& proc = sys.proc(id);
  for (int i = 0; i < rounds; ++i) {
    co_await lock.acquire(proc);
    // Unlocked read-modify-write: only correct under mutual exclusion.
    const std::uint64_t v = co_await proc.read(counter, 8);
    proc.compute(30);  // Widen the race window.
    co_await proc.write(counter, v + 1, 8);
    co_await lock.release(proc);
  }
}

TEST(SpinLock, MutualExclusionUnderContention) {
  for (ProtocolKind kind :
       {ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs}) {
    System sys(tiny_cfg(kind));
    auto lock = std::make_shared<SpinLock>(sys.heap());
    const Addr counter = sys.heap().alloc(8, 8);
    for (int n = 0; n < 4; ++n) {
      sys.spawn(static_cast<NodeId>(n),
                locked_increment(sys, static_cast<NodeId>(n), *lock,
                                 counter, 50));
    }
    sys.retain(lock);
    sys.run();
    EXPECT_EQ(sys.space().load(counter, 8), 200u)
        << "protocol=" << to_string(kind);
  }
}

SimTask<void> try_once(System& sys, NodeId id, SpinLock& lock, Addr out) {
  Processor& proc = sys.proc(id);
  const bool got = co_await lock.try_acquire(proc);
  if (got) {
    (void)co_await proc.fetch_add(out, 1, 8);
    // Deliberately never released: later try_acquire must fail.
  }
}

TEST(SpinLock, TryAcquireFailsWhenHeld) {
  System sys(tiny_cfg());
  auto lock = std::make_shared<SpinLock>(sys.heap());
  const Addr holders = sys.heap().alloc(8, 8);
  for (int n = 0; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              try_once(sys, static_cast<NodeId>(n), *lock, holders));
  }
  sys.retain(lock);
  sys.run();
  EXPECT_EQ(sys.space().load(holders, 8), 1u);
}

SimTask<void> ticket_increment(System& sys, NodeId id, TicketLock& lock,
                               Addr counter, int rounds) {
  Processor& proc = sys.proc(id);
  for (int i = 0; i < rounds; ++i) {
    co_await lock.acquire(proc);
    const std::uint64_t v = co_await proc.read(counter, 8);
    proc.compute(25);
    co_await proc.write(counter, v + 1, 8);
    co_await lock.release(proc);
  }
}

TEST(TicketLock, MutualExclusionUnderContention) {
  System sys(tiny_cfg(ProtocolKind::kLs));
  auto lock = std::make_shared<TicketLock>(sys.heap());
  const Addr counter = sys.heap().alloc(8, 8);
  for (int n = 0; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              ticket_increment(sys, static_cast<NodeId>(n), *lock, counter,
                               40));
  }
  sys.retain(lock);
  sys.run();
  EXPECT_EQ(sys.space().load(counter, 8), 160u);
}

struct BarrierLog {
  std::vector<int> order;
};

SimTask<void> barrier_phases(System& sys, NodeId id, Barrier& barrier,
                             Addr phase_counts, int phases) {
  Processor& proc = sys.proc(id);
  for (int p = 0; p < phases; ++p) {
    // Record arrival in this phase's slot, then wait.
    (void)co_await proc.fetch_add(phase_counts + 8ull * p, 1, 8);
    co_await barrier.wait(proc);
    // After the barrier, the phase slot must show all participants.
  }
}

TEST(Barrier, AllArriveBeforeAnyProceeds) {
  System sys(tiny_cfg());
  auto barrier = std::make_shared<Barrier>(sys.heap(), 4);
  const int phases = 5;
  const Addr counts = sys.heap().alloc(8 * phases, 8);

  // Checker program: after each barrier, verify everyone arrived.
  auto checker = [](System& s, Barrier& b, Addr slots,
                    int nphases) -> SimTask<void> {
    Processor& proc = s.proc(0);
    for (int p = 0; p < nphases; ++p) {
      (void)co_await proc.fetch_add(slots + 8ull * p, 1, 8);
      co_await b.wait(proc);
      const std::uint64_t arrived = co_await proc.read(slots + 8ull * p, 8);
      EXPECT_EQ(arrived, 4u) << "phase " << p;
    }
  };
  sys.spawn(0, checker(sys, *barrier, counts, phases));
  for (int n = 1; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              barrier_phases(sys, static_cast<NodeId>(n), *barrier, counts,
                             phases));
  }
  sys.retain(barrier);
  sys.run();
}

SimTask<void> producer(System& sys, NodeId id, TaskQueue& queue, int count) {
  Processor& proc = sys.proc(id);
  for (int i = 0; i < count; ++i) {
    for (;;) {
      const bool pushed =
          co_await queue.push(proc, static_cast<std::uint32_t>(i));
      if (pushed) break;
      proc.compute(50);
    }
  }
}

SimTask<void> consumer(System& sys, NodeId id, TaskQueue& queue, int count,
                       std::vector<std::uint32_t>& got) {
  Processor& proc = sys.proc(id);
  int received = 0;
  while (received < count) {
    const std::int64_t item = co_await queue.pop(proc);
    if (item < 0) {
      proc.compute(50);
      continue;
    }
    got.push_back(static_cast<std::uint32_t>(item));
    ++received;
  }
}

TEST(TaskQueue, FifoSingleProducerSingleConsumer) {
  System sys(tiny_cfg());
  auto queue = std::make_shared<TaskQueue>(sys.heap(), 16);
  auto got = std::make_shared<std::vector<std::uint32_t>>();
  sys.spawn(0, producer(sys, 0, *queue, 100));
  sys.spawn(1, consumer(sys, 1, *queue, 100, *got));
  sys.retain(queue);
  sys.retain(got);
  sys.run();
  ASSERT_EQ(got->size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ((*got)[i], i);
  }
}

TEST(TaskQueue, PopOnEmptyReturnsMinusOne) {
  System sys(tiny_cfg());
  auto queue = std::make_shared<TaskQueue>(sys.heap(), 4);
  auto result = std::make_shared<std::int64_t>(0);
  sys.spawn(0, [](System& s, TaskQueue& q,
                  std::int64_t* out) -> SimTask<void> {
    *out = co_await q.pop(s.proc(0));
  }(sys, *queue, result.get()));
  sys.retain(queue);
  sys.retain(result);
  sys.run();
  EXPECT_EQ(*result, -1);
}

TEST(TaskQueue, PushFailsWhenFull) {
  System sys(tiny_cfg());
  auto queue = std::make_shared<TaskQueue>(sys.heap(), 2);
  auto oks = std::make_shared<std::vector<bool>>();
  sys.spawn(0, [](System& s, TaskQueue& q,
                  std::vector<bool>* out) -> SimTask<void> {
    Processor& proc = s.proc(0);
    out->push_back(co_await q.push(proc, 1));
    out->push_back(co_await q.push(proc, 2));
    out->push_back(co_await q.push(proc, 3));
  }(sys, *queue, oks.get()));
  sys.retain(queue);
  sys.retain(oks);
  sys.run();
  ASSERT_EQ(oks->size(), 3u);
  EXPECT_TRUE((*oks)[0]);
  EXPECT_TRUE((*oks)[1]);
  EXPECT_FALSE((*oks)[2]);
}

TEST(TaskQueue, MultiConsumerDrainsExactlyOnce) {
  System sys(tiny_cfg(ProtocolKind::kLs));
  auto queue = std::make_shared<TaskQueue>(sys.heap(), 256);
  const Addr sum = sys.heap().alloc(8, 8);

  auto producer_then_consume = [](System& s, TaskQueue& q,
                                  Addr total) -> SimTask<void> {
    Processor& proc = s.proc(0);
    for (int i = 1; i <= 200; ++i) {
      (void)co_await q.push(proc, static_cast<std::uint32_t>(i));
    }
    for (;;) {
      const std::int64_t item = co_await q.pop(proc);
      if (item < 0) break;
      (void)co_await proc.fetch_add(total, static_cast<std::uint64_t>(item),
                                    8);
    }
  };
  auto drainer = [](System& s, NodeId id, TaskQueue& q,
                    Addr total) -> SimTask<void> {
    Processor& proc = s.proc(id);
    int empty_seen = 0;
    while (empty_seen < 3) {
      const std::int64_t item = co_await q.pop(proc);
      if (item < 0) {
        ++empty_seen;
        proc.compute(200);
        continue;
      }
      empty_seen = 0;
      (void)co_await proc.fetch_add(total, static_cast<std::uint64_t>(item),
                                    8);
    }
  };
  sys.spawn(0, producer_then_consume(sys, *queue, sum));
  for (int n = 1; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              drainer(sys, static_cast<NodeId>(n), *queue, sum));
  }
  sys.retain(queue);
  sys.run();
  EXPECT_EQ(sys.space().load(sum, 8), 200u * 201 / 2);
}

}  // namespace
}  // namespace lssim
