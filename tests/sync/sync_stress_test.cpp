// Stress and fairness properties of the synchronization primitives.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "machine/system.hpp"
#include "mem/shared_heap.hpp"
#include "sync/barrier.hpp"
#include "sync/spinlock.hpp"
#include "sync/task_queue.hpp"

namespace lssim {
namespace {

MachineConfig tiny_cfg(ProtocolKind kind = ProtocolKind::kLs) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{512, 1, 16};
  cfg.l2 = CacheConfig{4096, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

TEST(SpinLockStress, NoStarvationUnderPersistentContention) {
  // One processor hammers the lock in a tight loop (the pathological
  // re-acquirer); the others must still make progress — the randomized
  // swap-burst backoff exists precisely for this (see sync/spinlock.hpp).
  System sys(tiny_cfg());
  auto lock = std::make_shared<SpinLock>(sys.heap());
  const Addr acquired = sys.heap().alloc(8 * 64, 64);

  auto hammer = [](System& s, NodeId id, SpinLock& l, Addr counts,
                   int rounds, Cycles think) -> SimTask<void> {
    Processor& proc = s.proc(id);
    for (int i = 0; i < rounds; ++i) {
      co_await l.acquire(proc);
      (void)co_await proc.fetch_add(counts + 64ull * id, 1, 8);
      proc.compute(think);
      co_await l.release(proc);
      proc.compute(think);
    }
  };
  // Node 0: 400 tight rounds. Nodes 1-3: 25 rounds each; they must all
  // finish (the scheduler runs until every program completes, so the
  // assertion is really "this terminates" + the counts check).
  sys.spawn(0, hammer(sys, 0, *lock, acquired, 400, 20));
  for (int n = 1; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              hammer(sys, static_cast<NodeId>(n), *lock, acquired, 25, 200));
  }
  sys.retain(lock);
  sys.run();
  EXPECT_EQ(sys.space().load(acquired, 8), 400u);
  for (int n = 1; n < 4; ++n) {
    EXPECT_EQ(sys.space().load(acquired + 64ull * n, 8), 25u) << n;
  }
}

TEST(SpinLockStress, ManyLocksManyProcessors) {
  System sys(tiny_cfg(ProtocolKind::kAd));
  constexpr int kLocks = 8;
  auto locks = std::make_shared<std::vector<SpinLock>>();
  for (int i = 0; i < kLocks; ++i) {
    locks->emplace_back(sys.heap());
  }
  const Addr counters = sys.heap().alloc(kLocks * 64, 64);

  auto worker = [](System& s, NodeId id, std::vector<SpinLock>& ls,
                   Addr counts) -> SimTask<void> {
    Processor& proc = s.proc(id);
    for (int i = 0; i < 120; ++i) {
      const int which = static_cast<int>(proc.rng().next_below(kLocks));
      co_await ls[static_cast<std::size_t>(which)].acquire(proc);
      const Addr c = counts + 64ull * which;
      const std::uint64_t v = co_await proc.read(c, 8);
      proc.compute(15);
      co_await proc.write(c, v + 1, 8);
      co_await ls[static_cast<std::size_t>(which)].release(proc);
    }
  };
  for (int n = 0; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              worker(sys, static_cast<NodeId>(n), *locks, counters));
  }
  sys.retain(locks);
  sys.run();
  std::uint64_t total = 0;
  for (int i = 0; i < kLocks; ++i) {
    total += sys.space().load(counters + 64ull * i, 8);
  }
  EXPECT_EQ(total, 480u);  // No lost updates anywhere.
}

TEST(BarrierStress, ManyPhasesReuseCleanly) {
  System sys(tiny_cfg());
  auto barrier = std::make_shared<Barrier>(sys.heap(), 4);
  const Addr phase_sum = sys.heap().alloc(8, 64);

  auto worker = [](System& s, NodeId id, Barrier& b,
                   Addr sum) -> SimTask<void> {
    Processor& proc = s.proc(id);
    for (int phase = 0; phase < 50; ++phase) {
      (void)co_await proc.fetch_add(sum, 1, 8);
      co_await b.wait(proc);
      // After each barrier, all 4 increments of this phase must be in.
      const std::uint64_t v = co_await proc.read(sum, 8);
      EXPECT_GE(v, static_cast<std::uint64_t>(4 * (phase + 1)));
      co_await b.wait(proc);  // Second barrier before the next phase.
    }
  };
  for (int n = 0; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              worker(sys, static_cast<NodeId>(n), *barrier, phase_sum));
  }
  sys.retain(barrier);
  sys.run();
  EXPECT_EQ(sys.space().load(phase_sum, 8), 200u);
}

TEST(TaskQueueStress, MultiProducerMultiConsumerExactDelivery) {
  System sys(tiny_cfg());
  auto queue = std::make_shared<TaskQueue>(sys.heap(), 64);
  const Addr delivered = sys.heap().alloc(8, 64);
  const Addr producers_done = sys.heap().alloc(8, 64);

  auto producer = [](System& s, NodeId id, TaskQueue& q, Addr done_flag,
                     int count) -> SimTask<void> {
    Processor& proc = s.proc(id);
    for (int i = 0; i < count; ++i) {
      for (;;) {
        const bool ok = co_await q.push(
            proc, static_cast<std::uint32_t>(id * 1000 + i));
        if (ok) break;
        proc.compute(80 + proc.rng().next_below(80));
      }
    }
    (void)co_await proc.fetch_add(done_flag, 1, 8);
  };
  auto consumer = [](System& s, NodeId id, TaskQueue& q, Addr sum,
                     Addr done_flag) -> SimTask<void> {
    Processor& proc = s.proc(id);
    int empties_after_done = 0;
    while (empties_after_done < 3) {
      const std::int64_t item = co_await q.pop(proc);
      if (item >= 0) {
        (void)co_await proc.fetch_add(sum, 1, 8);
        empties_after_done = 0;
        continue;
      }
      const std::uint64_t done = co_await proc.read(done_flag, 8);
      if (done == 2) ++empties_after_done;
      proc.compute(120 + proc.rng().next_below(120));
    }
  };
  sys.spawn(0, producer(sys, 0, *queue, producers_done, 150));
  sys.spawn(1, producer(sys, 1, *queue, producers_done, 150));
  sys.spawn(2, consumer(sys, 2, *queue, delivered, producers_done));
  sys.spawn(3, consumer(sys, 3, *queue, delivered, producers_done));
  sys.retain(queue);
  sys.run();
  EXPECT_EQ(sys.space().load(delivered, 8), 300u);
}

TEST(TicketLockStress, FifoUnderContention) {
  // Ticket locks grant in arrival order: with three contenders entering
  // a long-held lock, the service order must match ticket order. We
  // check the weaker (but deterministic) property that every round
  // completes and mutual exclusion holds.
  System sys(tiny_cfg());
  auto lock = std::make_shared<TicketLock>(sys.heap());
  const Addr counter = sys.heap().alloc(8, 64);
  auto worker = [](System& s, NodeId id, TicketLock& l,
                   Addr c) -> SimTask<void> {
    Processor& proc = s.proc(id);
    for (int i = 0; i < 60; ++i) {
      co_await l.acquire(proc);
      const std::uint64_t v = co_await proc.read(c, 8);
      proc.compute(40);
      co_await proc.write(c, v + 1, 8);
      co_await l.release(proc);
    }
  };
  for (int n = 0; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              worker(sys, static_cast<NodeId>(n), *lock, counter));
  }
  sys.retain(lock);
  sys.run();
  EXPECT_EQ(sys.space().load(counter, 8), 240u);
}

}  // namespace
}  // namespace lssim
