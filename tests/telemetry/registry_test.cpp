// Tests for the metrics registry: handle stability, snapshot/delta
// semantics, log-scale histogram bucketing, and JSON round-trips.
#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace lssim {
namespace {

TEST(RegistryTest, CounterAddAndValue) {
  MetricsRegistry reg;
  const CounterHandle c = reg.counter("requests");
  reg.add(c);
  reg.add(c, 41);
  EXPECT_EQ(reg.value(c), 42u);
}

TEST(RegistryTest, RegistrationIsIdempotentPerNameAndLabels) {
  MetricsRegistry reg;
  const CounterHandle a = reg.counter("hits", {{"node", "0"}});
  const CounterHandle b = reg.counter("hits", {{"node", "0"}});
  const CounterHandle other = reg.counter("hits", {{"node", "1"}});
  EXPECT_EQ(a.index, b.index);
  EXPECT_NE(a.index, other.index);
  reg.add(a, 3);
  reg.add(b, 4);
  EXPECT_EQ(reg.value(a), 7u);
  EXPECT_EQ(reg.value(other), 0u);
  EXPECT_EQ(reg.num_metrics(), 2u);
}

TEST(RegistryTest, FullNameIncludesLabels) {
  MetricDesc desc{"cache.l2_fills", MetricKind::kCounter,
                  {{"node", "3"}, {"level", "2"}}, 0};
  EXPECT_EQ(desc.full_name(), "cache.l2_fills{node=3,level=2}");
  MetricDesc bare{"net.messages", MetricKind::kCounter, {}, 0};
  EXPECT_EQ(bare.full_name(), "net.messages");
}

TEST(RegistryTest, GaugeKeepsLatestValue) {
  MetricsRegistry reg;
  const GaugeHandle g = reg.gauge("exec_cycles");
  reg.set(g, 100);
  reg.set(g, -5);
  EXPECT_EQ(reg.value(g), -5);
}

TEST(HistogramTest, BucketOfIsLogScale) {
  EXPECT_EQ(HistogramData::bucket_of(0), 0);
  EXPECT_EQ(HistogramData::bucket_of(1), 0);
  EXPECT_EQ(HistogramData::bucket_of(2), 1);
  EXPECT_EQ(HistogramData::bucket_of(3), 1);
  EXPECT_EQ(HistogramData::bucket_of(4), 2);
  EXPECT_EQ(HistogramData::bucket_of(7), 2);
  EXPECT_EQ(HistogramData::bucket_of(8), 3);
  EXPECT_EQ(HistogramData::bucket_of(1024), 10);
  // Values beyond 2^31 saturate into the last bucket.
  EXPECT_EQ(HistogramData::bucket_of(std::uint64_t{1} << 40),
            HistogramData::kBuckets - 1);
  EXPECT_EQ(HistogramData::bucket_of(~std::uint64_t{0}),
            HistogramData::kBuckets - 1);
}

TEST(HistogramTest, ObserveTracksMeanAndPercentile) {
  HistogramData h;
  for (int i = 0; i < 99; ++i) h.observe(100);   // bucket 6
  h.observe(100000);                             // bucket 16
  EXPECT_EQ(h.samples, 100u);
  EXPECT_DOUBLE_EQ(h.mean(), (99.0 * 100 + 100000) / 100.0);
  // The p50 sample sits in the [64,128) bucket; its upper edge is 127.
  EXPECT_EQ(h.percentile(0.5), 127u);
  // The outlier dominates the tail.
  EXPECT_GE(h.percentile(1.0), 100000u);
}

TEST(RegistryTest, SnapshotIsSelfContained) {
  MetricsRegistry reg;
  const CounterHandle c = reg.counter("events");
  reg.add(c, 7);
  const MetricsSnapshot snap = reg.snapshot();
  reg.add(c, 100);  // Does not retroactively change the snapshot.
  EXPECT_EQ(snap.counter_value("events"), 7u);
  EXPECT_EQ(reg.value(c), 107u);
}

TEST(RegistryTest, SnapshotDeltaSubtractsCountersKeepsGauges) {
  MetricsRegistry reg;
  const CounterHandle c = reg.counter("msgs");
  const GaugeHandle g = reg.gauge("depth");
  const HistogramHandle h = reg.histogram("lat");
  reg.add(c, 10);
  reg.set(g, 4);
  reg.observe(h, 100);
  const MetricsSnapshot before = reg.snapshot();
  reg.add(c, 5);
  reg.set(g, 9);
  reg.observe(h, 100);
  reg.observe(h, 2000);
  const MetricsSnapshot after = reg.snapshot();

  const MetricsSnapshot delta = snapshot_delta(after, before);
  EXPECT_EQ(delta.counter_value("msgs"), 5u);
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0], 9);  // Instantaneous: later value.
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].samples, 2u);
  EXPECT_EQ(delta.histograms[0].sum, 2100u);
}

TEST(RegistryTest, DeltaThrowsWhenLaterSnapshotHasFewerSlots) {
  // Passing snapshots from different registries (or in the wrong order)
  // used to under- or over-subtract silently; now it throws.
  MetricsRegistry big;
  big.add(big.counter("a"), 1);
  big.add(big.counter("b"), 2);
  big.observe(big.histogram("h1"), 10);
  big.observe(big.histogram("h2"), 10);
  big.set(big.gauge("g1"), 1);
  big.set(big.gauge("g2"), 2);
  const MetricsSnapshot earlier = big.snapshot();

  MetricsRegistry small;
  small.add(small.counter("a"), 1);
  small.observe(small.histogram("h1"), 10);
  small.set(small.gauge("g1"), 1);
  EXPECT_THROW(snapshot_delta(small.snapshot(), earlier),
               std::invalid_argument);
  // The reverse order is the documented contract and still works.
  const MetricsSnapshot delta = snapshot_delta(earlier, small.snapshot());
  EXPECT_EQ(delta.counter_value("b"), 2u);
}

TEST(RegistryTest, DeltaToleratesMetricsRegisteredAfterEarlierSnapshot) {
  MetricsRegistry reg;
  const CounterHandle c = reg.counter("a");
  reg.add(c, 2);
  const MetricsSnapshot before = reg.snapshot();
  const CounterHandle late = reg.counter("b");
  reg.add(late, 30);
  const MetricsSnapshot delta = snapshot_delta(reg.snapshot(), before);
  EXPECT_EQ(delta.counter_value("a"), 0u);
  EXPECT_EQ(delta.counter_value("b"), 30u);  // Kept as-is.
}

TEST(RegistryTest, CounterTotalSumsAcrossLabelSets) {
  MetricsRegistry reg;
  reg.add(reg.counter("hits", {{"node", "0"}}), 3);
  reg.add(reg.counter("hits", {{"node", "1"}}), 4);
  reg.add(reg.counter("other"), 100);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_total("hits"), 7u);
  EXPECT_EQ(snap.counter_value("hits{node=1}"), 4u);
}

TEST(RegistryTest, SnapshotJsonRoundTrip) {
  MetricsRegistry reg;
  reg.add(reg.counter("c", {{"node", "2"}}), 123456789012345ull);
  reg.set(reg.gauge("g"), -17);
  const HistogramHandle h = reg.histogram("h");
  reg.observe(h, 0);
  reg.observe(h, 300);
  const MetricsSnapshot snap = reg.snapshot();

  const Json doc = snapshot_to_json(snap);
  std::string error;
  const Json parsed = Json::parse(doc.dump(2), &error);
  ASSERT_TRUE(error.empty()) << error;
  MetricsSnapshot back;
  ASSERT_TRUE(snapshot_from_json(parsed, &back, &error)) << error;

  EXPECT_EQ(back.counter_value("c{node=2}"), 123456789012345ull);
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_EQ(back.gauges[0], -17);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms[0].samples, 2u);
  EXPECT_EQ(back.histograms[0].sum, 300u);
  EXPECT_EQ(back.histograms[0].counts[HistogramData::bucket_of(300)], 1u);
}

TEST(RegistryTest, SnapshotFromJsonRejectsMalformedInput) {
  std::string error;
  MetricsSnapshot out;
  EXPECT_FALSE(snapshot_from_json(Json(5), &out, &error));
  EXPECT_FALSE(error.empty());

  const Json bad = Json::parse(R"([{"name":"x","kind":"mystery"}])", &error);
  error.clear();
  EXPECT_FALSE(snapshot_from_json(bad, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(RegistryTest, PrintMetricsListsEveryMetric) {
  MetricsRegistry reg;
  reg.add(reg.counter("alpha"), 1);
  reg.observe(reg.histogram("beta"), 64);
  std::ostringstream os;
  print_metrics(os, reg.snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha 1"), std::string::npos);
  EXPECT_NE(text.find("beta samples=1"), std::string::npos);
}

}  // namespace
}  // namespace lssim
