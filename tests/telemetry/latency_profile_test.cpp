// Ownership-latency profiling: the engine feeds per-access-type
// histograms, the latency report carries p50/p95/p99 for every
// protocol, and — the paper's headline effect — LS's write-miss+upgrade
// latency distribution dominates Baseline's on the pingpong workload,
// because load-store sequences turn most ownership transactions into
// local writes.
#include "telemetry/latency_report.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../core/protocol_test_util.hpp"
#include "driver/runner.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lssim {
namespace {

TEST(LatencyProfile, EngineObservesEachAccessTypeSeparately) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kBaseline);
  cfg.telemetry.metrics = true;
  Telemetry telemetry(cfg.telemetry);
  ProtocolFixture f(cfg, &telemetry);
  const Addr a = f.on_home(0);
  const Addr b = f.on_home(1);
  (void)f.read(1, a);   // Read miss.
  (void)f.write(1, a);  // Upgrade (Shared copy in node 1's cache).
  (void)f.write(2, b);  // Write miss (no preceding read).

  const MetricsSnapshot snap = telemetry.registry().snapshot();
  const HistogramData* read_miss =
      snap.histogram("ownership.latency{op=read-miss}");
  const HistogramData* write_miss =
      snap.histogram("ownership.latency{op=write-miss}");
  const HistogramData* upgrade =
      snap.histogram("ownership.latency{op=upgrade}");
  ASSERT_NE(read_miss, nullptr);
  ASSERT_NE(write_miss, nullptr);
  ASSERT_NE(upgrade, nullptr);
  EXPECT_EQ(read_miss->samples, 1u);
  EXPECT_EQ(write_miss->samples, 1u);
  EXPECT_EQ(upgrade->samples, 1u);
  // Every coherence transaction takes nonzero time.
  EXPECT_GT(read_miss->sum, 0u);
  EXPECT_GT(write_miss->sum, 0u);
  EXPECT_GT(upgrade->sum, 0u);
}

TEST(LatencyProfile, MetricsOffRegistersNoHistograms) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kLs);
  Telemetry telemetry(cfg.telemetry);
  ProtocolFixture f(cfg, &telemetry);
  (void)f.read(1, f.on_home(0));
  (void)f.write(1, f.on_home(0));
  EXPECT_EQ(telemetry.registry().num_metrics(), 0u);
}

// Acceptance: the --latency-out report carries per-protocol p50/p95/p99
// for all five protocols.
TEST(LatencyProfile, ReportCarriesPercentilesForAllFiveProtocols) {
  DriverOptions options;
  options.workload = "pingpong";
  options.protocols = {ProtocolKind::kBaseline, ProtocolKind::kAd,
                       ProtocolKind::kLs, ProtocolKind::kIls,
                       ProtocolKind::kLsAd};
  options.latency_out = "unused.json";  // Enables metrics capture.

  const std::vector<DriverRun> runs =
      run_driver_workloads_captured(options);
  ASSERT_EQ(runs.size(), 5u);

  std::vector<LatencyReportRun> report_runs;
  for (const DriverRun& run : runs) {
    report_runs.push_back(
        LatencyReportRun{to_string(run.result.protocol), &run.metrics});
  }
  const Json doc =
      latency_report_to_json(options.workload, options.seed, report_runs);

  EXPECT_EQ(doc.find("schema_version")->as_uint(), 1u);
  EXPECT_EQ(doc.find("generator")->as_string(), "lssim");
  const Json* json_runs = doc.find("runs");
  ASSERT_NE(json_runs, nullptr);
  ASSERT_EQ(json_runs->as_array().size(), 5u);
  for (const Json& run : json_runs->as_array()) {
    const std::string protocol = run.find("protocol")->as_string();
    const Json* latency = run.find("ownership_latency");
    ASSERT_NE(latency, nullptr) << protocol;
    ASSERT_TRUE(latency->is_object()) << protocol;
    for (const char* op : kOwnershipLatencyOps) {
      const Json* digest = latency->find(op);
      ASSERT_NE(digest, nullptr) << protocol << "/" << op;
      for (const char* key : {"samples", "sum", "mean", "p50", "p95",
                              "p99", "buckets"}) {
        EXPECT_NE(digest->find(key), nullptr)
            << protocol << "/" << op << " missing " << key;
      }
      EXPECT_LE(digest->find("p50")->as_uint(),
                digest->find("p95")->as_uint())
          << protocol << "/" << op;
      EXPECT_LE(digest->find("p95")->as_uint(),
                digest->find("p99")->as_uint())
          << protocol << "/" << op;
    }
    // Pingpong misses in every protocol: the read-miss digest is never
    // empty, so the percentiles above are meaningful numbers.
    EXPECT_GT(latency->find("read-miss")->find("samples")->as_uint(), 0u)
        << protocol;
  }
}

// Sums the write-miss and upgrade histograms: the paper's ownership
// overhead is the union of both (a write miss acquires ownership too).
HistogramData ownership_write_path(const MetricsSnapshot& snap) {
  HistogramData combined;
  for (const char* op : {"write-miss", "upgrade"}) {
    const HistogramData* h = snap.histogram(
        std::string("ownership.latency{op=") + op + "}");
    if (h == nullptr) continue;
    combined.samples += h->samples;
    combined.sum += h->sum;
    for (int b = 0; b < HistogramData::kBuckets; ++b) {
      combined.counts[b] += h->counts[b];
    }
  }
  return combined;
}

// Acceptance: LS's write-miss+upgrade latency distribution dominates
// Baseline's on pingpong — at every latency threshold, LS has no more
// slow ownership transactions than Baseline (first-order stochastic
// dominance on the complementary CDF), and strictly fewer overall.
TEST(LatencyProfile, LsWritePathDominatesBaselineOnPingpong) {
  DriverOptions options;
  options.workload = "pingpong";
  options.protocols = {ProtocolKind::kBaseline, ProtocolKind::kLs};
  options.latency_out = "unused.json";

  const std::vector<DriverRun> runs =
      run_driver_workloads_captured(options);
  ASSERT_EQ(runs.size(), 2u);
  const HistogramData base = ownership_write_path(runs[0].metrics);
  const HistogramData ls = ownership_write_path(runs[1].metrics);

  ASSERT_GT(base.samples, 0u);
  // LS eliminates most ownership acquisitions outright.
  EXPECT_LT(ls.samples, base.samples);
  EXPECT_LT(ls.sum, base.sum);

  // Tail dominance: for every bucket boundary, the count of ownership
  // transactions slower than that boundary under LS is <= Baseline's.
  std::uint64_t tail_base = 0;
  std::uint64_t tail_ls = 0;
  for (int b = HistogramData::kBuckets - 1; b >= 0; --b) {
    tail_base += base.counts[b];
    tail_ls += ls.counts[b];
    EXPECT_LE(tail_ls, tail_base) << "tail above bucket " << b;
  }
}

}  // namespace
}  // namespace lssim
