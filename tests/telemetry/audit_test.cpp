// Tests for the tag-decision audit trail: ring semantics (wrap at exact
// capacity, capacity 0 = disabled), engine hook coverage for the policy
// reason codes, JSONL serialization, and a driver-level cross-check of
// the audit stream against the engine's own tag statistics.
#include "telemetry/audit.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "../core/protocol_test_util.hpp"
#include "driver/runner.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace lssim {
namespace {

void record_n(TagAuditLog& log, int n, Cycles start = 0) {
  for (int i = 0; i < n; ++i) {
    log.record(start + static_cast<Cycles>(i), 0x40, 1, TagAuditEvent::kTag,
               TagReason::kLsSequence, 0, 0, true);
  }
}

std::vector<Cycles> times_of(const TagAuditLog& log) {
  std::vector<Cycles> times;
  log.for_each([&](const TagAuditRecord& r) { times.push_back(r.time); });
  return times;
}

TEST(TagAuditLog, CapacityZeroIsDisabled) {
  TagAuditLog log(0);
  EXPECT_FALSE(log.enabled());
  record_n(log, 3);
  EXPECT_EQ(log.total(), 0u);
  EXPECT_EQ(log.size(), 0u);
  bool called = false;
  log.for_each([&](const TagAuditRecord&) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TagAuditLog, ExactCapacityRetainsAllWithoutWrap) {
  TagAuditLog log(4);
  record_n(log, 4);
  EXPECT_EQ(log.total(), 4u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(times_of(log), (std::vector<Cycles>{0, 1, 2, 3}));
  // The next record wraps: exactly the oldest entry is replaced.
  record_n(log, 1, 4);
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(times_of(log), (std::vector<Cycles>{1, 2, 3, 4}));
}

TEST(TagAuditLog, RingDropsOldestAcrossMultipleWraps) {
  TagAuditLog log(3);
  record_n(log, 8);
  EXPECT_EQ(log.total(), 8u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(times_of(log), (std::vector<Cycles>{5, 6, 7}));
}

TEST(TagAuditLog, JsonlCarriesEveryFieldPlusSummary) {
  TagAuditLog log(8);
  log.record(1234, 0x80, 2, TagAuditEvent::kDetag, TagReason::kLoneWrite,
             0, 0, false);
  std::ostringstream os;
  write_audit_jsonl(os, log, "LS");

  std::vector<std::string> lines;
  std::istringstream is(os.str());
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);

  std::string error;
  const Json rec = Json::parse(lines[0], &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(rec.find("protocol")->as_string(), "LS");
  EXPECT_EQ(rec.find("time")->as_uint(), 1234u);
  EXPECT_EQ(rec.find("block")->as_uint(), 0x80u);
  EXPECT_EQ(rec.find("node")->as_uint(), 2u);
  EXPECT_EQ(rec.find("event")->as_string(), "detag");
  EXPECT_EQ(rec.find("reason")->as_string(), "lone-write");
  EXPECT_EQ(rec.find("tag_progress")->as_uint(), 0u);
  EXPECT_EQ(rec.find("detag_progress")->as_uint(), 0u);
  EXPECT_FALSE(rec.find("tagged")->as_bool());

  const Json summary = Json::parse(lines[1], &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(summary.find("event")->as_string(), "summary");
  EXPECT_EQ(summary.find("recorded")->as_uint(), 1u);
  EXPECT_EQ(summary.find("retained")->as_uint(), 1u);
}

TEST(TagAuditLog, JsonlSummaryReportsTruncation) {
  TagAuditLog log(2);
  record_n(log, 5);
  std::ostringstream os;
  write_audit_jsonl(os, log, "AD");
  std::string error;
  std::istringstream is(os.str());
  std::string line, last;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    last = line;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);  // 2 retained + summary.
  const Json summary = Json::parse(last, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(summary.find("recorded")->as_uint(), 5u);
  EXPECT_EQ(summary.find("retained")->as_uint(), 2u);
}

// --- Engine hook coverage -------------------------------------------------

struct AuditedFixture {
  explicit AuditedFixture(MachineConfig cfg)
      : telemetry((cfg.telemetry.audit_capacity = 4096, cfg.telemetry)),
        f(cfg, &telemetry) {}

  std::vector<TagAuditRecord> records() const {
    std::vector<TagAuditRecord> out;
    telemetry.audit_log().for_each(
        [&](const TagAuditRecord& r) { out.push_back(r); });
    return out;
  }

  Telemetry telemetry;
  ProtocolFixture f;
};

TEST(TagAuditEngine, LsSequenceTagIsAudited) {
  AuditedFixture ax(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = ax.f.on_home(0);
  (void)ax.f.read(1, a);
  (void)ax.f.write(1, a);  // Read-then-write by node 1: §3.1 tag.

  const auto records = ax.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event, TagAuditEvent::kTag);
  EXPECT_EQ(records[0].reason, TagReason::kLsSequence);
  EXPECT_EQ(records[0].block, ax.f.block_of(a));
  EXPECT_EQ(records[0].node, 1u);
  EXPECT_TRUE(records[0].tagged);
}

TEST(TagAuditEngine, ForeignReadDetagIsAudited) {
  AuditedFixture ax(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = ax.f.on_home(0);
  (void)ax.f.read(1, a);
  (void)ax.f.write(1, a);  // Tag.
  (void)ax.f.read(2, a);   // Migrate: node 2 holds LStemp.
  (void)ax.f.read(3, a);   // Foreign read before the owning write: de-tag.

  const auto records = ax.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].event, TagAuditEvent::kDetag);
  EXPECT_EQ(records[1].reason, TagReason::kForeignAccess);
  EXPECT_EQ(records[1].node, 3u);
  EXPECT_FALSE(records[1].tagged);
}

TEST(TagAuditEngine, LoneWriteDetagIsAudited) {
  AuditedFixture ax(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = ax.f.on_home(0);
  (void)ax.f.read(1, a);
  (void)ax.f.write(1, a);  // Tag.
  (void)ax.f.write(2, a);  // Write miss with no preceding read: de-tag.

  const auto records = ax.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].event, TagAuditEvent::kDetag);
  EXPECT_EQ(records[1].reason, TagReason::kLoneWrite);
  EXPECT_EQ(records[1].node, 2u);
}

TEST(TagAuditEngine, HysteresisProgressIsAuditedBeforeCrossing) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kLs);
  cfg.protocol.tag_hysteresis = 2;
  AuditedFixture ax(cfg);
  const Addr a = ax.f.on_home(0);
  (void)ax.f.read(1, a);
  (void)ax.f.write(1, a);  // First LS sequence: progress 1/2, no tag yet.

  auto records = ax.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event, TagAuditEvent::kTagProgress);
  EXPECT_EQ(records[0].tag_progress, 1u);
  EXPECT_FALSE(records[0].tagged);

  (void)ax.f.read(2, a);
  (void)ax.f.write(2, a);  // Second sequence crosses the threshold.
  records = ax.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].event, TagAuditEvent::kTag);
  EXPECT_EQ(records[1].tag_progress, 0u);  // Counter after the event.
  EXPECT_TRUE(records[1].tagged);
}

TEST(TagAuditEngine, AdMigratoryDetectAndReplacementDetagAreAudited) {
  AuditedFixture ax(ProtocolFixture::tiny(ProtocolKind::kAd));
  const Addr a = ax.f.on_home(0);
  (void)ax.f.write(1, a);  // last_writer = 1.
  (void)ax.f.read(2, a);   // Sharing read: sharers = {1, 2}.
  (void)ax.f.write(2, a);  // Upgrade invalidating exactly {1}: detect.

  auto records = ax.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event, TagAuditEvent::kTag);
  EXPECT_EQ(records[0].reason, TagReason::kMigratoryDetect);

  // Replacing the owning copy breaks AD's hand-off chain: the engine's
  // victim hook must audit the de-tag with the replacement reason.
  ax.f.force_eviction(2, a);
  records = ax.records();
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records[1].event, TagAuditEvent::kDetag);
  EXPECT_EQ(records[1].reason, TagReason::kReplacement);
  EXPECT_EQ(records[1].node, 2u);
}

TEST(TagAuditEngine, AuditOffRecordsNothing) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kLs);
  Telemetry telemetry(cfg.telemetry);  // Defaults: everything off.
  ProtocolFixture f(cfg, &telemetry);
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a);
  EXPECT_EQ(telemetry.audit_log().total(), 0u);
  EXPECT_EQ(f.stats().blocks_tagged, 1u);  // The tag itself still happens.
}

// --- Driver-level cross-check ---------------------------------------------

// The audit stream and the engine's tag statistics observe the same hook
// sites; on a real workload their counts must agree exactly. This is the
// cheap half of the cross-check against the independent LS model in
// src/check/invariants.cpp (which asserts tag-state legality; here we
// assert the audit trail is a complete record of the transitions).
TEST(TagAuditDriver, AuditCountsMatchEngineTagStatistics) {
  DriverOptions options;
  options.workload = "pingpong";
  options.protocols = {ProtocolKind::kLs, ProtocolKind::kLsAd};
  options.audit_capacity = std::size_t{1} << 20;  // Retain everything.

  for (ProtocolKind kind : options.protocols) {
    const DriverRun run = run_driver_workload_captured(options, kind);
    std::uint64_t tags = 0;
    std::uint64_t detags = 0;
    run.audit.for_each([&](const TagAuditRecord& r) {
      if (r.event == TagAuditEvent::kTag) ++tags;
      if (r.event == TagAuditEvent::kDetag) ++detags;
    });
    ASSERT_EQ(run.audit.total(), run.audit.size())
        << "ring truncated; raise audit_capacity";
    EXPECT_EQ(tags, run.result.blocks_tagged) << to_string(kind);
    EXPECT_EQ(detags, run.result.blocks_detagged) << to_string(kind);
    EXPECT_GT(tags, 0u) << to_string(kind);
  }
}

}  // namespace
}  // namespace lssim
