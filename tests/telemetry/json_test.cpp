// Tests for the minimal JSON model: exact integer round-trips, escaping,
// ordering, and parse errors.
#include "telemetry/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace lssim {
namespace {

TEST(JsonTest, Uint64RoundTripsExactly) {
  // Counters can exceed the 2^53 double range; the kUint type must keep
  // every bit through dump + parse.
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  Json::Object o;
  o.emplace_back("value", Json(big));
  const std::string text = Json(std::move(o)).dump();
  std::string error;
  const Json parsed = Json::parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  const Json* value = parsed.find("value");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->type(), Json::Type::kUint);
  EXPECT_EQ(value->as_uint(), big);
}

TEST(JsonTest, NegativeAndFractionalNumbersAreDoubles) {
  std::string error;
  const Json neg = Json::parse("-42", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(neg.type(), Json::Type::kNumber);
  EXPECT_DOUBLE_EQ(neg.as_double(), -42.0);

  const Json frac = Json::parse("2.5e1", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_DOUBLE_EQ(frac.as_double(), 25.0);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json::Object o;
  o.emplace_back("zebra", Json(1));
  o.emplace_back("alpha", Json(2));
  o.emplace_back("mid", Json(3));
  const std::string text = Json(std::move(o)).dump();
  EXPECT_LT(text.find("zebra"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("mid"));
}

TEST(JsonTest, StringEscapesRoundTrip) {
  const std::string nasty = "quote \" backslash \\ newline \n tab \t";
  Json::Object o;
  o.emplace_back("s", Json(nasty));
  const std::string text = Json(std::move(o)).dump();
  std::string error;
  const Json parsed = Json::parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(parsed.find("s")->as_string(), nasty);
}

TEST(JsonTest, UnicodeEscapeParses) {
  std::string error;
  const Json parsed = Json::parse("\"a\\u0041b\"", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(parsed.as_string(), "aAb");
}

TEST(JsonTest, NestedStructuresRoundTrip) {
  std::string error;
  const char* text =
      R"({"arr":[1,2,[3,{"k":true}]],"obj":{"n":null,"f":false}})";
  const Json parsed = Json::parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  const Json reparsed = Json::parse(parsed.dump(), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(reparsed.dump(), parsed.dump());
  const Json* arr = parsed.find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->as_array().size(), 3u);
  EXPECT_TRUE(arr->as_array()[2].as_array()[1].find("k")->as_bool());
}

TEST(JsonTest, PrettyPrintParsesBack) {
  Json::Object o;
  o.emplace_back("a", Json(Json::Array{Json(1), Json(2)}));
  o.emplace_back("b", Json("text"));
  const Json doc{std::move(o)};
  std::string error;
  const Json parsed = Json::parse(doc.dump(2), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(parsed.dump(), doc.dump());
}

TEST(JsonTest, MalformedInputSetsError) {
  std::string error;
  (void)Json::parse("{\"unterminated\": ", &error);
  EXPECT_FALSE(error.empty());

  error.clear();
  (void)Json::parse("[1, 2,,]", &error);
  EXPECT_FALSE(error.empty());

  error.clear();
  (void)Json::parse("tru", &error);
  EXPECT_FALSE(error.empty());

  // Trailing garbage after a complete value is also an error.
  error.clear();
  (void)Json::parse("{} extra", &error);
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(Json(5).find("x"), nullptr);
  EXPECT_EQ(Json("s").find("x"), nullptr);
  Json obj;
  obj.set("x", Json(1));
  EXPECT_NE(obj.find("x"), nullptr);
  EXPECT_EQ(obj.find("y"), nullptr);
}

}  // namespace
}  // namespace lssim
