// Tests for the Chrome trace-event exporter: golden serialization of a
// hand-built trace, parse-back fidelity, and an end-to-end driver run
// asserting duration events for every exercised protocol event kind.
#include "telemetry/perfetto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "driver/runner.hpp"
#include "telemetry/coherence_trace.hpp"

namespace lssim {
namespace {

CoherenceTrace make_small_trace() {
  CoherenceTrace trace(16);
  trace.span(/*node=*/1, ProtoEventKind::kReadMiss, /*block=*/0x40,
             /*begin=*/100, /*end=*/320);
  trace.span(/*node=*/0, ProtoEventKind::kUpgrade, 0x40, 400, 650);
  trace.instant(/*node=*/1, ProtoEventKind::kTag, 0x40, /*time=*/650);
  return trace;
}

TEST(PerfettoTest, GoldenSmallTrace) {
  std::ostringstream os;
  write_chrome_trace(os, "LS", make_small_trace());
  const std::string text = os.str();

  // Structural golden checks on the serialized document. Field order is
  // stable (insertion-ordered objects), so substrings are deterministic.
  EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"generator\": \"lssim\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_NE(text.find(R"("name": "read-miss")"), std::string::npos);
  EXPECT_NE(text.find(R"("cat": "coherence")"), std::string::npos);
  EXPECT_NE(text.find(R"("ph": "X")"), std::string::npos);
  EXPECT_NE(text.find(R"("ts": 100)"), std::string::npos);
  EXPECT_NE(text.find(R"("dur": 220)"), std::string::npos);
  EXPECT_NE(text.find(R"("block": "0x000040")"), std::string::npos);
  EXPECT_NE(text.find(R"("name": "tag")"), std::string::npos);
  EXPECT_NE(text.find(R"("ph": "i")"), std::string::npos);
  EXPECT_NE(text.find(R"("s": "t")"), std::string::npos);
  // Metadata names the process after the protocol and the threads after
  // the nodes.
  EXPECT_NE(text.find(R"("name": "LS")"), std::string::npos);
  EXPECT_NE(text.find(R"("name": "node 0")"), std::string::npos);
  EXPECT_NE(text.find(R"("name": "node 1")"), std::string::npos);
}

TEST(PerfettoTest, ParseBackRecoversEveryField) {
  std::ostringstream os;
  write_chrome_trace(os, "Baseline", make_small_trace());

  std::vector<ChromeTraceEvent> events;
  std::string error;
  ASSERT_TRUE(parse_chrome_trace(os.str(), &events, &error)) << error;

  // 1 process_name + 2 spans + 1 instant + 2 thread_name.
  ASSERT_EQ(events.size(), 6u);
  const auto is_span = [](const ChromeTraceEvent& e) { return e.ph == "X"; };
  ASSERT_EQ(std::count_if(events.begin(), events.end(), is_span), 2);
  const auto read_miss =
      std::find_if(events.begin(), events.end(), [](const ChromeTraceEvent& e) {
        return e.ph == "X" && e.name == "read-miss";
      });
  ASSERT_NE(read_miss, events.end());
  EXPECT_EQ(read_miss->ts, 100u);
  EXPECT_EQ(read_miss->dur, 220u);
  EXPECT_EQ(read_miss->pid, 0);
  EXPECT_EQ(read_miss->tid, 1);
  EXPECT_EQ(read_miss->cat, "coherence");
  EXPECT_EQ(read_miss->arg_block, "0x000040");

  const auto instant =
      std::find_if(events.begin(), events.end(), [](const ChromeTraceEvent& e) {
        return e.ph == "i";
      });
  ASSERT_NE(instant, events.end());
  EXPECT_EQ(instant->name, "tag");
  EXPECT_EQ(instant->ts, 650u);
}

TEST(PerfettoTest, CapacityDropsAreCountedNotSilent) {
  CoherenceTrace trace(2);
  trace.span(0, ProtoEventKind::kReadMiss, 0x0, 0, 10);
  trace.span(0, ProtoEventKind::kReadMiss, 0x40, 10, 20);
  trace.span(0, ProtoEventKind::kReadMiss, 0x80, 20, 30);  // Dropped.
  trace.instant(0, ProtoEventKind::kTag, 0x80, 30);        // Dropped.
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.dropped(), 2u);

  std::ostringstream os;
  write_chrome_trace(os, "X", trace);
  EXPECT_NE(os.str().find("\"dropped_events\": 2"), std::string::npos);
}

TEST(PerfettoTest, CapacityLimitedExportKeepsRetainedEventsInOrder) {
  // A capacity-limited trace exports exactly its retained events (the
  // first N; overflow is counted, not exported) in timestamp order.
  CoherenceTrace trace(3);
  trace.span(0, ProtoEventKind::kReadMiss, 0x00, 5, 15);
  trace.span(1, ProtoEventKind::kWriteMiss, 0x40, 20, 35);
  trace.span(0, ProtoEventKind::kUpgrade, 0x80, 40, 55);
  trace.span(1, ProtoEventKind::kReadMiss, 0xc0, 60, 70);  // Dropped.
  trace.instant(0, ProtoEventKind::kTag, 0xc0, 70);        // Dropped.

  std::ostringstream os;
  write_chrome_trace(os, "LS", trace);
  std::vector<ChromeTraceEvent> events;
  std::string error;
  ASSERT_TRUE(parse_chrome_trace(os.str(), &events, &error)) << error;

  std::vector<const ChromeTraceEvent*> coherence;
  for (const ChromeTraceEvent& e : events) {
    if (e.cat == "coherence") coherence.push_back(&e);
  }
  // Only the retained events appear: nothing from the dropped tail.
  ASSERT_EQ(coherence.size(), 3u);
  for (const ChromeTraceEvent* e : coherence) {
    EXPECT_NE(e->arg_block, "0x0000c0");
  }
  // ...and in timestamp order.
  for (std::size_t i = 1; i < coherence.size(); ++i) {
    EXPECT_LE(coherence[i - 1]->ts, coherence[i]->ts);
  }
  EXPECT_NE(os.str().find("\"dropped_events\": 2"), std::string::npos);
}

TEST(PerfettoTest, MultiProcessExportAssignsDistinctPids) {
  const CoherenceTrace a = make_small_trace();
  const CoherenceTrace b = make_small_trace();
  std::ostringstream os;
  write_chrome_trace(os, {TraceProcess{"Baseline", &a, nullptr},
                          TraceProcess{"LS", &b, nullptr}});
  std::vector<ChromeTraceEvent> events;
  std::string error;
  ASSERT_TRUE(parse_chrome_trace(os.str(), &events, &error)) << error;
  std::set<int> pids;
  for (const ChromeTraceEvent& e : events) pids.insert(e.pid);
  EXPECT_EQ(pids, (std::set<int>{0, 1}));
}

TEST(PerfettoTest, EventLogExportsAsInstants) {
  EventLog log(8);
  log.record(42, ProtoEventKind::kWriteback, 0x100, 2, DirState::kUncached,
             false);
  std::ostringstream os;
  write_chrome_trace(os, {TraceProcess{"log", nullptr, &log}});
  std::vector<ChromeTraceEvent> events;
  std::string error;
  ASSERT_TRUE(parse_chrome_trace(os.str(), &events, &error)) << error;
  const auto wb =
      std::find_if(events.begin(), events.end(), [](const ChromeTraceEvent& e) {
        return e.name == "writeback";
      });
  ASSERT_NE(wb, events.end());
  EXPECT_EQ(wb->ph, "i");
  EXPECT_EQ(wb->ts, 42u);
  EXPECT_EQ(wb->tid, 2);
}

TEST(PerfettoTest, ParseRejectsMalformedDocuments) {
  std::vector<ChromeTraceEvent> events;
  std::string error;
  EXPECT_FALSE(parse_chrome_trace("[1,2]", &events, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_chrome_trace("{\"traceEvents\": 5}", &events, &error));
  EXPECT_FALSE(error.empty());
}

// End-to-end acceptance: run two protocols through the driver with
// tracing on and verify the exported document contains at least one
// duration event for every protocol event kind the run exercised.
TEST(PerfettoTest, EndToEndRunProducesDurationEventsPerExercisedKind) {
  DriverOptions options;
  options.workload = "pingpong";
  options.protocols = {ProtocolKind::kBaseline, ProtocolKind::kLs};
  options.trace_capacity = 1 << 16;

  std::vector<DriverRun> runs;
  for (ProtocolKind kind : options.protocols) {
    runs.push_back(run_driver_workload_captured(options, kind));
  }

  std::vector<TraceProcess> processes;
  for (const DriverRun& run : runs) {
    processes.push_back(
        TraceProcess{to_string(run.result.protocol), &run.trace, nullptr});
  }
  std::ostringstream os;
  write_chrome_trace(os, processes);

  std::vector<ChromeTraceEvent> events;
  std::string error;
  ASSERT_TRUE(parse_chrome_trace(os.str(), &events, &error)) << error;

  for (std::size_t p = 0; p < runs.size(); ++p) {
    // Every span kind the run recorded must appear as an "X" event of
    // this pid in the export.
    std::set<std::string> exercised;
    for (const TraceSpan& s : runs[p].trace.spans()) {
      exercised.insert(to_string(s.kind));
    }
    EXPECT_FALSE(exercised.empty());
    for (const std::string& kind : exercised) {
      const bool found = std::any_of(
          events.begin(), events.end(), [&](const ChromeTraceEvent& e) {
            return e.ph == "X" && e.pid == static_cast<int>(p) &&
                   e.name == kind && e.dur > 0;
          });
      EXPECT_TRUE(found) << "missing duration event for " << kind
                         << " in pid " << p;
    }
  }

  // The pingpong workload bounces ownership: Baseline must show
  // upgrades; LS must show the eliminated-acquisition instants.
  const bool baseline_upgrades =
      std::any_of(events.begin(), events.end(), [](const ChromeTraceEvent& e) {
        return e.pid == 0 && e.ph == "X" && e.name == "upgrade";
      });
  EXPECT_TRUE(baseline_upgrades);
  const bool ls_local_writes =
      std::any_of(events.begin(), events.end(), [](const ChromeTraceEvent& e) {
        return e.pid == 1 && e.ph == "i" && e.name == "local-write";
      });
  EXPECT_TRUE(ls_local_writes);
}

}  // namespace
}  // namespace lssim
