// Tests for the versioned run manifest: schema round-trips, version
// policy, and end-to-end agreement between the metrics snapshot and the
// RunResult totals.
#include "telemetry/manifest.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "driver/runner.hpp"

namespace lssim {
namespace {

RunManifest make_manifest() {
  RunManifest manifest;
  manifest.workload = "oltp";
  manifest.seed = 99;
  manifest.params["txns_per_proc"] = "500";
  manifest.params["hot_accounts"] = "16";
  manifest.machine.num_nodes = 8;
  manifest.machine.protocol.kind = ProtocolKind::kLsAd;
  manifest.machine.topology = Topology::kRing;
  manifest.machine.consistency = ConsistencyModel::kPc;
  manifest.machine.l1.size_bytes = 8192;
  manifest.machine.classify_false_sharing = true;
  manifest.machine.interconnect = InterconnectKind::kBus;
  manifest.machine.bus_arbitration = BusArbitration::kRoundRobin;
  manifest.wall_seconds = 1.5;

  RunManifest::ProtocolRun run;
  run.result.protocol = ProtocolKind::kLs;
  run.result.interconnect = InterconnectKind::kBus;
  run.result.exec_time = 123456;
  run.result.time = TimeBreakdown{1000, 2000, 3000};
  run.result.global_read_misses = 77;
  run.result.eliminated_acquisitions = 33;
  run.result.update_transactions = 11;
  run.result.updates_sent = 22;
  run.result.read_miss_home = {1, 2, 3, 4};
  manifest.runs.push_back(run);
  return manifest;
}

TEST(ManifestTest, RoundTripPreservesEveryField) {
  const RunManifest manifest = make_manifest();
  std::ostringstream os;
  write_manifest(os, manifest);

  RunManifest back;
  std::string error;
  ASSERT_TRUE(manifest_from_text(os.str(), &back, &error)) << error;

  EXPECT_EQ(back.schema_version, kManifestSchemaVersion);
  EXPECT_EQ(back.generator, "lssim");
  EXPECT_EQ(back.workload, "oltp");
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.params.at("txns_per_proc"), "500");
  EXPECT_EQ(back.params.at("hot_accounts"), "16");
  EXPECT_EQ(back.machine.num_nodes, 8);
  EXPECT_EQ(back.machine.protocol.kind, ProtocolKind::kLsAd);
  EXPECT_EQ(back.machine.topology, Topology::kRing);
  EXPECT_EQ(back.machine.consistency, ConsistencyModel::kPc);
  EXPECT_EQ(back.machine.l1.size_bytes, 8192u);
  EXPECT_TRUE(back.machine.classify_false_sharing);
  EXPECT_EQ(back.machine.interconnect, InterconnectKind::kBus);
  EXPECT_EQ(back.machine.bus_arbitration, BusArbitration::kRoundRobin);
  EXPECT_DOUBLE_EQ(back.wall_seconds, 1.5);

  ASSERT_EQ(back.runs.size(), 1u);
  const RunResult& r = back.runs[0].result;
  EXPECT_EQ(r.protocol, ProtocolKind::kLs);
  EXPECT_EQ(r.interconnect, InterconnectKind::kBus);
  EXPECT_EQ(r.exec_time, 123456u);
  EXPECT_EQ(r.time.busy, 1000u);
  EXPECT_EQ(r.time.read_stall, 2000u);
  EXPECT_EQ(r.time.write_stall, 3000u);
  EXPECT_EQ(r.global_read_misses, 77u);
  EXPECT_EQ(r.eliminated_acquisitions, 33u);
  EXPECT_EQ(r.update_transactions, 11u);
  EXPECT_EQ(r.updates_sent, 22u);
  EXPECT_EQ(r.read_miss_home, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
}

TEST(ManifestTest, RejectsNewerSchemaVersion) {
  std::ostringstream os;
  write_manifest(os, make_manifest());
  std::string text = os.str();
  const std::string needle = "\"schema_version\": 3";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "\"schema_version\": 999");

  RunManifest back;
  std::string error;
  EXPECT_FALSE(manifest_from_text(text, &back, &error));
  EXPECT_NE(error.find("newer"), std::string::npos) << error;
}

TEST(ManifestTest, MissingSchemaVersionIsRejected) {
  RunManifest back;
  std::string error;
  EXPECT_FALSE(manifest_from_text(R"({"runs":[]})", &back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ManifestTest, UnknownFieldsAreIgnored) {
  // Additions keep the schema version; older consumers (and this parser)
  // must skip fields they do not understand.
  const char* text = R"({
    "schema_version": 1,
    "future_field": {"nested": [1, 2, 3]},
    "workload": "lu",
    "runs": [{"result": {"protocol": "AD", "exec_cycles": 5,
                         "another_future_field": true}}]
  })";
  RunManifest back;
  std::string error;
  ASSERT_TRUE(manifest_from_text(text, &back, &error)) << error;
  EXPECT_EQ(back.workload, "lu");
  ASSERT_EQ(back.runs.size(), 1u);
  EXPECT_EQ(back.runs[0].result.protocol, ProtocolKind::kAd);
  EXPECT_EQ(back.runs[0].result.exec_time, 5u);
}

TEST(ManifestTest, DerivedRatiosAreEmittedForConsumers) {
  RunResult result;
  result.protocol = ProtocolKind::kBaseline;
  result.global_write_actions = 10;
  result.invalidations = 14;
  const Json json = run_result_to_json(result);
  const Json* derived = json.find("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_DOUBLE_EQ(derived->find("invalidations_per_write")->as_double(),
                   1.4);
}

// End-to-end acceptance: the manifest's metric snapshot must agree with
// the RunResult totals for the same run.
TEST(ManifestTest, EndToEndMetricsAgreeWithRunResult) {
  DriverOptions options;
  options.workload = "pingpong";
  options.protocols = {ProtocolKind::kBaseline, ProtocolKind::kLs};
  options.manifest_out = "unused";  // Enables metrics capture.

  RunManifest manifest;
  manifest.workload = options.workload;
  manifest.seed = options.seed;
  manifest.machine = options.machine;
  for (ProtocolKind kind : options.protocols) {
    DriverRun run = run_driver_workload_captured(options, kind);
    manifest.runs.push_back(
        RunManifest::ProtocolRun{run.result, run.metrics});
  }

  // Round-trip through the serialized form first: agreement must hold on
  // what a consumer actually reads, not just in memory.
  std::ostringstream os;
  write_manifest(os, manifest);
  RunManifest back;
  std::string error;
  ASSERT_TRUE(manifest_from_text(os.str(), &back, &error)) << error;

  ASSERT_EQ(back.runs.size(), 2u);
  for (const RunManifest::ProtocolRun& run : back.runs) {
    const RunResult& r = run.result;
    const MetricsSnapshot& m = run.metrics;
    ASSERT_FALSE(m.empty());
    EXPECT_EQ(m.counter_total("coherence.read-miss"), r.global_read_misses);
    EXPECT_EQ(m.counter_total("coherence.upgrade"),
              r.ownership_acquisitions);
    EXPECT_EQ(m.counter_total("coherence.local-write"),
              r.eliminated_acquisitions);
    EXPECT_EQ(m.counter_total("sys.accesses"), r.accesses);
    EXPECT_EQ(m.counter_total("net.messages"), r.traffic_total);
  }
  // The LS run must actually have eliminated acquisitions, or the
  // local-write assertion above is vacuous.
  EXPECT_GT(back.runs[1].result.eliminated_acquisitions, 0u);
}

}  // namespace
}  // namespace lssim
