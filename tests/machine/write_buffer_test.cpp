// Precise semantics of the processor-consistency write buffer.
#include <gtest/gtest.h>

#include "machine/system.hpp"
#include "mem/shared_heap.hpp"

namespace lssim {
namespace {

MachineConfig pc_cfg(std::uint8_t depth) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{8192, 1, 16};
  cfg.consistency = ConsistencyModel::kPc;
  cfg.write_buffer_depth = depth;
  return cfg;
}

// Issues `count` write misses to distinct blocks back-to-back and
// reports the processor's total time.
Cycles time_for_writes(std::uint8_t depth, int count) {
  System sys(pc_cfg(depth));
  const Addr base = sys.heap().alloc(64 * 1024, 16);
  sys.spawn(0, [](System& s, Addr b, int n) -> SimTask<void> {
    Processor& proc = s.proc(0);
    for (int i = 0; i < n; ++i) {
      co_await proc.write(b + static_cast<Addr>(i) * 64, 1, 8);
    }
  }(sys, base, count));
  sys.run();
  return sys.proc(0).time();
}

TEST(WriteBuffer, WritesWithinDepthDontStall) {
  // 4 write misses, depth 8: every store retires into the buffer; the
  // processor pays only the issue cycle each.
  const Cycles t = time_for_writes(8, 4);
  EXPECT_EQ(t, 4u);
}

TEST(WriteBuffer, FullBufferStalls) {
  // Depth 2: the third write must wait for the oldest store to complete
  // (~100-220 cycles), so total time jumps past the pure-issue cost.
  const Cycles shallow = time_for_writes(2, 12);
  const Cycles deep = time_for_writes(16, 12);
  EXPECT_EQ(deep, 12u);  // All twelve absorbed.
  EXPECT_GT(shallow, 500u);  // Repeatedly waiting for retirements.
}

TEST(WriteBuffer, ReadsStillBlock) {
  System sys(pc_cfg(8));
  const Addr a = sys.heap().alloc(8, 16);
  sys.spawn(0, [](System& s, Addr addr) -> SimTask<void> {
    Processor& proc = s.proc(0);
    co_await proc.write(addr, 7, 8);      // Buffered: ~1 cycle.
    (void)co_await proc.read(addr + 64, 8);  // Miss: full stall.
  }(sys, a));
  sys.run();
  EXPECT_GT(sys.proc(0).time(), 90u);
  EXPECT_GT(sys.stats().time_total().read_stall, 90u);
}

TEST(WriteBuffer, AtomicsStillBlock) {
  System sys(pc_cfg(8));
  const Addr a = sys.heap().alloc(8, 16);
  sys.spawn(0, [](System& s, Addr addr) -> SimTask<void> {
    Processor& proc = s.proc(0);
    (void)co_await proc.swap(addr, 1, 8);  // RMW: never buffered.
  }(sys, a));
  sys.run();
  EXPECT_GT(sys.proc(0).time(), 90u);
  EXPECT_GT(sys.stats().time_total().write_stall, 90u);
}

TEST(WriteBuffer, ValueVisibilityUnaffected) {
  // Stores are buffered for *timing* only; the coherence transaction
  // executes at issue, so other processors see the value immediately
  // afterward in simulated time order.
  System sys(pc_cfg(4));
  const Addr a = sys.heap().alloc(8, 16);
  auto got = std::make_shared<std::uint64_t>(0);
  sys.spawn(0, [](System& s, Addr addr) -> SimTask<void> {
    co_await s.proc(0).write(addr, 42, 8);
  }(sys, a));
  sys.spawn(1, [](System& s, Addr addr,
                  std::uint64_t* out) -> SimTask<void> {
    Processor& proc = s.proc(1);
    proc.compute(10000);
    *out = co_await proc.read(addr, 8);
  }(sys, a, got.get()));
  sys.retain(got);
  sys.run();
  EXPECT_EQ(*got, 42u);
}

TEST(WriteBuffer, ScStallsEveryWrite) {
  // Control: the same 4 write misses under SC cost full latencies.
  MachineConfig cfg = pc_cfg(8);
  cfg.consistency = ConsistencyModel::kSc;
  System sys(cfg);
  const Addr base = sys.heap().alloc(4096, 16);
  sys.spawn(0, [](System& s, Addr b) -> SimTask<void> {
    Processor& proc = s.proc(0);
    for (int i = 0; i < 4; ++i) {
      co_await proc.write(b + static_cast<Addr>(i) * 64, 1, 8);
    }
  }(sys, base));
  sys.run();
  EXPECT_GT(sys.proc(0).time(), 350u);
}

}  // namespace
}  // namespace lssim
