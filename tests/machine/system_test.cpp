// System scheduler + Processor awaitables: end-to-end execution of small
// coroutine programs over the simulated machine.
#include "machine/system.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mem/shared_heap.hpp"

namespace lssim {
namespace {

MachineConfig tiny_cfg(ProtocolKind kind = ProtocolKind::kBaseline) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{64, 1, 16};
  cfg.l2 = CacheConfig{256, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

SimTask<void> writer_program(System& sys, NodeId id, Addr addr,
                             std::uint64_t value) {
  Processor& proc = sys.proc(id);
  co_await proc.write(addr, value, 8);
}

TEST(System, RunsSimplePrograms) {
  System sys(tiny_cfg());
  const Addr a = sys.heap().alloc(8, 8);
  sys.spawn(0, writer_program(sys, 0, a, 99));
  sys.run();
  EXPECT_EQ(sys.space().load(a, 8), 99u);
  EXPECT_GT(sys.exec_time(), 0u);
}

SimTask<void> incrementer(System& sys, NodeId id, Addr addr, int times) {
  Processor& proc = sys.proc(id);
  for (int i = 0; i < times; ++i) {
    (void)co_await proc.fetch_add(addr, 1, 8);
    proc.compute(10);
  }
}

TEST(System, AtomicIncrementsFromAllProcessorsSumExactly) {
  System sys(tiny_cfg());
  const Addr a = sys.heap().alloc(8, 8);
  for (int n = 0; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              incrementer(sys, static_cast<NodeId>(n), a, 100));
  }
  sys.run();
  EXPECT_EQ(sys.space().load(a, 8), 400u);
}

TEST(System, TimeBreakdownAccountsAllCycles) {
  System sys(tiny_cfg());
  const Addr a = sys.heap().alloc(8, 8);
  sys.spawn(0, incrementer(sys, 0, a, 50));
  sys.run();
  const TimeBreakdown tb = sys.stats().time_total();
  EXPECT_EQ(tb.total(), sys.proc(0).time());
  EXPECT_GT(tb.busy, 0u);
  EXPECT_GT(tb.write_stall, 0u);
}

TEST(System, DeterministicAcrossRuns) {
  auto run_once = [] {
    System sys(tiny_cfg(), /*seed=*/5);
    const Addr a = sys.heap().alloc(8, 8);
    for (int n = 0; n < 4; ++n) {
      sys.spawn(static_cast<NodeId>(n),
                incrementer(sys, static_cast<NodeId>(n), a, 200));
    }
    sys.run();
    return sys.exec_time();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(System, MinTimeSchedulingInterleavesFairly) {
  // Two processors hammer disjoint counters; neither should finish
  // wildly earlier (same work, same latencies).
  System sys(tiny_cfg());
  const Addr a = sys.heap().alloc(8, 8);
  const Addr b = sys.heap().alloc(8, 8);
  sys.spawn(0, incrementer(sys, 0, a, 100));
  sys.spawn(1, incrementer(sys, 1, b, 100));
  sys.run();
  const double t0 = static_cast<double>(sys.proc(0).time());
  const double t1 = static_cast<double>(sys.proc(1).time());
  EXPECT_LT(std::abs(t0 - t1) / std::max(t0, t1), 0.2);
}

SimTask<void> stream_tagger(System& sys, NodeId id, Addr addr) {
  Processor& proc = sys.proc(id);
  proc.set_stream(StreamTag::kOs);
  (void)co_await proc.read(addr, 8);
  co_await proc.write(addr, 1, 8);
  proc.set_stream(StreamTag::kApp);
}

TEST(System, StreamTagsReachTheOracle) {
  System sys(tiny_cfg());
  const Addr a = sys.heap().alloc(8, 8);
  sys.spawn(2, stream_tagger(sys, 2, a));
  sys.run();
  const LoadStoreOracle& oracle = sys.memory().oracle();
  EXPECT_EQ(oracle.counters(StreamTag::kOs).global_writes, 1u);
  EXPECT_EQ(oracle.counters(StreamTag::kOs).ls_writes, 1u);
  EXPECT_EQ(oracle.counters(StreamTag::kApp).global_writes, 0u);
}

TEST(System, ValuePropagationBetweenProcessors) {
  System sys(tiny_cfg());
  const Addr a = sys.heap().alloc(8, 8);
  std::uint64_t got = 0;
  // Writer runs at time 0; reader first does compute so its read comes
  // after the write in simulated time.
  sys.spawn(0, writer_program(sys, 0, a, 1234));
  sys.spawn(1, [](System& s, Addr addr, std::uint64_t* out) -> SimTask<void> {
    Processor& proc = s.proc(1);
    proc.compute(10000);
    *out = co_await proc.read(addr, 8);
  }(sys, a, &got));
  sys.run();
  EXPECT_EQ(got, 1234u);
}

TEST(System, ExecTimeIsMaxProcessorTime) {
  System sys(tiny_cfg());
  const Addr a = sys.heap().alloc(8, 8);
  sys.spawn(0, incrementer(sys, 0, a, 10));
  sys.spawn(3, incrementer(sys, 3, a, 1000));
  sys.run();
  EXPECT_EQ(sys.exec_time(),
            std::max(sys.proc(0).time(), sys.proc(3).time()));
}

TEST(System, RejectsInvalidConfig) {
  MachineConfig cfg = tiny_cfg();
  cfg.num_nodes = 99;
  EXPECT_THROW(System sys(cfg), std::invalid_argument);
}

TEST(System, CoherenceInvariantsHoldAfterRun) {
  System sys(tiny_cfg(ProtocolKind::kLs));
  const Addr a = sys.heap().alloc(8, 8);
  for (int n = 0; n < 4; ++n) {
    sys.spawn(static_cast<NodeId>(n),
              incrementer(sys, static_cast<NodeId>(n), a, 300));
  }
  sys.run();
  EXPECT_TRUE(sys.memory().check_coherence_invariants());
  EXPECT_EQ(sys.space().load(a, 8), 1200u);
}

}  // namespace
}  // namespace lssim
