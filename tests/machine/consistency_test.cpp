// Processor-consistency (write buffer) mode: §6-discussion extension.
#include <gtest/gtest.h>

#include "workloads/harness.hpp"
#include "workloads/micro.hpp"
#include "workloads/mp3d.hpp"

namespace lssim {
namespace {

MachineConfig cfg_with(ConsistencyModel model, ProtocolKind kind) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{1024, 1, 16};
  cfg.l2 = CacheConfig{8192, 1, 16};
  cfg.protocol.kind = kind;
  cfg.consistency = model;
  return cfg;
}

TEST(Consistency, PcHidesWriteStall) {
  const RunResult sc = run_experiment(
      cfg_with(ConsistencyModel::kSc, ProtocolKind::kBaseline),
      [](System& sys) {
        build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 2048,
                                                .sweeps = 2});
      });
  const RunResult pc = run_experiment(
      cfg_with(ConsistencyModel::kPc, ProtocolKind::kBaseline),
      [](System& sys) {
        build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 2048,
                                                .sweeps = 2});
      });
  // The write buffer absorbs most store latency.
  EXPECT_LT(pc.time.write_stall, sc.time.write_stall / 4);
  EXPECT_LT(pc.exec_time, sc.exec_time);
}

TEST(Consistency, PcKeepsTrafficIdentical) {
  // Paper §6: a relaxed model hides write stall but the technique's
  // *traffic* effect is model-independent. Timing changes shift the
  // interleaving slightly (barrier spins), so compare within 1%.
  const RunResult sc = run_experiment(
      cfg_with(ConsistencyModel::kSc, ProtocolKind::kLs), [](System& sys) {
        build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 2048,
                                                .sweeps = 2});
      });
  const RunResult pc = run_experiment(
      cfg_with(ConsistencyModel::kPc, ProtocolKind::kLs), [](System& sys) {
        build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 2048,
                                                .sweeps = 2});
      });
  EXPECT_NEAR(static_cast<double>(pc.traffic_total),
              static_cast<double>(sc.traffic_total),
              0.01 * static_cast<double>(sc.traffic_total));
  EXPECT_NEAR(static_cast<double>(pc.eliminated_acquisitions),
              static_cast<double>(sc.eliminated_acquisitions),
              0.01 * static_cast<double>(sc.eliminated_acquisitions) + 5);
}

TEST(Consistency, LsStillReducesTrafficUnderPc) {
  const RunResult base = run_experiment(
      cfg_with(ConsistencyModel::kPc, ProtocolKind::kBaseline),
      [](System& sys) {
        build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 2048,
                                                .sweeps = 3});
      });
  const RunResult ls = run_experiment(
      cfg_with(ConsistencyModel::kPc, ProtocolKind::kLs), [](System& sys) {
        build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 2048,
                                                .sweeps = 3});
      });
  EXPECT_LT(ls.traffic_total, base.traffic_total);
  // But the execution-time win shrinks relative to SC (write stall was
  // already hidden).
  const RunResult sc_base = run_experiment(
      cfg_with(ConsistencyModel::kSc, ProtocolKind::kBaseline),
      [](System& sys) {
        build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 2048,
                                                .sweeps = 3});
      });
  const RunResult sc_ls = run_experiment(
      cfg_with(ConsistencyModel::kSc, ProtocolKind::kLs), [](System& sys) {
        build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 2048,
                                                .sweeps = 3});
      });
  const double sc_gain = 1.0 - static_cast<double>(sc_ls.exec_time) /
                                   static_cast<double>(sc_base.exec_time);
  const double pc_gain = 1.0 - static_cast<double>(ls.exec_time) /
                                   static_cast<double>(base.exec_time);
  EXPECT_LT(pc_gain, sc_gain);
}

TEST(Consistency, AtomicsRemainBlockingUnderPc) {
  // Locks built on swap must still serialize correctly under PC; this
  // re-runs the migratory token workload, whose correctness depends on
  // the turn/counter ordering.
  const RunResult pc = run_experiment(
      cfg_with(ConsistencyModel::kPc, ProtocolKind::kLs), [](System& sys) {
        build_pingpong(sys, PingPongParams{.rounds = 100, .counters = 1});
      });
  EXPECT_GT(pc.accesses, 800u);  // Completed all rounds.
}

TEST(Consistency, DeterministicUnderPc) {
  auto once = [] {
    return run_experiment(
        cfg_with(ConsistencyModel::kPc, ProtocolKind::kAd),
        [](System& sys) {
          Mp3dParams params;
          params.particles = 300;
          params.steps = 2;
          build_mp3d(sys, params);
        });
  };
  EXPECT_EQ(once().exec_time, once().exec_time);
}

}  // namespace
}  // namespace lssim
