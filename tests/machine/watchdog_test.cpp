// The max_cycles watchdog: livelocked programs become diagnosable.
#include <gtest/gtest.h>

#include "machine/system.hpp"
#include "mem/shared_heap.hpp"

namespace lssim {
namespace {

MachineConfig tiny_cfg() {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{256, 1, 16};
  cfg.l2 = CacheConfig{1024, 1, 16};
  return cfg;
}

SimTask<void> spin_forever(System& sys, NodeId id, Addr flag) {
  Processor& proc = sys.proc(id);
  for (;;) {
    const std::uint64_t v = co_await proc.read(flag, 8);
    if (v != 0) break;  // Never: nobody writes the flag.
    proc.compute(10);
  }
}

TEST(Watchdog, StopsLivelockedRun) {
  MachineConfig cfg = tiny_cfg();
  cfg.max_cycles = 100000;
  System sys(cfg);
  const Addr flag = sys.heap().alloc(8, 8);
  sys.spawn(0, spin_forever(sys, 0, flag));
  sys.run();  // Must return despite the infinite spin.
  EXPECT_TRUE(sys.timed_out());
  EXPECT_GT(sys.exec_time(), 100000u);
  EXPECT_LT(sys.exec_time(), 200000u);  // Stopped promptly.
}

TEST(Watchdog, CompletedRunIsNotTimedOut) {
  MachineConfig cfg = tiny_cfg();
  cfg.max_cycles = 1000000;
  System sys(cfg);
  const Addr a = sys.heap().alloc(8, 8);
  sys.spawn(0, [](System& s, Addr addr) -> SimTask<void> {
    co_await s.proc(0).write(addr, 1, 8);
  }(sys, a));
  sys.run();
  EXPECT_FALSE(sys.timed_out());
}

TEST(Watchdog, DisabledByDefault) {
  MachineConfig cfg = tiny_cfg();
  EXPECT_EQ(cfg.max_cycles, 0u);
}

TEST(Watchdog, OtherProgramsKeepStateAtStop) {
  // Two spinners: the watchdog stops the run; statistics remain readable
  // and consistent.
  MachineConfig cfg = tiny_cfg();
  cfg.max_cycles = 50000;
  System sys(cfg);
  const Addr flag = sys.heap().alloc(8, 8);
  sys.spawn(0, spin_forever(sys, 0, flag));
  sys.spawn(1, spin_forever(sys, 1, flag));
  sys.run();
  EXPECT_TRUE(sys.timed_out());
  EXPECT_GT(sys.stats().accesses, 100u);
  EXPECT_TRUE(sys.memory().check_coherence_invariants());
}

}  // namespace
}  // namespace lssim
