// Instruction-centric load-exclusive prediction (kIls, extension):
// per-site training, exclusive grants, misprediction feedback.
#include <gtest/gtest.h>

#include "core/ils_predictor.hpp"
#include "protocol_test_util.hpp"

namespace lssim {
namespace {

class IlsTest : public ::testing::Test {
 protected:
  IlsTest() : f_(ProtocolFixture::tiny(ProtocolKind::kIls)) {}

  AccessResult read_site(NodeId n, Addr a, std::uint32_t site) {
    AccessRequest req;
    req.op = MemOpKind::kRead;
    req.addr = a;
    req.size = 4;
    req.site = site;
    return f_.issue(n, req);
  }
  AccessResult write_site(NodeId n, Addr a, std::uint32_t site) {
    AccessRequest req;
    req.op = MemOpKind::kWrite;
    req.addr = a;
    req.size = 4;
    req.site = site;
    return f_.issue(n, req);
  }

  ProtocolFixture f_;
};

TEST_F(IlsTest, SiteTrainsOnLoadStorePairs) {
  const std::uint32_t kSite = 77;
  // Two load-then-store pairs from the same site reach the threshold.
  (void)read_site(0, f_.on_home(0, 0), kSite);
  (void)write_site(0, f_.on_home(0, 0), 1);
  EXPECT_EQ(f_.ms().predictor().confidence(0, kSite), 1);
  (void)read_site(0, f_.on_home(0, 64), kSite);
  (void)write_site(0, f_.on_home(0, 64), 1);
  EXPECT_EQ(f_.ms().predictor().confidence(0, kSite), 2);
}

TEST_F(IlsTest, ConfidentSiteGetsExclusiveCopy) {
  const std::uint32_t kSite = 5;
  for (int i = 0; i < 2; ++i) {
    (void)read_site(1, f_.on_home(0, 16 * i), kSite);
    (void)write_site(1, f_.on_home(0, 16 * i), 1);
  }
  // Third load from the trained site: exclusive (LStemp) copy.
  const Addr a = f_.on_home(0, 256);
  (void)read_site(1, a, kSite);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kLStemp);
  // The store completes locally.
  const AccessResult w = write_site(1, a, 1);
  EXPECT_EQ(w.latency, 1u);
  EXPECT_EQ(f_.stats().eliminated_acquisitions, 1u);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(IlsTest, UntrainedSiteGetsSharedCopy) {
  const Addr a = f_.on_home(0);
  (void)read_site(2, a, 123);
  EXPECT_EQ(f_.state_of(2, a), CacheState::kShared);
}

TEST_F(IlsTest, PredictionsArePerProcessor) {
  const std::uint32_t kSite = 9;
  for (int i = 0; i < 2; ++i) {
    (void)read_site(0, f_.on_home(0, 16 * i), kSite);
    (void)write_site(0, f_.on_home(0, 16 * i), 1);
  }
  // Node 1 shares the site id (same instruction) but its table is its
  // own: no prediction until it trains locally.
  const Addr a = f_.on_home(0, 256);
  (void)read_site(1, a, kSite);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kShared);
}

TEST_F(IlsTest, ForeignReadPenalisesSite) {
  const std::uint32_t kSite = 11;
  for (int i = 0; i < 2; ++i) {
    (void)read_site(0, f_.on_home(0, 16 * i), kSite);
    (void)write_site(0, f_.on_home(0, 16 * i), 1);
  }
  const Addr a = f_.on_home(0, 256);
  (void)read_site(0, a, kSite);  // Exclusive grant.
  EXPECT_EQ(f_.state_of(0, a), CacheState::kLStemp);
  (void)read_site(1, a, 999);  // Foreign read before the owning write.
  EXPECT_EQ(f_.state_of(0, a), CacheState::kShared);
  EXPECT_EQ(f_.ms().predictor().confidence(0, kSite), 0);  // 2 - 2.
  // The site no longer predicts.
  const Addr b = f_.on_home(0, 512);
  (void)read_site(0, b, kSite);
  EXPECT_EQ(f_.state_of(0, b), CacheState::kShared);
}

TEST_F(IlsTest, ReplacementOfUnusedGrantPenalisesSite) {
  const std::uint32_t kSite = 13;
  for (int i = 0; i < 2; ++i) {
    (void)read_site(0, f_.on_home(0, 16 * i), kSite);
    (void)write_site(0, f_.on_home(0, 16 * i), 1);
  }
  const Addr a = f_.on_home(0, 256);
  (void)read_site(0, a, kSite);
  EXPECT_EQ(f_.state_of(0, a), CacheState::kLStemp);
  f_.force_eviction(0, a);  // Grant never used.
  EXPECT_EQ(f_.ms().predictor().confidence(0, kSite), 0);
}

TEST_F(IlsTest, DirectoryTagNeverSetUnderIls) {
  const std::uint32_t kSite = 21;
  for (int i = 0; i < 4; ++i) {
    const Addr a = f_.on_home(0, 16 * i);
    (void)read_site(3, a, kSite);
    (void)write_site(3, a, 1);
  }
  EXPECT_EQ(f_.stats().blocks_tagged, 0u);
  f_.ms().directory().for_each([](Addr, const DirEntry& e) {
    EXPECT_FALSE(e.tagged);
  });
}

TEST_F(IlsTest, PolymorphicSiteOscillates) {
  // A site that sometimes leads to a store and sometimes reads shared
  // data (the OLTP pathology for instruction-centric techniques): the
  // confidence see-saws and mispredictions keep occurring.
  const std::uint32_t kSite = 31;
  for (int i = 0; i < 2; ++i) {
    (void)read_site(0, f_.on_home(0, 16 * i), kSite);
    (void)write_site(0, f_.on_home(0, 16 * i), 1);
  }
  // Trained; now the same site reads data that others read too.
  const Addr shared_addr = f_.on_home(0, 512);
  (void)read_site(0, shared_addr, kSite);   // Exclusive (predicted).
  (void)read_site(1, shared_addr, 888);     // Foreign read: penalty.
  EXPECT_EQ(f_.ms().predictor().confidence(0, kSite), 0);
}

TEST(IlsPredictor, UnitBehaviour) {
  IlsPredictor predictor(2, /*threshold=*/2, /*max=*/3, /*penalty=*/2);
  EXPECT_FALSE(predictor.on_load(0, 0x100, 7));
  predictor.on_store(0, 0x100);
  EXPECT_EQ(predictor.confidence(0, 7), 1);
  EXPECT_FALSE(predictor.on_load(0, 0x200, 7));
  predictor.on_store(0, 0x200);
  EXPECT_EQ(predictor.confidence(0, 7), 2);
  EXPECT_TRUE(predictor.on_load(0, 0x300, 7));
  // Confidence caps at max.
  predictor.on_store(0, 0x300);
  EXPECT_EQ(predictor.confidence(0, 7), 3);
  predictor.on_store(0, 0x300);  // No pending load: no change.
  EXPECT_EQ(predictor.confidence(0, 7), 3);
  predictor.on_misprediction(0, 7);
  EXPECT_EQ(predictor.confidence(0, 7), 1);
  predictor.on_misprediction(0, 7);
  EXPECT_EQ(predictor.confidence(0, 7), 0);
  predictor.on_misprediction(0, 7);  // Clamped at zero.
  EXPECT_EQ(predictor.confidence(0, 7), 0);
}

}  // namespace
}  // namespace lssim
