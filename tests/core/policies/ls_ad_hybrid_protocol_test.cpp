// Engine-level behaviour of the LS+AD hybrid (paper §6): LS tagging
// with AD's migratory detection as a fallback, driven through the real
// MemorySystem rather than the bare hooks.
#include <gtest/gtest.h>

#include "../protocol_test_util.hpp"

namespace lssim {
namespace {

class LsAdHybridTest : public ::testing::Test {
 protected:
  LsAdHybridTest() : f_(ProtocolFixture::tiny(ProtocolKind::kLsAd)) {}
  ProtocolFixture f_;
};

TEST_F(LsAdHybridTest, PolicyIsTheHybrid) {
  EXPECT_EQ(f_.ms().policy().kind(), ProtocolKind::kLsAd);
}

TEST_F(LsAdHybridTest, LsRuleTagsReadThenWrite) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a, 7);
  EXPECT_TRUE(f_.dir(a).tagged);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsAdHybridTest, AdFallbackTagsWhereTheLrFieldCannotSee) {
  const Addr a = f_.on_home(0);
  // Node 1 owns the block, then 2 and 3 read it; node 3's copy is
  // replaced, and node 2 upgrades. The LR field points at node 3, so
  // the LS rule is blind — but AD's evidence holds: the only other copy
  // belongs to last writer 1.
  (void)f_.write(1, a, 1);
  (void)f_.read(2, a);
  (void)f_.read(3, a);
  f_.force_eviction(3, a);
  ASSERT_FALSE(f_.dir(a).tagged);
  (void)f_.write(2, a, 2);
  EXPECT_TRUE(f_.dir(a).tagged);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsAdHybridTest, PlainLsStaysUntaggedOnTheFallbackPattern) {
  // Control: the same sequence under plain LS tags nothing — that gap
  // is exactly what the hybrid's AD fallback closes.
  ProtocolFixture ls(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = ls.on_home(0);
  (void)ls.write(1, a, 1);
  (void)ls.read(2, a);
  (void)ls.read(3, a);
  ls.force_eviction(3, a);
  (void)ls.write(2, a, 2);
  EXPECT_FALSE(ls.dir(a).tagged);
}

TEST_F(LsAdHybridTest, TaggedBlockEliminatesTheNextAcquisition) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a, 7);
  ASSERT_TRUE(f_.dir(a).tagged);
  // The next migratory hand-off: the read returns an exclusive (LStemp)
  // copy and the write completes locally, with no global action.
  (void)f_.read(2, a);
  EXPECT_EQ(f_.state_of(2, a), CacheState::kLStemp);
  const AccessResult w = f_.write(2, a, 8);
  EXPECT_FALSE(w.global);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsAdHybridTest, LoneWriteDetags) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a, 7);
  ASSERT_TRUE(f_.dir(a).tagged);
  // Node 2 writes without reading first: negative evidence, §3.1.
  (void)f_.write(2, a, 9);
  EXPECT_FALSE(f_.dir(a).tagged);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsAdHybridTest, ReadSharedPatternDetagsViaForeignAccess) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a, 7);
  ASSERT_TRUE(f_.dir(a).tagged);
  // Two foreign reads in a row: the second finds the first's unused
  // LStemp copy — the block is read-shared, not migratory (§3.1 case 2).
  (void)f_.read(2, a);
  ASSERT_EQ(f_.state_of(2, a), CacheState::kLStemp);
  (void)f_.read(3, a);
  EXPECT_FALSE(f_.dir(a).tagged);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsAdHybridTest, TagSurvivesReplacementOfTheOwningCopy) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a, 7);
  ASSERT_TRUE(f_.dir(a).tagged);
  f_.force_eviction(1, a);
  // AD would have dropped the property here (broken hand-off chain);
  // the hybrid's bit is home-resident like LS's.
  EXPECT_TRUE(f_.dir(a).tagged);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

}  // namespace
}  // namespace lssim
