// The name-keyed protocol registry: complete coverage of every
// ProtocolKind, exact name round-trips with sim/config's shared table,
// case-insensitive alias lookup, and working factories.
#include "core/protocol_registry.hpp"

#include <gtest/gtest.h>

#include "core/ils_predictor.hpp"

namespace lssim {
namespace {

TEST(ProtocolRegistryTest, EveryKindIsRegisteredInEnumOrder) {
  const auto protocols = registered_protocols();
  ASSERT_EQ(protocols.size(), static_cast<std::size_t>(kNumProtocolKinds));
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const ProtocolInfo& info = protocols[i];
    EXPECT_EQ(static_cast<std::size_t>(info.kind), i);
    EXPECT_STREQ(info.name, protocol_name(info.kind));
    EXPECT_NE(info.summary, nullptr);
    EXPECT_NE(info.summary[0], '\0') << info.name;
    ASSERT_NE(info.make, nullptr) << info.name;
  }
}

TEST(ProtocolRegistryTest, FactoriesBuildTheMatchingPolicy) {
  for (const ProtocolInfo& info : registered_protocols()) {
    MachineConfig cfg;
    cfg.protocol.kind = info.kind;
    const auto policy = info.make(cfg);
    ASSERT_NE(policy, nullptr) << info.name;
    EXPECT_EQ(policy->kind(), info.kind) << info.name;
  }
}

TEST(ProtocolRegistryTest, MakePolicyResolvesTheConfiguredKind) {
  MachineConfig cfg;
  cfg.protocol.kind = ProtocolKind::kLsAd;
  EXPECT_EQ(make_policy(cfg)->kind(), ProtocolKind::kLsAd);
  cfg.protocol.kind = ProtocolKind::kIls;
  const auto ils = make_policy(cfg);
  EXPECT_EQ(ils->kind(), ProtocolKind::kIls);
  EXPECT_NE(ils->ils_predictor(), nullptr);
}

TEST(ProtocolRegistryTest, FindProtocolMatchesNamesAndAliases) {
  // Canonical names, any case.
  for (const ProtocolInfo& info : registered_protocols()) {
    const ProtocolInfo* found = find_protocol(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found->kind, info.kind);
  }
  EXPECT_EQ(find_protocol("baseline")->kind, ProtocolKind::kBaseline);
  EXPECT_EQ(find_protocol("BASELINE")->kind, ProtocolKind::kBaseline);
  EXPECT_EQ(find_protocol("wi")->kind, ProtocolKind::kBaseline);
  EXPECT_EQ(find_protocol("migratory")->kind, ProtocolKind::kAd);
  EXPECT_EQ(find_protocol("instruction")->kind, ProtocolKind::kIls);
  EXPECT_EQ(find_protocol("ls+ad")->kind, ProtocolKind::kLsAd);
  EXPECT_EQ(find_protocol("LS-AD")->kind, ProtocolKind::kLsAd);
  EXPECT_EQ(find_protocol("hybrid")->kind, ProtocolKind::kLsAd);
  EXPECT_EQ(find_protocol(""), nullptr);
  EXPECT_EQ(find_protocol("mesif"), nullptr);
}

TEST(ProtocolRegistryTest, ProtocolInfoByKind) {
  const ProtocolInfo& info = protocol_info(ProtocolKind::kLsAd);
  EXPECT_EQ(info.kind, ProtocolKind::kLsAd);
  EXPECT_STREQ(info.name, "LS+AD");
}

TEST(ProtocolRegistryTest, RegisteredNamesJoinInOrder) {
  EXPECT_EQ(registered_protocol_names(),
            "Baseline, AD, LS, ILS, LS+AD, MESI, MOESI, Dragon, LS+MESI, "
            "LS+Dragon");
  EXPECT_EQ(registered_protocol_names(" | "),
            "Baseline | AD | LS | ILS | LS+AD | MESI | MOESI | Dragon | "
            "LS+MESI | LS+Dragon");
}

TEST(ProtocolRegistryTest, AllProtocolKindsInRegistryOrder) {
  const std::vector<ProtocolKind> kinds = all_protocol_kinds();
  ASSERT_EQ(kinds.size(), static_cast<std::size_t>(kNumProtocolKinds));
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(kinds[i]), i);
  }
}

}  // namespace
}  // namespace lssim
