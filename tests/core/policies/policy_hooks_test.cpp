// Unit tests for the CoherencePolicy hook decisions, one suite per
// policy under src/core/policies/. These drive the hooks directly with
// hand-built directory states; engine-level behaviour is covered by the
// per-protocol tests and the cross-protocol stress test.
#include <gtest/gtest.h>

#include "core/policies/ad_policy.hpp"
#include "core/policies/baseline_policy.hpp"
#include "core/policies/ils_policy.hpp"
#include "core/policies/ls_ad_hybrid_policy.hpp"
#include "core/policies/ls_policy.hpp"

namespace lssim {
namespace {

/// A kShared directory entry with the given presence bits and history.
DirEntry shared_entry(std::uint64_t sharers, NodeId last_reader,
                      NodeId last_writer) {
  DirEntry e;
  e.state = DirState::kShared;
  e.sharers = sharers;
  e.last_reader = last_reader;
  e.last_writer = last_writer;
  return e;
}

// ---------------------------------------------------------------- Baseline

TEST(BaselinePolicyTest, IsEntirelyPassive) {
  BaselinePolicy p;
  EXPECT_EQ(p.kind(), ProtocolKind::kBaseline);
  EXPECT_FALSE(p.supports_default_tagged());
  EXPECT_FALSE(p.observes_accesses());
  EXPECT_EQ(p.ils_predictor(), nullptr);

  const DirEntry e = shared_entry(0b0001, 0, kInvalidNode);
  const WriteTagDecision d = p.on_global_write(e, 0, true);
  EXPECT_EQ(d.action, TagAction::kNone);
  EXPECT_FALSE(d.lone_write_detag);
  EXPECT_EQ(p.on_upgrade_invalidations(e, 3), TagAction::kNone);
  EXPECT_EQ(p.on_victim_writeback(e, CacheState::kModified),
            TagAction::kNone);
}

TEST(BaselinePolicyTest, ReadGrantFollowsTheSharedDefaultRule) {
  // The default read_grants_exclusive is `tagged || predicted`; Baseline
  // never tags and never predicts, so in practice this always stays
  // false — but the contract itself is the shared one.
  BaselinePolicy p;
  DirEntry e;
  EXPECT_FALSE(p.read_grants_exclusive(e, false));
  e.tagged = true;
  EXPECT_TRUE(p.read_grants_exclusive(e, false));
  e.tagged = false;
  EXPECT_TRUE(p.read_grants_exclusive(e, true));
}

// ---------------------------------------------------------------------- LS

TEST(LsPolicyTest, TagsWhenWriterMatchesLastReader) {
  LsPolicy p{ProtocolConfig{}};
  const DirEntry e = shared_entry(0b0010, /*last_reader=*/1,
                                  /*last_writer=*/kInvalidNode);
  // Upgrade and write miss both qualify: the LR field lives at the home
  // and does not care whether the reading copy is still resident.
  EXPECT_EQ(p.on_global_write(e, 1, true).action, TagAction::kTag);
  EXPECT_EQ(p.on_global_write(e, 1, false).action, TagAction::kTag);
}

TEST(LsPolicyTest, LoneWriteDetags) {
  LsPolicy p{ProtocolConfig{}};
  const DirEntry e = shared_entry(0b0010, /*last_reader=*/1,
                                  /*last_writer=*/kInvalidNode);
  // Write miss from a node that did not read last: negative evidence.
  const WriteTagDecision d = p.on_global_write(e, 2, false);
  EXPECT_EQ(d.action, TagAction::kDetag);
  EXPECT_TRUE(d.lone_write_detag);
  // An upgrade from the wrong node is not a lone write: no decision.
  EXPECT_EQ(p.on_global_write(e, 2, true).action, TagAction::kNone);
}

TEST(LsPolicyTest, KeepHeuristicSuppressesLoneWriteDetag) {
  ProtocolConfig cfg;
  cfg.keep_tag_on_lone_write = true;
  LsPolicy p{cfg};
  const DirEntry e = shared_entry(0b0010, /*last_reader=*/1,
                                  /*last_writer=*/kInvalidNode);
  const WriteTagDecision d = p.on_global_write(e, 2, false);
  EXPECT_EQ(d.action, TagAction::kNone);
  EXPECT_FALSE(d.lone_write_detag);
}

TEST(LsPolicyTest, IgnoresUpgradeInvalidationsAndReplacements) {
  // LS has no read-shared de-detection and its bit survives
  // replacements: both hooks stay at the default.
  LsPolicy p{ProtocolConfig{}};
  const DirEntry e = shared_entry(0b0111, 0, 1);
  EXPECT_EQ(p.on_upgrade_invalidations(e, 2), TagAction::kNone);
  EXPECT_EQ(p.on_victim_writeback(e, CacheState::kModified),
            TagAction::kNone);
}

// ---------------------------------------------------------------------- AD

TEST(AdPolicyTest, DetectsMigratoryHandoffAtUpgrade) {
  AdPolicy p{ProtocolConfig{}};
  // Writer 2 upgrades; the only other copy belongs to last writer 1.
  const DirEntry e = shared_entry(0b0110, /*last_reader=*/2,
                                  /*last_writer=*/1);
  EXPECT_EQ(p.on_global_write(e, 2, true).action, TagAction::kTag);
}

TEST(AdPolicyTest, WriteMissesCarryNoEvidence) {
  AdPolicy p{ProtocolConfig{}};
  const DirEntry e = shared_entry(0b0110, 2, 1);
  EXPECT_EQ(p.on_global_write(e, 2, false).action, TagAction::kNone);
}

TEST(AdPolicyTest, RequiresExactlyTheLastWriterAsOtherCopy) {
  AdPolicy p{ProtocolConfig{}};
  // Two other copies: not migratory.
  EXPECT_EQ(p.on_global_write(shared_entry(0b1110, 2, 1), 2, true).action,
            TagAction::kNone);
  // One other copy, but not the last writer's.
  EXPECT_EQ(p.on_global_write(shared_entry(0b1100, 2, 1), 2, true).action,
            TagAction::kNone);
  // Writer re-writing its own block: no hand-off.
  EXPECT_EQ(p.on_global_write(shared_entry(0b0110, 2, 2), 2, true).action,
            TagAction::kNone);
  // No write history yet.
  EXPECT_EQ(p.on_global_write(shared_entry(0b0110, 2, kInvalidNode), 2,
                              true).action,
            TagAction::kNone);
}

TEST(AdPolicyTest, ImpreciseSharersBlindTheDetector) {
  AdPolicy p{ProtocolConfig{}};
  DirEntry e = shared_entry(0b0110, 2, 1);
  e.imprecise = true;
  EXPECT_EQ(p.on_global_write(e, 2, true).action, TagAction::kNone);
}

TEST(AdPolicyTest, MultipleInvalidationsDeDetect) {
  AdPolicy p{ProtocolConfig{}};
  const DirEntry e = shared_entry(0b0111, 0, 1);
  EXPECT_EQ(p.on_upgrade_invalidations(e, 1), TagAction::kNone);
  EXPECT_EQ(p.on_upgrade_invalidations(e, 2), TagAction::kDetag);
}

TEST(AdPolicyTest, ReplacementOfOwningCopyBreaksTheChain) {
  AdPolicy p{ProtocolConfig{}};
  const DirEntry e = shared_entry(0b0010, 1, 0);
  EXPECT_EQ(p.on_victim_writeback(e, CacheState::kModified),
            TagAction::kDetag);
  EXPECT_EQ(p.on_victim_writeback(e, CacheState::kLStemp),
            TagAction::kDetag);
  // Replacing a mere Shared copy leaves the property alone.
  EXPECT_EQ(p.on_victim_writeback(e, CacheState::kShared),
            TagAction::kNone);
}

TEST(AdPolicyTest, ReplacementKnobCanPreserveTheTag) {
  ProtocolConfig cfg;
  cfg.ad_detag_on_replacement = false;
  AdPolicy p{cfg};
  const DirEntry e = shared_entry(0b0010, 1, 0);
  EXPECT_EQ(p.on_victim_writeback(e, CacheState::kModified),
            TagAction::kNone);
}

// --------------------------------------------------------------------- ILS

TEST(IlsPolicyTest, ObservesEveryAccessAndOwnsItsPredictor) {
  IlsPolicy p{4};
  EXPECT_EQ(p.kind(), ProtocolKind::kIls);
  EXPECT_TRUE(p.observes_accesses());
  ASSERT_NE(p.ils_predictor(), nullptr);
}

TEST(IlsPolicyTest, LoadStorePairsTrainTheSiteToPredict) {
  IlsPolicy p{4};
  const std::uint32_t site = 0xBEEF;
  const Addr block = 0x100;
  // Two load→store pairs reach the default threshold of 2.
  EXPECT_FALSE(p.observe_access(0, block, site, /*is_write=*/false));
  p.observe_access(0, block, 0, /*is_write=*/true);
  EXPECT_FALSE(p.observe_access(0, block, site, false));
  p.observe_access(0, block, 0, true);
  EXPECT_TRUE(p.observe_access(0, block, site, false));
  // Training is per node: node 1's table is untouched.
  EXPECT_FALSE(p.observe_access(1, block, site, false));
}

TEST(IlsPolicyTest, UnusedGrantPenalisesTheSite) {
  IlsPolicy p{4};
  const std::uint32_t site = 0xBEEF;
  const Addr block = 0x100;
  for (int i = 0; i < 2; ++i) {
    (void)p.observe_access(0, block, site, false);
    p.observe_access(0, block, 0, true);
  }
  EXPECT_TRUE(p.observe_access(0, block, site, false));
  p.on_exclusive_grant_unused(0, site);  // Default penalty is 2.
  EXPECT_FALSE(p.observe_access(0, block, site, false));
}

TEST(IlsPolicyTest, LeavesTheDirectoryTagAlone) {
  IlsPolicy p{4};
  const DirEntry e = shared_entry(0b0010, 1, 0);
  EXPECT_EQ(p.on_global_write(e, 1, true).action, TagAction::kNone);
  // The prediction flows through read_grants_exclusive's `predicted`
  // argument, not the home's tag bit.
  DirEntry untagged;
  EXPECT_TRUE(p.read_grants_exclusive(untagged, /*predicted=*/true));
  EXPECT_FALSE(p.read_grants_exclusive(untagged, false));
}

// ------------------------------------------------------------------- LS+AD

TEST(LsAdHybridPolicyTest, LsRuleDominates) {
  LsAdHybridPolicy p{ProtocolConfig{}};
  const DirEntry e = shared_entry(0b0010, /*last_reader=*/1,
                                  /*last_writer=*/kInvalidNode);
  EXPECT_EQ(p.on_global_write(e, 1, true).action, TagAction::kTag);
  EXPECT_EQ(p.on_global_write(e, 1, false).action, TagAction::kTag);
}

TEST(LsAdHybridPolicyTest, AdFallbackFiresAtUpgradesOnly) {
  LsAdHybridPolicy p{ProtocolConfig{}};
  // LR missed the sequence (points elsewhere) but AD's evidence holds:
  // writer 2's only co-sharer is last writer 1.
  const DirEntry e = shared_entry(0b0110, /*last_reader=*/3,
                                  /*last_writer=*/1);
  EXPECT_EQ(p.on_global_write(e, 2, true).action, TagAction::kTag);
  // A write miss has no read→write evidence: the LS lone-write rule
  // takes over and de-tags instead.
  const WriteTagDecision miss = p.on_global_write(e, 2, false);
  EXPECT_EQ(miss.action, TagAction::kDetag);
  EXPECT_TRUE(miss.lone_write_detag);
}

TEST(LsAdHybridPolicyTest, ImpreciseSharersDisableTheFallback) {
  LsAdHybridPolicy p{ProtocolConfig{}};
  DirEntry e = shared_entry(0b0110, 3, 1);
  e.imprecise = true;
  EXPECT_EQ(p.on_global_write(e, 2, true).action, TagAction::kNone);
}

TEST(LsAdHybridPolicyTest, UnionOfNegativeEvidence) {
  LsAdHybridPolicy p{ProtocolConfig{}};
  // AD's read-shared de-detection...
  const DirEntry e = shared_entry(0b0111, 0, 1);
  EXPECT_EQ(p.on_upgrade_invalidations(e, 2), TagAction::kDetag);
  EXPECT_EQ(p.on_upgrade_invalidations(e, 1), TagAction::kNone);
  // ...plus LS's lone-write de-tag, which the §5.5 knob can disable.
  ProtocolConfig keep;
  keep.keep_tag_on_lone_write = true;
  LsAdHybridPolicy keeper{keep};
  const DirEntry lone = shared_entry(0b0010, 1, kInvalidNode);
  EXPECT_EQ(keeper.on_global_write(lone, 2, false).action, TagAction::kNone);
}

TEST(LsAdHybridPolicyTest, TagSurvivesReplacementLikeLs) {
  // ad_detag_on_replacement defaults to true, but the hybrid's bit is
  // home-resident: replacements must not drop it.
  LsAdHybridPolicy p{ProtocolConfig{}};
  const DirEntry e = shared_entry(0b0010, 1, 0);
  EXPECT_EQ(p.on_victim_writeback(e, CacheState::kModified),
            TagAction::kNone);
  EXPECT_EQ(p.on_victim_writeback(e, CacheState::kLStemp),
            TagAction::kNone);
}

}  // namespace
}  // namespace lssim
