// Randomized cross-protocol equivalence stress.
//
// One random access trace is replayed under every registered protocol.
// Policies may only change *performance* (who holds which copy when);
// they must never change *semantics*: the coherence invariants hold
// after every single access, and every load / RMW returns bit-identical
// values under all protocols.
#include <gtest/gtest.h>

#include <vector>

#include "core/protocol_registry.hpp"
#include "sim/rng.hpp"

#include "../protocol_test_util.hpp"

namespace lssim {
namespace {

struct TraceOp {
  MemOpKind op;
  NodeId node;
  Addr addr;
  std::uint64_t wdata;
  std::uint64_t expected;
  std::uint32_t site;
};

/// A trace biased toward sharing: few blocks, many nodes, and enough
/// read→write pairs that LS/AD/ILS actually tag and mis-tag blocks.
std::vector<TraceOp> make_trace(std::uint64_t seed, int num_nodes,
                                std::size_t length) {
  Rng rng(seed);
  // 24 word addresses over 3 pages → multiple homes, heavy set conflicts
  // in the tiny fixture caches (forced evictions included).
  std::vector<Addr> pool;
  for (Addr page = 0; page < 3; ++page) {
    for (Addr word = 0; word < 8; ++word) {
      pool.push_back(page * 4096 + word * 4);
    }
  }
  std::vector<TraceOp> trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    TraceOp op;
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 55) {
      op.op = MemOpKind::kRead;
    } else if (roll < 85) {
      op.op = MemOpKind::kWrite;
    } else if (roll < 90) {
      op.op = MemOpKind::kSwap;
    } else if (roll < 95) {
      op.op = MemOpKind::kFetchAdd;
    } else {
      op.op = MemOpKind::kCas;
    }
    op.node = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(num_nodes)));
    op.addr = pool[rng.next_below(pool.size())];
    op.wdata = rng.next_below(1 << 20);
    op.expected = rng.next_below(4);  // CAS succeeds sometimes.
    // A handful of distinct sites per node so ILS's tables train.
    op.site = static_cast<std::uint32_t>(rng.next_below(6));
    trace.push_back(op);
  }
  return trace;
}

/// Replays the trace under `kind`, asserting the invariants after every
/// access; returns every loaded/old value in trace order.
std::vector<std::uint64_t> replay(ProtocolKind kind,
                                  const std::vector<TraceOp>& trace) {
  ProtocolFixture f(ProtocolFixture::tiny(kind));
  std::vector<std::uint64_t> values;
  values.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace[i];
    AccessRequest req;
    req.op = op.op;
    req.addr = op.addr;
    req.size = 4;
    req.wdata = op.wdata;
    req.expected = op.expected;
    req.site = op.site;
    const AccessResult r = f.issue(op.node, req);
    values.push_back(r.value);
    if (!f.ms().check_coherence_invariants()) {
      ADD_FAILURE() << "coherence invariants broken under "
                    << to_string(kind) << " at op " << i;
      return values;
    }
  }
  f.ms().finalize();
  EXPECT_TRUE(f.ms().check_coherence_invariants()) << to_string(kind);
  return values;
}

class CrossProtocolStressTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CrossProtocolStressTest, AllProtocolsAgreeOnEveryLoadedValue) {
  const std::vector<TraceOp> trace = make_trace(GetParam(), 4, 2500);
  std::vector<std::uint64_t> reference;
  for (ProtocolKind kind : all_protocol_kinds()) {
    const std::vector<std::uint64_t> values = replay(kind, trace);
    if (HasFailure()) return;
    if (kind == ProtocolKind::kBaseline) {
      reference = values;
      continue;
    }
    ASSERT_EQ(values.size(), reference.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(values[i], reference[i])
          << to_string(kind) << " diverged from Baseline at op " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossProtocolStressTest,
                         ::testing::Values(1u, 2u, 42u, 20260805u));

}  // namespace
}  // namespace lssim
