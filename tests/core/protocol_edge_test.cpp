// Protocol edge cases: degenerate machines, node-role coincidences,
// mixed access sizes, long tag/de-tag churn, traffic-class accounting.
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace lssim {
namespace {

TEST(ProtocolEdge, SingleNodeMachineNeverSendsMessages) {
  MachineConfig cfg;
  cfg.num_nodes = 1;
  cfg.l1 = CacheConfig{64, 1, 16};
  cfg.l2 = CacheConfig{256, 1, 16};
  cfg.protocol.kind = ProtocolKind::kLs;
  ProtocolFixture f(cfg);
  for (int i = 0; i < 64; ++i) {
    (void)f.read(0, static_cast<Addr>(i) * 16);
    (void)f.write(0, static_cast<Addr>(i) * 16, i);
  }
  EXPECT_EQ(f.stats().messages_total(), 0u);  // All transactions local.
  EXPECT_GT(f.stats().global_read_misses, 0u);
  EXPECT_TRUE(f.ms().check_coherence_invariants());
}

TEST(ProtocolEdge, HomeIsOwnerForwardingDegenerates) {
  // Owner == home: the "4-hop" read-on-dirty loses its forward hops.
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kBaseline));
  const Addr a = f.on_home(2);
  (void)f.write(2, a, 9);               // Home node 2 owns its own block.
  const AccessResult r = f.read(1, a);  // Requester remote.
  EXPECT_EQ(r.value, 9u);
  EXPECT_LT(r.latency, 420u);  // Cheaper than the full 4-hop case.
  EXPECT_TRUE(f.ms().check_coherence_invariants());
}

TEST(ProtocolEdge, RequesterIsHomeWithRemoteOwner) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kBaseline));
  const Addr a = f.on_home(1);
  (void)f.write(0, a, 7);
  const AccessResult r = f.read(1, a);  // Requester == home.
  EXPECT_EQ(r.value, 7u);
  EXPECT_EQ(f.state_of(0, a), CacheState::kShared);
  EXPECT_EQ(f.state_of(1, a), CacheState::kShared);
}

TEST(ProtocolEdge, MixedAccessSizesWithinOneBlock) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  (void)f.write(0, a, 0x1122334455667788ull, 8);
  EXPECT_EQ(f.read(1, a, 1).value, 0x88u);
  EXPECT_EQ(f.read(1, a + 2, 2).value, 0x5566u);
  EXPECT_EQ(f.read(1, a + 4, 4).value, 0x11223344u);
  (void)f.write(2, a + 6, 0xBEEF, 2);
  EXPECT_EQ(f.read(3, a, 8).value, 0xBEEF334455667788ull);
}

TEST(ProtocolEdge, TagDetagChurnStaysConsistent) {
  // Alternate load-store and read-shared phases on one block many times;
  // the directory and caches must stay coherent throughout.
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  for (int round = 0; round < 25; ++round) {
    const NodeId writer = static_cast<NodeId>(round % 4);
    (void)f.read(writer, a);
    (void)f.write(writer, a, round);  // Tags (LR == writer).
    // Read-shared phase: everyone reads; the first read may migrate the
    // block exclusively, the second forces the NotLS de-tag.
    for (NodeId n = 0; n < 4; ++n) {
      EXPECT_EQ(f.read(n, a).value, static_cast<std::uint64_t>(round));
    }
    EXPECT_TRUE(f.ms().check_coherence_invariants()) << "round " << round;
  }
  EXPECT_GT(f.stats().blocks_detagged, 5u);
}

TEST(ProtocolEdge, TrafficClassesCoverAllMessages) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  for (int i = 0; i < 200; ++i) {
    const Addr a = f.on_home(static_cast<NodeId>(i % 4),
                             static_cast<Addr>((i * 48) % 1024));
    if (i % 3 == 0) {
      (void)f.write(static_cast<NodeId>((i + 1) % 4), a, i);
    } else {
      (void)f.read(static_cast<NodeId>((i + 2) % 4), a);
    }
  }
  const Stats& stats = f.stats();
  const std::uint64_t by_class = stats.messages_of_class(MsgClass::kRead) +
                                 stats.messages_of_class(MsgClass::kWrite) +
                                 stats.messages_of_class(MsgClass::kOther);
  EXPECT_EQ(by_class, stats.messages_total());
  EXPECT_GT(stats.messages_of_class(MsgClass::kRead), 0u);
  EXPECT_GT(stats.messages_of_class(MsgClass::kWrite), 0u);
  EXPECT_GT(stats.messages_of_class(MsgClass::kOther), 0u);
}

TEST(ProtocolEdge, SixtyFourNodeMachine) {
  MachineConfig cfg;
  cfg.num_nodes = 64;
  cfg.l1 = CacheConfig{64, 1, 16};
  cfg.l2 = CacheConfig{256, 1, 16};
  cfg.protocol.kind = ProtocolKind::kLs;
  ProtocolFixture f(cfg);
  const Addr a = f.on_home(0);
  for (NodeId n = 0; n < 64; ++n) {
    (void)f.read(n, a);
  }
  EXPECT_EQ(f.dir(a).sharer_count(), 64);
  (void)f.write(63, a, 1);
  EXPECT_EQ(f.stats().invalidations_sent, 63u);
  EXPECT_TRUE(f.ms().check_coherence_invariants());
}

TEST(ProtocolEdge, WriteUpgradeRaceWithTaggedBlockViaThirdParty) {
  // Tagged block migrates exclusively; a third party's upgrade-from-
  // shared cannot exist (no shared copies), so its write is a miss that
  // transfers ownership.
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a, 1);
  (void)f.read(2, a);  // LStemp at 2.
  (void)f.write(3, a, 3);
  EXPECT_EQ(f.state_of(2, a), CacheState::kInvalid);
  EXPECT_EQ(f.state_of(3, a), CacheState::kModified);
  EXPECT_EQ(f.read(0, a).value, 3u);
}

TEST(ProtocolEdge, EliminatedWritePromotesInBothCacheLevels) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a, 1);
  (void)f.read(2, a);  // LStemp in L1+L2 of node 2.
  (void)f.write(2, a, 2);
  EXPECT_EQ(f.ms().cache(2).l1().find(f.block_of(a))->state,
            CacheState::kModified);
  EXPECT_EQ(f.ms().cache(2).l2().find(f.block_of(a))->state,
            CacheState::kModified);
}

TEST(ProtocolEdge, RmwOnTaggedBlockCountsAsEliminated) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a, 5);
  (void)f.read(2, a);  // LStemp at 2.
  const AccessResult r = f.fetch_add(2, a, 10);
  EXPECT_EQ(r.value, 5u);
  EXPECT_EQ(r.latency, 1u);
  EXPECT_EQ(f.stats().eliminated_acquisitions, 1u);
}

}  // namespace
}  // namespace lssim
