// Shared fixture for driving MemorySystem directly (no coroutines):
// protocol unit tests issue accesses synchronously and inspect the
// directory, caches and statistics.
#pragma once

#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "mem/address_space.hpp"
#include "sim/config.hpp"
#include "stats/stats.hpp"

namespace lssim {

class ProtocolFixture {
 public:
  /// `telemetry` (optional) attaches an observability bundle, for tests
  /// inspecting metrics/trace/audit output; it must be constructed from
  /// the same config's `telemetry` member and outlive the fixture.
  explicit ProtocolFixture(MachineConfig config,
                           Telemetry* telemetry = nullptr)
      : cfg_(std::move(config)),
        space_(cfg_.num_nodes, cfg_.page_bytes),
        stats_(cfg_.num_nodes),
        ms_(cfg_, space_, stats_, telemetry) {}

  static MachineConfig tiny(ProtocolKind kind) {
    // Small caches so evictions are easy to force: L1 4 sets, L2 16 sets,
    // 16-byte blocks, 4 nodes.
    MachineConfig cfg;
    cfg.num_nodes = 4;
    cfg.l1 = CacheConfig{64, 1, 16};
    cfg.l2 = CacheConfig{256, 1, 16};
    cfg.protocol.kind = kind;
    return cfg;
  }

  /// An address whose home is `home` (page-granular round-robin) at
  /// byte offset `offset` within that node's first page.
  [[nodiscard]] Addr on_home(NodeId home, Addr offset = 0) const {
    return static_cast<Addr>(home) * cfg_.page_bytes + offset;
  }

  AccessResult read(NodeId n, Addr a, unsigned size = 4) {
    AccessRequest req;
    req.op = MemOpKind::kRead;
    req.addr = a;
    req.size = size;
    return issue(n, req);
  }
  AccessResult write(NodeId n, Addr a, std::uint64_t v = 0,
                     unsigned size = 4) {
    AccessRequest req;
    req.op = MemOpKind::kWrite;
    req.addr = a;
    req.size = size;
    req.wdata = v;
    return issue(n, req);
  }
  AccessResult swap(NodeId n, Addr a, std::uint64_t v, unsigned size = 4) {
    AccessRequest req;
    req.op = MemOpKind::kSwap;
    req.addr = a;
    req.size = size;
    req.wdata = v;
    return issue(n, req);
  }
  AccessResult fetch_add(NodeId n, Addr a, std::uint64_t d,
                         unsigned size = 4) {
    AccessRequest req;
    req.op = MemOpKind::kFetchAdd;
    req.addr = a;
    req.size = size;
    req.wdata = d;
    return issue(n, req);
  }
  AccessResult cas(NodeId n, Addr a, std::uint64_t expected,
                   std::uint64_t desired, unsigned size = 4) {
    AccessRequest req;
    req.op = MemOpKind::kCas;
    req.addr = a;
    req.size = size;
    req.wdata = desired;
    req.expected = expected;
    return issue(n, req);
  }

  AccessResult issue(NodeId n, const AccessRequest& req) {
    // Space accesses far apart so link contention never skews latency
    // assertions.
    now_ += 100000;
    return ms_.access(n, req, now_);
  }

  /// Forces `block` out of node n's caches by filling its L2 set with
  /// conflicting blocks (stride = l2 sets * block size).
  void force_eviction(NodeId n, Addr addr) {
    const Addr stride = static_cast<Addr>(cfg_.l2.num_sets()) *
                        cfg_.l2.block_bytes * cfg_.num_nodes;
    Addr conflict = addr + stride;
    for (std::uint32_t i = 0; i <= cfg_.l2.assoc; ++i) {
      (void)read(n, conflict);
      conflict += stride;
    }
    EXPECT_FALSE(ms_.cache(n).probe(block_of(addr)).l2_hit);
  }

  [[nodiscard]] Addr block_of(Addr a) const {
    return a & ~static_cast<Addr>(cfg_.l2.block_bytes - 1);
  }
  [[nodiscard]] CacheState state_of(NodeId n, Addr a) {
    return ms_.cache(n).probe(block_of(a)).state;
  }
  [[nodiscard]] const DirEntry& dir(Addr a) {
    return ms_.directory().entry(block_of(a));
  }

  [[nodiscard]] MemorySystem& ms() noexcept { return ms_; }
  [[nodiscard]] Stats& stats() noexcept { return stats_; }
  [[nodiscard]] AddressSpace& space() noexcept { return space_; }
  [[nodiscard]] const MachineConfig& cfg() const noexcept { return cfg_; }

 private:
  MachineConfig cfg_;
  AddressSpace space_;
  Stats stats_;
  MemorySystem ms_;
  Cycles now_ = 0;
};

}  // namespace lssim
