// Dir_iB limited-pointer directory (extension).
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace lssim {
namespace {

MachineConfig limited_cfg(ProtocolKind kind, int pointers) {
  MachineConfig cfg = ProtocolFixture::tiny(kind);
  cfg.directory_scheme = DirectoryScheme::kLimitedPtr;
  cfg.directory_pointers = static_cast<std::uint8_t>(pointers);
  return cfg;
}

TEST(LimitedDir, NoOverflowWithinPointerBudget) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 2));
  const Addr a = f.on_home(0);
  (void)f.read(0, a);
  (void)f.read(1, a);
  EXPECT_FALSE(f.dir(a).ptr_overflow);
  (void)f.write(0, a);
  EXPECT_EQ(f.stats().messages_by_type[static_cast<int>(MsgType::kInval)],
            1u);  // Precise: only node 1 invalidated.
}

TEST(LimitedDir, OverflowTriggersBroadcastInvalidation) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 2));
  const Addr a = f.on_home(0);
  (void)f.read(0, a);
  (void)f.read(1, a);
  (void)f.read(2, a);  // Third sharer: pointers overflow.
  EXPECT_TRUE(f.dir(a).ptr_overflow);
  (void)f.write(0, a);
  // Broadcast: invalidations to ALL other nodes (3 on a 4-node machine),
  // even node 3 which holds no copy.
  EXPECT_EQ(f.stats().messages_by_type[static_cast<int>(MsgType::kInval)],
            3u);
  EXPECT_EQ(f.state_of(1, a), CacheState::kInvalid);
  EXPECT_EQ(f.state_of(2, a), CacheState::kInvalid);
  EXPECT_EQ(f.state_of(0, a), CacheState::kModified);
  EXPECT_TRUE(f.ms().check_coherence_invariants());
}

TEST(LimitedDir, OverflowClearsOnceExclusive) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 1));
  const Addr a = f.on_home(0);
  (void)f.read(0, a);
  (void)f.read(1, a);
  EXPECT_TRUE(f.dir(a).ptr_overflow);
  (void)f.write(2, a);  // Write miss: precise single owner again.
  EXPECT_FALSE(f.dir(a).ptr_overflow);
  (void)f.read(3, a);  // Read-on-dirty: two precise pointers.
  EXPECT_FALSE(f.dir(a).ptr_overflow);
}

TEST(LimitedDir, OverflowBlindsAdDetection) {
  // AD needs the precise "one other copy == last writer" evidence, which
  // Dir_iB loses on overflow. LS's last-reader field needs no sharer
  // list, so it keeps working — an argument the LS design gets for free.
  ProtocolFixture f(limited_cfg(ProtocolKind::kAd, 1));
  const Addr a = f.on_home(0);
  (void)f.write(1, a);
  (void)f.read(2, a);   // Owner downgrade: sharers {1, 2} > 1 pointer.
  EXPECT_FALSE(f.dir(a).ptr_overflow);  // Dirty->Shared is precise (2)...
  (void)f.read(3, a);   // ...but the third sharer overflows.
  EXPECT_TRUE(f.dir(a).ptr_overflow);
  (void)f.write(2, a);
  EXPECT_FALSE(f.dir(a).tagged);
}

TEST(LimitedDir, LsTaggingSurvivesOverflow) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kLs, 1));
  const Addr a = f.on_home(0);
  (void)f.read(0, a);
  (void)f.read(1, a);
  (void)f.read(2, a);
  EXPECT_TRUE(f.dir(a).ptr_overflow);
  (void)f.write(2, a);  // Writer == LR: LS tags despite the overflow.
  EXPECT_TRUE(f.dir(a).tagged);
}

TEST(LimitedDir, LastCopyReplacementResetsOverflow) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 1));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.read(2, a);
  EXPECT_TRUE(f.dir(a).ptr_overflow);
  f.force_eviction(1, a);
  f.force_eviction(2, a);
  EXPECT_EQ(f.dir(a).state, DirState::kUncached);
  EXPECT_FALSE(f.dir(a).ptr_overflow);
}

}  // namespace
}  // namespace lssim
