// Dir_iB limited-pointer directory (extension): real pointer storage in
// the sharer word, broadcast once the pointer budget overflows.
#include <gtest/gtest.h>

#include "core/directory_policy.hpp"
#include "protocol_test_util.hpp"

namespace lssim {
namespace {

MachineConfig limited_cfg(ProtocolKind kind, int pointers) {
  MachineConfig cfg = ProtocolFixture::tiny(kind);
  cfg.directory_scheme = DirectoryKind::kLimitedPtr;
  cfg.directory_pointers = static_cast<std::uint8_t>(pointers);
  return cfg;
}

TEST(LimitedDir, NoOverflowWithinPointerBudget) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 2));
  const Addr a = f.on_home(0);
  (void)f.read(0, a);
  (void)f.read(1, a);
  EXPECT_FALSE(f.dir(a).imprecise);
  (void)f.write(0, a);
  EXPECT_EQ(f.stats().messages_by_type[static_cast<int>(MsgType::kInval)],
            1u);  // Precise: only node 1 invalidated.
}

TEST(LimitedDir, OverflowTriggersBroadcastInvalidation) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 2));
  const Addr a = f.on_home(0);
  (void)f.read(0, a);
  (void)f.read(1, a);
  (void)f.read(2, a);  // Third sharer: pointers overflow.
  EXPECT_TRUE(f.dir(a).imprecise);
  (void)f.write(0, a);
  // Broadcast: invalidations to ALL other nodes (3 on a 4-node machine),
  // even node 3 which holds no copy.
  EXPECT_EQ(f.stats().messages_by_type[static_cast<int>(MsgType::kInval)],
            3u);
  EXPECT_EQ(f.state_of(1, a), CacheState::kInvalid);
  EXPECT_EQ(f.state_of(2, a), CacheState::kInvalid);
  EXPECT_EQ(f.state_of(0, a), CacheState::kModified);
  EXPECT_TRUE(f.ms().check_coherence_invariants());
}

TEST(LimitedDir, BelievedSharersMatchPointers) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 2));
  const Addr a = f.on_home(0);
  (void)f.read(3, a);
  (void)f.read(1, a);
  const DirectoryPolicy& dp = f.ms().directory_policy();
  const SharerSet believed = dp.believed_sharers(f.dir(a));
  EXPECT_EQ(believed.count(), 2);
  EXPECT_TRUE(believed.test(1));
  EXPECT_TRUE(believed.test(3));
  EXPECT_FALSE(believed.test(0));
}

TEST(LimitedDir, OverflowClearsOnceExclusive) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 1));
  const Addr a = f.on_home(0);
  (void)f.read(0, a);
  (void)f.read(1, a);
  EXPECT_TRUE(f.dir(a).imprecise);
  (void)f.write(2, a);  // Write miss: precise single owner again.
  EXPECT_FALSE(f.dir(a).imprecise);
  // Read-on-dirty rebuilds {owner, reader}: two sharers fit two pointers
  // but overflow a single one.
  (void)f.read(3, a);
  EXPECT_TRUE(f.dir(a).imprecise);
}

TEST(LimitedDir, ReadOnDirtyStaysPreciseWithTwoPointers) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 2));
  const Addr a = f.on_home(0);
  (void)f.write(2, a);
  (void)f.read(3, a);  // Owner downgrade: sharers {2, 3} fit 2 pointers.
  EXPECT_FALSE(f.dir(a).imprecise);
  (void)f.write(3, a);
  // Precise upgrade: only the other pointer (node 2) is invalidated.
  EXPECT_EQ(f.stats().messages_by_type[static_cast<int>(MsgType::kInval)],
            1u);
}

TEST(LimitedDir, OverflowBlindsAdDetection) {
  // AD needs the precise "one other copy == last writer" evidence, which
  // Dir_iB loses on overflow. LS's last-reader field needs no sharer
  // list, so it keeps working — an argument the LS design gets for free.
  ProtocolFixture f(limited_cfg(ProtocolKind::kAd, 2));
  const Addr a = f.on_home(0);
  (void)f.write(1, a);
  (void)f.read(2, a);  // Owner downgrade: sharers {1, 2} are precise...
  EXPECT_FALSE(f.dir(a).imprecise);
  (void)f.read(3, a);  // ...but the third sharer overflows.
  EXPECT_TRUE(f.dir(a).imprecise);
  (void)f.write(2, a);
  EXPECT_FALSE(f.dir(a).tagged);
}

TEST(LimitedDir, AdDetectionWorksWhilePrecise) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kAd, 2));
  const Addr a = f.on_home(0);
  (void)f.write(1, a);
  (void)f.read(2, a);  // {1, 2} precise; last_writer == 1.
  (void)f.write(2, a);  // Upgrade with migratory evidence: tags.
  EXPECT_TRUE(f.dir(a).tagged);
}

TEST(LimitedDir, LsTaggingSurvivesOverflow) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kLs, 1));
  const Addr a = f.on_home(0);
  (void)f.read(0, a);
  (void)f.read(1, a);
  (void)f.read(2, a);
  EXPECT_TRUE(f.dir(a).imprecise);
  (void)f.write(2, a);  // Writer == LR: LS tags despite the overflow.
  EXPECT_TRUE(f.dir(a).tagged);
}

TEST(LimitedDir, OverflowSurvivesReplacements) {
  // Real Dir_iB cannot learn from replacements once overflowed: the
  // pointer list is gone, so the entry stays imprecise (a broadcast
  // superset) even after every actual copy is evicted. The invariant
  // checker's superset rule permits exactly this.
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 1));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.read(2, a);
  EXPECT_TRUE(f.dir(a).imprecise);
  f.force_eviction(1, a);
  f.force_eviction(2, a);
  EXPECT_EQ(f.dir(a).state, DirState::kShared);
  EXPECT_TRUE(f.dir(a).imprecise);
  EXPECT_TRUE(f.ms().check_coherence_invariants());
  // The next writer re-precises the entry.
  (void)f.write(3, a);
  EXPECT_FALSE(f.dir(a).imprecise);
  EXPECT_EQ(f.dir(a).state, DirState::kDirty);
}

TEST(LimitedDir, PreciseReplacementReclaimsEntry) {
  ProtocolFixture f(limited_cfg(ProtocolKind::kBaseline, 2));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.read(2, a);
  EXPECT_FALSE(f.dir(a).imprecise);
  f.force_eviction(1, a);
  f.force_eviction(2, a);
  EXPECT_EQ(f.dir(a).state, DirState::kUncached);
  EXPECT_FALSE(f.dir(a).imprecise);
}

}  // namespace
}  // namespace lssim
