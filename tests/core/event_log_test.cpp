// Protocol event log: ring semantics and hook coverage.
#include "core/event_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "protocol_test_util.hpp"

namespace lssim {
namespace {

TEST(EventLog, DisabledByDefault) {
  EventLog log;
  EXPECT_FALSE(log.enabled());
  log.record(1, ProtoEventKind::kTag, 0, 0, DirState::kShared, true);
  EXPECT_EQ(log.total(), 0u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, RetainsInOrder) {
  EventLog log(8);
  for (int i = 0; i < 5; ++i) {
    log.record(static_cast<Cycles>(i), ProtoEventKind::kReadMiss,
               static_cast<Addr>(i * 16), 0, DirState::kShared, false);
  }
  std::vector<Cycles> times;
  log.for_each([&](const ProtocolEvent& e) { times.push_back(e.time); });
  EXPECT_EQ(times, (std::vector<Cycles>{0, 1, 2, 3, 4}));
}

TEST(EventLog, ExplicitCapacityZeroStaysDisabled) {
  EventLog log(0);
  EXPECT_FALSE(log.enabled());
  for (int i = 0; i < 3; ++i) {
    log.record(static_cast<Cycles>(i), ProtoEventKind::kTag, 0, 0,
               DirState::kShared, true);
  }
  EXPECT_EQ(log.total(), 0u);
  EXPECT_EQ(log.size(), 0u);
  bool called = false;
  log.for_each([&](const ProtocolEvent&) { called = true; });
  EXPECT_FALSE(called);
}

TEST(EventLog, ExactCapacityRetainsAllThenWrapsByOne) {
  EventLog log(4);
  for (int i = 0; i < 4; ++i) {
    log.record(static_cast<Cycles>(i), ProtoEventKind::kReadMiss, 0, 0,
               DirState::kShared, false);
  }
  // Filling to exactly capacity must not wrap: all records retained.
  EXPECT_EQ(log.total(), 4u);
  EXPECT_EQ(log.size(), 4u);
  std::vector<Cycles> times;
  log.for_each([&](const ProtocolEvent& e) { times.push_back(e.time); });
  EXPECT_EQ(times, (std::vector<Cycles>{0, 1, 2, 3}));
  // One more record replaces exactly the oldest entry.
  log.record(4, ProtoEventKind::kReadMiss, 0, 0, DirState::kShared, false);
  times.clear();
  log.for_each([&](const ProtocolEvent& e) { times.push_back(e.time); });
  EXPECT_EQ(times, (std::vector<Cycles>{1, 2, 3, 4}));
}

TEST(EventLog, RingDropsOldest) {
  EventLog log(3);
  for (int i = 0; i < 7; ++i) {
    log.record(static_cast<Cycles>(i), ProtoEventKind::kUpgrade, 0, 0,
               DirState::kDirty, false);
  }
  EXPECT_EQ(log.total(), 7u);
  EXPECT_EQ(log.size(), 3u);
  std::vector<Cycles> times;
  log.for_each([&](const ProtocolEvent& e) { times.push_back(e.time); });
  EXPECT_EQ(times, (std::vector<Cycles>{4, 5, 6}));
}

TEST(EventLog, DumpFormatsLines) {
  EventLog log(4);
  log.record(12340, ProtoEventKind::kUpgrade, 0x40, 1, DirState::kDirty,
             true);
  std::ostringstream os;
  log.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("@12340"), std::string::npos);
  EXPECT_NE(out.find("P1"), std::string::npos);
  EXPECT_NE(out.find("upgrade"), std::string::npos);
  EXPECT_NE(out.find("[tagged]"), std::string::npos);
}

TEST(EventLogIntegration, LsLifecycleEventsAppear) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kLs);
  cfg.event_log_capacity = 256;
  ProtocolFixture f(cfg);
  const Addr a = f.on_home(0);
  (void)f.read(1, a);    // read-miss
  (void)f.write(1, a);   // upgrade + tag
  (void)f.read(2, a);    // read-miss + migrate
  (void)f.write(2, a);   // local-write
  (void)f.read(3, a);    // read-miss + migrate
  (void)f.read(0, a);    // read-miss + notls + detag

  std::vector<ProtoEventKind> kinds;
  f.ms().event_log().for_each(
      [&](const ProtocolEvent& e) { kinds.push_back(e.kind); });

  auto count = [&](ProtoEventKind kind) {
    std::size_t n = 0;
    for (auto k : kinds) {
      if (k == kind) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(ProtoEventKind::kReadMiss), 4u);
  EXPECT_EQ(count(ProtoEventKind::kUpgrade), 1u);
  EXPECT_EQ(count(ProtoEventKind::kTag), 1u);
  EXPECT_EQ(count(ProtoEventKind::kMigrate), 2u);
  EXPECT_EQ(count(ProtoEventKind::kLocalWrite), 1u);
  EXPECT_EQ(count(ProtoEventKind::kNotLs), 1u);
  EXPECT_EQ(count(ProtoEventKind::kDetag), 1u);
}

TEST(EventLogIntegration, WritebackRecordedOnDirtyEviction) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kBaseline);
  cfg.event_log_capacity = 64;
  ProtocolFixture f(cfg);
  const Addr a = f.on_home(0);
  (void)f.write(1, a, 5);
  f.force_eviction(1, a);
  bool saw_writeback = false;
  f.ms().event_log().for_each([&](const ProtocolEvent& e) {
    if (e.kind == ProtoEventKind::kWriteback && e.block == f.block_of(a)) {
      saw_writeback = true;
    }
  });
  EXPECT_TRUE(saw_writeback);
}

}  // namespace
}  // namespace lssim
