// Latency calibration against the paper's Table 1: uncontended read
// misses cost 100 (local), 220 (2-hop clean) and 420 (4-hop read-on-
// dirty) cycles with the default component latencies.
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace lssim {
namespace {

class LatencyTest : public ::testing::Test {
 protected:
  LatencyTest() : f_(MachineConfig::scientific_default()) {}
  ProtocolFixture f_;
};

TEST_F(LatencyTest, L1HitCostsOneCycle) {
  const Addr a = f_.on_home(0);
  (void)f_.read(0, a);
  const AccessResult hit = f_.read(0, a);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_EQ(hit.latency, 1u);
}

TEST_F(LatencyTest, L2HitCostsElevenCycles) {
  const Addr a = f_.on_home(0);
  (void)f_.read(0, a);
  // Evict from L1 only: fill conflicting L1 sets (L1 4kB DM, 16B blocks ->
  // 256 sets; stride 4 kB keeps the same L1 set and home node 0... use a
  // block 4 kB * 4 away to stay on node 0 pages).
  const Addr conflict = a + 4096ull * 4;  // Same L1 set, same home.
  (void)f_.read(0, conflict);
  const AccessResult hit = f_.read(0, a);
  EXPECT_FALSE(hit.l1_hit);
  EXPECT_TRUE(hit.l2_hit);
  EXPECT_EQ(hit.latency, 11u);
}

TEST_F(LatencyTest, LocalCleanReadMissCosts100) {
  const AccessResult r = f_.read(0, f_.on_home(0));
  EXPECT_TRUE(r.global);
  EXPECT_EQ(r.latency, 100u);  // Paper Table 1: "Local access 100".
}

TEST_F(LatencyTest, TwoHopCleanReadMissCosts220) {
  const AccessResult r = f_.read(1, f_.on_home(0));
  EXPECT_EQ(r.latency, 220u);  // Paper Table 1: "Home access 220".
}

TEST_F(LatencyTest, FourHopReadOnDirtyCosts420) {
  const Addr a = f_.on_home(2);  // Home = node 2.
  (void)f_.write(0, a);          // Node 0 becomes the dirty owner.
  const AccessResult r = f_.read(1, a);  // Requester = node 1.
  EXPECT_EQ(r.latency, 420u);  // Paper Table 1: "Remote access 420".
}

TEST_F(LatencyTest, ReadOnDirtyWithLocalHomeCosts300) {
  const Addr a = f_.on_home(1);
  (void)f_.write(0, a);                  // Owner 0, home 1.
  const AccessResult r = f_.read(1, a);  // Requester == home.
  EXPECT_EQ(r.latency, 300u);
}

TEST_F(LatencyTest, LocalWriteMissCosts100) {
  const AccessResult r = f_.write(0, f_.on_home(0));
  EXPECT_EQ(r.latency, 100u);
}

TEST_F(LatencyTest, LocalUpgradeNoSharersCosts90) {
  const Addr a = f_.on_home(0);
  (void)f_.read(0, a);
  const AccessResult r = f_.write(0, a);
  EXPECT_TRUE(r.l2_hit);
  EXPECT_EQ(r.latency, 90u);
}

TEST_F(LatencyTest, RemoteUpgradeNoSharersCosts210) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  const AccessResult r = f_.write(1, a);
  EXPECT_EQ(r.latency, 210u);
}

TEST_F(LatencyTest, UpgradeWaitsForInvalidationAcks) {
  const Addr a = f_.on_home(2);
  (void)f_.read(0, a);
  (void)f_.read(1, a);
  // Upgrade by node 0: grant (2-hop) in parallel with inval to node 1 and
  // ack node1 -> node0. Critical path: req->home (90 after issue), inval
  // home->sharer (+80 +10 inval) then ack sharer->req (+80) = 300.
  const AccessResult r = f_.write(0, a);
  EXPECT_EQ(r.latency, 300u);
  EXPECT_EQ(f_.stats().invalidations_sent, 1u);
}

TEST_F(LatencyTest, WriteHitOnModifiedIsLocal) {
  const Addr a = f_.on_home(0);
  (void)f_.write(0, a);
  const AccessResult r = f_.write(0, a);
  EXPECT_TRUE(r.l1_hit);
  EXPECT_EQ(r.latency, 1u);
}

TEST_F(LatencyTest, ContentionDelaysBackToBackMisses) {
  // Two misses from the same node to the same home within a few cycles:
  // the second queues behind the first on the request link.
  MachineConfig cfg = MachineConfig::scientific_default();
  ProtocolFixture f(cfg);
  AccessRequest req;
  req.op = MemOpKind::kRead;
  req.size = 4;
  req.addr = f.on_home(1, 0);
  const AccessResult first = f.ms().access(0, req, 1000);
  req.addr = f.on_home(1, 64);
  const AccessResult second = f.ms().access(0, req, 1000);
  EXPECT_EQ(first.latency, 220u);
  EXPECT_GT(second.latency, 220u);  // Queued behind the first request.
}

}  // namespace
}  // namespace lssim
