// Sparse directory (directory cache) through the protocol engine: the
// entry population stays under the configured bound, evicting a victim
// entry first invalidates (and writes back) every cached copy of the
// victim block, and coherence invariants hold throughout. Encoding
// behaviour is covered in directory_policy_test.cpp.
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace lssim {
namespace {

MachineConfig sparse_tiny(std::uint32_t entries) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kBaseline);
  cfg.directory_scheme = DirectoryKind::kSparse;
  cfg.directory_entries = entries;
  return cfg;
}

TEST(SparseDirectory, PopulationStaysUnderTheBound) {
  ProtocolFixture f(sparse_tiny(/*entries=*/2));
  ASSERT_EQ(f.ms().directory_policy().max_entries(), 2u);
  // Three distinct blocks with only two entries available.
  const Addr a = f.on_home(0);
  const Addr b = f.on_home(1);
  const Addr c = f.on_home(2);
  (void)f.write(0, a, 11);
  (void)f.write(0, b, 22);
  EXPECT_EQ(f.ms().directory().size(), 2u);
  EXPECT_EQ(f.stats().dir_entry_evictions, 0u);
  (void)f.write(0, c, 33);
  EXPECT_LE(f.ms().directory().size(), 2u);
  EXPECT_GE(f.stats().dir_entry_evictions, 1u);
  EXPECT_TRUE(f.ms().check_coherence_invariants());
}

TEST(SparseDirectory, EvictionInvalidatesTheVictimsCachedCopies) {
  ProtocolFixture f(sparse_tiny(/*entries=*/2));
  const Addr a = f.on_home(0);
  const Addr b = f.on_home(1);
  const Addr c = f.on_home(2);
  // Three nodes share block a; a second block fills the directory.
  (void)f.read(1, a);
  (void)f.read(2, a);
  (void)f.read(3, a);
  (void)f.read(1, b);
  ASSERT_EQ(f.ms().directory().size(), 2u);
  // A third block forces one of {a, b} out. A block without a directory
  // entry must be uncached everywhere — whichever entry was evicted,
  // no cache may still hold its block.
  (void)f.read(0, c);
  EXPECT_GE(f.stats().dir_entry_evictions, 1u);
  for (Addr block : {f.block_of(a), f.block_of(b)}) {
    if (f.ms().directory().find(block) != nullptr) {
      continue;  // Survived this round.
    }
    for (NodeId n = 0; n < 4; ++n) {
      EXPECT_FALSE(f.ms().cache(n).probe(block).l2_hit)
          << "node " << int(n) << " still holds evicted block " << block;
    }
  }
  EXPECT_TRUE(f.ms().check_coherence_invariants());
}

TEST(SparseDirectory, DirtyVictimWritesItsDataBack) {
  ProtocolFixture f(sparse_tiny(/*entries=*/1));
  const Addr a = f.on_home(0);
  (void)f.write(1, a, 0xBEEF);
  ASSERT_EQ(f.state_of(1, a), CacheState::kModified);
  // Any other block's entry displaces a's, forcing the dirty copy home.
  (void)f.read(2, f.on_home(1));
  EXPECT_GE(f.stats().dir_entry_evictions, 1u);
  EXPECT_EQ(f.state_of(1, a), CacheState::kInvalid);
  // The writeback must not lose the value.
  EXPECT_EQ(f.read(3, a).value, 0xBEEFu);
  EXPECT_TRUE(f.ms().check_coherence_invariants());
}

TEST(SparseDirectory, InvariantsHoldAcrossChurn) {
  // Many blocks cycling through a 4-entry directory under every access
  // mix the engine supports from the fixture: reads, writes, RMWs.
  ProtocolFixture f(sparse_tiny(/*entries=*/4));
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 8; ++i) {
      const Addr addr = f.on_home(static_cast<NodeId>(i % 4),
                                  static_cast<Addr>(16 * (i / 4)));
      const auto node = static_cast<NodeId>((round + i) % 4);
      switch ((round + i) % 3) {
        case 0:
          (void)f.read(node, addr);
          break;
        case 1:
          (void)f.write(node, addr, static_cast<std::uint64_t>(round));
          break;
        default:
          (void)f.fetch_add(node, addr, 1);
          break;
      }
      ASSERT_TRUE(f.ms().check_coherence_invariants())
          << "round " << round << " access " << i;
    }
  }
  EXPECT_LE(f.ms().directory().size(), 4u);
  EXPECT_GT(f.stats().dir_entry_evictions, 0u);
}

}  // namespace
}  // namespace lssim
