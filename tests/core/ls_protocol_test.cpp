// The paper's LS protocol extension (§3, §3.1, Figure 1).
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace lssim {
namespace {

class LsTest : public ::testing::Test {
 protected:
  LsTest() : f_(ProtocolFixture::tiny(ProtocolKind::kLs)) {}
  ProtocolFixture f_;
};

TEST_F(LsTest, UpgradeByLastReaderTagsBlock) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);   // LR := 1.
  (void)f_.write(1, a);  // Ownership request from LR -> tag LS.
  EXPECT_TRUE(f_.dir(a).tagged);
  EXPECT_EQ(f_.stats().blocks_tagged, 1u);
}

TEST_F(LsTest, UpgradeByOtherReaderDoesNotTag) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.read(2, a);   // LR := 2.
  (void)f_.write(1, a);  // Writer != LR: intervening access detected.
  EXPECT_FALSE(f_.dir(a).tagged);
}

TEST_F(LsTest, TaggedReadReturnsExclusiveLStemp) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);  // Tag.
  (void)f_.read(2, a);   // Dirty + tagged: migrate exclusively.
  EXPECT_EQ(f_.state_of(2, a), CacheState::kLStemp);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kInvalid);
  EXPECT_EQ(f_.dir(a).state, DirState::kExcl);
  EXPECT_EQ(f_.dir(a).owner, 2);
  EXPECT_EQ(f_.stats().exclusive_read_replies, 1u);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsTest, WriteOnLStempIsLocalAndEliminatesOwnership) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);
  (void)f_.read(2, a);  // LStemp at node 2.
  const std::uint64_t msgs_before = f_.stats().messages_total();
  const AccessResult w = f_.write(2, a, 5);
  EXPECT_EQ(w.latency, 1u);  // Pure L1 hit: zero write stall.
  EXPECT_EQ(f_.stats().messages_total(), msgs_before);  // Zero traffic.
  EXPECT_EQ(f_.stats().eliminated_acquisitions, 1u);
  EXPECT_EQ(f_.state_of(2, a), CacheState::kModified);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsTest, MigratoryChainStaysOptimized) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);  // Tag.
  for (NodeId n : {NodeId{2}, NodeId{3}, NodeId{0}, NodeId{1}}) {
    (void)f_.read(n, a);
    (void)f_.write(n, a, n);
  }
  // Every write after tagging was local: 4 eliminations.
  EXPECT_EQ(f_.stats().eliminated_acquisitions, 4u);
  EXPECT_TRUE(f_.dir(a).tagged);
}

TEST_F(LsTest, ReplacementBrokenSequenceStillTags) {
  // The paper's key advantage over AD: read, capacity eviction, then the
  // write arrives as a write miss from LR -> still a load-store sequence.
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  f_.force_eviction(1, a);
  (void)f_.write(1, a);  // Write miss, source == LR -> tag.
  EXPECT_TRUE(f_.dir(a).tagged);
}

TEST_F(LsTest, SingleProcessorLoadStoreToUncachedTags) {
  // Migratory techniques need two processors; LS tags even a lone
  // read-then-write (paper §1: "migratory sharing techniques fail to
  // detect single load-store sequences to uncached memory blocks").
  const Addr a = f_.on_home(2);
  (void)f_.read(0, a);
  (void)f_.write(0, a);
  EXPECT_TRUE(f_.dir(a).tagged);
  // Next read (after eviction) returns an exclusive copy.
  f_.force_eviction(0, a);
  (void)f_.read(0, a);
  EXPECT_EQ(f_.state_of(0, a), CacheState::kLStemp);
}

TEST_F(LsTest, UncachedTaggedReadGoesToLoadStoreState) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);  // Tag; dirty at 1.
  f_.force_eviction(1, a);  // Dirty -> Repl -> Uncached, LS bit kept.
  EXPECT_EQ(f_.dir(a).state, DirState::kUncached);
  EXPECT_TRUE(f_.dir(a).tagged);
  (void)f_.read(3, a);  // Figure 1: Uncached --Read(LS=1)--> Load-Store.
  EXPECT_EQ(f_.dir(a).state, DirState::kExcl);
  EXPECT_EQ(f_.state_of(3, a), CacheState::kLStemp);
}

TEST_F(LsTest, ForeignReadOnLStempDetagsAndShares) {
  // Paper §3.1 case 2: block read by another processor while LStemp.
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);
  (void)f_.read(2, a);  // LStemp at 2.
  (void)f_.read(3, a);  // Foreign read before the owning write.
  EXPECT_EQ(f_.state_of(2, a), CacheState::kShared);
  EXPECT_EQ(f_.state_of(3, a), CacheState::kShared);
  EXPECT_EQ(f_.dir(a).state, DirState::kShared);
  EXPECT_FALSE(f_.dir(a).tagged);
  EXPECT_EQ(f_.stats().blocks_detagged, 1u);
  EXPECT_EQ(f_.stats().notls_messages, 1u);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsTest, ForeignWriteOnLStempDetags) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);
  (void)f_.read(2, a);   // LStemp at 2.
  (void)f_.write(3, a);  // Foreign write miss.
  EXPECT_EQ(f_.state_of(2, a), CacheState::kInvalid);
  EXPECT_EQ(f_.state_of(3, a), CacheState::kModified);
  EXPECT_FALSE(f_.dir(a).tagged);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsTest, LoneWriteMissDetags) {
  // Paper §3.1: de-tag when the home receives a write request from a
  // processor not holding a copy (and not preceded by its own read).
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);  // Tagged; dirty at 1.
  EXPECT_TRUE(f_.dir(a).tagged);
  (void)f_.write(2, a);  // Node 2 writes without reading.
  EXPECT_FALSE(f_.dir(a).tagged);
}

TEST_F(LsTest, KeepTagOnLoneWriteHeuristic) {
  // §5.5 variation: keep the LS bit on a lone ownership request.
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kLs);
  cfg.protocol.keep_tag_on_lone_write = true;
  ProtocolFixture f(cfg);
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a);
  (void)f.write(2, a);
  EXPECT_TRUE(f.dir(a).tagged);
}

TEST_F(LsTest, LStempReplacementKeepsLsBit) {
  // Paper §3.1 case 3: eviction of an LStemp block; memory keeps the LS
  // bit and the home returns to Uncached.
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);
  (void)f_.read(2, a);  // LStemp at 2.
  f_.force_eviction(2, a);
  EXPECT_EQ(f_.dir(a).state, DirState::kUncached);
  EXPECT_TRUE(f_.dir(a).tagged);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(LsTest, ReadMissClassifiedCleanExclusive) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);     // Tag; dirty at 1.
  (void)f_.read(2, a);      // Miss on DirtyExcl (modified at 1, tagged).
  f_.force_eviction(2, a);  // LStemp replaced; home Uncached + tagged.
  (void)f_.read(2, a);      // Miss on CleanExcl.
  const auto& by_state = f_.stats().read_miss_home_state;
  EXPECT_EQ(by_state[static_cast<int>(HomeStateAtMiss::kDirtyExcl)], 1u);
  EXPECT_EQ(by_state[static_cast<int>(HomeStateAtMiss::kCleanExcl)], 1u);
}

TEST_F(LsTest, DefaultTaggedGivesExclusiveColdReads) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kLs);
  cfg.protocol.default_tagged = true;
  ProtocolFixture f(cfg);
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  EXPECT_EQ(f.state_of(1, a), CacheState::kLStemp);
  const AccessResult w = f.write(1, a);
  EXPECT_EQ(w.latency, 1u);
  EXPECT_EQ(f.stats().eliminated_acquisitions, 1u);
}

TEST_F(LsTest, TagHysteresisRequiresTwoSequences) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kLs);
  cfg.protocol.tag_hysteresis = 2;
  ProtocolFixture f(cfg);
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a);
  EXPECT_FALSE(f.dir(a).tagged);  // First qualifying event only arms it.
  // A second *global* load-store sequence is needed: evict so the next
  // read/write pair reaches the home again.
  f.force_eviction(1, a);
  (void)f.read(1, a);
  (void)f.write(1, a);
  EXPECT_TRUE(f.dir(a).tagged);
}

TEST_F(LsTest, DetagHysteresisSurvivesOneForeignRead) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kLs);
  cfg.protocol.detag_hysteresis = 2;
  ProtocolFixture f(cfg);
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a);  // Tag.
  (void)f.read(2, a);   // LStemp at 2.
  (void)f.read(3, a);   // Foreign read: first de-tag event.
  EXPECT_TRUE(f.dir(a).tagged);  // Still tagged (hysteresis 2).
}

TEST_F(LsTest, WriteUpgradeAfterReadOnSharedBlockTagsButInvalidates) {
  // Read-shared block written by the last reader: tagging happens, other
  // sharers are invalidated normally (this is the mis-tagging risk that
  // raises OLTP read misses, paper §5.4).
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.read(2, a);
  (void)f_.read(3, a);  // LR := 3.
  (void)f_.write(3, a);
  EXPECT_TRUE(f_.dir(a).tagged);
  EXPECT_EQ(f_.stats().invalidations_sent, 2u);
  // Follow-up read by node 1 now migrates the block exclusively, hurting
  // the other readers.
  (void)f_.read(1, a);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kLStemp);
}

TEST_F(LsTest, LastReaderConsumedByWrite) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(2, a);  // Intervening foreign write consumes LR.
  // Node 1's write is now a lone write (its earlier read was consumed).
  (void)f_.write(1, a);
  EXPECT_FALSE(f_.dir(a).tagged);
}

TEST_F(LsTest, ValuesSurviveMigration) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a, 111, 8);
  (void)f_.read(2, a);  // Exclusive migrate carries the dirty value.
  EXPECT_EQ(f_.read(2, a, 8).value, 111u);
  (void)f_.write(2, a, 222, 8);
  (void)f_.read(3, a);
  EXPECT_EQ(f_.read(3, a, 8).value, 222u);
}

}  // namespace
}  // namespace lssim
