// Flat-hash storage behaviour of Directory: growth, probing and iteration
// parity against a reference map. Protocol-visible semantics (entry
// creation, default_tagged, find) are in directory_test.cpp; these tests
// stress the open-addressing table underneath.
#include "core/directory.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

namespace lssim {
namespace {

TEST(FlatDirectory, GrowsPastInitialCapacityWithoutLosingEntries) {
  Directory dir;
  const std::size_t kCount = 10000;  // Forces several doublings from 256.
  for (std::size_t i = 0; i < kCount; ++i) {
    DirEntry& e = dir.entry(static_cast<Addr>(i * 64));
    e.owner = static_cast<NodeId>(i % 64);
    e.tagged = (i % 3) == 0;
  }
  EXPECT_EQ(dir.size(), kCount);
  EXPECT_GT(dir.capacity(), 256u);
  // Power-of-two capacity is what makes the mask-based probe valid.
  EXPECT_EQ(dir.capacity() & (dir.capacity() - 1), 0u);
  // Load factor stays below the 3/4 growth threshold.
  EXPECT_LE(dir.size(), dir.capacity() - dir.capacity() / 4);
  for (std::size_t i = 0; i < kCount; ++i) {
    const DirEntry* e = dir.find(static_cast<Addr>(i * 64));
    ASSERT_NE(e, nullptr) << "lost block " << i * 64 << " after growth";
    EXPECT_EQ(e->owner, static_cast<NodeId>(i % 64));
    EXPECT_EQ(e->tagged, (i % 3) == 0);
  }
}

TEST(FlatDirectory, ColldingStridesProbePastOccupiedSlots) {
  // Large power-of-two strides alias heavily under a mask-based table;
  // every block must still get its own entry via linear probing.
  Directory dir;
  const Addr kStride = Addr{1} << 20;
  for (Addr i = 0; i < 512; ++i) {
    dir.entry(i * kStride).last_writer = static_cast<NodeId>(i % 60);
  }
  EXPECT_EQ(dir.size(), 512u);
  for (Addr i = 0; i < 512; ++i) {
    const DirEntry* e = dir.find(i * kStride);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->last_writer, static_cast<NodeId>(i % 60));
  }
}

TEST(FlatDirectory, IterationParityWithReferenceMap) {
  // Same mixed entry()/find() sequence applied to the flat table and to
  // the std::unordered_map it replaced; contents must match exactly.
  Directory dir;
  std::unordered_map<Addr, std::uint8_t> ref;
  std::uint64_t lcg = 12345;
  for (int op = 0; op < 20000; ++op) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Small block pool so re-access (the MRU path) is common.
    const Addr block = ((lcg >> 33) % 3000) * 32;
    // tag_progress is a 3-bit field (hysteresis caps at 7); cycle with a
    // period coprime to the pool size so neighbours differ.
    const auto tag_progress = static_cast<std::uint8_t>(op % 7);
    dir.entry(block).tag_progress = tag_progress;
    ref[block] = tag_progress;
  }
  EXPECT_EQ(dir.size(), ref.size());
  std::size_t visited = 0;
  dir.for_each([&](Addr block, const DirEntry& e) {
    ++visited;
    auto it = ref.find(block);
    ASSERT_NE(it, ref.end()) << "phantom block " << block;
    EXPECT_EQ(e.tag_progress, it->second) << "stale entry for " << block;
  });
  EXPECT_EQ(visited, ref.size());
  // Absent keys stay absent: find never creates (no tombstone confusion).
  for (Addr probe = 1; probe < 64; ++probe) {
    const Addr absent = 3000 * 32 + probe * 32;
    EXPECT_EQ(dir.find(absent), nullptr);
    EXPECT_EQ(ref.find(absent), ref.end());
  }
  EXPECT_EQ(dir.size(), ref.size());
}

TEST(FlatDirectory, RepeatedAccessReturnsSameEntry) {
  // The one-entry MRU cache must hand back the identical slot, and a
  // re-access after touching another block (MRU miss) must still find it.
  Directory dir;
  dir.entry(0x1000).add_sharer(3);
  DirEntry& again = dir.entry(0x1000);
  EXPECT_TRUE(again.is_sharer(3));
  (void)dir.entry(0x2000);
  EXPECT_TRUE(dir.entry(0x1000).is_sharer(3));
  EXPECT_EQ(dir.size(), 2u);
}

TEST(FlatDirectory, GrowthInvalidatesMruCache) {
  // Regression test for the one-entry MRU cache across a rehash. grow()
  // moves every slot, so a stale (mru_key_, mru_index_) pair from before
  // the growth would alias some other block's slot — or an empty one —
  // on the very next same-block re-access. Arrange for a block to be the
  // MRU entry at the exact moment an insert triggers growth, then check
  // both it and its neighbours survived with their own contents.
  Directory dir;
  const Addr kHot = 0x40;
  dir.entry(kHot).owner = 7;
  dir.entry(kHot).add_sharer(5);  // Re-access: kHot is now the MRU block.
  std::size_t filled = 1;
  while (dir.capacity() == 0 || dir.size() < dir.capacity() - dir.capacity() / 4) {
    // Park the MRU on kHot before every insert so whichever insert
    // grows the table grows it "through" the MRU'd entry.
    ASSERT_EQ(dir.entry(kHot).owner, 7);
    dir.entry(static_cast<Addr>(0x10000 + filled * 64)).last_writer =
        static_cast<NodeId>(filled % 60);
    ++filled;
  }
  const std::size_t before = dir.capacity();
  ASSERT_EQ(dir.entry(kHot).owner, 7);  // MRU primed on kHot...
  dir.entry(static_cast<Addr>(0x10000 + filled * 64)).last_writer = 1;
  ASSERT_GT(dir.capacity(), before) << "insert was meant to trigger growth";
  // Post-growth, the hot block must resolve to its own (moved) slot.
  const DirEntry* hot = dir.find(kHot);
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->owner, 7);
  EXPECT_TRUE(hot->is_sharer(5));
  // And the MRU fast path (entry after find) must agree with the probe.
  EXPECT_EQ(&dir.entry(kHot), hot);
  for (std::size_t i = 1; i < filled; ++i) {
    const DirEntry* e = dir.find(static_cast<Addr>(0x10000 + i * 64));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->last_writer, static_cast<NodeId>(i % 60));
  }
}

TEST(FlatDirectory, AddressZeroIsAValidBlock) {
  Directory dir;
  dir.entry(0).tagged = true;
  EXPECT_EQ(dir.size(), 1u);
  ASSERT_NE(dir.find(0), nullptr);
  EXPECT_TRUE(dir.find(0)->tagged);
}

TEST(FlatDirectory, DefaultTaggedAppliesAcrossGrowth) {
  Directory dir(/*default_tagged=*/true);
  for (Addr i = 0; i < 1000; ++i) {
    (void)dir.entry(i * 64);
  }
  std::size_t tagged = 0;
  dir.for_each([&](Addr, const DirEntry& e) { tagged += e.tagged ? 1 : 0; });
  EXPECT_EQ(tagged, 1000u);
}

}  // namespace
}  // namespace lssim
