// Table-driven conformance tests: for every (protocol, scenario) pair,
// assert the exact message-type counts of one transaction against the
// specification in docs/PROTOCOL.md. These pin the wire behaviour, not
// just the end states.
#include <gtest/gtest.h>

#include <array>

#include "protocol_test_util.hpp"

namespace lssim {
namespace {

using MsgCounts = std::array<std::uint64_t, kNumMsgTypes>;

class MessageProbe {
 public:
  explicit MessageProbe(Stats& stats)
      : stats_(stats), last_(stats.messages_by_type) {}

  /// Message-type deltas since the last call.
  MsgCounts take() {
    MsgCounts delta{};
    for (int t = 0; t < kNumMsgTypes; ++t) {
      delta[static_cast<std::size_t>(t)] =
          stats_.messages_by_type[static_cast<std::size_t>(t)] -
          last_[static_cast<std::size_t>(t)];
    }
    last_ = stats_.messages_by_type;
    return delta;
  }

 private:
  Stats& stats_;
  MsgCounts last_{};
};

std::uint64_t n(const MsgCounts& counts, MsgType type) {
  return counts[static_cast<std::size_t>(type)];
}

// --- Baseline wire behaviour -----------------------------------------

TEST(Conformance, RemoteCleanReadIsRequestPlusData) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kBaseline));
  MessageProbe probe(f.stats());
  (void)f.read(1, f.on_home(0));
  const MsgCounts m = probe.take();
  EXPECT_EQ(n(m, MsgType::kReadReq), 1u);
  EXPECT_EQ(n(m, MsgType::kDataShared), 1u);
  std::uint64_t total = 0;
  for (auto c : m) total += c;
  EXPECT_EQ(total, 2u);  // Nothing else on the wire.
}

TEST(Conformance, LocalCleanReadIsSilent) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kBaseline));
  MessageProbe probe(f.stats());
  (void)f.read(0, f.on_home(0));
  const MsgCounts m = probe.take();
  std::uint64_t total = 0;
  for (auto c : m) total += c;
  EXPECT_EQ(total, 0u);
}

TEST(Conformance, ReadOnDirtyIsFourMessages) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kBaseline));
  (void)f.write(0, f.on_home(2));
  MessageProbe probe(f.stats());
  (void)f.read(1, f.on_home(2));
  const MsgCounts m = probe.take();
  EXPECT_EQ(n(m, MsgType::kReadReq), 1u);
  EXPECT_EQ(n(m, MsgType::kReadFwd), 1u);
  EXPECT_EQ(n(m, MsgType::kSharingWb), 1u);
  EXPECT_EQ(n(m, MsgType::kDataShared), 1u);
  std::uint64_t total = 0;
  for (auto c : m) total += c;
  EXPECT_EQ(total, 4u);  // The paper's 4-hop read-on-dirty.
}

TEST(Conformance, RemoteUpgradeWithTwoSharers) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kBaseline));
  (void)f.read(1, f.on_home(0));
  (void)f.read(2, f.on_home(0));
  (void)f.read(3, f.on_home(0));
  MessageProbe probe(f.stats());
  (void)f.write(1, f.on_home(0));
  const MsgCounts m = probe.take();
  EXPECT_EQ(n(m, MsgType::kOwnReq), 1u);
  EXPECT_EQ(n(m, MsgType::kOwnAck), 1u);
  EXPECT_EQ(n(m, MsgType::kInval), 2u);
  EXPECT_EQ(n(m, MsgType::kInvalAck), 2u);
}

TEST(Conformance, DirtyEvictionIsOneWriteback) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kBaseline));
  (void)f.write(1, f.on_home(0));
  MessageProbe probe(f.stats());
  f.force_eviction(1, f.on_home(0));
  const MsgCounts m = probe.take();
  EXPECT_EQ(n(m, MsgType::kWritebackData), 1u);
  // (The conflicting fills generate their own read traffic.)
}

// --- LS wire behaviour -------------------------------------------------

TEST(Conformance, TaggedReadFromUncachedIsExclusiveData) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a);      // Tag.
  f.force_eviction(1, a);   // Home Uncached, LS bit kept.
  MessageProbe probe(f.stats());
  (void)f.read(2, a);
  const MsgCounts m = probe.take();
  EXPECT_EQ(n(m, MsgType::kReadReq), 1u);
  EXPECT_EQ(n(m, MsgType::kDataExclRead), 1u);
  EXPECT_EQ(n(m, MsgType::kDataShared), 0u);
}

TEST(Conformance, EliminatedWriteIsCompletelySilent) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a);
  (void)f.read(2, a);  // LStemp at 2.
  MessageProbe probe(f.stats());
  (void)f.write(2, a);
  const MsgCounts m = probe.take();
  std::uint64_t total = 0;
  for (auto c : m) total += c;
  EXPECT_EQ(total, 0u);  // The entire point of the technique.
}

TEST(Conformance, ForeignReadOnLStempSendsNotLs) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a);
  (void)f.read(2, a);  // LStemp at 2.
  MessageProbe probe(f.stats());
  (void)f.read(3, a);  // Foreign read.
  const MsgCounts m = probe.take();
  EXPECT_EQ(n(m, MsgType::kReadReq), 1u);
  EXPECT_EQ(n(m, MsgType::kReadFwd), 1u);
  EXPECT_EQ(n(m, MsgType::kNotLs), 1u);
  EXPECT_EQ(n(m, MsgType::kDataShared), 1u);
}

TEST(Conformance, MigratoryHandOffCarriesSharingWriteback) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a);  // Tagged, dirty at node 1.
  MessageProbe probe(f.stats());
  (void)f.read(2, a);  // Migrates exclusively, memory updated in passing.
  const MsgCounts m = probe.take();
  EXPECT_EQ(n(m, MsgType::kReadReq), 1u);
  EXPECT_EQ(n(m, MsgType::kReadFwd), 1u);
  EXPECT_EQ(n(m, MsgType::kSharingWb), 1u);
  EXPECT_EQ(n(m, MsgType::kDataExclRead), 1u);
}

TEST(Conformance, LStempReplacementSendsHintNotData) {
  ProtocolFixture f(ProtocolFixture::tiny(ProtocolKind::kLs));
  const Addr a = f.on_home(0);
  (void)f.read(1, a);
  (void)f.write(1, a);
  (void)f.read(2, a);  // LStemp (clean) at 2.
  MessageProbe probe(f.stats());
  f.force_eviction(2, a);
  const MsgCounts m = probe.take();
  // Two hints: one for the LStemp block, one for the first conflicting
  // (Shared) filler force_eviction displaces.
  EXPECT_EQ(n(m, MsgType::kReplHint), 2u);
  EXPECT_EQ(n(m, MsgType::kWritebackData), 0u);  // Clean: no data moves.
}

// --- Cross-protocol invariants over the same scenario ------------------

TEST(Conformance, BaselinePaysUpgradeWhereLsIsSilent) {
  // The same 3-access scenario, message totals per protocol.
  auto run = [](ProtocolKind kind) {
    ProtocolFixture f(ProtocolFixture::tiny(kind));
    const Addr a = f.on_home(0);
    (void)f.read(1, a);
    (void)f.write(1, a);
    (void)f.read(2, a);
    MessageProbe probe(f.stats());
    (void)f.write(2, a);  // The interesting access.
    const MsgCounts m = probe.take();
    std::uint64_t total = 0;
    for (auto c : m) total += c;
    return total;
  };
  EXPECT_GT(run(ProtocolKind::kBaseline), 0u);  // Upgrade traffic.
  EXPECT_EQ(run(ProtocolKind::kLs), 0u);        // Eliminated.
  // AD *detects* at this very upgrade (first migratory evidence), so it
  // still pays here — its silence starts one hand-off later.
  EXPECT_GT(run(ProtocolKind::kAd), 0u);
}

}  // namespace
}  // namespace lssim
