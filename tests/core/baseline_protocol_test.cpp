// Baseline write-invalidate protocol semantics (DASH-like, paper §4.2).
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace lssim {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : f_(ProtocolFixture::tiny(ProtocolKind::kBaseline)) {}
  ProtocolFixture f_;
};

TEST_F(BaselineTest, ColdReadBecomesShared) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kShared);
  const DirEntry& e = f_.dir(a);
  EXPECT_EQ(e.state, DirState::kShared);
  EXPECT_TRUE(e.is_sharer(1));
  EXPECT_EQ(e.last_reader, 1);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(BaselineTest, MultipleReadersShare) {
  const Addr a = f_.on_home(0);
  (void)f_.read(0, a);
  (void)f_.read(1, a);
  (void)f_.read(2, a);
  const DirEntry& e = f_.dir(a);
  EXPECT_EQ(e.sharer_count(), 3);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(BaselineTest, WriteMissBecomesDirty) {
  const Addr a = f_.on_home(0);
  (void)f_.write(2, a, 55);
  EXPECT_EQ(f_.state_of(2, a), CacheState::kModified);
  const DirEntry& e = f_.dir(a);
  EXPECT_EQ(e.state, DirState::kDirty);
  EXPECT_EQ(e.owner, 2);
  EXPECT_EQ(e.last_writer, 2);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(BaselineTest, UpgradeInvalidatesAllOtherSharers) {
  const Addr a = f_.on_home(0);
  (void)f_.read(0, a);
  (void)f_.read(1, a);
  (void)f_.read(2, a);
  (void)f_.write(1, a, 9);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kModified);
  EXPECT_EQ(f_.state_of(0, a), CacheState::kInvalid);
  EXPECT_EQ(f_.state_of(2, a), CacheState::kInvalid);
  EXPECT_EQ(f_.stats().invalidations_sent, 2u);
  EXPECT_EQ(f_.stats().ownership_acquisitions, 1u);
  EXPECT_EQ(f_.stats().single_invalidations, 0u);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(BaselineTest, SingleInvalidationCounted) {
  const Addr a = f_.on_home(0);
  (void)f_.read(0, a);
  (void)f_.read(1, a);
  (void)f_.write(0, a, 1);
  EXPECT_EQ(f_.stats().single_invalidations, 1u);
}

TEST_F(BaselineTest, ReadOnDirtyDowngradesOwner) {
  const Addr a = f_.on_home(2);
  (void)f_.write(0, a, 77);
  (void)f_.read(1, a);
  EXPECT_EQ(f_.state_of(0, a), CacheState::kShared);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kShared);
  const DirEntry& e = f_.dir(a);
  EXPECT_EQ(e.state, DirState::kShared);
  EXPECT_EQ(e.sharer_count(), 2);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(BaselineTest, WriteMissOnDirtyTransfersOwnership) {
  const Addr a = f_.on_home(0);
  (void)f_.write(1, a, 10);
  (void)f_.write(2, a, 20);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kInvalid);
  EXPECT_EQ(f_.state_of(2, a), CacheState::kModified);
  EXPECT_EQ(f_.dir(a).owner, 2);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(BaselineTest, WriteMissOnSharedInvalidatesAll) {
  const Addr a = f_.on_home(0);
  (void)f_.read(0, a);
  (void)f_.read(1, a);
  (void)f_.write(2, a, 3);
  EXPECT_EQ(f_.state_of(0, a), CacheState::kInvalid);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kInvalid);
  EXPECT_EQ(f_.state_of(2, a), CacheState::kModified);
  EXPECT_EQ(f_.stats().invalidations_sent, 2u);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(BaselineTest, EvictionOfSharedUpdatesDirectory) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  f_.force_eviction(1, a);
  const DirEntry& e = f_.dir(a);
  EXPECT_FALSE(e.is_sharer(1));
  EXPECT_EQ(e.state, DirState::kUncached);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(BaselineTest, EvictionOfDirtyWritesBack) {
  const Addr a = f_.on_home(0);
  (void)f_.write(1, a, 123);
  const std::uint64_t wb_before =
      f_.stats().messages_by_type[static_cast<int>(MsgType::kWritebackData)];
  f_.force_eviction(1, a);
  const std::uint64_t wb_after =
      f_.stats().messages_by_type[static_cast<int>(MsgType::kWritebackData)];
  EXPECT_EQ(wb_after, wb_before + 1);
  EXPECT_EQ(f_.dir(a).state, DirState::kUncached);
  // The value survives in memory.
  EXPECT_EQ(f_.read(2, a).value, 123u);
}

TEST_F(BaselineTest, BaselineNeverTagsOrGivesExclusiveReads) {
  const Addr a = f_.on_home(0);
  for (int round = 0; round < 3; ++round) {
    (void)f_.read(0, a);
    (void)f_.write(0, a, round);
    f_.force_eviction(0, a);
  }
  EXPECT_EQ(f_.stats().exclusive_read_replies, 0u);
  EXPECT_EQ(f_.stats().blocks_tagged, 0u);
  EXPECT_EQ(f_.stats().eliminated_acquisitions, 0u);
}

TEST_F(BaselineTest, ValuesFlowThroughProtocol) {
  const Addr a = f_.on_home(3);
  (void)f_.write(0, a, 0xdead, 8);
  EXPECT_EQ(f_.read(1, a, 8).value, 0xdeadu);
  (void)f_.write(2, a, 0xbeef, 8);
  EXPECT_EQ(f_.read(3, a, 8).value, 0xbeefu);
}

TEST_F(BaselineTest, AtomicSwapReturnsOldValue) {
  const Addr a = f_.on_home(0);
  (void)f_.write(0, a, 5);
  const AccessResult r = f_.swap(1, a, 9);
  EXPECT_EQ(r.value, 5u);
  EXPECT_EQ(f_.read(0, a).value, 9u);
}

TEST_F(BaselineTest, FetchAddAccumulates) {
  const Addr a = f_.on_home(0);
  EXPECT_EQ(f_.fetch_add(0, a, 3).value, 0u);
  EXPECT_EQ(f_.fetch_add(1, a, 4).value, 3u);
  EXPECT_EQ(f_.read(2, a).value, 7u);
}

TEST_F(BaselineTest, CasSucceedsOnlyOnMatch) {
  const Addr a = f_.on_home(0);
  (void)f_.write(0, a, 10);
  EXPECT_EQ(f_.cas(1, a, 99, 50).value, 10u);  // Mismatch: no store.
  EXPECT_EQ(f_.read(1, a).value, 10u);
  EXPECT_EQ(f_.cas(1, a, 10, 50).value, 10u);  // Match: stored.
  EXPECT_EQ(f_.read(0, a).value, 50u);
}

TEST_F(BaselineTest, ReadMissHomeStateClassification) {
  const Addr clean = f_.on_home(0, 0);
  const Addr dirty = f_.on_home(0, 16);
  (void)f_.read(1, clean);  // Uncached -> Clean.
  (void)f_.write(1, dirty);
  (void)f_.read(2, dirty);  // Dirty at node 1 -> Dirty.
  const auto& by_state = f_.stats().read_miss_home_state;
  EXPECT_EQ(by_state[static_cast<int>(HomeStateAtMiss::kClean)], 1u);
  EXPECT_EQ(by_state[static_cast<int>(HomeStateAtMiss::kDirty)], 1u);
  EXPECT_EQ(by_state[static_cast<int>(HomeStateAtMiss::kCleanExcl)], 0u);
  EXPECT_EQ(by_state[static_cast<int>(HomeStateAtMiss::kDirtyExcl)], 0u);
}

TEST_F(BaselineTest, LastCopyReplacementUncachesBlock) {
  const Addr a = f_.on_home(1);
  (void)f_.read(0, a);
  (void)f_.read(2, a);
  f_.force_eviction(0, a);
  EXPECT_EQ(f_.dir(a).state, DirState::kShared);
  f_.force_eviction(2, a);
  EXPECT_EQ(f_.dir(a).state, DirState::kUncached);
}

}  // namespace
}  // namespace lssim
