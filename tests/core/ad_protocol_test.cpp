// The AD comparator: adaptive migratory-sharing optimization
// (Stenström/Brorsson/Sandberg ISCA'93; paper §2.1).
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace lssim {
namespace {

class AdTest : public ::testing::Test {
 protected:
  AdTest() : f_(ProtocolFixture::tiny(ProtocolKind::kAd)) {}
  ProtocolFixture f_;
};

TEST_F(AdTest, DetectsMigratorySharing) {
  const Addr a = f_.on_home(0);
  // P1: load-store; P2: load-store -> at P2's upgrade the only other copy
  // belongs to the last writer (P1): migratory detected.
  (void)f_.read(1, a);
  (void)f_.write(1, a);
  EXPECT_FALSE(f_.dir(a).tagged);  // First writer: nothing to detect yet.
  (void)f_.read(2, a);             // Read-on-dirty: {1, 2} share.
  (void)f_.write(2, a);            // Others == {last_writer=1}: tag.
  EXPECT_TRUE(f_.dir(a).tagged);
  // From now on reads migrate exclusively.
  (void)f_.read(3, a);
  EXPECT_EQ(f_.state_of(3, a), CacheState::kLStemp);
  const AccessResult w = f_.write(3, a);
  EXPECT_EQ(w.latency, 1u);
  EXPECT_EQ(f_.stats().eliminated_acquisitions, 1u);
}

TEST_F(AdTest, DoesNotTagSingleProcessorLoadStore) {
  // Paper §1: "migratory sharing techniques fail to detect single
  // load-store sequences to uncached memory blocks."
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);  // Only one copy: no detection.
  EXPECT_FALSE(f_.dir(a).tagged);
  f_.force_eviction(1, a);
  (void)f_.read(1, a);
  EXPECT_EQ(f_.state_of(1, a), CacheState::kShared);  // Not exclusive.
}

TEST_F(AdTest, DoesNotTagReplacementBrokenSequences) {
  // Paper §3.1: "if a block actually do migrate, but is replaced from the
  // owning processor's cache before being accessed by a load-store
  // sequence by another processor" AD loses the detection opportunity.
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);
  f_.force_eviction(1, a);  // Dirty copy written back, home Uncached.
  (void)f_.read(2, a);      // Cold shared read: only {2} caches it.
  (void)f_.write(2, a);     // Others empty: no migratory evidence.
  EXPECT_FALSE(f_.dir(a).tagged);
  EXPECT_EQ(f_.stats().eliminated_acquisitions, 0u);
}

TEST_F(AdTest, ThreeSharersBlockDetection) {
  const Addr a = f_.on_home(0);
  (void)f_.write(1, a);
  (void)f_.read(2, a);
  (void)f_.read(3, a);
  (void)f_.write(2, a);  // Others == {1, 3}: not migratory.
  EXPECT_FALSE(f_.dir(a).tagged);
}

TEST_F(AdTest, ForeignReadOnUnwrittenExclusiveDetags) {
  const Addr a = f_.on_home(0);
  (void)f_.write(1, a);
  (void)f_.read(2, a);
  (void)f_.write(2, a);  // Tag migratory.
  (void)f_.read(3, a);   // Exclusive (LStemp) at 3.
  (void)f_.read(0, a);   // Second reader before the write: not migratory.
  EXPECT_FALSE(f_.dir(a).tagged);
  EXPECT_EQ(f_.state_of(3, a), CacheState::kShared);
  EXPECT_EQ(f_.state_of(0, a), CacheState::kShared);
  EXPECT_TRUE(f_.ms().check_coherence_invariants());
}

TEST_F(AdTest, WriteWriteMigrationNotDetected) {
  // Dirty at the last writer, write miss from another node: the data
  // moves, but without a read-then-write pattern Stenström's detection
  // (which fires at ownership acquisitions only) stays silent.
  const Addr a = f_.on_home(0);
  (void)f_.write(1, a);
  (void)f_.write(2, a);
  EXPECT_FALSE(f_.dir(a).tagged);
}

TEST_F(AdTest, RedetectionAfterDetag) {
  const Addr a = f_.on_home(0);
  (void)f_.write(1, a);
  (void)f_.read(2, a);
  (void)f_.write(2, a);  // Tag.
  (void)f_.read(3, a);
  (void)f_.read(0, a);   // De-tag.
  EXPECT_FALSE(f_.dir(a).tagged);
  // A clean migratory episode re-detects.
  (void)f_.write(3, a);  // Invalidates sharers {0, 3}\{3} = {0}... others
                         // also include 0; last writer is 2 -> no tag yet.
  (void)f_.read(0, a);
  (void)f_.write(0, a);  // Others == {3} == {last_writer}: tag again.
  EXPECT_TRUE(f_.dir(a).tagged);
}

TEST_F(AdTest, ReplacementDropsMigratoryProperty) {
  const Addr a = f_.on_home(0);
  (void)f_.write(1, a);
  (void)f_.read(2, a);
  (void)f_.write(2, a);  // Tag migratory (dirty at 2).
  EXPECT_TRUE(f_.dir(a).tagged);
  f_.force_eviction(2, a);  // Owning copy replaced: chain broken.
  EXPECT_FALSE(f_.dir(a).tagged);
  (void)f_.read(3, a);
  EXPECT_EQ(f_.state_of(3, a), CacheState::kShared);  // Not exclusive.
}

TEST_F(AdTest, ReplacementKeepsTagWhenKnobDisabled) {
  MachineConfig cfg = ProtocolFixture::tiny(ProtocolKind::kAd);
  cfg.protocol.ad_detag_on_replacement = false;
  ProtocolFixture f(cfg);
  const Addr a = f.on_home(0);
  (void)f.write(1, a);
  (void)f.read(2, a);
  (void)f.write(2, a);  // Tag.
  f.force_eviction(2, a);
  EXPECT_TRUE(f.dir(a).tagged);
  (void)f.read(3, a);
  EXPECT_EQ(f.state_of(3, a), CacheState::kLStemp);
}

TEST_F(AdTest, MultiInvalidationUpgradeDeDetects) {
  // Stenström: a write invalidating several copies shows the block is
  // read-shared, reverting the migratory property.
  const Addr a = f_.on_home(0);
  (void)f_.write(1, a);
  (void)f_.read(2, a);
  (void)f_.write(2, a);  // Tag.
  (void)f_.read(0, a);   // De-tags (foreign read on LStemp)... re-arm:
  (void)f_.read(1, a);
  (void)f_.read(3, a);
  // Now Shared by {0, 1, 3} (and 2 was downgraded). Upgrade by 0:
  (void)f_.write(0, a);
  EXPECT_FALSE(f_.dir(a).tagged);
  EXPECT_GE(f_.stats().invalidations_sent, 2u);
}

TEST_F(AdTest, ReplacementOfSharedCopyKeepsTag) {
  const Addr a = f_.on_home(0);
  (void)f_.write(1, a);
  (void)f_.read(2, a);
  (void)f_.write(2, a);  // Tag; dirty at 2.
  (void)f_.read(3, a);   // Exclusive (LStemp) at 3, still tagged.
  EXPECT_TRUE(f_.dir(a).tagged);
  // A *shared* bystander's replacement elsewhere must not de-tag: fill
  // node 0 with an unrelated shared block in the same set and evict it.
  const Addr other = f_.on_home(0, 1024);
  (void)f_.read(0, other);
  f_.force_eviction(0, other);
  EXPECT_TRUE(f_.dir(a).tagged);
}

TEST_F(AdTest, AdNeverSendsNotLsForUntaggedBlocks) {
  const Addr a = f_.on_home(0);
  (void)f_.read(1, a);
  (void)f_.write(1, a);
  (void)f_.read(2, a);
  EXPECT_EQ(f_.stats().notls_messages, 0u);
}

}  // namespace
}  // namespace lssim
