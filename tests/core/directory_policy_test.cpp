// DirectoryPolicy unit tests: the four organisations' sharer-word
// encodings exercised directly on a DirEntry (no protocol engine), plus
// the name-keyed registry the driver and manifests resolve through.
// Protocol-visible behaviour of each organisation lives in
// limited_directory_test.cpp / sparse_directory_test.cpp and the
// cross-organization equivalence suite under tests/check/.
#include "core/directory_policy.hpp"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/directories/coarse_vector_directory.hpp"
#include "core/directories/full_map_directory.hpp"
#include "core/directories/limited_ptr_directory.hpp"
#include "core/directories/sparse_directory.hpp"
#include "core/directory_registry.hpp"

namespace lssim {
namespace {

std::vector<int> nodes_of(const SharerSet& set) {
  std::vector<int> out;
  set.for_each([&](NodeId n) { out.push_back(n); });
  return out;
}

// --- Full-map: exact presence bitmap, believed == actual always. ---

TEST(FullMapPolicy, BitmapIsExactAndNeverImprecise) {
  FullMapDirectory policy;
  DirEntry e;
  policy.add_sharer(e, 0);
  policy.add_sharer(e, 5);
  policy.add_sharer(e, 63);
  policy.add_sharer(e, 5);  // Idempotent.
  EXPECT_EQ(e.sharers, (1ull << 0) | (1ull << 5) | (1ull << 63));
  EXPECT_FALSE(e.imprecise);
  EXPECT_EQ(nodes_of(policy.believed_sharers(e)),
            (std::vector<int>{0, 5, 63}));
  EXPECT_TRUE(policy.may_be_sharer(e, 5));
  EXPECT_FALSE(policy.may_be_sharer(e, 6));

  policy.remove_sharer(e, 5);
  EXPECT_FALSE(policy.may_be_sharer(e, 5));
  policy.remove_sharer(e, 0);
  policy.remove_sharer(e, 63);
  EXPECT_TRUE(policy.believed_empty(e));
  EXPECT_EQ(policy.max_entries(), 0u) << "full-map is unbounded";
}

// --- Limited-pointer Dir_iB. ---

TEST(LimitedPtrPolicy, StoresRealPointersUpToTheLimit) {
  LimitedPtrDirectory policy(/*pointers=*/3, /*num_nodes=*/16);
  DirEntry e;
  policy.add_sharer(e, 9);
  policy.add_sharer(e, 2);
  policy.add_sharer(e, 14);
  policy.add_sharer(e, 2);  // Duplicate: must not burn a slot.
  EXPECT_FALSE(e.imprecise);
  EXPECT_EQ(nodes_of(policy.believed_sharers(e)),
            (std::vector<int>{2, 9, 14}));
  EXPECT_TRUE(policy.may_be_sharer(e, 14));
  EXPECT_FALSE(policy.may_be_sharer(e, 3));
}

TEST(LimitedPtrPolicy, OverflowTurnsImpreciseAndBroadcasts) {
  LimitedPtrDirectory policy(/*pointers=*/2, /*num_nodes=*/8);
  DirEntry e;
  policy.add_sharer(e, 1);
  policy.add_sharer(e, 2);
  EXPECT_FALSE(e.imprecise);
  policy.add_sharer(e, 3);  // Third sharer, two pointers: overflow.
  EXPECT_TRUE(e.imprecise);
  // Believed set becomes every node in the machine — a superset of the
  // actual {1, 2, 3} — and stays that way.
  EXPECT_EQ(policy.believed_sharers(e).count(), 8);
  EXPECT_TRUE(policy.may_be_sharer(e, 7));
  EXPECT_FALSE(policy.may_be_sharer(e, 8)) << "bounded by the machine";
  // Replacement hints cannot shrink an overflowed set.
  policy.remove_sharer(e, 1);
  EXPECT_EQ(policy.believed_sharers(e).count(), 8);
  EXPECT_FALSE(policy.believed_empty(e));
  // Invalidation targets exclude the requester itself.
  EXPECT_EQ(policy.invalidation_targets(e, 4).count(), 7);
  EXPECT_FALSE(policy.invalidation_targets(e, 4).test(4));
  // clear_sharers (ownership transfer) re-precises the entry.
  policy.clear_sharers(e);
  EXPECT_TRUE(policy.believed_empty(e));
  EXPECT_FALSE(e.imprecise);
}

TEST(LimitedPtrPolicy, RemoveCompactsPointerSlots) {
  LimitedPtrDirectory policy(/*pointers=*/4, /*num_nodes=*/32);
  DirEntry e;
  for (NodeId n : {10, 20, 30}) policy.add_sharer(e, n);
  policy.remove_sharer(e, 10);  // Last pointer (30) moves into slot 0.
  EXPECT_EQ(nodes_of(policy.believed_sharers(e)),
            (std::vector<int>{20, 30}));
  policy.add_sharer(e, 10);  // Freed slot is reusable without overflow.
  policy.add_sharer(e, 11);
  EXPECT_FALSE(e.imprecise);
  EXPECT_EQ(policy.believed_sharers(e).count(), 4);
  policy.remove_sharer(e, 20);
  policy.remove_sharer(e, 30);
  policy.remove_sharer(e, 10);
  policy.remove_sharer(e, 11);
  EXPECT_TRUE(policy.believed_empty(e));
}

// --- Coarse bit-vector. ---

TEST(CoarsePolicy, RegionOneDegeneratesToFullMap) {
  CoarseVectorDirectory policy(/*region=*/1, /*num_nodes=*/64);
  DirEntry e;
  policy.add_sharer(e, 5);
  policy.add_sharer(e, 41);
  EXPECT_FALSE(e.imprecise);
  EXPECT_EQ(e.sharers, (1ull << 5) | (1ull << 41));
  policy.remove_sharer(e, 5);  // Exact regions honour hints.
  EXPECT_EQ(nodes_of(policy.believed_sharers(e)), (std::vector<int>{41}));
}

TEST(CoarsePolicy, RegionBitsCoverWholeRegions) {
  CoarseVectorDirectory policy(/*region=*/4, /*num_nodes=*/16);
  DirEntry e;
  policy.add_sharer(e, 6);  // Region 1 = nodes 4..7.
  EXPECT_TRUE(e.imprecise);
  EXPECT_EQ(nodes_of(policy.believed_sharers(e)),
            (std::vector<int>{4, 5, 6, 7}));
  EXPECT_TRUE(policy.may_be_sharer(e, 4)) << "same region as 6";
  EXPECT_FALSE(policy.may_be_sharer(e, 8));
  // Hints cannot clear a region bit: node 7 may still hold the block.
  policy.remove_sharer(e, 6);
  EXPECT_EQ(policy.believed_sharers(e).count(), 4);
  EXPECT_FALSE(policy.believed_empty(e));
  policy.clear_sharers(e);
  EXPECT_TRUE(policy.believed_empty(e));
  EXPECT_FALSE(e.imprecise);
}

TEST(CoarsePolicy, AutoRegionCoversMachinesPast64Nodes) {
  // region == 0 -> ceil(num_nodes / 64): 128 nodes need 2-node regions.
  CoarseVectorDirectory policy(/*region=*/0, /*num_nodes=*/128);
  DirEntry e;
  policy.add_sharer(e, 127);
  EXPECT_TRUE(e.imprecise);
  EXPECT_EQ(nodes_of(policy.believed_sharers(e)),
            (std::vector<int>{126, 127}));
  // The believed set is clipped to the machine: the last region of a
  // 100-node machine with auto regions covers only existing nodes.
  CoarseVectorDirectory clipped(/*region=*/0, /*num_nodes=*/100);
  DirEntry f;
  clipped.add_sharer(f, 99);
  EXPECT_EQ(nodes_of(clipped.believed_sharers(f)),
            (std::vector<int>{98, 99}));
}

// --- Sparse directory: coarse encoding + bounded entry population. ---

TEST(SparsePolicy, BoundsTheEntryPopulation) {
  SparseDirectory policy(/*entries=*/256, /*num_nodes=*/64);
  EXPECT_EQ(policy.kind(), DirectoryKind::kSparse);
  EXPECT_EQ(policy.max_entries(), 256u);
  // Auto-sized default and inherited exact encoding at <= 64 nodes.
  EXPECT_EQ(SparseDirectory(0, 64).max_entries(),
            SparseDirectory::kDefaultEntries);
  DirEntry e;
  policy.add_sharer(e, 17);
  EXPECT_FALSE(e.imprecise) << "64-node sparse uses exact 1-node regions";
  EXPECT_EQ(nodes_of(policy.believed_sharers(e)), (std::vector<int>{17}));
}

// --- Registry. ---

TEST(DirectoryRegistry, EveryKindIsRegisteredInOrder) {
  const auto all = registered_directories();
  ASSERT_EQ(all.size(), all_directory_kinds().size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].kind, all_directory_kinds()[i]);
    EXPECT_STREQ(all[i].name, directory_name(all[i].kind));
    EXPECT_NE(all[i].summary, nullptr);
    EXPECT_NE(all[i].make, nullptr);
    EXPECT_EQ(&directory_info(all[i].kind), &all[i]);
  }
}

TEST(DirectoryRegistry, FindResolvesNamesAndAliasesCaseInsensitively) {
  const struct {
    const char* name;
    DirectoryKind kind;
  } cases[] = {
      {"full-map", DirectoryKind::kFullMap},
      {"fullmap", DirectoryKind::kFullMap},
      {"FULL", DirectoryKind::kFullMap},
      {"limited-ptr", DirectoryKind::kLimitedPtr},
      {"dir-ib", DirectoryKind::kLimitedPtr},
      {"DirIB", DirectoryKind::kLimitedPtr},
      {"coarse-vector", DirectoryKind::kCoarseVector},
      {"region", DirectoryKind::kCoarseVector},
      {"sparse", DirectoryKind::kSparse},
      {"directory-cache", DirectoryKind::kSparse},
      {"dir-cache", DirectoryKind::kSparse},
  };
  for (const auto& c : cases) {
    const DirectoryInfo* info = find_directory(c.name);
    ASSERT_NE(info, nullptr) << c.name;
    EXPECT_EQ(info->kind, c.kind) << c.name;
  }
  EXPECT_EQ(find_directory("mesif"), nullptr);
  EXPECT_EQ(find_directory(""), nullptr);
}

TEST(DirectoryRegistry, RegisteredNamesListsEveryOrganisation) {
  const std::string names = registered_directory_names();
  for (const char* expected :
       {"full-map", "limited-ptr", "coarse", "sparse"}) {
    EXPECT_NE(names.find(expected), std::string::npos) << names;
  }
}

TEST(DirectoryRegistry, FactoryHonoursMachineKnobs) {
  MachineConfig config;
  config.num_nodes = 8;
  config.directory_scheme = DirectoryKind::kLimitedPtr;
  config.directory_pointers = 2;
  std::unique_ptr<DirectoryPolicy> policy = make_directory_policy(config);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->kind(), DirectoryKind::kLimitedPtr);
  DirEntry e;
  policy->add_sharer(e, 0);
  policy->add_sharer(e, 1);
  policy->add_sharer(e, 2);  // Third sharer overflows 2 pointers.
  EXPECT_TRUE(e.imprecise);
  EXPECT_EQ(policy->believed_sharers(e).count(), config.num_nodes);

  config.directory_scheme = DirectoryKind::kSparse;
  config.directory_entries = 32;
  EXPECT_EQ(make_directory_policy(config)->max_entries(), 32u);
  config.directory_scheme = DirectoryKind::kFullMap;
  EXPECT_EQ(make_directory_policy(config)->kind(), DirectoryKind::kFullMap);
}

}  // namespace
}  // namespace lssim
