// SharerSet: the decoded, organisation-independent sharer answer.
#include "core/sharer_set.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace lssim {
namespace {

TEST(SharerSet, StartsEmpty) {
  const SharerSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  for (int n = 0; n < kMaxNodes; ++n) {
    EXPECT_FALSE(s.test(static_cast<NodeId>(n)));
  }
}

TEST(SharerSet, SetResetTestAcrossAllWords) {
  SharerSet s;
  // One node in each of the four 64-bit words, including both ends.
  const NodeId picks[] = {0, 63, 64, 127, 128, 200, 255};
  for (NodeId n : picks) s.set(n);
  EXPECT_EQ(s.count(), 7);
  for (NodeId n : picks) EXPECT_TRUE(s.test(n)) << int(n);
  EXPECT_FALSE(s.test(1));
  EXPECT_FALSE(s.test(129));
  s.reset(127);
  s.reset(0);
  EXPECT_EQ(s.count(), 5);
  EXPECT_FALSE(s.test(127));
  EXPECT_TRUE(s.test(128));
}

TEST(SharerSet, FirstNCoversExactlyTheMachine) {
  for (int count : {0, 1, 63, 64, 65, 128, 200, 256}) {
    const SharerSet s = SharerSet::first_n(count);
    EXPECT_EQ(s.count(), count);
    for (int n = 0; n < kMaxNodes; ++n) {
      EXPECT_EQ(s.test(static_cast<NodeId>(n)), n < count)
          << "count " << count << " node " << n;
    }
  }
}

TEST(SharerSet, FromBitmapMatchesFullMapEncoding) {
  const std::uint64_t bits = (1ull << 0) | (1ull << 5) | (1ull << 63);
  const SharerSet s = SharerSet::from_bitmap(bits);
  EXPECT_EQ(s.count(), 3);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(5));
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(64));
}

TEST(SharerSet, ForEachVisitsAscending) {
  SharerSet s;
  s.set(200);
  s.set(3);
  s.set(64);
  s.set(63);
  std::vector<int> seen;
  s.for_each([&](NodeId n) { seen.push_back(n); });
  EXPECT_EQ(seen, (std::vector<int>{3, 63, 64, 200}));
}

TEST(SharerSet, ContainsIsSupersetTest) {
  SharerSet super = SharerSet::first_n(100);
  SharerSet sub;
  sub.set(2);
  sub.set(99);
  EXPECT_TRUE(super.contains(sub));
  EXPECT_FALSE(sub.contains(super));
  sub.set(100);
  EXPECT_FALSE(super.contains(sub));
  // Every set contains the empty set and itself.
  EXPECT_TRUE(sub.contains(SharerSet{}));
  EXPECT_TRUE(sub.contains(sub));
}

TEST(SharerSet, SetOperationsAndEquality) {
  SharerSet a;
  a.set(1);
  a.set(70);
  SharerSet b;
  b.set(70);
  b.set(140);
  SharerSet u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3);
  SharerSet i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1);
  EXPECT_TRUE(i.test(70));
  SharerSet c;
  c.set(70);
  EXPECT_EQ(i, c);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace lssim
