#include "core/directory.hpp"

#include <gtest/gtest.h>

namespace lssim {
namespace {

TEST(Directory, EntriesStartUncachedUntagged) {
  Directory dir;
  const DirEntry& e = dir.entry(0x100);
  EXPECT_EQ(e.state, DirState::kUncached);
  EXPECT_FALSE(e.tagged);
  EXPECT_EQ(e.owner, kInvalidNode);
  EXPECT_EQ(e.last_reader, kInvalidNode);
  EXPECT_EQ(e.last_writer, kInvalidNode);
  EXPECT_EQ(e.sharer_count(), 0);
}

TEST(Directory, DefaultTaggedVariation) {
  Directory dir(/*default_tagged=*/true);
  EXPECT_TRUE(dir.entry(0x100).tagged);
}

TEST(Directory, EntryPersists) {
  Directory dir;
  dir.entry(0x40).tagged = true;
  EXPECT_TRUE(dir.entry(0x40).tagged);
  EXPECT_EQ(dir.size(), 1u);
}

TEST(Directory, FindDoesNotCreate) {
  Directory dir;
  EXPECT_EQ(dir.find(0x40), nullptr);
  EXPECT_EQ(dir.size(), 0u);
  (void)dir.entry(0x40);
  EXPECT_NE(dir.find(0x40), nullptr);
}

TEST(DirEntry, SharerBitmapOperations) {
  DirEntry e;
  e.add_sharer(0);
  e.add_sharer(5);
  e.add_sharer(63);
  EXPECT_EQ(e.sharer_count(), 3);
  EXPECT_TRUE(e.is_sharer(0));
  EXPECT_TRUE(e.is_sharer(5));
  EXPECT_TRUE(e.is_sharer(63));
  EXPECT_FALSE(e.is_sharer(1));
  e.remove_sharer(5);
  EXPECT_EQ(e.sharer_count(), 2);
  EXPECT_FALSE(e.is_sharer(5));
  e.add_sharer(0);  // Idempotent.
  EXPECT_EQ(e.sharer_count(), 2);
}

TEST(Directory, ForEachVisitsAllEntries) {
  Directory dir;
  (void)dir.entry(0x10);
  (void)dir.entry(0x20);
  (void)dir.entry(0x30);
  int count = 0;
  dir.for_each([&](Addr, const DirEntry&) { ++count; });
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace lssim
