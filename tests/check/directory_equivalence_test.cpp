// Cross-organization equivalence: the directory organisation changes
// *cost* (invalidation fan-out, entry evictions), never *meaning*.
// Randomized traces replayed under all four organisations and all five
// protocols must stay invariant-clean, and because the checker's
// data-value invariant compares every loaded value against one
// organisation-independent sequentially-consistent reference memory,
// trailing reads of every touched location prove the final memory
// values are identical across organisations too.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/trace_runner.hpp"
#include "core/protocol_registry.hpp"
#include "sim/rng.hpp"

namespace lssim::check {
namespace {

// One organisation variant as applied to a trace's machine config. The
// knobs are deliberately hostile on a tiny machine: 2 pointers overflow
// as soon as a third sharer appears, 2-node regions make every sharer
// record imprecise, and 3 entries force constant eviction churn.
struct OrgVariant {
  const char* label;
  DirectoryKind kind;
  std::uint8_t pointers = 4;
  std::uint16_t region = 0;
  std::uint32_t entries = 0;
};

constexpr OrgVariant kOrgs[] = {
    {"full-map", DirectoryKind::kFullMap},
    {"limited-ptr(2)", DirectoryKind::kLimitedPtr, 2},
    {"coarse(region=2)", DirectoryKind::kCoarseVector, 4, 2},
    {"sparse(entries=3)", DirectoryKind::kSparse, 4, 0, 3},
};

void apply(const OrgVariant& org, MachineConfig* machine) {
  machine->directory_scheme = org.kind;
  machine->directory_pointers = org.pointers;
  machine->directory_region = org.region;
  machine->directory_entries = org.entries;
}

/// A random trace over `blocks` contended locations, closed by a read
/// of every touched address so the data-value invariant pins the final
/// memory state.
ReproTrace random_trace(std::uint64_t seed, int nodes, int blocks,
                        int length, ProtocolKind kind) {
  Rng rng(seed);
  ReproTrace trace;
  trace.machine = tiny_machine(nodes, kind);
  std::vector<Addr> addrs;
  for (int b = 0; b < blocks; ++b) {
    // Two 8-byte words per block so false sharing happens too.
    addrs.push_back(verification_block(trace.machine, b));
    addrs.push_back(verification_block(trace.machine, b) + 8);
  }
  for (int i = 0; i < length; ++i) {
    ReproAccess a;
    a.node = static_cast<NodeId>(rng.next_below(nodes));
    a.addr = addrs[rng.next_below(addrs.size())];
    a.size = 8;
    switch (rng.next_below(8)) {
      case 0:
      case 1:
      case 2:
        a.op = MemOpKind::kRead;
        break;
      case 3:
      case 4:
        a.op = MemOpKind::kWrite;
        a.wdata = rng.next();
        break;
      case 5:
        a.op = MemOpKind::kFetchAdd;
        a.wdata = 1;
        break;
      case 6:
        a.op = MemOpKind::kSwap;
        a.wdata = rng.next();
        break;
      default:
        a.op = MemOpKind::kCas;
        a.expected = rng.next_below(4);
        a.wdata = rng.next();
        break;
    }
    trace.accesses.push_back(a);
  }
  // Closing reads, spread across nodes: every location's final value is
  // checked against the reference memory on every replay.
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    ReproAccess a;
    a.op = MemOpKind::kRead;
    a.node = static_cast<NodeId>(i % nodes);
    a.addr = addrs[i];
    a.size = 8;
    trace.accesses.push_back(a);
  }
  return trace;
}

std::string violation_digest(const TraceRunResult& result) {
  std::string out;
  for (const Violation& v : result.violations) {
    out += v.message() + "\n";
  }
  return out;
}

TEST(DirectoryEquivalence, AllOrganizationsAllProtocolsInvariantClean) {
  for (ProtocolKind kind : all_protocol_kinds()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      ReproTrace trace = random_trace(seed, /*nodes=*/4, /*blocks=*/5,
                                      /*length=*/300, kind);
      for (const OrgVariant& org : kOrgs) {
        apply(org, &trace.machine);
        const TraceRunResult result = run_trace(trace);
        EXPECT_TRUE(result.ok())
            << protocol_name(kind) << " under " << org.label << " seed "
            << seed << ":\n"
            << violation_digest(result);
        EXPECT_EQ(result.accesses, trace.accesses.size());
      }
    }
  }
}

TEST(DirectoryEquivalence, SingleNodePointerStormSurvivesOverflowReclaim) {
  // Directed at the Dir_iB corner the fuzzer found hardest: a block that
  // overflows, loses every real copy through replacements, then gets
  // re-written — the stale imprecise entry must not confuse any
  // protocol. High write share makes clear_sharers/overflow alternate.
  for (ProtocolKind kind : all_protocol_kinds()) {
    ReproTrace trace = random_trace(99, /*nodes=*/4, /*blocks=*/2,
                                    /*length=*/200, kind);
    apply(kOrgs[1], &trace.machine);  // limited-ptr, 2 pointers.
    trace.machine.directory_pointers = 1;
    const TraceRunResult result = run_trace(trace);
    EXPECT_TRUE(result.ok())
        << protocol_name(kind) << ":\n" << violation_digest(result);
  }
}

// The road past 64 nodes: a 128-node machine (beyond any full-map
// bitmap) must run end-to-end, invariant-checked, under both scalable
// organisations. This is the tier-1 stand-in for the bench-level
// sweep_directory_nodes run.
TEST(DirectoryEquivalence, OneHundredTwentyEightNodeSmoke) {
  const OrgVariant big_orgs[] = {
      {"limited-ptr(4)", DirectoryKind::kLimitedPtr, 4},
      {"coarse(auto)", DirectoryKind::kCoarseVector, 4, 0},
  };
  for (const OrgVariant& org : big_orgs) {
    ReproTrace trace = random_trace(7, /*nodes=*/128, /*blocks=*/6,
                                    /*length=*/600, ProtocolKind::kLsAd);
    apply(org, &trace.machine);
    ASSERT_EQ(trace.machine.validate(), "");
    const TraceRunResult result = run_trace(trace);
    EXPECT_TRUE(result.ok())
        << org.label << ":\n" << violation_digest(result);
    EXPECT_EQ(result.accesses, trace.accesses.size());
  }
}

TEST(DirectoryEquivalence, FullMapRefusesMachinesPast64Nodes) {
  MachineConfig machine = tiny_machine(128, ProtocolKind::kBaseline);
  machine.directory_scheme = DirectoryKind::kFullMap;
  const std::string error = machine.validate();
  EXPECT_NE(error.find("full-map"), std::string::npos) << error;
}

}  // namespace
}  // namespace lssim::check
