// Fuzzer and shrinker: fixed-seed sweeps stay green over all registered
// protocols, determinism holds (same seed, same result), and the ddmin
// shrinker reduces an injected-fault failure to the known-minimal
// 4-access repro. Seeds here are pinned — a failure is a regression, not
// flakiness; exploratory seeds belong in `lssim_fuzz fuzz`.
#include "check/fuzzer.hpp"

#include <gtest/gtest.h>

#include "core/protocol_registry.hpp"

namespace lssim::check {
namespace {

TEST(Fuzzer, FixedSeedSweepIsCleanAcrossProtocols) {
  FuzzOptions options;
  options.seed = 2026;
  options.iterations = 150;
  const FuzzResult result = run_fuzzer(options);
  EXPECT_TRUE(result.ok()) << (result.messages.empty()
                                   ? "?"
                                   : result.messages.front());
  EXPECT_EQ(result.traces, 150u);
  EXPECT_EQ(result.accesses, 150u * 48u);
}

TEST(Fuzzer, SameSeedIsDeterministic) {
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 40;
  const FuzzResult a = run_fuzzer(options);
  const FuzzResult b = run_fuzzer(options);
  EXPECT_EQ(a.traces, b.traces);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.failing_traces, b.failing_traces);
}

TEST(Fuzzer, PinnedKnobSweepIsClean) {
  // randomize_knobs off pins the paper-default knobs — the configuration
  // the LS tag model checks most strictly.
  FuzzOptions options;
  options.seed = 99;
  options.iterations = 100;
  options.randomize_knobs = false;
  options.protocols = {ProtocolKind::kLs, ProtocolKind::kLsAd};
  const FuzzResult result = run_fuzzer(options);
  EXPECT_TRUE(result.ok()) << (result.messages.empty()
                                   ? "?"
                                   : result.messages.front());
}

TEST(Fuzzer, InjectedFaultIsCaughtAndShrunkSmall) {
  // The acceptance bar from the verification plan: a policy that skips
  // the §3.1 de-tag rule must be caught with a shrunk repro of at most
  // 12 accesses (the known-minimal repro is 4).
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 50;
  options.trace_length = 32;
  options.randomize_knobs = false;
  options.protocols = {ProtocolKind::kLs};
  options.max_failures = 1;
  const FuzzResult result = run_fuzzer(options, skip_detag_policy_factory());
  ASSERT_GT(result.failing_traces, 0u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_LE(result.failures.front().accesses.size(), 12u);
  ASSERT_FALSE(result.messages.empty());
  EXPECT_NE(result.messages.front().find("ls-tag"), std::string::npos);
}

TEST(Shrinker, ProducesOneMinimalRepro) {
  // Start from a failing trace padded with noise; ddmin must strip every
  // removable access (1-minimal: removing any single access un-fails).
  ReproTrace padded;
  padded.machine = tiny_machine(3);
  const Addr b0 = verification_block(padded.machine, 0);
  const Addr b1 = verification_block(padded.machine, 1);
  padded.accesses = {
      {2, MemOpKind::kRead, b1, 8, 0, 0},      // Noise.
      {0, MemOpKind::kRead, b0, 8, 0, 0},      // Establish LR = 0.
      {1, MemOpKind::kWrite, b1, 8, 0x3, 0},   // Noise.
      {0, MemOpKind::kWrite, b0, 8, 0x1, 0},   // Tag (LR == writer).
      {2, MemOpKind::kRead, b1, 8, 0, 0},      // Noise.
      {1, MemOpKind::kRead, b0, 8, 0, 0},      // Exclusive grant to 1.
      {0, MemOpKind::kRead, b0, 8, 0, 0},      // Foreign read: must de-tag.
  };
  const CheckerOptions checker{.full_scan_interval = 1};
  ASSERT_FALSE(run_trace(padded, skip_detag_policy_factory(), checker).ok());

  const ReproTrace shrunk =
      shrink_repro(padded, skip_detag_policy_factory(), checker);
  EXPECT_EQ(shrunk.accesses.size(), 4u);
  ASSERT_FALSE(run_trace(shrunk, skip_detag_policy_factory(), checker).ok());
  for (std::size_t drop = 0; drop < shrunk.accesses.size(); ++drop) {
    ReproTrace thinner;
    thinner.machine = shrunk.machine;
    for (std::size_t i = 0; i < shrunk.accesses.size(); ++i) {
      if (i != drop) thinner.accesses.push_back(shrunk.accesses[i]);
    }
    EXPECT_TRUE(run_trace(thinner, skip_detag_policy_factory(), checker).ok())
        << "shrunk repro not 1-minimal: access " << drop << " is removable";
  }
}

TEST(Shrinker, PassingTraceIsReturnedUnchanged) {
  ReproTrace trace;
  trace.machine = tiny_machine(2);
  trace.accesses = {{0, MemOpKind::kRead, 0, 8, 0, 0}};
  const ReproTrace out = shrink_repro(trace);
  EXPECT_EQ(out.accesses, trace.accesses);
}

}  // namespace
}  // namespace lssim::check
