// Exhaustive explorer: every registered protocol survives the full
// bounded interleaving enumeration on tiny configs (including the §5.5
// knob variations), and an injected policy fault is found and reported
// as a truncated repro. Depths are kept small: the CI-sized sweeps live
// in tools/lssim_fuzz explore.
#include "check/explorer.hpp"

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "core/protocol_registry.hpp"

namespace lssim::check {
namespace {

TEST(Explorer, AllProtocolsPassDefaultEnumeration) {
  ExplorerOptions options;
  options.depth = 3;  // (2 ops * 2 nodes * 2 blocks)^3 per protocol.
  const ExplorerResult result = run_explorer(options);
  EXPECT_TRUE(result.ok()) << (result.messages.empty()
                                   ? "?"
                                   : result.messages.front());
  // 8^3 sequences for each of the five registered protocols.
  EXPECT_EQ(result.sequences, 512u * registered_protocols().size());
  EXPECT_EQ(result.accesses, result.sequences * 3);
}

TEST(Explorer, ThreeNodesSingleBlockPasses) {
  ExplorerOptions options;
  options.machine = tiny_machine(3);
  options.num_blocks = 1;
  options.depth = 4;
  const ExplorerResult result = run_explorer(options);
  EXPECT_TRUE(result.ok()) << (result.messages.empty()
                                   ? "?"
                                   : result.messages.front());
}

TEST(Explorer, KnobVariationsPass) {
  // The §5.5 knobs change tag/de-tag behaviour; the invariants (and the
  // LS tag model's own gating) must hold under each variation.
  for (int variant = 0; variant < 4; ++variant) {
    ExplorerOptions options;
    options.depth = 3;
    switch (variant) {
      case 0: options.machine.protocol.default_tagged = true; break;
      case 1: options.machine.protocol.tag_hysteresis = 2; break;
      case 2: options.machine.protocol.keep_tag_on_lone_write = true; break;
      case 3:
        options.machine.directory_scheme = DirectoryKind::kLimitedPtr;
        options.machine.directory_pointers = 1;
        break;
    }
    const ExplorerResult result = run_explorer(options);
    EXPECT_TRUE(result.ok())
        << "variant " << variant << ": "
        << (result.messages.empty() ? "?" : result.messages.front());
  }
}

TEST(Explorer, InjectedFaultIsFoundAndTruncated) {
  ExplorerOptions options;
  options.protocols = {ProtocolKind::kLs};
  options.machine = tiny_machine(3);
  options.depth = 4;
  options.max_failures = 2;
  const ExplorerResult result =
      run_explorer(options, skip_detag_policy_factory());
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(result.failures.size(), 2u);
  EXPECT_EQ(result.messages.size(), 2u);
  for (const ReproTrace& repro : result.failures) {
    // Truncated right after the first violating access, so replaying the
    // repro must still fail — on its last access.
    EXPECT_LE(repro.accesses.size(), 4u);
    const TraceRunResult replay =
        run_trace(repro, skip_detag_policy_factory(), options.checker);
    ASSERT_FALSE(replay.ok());
    EXPECT_EQ(replay.violations.front().access_index, repro.accesses.size());
  }
}

}  // namespace
}  // namespace lssim::check
