// Checked-in repro traces (tests/check/repros/*.repro) replayed under
// the invariant checker, plus round-trip coverage of the text format.
// Each repro pins a protocol corner the verification subsystem once had
// to reason about carefully; they must stay green under the real
// policies, and the foreign-read repro must keep tripping the checker
// under the deliberately broken skip-de-tag policy — proving the trace
// still exercises the rule it was written for.
#include "check/repro.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "check/trace_runner.hpp"

namespace lssim::check {
namespace {

constexpr CheckerOptions kStrict{.full_scan_interval = 1};

std::string repro_path(const char* name) {
  return std::string(LSSIM_REPRO_DIR) + "/" + name;
}

TEST(ReproRegression, DetagOnForeignReadBeforeOwningWrite) {
  const ReproTrace trace =
      load_repro_file(repro_path("detag-on-foreign-read.repro"));
  ASSERT_EQ(trace.accesses.size(), 4u);
  EXPECT_EQ(trace.machine.protocol.kind, ProtocolKind::kLs);
  const TraceRunResult run = run_trace(trace, {}, kStrict);
  EXPECT_TRUE(run.ok()) << run.violations.front().message();

  // The trace is load-bearing: the policy that forgets the §3.1 de-tag
  // rule must fail it, on the foreign read itself.
  const TraceRunResult broken =
      run_trace(trace, skip_detag_policy_factory(), kStrict);
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.violations.front().invariant, "ls-tag");
  EXPECT_EQ(broken.violations.front().access_index, 4u);
}

TEST(ReproRegression, NotLsRaceWithReplacementAndForeignWrite) {
  const ReproTrace trace = load_repro_file(repro_path("notls-race.repro"));
  ASSERT_EQ(trace.accesses.size(), 6u);
  EXPECT_EQ(trace.machine.num_nodes, 3);
  const TraceRunResult run = run_trace(trace, {}, kStrict);
  EXPECT_TRUE(run.ok()) << run.violations.front().message();
}

TEST(ReproRegression, LsAdFallbackAtUpgrade) {
  const ReproTrace trace =
      load_repro_file(repro_path("lsad-upgrade-fallback.repro"));
  ASSERT_EQ(trace.machine.protocol.kind, ProtocolKind::kLsAd);
  const TraceRunResult run = run_trace(trace, {}, kStrict);
  EXPECT_TRUE(run.ok()) << run.violations.front().message();
}

TEST(ReproRegression, DragonUpdatePropagationOverImpreciseDirectory) {
  const ReproTrace trace =
      load_repro_file(repro_path("dragon-update-propagation.repro"));
  ASSERT_EQ(trace.accesses.size(), 4u);
  EXPECT_EQ(trace.machine.protocol.kind, ProtocolKind::kLsDragon);
  EXPECT_EQ(trace.machine.directory_scheme, DirectoryKind::kLimitedPtr);
  EXPECT_EQ(trace.machine.interconnect, InterconnectKind::kNetwork);
  const TraceRunResult run = run_trace(trace, {}, kStrict);
  EXPECT_TRUE(run.ok()) << run.violations.front().message();

  // The trace is load-bearing: re-injecting the historical bug (the
  // write-update fan-out trusting the believed sharer set instead of
  // probing each target cache) must trip the directory/cache agreement
  // sweep on the final write, which re-records the silently-evicted
  // node 0 as a sharer of the precise Owned entry.
  ReproTrace injected = trace;
  injected.machine.protocol.trust_update_sharers = true;
  const TraceRunResult broken = run_trace(injected, {}, kStrict);
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.violations.front().invariant, "dir-cache-agreement");
  EXPECT_EQ(broken.violations.front().access_index, 4u);

  // Same stimulus, same injected bug, snooping transport: the invariant
  // is transport-independent and must fire on the bus too.
  injected.machine.interconnect = InterconnectKind::kBus;
  const TraceRunResult bus_broken = run_trace(injected, {}, kStrict);
  ASSERT_FALSE(bus_broken.ok());
  EXPECT_EQ(bus_broken.violations.front().invariant, "dir-cache-agreement");
}

TEST(ReproFormat, SaveLoadRoundTripsExactly) {
  ReproTrace trace;
  trace.machine = tiny_machine(4, ProtocolKind::kLsAd);
  trace.machine.protocol.default_tagged = true;
  trace.machine.protocol.tag_hysteresis = 2;
  trace.machine.protocol.keep_tag_on_lone_write = true;
  trace.machine.directory_scheme = DirectoryKind::kLimitedPtr;
  trace.machine.directory_pointers = 2;
  trace.machine.directory_region = 3;
  trace.machine.directory_entries = 7;
  trace.machine.interconnect = InterconnectKind::kBus;
  trace.machine.bus_arbitration = BusArbitration::kRoundRobin;
  trace.accesses = {
      {0, MemOpKind::kRead, 0x0, 8, 0, 0},
      {3, MemOpKind::kWrite, 0x40, 8, 0xdeadbeef, 0},
      {1, MemOpKind::kCas, 0x48, 8, 0x1, 0x2},
      {2, MemOpKind::kFetchAdd, 0x0, 4, 0x10, 0},
  };

  std::stringstream ss;
  save_repro(ss, trace);
  const ReproTrace loaded = load_repro(ss);

  EXPECT_EQ(loaded.machine.protocol.kind, trace.machine.protocol.kind);
  EXPECT_EQ(loaded.machine.num_nodes, trace.machine.num_nodes);
  EXPECT_EQ(loaded.machine.l2.block_bytes, trace.machine.l2.block_bytes);
  EXPECT_EQ(loaded.machine.protocol.default_tagged, true);
  EXPECT_EQ(loaded.machine.protocol.tag_hysteresis, 2);
  EXPECT_EQ(loaded.machine.protocol.keep_tag_on_lone_write, true);
  EXPECT_EQ(loaded.machine.directory_scheme, DirectoryKind::kLimitedPtr);
  EXPECT_EQ(loaded.machine.directory_pointers, 2);
  EXPECT_EQ(loaded.machine.directory_region, 3);
  EXPECT_EQ(loaded.machine.directory_entries, 7u);
  EXPECT_EQ(loaded.machine.interconnect, InterconnectKind::kBus);
  EXPECT_EQ(loaded.machine.bus_arbitration, BusArbitration::kRoundRobin);
  EXPECT_EQ(loaded.accesses, trace.accesses);
}

TEST(ReproFormat, MalformedInputsFailWithLineNumbers) {
  const auto load_text = [](const char* text) {
    std::stringstream ss(text);
    return load_repro(ss);
  };
  EXPECT_THROW((void)load_text("not a repro\n"), std::runtime_error);
  EXPECT_THROW((void)load_text("lssim-repro v1\n"), std::runtime_error);
  EXPECT_THROW(
      (void)load_text("lssim-repro v1\nprotocol Bogus\nend\n"),
      std::runtime_error);
  EXPECT_THROW(
      (void)load_text("lssim-repro v1\naccess 0 R zzz\nend\n"),
      std::runtime_error);
  EXPECT_THROW(
      (void)load_text("lssim-repro v1\naccess 0 R 0x0 3 0x0\nend\n"),
      std::runtime_error);
}

}  // namespace
}  // namespace lssim::check
