// The invariant layer itself: clean traces pass under every registered
// protocol, the reference memory models RMW semantics, and injected
// policy faults trip the matching invariant. The exhaustive/fuzz drivers
// built on top are covered in explorer_test.cpp and fuzzer_test.cpp.
#include "check/invariants.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "check/trace_runner.hpp"
#include "core/protocol_registry.hpp"

namespace lssim::check {
namespace {

ReproTrace mixed_trace(ProtocolKind kind) {
  ReproTrace trace;
  trace.machine = tiny_machine(3, kind);
  const Addr b0 = verification_block(trace.machine, 0);
  const Addr b1 = verification_block(trace.machine, 1);
  trace.accesses = {
      {0, MemOpKind::kRead, b0, 8, 0, 0},
      {0, MemOpKind::kWrite, b0, 8, 0x11, 0},
      {1, MemOpKind::kRead, b0, 8, 0, 0},
      {1, MemOpKind::kFetchAdd, b0, 8, 0x5, 0},
      {2, MemOpKind::kCas, b0, 8, 0x99, 0x16},  // expected == current value.
      {2, MemOpKind::kCas, b0, 8, 0x42, 0x0},   // expected mismatches.
      {0, MemOpKind::kSwap, b1, 8, 0x7777, 0},
      {1, MemOpKind::kRead, b1 + 8, 8, 0, 0},
      {0, MemOpKind::kRead, b0, 8, 0, 0},
      {2, MemOpKind::kWrite, b1, 8, 0x2222, 0},
  };
  return trace;
}

TEST(InvariantChecker, CleanTracePassesUnderEveryProtocol) {
  for (ProtocolKind kind : all_protocol_kinds()) {
    const TraceRunResult run =
        run_trace(mixed_trace(kind), {}, CheckerOptions{.full_scan_interval = 1});
    EXPECT_TRUE(run.ok()) << protocol_name(kind) << ": "
                          << (run.violations.empty()
                                  ? "?"
                                  : run.violations.front().message());
    EXPECT_EQ(run.accesses, 10u);
  }
}

TEST(InvariantChecker, IncrementalAndFullSweepAgree) {
  // The incremental mode (touched blocks only, periodic sweep) must
  // accept exactly the traces the every-access full sweep accepts.
  for (ProtocolKind kind : all_protocol_kinds()) {
    const ReproTrace trace = mixed_trace(kind);
    const TraceRunResult sweep =
        run_trace(trace, {}, CheckerOptions{.full_scan_interval = 1});
    const TraceRunResult incremental =
        run_trace(trace, {}, CheckerOptions{.full_scan_interval = 0});
    EXPECT_EQ(sweep.ok(), incremental.ok()) << protocol_name(kind);
  }
}

/// LS policy that grants an exclusive copy on *every* read miss, tagged
/// or not — the grant-legality invariant must flag the first untagged
/// grant.
class GreedyGrantPolicy final : public CoherencePolicy {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kLs;
  }
  [[nodiscard]] bool read_grants_exclusive(const DirEntry&,
                                           bool) const override {
    return true;
  }
};

TEST(InvariantChecker, UntaggedExclusiveGrantIsFlagged) {
  ReproTrace trace;
  trace.machine = tiny_machine(2);
  const Addr b0 = verification_block(trace.machine, 0);
  // A cold read of an untagged block; the greedy policy grants LStemp.
  trace.accesses = {{0, MemOpKind::kRead, b0, 8, 0, 0}};
  const auto policy = [](const MachineConfig&) {
    return std::unique_ptr<CoherencePolicy>(
        std::make_unique<GreedyGrantPolicy>());
  };
  const TraceRunResult run =
      run_trace(trace, policy, CheckerOptions{.full_scan_interval = 1});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.violations.front().invariant, "ls-tag");
  EXPECT_EQ(run.violations.front().access_index, 1u);
}

/// Claims to be Baseline but tags blocks — the checker's Baseline-
/// never-tags rule must fire.
class TaggingBaselinePolicy final : public CoherencePolicy {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kBaseline;
  }
  WriteTagDecision on_global_write(const DirEntry&, NodeId, bool) override {
    return {TagAction::kTag, false};
  }
};

TEST(InvariantChecker, BaselineTaggingIsFlagged) {
  ReproTrace trace;
  trace.machine = tiny_machine(2, ProtocolKind::kBaseline);
  const Addr b0 = verification_block(trace.machine, 0);
  trace.accesses = {
      {0, MemOpKind::kRead, b0, 8, 0, 0},
      {0, MemOpKind::kWrite, b0, 8, 0x1, 0},  // LR == writer: policy tags.
  };
  const auto policy = [](const MachineConfig&) {
    return std::unique_ptr<CoherencePolicy>(
        std::make_unique<TaggingBaselinePolicy>());
  };
  const TraceRunResult run =
      run_trace(trace, policy, CheckerOptions{.full_scan_interval = 1});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.violations.front().invariant, "ls-tag");
}

TEST(InvariantChecker, ViolationStorageIsCappedButCountingContinues) {
  ReproTrace trace;
  trace.machine = tiny_machine(2);
  const Addr b0 = verification_block(trace.machine, 0);
  for (int i = 0; i < 8; ++i) {
    // Every read of an untagged block draws a fresh illegal grant.
    trace.accesses.push_back({0, MemOpKind::kRead, b0, 8, 0, 0});
    trace.accesses.push_back({1, MemOpKind::kWrite, b0, 8, 0x1, 0});
  }
  const auto policy = [](const MachineConfig&) {
    return std::unique_ptr<CoherencePolicy>(
        std::make_unique<GreedyGrantPolicy>());
  };
  const TraceRunResult run = run_trace(
      trace, policy,
      CheckerOptions{.max_violations = 2, .full_scan_interval = 1});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.violations.size(), 2u);
  EXPECT_GT(run.total_violations, 2u);
}

TEST(InvariantChecker, MessageFormatNamesInvariantAndAccess) {
  const Violation v{"swmr", "two writable copies of 0x40", 7};
  EXPECT_EQ(v.message(),
            "[swmr] after access #7: two writable copies of 0x40");
}

}  // namespace
}  // namespace lssim::check
