// Ring and 2D-mesh topologies (extension; the paper's machine is the
// crossbar default).
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "net/network.hpp"
#include "stats/stats.hpp"

namespace lssim {
namespace {

Network make(int nodes, Topology topo, Stats& stats) {
  return Network(nodes, LatencyConfig{}, stats, topo);
}

TEST(Topology, CrossbarIsAlwaysOneHop) {
  Stats stats(8);
  Network net = make(8, Topology::kCrossbar, stats);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId d = 0; d < 8; ++d) {
      EXPECT_EQ(net.hop_count(s, d), s == d ? 0 : 1);
    }
  }
}

TEST(Topology, RingHopCountIsShorterWayRound) {
  Stats stats(8);
  Network net = make(8, Topology::kRing, stats);
  EXPECT_EQ(net.hop_count(0, 1), 1);
  EXPECT_EQ(net.hop_count(0, 4), 4);  // Exactly opposite.
  EXPECT_EQ(net.hop_count(0, 5), 3);  // Backward is shorter.
  EXPECT_EQ(net.hop_count(7, 0), 1);  // Wraps.
  EXPECT_EQ(net.hop_count(2, 2), 0);
}

TEST(Topology, RingLatencyScalesWithHops) {
  Stats stats(8);
  Network net = make(8, Topology::kRing, stats);
  const Cycles one = net.send(0, 1, MsgType::kReadReq, 0);
  // Well after the first message so the shared 0->1 link is idle again.
  const Cycles four = net.send(0, 4, MsgType::kReadReq, 1000);
  EXPECT_EQ(one, 40u);
  EXPECT_EQ(four, 1000u + 4 * 40u);
}

TEST(Topology, MeshHopCountIsManhattan) {
  Stats stats(16);
  Network net = make(16, Topology::kMesh2D, stats);  // 4x4 grid.
  EXPECT_EQ(net.hop_count(0, 3), 3);    // Same row.
  EXPECT_EQ(net.hop_count(0, 12), 3);   // Same column.
  EXPECT_EQ(net.hop_count(0, 15), 6);   // Corner to corner.
  EXPECT_EQ(net.hop_count(5, 5), 0);
}

TEST(Topology, MeshWithNonSquareCount) {
  Stats stats(6);
  Network net = make(6, Topology::kMesh2D, stats);  // 3x2 grid.
  EXPECT_EQ(net.hop_count(0, 5), 3);  // (0,0) -> (2,1).
  const Cycles t = net.send(0, 5, MsgType::kReadReq, 0);
  EXPECT_EQ(t, 3 * 40u);
}

TEST(Topology, RingLinksSerialiseSharedSegments) {
  Stats stats(4);
  LatencyConfig lat;
  lat.link_occupancy = 8;
  Network net(4, lat, stats, Topology::kRing);
  // 0->2 (via 1) and 0->1 share the 0->1 physical link.
  (void)net.send(0, 2, MsgType::kReadReq, 0);
  const Cycles t = net.send(0, 1, MsgType::kReadReq, 0);
  EXPECT_EQ(t, 48u);  // Queued behind the first message on link 0->1.
  EXPECT_EQ(net.total_queueing(), 8u);
}

TEST(Topology, CrossbarLinksIndependent) {
  Stats stats(4);
  Network net = make(4, Topology::kCrossbar, stats);
  (void)net.send(0, 2, MsgType::kReadReq, 0);
  const Cycles t = net.send(0, 1, MsgType::kReadReq, 0);
  EXPECT_EQ(t, 40u);  // Different direct links: no queueing.
}

TEST(Topology, HopsCountedInStats) {
  Stats stats(8);
  Network net = make(8, Topology::kRing, stats);
  (void)net.send(0, 3, MsgType::kReadReq, 0);
  EXPECT_EQ(stats.network_hops, 3u);
}

TEST(Topology, EndToEndProtocolRunsOnEveryTopology) {
  for (Topology topo :
       {Topology::kCrossbar, Topology::kRing, Topology::kMesh2D}) {
    MachineConfig cfg;
    cfg.num_nodes = 4;
    cfg.l1 = CacheConfig{256, 1, 16};
    cfg.l2 = CacheConfig{1024, 1, 16};
    cfg.topology = topo;
    cfg.protocol.kind = ProtocolKind::kLs;
    AddressSpace space(cfg.num_nodes, cfg.page_bytes);
    Stats stats(cfg.num_nodes);
    MemorySystem ms(cfg, space, stats);
    AccessRequest req;
    req.size = 8;
    for (int i = 0; i < 200; ++i) {
      req.addr = static_cast<Addr>((i * 2654435761u) % 8192) & ~Addr{7};
      req.op = (i % 3 == 0) ? MemOpKind::kWrite : MemOpKind::kRead;
      (void)ms.access(static_cast<NodeId>(i % 4), req, 10000ull * i);
    }
    EXPECT_TRUE(ms.check_coherence_invariants())
        << to_string(topo);
  }
}

}  // namespace
}  // namespace lssim
