// Regression pin for snooping-bus queueing accounting.
//
// The bus DOES model queueing delay — it is not "always zero". Every
// send pays max(now, bus_free) under FCFS, plus the rotation walk under
// round-robin when contended, and both total_queueing() and the
// net.queue_delay histogram record the wait. These tests pin that
// modelled behavior (docs/PROTOCOL.md "Bus queueing is modelled"): a
// change that silently zeroes the accounting — or decouples the
// histogram from total_queueing() — fails here, not in a downstream
// manifest diff.
#include "net/snoop_bus.hpp"

#include <gtest/gtest.h>

#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "stats/stats.hpp"
#include "telemetry/registry.hpp"

namespace lssim {
namespace {

LatencyConfig test_lat() {
  LatencyConfig lat;
  lat.hop = 40;
  lat.link_occupancy = 8;
  return lat;
}

TEST(BusQueueing, IdleBusDoesNotQueue) {
  for (const BusArbitration arb :
       {BusArbitration::kFcfs, BusArbitration::kRoundRobin}) {
    Stats stats(4);
    SnoopBus bus(4, test_lat(), stats, arb);
    EXPECT_EQ(bus.send(0, 1, MsgType::kReadReq, 100), 140u);
    EXPECT_EQ(bus.total_queueing(), 0u);
  }
}

TEST(BusQueueing, FcfsContentionSerialises) {
  Stats stats(4);
  SnoopBus bus(4, test_lat(), stats, BusArbitration::kFcfs);
  EXPECT_EQ(bus.send(0, 1, MsgType::kReadReq, 0), 40u);
  // Second transaction at the same instant waits out the first one's
  // bus occupancy: departs at 8, completes a hop later.
  EXPECT_EQ(bus.send(2, 3, MsgType::kReadReq, 0), 48u);
  EXPECT_EQ(bus.total_queueing(), 8u);
}

TEST(BusQueueing, RoundRobinAddsRotationWalk) {
  Stats stats(4);
  SnoopBus bus(4, test_lat(), stats, BusArbitration::kRoundRobin);
  EXPECT_EQ(bus.send(0, 1, MsgType::kReadReq, 0), 40u);
  // Contended grant: occupancy wait (8) plus the rotation walking from
  // the node after the last grantee (0) around to the requester (3).
  EXPECT_EQ(bus.send(3, 1, MsgType::kReadReq, 0), 40u + 8u + 3u);
  EXPECT_EQ(bus.total_queueing(), 11u);
}

TEST(BusQueueing, RoundRobinIdleMatchesFcfs) {
  Stats stats(4);
  SnoopBus fcfs(4, test_lat(), stats, BusArbitration::kFcfs);
  SnoopBus rr(4, test_lat(), stats, BusArbitration::kRoundRobin);
  (void)fcfs.send(0, 1, MsgType::kReadReq, 0);
  (void)rr.send(0, 1, MsgType::kReadReq, 0);
  // Both buses free at 8; an arrival after that queues nowhere under
  // either discipline.
  EXPECT_EQ(fcfs.send(3, 1, MsgType::kReadReq, 20),
            rr.send(3, 1, MsgType::kReadReq, 20));
  EXPECT_EQ(fcfs.total_queueing(), 0u);
  EXPECT_EQ(rr.total_queueing(), 0u);
}

TEST(BusQueueing, QueueDelayHistogramMatchesTotalQueueing) {
  Stats stats(4);
  MetricsRegistry metrics;
  SnoopBus bus(4, test_lat(), stats, BusArbitration::kFcfs, &metrics);
  (void)bus.send(0, 1, MsgType::kReadReq, 0);
  (void)bus.send(1, 0, MsgType::kDataShared, 0);
  (void)bus.send(2, 3, MsgType::kInval, 4);
  ASSERT_GT(bus.total_queueing(), 0u);
  const MetricsSnapshot snap = metrics.snapshot();
  const HistogramData* queue = snap.histogram("net.queue_delay");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->samples, 3u);
  EXPECT_EQ(queue->sum, bus.total_queueing());
}

// End-to-end pin: a real contended workload on the bus exports nonzero
// queueing through the metrics registry — the export surface manifests
// carry. Guards against a future transport change quietly regressing
// the bus back to unmodelled (always-zero) queueing.
TEST(BusQueueing, ContendedWorkloadExportsNonzeroQueueDelay) {
  DriverOptions options;
  options.workload = "pingpong";
  options.params["rounds"] = "50";
  options.machine.num_nodes = 4;
  options.machine.interconnect = InterconnectKind::kBus;
  options.metrics_out = "unused.json";  // Enables capture; never written.
  const DriverRun run =
      run_driver_workload_captured(options, ProtocolKind::kBaseline);
  const HistogramData* queue = run.metrics.histogram("net.queue_delay");
  ASSERT_NE(queue, nullptr);
  EXPECT_GT(queue->sum, 0u) << "bus queueing regressed to always-zero";
  EXPECT_EQ(queue->samples, run.metrics.counter_value("net.messages"));
}

}  // namespace
}  // namespace lssim
