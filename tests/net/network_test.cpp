#include "net/network.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "stats/stats.hpp"

namespace lssim {
namespace {

LatencyConfig default_lat() { return LatencyConfig{}; }

TEST(Network, UncontendedHopLatency) {
  Stats stats(4);
  Network net(4, default_lat(), stats);
  EXPECT_EQ(net.send(0, 1, MsgType::kReadReq, 100), 140u);
}

TEST(Network, CountsMessagesByType) {
  Stats stats(4);
  Network net(4, default_lat(), stats);
  (void)net.send(0, 1, MsgType::kReadReq, 0);
  (void)net.send(1, 0, MsgType::kDataShared, 0);
  (void)net.send(2, 3, MsgType::kInval, 0);
  EXPECT_EQ(stats.messages_by_type[static_cast<int>(MsgType::kReadReq)], 1u);
  EXPECT_EQ(stats.messages_total(), 3u);
  EXPECT_EQ(stats.messages_of_class(MsgClass::kRead), 2u);
  EXPECT_EQ(stats.messages_of_class(MsgClass::kWrite), 1u);
}

TEST(Network, SameLinkContends) {
  Stats stats(4);
  LatencyConfig lat;
  lat.link_occupancy = 8;
  Network net(4, lat, stats);
  const Cycles a = net.send(0, 1, MsgType::kReadReq, 0);
  const Cycles b = net.send(0, 1, MsgType::kReadReq, 0);
  EXPECT_EQ(a, 40u);
  EXPECT_EQ(b, 48u);  // Queued behind the first message's occupancy.
  EXPECT_EQ(net.total_queueing(), 8u);
}

TEST(Network, DistinctLinksDoNotContend) {
  Stats stats(4);
  Network net(4, default_lat(), stats);
  (void)net.send(0, 1, MsgType::kReadReq, 0);
  const Cycles b = net.send(0, 2, MsgType::kReadReq, 0);
  const Cycles c = net.send(1, 0, MsgType::kReadReq, 0);
  EXPECT_EQ(b, 40u);  // Different destination: own link.
  EXPECT_EQ(c, 40u);  // Reverse direction: own link.
  EXPECT_EQ(net.total_queueing(), 0u);
}

TEST(Network, LinkFreesUpOverTime) {
  Stats stats(4);
  LatencyConfig lat;
  lat.link_occupancy = 8;
  Network net(4, lat, stats);
  (void)net.send(0, 1, MsgType::kReadReq, 0);
  const Cycles later = net.send(0, 1, MsgType::kReadReq, 100);
  EXPECT_EQ(later, 140u);  // No queueing after the link went idle.
  EXPECT_EQ(net.total_queueing(), 0u);
}

TEST(Network, BackToBackBurstQueuesLinearly) {
  Stats stats(4);
  LatencyConfig lat;
  lat.link_occupancy = 8;
  Network net(4, lat, stats);
  Cycles arrival = 0;
  for (int i = 0; i < 5; ++i) {
    arrival = net.send(0, 1, MsgType::kInval, 0);
  }
  EXPECT_EQ(arrival, 40u + 4 * 8);
}

TEST(Network, SelfSendThrowsWithoutTouchingStats) {
  // Regression: a src == dst send used to be an assert only. The routing
  // loop no-ops for it, so in release builds it silently inflated the
  // message counts and traffic matrix the figures are built from. It now
  // throws in every build type, before any statistic is updated.
  Stats stats(4);
  Network net(4, default_lat(), stats);
  (void)net.send(0, 1, MsgType::kReadReq, 0);
  EXPECT_THROW((void)net.send(2, 2, MsgType::kReadReq, 0), std::logic_error);
  EXPECT_EQ(stats.messages_total(), 1u);  // Only the legal send counted.
  EXPECT_EQ(stats.network_hops, 1u);
}

TEST(MsgClass, TaxonomyMatchesPaper) {
  EXPECT_EQ(msg_class(MsgType::kReadReq), MsgClass::kRead);
  EXPECT_EQ(msg_class(MsgType::kDataExclRead), MsgClass::kRead);
  EXPECT_EQ(msg_class(MsgType::kSharingWb), MsgClass::kRead);
  EXPECT_EQ(msg_class(MsgType::kOwnReq), MsgClass::kWrite);
  EXPECT_EQ(msg_class(MsgType::kInval), MsgClass::kWrite);
  EXPECT_EQ(msg_class(MsgType::kInvalAck), MsgClass::kWrite);
  EXPECT_EQ(msg_class(MsgType::kNotLs), MsgClass::kOther);
  EXPECT_EQ(msg_class(MsgType::kWritebackData), MsgClass::kOther);
  EXPECT_EQ(msg_class(MsgType::kReplHint), MsgClass::kOther);
}

}  // namespace
}  // namespace lssim
