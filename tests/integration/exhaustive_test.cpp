// Bounded exhaustive protocol verification.
//
// Enumerates EVERY access sequence of a bounded shape — `kDepth` steps,
// each step one of {read, write} x {node 0, node 1, node 2} x
// {block A, block B} — and checks, for every protocol, that
//   * coherence invariants hold after every step,
//   * loaded values always equal a reference flat memory,
//   * total time and message counts are sane.
// 12^5 = 248,832 sequences per protocol; the tiny machine makes each run
// microseconds. This is the strongest correctness statement in the suite:
// within this bound there is NO interleaving that breaks the protocols.
#include <gtest/gtest.h>

#include <map>

#include "core/protocol.hpp"
#include "core/protocol_registry.hpp"
#include "mem/address_space.hpp"
#include "sim/config.hpp"
#include "stats/stats.hpp"

namespace lssim {
namespace {

constexpr int kDepth = 5;
constexpr int kNodes = 3;
constexpr int kBlocks = 2;
constexpr int kChoices = 2 * kNodes * kBlocks;  // 12 per step.

class ExhaustiveTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ExhaustiveTest, AllBoundedSequencesAreCoherent) {
  MachineConfig cfg;
  cfg.num_nodes = 4;  // One more node than actors: a pure home exists.
  cfg.l1 = CacheConfig{32, 1, 16};  // 2 L1 sets: constant pressure.
  cfg.l2 = CacheConfig{64, 1, 16};  // 4 L2 sets.
  cfg.protocol.kind = GetParam();

  std::uint64_t sequences = 0;
  std::uint64_t failures = 0;

  std::uint64_t total = 1;
  for (int d = 0; d < kDepth; ++d) total *= kChoices;

  for (std::uint64_t code = 0; code < total; ++code) {
    AddressSpace space(cfg.num_nodes, cfg.page_bytes);
    Stats stats(cfg.num_nodes);
    MemorySystem ms(cfg, space, stats);
    std::map<Addr, std::uint64_t> reference;

    std::uint64_t rest = code;
    Cycles now = 0;
    bool ok = true;
    for (int step = 0; step < kDepth && ok; ++step) {
      const int choice = static_cast<int>(rest % kChoices);
      rest /= kChoices;
      const bool is_write = (choice & 1) != 0;
      const NodeId node = static_cast<NodeId>((choice >> 1) % kNodes);
      // Blocks A and B share the single L1 set pair and collide in L2
      // (stride = 64 bytes = L2 size), maximising replacement traffic.
      const Addr addr = ((choice >> 1) / kNodes == 0) ? 0 : 64;

      AccessRequest req;
      req.addr = addr;
      req.size = 8;
      now += 1000;
      if (is_write) {
        req.op = MemOpKind::kWrite;
        req.wdata = code * 16 + static_cast<std::uint64_t>(step) + 1;
        (void)ms.access(node, req, now);
        reference[addr] = req.wdata;
      } else {
        req.op = MemOpKind::kRead;
        const AccessResult r = ms.access(node, req, now);
        const auto it = reference.find(addr);
        const std::uint64_t expected =
            it == reference.end() ? 0 : it->second;
        if (r.value != expected) ok = false;
      }
      if (!ms.check_coherence_invariants()) ok = false;
    }
    ++sequences;
    if (!ok) {
      ++failures;
      if (failures <= 3) {
        ADD_FAILURE() << "sequence code " << code << " broke protocol "
                      << to_string(GetParam());
      }
    }
  }
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(sequences, total);
}

// Every registered protocol, MESI/MOESI/Dragon family included: new
// registrations join the sweep without touching this file.
INSTANTIATE_TEST_SUITE_P(AllProtocols, ExhaustiveTest,
                         ::testing::ValuesIn(all_protocol_kinds()),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == '+') c = '_';  // "LS+AD" -> "LS_AD".
                           }
                           return name;
                         });

}  // namespace
}  // namespace lssim
