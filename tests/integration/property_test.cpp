// Property-based tests: random access streams driven directly into the
// MemorySystem must uphold protocol invariants regardless of protocol,
// configuration or interleaving; and the simulated memory must behave
// exactly like a flat reference memory (coherence transparency).
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/protocol.hpp"
#include "mem/address_space.hpp"
#include "sim/rng.hpp"
#include "stats/stats.hpp"

namespace lssim {
namespace {

struct Variant {
  ProtocolKind kind;
  std::uint32_t block_bytes;
  std::uint32_t l2_size;
  bool default_tagged;
  std::uint8_t tag_hyst;
  std::uint8_t detag_hyst;
};

class ProtocolProperty : public ::testing::TestWithParam<Variant> {};

TEST_P(ProtocolProperty, RandomStreamKeepsInvariantsAndValues) {
  const Variant v = GetParam();
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{512, 1, v.block_bytes};
  cfg.l2 = CacheConfig{v.l2_size, 1, v.block_bytes};
  cfg.protocol.kind = v.kind;
  cfg.protocol.default_tagged = v.default_tagged;
  cfg.protocol.tag_hysteresis = v.tag_hyst;
  cfg.protocol.detag_hysteresis = v.detag_hyst;
  cfg.classify_false_sharing = true;
  ASSERT_EQ(cfg.validate(), "");

  AddressSpace space(cfg.num_nodes, cfg.page_bytes);
  Stats stats(cfg.num_nodes);
  MemorySystem ms(cfg, space, stats);

  // Reference memory: the protocol must be invisible to program values.
  std::map<Addr, std::uint64_t> reference;

  Rng rng(static_cast<std::uint64_t>(v.block_bytes) * 1000003 +
          static_cast<std::uint64_t>(v.kind) * 131 + v.l2_size);
  Cycles now = 0;
  const int kOps = 6000;
  for (int op = 0; op < kOps; ++op) {
    const NodeId node = static_cast<NodeId>(rng.next_below(4));
    // Footprint: 64 hot words + 512 cold words across several pages.
    const bool hot = rng.next_bool(0.6);
    const Addr word = hot ? rng.next_below(64)
                          : 64 + rng.next_below(512);
    const Addr addr = word * 8;
    now += rng.next_below(300);

    AccessRequest req;
    req.addr = addr;
    req.size = 8;
    const int what = static_cast<int>(rng.next_below(10));
    if (what < 5) {
      req.op = MemOpKind::kRead;
      const AccessResult r = ms.access(node, req, now);
      const auto it = reference.find(addr);
      const std::uint64_t expect = it == reference.end() ? 0 : it->second;
      ASSERT_EQ(r.value, expect) << "read mismatch at op " << op;
    } else if (what < 8) {
      req.op = MemOpKind::kWrite;
      req.wdata = rng.next();
      (void)ms.access(node, req, now);
      reference[addr] = req.wdata;
    } else if (what < 9) {
      req.op = MemOpKind::kFetchAdd;
      req.wdata = rng.next_below(1000);
      const AccessResult r = ms.access(node, req, now);
      const auto it = reference.find(addr);
      const std::uint64_t expect = it == reference.end() ? 0 : it->second;
      ASSERT_EQ(r.value, expect);
      reference[addr] = expect + req.wdata;
    } else {
      req.op = MemOpKind::kSwap;
      req.wdata = rng.next();
      const AccessResult r = ms.access(node, req, now);
      const auto it = reference.find(addr);
      const std::uint64_t expect = it == reference.end() ? 0 : it->second;
      ASSERT_EQ(r.value, expect);
      reference[addr] = req.wdata;
    }

    if (op % 500 == 0) {
      ASSERT_TRUE(ms.check_coherence_invariants()) << "op " << op;
    }
  }
  ms.finalize();
  EXPECT_TRUE(ms.check_coherence_invariants());
  // Sanity on stats bookkeeping.
  EXPECT_EQ(stats.accesses, static_cast<std::uint64_t>(kOps));
  EXPECT_LE(stats.false_sharing_misses, stats.coherence_misses);
  EXPECT_LE(stats.coherence_misses, stats.data_misses);
  std::uint64_t by_state = 0;
  for (auto c : stats.read_miss_home_state) by_state += c;
  EXPECT_EQ(by_state, stats.global_read_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolProperty,
    ::testing::Values(
        Variant{ProtocolKind::kBaseline, 16, 2048, false, 1, 1},
        Variant{ProtocolKind::kBaseline, 64, 4096, false, 1, 1},
        Variant{ProtocolKind::kAd, 16, 2048, false, 1, 1},
        Variant{ProtocolKind::kAd, 32, 4096, false, 1, 1},
        Variant{ProtocolKind::kAd, 64, 8192, true, 1, 1},
        Variant{ProtocolKind::kLs, 16, 2048, false, 1, 1},
        Variant{ProtocolKind::kLs, 32, 2048, false, 1, 1},
        Variant{ProtocolKind::kLs, 64, 4096, false, 1, 1},
        Variant{ProtocolKind::kLs, 16, 2048, true, 1, 1},
        Variant{ProtocolKind::kLs, 16, 2048, false, 2, 2},
        Variant{ProtocolKind::kLs, 32, 8192, true, 2, 1},
        Variant{ProtocolKind::kLs, 128, 8192, false, 1, 2},
        Variant{ProtocolKind::kLsAd, 16, 2048, false, 1, 1},
        Variant{ProtocolKind::kLsAd, 64, 4096, true, 1, 1},
        Variant{ProtocolKind::kLsAd, 32, 8192, false, 2, 2}),
    [](const ::testing::TestParamInfo<Variant>& info) {
      const Variant& v = info.param;
      std::string kind_name(to_string(v.kind));
      for (char& c : kind_name) {
        if (c == '+') c = '_';  // "LS+AD" -> "LS_AD".
      }
      return kind_name + "_b" +
             std::to_string(v.block_bytes) + "_l2x" +
             std::to_string(v.l2_size) + (v.default_tagged ? "_dt" : "") +
             "_h" + std::to_string(v.tag_hyst) +
             std::to_string(v.detag_hyst);
    });

}  // namespace
}  // namespace lssim
