// Cross-protocol integration tests: the qualitative claims of the paper
// must hold on every workload (LS >= AD >= Baseline on ownership
// elimination; identical computational results; no protocol changes the
// program's semantics).
#include <gtest/gtest.h>

#include "workloads/cholesky.hpp"
#include "workloads/harness.hpp"
#include "workloads/lu.hpp"
#include "workloads/micro.hpp"
#include "workloads/mp3d.hpp"

namespace lssim {
namespace {

MachineConfig cfg_for(ProtocolKind kind) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  cfg.l1 = CacheConfig{2 * 1024, 1, 16};
  cfg.l2 = CacheConfig{16 * 1024, 1, 16};
  cfg.protocol.kind = kind;
  return cfg;
}

struct Triple {
  RunResult base, ad, ls;
};

Triple run_all(const WorkloadBuilder& build) {
  return Triple{
      run_experiment(cfg_for(ProtocolKind::kBaseline), build),
      run_experiment(cfg_for(ProtocolKind::kAd), build),
      run_experiment(cfg_for(ProtocolKind::kLs), build),
  };
}

void expect_paper_ordering(const Triple& t, const char* what) {
  // LS eliminates at least as much ownership overhead as AD (it targets a
  // super-set of AD's pattern), and both never lose to Baseline.
  EXPECT_GE(t.ls.eliminated_acquisitions, t.ad.eliminated_acquisitions)
      << what;
  EXPECT_LE(t.ls.time.write_stall, t.base.time.write_stall) << what;
  EXPECT_LE(t.ad.time.write_stall,
            t.base.time.write_stall + t.base.time.write_stall / 20)
      << what;
}

TEST(ProtocolComparison, Mp3d) {
  Mp3dParams params;
  params.particles = 1500;
  params.steps = 4;
  const Triple t =
      run_all([&](System& sys) { build_mp3d(sys, params); });
  expect_paper_ordering(t, "mp3d");
  // MP3D is migratory-heavy: AD must also achieve real elimination (at
  // this scaled-down cache most cell blocks are displaced between visits,
  // so AD keeps only the still-resident share).
  EXPECT_GT(t.ad.eliminated_acquisitions, 100u);
  // LS reduces total execution time.
  EXPECT_LT(t.ls.exec_time, t.base.exec_time);
}

TEST(ProtocolComparison, Cholesky4ProcsAdGetsNothing) {
  CholeskyParams params;  // Synthetic-sparse mode (paper's tk15.0 regime).
  params.n = 160;
  params.bandwidth = 96;
  // Spread the visits to a column across the whole run so the owner's
  // cache turns over in between (the paper's replacement-broken
  // sequences); with the default window the 16 kB L2 here retains them.
  params.window = 160;
  params.successors = 5;
  const Triple t =
      run_all([&](System& sys) { build_cholesky(sys, params); });
  expect_paper_ordering(t, "cholesky");
  // Paper §5.2: at 4 processors AD removes (essentially) no ownership
  // overhead of the column data while LS removes most of it; AD's small
  // residue here comes from the genuinely migratory task-queue and lock
  // words.
  EXPECT_LT(t.ad.eliminated_acquisitions,
            t.ls.eliminated_acquisitions / 4 + 100);
  EXPECT_LT(t.ls.time.write_stall, t.base.time.write_stall * 3 / 5);
}

TEST(ProtocolComparison, LuLsRemovesMoreThanAd) {
  LuParams params;
  params.n = 64;
  const Triple t = run_all([&](System& sys) { build_lu(sys, params); });
  expect_paper_ordering(t, "lu");
  EXPECT_GT(t.ls.eliminated_acquisitions, t.ad.eliminated_acquisitions);
  EXPECT_LT(t.ls.time.write_stall, t.base.time.write_stall);
}

TEST(ProtocolComparison, TrafficNeverExplodes) {
  Mp3dParams params;
  params.particles = 800;
  params.steps = 3;
  const Triple t =
      run_all([&](System& sys) { build_mp3d(sys, params); });
  // The techniques may add NotLS/hint traffic but total traffic must not
  // grow materially (paper: traffic *reductions* everywhere).
  EXPECT_LT(t.ls.traffic_total, t.base.traffic_total * 11 / 10);
  EXPECT_LT(t.ad.traffic_total, t.base.traffic_total * 11 / 10);
}

TEST(ProtocolComparison, ReadMissInflationBounded) {
  LuParams params;
  params.n = 48;
  const Triple t = run_all([&](System& sys) { build_lu(sys, params); });
  EXPECT_LT(static_cast<double>(t.ls.global_read_misses),
            1.4 * static_cast<double>(t.base.global_read_misses));
}

}  // namespace
}  // namespace lssim
