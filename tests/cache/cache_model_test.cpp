// Differential fuzzing of Cache against an executable reference model:
// a trivially correct set-associative LRU built from std::list/map. Any
// divergence in hit/miss outcome or victim choice is a bug in one of
// them — and the reference is small enough to trust by inspection.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>
#include <vector>

#include "cache/cache.hpp"
#include "sim/rng.hpp"

namespace lssim {
namespace {

class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& config) : config_(config) {}

  [[nodiscard]] bool contains(Addr block) const {
    const auto it = sets_.find(set_of(block));
    if (it == sets_.end()) return false;
    for (Addr b : it->second) {
      if (b == block) return true;
    }
    return false;
  }

  void touch(Addr block) {
    auto& set = sets_[set_of(block)];
    set.remove(block);
    set.push_front(block);  // Front = most recently used.
  }

  /// Returns the evicted block, if any.
  std::optional<Addr> insert(Addr block) {
    auto& set = sets_[set_of(block)];
    std::optional<Addr> victim;
    if (set.size() == config_.assoc) {
      victim = set.back();
      set.pop_back();
    }
    set.push_front(block);
    return victim;
  }

  void erase(Addr block) { sets_[set_of(block)].remove(block); }

 private:
  [[nodiscard]] std::uint64_t set_of(Addr block) const {
    return (block / config_.block_bytes) % config_.num_sets();
  }

  CacheConfig config_;
  std::map<std::uint64_t, std::list<Addr>> sets_;
};

struct Geometry {
  std::uint32_t size;
  std::uint32_t assoc;
  std::uint32_t block;
};

class CacheModelTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheModelTest, MatchesReferenceOverRandomOps) {
  const Geometry g = GetParam();
  const CacheConfig config{g.size, g.assoc, g.block};
  Cache cache(config);
  ReferenceCache reference(config);
  Rng rng(g.size * 31 + g.assoc * 7 + g.block);

  const Addr footprint = static_cast<Addr>(g.size) * 4;
  for (int op = 0; op < 20000; ++op) {
    const Addr block =
        (rng.next_below(footprint) / g.block) * g.block;
    const int what = static_cast<int>(rng.next_below(10));
    const bool hit = cache.find(block) != nullptr;
    ASSERT_EQ(hit, reference.contains(block))
        << "op " << op << " block " << block;
    if (what < 6) {
      // Access: insert on miss, touch on hit.
      if (hit) {
        cache.touch(*cache.find(block));
        reference.touch(block);
      } else {
        const CacheLine victim = cache.insert(block, CacheState::kShared);
        const auto ref_victim = reference.insert(block);
        ASSERT_EQ(victim.valid(), ref_victim.has_value()) << "op " << op;
        if (ref_victim) {
          ASSERT_EQ(victim.block, *ref_victim) << "op " << op;
        }
      }
    } else if (what < 8) {
      // Invalidate.
      cache.invalidate(block);
      reference.erase(block);
    } else {
      // Pure probe (done above).
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelTest,
    ::testing::Values(Geometry{256, 1, 16}, Geometry{512, 2, 16},
                      Geometry{1024, 4, 32}, Geometry{2048, 2, 64},
                      Geometry{4096, 1, 128}, Geometry{4096, 8, 32},
                      Geometry{8192, 4, 256}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.size) + "w" +
             std::to_string(info.param.assoc) + "b" +
             std::to_string(info.param.block);
    });

}  // namespace
}  // namespace lssim
