#include "cache/hierarchy.hpp"

#include <gtest/gtest.h>

namespace lssim {
namespace {

CacheHierarchy make_small() {
  // L1: 4 sets x 16B, L2: 16 sets x 16B.
  return CacheHierarchy(CacheConfig{64, 1, 16}, CacheConfig{256, 1, 16});
}

TEST(Hierarchy, FillPopulatesBothLevels) {
  CacheHierarchy ch = make_small();
  ch.fill(0x40, CacheState::kShared);
  const ProbeResult p = ch.probe(0x40);
  EXPECT_TRUE(p.l1_hit);
  EXPECT_TRUE(p.l2_hit);
  EXPECT_EQ(p.state, CacheState::kShared);
  EXPECT_TRUE(ch.check_inclusion());
}

TEST(Hierarchy, ProbeMiss) {
  CacheHierarchy ch = make_small();
  const ProbeResult p = ch.probe(0x40);
  EXPECT_FALSE(p.l1_hit);
  EXPECT_FALSE(p.l2_hit);
  EXPECT_EQ(p.state, CacheState::kInvalid);
}

TEST(Hierarchy, L1VictimIsSilentAndL2Retains) {
  CacheHierarchy ch = make_small();
  // L1 has 4 sets; blocks 0 and 64 collide in L1 set 0 but not in L2.
  ch.fill(0, CacheState::kShared);
  ch.fill(64, CacheState::kShared);
  const ProbeResult p0 = ch.probe(0);
  EXPECT_FALSE(p0.l1_hit);
  EXPECT_TRUE(p0.l2_hit);
  EXPECT_TRUE(ch.check_inclusion());
}

TEST(Hierarchy, RefillL1FromL2) {
  CacheHierarchy ch = make_small();
  ch.fill(0, CacheState::kModified);
  ch.fill(64, CacheState::kShared);  // Evicts 0 from L1.
  EXPECT_FALSE(ch.probe(0).l1_hit);
  ch.refill_l1(0);
  const ProbeResult p = ch.probe(0);
  EXPECT_TRUE(p.l1_hit);
  EXPECT_EQ(p.state, CacheState::kModified);
  EXPECT_TRUE(ch.check_inclusion());
}

TEST(Hierarchy, L2VictimForcesL1OutForInclusion) {
  CacheHierarchy ch = make_small();
  ch.fill(0, CacheState::kShared);
  // Block 256 collides with 0 in L2 (16 sets) AND in L1 (4 sets).
  const CacheLine victim = ch.fill(256, CacheState::kShared);
  EXPECT_TRUE(victim.valid());
  EXPECT_EQ(victim.block, 0u);
  EXPECT_FALSE(ch.probe(0).l1_hit);
  EXPECT_FALSE(ch.probe(0).l2_hit);
  EXPECT_TRUE(ch.check_inclusion());
}

TEST(Hierarchy, SetStateUpdatesBothLevels) {
  CacheHierarchy ch = make_small();
  ch.fill(0x40, CacheState::kLStemp);
  ch.set_state(0x40, CacheState::kModified);
  EXPECT_EQ(ch.probe(0x40).state, CacheState::kModified);
  EXPECT_EQ(ch.l1().find(0x40)->state, CacheState::kModified);
  EXPECT_EQ(ch.l2().find(0x40)->state, CacheState::kModified);
}

TEST(Hierarchy, SetStateWithL1EvictedUpdatesL2Only) {
  CacheHierarchy ch = make_small();
  ch.fill(0, CacheState::kLStemp);
  ch.fill(64, CacheState::kShared);  // 0 leaves L1.
  ch.set_state(0, CacheState::kModified);
  EXPECT_EQ(ch.l2().find(0)->state, CacheState::kModified);
  EXPECT_TRUE(ch.check_inclusion());
}

TEST(Hierarchy, InvalidateClearsBothLevels) {
  CacheHierarchy ch = make_small();
  ch.fill(0x40, CacheState::kModified);
  const CacheLine removed = ch.invalidate(0x40);
  EXPECT_EQ(removed.state, CacheState::kModified);
  EXPECT_FALSE(ch.probe(0x40).l2_hit);
  EXPECT_EQ(ch.l1().find(0x40), nullptr);
}

TEST(Hierarchy, RecordAccessAccumulatesWordMask) {
  CacheHierarchy ch = make_small();
  ch.fill(0x40, CacheState::kShared);
  ch.record_access(0x40, 0b0011);
  ch.record_access(0x40, 0b0100);
  EXPECT_EQ(ch.l2().find(0x40)->accessed_words, 0b0111u);
}

TEST(Hierarchy, RecordAccessKeepsLruFresh) {
  CacheHierarchy ch = make_small();
  ch.fill(0, CacheState::kShared);
  ch.fill(16, CacheState::kShared);
  ch.record_access(0, 0);  // 0 is now most recently used in its set.
  // Not directly observable without eviction; just verify no crash and
  // inclusion still holds.
  EXPECT_TRUE(ch.check_inclusion());
}

}  // namespace
}  // namespace lssim
