#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace lssim {
namespace {

CacheConfig small_dm() { return CacheConfig{256, 1, 16}; }   // 16 sets.
CacheConfig small_2way() { return CacheConfig{256, 2, 16}; }  // 8 sets.

TEST(Cache, MissOnEmpty) {
  Cache cache(small_dm());
  EXPECT_EQ(cache.find(0), nullptr);
}

TEST(Cache, InsertThenHit) {
  Cache cache(small_dm());
  cache.insert(0x40, CacheState::kShared);
  CacheLine* line = cache.find(0x40);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, CacheState::kShared);
  EXPECT_EQ(line->block, 0x40u);
}

TEST(Cache, BlockAlignment) {
  Cache cache(small_dm());
  EXPECT_EQ(cache.block_of(0x47), 0x40u);
  EXPECT_EQ(cache.block_of(0x40), 0x40u);
  EXPECT_EQ(cache.block_of(0x4f), 0x40u);
}

TEST(Cache, DirectMappedConflictEvicts) {
  Cache cache(small_dm());
  // Same set: blocks 0 and 256 (16 sets * 16B blocks).
  cache.insert(0, CacheState::kShared);
  const CacheLine victim = cache.insert(256, CacheState::kModified);
  EXPECT_TRUE(victim.valid());
  EXPECT_EQ(victim.block, 0u);
  EXPECT_EQ(cache.find(0), nullptr);
  EXPECT_NE(cache.find(256), nullptr);
}

TEST(Cache, TwoWayHoldsConflictPair) {
  Cache cache(small_2way());
  cache.insert(0, CacheState::kShared);
  const CacheLine victim = cache.insert(128, CacheState::kShared);
  EXPECT_FALSE(victim.valid());
  EXPECT_NE(cache.find(0), nullptr);
  EXPECT_NE(cache.find(128), nullptr);
}

TEST(Cache, LruEvictsLeastRecentlyTouched) {
  Cache cache(small_2way());
  cache.insert(0, CacheState::kShared);    // Set 0.
  cache.insert(128, CacheState::kShared);  // Set 0, second way.
  cache.touch(*cache.find(0));             // Make 0 the most recent.
  const CacheLine victim = cache.insert(256, CacheState::kShared);
  EXPECT_EQ(victim.block, 128u);
  EXPECT_NE(cache.find(0), nullptr);
}

TEST(Cache, InvalidateRemovesAndReturnsLine) {
  Cache cache(small_dm());
  cache.insert(0x40, CacheState::kModified);
  const CacheLine removed = cache.invalidate(0x40);
  EXPECT_EQ(removed.state, CacheState::kModified);
  EXPECT_EQ(cache.find(0x40), nullptr);
}

TEST(Cache, InvalidateMissingReturnsInvalid) {
  Cache cache(small_dm());
  const CacheLine removed = cache.invalidate(0x40);
  EXPECT_FALSE(removed.valid());
}

TEST(Cache, ValidLineCount) {
  Cache cache(small_dm());
  EXPECT_EQ(cache.valid_lines(), 0u);
  cache.insert(0, CacheState::kShared);
  cache.insert(16, CacheState::kShared);
  EXPECT_EQ(cache.valid_lines(), 2u);
  cache.invalidate(0);
  EXPECT_EQ(cache.valid_lines(), 1u);
}

TEST(Cache, LStempStateStored) {
  Cache cache(small_dm());
  cache.insert(0x80, CacheState::kLStemp);
  EXPECT_EQ(cache.find(0x80)->state, CacheState::kLStemp);
}

TEST(Cache, EvictedLineCarriesFalseSharingBookkeeping) {
  Cache cache(small_dm());
  cache.insert(0, CacheState::kShared);
  CacheLine* line = cache.find(0);
  line->fs_pending = true;
  line->fs_foreign_mask = 0xf0;
  line->accessed_words = 0x3;
  const CacheLine victim = cache.insert(256, CacheState::kShared);
  EXPECT_TRUE(victim.fs_pending);
  EXPECT_EQ(victim.fs_foreign_mask, 0xf0u);
  EXPECT_EQ(victim.accessed_words, 0x3u);
}

TEST(Cache, HighAddressTags) {
  Cache cache(small_dm());
  const Addr high = (Addr{1} << 40) + 0x40;
  cache.insert(high, CacheState::kShared);
  EXPECT_NE(cache.find(high), nullptr);
  EXPECT_EQ(cache.find(0x40), nullptr);  // Same set, different tag.
}

}  // namespace
}  // namespace lssim
