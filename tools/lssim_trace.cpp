// lssim_trace — record a workload's access trace to a file, or replay a
// trace file against a protocol/cache configuration.
//
//   lssim_trace record <out.trace> [lssim_run options...]
//   lssim_trace replay <in.trace>  [lssim_run options...]
//
// Recording runs the workload under the given configuration (protocol
// included — the trace stores the access stream that execution
// produced) and stamps the file with a hash of the protocol-insensitive
// machine configuration. Replay drives a fresh memory system with the
// stored stream; a machine whose hash differs from the trace's is
// rejected with exit code 2 (see src/trace/replay_compare.hpp for the
// timing-feedback caveats).
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>

#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "lssim.hpp"

namespace {

using namespace lssim;

int record_mode(const char* path, const DriverOptions& options) {
  if (!driver_knows_workload(options.workload)) {
    std::fprintf(stderr, "lssim_trace: unknown workload '%s'\n",
                 options.workload.c_str());
    return 2;
  }
  MachineConfig cfg = options.machine;
  cfg.protocol.kind = options.protocols.front();

  CapturedTrace captured;
  try {
    captured = capture_trace(cfg, make_driver_builder(options),
                             options.seed, options.workload);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "lssim_trace: %s\n", ex.what());
    return 1;
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "lssim_trace: cannot open %s for writing\n", path);
    return 1;
  }
  captured.trace.save(out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "lssim_trace: failed writing %s\n", path);
    return 1;
  }
  std::printf("recorded %zu accesses (%s, %s, config %s) -> %s\n",
              captured.trace.size(), options.workload.c_str(),
              to_string(cfg.protocol.kind),
              format_config_hash(captured.trace.meta().config_hash).c_str(),
              path);
  return 0;
}

int replay_mode(const char* path, const DriverOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "lssim_trace: cannot open %s\n", path);
    return 1;
  }
  Trace trace;
  try {
    trace = Trace::load(in);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "lssim_trace: %s\n", ex.what());
    return 1;
  }

  MachineConfig base = options.machine;
  base.protocol.kind = options.protocols.front();
  try {
    const ReplayCompareEngine engine(trace, base);
    std::printf("%-10s %14s %14s %14s\n", "protocol", "exec cycles",
                "messages", "eliminated");
    for (ProtocolKind kind : options.protocols) {
      const RunResult r = engine.replay(kind);
      std::printf("%-10s %14llu %14llu %14llu\n", to_string(kind),
                  static_cast<unsigned long long>(r.exec_time),
                  static_cast<unsigned long long>(r.traffic_total),
                  static_cast<unsigned long long>(
                      r.eliminated_acquisitions));
    }
  } catch (const TraceConfigMismatch& ex) {
    std::fprintf(stderr, "lssim_trace: %s\n", ex.what());
    return 2;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "lssim_trace: %s\n", ex.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lssim;

  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: lssim_trace record|replay <file> [options]\n%s",
                 driver_usage().c_str());
    return 2;
  }
  const std::string mode = argv[1];
  const char* path = argv[2];

  DriverOptions options;
  std::string error;
  std::vector<const char*> rest{argv[0]};
  for (int i = 3; i < argc; ++i) rest.push_back(argv[i]);
  if (!parse_driver_args(static_cast<int>(rest.size()), rest.data(),
                         &options, &error)) {
    std::fprintf(stderr, "lssim_trace: %s\n", error.c_str());
    return 2;
  }

  if (mode == "record") {
    return record_mode(path, options);
  }
  if (mode == "replay") {
    return replay_mode(path, options);
  }
  std::fprintf(stderr, "lssim_trace: unknown mode '%s'\n", mode.c_str());
  return 2;
}
