// lssim_trace — record a workload's access trace to a file, or replay a
// trace file against a protocol/cache configuration.
//
//   lssim_trace record <out.trace> [lssim_run options...]
//   lssim_trace replay <in.trace>  [lssim_run options...]
//
// Recording runs the workload under the given configuration (protocol
// included — the trace stores the access stream that execution
// produced). Replay drives a fresh memory system with the stored stream;
// see src/trace/trace.hpp for the timing-feedback caveats.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>

#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "lssim.hpp"

namespace {

using namespace lssim;

int record_mode(const char* path, const DriverOptions& options) {
  MachineConfig cfg = options.machine;
  cfg.protocol.kind = options.protocols.front();
  System sys(cfg, options.seed);
  Trace trace;
  TraceRecorder recorder(sys, trace);

  if (!driver_knows_workload(options.workload)) {
    std::fprintf(stderr, "lssim_trace: unknown workload '%s'\n",
                 options.workload.c_str());
    return 2;
  }
  try {
    make_driver_builder(options)(sys);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "lssim_trace: %s\n", ex.what());
    return 1;
  }
  sys.run();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "lssim_trace: cannot open %s for writing\n", path);
    return 1;
  }
  trace.save(out);
  std::printf("recorded %zu accesses (%s, %s) -> %s\n", trace.size(),
              options.workload.c_str(), to_string(cfg.protocol.kind), path);
  return 0;
}

int replay_mode(const char* path, const DriverOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "lssim_trace: cannot open %s\n", path);
    return 1;
  }
  Trace trace;
  try {
    trace = Trace::load(in);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "lssim_trace: %s\n", ex.what());
    return 1;
  }

  std::printf("%-10s %14s %14s %14s\n", "protocol", "total cycles",
              "messages", "eliminated");
  for (ProtocolKind kind : options.protocols) {
    MachineConfig cfg = options.machine;
    cfg.protocol.kind = kind;
    Stats stats(cfg.num_nodes);
    const ReplayResult result = replay_trace(trace, cfg, stats);
    std::printf("%-10s %14llu %14llu %14llu\n", to_string(kind),
                static_cast<unsigned long long>(result.total_cycles),
                static_cast<unsigned long long>(stats.messages_total()),
                static_cast<unsigned long long>(
                    stats.eliminated_acquisitions));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lssim;

  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: lssim_trace record|replay <file> [options]\n%s",
                 driver_usage().c_str());
    return 2;
  }
  const std::string mode = argv[1];
  const char* path = argv[2];

  DriverOptions options;
  std::string error;
  std::vector<const char*> rest{argv[0]};
  for (int i = 3; i < argc; ++i) rest.push_back(argv[i]);
  if (!parse_driver_args(static_cast<int>(rest.size()), rest.data(),
                         &options, &error)) {
    std::fprintf(stderr, "lssim_trace: %s\n", error.c_str());
    return 2;
  }

  if (mode == "record") {
    return record_mode(path, options);
  }
  if (mode == "replay") {
    return replay_mode(path, options);
  }
  std::fprintf(stderr, "lssim_trace: unknown mode '%s'\n", mode.c_str());
  return 2;
}
