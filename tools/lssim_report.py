#!/usr/bin/env python3
"""Aggregate lssim observability artifacts into a per-protocol trend table.

Scans a directory (or explicit file list) for run manifests
(`--manifest-out`) and ownership-latency reports (`--latency-out`) and
prints one row per (file, workload, protocol): execution cycles,
messages, eliminated acquisitions, and — when the file carries the
ownership-latency digest — write-miss/upgrade p50/p95/p99.

The point is trend-watching over a directory of artifacts from repeated
runs (nightly sweeps, bisects, parameter studies): sorted
deterministically by file name, so two invocations over the same
directory are byte-identical and diff-able.

Usage:
  lssim_report.py DIR_OR_FILE... [--format table|csv] [--workload W]
                  [--protocol P]
"""

import argparse
import json
import os
import sys

COLUMNS = (
    "file", "workload", "seed", "protocol", "exec_cycles", "messages",
    "eliminated", "wm_p50", "wm_p95", "wm_p99", "up_p50", "up_p95",
    "up_p99",
)


def latency_cell(latency, op, key):
    if not isinstance(latency, dict):
        return ""
    digest = latency.get(op)
    if not isinstance(digest, dict) or digest.get("samples", 0) == 0:
        return ""
    return str(digest.get(key, ""))


def rows_from_manifest(name, doc):
    rows = []
    for run in doc.get("runs", []):
        result = run.get("result", {})
        latency = run.get("ownership_latency")
        rows.append({
            "file": name,
            "workload": str(doc.get("workload", "")),
            "seed": str(doc.get("seed", "")),
            "protocol": str(result.get("protocol", "")),
            "exec_cycles": str(result.get("exec_cycles", "")),
            "messages": str(result.get("traffic", {}).get("total", "")),
            "eliminated": str(result.get("eliminated_acquisitions", "")),
            "wm_p50": latency_cell(latency, "write-miss", "p50"),
            "wm_p95": latency_cell(latency, "write-miss", "p95"),
            "wm_p99": latency_cell(latency, "write-miss", "p99"),
            "up_p50": latency_cell(latency, "upgrade", "p50"),
            "up_p95": latency_cell(latency, "upgrade", "p95"),
            "up_p99": latency_cell(latency, "upgrade", "p99"),
        })
    return rows


def rows_from_latency_report(name, doc):
    rows = []
    for run in doc.get("runs", []):
        latency = run.get("ownership_latency")
        rows.append({
            "file": name,
            "workload": str(doc.get("workload", "")),
            "seed": str(doc.get("seed", "")),
            "protocol": str(run.get("protocol", "")),
            "exec_cycles": "",
            "messages": "",
            "eliminated": "",
            "wm_p50": latency_cell(latency, "write-miss", "p50"),
            "wm_p95": latency_cell(latency, "write-miss", "p95"),
            "wm_p99": latency_cell(latency, "write-miss", "p99"),
            "up_p50": latency_cell(latency, "upgrade", "p50"),
            "up_p95": latency_cell(latency, "upgrade", "p95"),
            "up_p99": latency_cell(latency, "upgrade", "p99"),
        })
    return rows


def classify(doc):
    """Returns 'manifest', 'latency' or None for a parsed document."""
    if not isinstance(doc, dict) or doc.get("generator") != "lssim":
        return None
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return None
    first = runs[0]
    if isinstance(first, dict) and "result" in first:
        return "manifest"
    if isinstance(first, dict) and "ownership_latency" in first:
        return "latency"
    return None


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for entry in sorted(os.listdir(path)):
                if entry.endswith(".json"):
                    files.append(os.path.join(path, entry))
        else:
            files.append(path)
    return sorted(files)


def print_table(rows, out):
    widths = {c: len(c) for c in COLUMNS}
    for row in rows:
        for c in COLUMNS:
            widths[c] = max(widths[c], len(row[c]))
    header = "  ".join(c.ljust(widths[c]) for c in COLUMNS)
    print(header.rstrip(), file=out)
    print("  ".join("-" * widths[c] for c in COLUMNS).rstrip(), file=out)
    for row in rows:
        line = "  ".join(row[c].ljust(widths[c]) for c in COLUMNS)
        print(line.rstrip(), file=out)


def print_csv(rows, out):
    print(",".join(COLUMNS), file=out)
    for row in rows:
        print(",".join(row[c] for c in COLUMNS), file=out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+",
                        help="directories (scanned for *.json) or files")
    parser.add_argument("--format", choices=("table", "csv"),
                        default="table")
    parser.add_argument("--workload", help="only rows for this workload")
    parser.add_argument("--protocol", help="only rows for this protocol")
    args = parser.parse_args()

    rows = []
    skipped = 0
    for path in collect_files(args.paths):
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            skipped += 1
            continue
        kind = classify(doc)
        name = os.path.basename(path)
        if kind == "manifest":
            rows.extend(rows_from_manifest(name, doc))
        elif kind == "latency":
            rows.extend(rows_from_latency_report(name, doc))
        else:
            skipped += 1

    if args.workload:
        rows = [r for r in rows if r["workload"] == args.workload]
    if args.protocol:
        rows = [r for r in rows if r["protocol"] == args.protocol]
    if not rows:
        print("lssim_report: no lssim manifests or latency reports found",
              file=sys.stderr)
        return 1

    if args.format == "csv":
        print_csv(rows, sys.stdout)
    else:
        print_table(rows, sys.stdout)
    if skipped:
        print("lssim_report: skipped %d non-report file(s)" % skipped,
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
