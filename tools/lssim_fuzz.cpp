// lssim_fuzz — coherence verification CLI over src/check/: random trace
// fuzzing with ddmin shrinking, exhaustive small-config exploration,
// repro replay and a fault-injection selftest. docs/VERIFICATION.md has
// the full workflow.
//
//   lssim_fuzz fuzz [--seed N] [--iterations N] [--length N]
//                   [--protocol NAME] [--no-knobs] [--out DIR]
//                   [--heartbeat-out F] [--heartbeat-interval S]
//   lssim_fuzz explore [--nodes N] [--blocks N] [--depth N]
//                      [--protocol NAME] [--out DIR]
//   lssim_fuzz replay FILE...
//   lssim_fuzz selftest [--out DIR]
//
// Exit codes: 0 no violations (selftest: bug caught), 1 violations found
// (selftest: bug missed), 2 usage error, 3 output I/O failure.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "check/fuzzer.hpp"
#include "core/protocol_registry.hpp"
#include "exec/heartbeat.hpp"

namespace {

using namespace lssim;
using namespace lssim::check;

constexpr const char* kUsage =
    "usage: lssim_fuzz <mode> [options]\n"
    "\n"
    "modes:\n"
    "  fuzz      random traces, invariant-checked, failures ddmin-shrunk\n"
    "            --seed N (default 1)       base RNG seed\n"
    "            --iterations N (default 200)\n"
    "            --length N (default 48)    accesses per trace\n"
    "            --protocol NAME            restrict to one protocol\n"
    "            --compare                  replay every generated trace\n"
    "                                       under every protocol (capture\n"
    "                                       once, replay many)\n"
    "            --no-knobs                 paper-default knobs only\n"
    "            --out DIR                  write shrunk repros there\n"
    "            --heartbeat-out F          progress JSONL (\"-\" = stderr)\n"
    "            --heartbeat-interval S     seconds between lines\n"
    "                                       (default 10; 0 = every trace)\n"
    "  explore   exhaustive interleavings on a tiny config\n"
    "            --nodes N (default 2)      2..4\n"
    "            --blocks N (default 2)     1..2\n"
    "            --depth N (default 4)      accesses per sequence\n"
    "            --protocol NAME / --out DIR as above\n"
    "  replay    re-run repro files, print violations\n"
    "  selftest  inject a broken LS policy (skipped de-tag rule); the\n"
    "            checker must catch it with a shrunk repro\n";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "lssim_fuzz: %s\n\n%s", message.c_str(), kUsage);
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    usage_error("bad value for " + flag + ": '" + text + "'");
  }
}

/// Pulls the value of `flag` out of argv-style `args` when present.
bool take_value(std::vector<std::string>& args, const std::string& flag,
                std::string* out) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    if (i + 1 >= args.size()) usage_error(flag + " needs a value");
    *out = args[i + 1];
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return true;
  }
  return false;
}

bool take_switch(std::vector<std::string>& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

std::vector<ProtocolKind> parse_protocols(std::vector<std::string>& args) {
  std::string name;
  if (!take_value(args, "--protocol", &name)) {
    return {};  // All registered.
  }
  const ProtocolInfo* info = find_protocol(name);
  if (info == nullptr) {
    usage_error("unknown protocol '" + name +
                "' (known: " + registered_protocol_names() + ")");
  }
  return {info->kind};
}

/// Writes retained repros as out_dir/<stem>-<index>.repro; returns false
/// on I/O failure.
bool write_repros(const std::string& out_dir, const std::string& stem,
                  const std::vector<ReproTrace>& failures) {
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const std::string path =
        out_dir + "/" + stem + "-" + std::to_string(i) + ".repro";
    try {
      save_repro_file(path, failures[i]);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "lssim_fuzz: %s\n", ex.what());
      return false;
    }
    std::printf("repro written: %s (%zu accesses)\n", path.c_str(),
                failures[i].accesses.size());
  }
  return true;
}

int report(const std::string& mode, std::uint64_t units,
           const char* unit_name, std::uint64_t accesses,
           std::uint64_t failing, const std::vector<std::string>& messages,
           const std::vector<ReproTrace>& failures,
           const std::string& out_dir) {
  std::printf("%s: %llu %s, %llu accesses, %llu failing\n", mode.c_str(),
              static_cast<unsigned long long>(units), unit_name,
              static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(failing));
  for (const std::string& message : messages) {
    std::printf("  %s\n", message.c_str());
  }
  if (!out_dir.empty() && !write_repros(out_dir, mode, failures)) {
    return 3;
  }
  return failing == 0 ? 0 : 1;
}

int run_fuzz_mode(std::vector<std::string> args) {
  FuzzOptions options;
  options.iterations = 200;
  std::string value;
  if (take_value(args, "--seed", &value)) {
    options.seed = parse_u64("--seed", value);
  }
  if (take_value(args, "--iterations", &value)) {
    options.iterations = static_cast<int>(parse_u64("--iterations", value));
  }
  if (take_value(args, "--length", &value)) {
    options.trace_length = static_cast<int>(parse_u64("--length", value));
  }
  options.protocols = parse_protocols(args);
  options.compare_protocols = take_switch(args, "--compare");
  options.randomize_knobs = !take_switch(args, "--no-knobs");
  std::string out_dir;
  take_value(args, "--out", &out_dir);
  std::string heartbeat_out;
  take_value(args, "--heartbeat-out", &heartbeat_out);
  double heartbeat_interval = 10.0;
  if (take_value(args, "--heartbeat-interval", &value)) {
    try {
      std::size_t pos = 0;
      heartbeat_interval = std::stod(value, &pos);
      if (pos != value.size() || heartbeat_interval < 0.0) {
        throw std::invalid_argument(value);
      }
    } catch (const std::exception&) {
      usage_error("bad value for --heartbeat-interval: '" + value + "'");
    }
  }
  if (!args.empty()) usage_error("unknown argument '" + args[0] + "'");

  std::ofstream heartbeat_file;
  std::unique_ptr<HeartbeatEmitter> heartbeat;
  if (!heartbeat_out.empty()) {
    std::ostream* hb_os = &std::cerr;
    if (heartbeat_out != "-") {
      heartbeat_file.open(heartbeat_out);
      if (!heartbeat_file) {
        std::fprintf(stderr, "lssim_fuzz: cannot open %s for heartbeat\n",
                     heartbeat_out.c_str());
        return 3;
      }
      hb_os = &heartbeat_file;
    }
    heartbeat = std::make_unique<HeartbeatEmitter>(
        hb_os, heartbeat_interval,
        static_cast<std::uint64_t>(options.iterations), "trace");
    options.heartbeat = heartbeat.get();
  }

  const FuzzResult result = run_fuzzer(options);
  if (heartbeat != nullptr) {
    heartbeat->finish();
  }
  return report("fuzz", result.traces, "traces", result.accesses,
                result.failing_traces, result.messages, result.failures,
                out_dir);
}

int run_explore_mode(std::vector<std::string> args) {
  ExplorerOptions options;
  std::string value;
  int nodes = 2;
  if (take_value(args, "--nodes", &value)) {
    nodes = static_cast<int>(parse_u64("--nodes", value));
    if (nodes < 2 || nodes > 4) usage_error("--nodes must be 2..4");
  }
  options.machine = tiny_machine(nodes);
  if (take_value(args, "--blocks", &value)) {
    options.num_blocks = static_cast<int>(parse_u64("--blocks", value));
    if (options.num_blocks < 1 || options.num_blocks > 2) {
      usage_error("--blocks must be 1..2");
    }
  }
  if (take_value(args, "--depth", &value)) {
    options.depth = static_cast<int>(parse_u64("--depth", value));
    if (options.depth < 1 || options.depth > 8) {
      usage_error("--depth must be 1..8");
    }
  }
  options.protocols = parse_protocols(args);
  std::string out_dir;
  take_value(args, "--out", &out_dir);
  if (!args.empty()) usage_error("unknown argument '" + args[0] + "'");

  const ExplorerResult result = run_explorer(options);
  return report("explore", result.sequences, "sequences", result.accesses,
                result.failing_sequences, result.messages, result.failures,
                out_dir);
}

int run_replay_mode(const std::vector<std::string>& args) {
  if (args.empty()) usage_error("replay needs at least one repro file");
  std::uint64_t failing = 0;
  for (const std::string& path : args) {
    ReproTrace trace;
    try {
      trace = load_repro_file(path);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "lssim_fuzz: %s\n", ex.what());
      return 2;
    }
    const TraceRunResult run = run_trace(trace);
    std::printf("%s: %zu accesses, %llu violations\n", path.c_str(),
                trace.accesses.size(),
                static_cast<unsigned long long>(run.total_violations));
    for (const Violation& violation : run.violations) {
      std::printf("  %s\n", violation.message().c_str());
    }
    failing += run.total_violations;
  }
  return failing == 0 ? 0 : 1;
}

int run_selftest_mode(std::vector<std::string> args) {
  std::string out_dir;
  take_value(args, "--out", &out_dir);
  if (!args.empty()) usage_error("unknown argument '" + args[0] + "'");

  // Paper-default knobs so the LS tag model is armed; the injected bug
  // (skipped §3.1 foreign-access de-tag) must surface within a modest
  // fixed budget and shrink to a handful of accesses.
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 50;
  options.trace_length = 32;
  options.protocols = {ProtocolKind::kLs};
  options.randomize_knobs = false;
  options.max_failures = 1;
  const FuzzResult result = run_fuzzer(options, skip_detag_policy_factory());

  if (result.ok() || result.failures.empty()) {
    std::printf(
        "selftest: FAILED — injected skip-de-tag bug was not detected\n");
    return 1;
  }
  const ReproTrace& repro = result.failures.front();
  std::printf("selftest: injected bug caught; shrunk repro has %zu "
              "accesses\n  %s\n",
              repro.accesses.size(), result.messages.front().c_str());
  for (const ReproAccess& access : repro.accesses) {
    std::printf("  %s\n", check::to_string(access).c_str());
  }
  if (repro.accesses.size() > 12) {
    std::printf("selftest: FAILED — shrunk repro exceeds 12 accesses\n");
    return 1;
  }
  if (!out_dir.empty() && !write_repros(out_dir, "selftest", {repro})) {
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_error("missing mode");
  const std::string mode = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (mode == "--help" || mode == "-h") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  try {
    if (mode == "fuzz") return run_fuzz_mode(std::move(args));
    if (mode == "explore") return run_explore_mode(std::move(args));
    if (mode == "replay") return run_replay_mode(args);
    if (mode == "selftest") return run_selftest_mode(std::move(args));
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "lssim_fuzz: %s\n", ex.what());
    return 1;
  }
  usage_error("unknown mode '" + mode + "'");
}
