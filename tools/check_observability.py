#!/usr/bin/env python3
"""Schema validator for lssim's observability artifacts.

Validates the three transaction-level observability outputs
(docs/OBSERVABILITY.md):

  * --latency-out   ownership-latency report (JSON)
  * --audit-out     tag-decision audit trail (JSONL)
  * --heartbeat-out progress heartbeats (JSONL)

Used by the CI observability smoke step and the ctest wrapper
(tests/tools/observability_smoke_test.py); exits non-zero with a
description on the first violation, so a schema drift fails the build
instead of silently breaking downstream consumers.

Usage:
  check_observability.py --latency FILE [--protocols A,B,...]
  check_observability.py --audit FILE [--protocols A,B,...]
  check_observability.py --heartbeat FILE
(any combination of the three may be given in one invocation)
"""

import argparse
import json
import sys

LATENCY_OPS = ("read-miss", "write-miss", "upgrade")

AUDIT_EVENTS = {"tag", "detag", "tag-progress", "detag-progress"}
AUDIT_REASONS = {
    "ls-sequence",
    "migratory-detect",
    "migratory-fallback",
    "lone-write",
    "foreign-access",
    "replacement",
    "upgrade-invalidations",
}


class SchemaError(Exception):
    pass


def fail(message):
    raise SchemaError(message)


def check_latency(path, protocols):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail("latency report: top level must be an object")
    if doc.get("schema_version") != 1:
        fail("latency report: schema_version must be 1, got %r"
             % doc.get("schema_version"))
    if doc.get("generator") != "lssim":
        fail("latency report: generator must be 'lssim'")
    for key in ("workload", "seed", "runs"):
        if key not in doc:
            fail("latency report: missing %r" % key)
    runs = doc["runs"]
    if not isinstance(runs, list) or not runs:
        fail("latency report: 'runs' must be a non-empty array")
    seen = []
    for run in runs:
        if not isinstance(run, dict) or "protocol" not in run:
            fail("latency report: each run needs a 'protocol'")
        seen.append(run["protocol"])
        latency = run.get("ownership_latency")
        if latency is None:
            fail("latency report: run %r has no ownership_latency "
                 "(metrics were off?)" % run["protocol"])
        if not isinstance(latency, dict):
            fail("latency report: ownership_latency must be an object")
        for op, digest in latency.items():
            if op not in LATENCY_OPS:
                fail("latency report: unknown op %r" % op)
            for key in ("samples", "sum", "mean", "p50", "p95", "p99",
                        "buckets"):
                if key not in digest:
                    fail("latency report: %s/%s missing %r"
                         % (run["protocol"], op, key))
            if digest["samples"] > 0:
                if not (digest["p50"] <= digest["p95"] <= digest["p99"]):
                    fail("latency report: %s/%s percentiles not "
                         "monotonic: p50=%r p95=%r p99=%r"
                         % (run["protocol"], op, digest["p50"],
                            digest["p95"], digest["p99"]))
                if sum(digest["buckets"]) != digest["samples"]:
                    fail("latency report: %s/%s bucket counts do not sum "
                         "to samples" % (run["protocol"], op))
    for wanted in protocols:
        if wanted not in seen:
            fail("latency report: protocol %r missing (have: %s)"
                 % (wanted, ", ".join(seen)))
    return len(runs)


def check_audit(path, protocols):
    records = 0
    summaries = {}
    per_protocol_records = {}
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as ex:
                fail("audit line %d: not JSON (%s)" % (lineno, ex))
            if not isinstance(rec, dict):
                fail("audit line %d: must be an object" % lineno)
            proto = rec.get("protocol")
            if not isinstance(proto, str):
                fail("audit line %d: missing 'protocol'" % lineno)
            if rec.get("event") == "summary":
                if proto in summaries:
                    fail("audit line %d: duplicate summary for %r"
                         % (lineno, proto))
                for key in ("recorded", "retained"):
                    if not isinstance(rec.get(key), int):
                        fail("audit line %d: summary needs integer %r"
                             % (lineno, key))
                if rec["retained"] > rec["recorded"]:
                    fail("audit line %d: retained > recorded" % lineno)
                summaries[proto] = rec
                continue
            records += 1
            per_protocol_records[proto] = \
                per_protocol_records.get(proto, 0) + 1
            if rec.get("event") not in AUDIT_EVENTS:
                fail("audit line %d: unknown event %r"
                     % (lineno, rec.get("event")))
            if rec.get("reason") not in AUDIT_REASONS:
                fail("audit line %d: unknown reason %r"
                     % (lineno, rec.get("reason")))
            for key in ("time", "block", "node", "tag_progress",
                        "detag_progress"):
                if not isinstance(rec.get(key), int):
                    fail("audit line %d: missing integer %r" % (lineno, key))
            if not isinstance(rec.get("tagged"), bool):
                fail("audit line %d: missing boolean 'tagged'" % lineno)
            if proto in summaries:
                fail("audit line %d: record after summary for %r"
                     % (lineno, proto))
    if not summaries:
        fail("audit trail: no summary lines")
    for proto, summary in summaries.items():
        have = per_protocol_records.get(proto, 0)
        if have != summary["retained"]:
            fail("audit trail: %r has %d records but summary says "
                 "retained=%d" % (proto, have, summary["retained"]))
    for wanted in protocols:
        if wanted not in summaries:
            fail("audit trail: protocol %r missing (have: %s)"
                 % (wanted, ", ".join(sorted(summaries))))
    return records


def check_heartbeat(path):
    lines = 0
    finals = 0
    last_type = None
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as ex:
                fail("heartbeat line %d: not JSON (%s)" % (lineno, ex))
            if rec.get("type") not in ("heartbeat", "final"):
                fail("heartbeat line %d: unknown type %r"
                     % (lineno, rec.get("type")))
            for key in ("unit", "done", "accesses", "elapsed_seconds",
                        "accesses_per_sec"):
                if key not in rec:
                    fail("heartbeat line %d: missing %r" % (lineno, key))
            if rec["elapsed_seconds"] < 0:
                fail("heartbeat line %d: negative elapsed_seconds" % lineno)
            lines += 1
            last_type = rec["type"]
            if rec["type"] == "final":
                finals += 1
    if lines == 0:
        fail("heartbeat: no lines")
    if finals != 1:
        fail("heartbeat: expected exactly one final line, got %d" % finals)
    if last_type != "final":
        fail("heartbeat: final line must be last")
    return lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--latency", help="ownership-latency report (JSON)")
    parser.add_argument("--audit", help="tag-decision audit trail (JSONL)")
    parser.add_argument("--heartbeat", help="heartbeat stream (JSONL)")
    parser.add_argument("--protocols", default="",
                        help="comma-separated protocol names that must "
                             "appear in --latency/--audit")
    args = parser.parse_args()
    if not (args.latency or args.audit or args.heartbeat):
        parser.error("give at least one of --latency/--audit/--heartbeat")
    protocols = [p for p in args.protocols.split(",") if p]

    try:
        if args.latency:
            n = check_latency(args.latency, protocols)
            print("latency report OK: %d run(s)" % n)
        if args.audit:
            n = check_audit(args.audit, protocols)
            print("audit trail OK: %d record(s)" % n)
        if args.heartbeat:
            n = check_heartbeat(args.heartbeat)
            print("heartbeat OK: %d line(s)" % n)
    except SchemaError as ex:
        print("check_observability: %s" % ex, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
