// lssim_run — command-line driver for single simulations and protocol
// comparisons. See --help (driver_usage in src/driver/options.hpp).
#include <cstdio>
#include <exception>
#include <iostream>

#include "driver/options.hpp"
#include "driver/runner.hpp"

int main(int argc, char** argv) {
  using namespace lssim;

  DriverOptions options;
  std::string error;
  if (!parse_driver_args(argc, argv, &options, &error)) {
    std::fprintf(stderr, "lssim_run: %s\n\n%s", error.c_str(),
                 driver_usage().c_str());
    return 2;
  }
  if (options.show_help) {
    std::fputs(driver_usage().c_str(), stdout);
    return 0;
  }
  if (!driver_knows_workload(options.workload)) {
    std::fprintf(stderr, "lssim_run: unknown workload '%s'\n\n%s",
                 options.workload.c_str(), driver_usage().c_str());
    return 2;
  }

  try {
    std::vector<RunResult> results;
    results.reserve(options.protocols.size());
    for (ProtocolKind kind : options.protocols) {
      results.push_back(run_driver_workload(options, kind));
    }
    print_driver_results(std::cout, options, results);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "lssim_run: %s\n", ex.what());
    return 1;
  }
  return 0;
}
