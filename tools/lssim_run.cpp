// lssim_run — command-line driver for single simulations and protocol
// comparisons. See --help (driver_usage in src/driver/options.hpp).
//
// Exit codes: 0 success, 1 runtime error (bad workload parameters,
// invalid machine config), 2 usage error — including a --replay-from
// trace whose machine-config hash does not match the simulated machine,
// 3 output I/O failure (results or a --*-out artifact could not be
// fully written), 4 coherence invariant violation (--check-invariants;
// details on stderr), 5 replay cross-check divergence
// (--replay-crosscheck; field-by-field diff on stderr).
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/directory_registry.hpp"
#include "core/protocol_registry.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "exec/heartbeat.hpp"
#include "trace/replay_compare.hpp"

int main(int argc, char** argv) {
  using namespace lssim;

  DriverOptions options;
  std::string error;
  if (!parse_driver_args(argc, argv, &options, &error)) {
    std::fprintf(stderr, "lssim_run: %s\n\n%s", error.c_str(),
                 driver_usage().c_str());
    return 2;
  }
  if (options.show_help) {
    std::fputs(driver_usage().c_str(), stdout);
    return 0;
  }
  if (options.list_mode()) {
    // Discovery flags: canonical registry names, one per line, so shell
    // scripts can build sweep matrices without hardcoding the family.
    if (options.list_protocols) {
      for (const ProtocolInfo& info : registered_protocols()) {
        std::printf("%s\n", info.name);
      }
    }
    if (options.list_directories) {
      for (const DirectoryInfo& info : registered_directories()) {
        std::printf("%s\n", info.name);
      }
    }
    if (options.list_interconnects) {
      for (const InterconnectNameEntry& entry : kInterconnectNameTable) {
        std::printf("%s\n", entry.name);
      }
    }
    return 0;
  }
  if (!driver_knows_workload(options.workload)) {
    std::fprintf(stderr, "lssim_run: unknown workload '%s'\n\n%s",
                 options.workload.c_str(), driver_usage().c_str());
    return 2;
  }

  if (options.replay_mode()) {
    // Capture-once / replay-many path (docs/PERFORMANCE.md). Telemetry
    // artifacts (--metrics-out etc.) need live Systems and are not
    // produced here; the execution-driven path stays the default and the
    // ground truth for every figure.
    try {
      const ReplayDriverOutcome outcome = run_driver_replay(options);
      print_driver_results(std::cout, options, outcome.results);
      std::cout.flush();
      if (!std::cout) {
        std::fprintf(stderr,
                     "lssim_run: failed writing results to stdout\n");
        return 3;
      }
      if (!outcome.divergences.empty()) {
        std::fprintf(stderr,
                     "lssim_run: replay cross-check diverged from live "
                     "execution (%zu stat(s)):\n",
                     outcome.divergences.size());
        for (const std::string& diff : outcome.divergences) {
          std::fprintf(stderr, "lssim_run:   %s\n", diff.c_str());
        }
        return 5;
      }
    } catch (const TraceConfigMismatch& ex) {
      std::fprintf(stderr, "lssim_run: %s\n", ex.what());
      return 2;
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "lssim_run: %s\n", ex.what());
      return 1;
    }
    return 0;
  }

  try {
    // --heartbeat-out: periodic progress JSONL ("-" = stderr so stdout
    // stays machine-parseable results).
    std::ofstream heartbeat_file;
    std::unique_ptr<HeartbeatEmitter> heartbeat;
    if (!options.heartbeat_out.empty()) {
      std::ostream* hb_os = &std::cerr;
      if (options.heartbeat_out != "-") {
        heartbeat_file.open(options.heartbeat_out);
        if (!heartbeat_file) {
          std::fprintf(stderr, "lssim_run: cannot open %s for heartbeat\n",
                       options.heartbeat_out.c_str());
          return 3;
        }
        hb_os = &heartbeat_file;
      }
      const std::size_t total_runs =
          options.protocols.size() *
          (options.directories.empty() ? 1 : options.directories.size()) *
          (options.interconnects.empty() ? 1
                                         : options.interconnects.size());
      heartbeat = std::make_unique<HeartbeatEmitter>(
          hb_os, options.heartbeat_interval,
          static_cast<std::uint64_t>(total_runs), "run");
    }

    const auto start = std::chrono::steady_clock::now();
    // Fans the per-protocol simulations out across --jobs host threads;
    // result order (and so every artifact byte) matches a serial sweep.
    std::vector<DriverRun> runs =
        run_driver_workloads_captured(options, heartbeat.get());
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::vector<RunResult> results;
    results.reserve(runs.size());
    for (const DriverRun& run : runs) {
      results.push_back(run.result);
    }
    print_driver_results(std::cout, options, results);
    // Flush and verify: JSON/CSV output often feeds a pipeline, and a
    // half-written document must not exit 0.
    std::cout.flush();
    if (!std::cout) {
      std::fprintf(stderr, "lssim_run: failed writing results to stdout\n");
      return 3;
    }
    {
      const PhaseTimer timer(heartbeat.get(), "artifacts");
      if (!write_driver_artifacts(options, runs, wall_seconds, &error)) {
        std::fprintf(stderr, "lssim_run: %s\n", error.c_str());
        return 3;
      }
    }
    if (heartbeat != nullptr) {
      heartbeat->finish();
      if (heartbeat_file.is_open()) {
        heartbeat_file.flush();
        if (!heartbeat_file) {
          std::fprintf(stderr, "lssim_run: failed writing heartbeat to %s\n",
                       options.heartbeat_out.c_str());
          return 3;
        }
      }
    }
    // --check-invariants: artifacts above are still written (they help
    // debug the violation), but the run must not exit 0.
    std::uint64_t violations = 0;
    for (const DriverRun& run : runs) {
      violations += run.invariant_violations;
      for (const std::string& message : run.invariant_messages) {
        if (options.directories.size() > 1) {
          std::fprintf(stderr, "lssim_run: [%s@%s] %s\n",
                       to_string(run.result.protocol),
                       directory_name(run.result.directory),
                       message.c_str());
        } else {
          std::fprintf(stderr, "lssim_run: [%s] %s\n",
                       to_string(run.result.protocol), message.c_str());
        }
      }
    }
    if (violations > 0) {
      std::fprintf(stderr,
                   "lssim_run: %llu coherence invariant violation(s)\n",
                   static_cast<unsigned long long>(violations));
      return 4;
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "lssim_run: %s\n", ex.what());
    return 1;
  }
  return 0;
}
