// lssim_sweep — fleet-scale sweep orchestration (ROADMAP item 4).
//
// Generates the cross-product of protocols × directory organisations ×
// interconnects × node counts × cache/block geometries × workloads,
// prunes invalid machines through the sim/config validators, filters by
// label substrings, and runs the surviving configs — sharded across
// machines, fanned across host threads, resumable — appending one
// record per config hash to a versioned JSONL results store that
// tools/bench_compare.py --store gates and trends.
//
//   lssim_sweep --store sweep.jsonl [axes] [filters] [run options]
//
// Axes (comma-separated lists; "all" expands a registry):
//   --workloads W,...      workload names        (default pingpong)
//   --protocols P,...|all  protocol names        (default all)
//   --directories D,...|all directory orgs      (default full-map)
//   --interconnects I,...|all transports        (default network)
//   --nodes N,...          node counts           (default 4)
//   --l1 S,... --l2 S,...  cache sizes (4k, 64k) (default 4k / 64k)
//   --blocks B,...         block sizes in bytes  (default 16)
//   --set key=value        workload parameter (repeatable, all units)
//   --seed N               workload seed         (default 1)
//
// Filters (repeatable, match against the unit label
// "workload/protocol/directory/interconnect/nN/l1=…/l2=…/bB"):
//   --include SUBSTR       keep only labels containing any SUBSTR
//   --exclude SUBSTR       drop labels containing SUBSTR
//
// Run options:
//   --store FILE           results store (required unless --list/--count)
//   --jobs N               worker threads per batch (default all cores)
//   --shard I/N            run units with index ≡ I (mod N) (default 0/1)
//   --batch N              units per append wave (default 16)
//   --no-timing            write wall_seconds as 0.0 (reproducible store)
//   --max-cycles N         per-unit watchdog budget (0 = off)
//   --quiet                no per-unit progress on stderr
//
// Inspection (no simulation, no store):
//   --count                print matrix arithmetic and exit 0
//   --list                 print "hash label" per unit and exit 0
//
// Exit codes: 0 ok, 1 one or more units failed (the store keeps every
// success; rerun to retry failures), 2 usage, 3 store I/O.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/protocol_registry.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "exec/parallel_executor.hpp"
#include "sweep/matrix.hpp"
#include "sweep/runner.hpp"
#include "trace/config_hash.hpp"

namespace {

using namespace lssim;

/// Splits "a,b,c" (empty elements are usage errors handled by parsers).
std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_int_list(const std::string& csv, std::vector<int>* out) {
  for (const std::string& item : split_csv(csv)) {
    if (item.empty()) return false;
    char* end = nullptr;
    const long value = std::strtol(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || value <= 0) return false;
    out->push_back(static_cast<int>(value));
  }
  return true;
}

bool parse_size_list(const std::string& csv, std::vector<std::uint32_t>* out) {
  for (const std::string& item : split_csv(csv)) {
    std::uint64_t value = 0;
    if (!parse_size(item, &value) || value == 0) return false;
    out->push_back(static_cast<std::uint32_t>(value));
  }
  return true;
}

int usage(const char* why) {
  std::fprintf(stderr, "lssim_sweep: %s\n(run with --help for usage)\n",
               why);
  return 2;
}

void print_help() {
  std::fputs(
      "lssim_sweep --store FILE [axes] [filters] [run options]\n"
      "axes: --workloads W,.. --protocols P,..|all --directories D,..|all\n"
      "      --interconnects I,..|all --nodes N,.. --l1 S,.. --l2 S,..\n"
      "      --blocks B,.. --set k=v --seed N\n"
      "filters: --include SUBSTR --exclude SUBSTR (repeatable)\n"
      "run: --jobs N --shard I/N --batch N --no-timing --max-cycles N"
      " --quiet\n"
      "inspect: --count | --list (no simulation, no store)\n"
      "exit: 0 ok, 1 unit failure(s), 2 usage, 3 store I/O\n",
      stdout);
}

std::string host_git_commit() {
  std::string commit;
  if (FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (line.size() == 40 &&
          line.find_first_not_of("0123456789abcdef") == std::string::npos) {
        commit = line;
      }
    }
    pclose(pipe);
  }
  return commit;
}

}  // namespace

int main(int argc, char** argv) {
  SweepAxes axes;
  axes.workloads = {"pingpong"};
  axes.protocols = all_protocol_kinds();
  axes.directories = {DirectoryKind::kFullMap};
  axes.interconnects = {InterconnectKind::kNetwork};
  axes.node_counts = {4};
  axes.l1_sizes = {axes.base.l1.size_bytes};
  axes.l2_sizes = {axes.base.l2.size_bytes};
  axes.block_sizes = {axes.base.l1.block_bytes};

  std::string store_path;
  SweepRunOptions run_options;
  run_options.jobs = 0;  // parallel executor: 0 = all cores
  bool list_units = false;
  bool count_only = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    std::string error;
    if (std::strcmp(argv[i], "--help") == 0) {
      print_help();
      return 0;
    } else if (std::strcmp(argv[i], "--store") == 0) {
      const char* v = value("--store");
      if (v == nullptr) return usage("--store needs a file path");
      store_path = v;
    } else if (std::strcmp(argv[i], "--workloads") == 0 ||
               std::strcmp(argv[i], "--workload") == 0) {
      const char* v = value("--workloads");
      if (v == nullptr) return usage("--workloads needs a list");
      axes.workloads = split_csv(v);
    } else if (std::strcmp(argv[i], "--protocols") == 0) {
      const char* v = value("--protocols");
      if (v == nullptr) return usage("--protocols needs a list");
      if (std::strcmp(v, "all") == 0) {
        axes.protocols = all_protocol_kinds();
      } else if (!resolve_protocol_list(v, &axes.protocols, &error)) {
        return usage(error.c_str());
      }
    } else if (std::strcmp(argv[i], "--directories") == 0) {
      const char* v = value("--directories");
      if (v == nullptr) return usage("--directories needs a list");
      if (std::strcmp(v, "all") == 0) {
        axes.directories.clear();
        for (const DirectoryNameEntry& entry : kDirectoryNameTable) {
          axes.directories.push_back(entry.kind);
        }
      } else if (!resolve_directory_list(v, &axes.directories, &error)) {
        return usage(error.c_str());
      }
    } else if (std::strcmp(argv[i], "--interconnects") == 0) {
      const char* v = value("--interconnects");
      if (v == nullptr) return usage("--interconnects needs a list");
      if (std::strcmp(v, "all") == 0) {
        axes.interconnects.clear();
        for (const InterconnectNameEntry& entry : kInterconnectNameTable) {
          axes.interconnects.push_back(entry.kind);
        }
      } else if (!resolve_interconnect_list(v, &axes.interconnects,
                                            &error)) {
        return usage(error.c_str());
      }
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      const char* v = value("--nodes");
      axes.node_counts.clear();
      if (v == nullptr || !parse_int_list(v, &axes.node_counts)) {
        return usage("--nodes needs positive integers, e.g. 4,16,64");
      }
    } else if (std::strcmp(argv[i], "--l1") == 0) {
      const char* v = value("--l1");
      axes.l1_sizes.clear();
      if (v == nullptr || !parse_size_list(v, &axes.l1_sizes)) {
        return usage("--l1 needs sizes, e.g. 4k,8k");
      }
    } else if (std::strcmp(argv[i], "--l2") == 0) {
      const char* v = value("--l2");
      axes.l2_sizes.clear();
      if (v == nullptr || !parse_size_list(v, &axes.l2_sizes)) {
        return usage("--l2 needs sizes, e.g. 64k,128k");
      }
    } else if (std::strcmp(argv[i], "--blocks") == 0) {
      const char* v = value("--blocks");
      axes.block_sizes.clear();
      if (v == nullptr || !parse_size_list(v, &axes.block_sizes)) {
        return usage("--blocks needs sizes, e.g. 16,32,64");
      }
    } else if (std::strcmp(argv[i], "--set") == 0) {
      const char* v = value("--set");
      if (v == nullptr) return usage("--set needs key=value");
      const std::string kv = v;
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        return usage("--set needs key=value");
      }
      axes.params.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = value("--seed");
      if (v == nullptr) return usage("--seed needs a number");
      axes.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--include") == 0) {
      const char* v = value("--include");
      if (v == nullptr) return usage("--include needs a substring");
      axes.include.emplace_back(v);
    } else if (std::strcmp(argv[i], "--exclude") == 0) {
      const char* v = value("--exclude");
      if (v == nullptr) return usage("--exclude needs a substring");
      axes.exclude.emplace_back(v);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      const char* v = value("--jobs");
      if (v == nullptr) return usage("--jobs needs a number");
      run_options.jobs = std::atoi(v);
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      const char* v = value("--shard");
      int index = 0;
      int count = 0;
      if (v == nullptr || std::sscanf(v, "%d/%d", &index, &count) != 2 ||
          count < 1 || index < 0 || index >= count) {
        return usage("--shard needs I/N with 0 <= I < N");
      }
      run_options.shard_index = index;
      run_options.shard_count = count;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      const char* v = value("--batch");
      if (v == nullptr || std::atoi(v) < 1) {
        return usage("--batch needs a positive count");
      }
      run_options.batch = static_cast<std::size_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--no-timing") == 0) {
      run_options.record_timing = false;
    } else if (std::strcmp(argv[i], "--max-cycles") == 0) {
      const char* v = value("--max-cycles");
      if (v == nullptr) return usage("--max-cycles needs a number");
      axes.base.max_cycles = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list_units = true;
    } else if (std::strcmp(argv[i], "--count") == 0) {
      count_only = true;
    } else {
      return usage((std::string("unknown argument '") + argv[i] + "'")
                       .c_str());
    }
  }

  SweepMatrix matrix;
  std::string error;
  if (!generate_sweep(axes, &matrix, &error)) {
    return usage(error.c_str());
  }
  std::fprintf(stderr,
               "lssim_sweep: %zu combinations -> %zu valid units "
               "(%zu pruned invalid, %zu filtered out)\n",
               matrix.combinations, matrix.units.size(),
               matrix.pruned_invalid, matrix.filtered_out);

  if (count_only) {
    std::printf("combinations %zu\nunits %zu\npruned_invalid %zu\n"
                "filtered_out %zu\n",
                matrix.combinations, matrix.units.size(),
                matrix.pruned_invalid, matrix.filtered_out);
    return 0;
  }
  if (list_units) {
    for (const SweepUnit& unit : matrix.units) {
      std::printf("%s %s\n", format_config_hash(unit.config_hash).c_str(),
                  unit.label.c_str());
    }
    return 0;
  }
  if (store_path.empty()) {
    return usage("--store is required (or use --list / --count)");
  }

  ResultsStore::Provenance provenance;
  provenance.git_commit = host_git_commit();
  provenance.host_hardware_concurrency = default_jobs();
  provenance.jobs = run_options.jobs;
  ResultsStore store;
  if (!store.open(store_path, provenance, &error)) {
    std::fprintf(stderr, "lssim_sweep: %s\n", error.c_str());
    return 3;
  }
  if (store.duplicate_hashes() > 0) {
    std::fprintf(stderr,
                 "lssim_sweep: warning: store already contains %zu "
                 "duplicate config hash(es)\n",
                 store.duplicate_hashes());
  }

  if (!quiet) {
    run_options.progress = [](const SweepUnit& unit, std::size_t done,
                              std::size_t total) {
      std::fprintf(stderr, "lssim_sweep: [%zu/%zu] %s\n", done, total,
                   unit.label.c_str());
    };
  }

  SweepRunSummary summary;
  if (!run_sweep(matrix.units, store, run_options, &summary, &error)) {
    std::fprintf(stderr, "lssim_sweep: %s\n", error.c_str());
    return 3;
  }
  std::fprintf(stderr,
               "lssim_sweep: shard %d/%d: %zu units, %zu skipped "
               "(resume), %zu executed, %zu failed -> %s\n",
               run_options.shard_index, run_options.shard_count,
               summary.in_shard, summary.skipped, summary.executed,
               summary.failed, store_path.c_str());
  for (const std::string& unit_error : summary.errors) {
    std::fprintf(stderr, "lssim_sweep: FAILED %s\n", unit_error.c_str());
  }
  return summary.failed == 0 ? 0 : 1;
}
