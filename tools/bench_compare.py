#!/usr/bin/env python3
"""Compare two perf-baseline files (bench/perf_baseline output).

    tools/bench_compare.py OLD.json NEW.json [--threshold 0.10]

Prints a per-figure table of serial wall clock and throughput, then exits
non-zero if any figure's serial time regressed by more than the threshold
(default 10%). Figures present in only one file are reported but never
fail the comparison (the suite grows over time). Only wall-clock/throughput
fields are compared — cycle counts are covered by the simulator's own
determinism checks.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "figures" not in doc:
        sys.exit(f"{path}: not a perf_baseline document (no 'figures')")
    return doc


def by_name(doc):
    return {fig["name"]: fig for fig in doc["figures"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="baseline BENCH_results.json")
    parser.add_argument("new", help="candidate BENCH_results.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional serial-time regression that fails (default 0.10)",
    )
    args = parser.parse_args()

    old_doc, new_doc = load(args.old), load(args.new)
    if old_doc.get("quick") != new_doc.get("quick"):
        print(
            "warning: comparing a --quick baseline against a full one; "
            "wall-clock deltas are not meaningful",
            file=sys.stderr,
        )
    # Host provenance: comparing captures from machines with different
    # core counts (or different --jobs) makes the speedup numbers — and,
    # across CPU generations, often the serial times too — incomparable.
    # Warn loudly rather than fail: the serial-time regression gate below
    # is still the contract.
    old_cores = old_doc.get("host_hardware_concurrency")
    new_cores = new_doc.get("host_hardware_concurrency")
    if old_cores != new_cores:
        print(
            f"warning: host core counts differ "
            f"(old: {old_cores}, new: {new_cores}); speedup and "
            f"wall-clock deltas are not comparable across hosts",
            file=sys.stderr,
        )
    # Build provenance: wall-clock deltas across different commits fold
    # code changes into the comparison. That is often exactly what the
    # user wants (did my change regress perf?), so warn — never fail —
    # and let the serial-time gate below judge the numbers.
    old_commit = old_doc.get("git_commit")
    new_commit = new_doc.get("git_commit")
    if old_commit and new_commit and old_commit != new_commit:
        print(
            f"warning: baselines come from different commits "
            f"(old: {old_commit[:12]}, new: {new_commit[:12]}); "
            f"wall-clock deltas include code changes, not just host noise",
            file=sys.stderr,
        )
    for key in ("directory", "interconnect"):
        if (old_doc.get(key) or new_doc.get(key)) and \
                old_doc.get(key) != new_doc.get(key):
            print(
                f"warning: suite {key} differs "
                f"(old: {old_doc.get(key)}, new: {new_doc.get(key)}); "
                f"the baselines measured different machines",
                file=sys.stderr,
            )
    if old_doc.get("jobs") != new_doc.get("jobs"):
        print(
            f"warning: parallel passes used different --jobs "
            f"(old: {old_doc.get('jobs')}, new: {new_doc.get('jobs')}); "
            f"speedup numbers are not comparable",
            file=sys.stderr,
        )
    old_figs, new_figs = by_name(old_doc), by_name(new_doc)

    regressions = []
    print(f"{'figure':<24} {'old s':>9} {'new s':>9} {'delta':>8}  verdict")
    for name, new_fig in new_figs.items():
        old_fig = old_figs.get(name)
        if old_fig is None:
            print(f"{name:<24} {'-':>9} "
                  f"{new_fig.get('serial_seconds', 0.0):>9.3f} "
                  f"{'-':>8}  new figure")
            continue
        old_s = old_fig.get("serial_seconds", 0.0)
        new_s = new_fig.get("serial_seconds", 0.0)
        delta = (new_s - old_s) / old_s if old_s > 0 else 0.0
        verdict = "ok"
        if delta > args.threshold:
            verdict = "REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            verdict = "improved"
        print(f"{name:<24} {old_s:>9.3f} {new_s:>9.3f} {delta:>+7.1%}  "
              f"{verdict}")
    for name in old_figs:
        if name not in new_figs:
            print(f"{name:<24} "
                  f"{old_figs[name].get('serial_seconds', 0.0):>9.3f} "
                  f"{'-':>9} {'-':>8}  removed")

    # Capture-once / replay-many timings (informational, never gated):
    # per workload, execute-vs-replay wall clock for a full protocol
    # sweep. Older baselines predate the section; .get() defaults keep
    # them comparable.
    old_replay = {e.get("name"): e for e in old_doc.get("replay_compare", [])}
    new_replay = new_doc.get("replay_compare", [])
    if new_replay or old_replay:
        print(f"\n{'replay workload':<24} {'execute s':>9} {'replay s':>9} "
              f"{'speedup':>8}  vs old")
        for entry in new_replay:
            name = entry.get("name", "?")
            speedup = entry.get("speedup", 0.0)
            old_entry = old_replay.get(name)
            old_speedup = (old_entry or {}).get("speedup", 0.0)
            vs_old = (f"{old_speedup:.2f}x -> {speedup:.2f}x"
                      if old_entry is not None else "new")
            print(f"{name:<24} {entry.get('execute_seconds', 0.0):>9.3f} "
                  f"{entry.get('replay_seconds', 0.0):>9.3f} "
                  f"{speedup:>7.2f}x  {vs_old}")
        for name in old_replay:
            if not any(e.get("name") == name for e in new_replay):
                print(f"{name:<24} {'-':>9} {'-':>9} {'-':>8}  removed")

    # Always print the total summary; an old total of zero (interrupted
    # or synthetic capture) just reports no delta instead of dividing.
    old_total = old_doc.get("serial_seconds", 0.0)
    new_total = new_doc.get("serial_seconds", 0.0)
    total_delta = ((new_total - old_total) / old_total if old_total > 0
                   else 0.0)
    print(f"\ntotal serial: {old_total:.2f}s -> {new_total:.2f}s "
          f"({total_delta:+.1%}); "
          f"speedup at --jobs {new_doc.get('jobs')}: "
          f"{new_doc.get('speedup') or 0:.2f}x")

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(
            f"\nFAIL: {len(regressions)} figure(s) regressed more than "
            f"{args.threshold:.0%} (worst: {worst[0]} {worst[1]:+.1%})",
            file=sys.stderr,
        )
        return 1
    print("\nno serial-time regressions above "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
