#!/usr/bin/env python3
"""Compare perf-baseline files or sweep results stores.

Baseline mode (bench/perf_baseline output):

    tools/bench_compare.py OLD.json NEW.json [--threshold 0.10]

Prints a per-figure table of serial wall clock and throughput, then a
capture/replay table, and exits non-zero if any figure's serial time —
or any replay workload's steady-state speedup — regressed by more than
the threshold (default 10%). Figures present in only one file are
reported but never fail the comparison (the suite grows over time).
Only wall-clock/throughput fields are compared — cycle counts are
covered by the simulator's own determinism checks. A null `speedup`
(capture taken without real concurrency: 1-core host or --jobs 1) is
skipped with a warning, never compared.

Store mode (tools/lssim_sweep JSONL results stores):

    tools/bench_compare.py --store OLD.jsonl NEW.jsonl [--threshold 0.10]
    tools/bench_compare.py --store --trend S1.jsonl S2.jsonl [S3.jsonl...]

Two stores: per-config regression gates, keyed by sweep config hash —
wall-clock regressions beyond the threshold fail (skipped when either
side recorded no timing), and simulated-stat changes (exec cycles,
traffic) are reported; sim stats are deterministic, so a change means
the simulator changed, which is exactly what the report surfaces after
an intentional change. With --trend, any number of stores are
summarised oldest-to-newest and nothing ever fails — the CI-friendly
informational invocation.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "figures" not in doc:
        sys.exit(f"{path}: not a perf_baseline document (no 'figures')")
    return doc


def by_name(doc):
    return {fig["name"]: fig for fig in doc["figures"]}


def fmt_speedup(value):
    """'2.50x' for a positive number, '-' for null/absent/zero."""
    return f"{value:.2f}x" if isinstance(value, (int, float)) and value > 0 \
        else "-"


def load_store(path):
    """Loads a lssim_sweep JSONL store: (header, {hash: record}).

    Mirrors the C++ reader's read-only semantics: a partial trailing
    line (interrupted append) is skipped; unknown record kinds are
    skipped; a malformed complete line or a missing header is fatal.
    """
    header = None
    records = {}
    with open(path, "rb") as f:
        data = f.read()
    body, _, tail = data.rpartition(b"\n")
    lines = body.split(b"\n") if body else []
    # `tail` (text after the final newline) is a partial append: ignored.
    for i, raw in enumerate(lines):
        if not raw.strip():
            continue
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{i + 1}: malformed store line: {e}")
        kind = doc.get("kind")
        if kind == "header":
            header = doc
        elif kind == "result":
            try:
                key = int(doc["hash"], 16)
            except (KeyError, TypeError, ValueError):
                sys.exit(f"{path}:{i + 1}: result line without a hex hash")
            records[key] = doc
        # Unknown kinds: forward compatibility, skip.
    if header is None:
        sys.exit(f"{path}: not a sweep results store (no header line)")
    return header, records


def store_stat(record, key):
    return (record.get("result") or {}).get(key)


def compare_stores(old_path, new_path, threshold):
    old_header, old_records = load_store(old_path)
    new_header, new_records = load_store(new_path)
    for side, header in (("old", old_header), ("new", new_header)):
        if header.get("schema_version") != 1:
            print(f"warning: {side} store has schema_version "
                  f"{header.get('schema_version')}; this script knows 1",
                  file=sys.stderr)
    if old_header.get("hash_version") != new_header.get("hash_version"):
        print("warning: stores use different config-hash versions "
              f"(old: {old_header.get('hash_version')}, "
              f"new: {new_header.get('hash_version')}); hashes do not "
              "correspond and most configs will pair as added/removed",
              file=sys.stderr)
    if old_header.get("host_hardware_concurrency") != \
            new_header.get("host_hardware_concurrency"):
        print("warning: stores come from hosts with different core counts; "
              "wall-clock deltas are not comparable", file=sys.stderr)

    shared = [h for h in new_records if h in old_records]
    added = [h for h in new_records if h not in old_records]
    removed = [h for h in old_records if h not in new_records]

    regressions = []
    stat_changes = 0
    untimed = 0
    print(f"{len(old_records)} old / {len(new_records)} new configs: "
          f"{len(shared)} shared, {len(added)} added, {len(removed)} removed")
    print(f"{'config':<52} {'old s':>8} {'new s':>8} {'delta':>8}  verdict")
    for h in shared:
        old_rec, new_rec = old_records[h], new_records[h]
        label = new_rec.get("label") or f"0x{h:016x}"
        old_s = old_rec.get("wall_seconds") or 0.0
        new_s = new_rec.get("wall_seconds") or 0.0
        cycles_changed = any(
            store_stat(old_rec, k) != store_stat(new_rec, k)
            for k in ("exec_cycles", "traffic"))
        if cycles_changed:
            stat_changes += 1
        if old_s > 0 and new_s > 0:
            delta = (new_s - old_s) / old_s
            verdict = "ok"
            if delta > threshold:
                verdict = "REGRESSION"
                regressions.append((label, delta))
            elif delta < -threshold:
                verdict = "improved"
            if cycles_changed:
                verdict += " (stats changed)"
            print(f"{label:<52} {old_s:>8.3f} {new_s:>8.3f} {delta:>+7.1%}  "
                  f"{verdict}")
        else:
            # Timing capture was off (reproducible-store mode) on at
            # least one side: nothing to gate on wall clock.
            untimed += 1
            if cycles_changed:
                print(f"{label:<52} {'-':>8} {'-':>8} {'-':>8}  "
                      f"stats changed")
    for h in added:
        label = new_records[h].get("label") or f"0x{h:016x}"
        print(f"{label:<52} {'-':>8} "
              f"{new_records[h].get('wall_seconds') or 0.0:>8.3f} "
              f"{'-':>8}  new config")
    for h in removed:
        label = old_records[h].get("label") or f"0x{h:016x}"
        print(f"{label:<52} "
              f"{old_records[h].get('wall_seconds') or 0.0:>8.3f} "
              f"{'-':>8} {'-':>8}  removed")

    if untimed:
        print(f"\n{untimed} shared config(s) had no timing on one side "
              "(reproducible-store mode); wall clock not gated for them")
    if stat_changes:
        print(f"{stat_changes} shared config(s) changed simulated stats — "
              "deterministic fields, so the simulator changed")
    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"\nFAIL: {len(regressions)} config(s) regressed wall clock "
              f"more than {threshold:.0%} "
              f"(worst: {worst[0]} {worst[1]:+.1%})", file=sys.stderr)
        return 1
    print(f"\nno per-config wall-clock regressions above {threshold:.0%}")
    return 0


def trend_stores(paths):
    """Oldest-to-newest summary across any number of stores; never fails."""
    print(f"{'store':<40} {'configs':>8} {'wall s':>10} {'Gcycles':>10} "
          f"{'vs prev':>8}")
    prev = None
    for path in paths:
        _, records = load_store(path)
        total_wall = sum(r.get("wall_seconds") or 0.0
                         for r in records.values())
        total_cycles = sum(store_stat(r, "exec_cycles") or 0
                           for r in records.values())
        vs_prev = "-"
        if prev is not None:
            shared = [h for h in records if h in prev]
            old_wall = sum(prev[h].get("wall_seconds") or 0.0
                           for h in shared)
            new_wall = sum(records[h].get("wall_seconds") or 0.0
                           for h in shared)
            if old_wall > 0 and new_wall > 0:
                vs_prev = f"{(new_wall - old_wall) / old_wall:+.1%}"
            elif shared:
                vs_prev = "untimed"
            else:
                vs_prev = "disjoint"
        name = path if len(path) <= 40 else "..." + path[-37:]
        print(f"{name:<40} {len(records):>8} {total_wall:>10.3f} "
              f"{total_cycles / 1e9:>10.3f} {vs_prev:>8}")
        prev = records
    return 0


def compare_baselines(old_path, new_path, threshold):
    old_doc, new_doc = load(old_path), load(new_path)
    if old_doc.get("quick") != new_doc.get("quick"):
        print(
            "warning: comparing a --quick baseline against a full one; "
            "wall-clock deltas are not meaningful",
            file=sys.stderr,
        )
    # Host provenance: comparing captures from machines with different
    # core counts (or different --jobs) makes the speedup numbers — and,
    # across CPU generations, often the serial times too — incomparable.
    # Warn loudly rather than fail: the serial-time regression gate below
    # is still the contract.
    old_cores = old_doc.get("host_hardware_concurrency")
    new_cores = new_doc.get("host_hardware_concurrency")
    if old_cores != new_cores:
        print(
            f"warning: host core counts differ "
            f"(old: {old_cores}, new: {new_cores}); speedup and "
            f"wall-clock deltas are not comparable across hosts",
            file=sys.stderr,
        )
    # Build provenance: wall-clock deltas across different commits fold
    # code changes into the comparison. That is often exactly what the
    # user wants (did my change regress perf?), so warn — never fail —
    # and let the serial-time gate below judge the numbers.
    old_commit = old_doc.get("git_commit")
    new_commit = new_doc.get("git_commit")
    if old_commit and new_commit and old_commit != new_commit:
        print(
            f"warning: baselines come from different commits "
            f"(old: {old_commit[:12]}, new: {new_commit[:12]}); "
            f"wall-clock deltas include code changes, not just host noise",
            file=sys.stderr,
        )
    for key in ("directory", "interconnect"):
        if (old_doc.get(key) or new_doc.get(key)) and \
                old_doc.get(key) != new_doc.get(key):
            print(
                f"warning: suite {key} differs "
                f"(old: {old_doc.get(key)}, new: {new_doc.get(key)}); "
                f"the baselines measured different machines",
                file=sys.stderr,
            )
    if old_doc.get("jobs") != new_doc.get("jobs"):
        print(
            f"warning: parallel passes used different --jobs "
            f"(old: {old_doc.get('jobs')}, new: {new_doc.get('jobs')}); "
            f"speedup numbers are not comparable",
            file=sys.stderr,
        )
    old_figs, new_figs = by_name(old_doc), by_name(new_doc)

    regressions = []
    print(f"{'figure':<24} {'old s':>9} {'new s':>9} {'delta':>8}  verdict")
    for name, new_fig in new_figs.items():
        old_fig = old_figs.get(name)
        if old_fig is None:
            print(f"{name:<24} {'-':>9} "
                  f"{new_fig.get('serial_seconds') or 0.0:>9.3f} "
                  f"{'-':>8}  new figure")
            continue
        old_s = old_fig.get("serial_seconds") or 0.0
        new_s = new_fig.get("serial_seconds") or 0.0
        delta = (new_s - old_s) / old_s if old_s > 0 else 0.0
        verdict = "ok"
        if delta > threshold:
            verdict = "REGRESSION"
            regressions.append((f"figure {name}", delta))
        elif delta < -threshold:
            verdict = "improved"
        print(f"{name:<24} {old_s:>9.3f} {new_s:>9.3f} {delta:>+7.1%}  "
              f"{verdict}")
    for name in old_figs:
        if name not in new_figs:
            print(f"{name:<24} "
                  f"{old_figs[name].get('serial_seconds') or 0.0:>9.3f} "
                  f"{'-':>9} {'-':>8}  removed")

    # Capture-once / replay-many timings: per workload, execute-vs-replay
    # wall clock for a full protocol sweep. The steady-state speedup is
    # gated like figure serial times — a replay path that quietly got
    # slower relative to execution is a real regression. Rows with a
    # null/zero/absent speedup on either side (no timing, or a capture
    # without real concurrency) are reported but never gated. Older
    # baselines predate the section; .get() defaults keep them comparable.
    old_replay = {e.get("name"): e for e in old_doc.get("replay_compare", [])}
    new_replay = new_doc.get("replay_compare", [])
    if new_replay or old_replay:
        print(f"\n{'replay workload':<24} {'execute s':>9} {'replay s':>9} "
              f"{'speedup':>8}  vs old")
        for entry in new_replay:
            name = entry.get("name", "?")
            speedup = entry.get("speedup")
            old_entry = old_replay.get(name)
            old_speedup = (old_entry or {}).get("speedup")
            if old_entry is None:
                vs_old = "new"
            else:
                vs_old = f"{fmt_speedup(old_speedup)} -> " \
                         f"{fmt_speedup(speedup)}"
                gateable = (isinstance(speedup, (int, float)) and
                            isinstance(old_speedup, (int, float)) and
                            old_speedup > 0 and speedup > 0)
                if gateable:
                    drop = (speedup - old_speedup) / old_speedup
                    if drop < -threshold:
                        vs_old += "  REGRESSION"
                        regressions.append((f"replay {name}", -drop))
                elif speedup is None or old_speedup is None:
                    print(f"warning: replay {name}: speedup is null on "
                          f"one side; not gated", file=sys.stderr)
            print(f"{name:<24} "
                  f"{entry.get('execute_seconds') or 0.0:>9.3f} "
                  f"{entry.get('replay_seconds') or 0.0:>9.3f} "
                  f"{fmt_speedup(speedup):>8}  {vs_old}")
        for name in old_replay:
            if not any(e.get("name") == name for e in new_replay):
                print(f"{name:<24} {'-':>9} {'-':>9} {'-':>8}  removed")

    # Always print the total summary; an old total of zero (interrupted
    # or synthetic capture) just reports no delta instead of dividing.
    # A null doc-level speedup (capture without real concurrency; see
    # bench/perf_baseline) prints as n/a and is skipped with a warning.
    old_total = old_doc.get("serial_seconds") or 0.0
    new_total = new_doc.get("serial_seconds") or 0.0
    total_delta = ((new_total - old_total) / old_total if old_total > 0
                   else 0.0)
    new_speedup = new_doc.get("speedup")
    if new_speedup is None and "speedup" in new_doc:
        print("warning: new baseline has a null speedup (captured without "
              "real concurrency); skipping speedup comparison",
              file=sys.stderr)
    print(f"\ntotal serial: {old_total:.2f}s -> {new_total:.2f}s "
          f"({total_delta:+.1%}); "
          f"speedup at --jobs {new_doc.get('jobs')}: "
          f"{fmt_speedup(new_speedup) if new_speedup is not None else 'n/a'}")

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(
            f"\nFAIL: {len(regressions)} comparison(s) regressed more than "
            f"{threshold:.0%} (worst: {worst[0]} {worst[1]:+.1%})",
            file=sys.stderr,
        )
        return 1
    print("\nno regressions above "
          f"{threshold:.0%}")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="two perf_baseline JSON files, or (with "
                             "--store) two stores / N stores with --trend")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional wall-clock regression that fails (default 0.10)",
    )
    parser.add_argument("--store", action="store_true",
                        help="compare lssim_sweep JSONL results stores")
    parser.add_argument("--trend", action="store_true",
                        help="with --store: summarise N stores "
                             "oldest-to-newest; informational, never fails")
    args = parser.parse_args()

    if args.trend and not args.store:
        parser.error("--trend requires --store")
    if args.store:
        if args.trend:
            return trend_stores(args.files)
        if len(args.files) != 2:
            parser.error("--store compares exactly two stores "
                         "(use --trend for more)")
        return compare_stores(args.files[0], args.files[1], args.threshold)
    if len(args.files) != 2:
        parser.error("baseline mode compares exactly two files")
    return compare_baselines(args.files[0], args.files[1], args.threshold)


if __name__ == "__main__":
    sys.exit(main())
