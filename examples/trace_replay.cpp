// Example: record a workload's access trace once, then replay it against
// several protocol/cache configurations without re-running the workload.
//
// Replay preserves per-processor program order and inter-access compute
// gaps but (by construction) cannot model timing feedback — see
// src/trace/trace.hpp for the caveats. It is the cheap way to sweep
// protocol variants over one fixed access stream.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "lssim.hpp"

int main() {
  using namespace lssim;

  MachineConfig record_cfg = MachineConfig::scientific_default();

  // 1. Record the baseline execution of a small MP3D run.
  Trace trace;
  {
    System sys(record_cfg);
    TraceRecorder recorder(sys, trace);
    Mp3dParams params;
    params.particles = 2000;
    params.steps = 4;
    build_mp3d(sys, params);
    sys.run();
    std::printf("recorded %zu accesses from MP3D (baseline run)\n",
                trace.size());
  }

  // 2. Round-trip through the serialized format.
  std::stringstream file;
  trace.save(file);
  const Trace loaded = Trace::load(file);
  std::printf("serialized trace: %zu bytes\n",
              static_cast<std::size_t>(file.str().size()));

  // 3. Replay under each protocol.
  std::printf("\n%-10s %14s %14s %14s\n", "protocol", "total cycles",
              "messages", "eliminated");
  for (ProtocolKind kind :
       {ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs}) {
    MachineConfig cfg = record_cfg;
    cfg.protocol.kind = kind;
    Stats stats(cfg.num_nodes);
    const ReplayResult result = replay_trace(loaded, cfg, stats);
    std::printf("%-10s %14llu %14llu %14llu\n", to_string(kind),
                static_cast<unsigned long long>(result.total_cycles),
                static_cast<unsigned long long>(stats.messages_total()),
                static_cast<unsigned long long>(
                    stats.eliminated_acquisitions));
  }

  // 4. Replay against a different cache geometry.
  MachineConfig small = record_cfg;
  small.l2.size_bytes = 16 * 1024;
  small.protocol.kind = ProtocolKind::kLs;
  Stats stats(small.num_nodes);
  const ReplayResult result = replay_trace(loaded, small, stats);
  std::printf("\nLS with a 16 kB L2 on the same trace: %llu cycles, "
              "%llu messages\n",
              static_cast<unsigned long long>(result.total_cycles),
              static_cast<unsigned long long>(stats.messages_total()));
  return 0;
}
