// Example: capture a workload's access stream once, then drive a whole
// protocol comparison from it without re-running the workload.
//
// Replay preserves per-processor program order and inter-access compute
// gaps but (by construction) cannot model timing feedback — a recorded
// spin loop replays its recorded spin count. See docs/PERFORMANCE.md
// "Capture once, replay many" for when replay is exact.
#include <cstdio>
#include <sstream>

#include "lssim.hpp"

int main() {
  using namespace lssim;

  const MachineConfig cfg = MachineConfig::scientific_default();

  // 1. Execute a small MP3D run exactly once, recording the stream.
  //    capture_trace also returns the live run's collected result — the
  //    ground truth the same-protocol replay must match bit for bit.
  Mp3dParams params;
  params.particles = 2000;
  params.steps = 4;
  const CapturedTrace captured = capture_trace(
      cfg, [&params](System& sys) { build_mp3d(sys, params); },
      /*seed=*/1, "mp3d");
  std::printf("recorded %zu accesses from MP3D (%s run)\n",
              captured.trace.size(), to_string(cfg.protocol.kind));

  // 2. Round-trip through the serialized format. The file header
  //    carries a hash of the capture machine's protocol-insensitive
  //    configuration, so a stale trace cannot silently replay against
  //    the wrong machine.
  std::stringstream file;
  captured.trace.save(file);
  const Trace loaded = Trace::load(file);
  std::printf("serialized trace: %zu bytes, config hash %s\n",
              static_cast<std::size_t>(file.str().size()),
              format_config_hash(loaded.meta().config_hash).c_str());

  // 3. Replay under every registered protocol from the one capture.
  const ReplayCompareEngine engine(loaded, cfg);
  std::printf("\n%-10s %14s %14s %14s\n", "protocol", "exec cycles",
              "messages", "eliminated");
  for (ProtocolKind kind : all_protocol_kinds()) {
    const RunResult r = engine.replay(kind);
    std::printf("%-10s %14llu %14llu %14llu\n", to_string(kind),
                static_cast<unsigned long long>(r.exec_time),
                static_cast<unsigned long long>(r.traffic_total),
                static_cast<unsigned long long>(
                    r.eliminated_acquisitions));
  }

  // 4. The same-protocol replay reproduces the live execution exactly.
  const std::vector<std::string> diffs = compare_replay(
      captured.executed, engine.replay(cfg.protocol.kind));
  std::printf("\nsame-protocol replay vs execution: %s\n",
              diffs.empty() ? "bit-identical" : diffs.front().c_str());

  // 5. A machine with a different cache geometry refuses the trace.
  MachineConfig small = cfg;
  small.l2.size_bytes = 16 * 1024;
  try {
    const ReplayCompareEngine rejected(loaded, small);
    std::printf("unexpected: mismatched machine accepted the trace\n");
    return 1;
  } catch (const TraceConfigMismatch& ex) {
    std::printf("16 kB-L2 machine rejected the trace, as it must:\n  %s\n",
                ex.what());
  }
  return 0;
}
