// Example: a step-by-step walkthrough of the LS protocol's state machine
// (paper Figure 1), driving the memory system one access at a time and
// printing the directory/cache state after each step.
#include <cstdio>
#include <sstream>

#include "lssim.hpp"

namespace {

using namespace lssim;

void show(MemorySystem& ms, Addr block, const char* action) {
  const DirEntry& e = ms.directory().entry(block);
  std::printf("%-44s home=%-10s tagged=%d LR=%-3d owner=%-3d caches:",
              action, to_string(e.state), e.tagged ? 1 : 0,
              e.last_reader == kInvalidNode ? -1 : e.last_reader,
              e.owner == kInvalidNode ? -1 : e.owner);
  for (NodeId n = 0; n < 4; ++n) {
    const ProbeResult p = ms.cache(n).probe(block);
    if (p.l2_hit) {
      std::printf(" P%d=%s", n, to_string(p.state));
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lssim;

  MachineConfig cfg = MachineConfig::scientific_default(ProtocolKind::kLs);
  cfg.event_log_capacity = 64;  // Keep the protocol event trail.
  AddressSpace space(cfg.num_nodes, cfg.page_bytes);
  Stats stats(cfg.num_nodes);
  MemorySystem ms(cfg, space, stats);

  const Addr a = 0;  // Home node 0.
  Cycles now = 0;
  auto access = [&](NodeId n, MemOpKind op, const char* what) {
    AccessRequest req;
    req.op = op;
    req.addr = a;
    req.size = 4;
    req.wdata = 1;
    now += 10000;
    (void)ms.access(n, req, now);
    show(ms, a, what);
  };

  std::printf("LS protocol walkthrough (paper Figure 1)\n\n");
  show(ms, a, "initial");
  access(1, MemOpKind::kRead, "P1 reads (Uncached, LS=0 -> Shared)");
  access(1, MemOpKind::kWrite, "P1 writes (by LR -> Dirty, tag LS)");
  access(2, MemOpKind::kRead, "P2 reads (LS=1 -> exclusive, LStemp)");
  access(2, MemOpKind::kWrite, "P2 writes (local! LStemp -> Modified)");
  access(3, MemOpKind::kRead, "P3 reads (migrate exclusively again)");
  access(0, MemOpKind::kRead, "P0 reads before P3 writes (NotLS, de-tag)");
  access(0, MemOpKind::kWrite, "P0 writes (upgrade; by LR -> re-tag)");

  std::printf("\nownership acquisitions: %llu, eliminated: %llu, NotLS: %llu\n",
              static_cast<unsigned long long>(stats.ownership_acquisitions),
              static_cast<unsigned long long>(stats.eliminated_acquisitions),
              static_cast<unsigned long long>(stats.notls_messages));

  std::printf("\nprotocol event log:\n");
  std::ostringstream log_text;
  ms.event_log().dump(log_text);
  std::fputs(log_text.str().c_str(), stdout);
  return 0;
}
