// Example: the simulator's introspection surfaces — latency histograms,
// the node-to-node traffic matrix, the epoch timeline and the telemetry
// metrics registry — on one OLTP run under the LS protocol.
#include <iostream>

#include "lssim.hpp"

int main() {
  using namespace lssim;

  MachineConfig cfg = MachineConfig::oltp_default(ProtocolKind::kLs);
  cfg.l1 = CacheConfig{8 * 1024, 2, 32};
  cfg.l2 = CacheConfig{32 * 1024, 1, 32};
  cfg.stats_epoch = 500000;   // Timeline sample every 500k cycles.
  cfg.telemetry.metrics = true;  // Live metrics registry.

  System sys(cfg);
  OltpParams params;
  params.txns_per_proc = 800;
  build_oltp(sys, params);
  sys.run();

  const Stats& stats = sys.stats();
  std::cout << "OLTP under LS, " << stats.accesses << " accesses in "
            << sys.exec_time() << " cycles\n\n";
  print_latency_histogram(std::cout, "read latency", stats.read_latency);
  std::cout << "\n";
  print_latency_histogram(std::cout, "write latency", stats.write_latency);
  std::cout << "\n";
  print_traffic_matrix(std::cout, stats.traffic_matrix);
  std::cout << "\n";
  print_timeline(std::cout, sys.timeline());

  // The metrics registry gives the same counters programmatically: a
  // snapshot is self-contained, and counter_total() folds the per-node
  // label sets together.
  const MetricsSnapshot snap = sys.telemetry().registry().snapshot();
  std::cout << "\ntelemetry (" << snap.descs.size() << " metrics):\n";
  std::cout << "  coherence.read-miss   = "
            << snap.counter_total("coherence.read-miss") << "\n";
  std::cout << "  coherence.upgrade     = "
            << snap.counter_total("coherence.upgrade") << "\n";
  std::cout << "  coherence.local-write = "
            << snap.counter_total("coherence.local-write")
            << "  (eliminated acquisitions)\n";
  std::cout << "  net.messages          = "
            << snap.counter_total("net.messages") << "\n";
  return 0;
}
