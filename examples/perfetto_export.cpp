// Example: export a coherence timeline for ui.perfetto.dev.
//
// Runs the pingpong microbenchmark under Baseline and LS with the
// coherence trace enabled and writes perfetto_pingpong.json — open it in
// ui.perfetto.dev (or chrome://tracing) to see each node's global
// transactions as duration slices and the tag/NotLS/local-write point
// events as instants. Timestamps are simulated cycles (1 cycle = 1 us on
// the Perfetto axis).
#include <fstream>
#include <iostream>

#include "lssim.hpp"

int main() {
  using namespace lssim;

  const char* path = "perfetto_pingpong.json";
  std::vector<CoherenceTrace> traces;
  std::vector<TraceProcess> processes;
  const ProtocolKind kinds[] = {ProtocolKind::kBaseline, ProtocolKind::kLs};

  for (const ProtocolKind kind : kinds) {
    MachineConfig cfg;
    cfg.num_nodes = 2;
    cfg.protocol.kind = kind;
    cfg.telemetry.trace_capacity = 1 << 16;

    System sys(cfg);
    PingPongParams params;
    params.rounds = 200;
    build_pingpong(sys, params);
    sys.run();

    std::cout << to_string(kind) << ": " << sys.exec_time() << " cycles, "
              << sys.telemetry().coherence_trace().spans().size()
              << " spans, "
              << sys.telemetry().coherence_trace().instants().size()
              << " instants\n";
    traces.push_back(sys.telemetry().coherence_trace());
  }
  // Pointers into `traces` stay valid: it is fully populated above.
  for (std::size_t i = 0; i < traces.size(); ++i) {
    processes.push_back(TraceProcess{to_string(kinds[i]), &traces[i]});
  }

  std::ofstream os(path);
  write_chrome_trace(os, processes);
  os.flush();
  if (!os) {
    std::cerr << "failed writing " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << " — open it in https://ui.perfetto.dev\n";
  return 0;
}
