// Example: the OLTP workload with per-component load-store analysis.
//
// Runs the TPC-B-style workload under the Baseline protocol and prints
// the paper's Table-2-style breakdown (application / libraries / OS),
// then compares the three protocols on execution time and traffic.
#include <cstdio>

#include "lssim.hpp"

int main() {
  using namespace lssim;

  OltpParams params;
  params.txns_per_proc = 800;  // Demo-sized; benches run the full load.

  std::printf("== Load-store occurrence by component (Baseline run) ==\n");
  {
    MachineConfig cfg = MachineConfig::oltp_default(ProtocolKind::kBaseline);
    System sys(cfg);
    build_oltp(sys, params);
    sys.run();
    const RunResult r = collect(sys);
    std::printf("%-28s %10s %10s %6s\n", "", "app", "library", "os");
    std::printf("%-28s %9s %9s %9s\n",
                "load-store of global writes",
                pct(r.oracle_by_tag[0].ls_fraction()).c_str(),
                pct(r.oracle_by_tag[1].ls_fraction()).c_str(),
                pct(r.oracle_by_tag[2].ls_fraction()).c_str());
    std::printf("%-28s %9s %9s %9s\n",
                "migratory of load-store",
                pct(r.oracle_by_tag[0].migratory_fraction()).c_str(),
                pct(r.oracle_by_tag[1].migratory_fraction()).c_str(),
                pct(r.oracle_by_tag[2].migratory_fraction()).c_str());
    std::printf("invalidations per global write: %.2f\n\n",
                r.invalidations_per_write());
  }

  std::printf("== Protocol comparison ==\n");
  std::printf("%-10s %14s %14s %14s\n", "protocol", "exec cycles",
              "messages", "eliminated");
  for (ProtocolKind kind :
       {ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs}) {
    MachineConfig cfg = MachineConfig::oltp_default(kind);
    System sys(cfg);
    build_oltp(sys, params);
    sys.run();
    const RunResult r = collect(sys);
    std::printf("%-10s %14llu %14llu %14llu\n", to_string(kind),
                static_cast<unsigned long long>(r.exec_time),
                static_cast<unsigned long long>(r.traffic_total),
                static_cast<unsigned long long>(r.eliminated_acquisitions));
  }
  return 0;
}
