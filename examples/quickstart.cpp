// Quickstart: simulate a 4-node CC-NUMA machine running a migratory
// counter under the three coherence techniques and compare them.
//
//   $ ./quickstart
//
// Demonstrates the minimal public API: configure a machine, build a
// workload, run it, collect results.
#include <cstdio>

#include "lssim.hpp"

int main() {
  using namespace lssim;

  std::printf("lssim quickstart: 4 processors ping-pong a shared counter\n");
  std::printf("%-10s %12s %12s %12s %14s\n", "protocol", "exec cycles",
              "write stall", "messages", "own. removed");

  for (ProtocolKind kind :
       {ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs}) {
    MachineConfig cfg = MachineConfig::scientific_default(kind);
    System sys(cfg);
    build_pingpong(sys, PingPongParams{.rounds = 2000, .counters = 4});
    sys.run();
    const RunResult r = collect(sys);
    std::printf("%-10s %12llu %12llu %12llu %14llu\n", to_string(kind),
                static_cast<unsigned long long>(r.exec_time),
                static_cast<unsigned long long>(r.time.write_stall),
                static_cast<unsigned long long>(r.traffic_total),
                static_cast<unsigned long long>(r.eliminated_acquisitions));
  }

  std::printf(
      "\nBoth AD and LS detect the migratory counter and serve reads with\n"
      "exclusive copies, so the subsequent writes complete locally.\n");
  return 0;
}
