// Example: where LS wins over AD.
//
// Scenario from the paper's introduction: load-store sequences that do
// NOT migrate between processors — each processor read-modify-writes its
// own region, but the region exceeds the cache, so every sweep refetches
// and re-acquires ownership. AD (migratory detection) finds nothing to
// tag; LS tags the blocks after the first sweep and eliminates every
// later ownership acquisition.
#include <cstdio>

#include "lssim.hpp"

int main() {
  using namespace lssim;

  std::printf("Per-processor sweeps over a region 2x the L2 size\n");
  std::printf("(load-store sequences broken by capacity evictions)\n\n");
  std::printf("%-10s %14s %14s %14s\n", "protocol", "write stall",
              "ownership acq", "eliminated");

  for (ProtocolKind kind :
       {ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs}) {
    MachineConfig cfg = MachineConfig::scientific_default(kind);
    System sys(cfg);
    // 16k words x 8B = 128 kB per processor; L2 is 64 kB.
    build_private_rmw(sys, PrivateRmwParams{.words_per_proc = 16 * 1024,
                                            .sweeps = 3});
    sys.run();
    const RunResult r = collect(sys);
    std::printf("%-10s %14llu %14llu %14llu\n", to_string(kind),
                static_cast<unsigned long long>(r.time.write_stall),
                static_cast<unsigned long long>(r.ownership_acquisitions),
                static_cast<unsigned long long>(r.eliminated_acquisitions));
  }

  std::printf(
      "\nAD matches the baseline (the data never migrates, so migratory\n"
      "detection never fires); LS eliminates the ownership requests of\n"
      "every sweep after the first — the paper's Cholesky effect.\n");
  return 0;
}
