file(REMOVE_RECURSE
  "liblssim.a"
)
