# Empty compiler generated dependencies file for lssim.
# This may be replaced when dependencies are built.
