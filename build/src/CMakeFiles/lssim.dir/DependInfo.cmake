
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cpp" "src/CMakeFiles/lssim.dir/cache/cache.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/cache/cache.cpp.o.d"
  "/root/repo/src/cache/hierarchy.cpp" "src/CMakeFiles/lssim.dir/cache/hierarchy.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/cache/hierarchy.cpp.o.d"
  "/root/repo/src/core/directory.cpp" "src/CMakeFiles/lssim.dir/core/directory.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/core/directory.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/CMakeFiles/lssim.dir/core/protocol.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/core/protocol.cpp.o.d"
  "/root/repo/src/driver/options.cpp" "src/CMakeFiles/lssim.dir/driver/options.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/driver/options.cpp.o.d"
  "/root/repo/src/driver/runner.cpp" "src/CMakeFiles/lssim.dir/driver/runner.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/driver/runner.cpp.o.d"
  "/root/repo/src/machine/processor.cpp" "src/CMakeFiles/lssim.dir/machine/processor.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/machine/processor.cpp.o.d"
  "/root/repo/src/machine/system.cpp" "src/CMakeFiles/lssim.dir/machine/system.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/machine/system.cpp.o.d"
  "/root/repo/src/mem/address_space.cpp" "src/CMakeFiles/lssim.dir/mem/address_space.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/mem/address_space.cpp.o.d"
  "/root/repo/src/mem/shared_heap.cpp" "src/CMakeFiles/lssim.dir/mem/shared_heap.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/mem/shared_heap.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/lssim.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/net/network.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/lssim.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/lssim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/stats/false_sharing.cpp" "src/CMakeFiles/lssim.dir/stats/false_sharing.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/stats/false_sharing.cpp.o.d"
  "/root/repo/src/stats/ls_oracle.cpp" "src/CMakeFiles/lssim.dir/stats/ls_oracle.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/stats/ls_oracle.cpp.o.d"
  "/root/repo/src/stats/report.cpp" "src/CMakeFiles/lssim.dir/stats/report.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/stats/report.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "src/CMakeFiles/lssim.dir/stats/stats.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/stats/stats.cpp.o.d"
  "/root/repo/src/sync/barrier.cpp" "src/CMakeFiles/lssim.dir/sync/barrier.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/sync/barrier.cpp.o.d"
  "/root/repo/src/sync/spinlock.cpp" "src/CMakeFiles/lssim.dir/sync/spinlock.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/sync/spinlock.cpp.o.d"
  "/root/repo/src/sync/task_queue.cpp" "src/CMakeFiles/lssim.dir/sync/task_queue.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/sync/task_queue.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/lssim.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/trace/trace.cpp.o.d"
  "/root/repo/src/workloads/cholesky.cpp" "src/CMakeFiles/lssim.dir/workloads/cholesky.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/workloads/cholesky.cpp.o.d"
  "/root/repo/src/workloads/harness.cpp" "src/CMakeFiles/lssim.dir/workloads/harness.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/workloads/harness.cpp.o.d"
  "/root/repo/src/workloads/lu.cpp" "src/CMakeFiles/lssim.dir/workloads/lu.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/workloads/lu.cpp.o.d"
  "/root/repo/src/workloads/micro.cpp" "src/CMakeFiles/lssim.dir/workloads/micro.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/workloads/micro.cpp.o.d"
  "/root/repo/src/workloads/mp3d.cpp" "src/CMakeFiles/lssim.dir/workloads/mp3d.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/workloads/mp3d.cpp.o.d"
  "/root/repo/src/workloads/oltp.cpp" "src/CMakeFiles/lssim.dir/workloads/oltp.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/workloads/oltp.cpp.o.d"
  "/root/repo/src/workloads/radix.cpp" "src/CMakeFiles/lssim.dir/workloads/radix.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/workloads/radix.cpp.o.d"
  "/root/repo/src/workloads/stencil.cpp" "src/CMakeFiles/lssim.dir/workloads/stencil.cpp.o" "gcc" "src/CMakeFiles/lssim.dir/workloads/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
