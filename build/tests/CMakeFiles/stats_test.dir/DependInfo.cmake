
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/false_sharing_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/false_sharing_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/false_sharing_test.cpp.o.d"
  "/root/repo/tests/stats/ls_oracle_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/ls_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/ls_oracle_test.cpp.o.d"
  "/root/repo/tests/stats/report_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/report_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/report_test.cpp.o.d"
  "/root/repo/tests/stats/timeline_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/timeline_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/timeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lssim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
