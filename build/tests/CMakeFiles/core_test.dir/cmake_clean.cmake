file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/ad_protocol_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ad_protocol_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/baseline_protocol_test.cpp.o"
  "CMakeFiles/core_test.dir/core/baseline_protocol_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/conformance_test.cpp.o"
  "CMakeFiles/core_test.dir/core/conformance_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/directory_test.cpp.o"
  "CMakeFiles/core_test.dir/core/directory_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/event_log_test.cpp.o"
  "CMakeFiles/core_test.dir/core/event_log_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ils_protocol_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ils_protocol_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/latency_test.cpp.o"
  "CMakeFiles/core_test.dir/core/latency_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/limited_directory_test.cpp.o"
  "CMakeFiles/core_test.dir/core/limited_directory_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ls_protocol_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ls_protocol_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/protocol_edge_test.cpp.o"
  "CMakeFiles/core_test.dir/core/protocol_edge_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
