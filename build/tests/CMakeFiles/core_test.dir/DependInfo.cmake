
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/ad_protocol_test.cpp" "tests/CMakeFiles/core_test.dir/core/ad_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ad_protocol_test.cpp.o.d"
  "/root/repo/tests/core/baseline_protocol_test.cpp" "tests/CMakeFiles/core_test.dir/core/baseline_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/baseline_protocol_test.cpp.o.d"
  "/root/repo/tests/core/conformance_test.cpp" "tests/CMakeFiles/core_test.dir/core/conformance_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/conformance_test.cpp.o.d"
  "/root/repo/tests/core/directory_test.cpp" "tests/CMakeFiles/core_test.dir/core/directory_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/directory_test.cpp.o.d"
  "/root/repo/tests/core/event_log_test.cpp" "tests/CMakeFiles/core_test.dir/core/event_log_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/event_log_test.cpp.o.d"
  "/root/repo/tests/core/ils_protocol_test.cpp" "tests/CMakeFiles/core_test.dir/core/ils_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ils_protocol_test.cpp.o.d"
  "/root/repo/tests/core/latency_test.cpp" "tests/CMakeFiles/core_test.dir/core/latency_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/latency_test.cpp.o.d"
  "/root/repo/tests/core/limited_directory_test.cpp" "tests/CMakeFiles/core_test.dir/core/limited_directory_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/limited_directory_test.cpp.o.d"
  "/root/repo/tests/core/ls_protocol_test.cpp" "tests/CMakeFiles/core_test.dir/core/ls_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ls_protocol_test.cpp.o.d"
  "/root/repo/tests/core/protocol_edge_test.cpp" "tests/CMakeFiles/core_test.dir/core/protocol_edge_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/protocol_edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lssim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
