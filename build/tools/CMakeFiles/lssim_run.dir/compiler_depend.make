# Empty compiler generated dependencies file for lssim_run.
# This may be replaced when dependencies are built.
