file(REMOVE_RECURSE
  "CMakeFiles/lssim_run.dir/lssim_run.cpp.o"
  "CMakeFiles/lssim_run.dir/lssim_run.cpp.o.d"
  "lssim_run"
  "lssim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lssim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
