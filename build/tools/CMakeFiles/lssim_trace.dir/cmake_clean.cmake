file(REMOVE_RECURSE
  "CMakeFiles/lssim_trace.dir/lssim_trace.cpp.o"
  "CMakeFiles/lssim_trace.dir/lssim_trace.cpp.o.d"
  "lssim_trace"
  "lssim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lssim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
