# Empty compiler generated dependencies file for lssim_trace.
# This may be replaced when dependencies are built.
