file(REMOVE_RECURSE
  "CMakeFiles/migratory_counter.dir/migratory_counter.cpp.o"
  "CMakeFiles/migratory_counter.dir/migratory_counter.cpp.o.d"
  "migratory_counter"
  "migratory_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migratory_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
