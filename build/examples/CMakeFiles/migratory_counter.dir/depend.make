# Empty dependencies file for migratory_counter.
# This may be replaced when dependencies are built.
