# Empty compiler generated dependencies file for oltp_demo.
# This may be replaced when dependencies are built.
