file(REMOVE_RECURSE
  "CMakeFiles/machine_inspection.dir/machine_inspection.cpp.o"
  "CMakeFiles/machine_inspection.dir/machine_inspection.cpp.o.d"
  "machine_inspection"
  "machine_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
