# Empty dependencies file for machine_inspection.
# This may be replaced when dependencies are built.
