file(REMOVE_RECURSE
  "CMakeFiles/fig6_lu.dir/fig6_lu.cpp.o"
  "CMakeFiles/fig6_lu.dir/fig6_lu.cpp.o.d"
  "fig6_lu"
  "fig6_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
