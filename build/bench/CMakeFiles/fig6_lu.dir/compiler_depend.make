# Empty compiler generated dependencies file for fig6_lu.
# This may be replaced when dependencies are built.
