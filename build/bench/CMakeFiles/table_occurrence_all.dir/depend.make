# Empty dependencies file for table_occurrence_all.
# This may be replaced when dependencies are built.
