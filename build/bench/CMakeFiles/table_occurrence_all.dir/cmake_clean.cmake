file(REMOVE_RECURSE
  "CMakeFiles/table_occurrence_all.dir/table_occurrence_all.cpp.o"
  "CMakeFiles/table_occurrence_all.dir/table_occurrence_all.cpp.o.d"
  "table_occurrence_all"
  "table_occurrence_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_occurrence_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
