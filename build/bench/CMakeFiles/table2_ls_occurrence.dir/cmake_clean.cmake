file(REMOVE_RECURSE
  "CMakeFiles/table2_ls_occurrence.dir/table2_ls_occurrence.cpp.o"
  "CMakeFiles/table2_ls_occurrence.dir/table2_ls_occurrence.cpp.o.d"
  "table2_ls_occurrence"
  "table2_ls_occurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ls_occurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
