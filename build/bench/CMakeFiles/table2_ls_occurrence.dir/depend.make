# Empty dependencies file for table2_ls_occurrence.
# This may be replaced when dependencies are built.
