file(REMOVE_RECURSE
  "CMakeFiles/ext_instruction_centric.dir/ext_instruction_centric.cpp.o"
  "CMakeFiles/ext_instruction_centric.dir/ext_instruction_centric.cpp.o.d"
  "ext_instruction_centric"
  "ext_instruction_centric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_instruction_centric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
