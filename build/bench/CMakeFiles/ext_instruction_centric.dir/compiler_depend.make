# Empty compiler generated dependencies file for ext_instruction_centric.
# This may be replaced when dependencies are built.
