# Empty dependencies file for table4_false_sharing.
# This may be replaced when dependencies are built.
