file(REMOVE_RECURSE
  "CMakeFiles/table4_false_sharing.dir/table4_false_sharing.cpp.o"
  "CMakeFiles/table4_false_sharing.dir/table4_false_sharing.cpp.o.d"
  "table4_false_sharing"
  "table4_false_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_false_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
