# Empty compiler generated dependencies file for fig4_cholesky.
# This may be replaced when dependencies are built.
