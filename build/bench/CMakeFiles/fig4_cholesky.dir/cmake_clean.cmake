file(REMOVE_RECURSE
  "CMakeFiles/fig4_cholesky.dir/fig4_cholesky.cpp.o"
  "CMakeFiles/fig4_cholesky.dir/fig4_cholesky.cpp.o.d"
  "fig4_cholesky"
  "fig4_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
