# Empty compiler generated dependencies file for ablation_variations.
# This may be replaced when dependencies are built.
