file(REMOVE_RECURSE
  "CMakeFiles/fig3_mp3d.dir/fig3_mp3d.cpp.o"
  "CMakeFiles/fig3_mp3d.dir/fig3_mp3d.cpp.o.d"
  "fig3_mp3d"
  "fig3_mp3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mp3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
