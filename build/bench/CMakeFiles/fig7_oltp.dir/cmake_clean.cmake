file(REMOVE_RECURSE
  "CMakeFiles/fig7_oltp.dir/fig7_oltp.cpp.o"
  "CMakeFiles/fig7_oltp.dir/fig7_oltp.cpp.o.d"
  "fig7_oltp"
  "fig7_oltp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
