# Empty compiler generated dependencies file for fig7_oltp.
# This may be replaced when dependencies are built.
