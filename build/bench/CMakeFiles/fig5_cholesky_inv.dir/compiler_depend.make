# Empty compiler generated dependencies file for fig5_cholesky_inv.
# This may be replaced when dependencies are built.
