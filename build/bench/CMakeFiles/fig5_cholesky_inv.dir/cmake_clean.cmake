file(REMOVE_RECURSE
  "CMakeFiles/fig5_cholesky_inv.dir/fig5_cholesky_inv.cpp.o"
  "CMakeFiles/fig5_cholesky_inv.dir/fig5_cholesky_inv.cpp.o.d"
  "fig5_cholesky_inv"
  "fig5_cholesky_inv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cholesky_inv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
