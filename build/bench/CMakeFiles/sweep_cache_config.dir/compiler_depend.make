# Empty compiler generated dependencies file for sweep_cache_config.
# This may be replaced when dependencies are built.
