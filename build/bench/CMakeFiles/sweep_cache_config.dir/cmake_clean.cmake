file(REMOVE_RECURSE
  "CMakeFiles/sweep_cache_config.dir/sweep_cache_config.cpp.o"
  "CMakeFiles/sweep_cache_config.dir/sweep_cache_config.cpp.o.d"
  "sweep_cache_config"
  "sweep_cache_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_cache_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
