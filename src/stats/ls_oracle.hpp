// Protocol-independent tracking of load-store sequences (paper §2,
// Tables 2 and 3).
//
// A *load-store sequence* is a global read from processor p to block b
// followed by a global write action from p to b with no intervening
// access to b from any other processor. A load-store write is classified
// *migratory* when the previous completed load-store sequence on the same
// block was performed by a different processor (data migrates).
//
// The oracle observes the logical global access stream: actual global
// reads/writes plus "eliminated" writes — stores satisfied locally
// because the line was held exclusive-unwritten (LStemp), which would
// have been global write actions under the baseline protocol. This makes
// Table 3's coverage ratios directly measurable in an LS or AD run.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "sim/types.hpp"

namespace lssim {

struct LsOracleCounters {
  std::uint64_t global_writes = 0;      ///< Actual + eliminated.
  std::uint64_t ls_writes = 0;          ///< Part of a load-store sequence.
  std::uint64_t migratory_writes = 0;   ///< Migratory subset of ls_writes.
  std::uint64_t eliminated = 0;         ///< Satisfied locally (no global act).
  std::uint64_t eliminated_ls = 0;
  std::uint64_t eliminated_migratory = 0;

  LsOracleCounters& operator+=(const LsOracleCounters& other) noexcept {
    global_writes += other.global_writes;
    ls_writes += other.ls_writes;
    migratory_writes += other.migratory_writes;
    eliminated += other.eliminated;
    eliminated_ls += other.eliminated_ls;
    eliminated_migratory += other.eliminated_migratory;
    return *this;
  }

  /// Table 2 row 1: fraction of global write actions that are load-store.
  [[nodiscard]] double ls_fraction() const noexcept {
    return global_writes == 0
               ? 0.0
               : static_cast<double>(ls_writes) /
                     static_cast<double>(global_writes);
  }
  /// Table 2 row 2: fraction of load-store writes that are migratory.
  [[nodiscard]] double migratory_fraction() const noexcept {
    return ls_writes == 0 ? 0.0
                          : static_cast<double>(migratory_writes) /
                                static_cast<double>(ls_writes);
  }
  /// Table 3 column 1: load-store writes removed by the technique.
  [[nodiscard]] double ls_coverage() const noexcept {
    return ls_writes == 0 ? 0.0
                          : static_cast<double>(eliminated_ls) /
                                static_cast<double>(ls_writes);
  }
  /// Table 3 column 2: migratory writes removed by the technique.
  [[nodiscard]] double migratory_coverage() const noexcept {
    return migratory_writes == 0 ? 0.0
                                 : static_cast<double>(eliminated_migratory) /
                                       static_cast<double>(migratory_writes);
  }
};

class LoadStoreOracle {
 public:
  explicit LoadStoreOracle(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void on_global_read(NodeId node, Addr block) {
    if (!enabled_) return;
    state_[block].pending_reader = node;
  }

  /// `eliminated` marks a would-be global write satisfied locally in
  /// state LStemp.
  void on_global_write(NodeId node, Addr block, bool eliminated,
                       StreamTag tag) {
    if (!enabled_) return;
    BlockState& st = state_[block];
    const bool is_ls = st.pending_reader == node;
    const bool is_migratory =
        is_ls && st.last_ls_owner != kInvalidNode && st.last_ls_owner != node;
    LsOracleCounters& c = per_tag_[static_cast<std::size_t>(tag)];
    c.global_writes += 1;
    if (is_ls) {
      c.ls_writes += 1;
      st.last_ls_owner = node;
    }
    if (is_migratory) c.migratory_writes += 1;
    if (eliminated) {
      c.eliminated += 1;
      if (is_ls) c.eliminated_ls += 1;
      if (is_migratory) c.eliminated_migratory += 1;
    }
    st.pending_reader = kInvalidNode;
  }

  [[nodiscard]] const LsOracleCounters& counters(StreamTag tag) const {
    return per_tag_[static_cast<std::size_t>(tag)];
  }
  [[nodiscard]] LsOracleCounters total() const {
    LsOracleCounters sum;
    for (const auto& c : per_tag_) sum += c;
    return sum;
  }

 private:
  struct BlockState {
    NodeId pending_reader = kInvalidNode;
    NodeId last_ls_owner = kInvalidNode;
  };

  bool enabled_;
  std::array<LsOracleCounters, kNumStreamTags> per_tag_{};
  std::unordered_map<Addr, BlockState> state_;
};

}  // namespace lssim
