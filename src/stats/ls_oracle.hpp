// Protocol-independent tracking of load-store sequences (paper §2,
// Tables 2 and 3).
//
// A *load-store sequence* is a global read from processor p to block b
// followed by a global write action from p to b with no intervening
// access to b from any other processor. A load-store write is classified
// *migratory* when the previous completed load-store sequence on the same
// block was performed by a different processor (data migrates).
//
// The oracle observes the logical global access stream: actual global
// reads/writes plus "eliminated" writes — stores satisfied locally
// because the line was held exclusive-unwritten (LStemp), which would
// have been global write actions under the baseline protocol. This makes
// Table 3's coverage ratios directly measurable in an LS or AD run.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lssim {

struct LsOracleCounters {
  std::uint64_t global_writes = 0;      ///< Actual + eliminated.
  std::uint64_t ls_writes = 0;          ///< Part of a load-store sequence.
  std::uint64_t migratory_writes = 0;   ///< Migratory subset of ls_writes.
  std::uint64_t eliminated = 0;         ///< Satisfied locally (no global act).
  std::uint64_t eliminated_ls = 0;
  std::uint64_t eliminated_migratory = 0;

  LsOracleCounters& operator+=(const LsOracleCounters& other) noexcept {
    global_writes += other.global_writes;
    ls_writes += other.ls_writes;
    migratory_writes += other.migratory_writes;
    eliminated += other.eliminated;
    eliminated_ls += other.eliminated_ls;
    eliminated_migratory += other.eliminated_migratory;
    return *this;
  }

  /// Table 2 row 1: fraction of global write actions that are load-store.
  [[nodiscard]] double ls_fraction() const noexcept {
    return global_writes == 0
               ? 0.0
               : static_cast<double>(ls_writes) /
                     static_cast<double>(global_writes);
  }
  /// Table 2 row 2: fraction of load-store writes that are migratory.
  [[nodiscard]] double migratory_fraction() const noexcept {
    return ls_writes == 0 ? 0.0
                          : static_cast<double>(migratory_writes) /
                                static_cast<double>(ls_writes);
  }
  /// Table 3 column 1: load-store writes removed by the technique.
  [[nodiscard]] double ls_coverage() const noexcept {
    return ls_writes == 0 ? 0.0
                          : static_cast<double>(eliminated_ls) /
                                static_cast<double>(ls_writes);
  }
  /// Table 3 column 2: migratory writes removed by the technique.
  [[nodiscard]] double migratory_coverage() const noexcept {
    return migratory_writes == 0 ? 0.0
                                 : static_cast<double>(eliminated_migratory) /
                                       static_cast<double>(migratory_writes);
  }
};

class LoadStoreOracle {
 public:
  explicit LoadStoreOracle(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Host-cache warming hint: pulls `block`'s probe slot into the host
  /// cache ahead of an upcoming access. No simulated effect (see
  /// Cache::prefetch).
  void prefetch(Addr block) const noexcept {
    if (enabled_ && !slots_.empty()) {
      __builtin_prefetch(&slots_[probe_start(block)], 1);
    }
  }

  void on_global_read(NodeId node, Addr block) {
    if (!enabled_) return;
    state_for(block).pending_reader = node;
  }

  /// Pre-sizes the table so `blocks` distinct blocks fit without
  /// growing. The table is never iterated and slots are never erased, so
  /// capacity is unobservable — results are identical, only the
  /// grow-rehash churn disappears. The replay engine uses the population
  /// observed on an earlier replay of the same trace as the hint.
  void reserve(std::size_t blocks) {
    std::size_t capacity = std::max(slots_.size(), kInitialCapacity);
    while (capacity - capacity / 4 < blocks) {
      capacity *= 2;
    }
    if (capacity > slots_.size()) {
      grow(capacity);
    }
  }

  /// Distinct blocks tracked so far (replay pre-sizing, tests).
  [[nodiscard]] std::size_t population() const noexcept { return size_; }

  /// `eliminated` marks a would-be global write satisfied locally in
  /// state LStemp.
  void on_global_write(NodeId node, Addr block, bool eliminated,
                       StreamTag tag) {
    if (!enabled_) return;
    BlockState& st = state_for(block);
    const bool is_ls = st.pending_reader == node;
    const bool is_migratory =
        is_ls && st.last_ls_owner != kInvalidNode && st.last_ls_owner != node;
    LsOracleCounters& c = per_tag_[static_cast<std::size_t>(tag)];
    c.global_writes += 1;
    if (is_ls) {
      c.ls_writes += 1;
      st.last_ls_owner = node;
    }
    if (is_migratory) c.migratory_writes += 1;
    if (eliminated) {
      c.eliminated += 1;
      if (is_ls) c.eliminated_ls += 1;
      if (is_migratory) c.eliminated_migratory += 1;
    }
    st.pending_reader = kInvalidNode;
  }

  [[nodiscard]] const LsOracleCounters& counters(StreamTag tag) const {
    return per_tag_[static_cast<std::size_t>(tag)];
  }
  [[nodiscard]] LsOracleCounters total() const {
    LsOracleCounters sum;
    for (const auto& c : per_tag_) sum += c;
    return sum;
  }

 private:
  struct BlockState {
    NodeId pending_reader = kInvalidNode;
    NodeId last_ls_owner = kInvalidNode;
  };

  // Per-block state lives in an open-addressing flat table (same layout
  // rationale as core/directory.hpp): the oracle is consulted on every
  // global transaction, and a contiguous 16-byte-slot probe beats a
  // node-based map's bucket chase. Slots are never erased and the table
  // is never iterated, so growth is the only structural operation.
  struct Slot {
    Addr key = kEmptyKey;
    BlockState state;
  };

  /// Block addresses are block-aligned, so the all-ones address can
  /// never name a real block.
  static constexpr Addr kEmptyKey = ~Addr{0};
  static constexpr std::size_t kInitialCapacity = 256;

  [[nodiscard]] std::size_t probe_start(Addr block) const noexcept {
    // Fibonacci multiply-shift, as in the directory: diffuses the block
    // alignment's low zero bits into the kept top bits.
    return static_cast<std::size_t>(
               (block * 0x9E3779B97F4A7C15ull) >> shift_) &
           mask_;
  }

  void grow(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    shift_ = 64 - static_cast<unsigned>(std::countr_zero(capacity));
    for (const Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = probe_start(s.key);
      while (slots_[i].key != kEmptyKey) {
        i = (i + 1) & mask_;
      }
      slots_[i] = s;
    }
  }

  [[nodiscard]] BlockState& state_for(Addr block) {
    if (slots_.empty()) {
      grow(kInitialCapacity);
    }
    for (;;) {
      std::size_t i = probe_start(block);
      for (;; i = (i + 1) & mask_) {
        Slot& s = slots_[i];
        if (s.key == block) {
          return s.state;
        }
        if (s.key == kEmptyKey) {
          break;
        }
      }
      // 3/4 load-factor ceiling keeps probe chains short.
      if (size_ + 1 > slots_.size() - slots_.size() / 4) {
        grow(slots_.size() * 2);
        continue;  // Re-probe in the grown table.
      }
      slots_[i].key = block;
      size_ += 1;
      return slots_[i].state;
    }
  }

  bool enabled_;
  std::array<LsOracleCounters, kNumStreamTags> per_tag_{};
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
};

}  // namespace lssim
