// Dubois-style classification of coherence misses into true- and
// false-sharing misses (paper Table 4).
//
// Definition used (Dubois et al., ISCA'93, adapted to word granularity):
// a miss caused by an invalidation is a *false sharing* miss if, during
// the new lifetime of the block in the missing processor's cache, the
// processor never touches a word that was written by another processor
// between the invalidation and the re-fetch. Classification is therefore
// deferred: the candidate foreign-written word mask is attached to the
// refilled line and resolved on first intersection (true sharing) or at
// line death (false sharing).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cache/cache.hpp"
#include "sim/types.hpp"
#include "stats/stats.hpp"

namespace lssim {

class FalseSharingClassifier {
 public:
  /// Disabled classifiers are no-ops with zero cost; enable only for runs
  /// that need Table 4 (tracking costs memory proportional to the number
  /// of invalidated (node, block) pairs).
  FalseSharingClassifier(bool enabled, Stats& stats)
      : enabled_(enabled), stats_(stats) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Node `node` lost its copy of `block` to a coherence invalidation.
  void on_invalidated(NodeId node, Addr block) {
    if (!enabled_) return;
    pending_[block] |= std::uint64_t{1} << node;
    foreign_[key(node, block)] = 0;
  }

  /// `writer` wrote the words in `mask` within `block`; accumulate them
  /// for every other node whose copy is currently invalidated.
  void on_write_words(NodeId writer, Addr block, std::uint64_t mask) {
    if (!enabled_) return;
    const auto it = pending_.find(block);
    if (it == pending_.end() || it->second == 0) return;
    std::uint64_t nodes = it->second & ~(std::uint64_t{1} << writer);
    while (nodes != 0) {
      const int node = __builtin_ctzll(nodes);
      nodes &= nodes - 1;
      foreign_[key(static_cast<NodeId>(node), block)] |= mask;
    }
  }

  /// Node `node` refills `block` after a miss. Marks the new line for
  /// deferred classification when the miss was invalidation-caused.
  void on_fill(NodeId node, Addr block, CacheLine& line) {
    if (!enabled_) return;
    const auto it = pending_.find(block);
    const std::uint64_t bit = std::uint64_t{1} << node;
    if (it == pending_.end() || (it->second & bit) == 0) return;
    it->second &= ~bit;
    const auto fit = foreign_.find(key(node, block));
    line.fs_pending = true;
    line.fs_foreign_mask = fit == foreign_.end() ? 0 : fit->second;
    if (fit != foreign_.end()) foreign_.erase(fit);
    stats_.coherence_misses += 1;
  }

  /// Called on every access to a pending line; resolves it as a
  /// true-sharing miss once the accessed words intersect the foreign set.
  void on_access(CacheLine& line, std::uint64_t word_mask) noexcept {
    if (!enabled_ || !line.fs_pending) return;
    if ((line.fs_foreign_mask & word_mask) != 0) {
      line.fs_pending = false;  // True sharing: not counted as false.
    }
  }

  /// Line died (eviction, invalidation, or end of run) while still
  /// pending: no foreign-written word was ever touched -> false sharing.
  void on_line_death(const CacheLine& line) noexcept {
    if (!enabled_ || !line.fs_pending) return;
    stats_.false_sharing_misses += 1;
  }

 private:
  [[nodiscard]] static std::uint64_t key(NodeId node, Addr block) noexcept {
    return (block << 6) | node;
  }

  bool enabled_;
  Stats& stats_;
  std::unordered_map<Addr, std::uint64_t> pending_;     // block -> node mask
  std::unordered_map<std::uint64_t, std::uint64_t> foreign_;
};

/// Word mask covering [addr, addr+size) within its block.
[[nodiscard]] inline std::uint64_t word_mask_of(Addr addr, unsigned size,
                                                std::uint32_t block_bytes,
                                                std::uint32_t word_bytes) {
  const Addr offset = addr & (block_bytes - 1);
  const std::uint32_t first = static_cast<std::uint32_t>(offset / word_bytes);
  const std::uint32_t last =
      static_cast<std::uint32_t>((offset + size - 1) / word_bytes);
  std::uint64_t mask = 0;
  for (std::uint32_t w = first; w <= last && w < 64; ++w) {
    mask |= std::uint64_t{1} << w;
  }
  return mask;
}

}  // namespace lssim
