// Simulation statistics mirroring the paper's reported metrics.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "sim/types.hpp"
#include "stats/timeline.hpp"

namespace lssim {

/// Per-processor execution-time breakdown (paper Figures 3/4/6/7, left
/// diagrams). Every simulated cycle of a processor is exactly one of
/// busy / read stall / write stall.
struct TimeBreakdown {
  Cycles busy = 0;
  Cycles read_stall = 0;
  Cycles write_stall = 0;

  [[nodiscard]] Cycles total() const noexcept {
    return busy + read_stall + write_stall;
  }
  TimeBreakdown& operator+=(const TimeBreakdown& other) noexcept {
    busy += other.busy;
    read_stall += other.read_stall;
    write_stall += other.write_stall;
    return *this;
  }
};

/// Directory state of a block at the home node when a global read miss
/// arrives (paper Figures 3/4/6/7, right diagrams). "Exclusive" means the
/// block is tagged load-store / migratory.
enum class HomeStateAtMiss : std::uint8_t {
  kClean = 0,       ///< Home copy valid, block untagged.
  kDirty = 1,       ///< Modified in a remote cache, block untagged.
  kCleanExcl = 2,   ///< Tagged; home copy still valid.
  kDirtyExcl = 3,   ///< Tagged; modified in a remote cache.
};
inline constexpr int kNumHomeStates = 4;

[[nodiscard]] constexpr const char* to_string(HomeStateAtMiss s) noexcept {
  switch (s) {
    case HomeStateAtMiss::kClean: return "Clean";
    case HomeStateAtMiss::kDirty: return "Dirty";
    case HomeStateAtMiss::kCleanExcl: return "Clean exclusive";
    case HomeStateAtMiss::kDirtyExcl: return "Dirty exclusive";
  }
  return "?";
}

/// Whole-run statistics. One instance per simulation.
struct Stats {
  explicit Stats(int num_nodes)
      : per_proc(static_cast<std::size_t>(num_nodes)),
        traffic_matrix(num_nodes) {}

  // --- time ---------------------------------------------------------
  std::vector<TimeBreakdown> per_proc;
  [[nodiscard]] TimeBreakdown time_total() const noexcept {
    TimeBreakdown sum;
    for (const auto& t : per_proc) sum += t;
    return sum;
  }

  // --- traffic --------------------------------------------------------
  std::array<std::uint64_t, kNumMsgTypes> messages_by_type{};
  [[nodiscard]] std::uint64_t messages_of_class(MsgClass cls) const noexcept {
    std::uint64_t sum = 0;
    for (int t = 0; t < kNumMsgTypes; ++t) {
      if (msg_class(static_cast<MsgType>(t)) == cls) {
        sum += messages_by_type[static_cast<std::size_t>(t)];
      }
    }
    return sum;
  }
  [[nodiscard]] std::uint64_t messages_total() const noexcept {
    std::uint64_t sum = 0;
    for (auto count : messages_by_type) sum += count;
    return sum;
  }

  // --- cache / miss counters ------------------------------------------
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t global_read_misses = 0;
  std::uint64_t global_write_actions = 0;  ///< Upgrades + write misses.
  std::array<std::uint64_t, kNumHomeStates> read_miss_home_state{};

  // --- ownership overhead ----------------------------------------------
  std::uint64_t ownership_acquisitions = 0;  ///< "Global Inv's" (Fig 5).
  std::uint64_t invalidations_sent = 0;      ///< "Invalidations" (Fig 5).
  std::uint64_t single_invalidations = 0;    ///< Acquisitions with one inval.
  /// Writes satisfied locally because the line was held exclusive-unwritten
  /// (LStemp): ownership acquisitions the technique eliminated.
  std::uint64_t eliminated_acquisitions = 0;
  /// Sparse-organisation directory-entry evictions (each one forces the
  /// victim block's cached copies to be invalidated / written back).
  std::uint64_t dir_entry_evictions = 0;

  // --- protocol events --------------------------------------------------
  std::uint64_t blocks_tagged = 0;
  std::uint64_t blocks_detagged = 0;
  std::uint64_t notls_messages = 0;
  std::uint64_t exclusive_read_replies = 0;
  /// Write-update protocols (Dragon): writes that pushed new data to at
  /// least one remote shared copy instead of invalidating it...
  std::uint64_t update_transactions = 0;
  /// ...and how many remote copies those writes updated in total.
  std::uint64_t updates_sent = 0;

  // --- distributions / topology-resolved traffic -------------------------
  LatencyHistogram read_latency;   ///< All read accesses (bucket 0 = hits).
  LatencyHistogram write_latency;  ///< All write/RMW accesses.
  TrafficMatrix traffic_matrix;    ///< Per (src, dst) message counts.

  // --- false sharing (paper Table 4) ------------------------------------
  std::uint64_t network_hops = 0;           ///< Physical link traversals.
  std::uint64_t coherence_misses = 0;       ///< Invalidation-caused misses.
  std::uint64_t false_sharing_misses = 0;   ///< Dubois-classified subset.
  std::uint64_t data_misses = 0;            ///< All L2 data misses.
};

}  // namespace lssim
