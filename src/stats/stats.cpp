#include "stats/stats.hpp"

// Stats is a plain aggregate; this translation unit exists so the module
// has a compiled artifact and a place for future non-inline helpers.

namespace lssim {}  // namespace lssim
