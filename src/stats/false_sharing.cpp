#include "stats/false_sharing.hpp"

// Header-only today; this TU anchors the module.

namespace lssim {}  // namespace lssim
