#include "stats/report.hpp"

#include <cstdio>
#include <ostream>

namespace lssim {

double normalized(std::uint64_t value, std::uint64_t base) noexcept {
  return base == 0 ? 0.0
                   : 100.0 * static_cast<double>(value) /
                         static_cast<double>(base);
}

std::string pct(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", 100.0 * value);
  return buffer;
}

namespace {

std::string fixed1(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%7.1f", v);
  return buffer;
}

}  // namespace

void print_latency_histogram(std::ostream& os, const char* title,
                             const LatencyHistogram& hist) {
  os << "-- " << title << " (" << hist.samples() << " samples, mean "
     << static_cast<std::uint64_t>(hist.mean()) << " cy, p50 <= "
     << hist.percentile(0.5) << ", p99 <= " << hist.percentile(0.99)
     << ") --\n";
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t count = hist.count(b);
    if (count == 0) continue;
    char line[96];
    std::snprintf(line, sizeof(line), "  [%7llu, %7llu)  %10llu  ",
                  static_cast<unsigned long long>(1ull << b),
                  static_cast<unsigned long long>(1ull << (b + 1)),
                  static_cast<unsigned long long>(count));
    os << line;
    const int bars = static_cast<int>(
        60.0 * static_cast<double>(count) /
        static_cast<double>(hist.samples()));
    for (int i = 0; i < bars; ++i) os << '#';
    os << "\n";
  }
}

void print_traffic_matrix(std::ostream& os, const TrafficMatrix& matrix) {
  os << "-- traffic matrix (messages, src row -> dst column) --\n    ";
  for (int d = 0; d < matrix.num_nodes(); ++d) {
    char head[24];
    std::snprintf(head, sizeof(head), "%9s%-2d", "P", d);
    os << head;
  }
  os << "\n";
  for (int s = 0; s < matrix.num_nodes(); ++s) {
    char row[16];
    std::snprintf(row, sizeof(row), "P%-3d", s);
    os << row;
    for (int d = 0; d < matrix.num_nodes(); ++d) {
      char cell[16];
      std::snprintf(cell, sizeof(cell), "%11llu",
                    static_cast<unsigned long long>(matrix.count(
                        static_cast<NodeId>(s), static_cast<NodeId>(d))));
      os << cell;
    }
    os << "\n";
  }
}

void print_timeline(std::ostream& os, const EpochTimeline& timeline) {
  os << "-- epoch timeline (deltas per epoch of "
     << timeline.epoch_length() << " cycles) --\n";
  os << "        end   accesses   messages  rd-misses  wr-actions  "
        "eliminated\n";
  for (const EpochSample& s : timeline.samples()) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "%11llu %10llu %10llu %10llu %11llu %11llu",
                  static_cast<unsigned long long>(s.end_time),
                  static_cast<unsigned long long>(s.accesses),
                  static_cast<unsigned long long>(s.messages),
                  static_cast<unsigned long long>(s.read_misses),
                  static_cast<unsigned long long>(s.write_actions),
                  static_cast<unsigned long long>(s.eliminated));
    os << line << "\n";
  }
}

void print_behavior_figure(std::ostream& os, const std::string& name,
                           std::span<const RunResult> results) {
  if (results.empty()) return;
  const RunResult& base = results.front();

  os << "== Behavior of " << name << " ==\n";
  // Annotate non-default directory organisations; a full-map-only figure
  // prints exactly what it always did.
  bool nondefault_dir = false;
  for (const auto& r : results) {
    nondefault_dir = nondefault_dir || r.directory != DirectoryKind::kFullMap;
  }
  if (nondefault_dir) {
    os << "-- directory:";
    for (const auto& r : results) os << ' ' << directory_name(r.directory);
    os << " --\n";
  }
  os << "-- Normalized execution time (Baseline total = 100) --\n";
  os << "            ";
  for (const auto& r : results) os << "  " << to_string(r.protocol) << "\t";
  os << "\n";
  const auto t_base = static_cast<double>(base.time.total());
  auto row = [&](const char* label, auto getter) {
    os << label;
    for (const auto& r : results) {
      os << fixed1(t_base == 0 ? 0.0 : 100.0 * getter(r) / t_base) << "\t";
    }
    os << "\n";
  };
  row("  busy      ", [](const RunResult& r) {
    return static_cast<double>(r.time.busy);
  });
  row("  read stall", [](const RunResult& r) {
    return static_cast<double>(r.time.read_stall);
  });
  row("  write stal", [](const RunResult& r) {
    return static_cast<double>(r.time.write_stall);
  });
  row("  TOTAL     ", [](const RunResult& r) {
    return static_cast<double>(r.time.total());
  });

  os << "-- Normalized message count (Baseline total = 100) --\n";
  const auto m_base = static_cast<double>(base.traffic_total);
  auto trow = [&](const char* label, MsgClass cls) {
    os << label;
    for (const auto& r : results) {
      os << fixed1(m_base == 0 ? 0.0
                               : 100.0 *
                                     static_cast<double>(
                                         r.traffic[static_cast<std::size_t>(
                                             cls)]) /
                                     m_base)
         << "\t";
    }
    os << "\n";
  };
  trow("  read      ", MsgClass::kRead);
  trow("  write     ", MsgClass::kWrite);
  trow("  other     ", MsgClass::kOther);
  os << "  TOTAL     ";
  for (const auto& r : results) {
    os << fixed1(m_base == 0 ? 0.0
                             : 100.0 * static_cast<double>(r.traffic_total) /
                                   m_base)
       << "\t";
  }
  os << "\n";

  os << "-- Normalized global read misses (Baseline total = 100) --\n";
  const auto rm_base = static_cast<double>(base.global_read_misses);
  for (int s = 0; s < kNumHomeStates; ++s) {
    os << "  " << to_string(static_cast<HomeStateAtMiss>(s));
    for (std::size_t pad = 0;
         pad < 16 - std::string(to_string(static_cast<HomeStateAtMiss>(s)))
                        .size();
         ++pad) {
      os << ' ';
    }
    for (const auto& r : results) {
      os << fixed1(
                rm_base == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(
                              r.read_miss_home[static_cast<std::size_t>(s)]) /
                          rm_base)
         << "\t";
    }
    os << "\n";
  }
  os << "  TOTAL           ";
  for (const auto& r : results) {
    os << fixed1(rm_base == 0
                     ? 0.0
                     : 100.0 * static_cast<double>(r.global_read_misses) /
                           rm_base)
       << "\t";
  }
  os << "\n\n";
}

void print_invalidation_figure(std::ostream& os, const std::string& name,
                               std::span<const RunResult> results,
                               std::span<const std::string> labels) {
  if (results.empty()) return;
  os << "== Invalidation traffic for " << name << " ==\n";
  os << "             ";
  for (const auto& label : labels) os << "  " << label << "\t";
  os << "\n";
  const double base = static_cast<double>(results.front().invalidations +
                                          results.front().ownership_acquisitions);
  os << "  global inv ";
  for (const auto& r : results) {
    os << fixed1(base == 0 ? 0.0
                           : 100.0 *
                                 static_cast<double>(
                                     r.ownership_acquisitions) /
                                 base)
       << "\t";
  }
  os << "\n  invalidatns";
  for (const auto& r : results) {
    os << fixed1(base == 0 ? 0.0
                           : 100.0 * static_cast<double>(r.invalidations) /
                                 base)
       << "\t";
  }
  os << "\n  TOTAL      ";
  for (const auto& r : results) {
    os << fixed1(base == 0
                     ? 0.0
                     : 100.0 *
                           static_cast<double>(r.invalidations +
                                               r.ownership_acquisitions) /
                           base)
       << "\t";
  }
  os << "\n\n";
}

}  // namespace lssim
