#include "stats/ls_oracle.hpp"

// Header-only today; this TU anchors the module.

namespace lssim {}  // namespace lssim
