// Time-resolved statistics: latency histograms and an epoch timeline.
//
// The paper reports end-of-run aggregates; a production simulator also
// needs distributions (was the win in the tail or the median?) and
// time series (did behaviour change between program phases?). Both are
// cheap: histograms use power-of-two buckets, the timeline snapshots
// counters at fixed simulated-time epochs.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lssim {

/// Power-of-two-bucket latency histogram: bucket i holds latencies in
/// [2^i, 2^(i+1)).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 24;

  void record(Cycles latency) noexcept {
    const int bucket =
        latency == 0
            ? 0
            : std::min(kBuckets - 1,
                       64 - 1 - std::countl_zero(
                                    static_cast<std::uint64_t>(latency)));
    counts_[static_cast<std::size_t>(bucket)] += 1;
    total_ += latency;
    samples_ += 1;
  }

  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
  [[nodiscard]] std::uint64_t count(int bucket) const noexcept {
    return counts_[static_cast<std::size_t>(bucket)];
  }
  [[nodiscard]] double mean() const noexcept {
    return samples_ == 0 ? 0.0
                         : static_cast<double>(total_) /
                               static_cast<double>(samples_);
  }

  /// Smallest latency L such that at least `q` (0..1) of samples are <=
  /// the upper edge of L's bucket. Bucket-granular (upper edge returned).
  [[nodiscard]] Cycles percentile(double q) const noexcept {
    if (samples_ == 0) return 0;
    const auto want = static_cast<std::uint64_t>(
        q * static_cast<double>(samples_));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[static_cast<std::size_t>(b)];
      if (seen >= want) {
        return (Cycles{1} << (b + 1)) - 1;
      }
    }
    return (Cycles{1} << kBuckets) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t samples_ = 0;
};

/// One sampled epoch of machine activity.
struct EpochSample {
  Cycles end_time = 0;       ///< Simulated time at the epoch boundary.
  std::uint64_t accesses = 0;
  std::uint64_t messages = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_actions = 0;
  std::uint64_t eliminated = 0;
};

/// Accumulates per-epoch deltas of a few headline counters. The System
/// scheduler feeds it the current totals; the recorder differentiates.
class EpochTimeline {
 public:
  explicit EpochTimeline(Cycles epoch_length = 0)
      : epoch_length_(epoch_length), next_boundary_(epoch_length) {}

  [[nodiscard]] bool enabled() const noexcept { return epoch_length_ > 0; }
  [[nodiscard]] Cycles epoch_length() const noexcept {
    return epoch_length_;
  }

  /// Called with monotonically increasing simulated time and the running
  /// totals; emits one sample per crossed epoch boundary.
  void observe(Cycles now, std::uint64_t accesses, std::uint64_t messages,
               std::uint64_t read_misses, std::uint64_t write_actions,
               std::uint64_t eliminated) {
    if (!enabled()) return;
    while (now >= next_boundary_) {
      samples_.push_back(EpochSample{
          next_boundary_, accesses - last_.accesses,
          messages - last_.messages, read_misses - last_.read_misses,
          write_actions - last_.write_actions,
          eliminated - last_.eliminated});
      last_ = EpochSample{next_boundary_, accesses, messages, read_misses,
                          write_actions, eliminated};
      next_boundary_ += epoch_length_;
    }
  }

  [[nodiscard]] const std::vector<EpochSample>& samples() const noexcept {
    return samples_;
  }

 private:
  Cycles epoch_length_;
  Cycles next_boundary_;
  EpochSample last_{};
  std::vector<EpochSample> samples_;
};

/// Node-to-node message counts (who talks to whom).
class TrafficMatrix {
 public:
  explicit TrafficMatrix(int num_nodes)
      : num_nodes_(num_nodes),
        counts_(static_cast<std::size_t>(num_nodes) *
                    static_cast<std::size_t>(num_nodes),
                0) {}

  void record(NodeId src, NodeId dst) noexcept {
    counts_[static_cast<std::size_t>(src) *
                static_cast<std::size_t>(num_nodes_) +
            dst] += 1;
  }
  [[nodiscard]] std::uint64_t count(NodeId src, NodeId dst) const noexcept {
    return counts_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(num_nodes_) +
                   dst];
  }
  [[nodiscard]] std::uint64_t row_total(NodeId src) const noexcept {
    std::uint64_t sum = 0;
    for (int d = 0; d < num_nodes_; ++d) {
      sum += count(src, static_cast<NodeId>(d));
    }
    return sum;
  }
  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }

 private:
  int num_nodes_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace lssim
