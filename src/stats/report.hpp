// Text reports in the shape of the paper's figures and tables.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "workloads/harness.hpp"

namespace lssim {

/// Prints the three panels of a "Behavior of <name>" figure (paper
/// Figures 3, 4, 6, 7): normalized execution time split into busy / read
/// stall / write stall, normalized message counts split into Read / Write
/// / Other, and normalized global read misses split by home state. All
/// values are normalized so the first result (Baseline) totals 100.
void print_behavior_figure(std::ostream& os, const std::string& name,
                           std::span<const RunResult> results);

/// Prints a Figure-5-style invalidation-traffic panel: ownership
/// acquisitions ("Global Inv's") and invalidation messages, normalized to
/// the first result's total.
void print_invalidation_figure(std::ostream& os, const std::string& name,
                               std::span<const RunResult> results,
                               std::span<const std::string> labels);

/// Prints a latency histogram as an ASCII table (nonzero buckets only).
void print_latency_histogram(std::ostream& os, const char* title,
                             const LatencyHistogram& hist);

/// Prints the node-to-node message-count matrix.
void print_traffic_matrix(std::ostream& os, const TrafficMatrix& matrix);

/// Prints the epoch timeline, one sample per line.
void print_timeline(std::ostream& os, const EpochTimeline& timeline);

/// Formats `value` as a percentage string with one decimal.
[[nodiscard]] std::string pct(double value);

/// 100 * value / base (0 when base is 0).
[[nodiscard]] double normalized(std::uint64_t value,
                                std::uint64_t base) noexcept;

}  // namespace lssim
