// Spin locks operating on *simulated* shared memory.
//
// Lock words live in the simulated address space, so acquire/release
// generate real coherence traffic: the test-and-test-and-set acquire is a
// read (shared copy) followed by an atomic swap (ownership acquisition) —
// precisely the load-store sequence the paper's technique targets, and
// the reason its OLTP workload spends 49% less time in pthread critical
// sections under LS (paper §5.4).
#pragma once

#include <algorithm>
#include <cstdint>

#include "machine/processor.hpp"
#include "mem/shared_heap.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace lssim {

/// Test-and-test-and-set spin lock with randomized exponential backoff.
///
/// Fairness note (applies to real CC-NUMA machines as much as to this
/// simulator): a holder that releases and promptly re-acquires does so
/// from its own cache in a few cycles, while a remote waiter's probe ->
/// swap gap is at least one read-miss latency — so a waiter whose swap is
/// always gated behind a fresh probe can lose *every* race. acquire()
/// therefore probes first (the probe+swap pair is precisely the
/// load-store sequence the paper's lock analysis relies on), but on a
/// failed swap it issues a short burst of direct swaps at randomized,
/// exponentially growing offsets, which de-correlates its attempts from
/// the holder's cycle and makes starvation vanishingly unlikely.
class SpinLock {
 public:
  /// Allocates the lock word on the heap, padded to its own cache block
  /// (256-byte alignment covers every supported block size); callers
  /// wanting false sharing between locks can place several locks
  /// manually with the Addr constructor.
  explicit SpinLock(SharedHeap& heap) : addr_(heap.alloc(4, 256)) {}
  /// Uses an existing simulated word as the lock.
  explicit SpinLock(Addr addr) : addr_(addr) {}

  // NOTE: awaits below are hoisted into named locals (never placed in
  // condition expressions) — see the GCC 12 workaround note in sim/task.hpp.
  [[nodiscard]] SimTask<void> acquire(Processor& proc) const {
    Cycles backoff = kBackoffCycles;
    for (;;) {
      // Test: spin on a (cached, shared) read until the lock looks free.
      for (;;) {
        const std::uint64_t held = co_await proc.read(addr_);
        if (held == 0) break;
        proc.compute(proc.rng().next_range(backoff, 2 * backoff));
      }
      // Test-and-set burst: one atomic swap == one ownership
      // acquisition; retry a few times at randomized offsets before
      // falling back to polite probing (see fairness note above).
      for (int attempt = 0; attempt < kSwapBurst; ++attempt) {
        const std::uint64_t old = co_await proc.swap(addr_, 1);
        if (old == 0) {
          co_return;
        }
        backoff = std::min<Cycles>(backoff * 2, kMaxBackoffCycles);
        proc.compute(proc.rng().next_range(backoff, 2 * backoff));
      }
    }
  }

  [[nodiscard]] SimTask<void> release(Processor& proc) const {
    co_await proc.write(addr_, 0);
  }

  /// Non-blocking acquire attempt; resumes with true on success.
  [[nodiscard]] SimTask<bool> try_acquire(Processor& proc) const {
    const std::uint64_t held = co_await proc.read(addr_);
    if (held != 0) {
      co_return false;
    }
    const std::uint64_t old = co_await proc.swap(addr_, 1);
    co_return old == 0;
  }

  [[nodiscard]] Addr addr() const noexcept { return addr_; }

 private:
  static constexpr Cycles kBackoffCycles = 6;
  static constexpr Cycles kMaxBackoffCycles = 768;
  static constexpr int kSwapBurst = 4;
  Addr addr_;
};

/// Ticket lock: FIFO ordering, one fetch_add to enter, spin on the
/// now-serving counter. Generates a different sharing pattern than TATAS
/// (the serving counter is written by the releaser and read by all
/// waiters), used by the OLTP "OS" run queue.
class TicketLock {
 public:
  /// The ticket counter and the now-serving word live on separate cache
  /// blocks: arrivals (fetch_add on next) must not invalidate the
  /// waiters spinning on serving.
  explicit TicketLock(SharedHeap& heap)
      : next_addr_(heap.alloc(4, 256)), serving_addr_(heap.alloc(4, 256)) {}

  [[nodiscard]] SimTask<void> acquire(Processor& proc) const {
    const std::uint64_t my = co_await proc.fetch_add(next_addr_, 1);
    for (;;) {
      const std::uint64_t serving = co_await proc.read(serving_addr_);
      if (serving == my) break;
      proc.compute(kBackoffCycles);
    }
  }

  [[nodiscard]] SimTask<void> release(Processor& proc) const {
    const std::uint64_t serving = co_await proc.read(serving_addr_);
    co_await proc.write(serving_addr_, serving + 1);
  }

 private:
  static constexpr Cycles kBackoffCycles = 6;
  Addr next_addr_;
  Addr serving_addr_;
};

}  // namespace lssim
