// Lock-protected circular task queue in simulated shared memory.
//
// This is the Cholesky task queue the paper discusses (§5.2): under
// contention its head/tail words and lock migrate between processors,
// producing the single invalidations that appear at 16-32 processors.
#pragma once

#include <cstdint>

#include "machine/processor.hpp"
#include "mem/shared_heap.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"
#include "sync/spinlock.hpp"

namespace lssim {

class TaskQueue {
 public:
  TaskQueue(SharedHeap& heap, std::uint32_t capacity)
      : lock_(heap),
        head_addr_(heap.alloc(4, 4)),
        tail_addr_(heap.alloc(4, 4)),
        slots_(heap, capacity),
        capacity_(capacity) {}

  /// Appends `item`; resumes with false when the queue is full.
  [[nodiscard]] SimTask<bool> push(Processor& proc, std::uint32_t item) {
    co_await lock_.acquire(proc);
    const std::uint64_t head = co_await proc.read(head_addr_);
    const std::uint64_t tail = co_await proc.read(tail_addr_);
    bool ok = false;
    if (tail - head < capacity_) {
      co_await proc.write(slots_.addr(tail % capacity_),
                          static_cast<std::uint64_t>(item));
      co_await proc.write(tail_addr_, tail + 1);
      ok = true;
    }
    co_await lock_.release(proc);
    co_return ok;
  }

  /// Removes the oldest item; resumes with -1 when the queue is empty.
  [[nodiscard]] SimTask<std::int64_t> pop(Processor& proc) {
    co_await lock_.acquire(proc);
    const std::uint64_t head = co_await proc.read(head_addr_);
    const std::uint64_t tail = co_await proc.read(tail_addr_);
    std::int64_t item = -1;
    if (head != tail) {
      item = static_cast<std::int64_t>(
          co_await proc.read(slots_.addr(head % capacity_)));
      co_await proc.write(head_addr_, head + 1);
    }
    co_await lock_.release(proc);
    co_return item;
  }

 private:
  SpinLock lock_;
  Addr head_addr_;
  Addr tail_addr_;
  SharedArray<std::uint32_t> slots_;
  std::uint32_t capacity_;
};

}  // namespace lssim
