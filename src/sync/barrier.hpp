// Sense-reversing centralized barrier over simulated shared memory.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/processor.hpp"
#include "mem/shared_heap.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace lssim {

class Barrier {
 public:
  Barrier(SharedHeap& heap, int participants)
      : count_addr_(heap.alloc(4, 4)),
        sense_addr_(heap.alloc(4, 4)),
        participants_(participants),
        local_sense_(static_cast<std::size_t>(kMaxNodes), 0) {}

  /// Blocks (spins) until all `participants` processors arrive.
  [[nodiscard]] SimTask<void> wait(Processor& proc) {
    std::uint32_t& sense = local_sense_[proc.id()];
    sense ^= 1u;
    const std::uint64_t arrived = co_await proc.fetch_add(count_addr_, 1) + 1;
    if (arrived == static_cast<std::uint64_t>(participants_)) {
      co_await proc.write(count_addr_, 0);
      co_await proc.write(sense_addr_, sense);
    } else {
      for (;;) {
        const std::uint64_t current = co_await proc.read(sense_addr_);
        if (current == sense) break;
        proc.compute(kSpinCycles);
      }
    }
  }

 private:
  static constexpr Cycles kSpinCycles = 10;
  Addr count_addr_;
  Addr sense_addr_;
  int participants_;
  std::vector<std::uint32_t> local_sense_;  // Host-side per-processor state.
};

}  // namespace lssim
