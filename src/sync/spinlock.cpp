#include "sync/spinlock.hpp"

// Header-only coroutine code; this TU anchors the module.

namespace lssim {}  // namespace lssim
