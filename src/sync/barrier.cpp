#include "sync/barrier.hpp"

// Header-only coroutine code; this TU anchors the module.

namespace lssim {}  // namespace lssim
