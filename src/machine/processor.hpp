// Simulated processor: the workload-facing handle for issuing memory
// accesses from coroutine programs.
//
// Usage inside a SimTask<void> coroutine:
//   const std::uint64_t v = co_await proc.read(addr);
//   co_await proc.write(addr, v + 1);
//   proc.compute(20);   // 20 cycles of busy work, no suspension
//
// Every co_await suspends the program; the System scheduler executes the
// access atomically at this processor's current time and resumes the
// program with the result. Atomic RMWs (swap / fetch_add / cas) are single
// coherence transactions, like SPARC ldstub/swap.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <source_location>

#include "core/protocol.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace lssim {

class Processor;

/// Awaitable produced by Processor::read/write/swap/fetch_add/cas.
struct MemAwait {
  Processor& proc;
  AccessRequest req;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) noexcept;
  [[nodiscard]] std::uint64_t await_resume() const noexcept;
};

class Processor {
 public:
  Processor(NodeId id, std::uint64_t rng_seed)
      : id_(id), rng_(rng_seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))) {}

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  // ---- workload-facing operations ------------------------------------
  // Every operation captures its *call site* (std::source_location): the
  // simulator's stand-in for the program counter of the load/store
  // instruction, consumed by the instruction-centric kIls technique.
  [[nodiscard]] MemAwait read(
      Addr addr, unsigned size = 4,
      std::source_location loc = std::source_location::current()) noexcept {
    return MemAwait{
        *this, {MemOpKind::kRead, addr, size, 0, 0, stream_, site_of(loc)}};
  }
  [[nodiscard]] MemAwait write(
      Addr addr, std::uint64_t value, unsigned size = 4,
      std::source_location loc = std::source_location::current()) noexcept {
    return MemAwait{*this,
                    {MemOpKind::kWrite, addr, size, value, 0, stream_,
                     site_of(loc)}};
  }
  /// Atomically stores `value`; resumes with the old value.
  [[nodiscard]] MemAwait swap(
      Addr addr, std::uint64_t value, unsigned size = 4,
      std::source_location loc = std::source_location::current()) noexcept {
    return MemAwait{*this,
                    {MemOpKind::kSwap, addr, size, value, 0, stream_,
                     site_of(loc)}};
  }
  /// Atomically adds `delta`; resumes with the old value.
  [[nodiscard]] MemAwait fetch_add(
      Addr addr, std::uint64_t delta, unsigned size = 4,
      std::source_location loc = std::source_location::current()) noexcept {
    return MemAwait{*this,
                    {MemOpKind::kFetchAdd, addr, size, delta, 0, stream_,
                     site_of(loc)}};
  }
  /// Atomically stores `desired` if the value equals `expected`; resumes
  /// with the old value (success iff old == expected).
  [[nodiscard]] MemAwait cas(
      Addr addr, std::uint64_t expected, std::uint64_t desired,
      unsigned size = 4,
      std::source_location loc = std::source_location::current()) noexcept {
    return MemAwait{*this,
                    {MemOpKind::kCas, addr, size, desired, expected, stream_,
                     site_of(loc)}};
  }

  /// Compact hash of a source location (constant-time: the file-name
  /// pointer is stable per translation unit).
  [[nodiscard]] static std::uint32_t site_of(
      const std::source_location& loc) noexcept {
    const auto file = reinterpret_cast<std::uintptr_t>(loc.file_name());
    std::uint64_t h = static_cast<std::uint64_t>(file) * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<std::uint64_t>(loc.line()) << 20) ^ loc.column();
    h *= 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::uint32_t>(h >> 32);
  }

  /// Advances local time by `cycles` of busy (compute) work. Does not
  /// suspend: ordering is re-established at the next memory access.
  void compute(Cycles cycles) noexcept {
    time_ += cycles;
    busy_ += cycles;
  }

  /// Tags subsequent accesses as app / library / OS work (paper Table 2).
  void set_stream(StreamTag tag) noexcept { stream_ = tag; }
  [[nodiscard]] StreamTag stream() const noexcept { return stream_; }

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] Cycles time() const noexcept { return time_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  friend class System;
  friend struct MemAwait;

  NodeId id_;
  Rng rng_;
  StreamTag stream_ = StreamTag::kApp;

  Cycles time_ = 0;
  Cycles busy_ = 0;  // Accumulated compute cycles (moved to Stats at end).

  // Scheduler rendezvous state.
  bool has_pending_ = false;
  AccessRequest pending_{};
  std::coroutine_handle<> resume_point_;
  std::uint64_t result_ = 0;

  // Outstanding buffered-store completion times (processor consistency;
  // empty under sequential consistency).
  std::deque<Cycles> write_buffer_;
};

inline void MemAwait::await_suspend(std::coroutine_handle<> handle) noexcept {
  proc.pending_ = req;
  proc.has_pending_ = true;
  proc.resume_point_ = handle;
}

inline std::uint64_t MemAwait::await_resume() const noexcept {
  return proc.result_;
}

}  // namespace lssim
