#include "machine/system.hpp"

#include <cassert>
#include <stdexcept>

#include "check/invariants.hpp"

namespace lssim {

System::System(const MachineConfig& config, std::uint64_t seed)
    : cfg_(config),
      stats_(config.num_nodes),
      space_(config.num_nodes, config.page_bytes),
      heap_(space_),
      telemetry_(config.telemetry),
      memory_(config, space_, stats_, &telemetry_),
      timeline_(config.stats_epoch) {
  const std::string problem = config.validate();
  if (!problem.empty()) {
    throw std::invalid_argument("invalid MachineConfig: " + problem);
  }
  if (config.check_invariants) {
    checker_ = std::make_unique<check::InvariantChecker>();
    memory_.attach_checker(checker_.get());
  }
  procs_.reserve(static_cast<std::size_t>(config.num_nodes));
  programs_.resize(static_cast<std::size_t>(config.num_nodes));
  for (int n = 0; n < config.num_nodes; ++n) {
    procs_.push_back(
        std::make_unique<Processor>(static_cast<NodeId>(n), seed));
  }
  if (MetricsRegistry* m = telemetry_.metrics()) {
    read_latency_h_ = m->histogram("sys.read_latency");
    write_latency_h_ = m->histogram("sys.write_latency");
    exec_time_g_ = m->gauge("sys.exec_cycles");
    node_accesses_.reserve(static_cast<std::size_t>(config.num_nodes));
    for (int n = 0; n < config.num_nodes; ++n) {
      node_accesses_.push_back(m->counter(
          "sys.accesses", MetricLabels{{"node", std::to_string(n)}}));
    }
  }
}

// Out of line: ~unique_ptr<InvariantChecker> needs the complete type.
System::~System() = default;

void System::spawn(NodeId node, SimTask<void> program) {
  assert(node < procs_.size());
  assert(!programs_[node].valid() && "processor already has a program");
  programs_[node] = std::move(program);
}

void System::run() {
  assert(!ran_ && "System::run may only be called once");
  ran_ = true;

  // Start every program; each runs until its first memory access (or to
  // completion, for programs that never touch simulated memory).
  for (auto& program : programs_) {
    if (program.valid()) {
      program.resume();
    }
  }

  for (;;) {
    // Pick the runnable processor with the earliest local time (ties
    // broken by node id, keeping runs deterministic).
    Processor* next = nullptr;
    for (auto& proc : procs_) {
      if (!proc->has_pending_) continue;
      if (next == nullptr || proc->time_ < next->time_) {
        next = proc.get();
      }
    }
    if (next == nullptr) {
      break;  // All programs finished (or none issued accesses).
    }
    if (cfg_.max_cycles != 0 && next->time_ > cfg_.max_cycles) {
      timed_out_ = true;  // Watchdog: leave remaining programs suspended.
      break;
    }

    next->has_pending_ = false;
    const AccessRequest req = next->pending_;
    const AccessResult res = memory_.access(next->id_, req, next->time_);
    for (const AccessObserver& observer : observers_) {
      observer(next->id_, req, next->time_, res.latency);
    }
    if (req.is_write()) {
      stats_.write_latency.record(res.latency);
    } else {
      stats_.read_latency.record(res.latency);
    }
    if (MetricsRegistry* m = telemetry_.metrics()) {
      m->add(node_accesses_[next->id_]);
      m->observe(req.is_write() ? write_latency_h_ : read_latency_h_,
                 res.latency);
    }
    if (timeline_.enabled()) {
      timeline_.observe(next->time_, stats_.accesses,
                        stats_.messages_total(), stats_.global_read_misses,
                        stats_.global_write_actions,
                        stats_.eliminated_acquisitions);
    }

    // Time accounting. Under sequential consistency (paper default) one
    // issue cycle is busy and the rest of the access latency is read or
    // write stall (paper: stall on every L2 miss). Under processor
    // consistency, plain stores retire into a finite write buffer: the
    // processor only stalls when the buffer is full; reads and atomic
    // RMWs remain blocking (paper §6 discussion).
    TimeBreakdown& tb = stats_.per_proc[next->id_];
    const Cycles issue = std::min<Cycles>(res.latency, cfg_.latency.l1_access);
    const bool buffered = cfg_.consistency == ConsistencyModel::kPc &&
                          req.op == MemOpKind::kWrite;
    if (buffered) {
      auto& wb = next->write_buffer_;
      while (!wb.empty() && wb.front() <= next->time_) {
        wb.pop_front();  // Drain completed stores.
      }
      Cycles stall = 0;
      if (wb.size() >= cfg_.write_buffer_depth) {
        stall = wb.front() - next->time_;
        wb.pop_front();
      }
      wb.push_back(next->time_ + stall + res.latency);
      tb.busy += issue;
      tb.write_stall += stall;
      next->time_ += stall + issue;
    } else {
      tb.busy += issue;
      const Cycles stall = res.latency - issue;
      if (req.is_write()) {
        tb.write_stall += stall;
      } else {
        tb.read_stall += stall;
      }
      next->time_ += res.latency;
    }
    next->result_ = res.value;
    next->resume_point_.resume();
  }

  // Fold compute-cycle busy time into the stats and flush classifiers.
  for (auto& proc : procs_) {
    stats_.per_proc[proc->id_].busy += proc->busy_;
    proc->busy_ = 0;
  }
  memory_.finalize();
  if (checker_) {
    checker_->final_check(memory_);
  }
  if (MetricsRegistry* m = telemetry_.metrics()) {
    m->set(exec_time_g_, static_cast<std::int64_t>(exec_time()));
  }
}

Cycles System::exec_time() const noexcept {
  Cycles latest = 0;
  for (const auto& proc : procs_) {
    latest = std::max(latest, proc->time_);
  }
  return latest;
}

}  // namespace lssim
