// Whole-machine assembly and the min-time scheduler.
//
// A System owns the simulated address space, the shared heap, the memory
// system (caches + directory + network) and one Processor per node.
// Workload programs are SimTask<void> coroutines spawned onto processors;
// run() interleaves them in global time order: it always executes the
// pending access of the processor whose local clock is earliest, which
// realises a sequentially consistent execution with stall-on-L2-miss
// (paper §4.2).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/protocol.hpp"
#include "machine/processor.hpp"
#include "mem/address_space.hpp"
#include "mem/shared_heap.hpp"
#include "sim/config.hpp"
#include "sim/task.hpp"
#include "stats/stats.hpp"
#include "telemetry/telemetry.hpp"

namespace lssim {

class System {
 public:
  explicit System(const MachineConfig& config, std::uint64_t seed = 1);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Assigns `program` to processor `node`. At most one program per
  /// processor may be active; spawn all programs before run().
  void spawn(NodeId node, SimTask<void> program);

  /// Runs all spawned programs to completion and finalizes statistics.
  void run();

  [[nodiscard]] Processor& proc(NodeId node) noexcept {
    return *procs_[node];
  }
  [[nodiscard]] int num_procs() const noexcept {
    return static_cast<int>(procs_.size());
  }

  [[nodiscard]] AddressSpace& space() noexcept { return space_; }
  [[nodiscard]] SharedHeap& heap() noexcept { return heap_; }
  [[nodiscard]] Stats& stats() noexcept { return stats_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] MemorySystem& memory() noexcept { return memory_; }
  [[nodiscard]] Telemetry& telemetry() noexcept { return telemetry_; }
  [[nodiscard]] const Telemetry& telemetry() const noexcept {
    return telemetry_;
  }
  [[nodiscard]] const MachineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const EpochTimeline& timeline() const noexcept {
    return timeline_;
  }

  /// Wall-clock execution time: the latest processor local time.
  [[nodiscard]] Cycles exec_time() const noexcept;

  /// True when run() stopped on the max_cycles watchdog rather than on
  /// program completion.
  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

  /// The attached invariant checker when config.check_invariants is on,
  /// else null. Violations accumulate there across the whole run.
  [[nodiscard]] const check::InvariantChecker* invariant_checker()
      const noexcept {
    return checker_.get();
  }

  /// Keeps a workload context alive for the duration of the simulation
  /// (programs capture references into it).
  void retain(std::shared_ptr<void> context) {
    retained_.push_back(std::move(context));
  }

  /// Observer invoked for every executed access (node, request, issue
  /// time, latency). Used by the trace recorder and telemetry probes;
  /// attach before run(). Observers COMPOSE: each added observer is
  /// invoked in registration order, so a recorder and a telemetry probe
  /// can watch the same run without silently dropping each other.
  using AccessObserver =
      std::function<void(NodeId, const AccessRequest&, Cycles, Cycles)>;
  void add_access_observer(AccessObserver observer) {
    observers_.push_back(std::move(observer));
  }
  /// Historical name; despite "set", this has the same append-compose
  /// semantics as add_access_observer (it never replaces observers
  /// attached earlier).
  void set_access_observer(AccessObserver observer) {
    add_access_observer(std::move(observer));
  }

 private:
  MachineConfig cfg_;
  Stats stats_;
  AddressSpace space_;
  SharedHeap heap_;
  Telemetry telemetry_;  ///< Must outlive memory_ (handles point into it).
  MemorySystem memory_;
  /// Owned invariant checker (config.check_invariants); attached to
  /// memory_ right after construction, detached never — memory_ makes no
  /// hook calls during destruction.
  std::unique_ptr<check::InvariantChecker> checker_;
  std::vector<std::unique_ptr<Processor>> procs_;
  std::vector<SimTask<void>> programs_;  // Index-aligned with procs_.
  std::vector<std::shared_ptr<void>> retained_;
  EpochTimeline timeline_;
  std::vector<AccessObserver> observers_;
  // System-level metric handles (only valid when telemetry.metrics is on).
  HistogramHandle read_latency_h_;
  HistogramHandle write_latency_h_;
  std::vector<CounterHandle> node_accesses_;
  GaugeHandle exec_time_g_;
  bool ran_ = false;
  bool timed_out_ = false;
};

}  // namespace lssim
