#include "machine/processor.hpp"

// Processor is header-only today; this TU anchors the module.

namespace lssim {}  // namespace lssim
