#include "trace/trace.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "mem/address_space.hpp"

namespace lssim {
namespace {

constexpr char kMagic[8] = {'L', 'S', 'T', 'R', 'A', 'C', 'E', '1'};

template <typename T>
void put(std::ostream& os, T value) {
  std::array<char, sizeof(T)> bytes{};
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  os.write(bytes.data(), bytes.size());
}

template <typename T>
T get(std::istream& is) {
  std::array<char, sizeof(T)> bytes{};
  is.read(bytes.data(), bytes.size());
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

void Trace::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  put<std::uint64_t>(os, records_.size());
  for (const TraceRecord& r : records_) {
    put<std::uint64_t>(os, r.addr);
    put<std::uint64_t>(os, r.issue_gap);
    put<std::uint8_t>(os, r.node);
    put<std::uint8_t>(os, r.op);
    put<std::uint8_t>(os, r.size);
    put<std::uint8_t>(os, r.tag);
  }
}

Trace Trace::load(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an lssim trace file");
  }
  const std::uint64_t count = get<std::uint64_t>(is);
  Trace trace;
  trace.records_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.addr = get<std::uint64_t>(is);
    r.issue_gap = get<std::uint64_t>(is);
    r.node = get<std::uint8_t>(is);
    r.op = get<std::uint8_t>(is);
    r.size = get<std::uint8_t>(is);
    r.tag = get<std::uint8_t>(is);
    if (!is) {
      throw std::runtime_error("truncated lssim trace file");
    }
    trace.records_.push_back(r);
  }
  return trace;
}

ReplayResult replay_trace(const Trace& trace, const MachineConfig& config,
                          Stats& stats) {
  AddressSpace space(config.num_nodes, config.page_bytes);
  MemorySystem memory(config, space, stats);

  // Per-node program-order index into the trace.
  const auto& records = trace.records();
  std::vector<std::vector<std::size_t>> order(
      static_cast<std::size_t>(config.num_nodes));
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].node >= order.size()) {
      throw std::out_of_range("trace record for node outside machine");
    }
    order[records[i].node].push_back(i);
  }

  std::vector<std::size_t> cursor(order.size(), 0);
  std::vector<Cycles> clock(order.size(), 0);
  ReplayResult result;

  for (;;) {
    // Pick the node whose next access issues earliest.
    int best = -1;
    Cycles best_issue = std::numeric_limits<Cycles>::max();
    for (std::size_t n = 0; n < order.size(); ++n) {
      if (cursor[n] >= order[n].size()) continue;
      const TraceRecord& r = records[order[n][cursor[n]]];
      const Cycles issue = clock[n] + r.issue_gap;
      if (issue < best_issue) {
        best_issue = issue;
        best = static_cast<int>(n);
      }
    }
    if (best < 0) break;

    const TraceRecord& r = records[order[best][cursor[best]++]];
    AccessRequest req;
    req.op = static_cast<MemOpKind>(r.op);
    req.addr = r.addr;
    req.size = r.size;
    req.tag = static_cast<StreamTag>(r.tag);
    req.wdata = 1;  // Replay carries no data payloads.
    const AccessResult res =
        memory.access(static_cast<NodeId>(best), req, best_issue);
    clock[best] = best_issue + res.latency;
    result.accesses += 1;
  }
  memory.finalize();
  for (Cycles c : clock) result.total_cycles += c;
  return result;
}

}  // namespace lssim
