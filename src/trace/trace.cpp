#include "trace/trace.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "trace/replay_compare.hpp"

namespace lssim {
namespace {

constexpr char kMagicV1[8] = {'L', 'S', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr char kMagicV2[8] = {'L', 'S', 'T', 'R', 'A', 'C', 'E', '2'};
// v2.1: the v2 layout with a config-hash schema version (u32) between
// the magic and the hash, so replay can recompute the hash the way the
// capturing build did (trace/config_hash.hpp).
constexpr char kMagicV21[8] = {'L', 'S', 'T', 'R', 'A', 'C', '2', '1'};

template <typename T>
void put(std::ostream& os, T value) {
  std::array<char, sizeof(T)> bytes{};
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  os.write(bytes.data(), bytes.size());
}

template <typename T>
T get(std::istream& is) {
  std::array<char, sizeof(T)> bytes{};
  is.read(bytes.data(), bytes.size());
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

void check_stream(std::istream& is) {
  if (!is) {
    throw std::runtime_error("truncated lssim trace file");
  }
}

}  // namespace

void Trace::save(std::ostream& os) const {
  os.write(kMagicV21, sizeof(kMagicV21));
  put<std::uint32_t>(os, meta_.hash_version);
  put<std::uint64_t>(os, meta_.config_hash);
  put<std::uint64_t>(os, meta_.seed);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(meta_.workload.size()));
  os.write(meta_.workload.data(),
           static_cast<std::streamsize>(meta_.workload.size()));
  put<std::uint32_t>(os,
                     static_cast<std::uint32_t>(meta_.final_gaps.size()));
  for (Cycles gap : meta_.final_gaps) {
    put<std::uint64_t>(os, gap);
  }
  put<std::uint64_t>(os, records_.size());
  for (const TraceRecord& r : records_) {
    put<std::uint64_t>(os, r.addr);
    put<std::uint64_t>(os, r.issue_gap);
    put<std::uint64_t>(os, r.wdata);
    put<std::uint64_t>(os, r.expected);
    put<std::uint32_t>(os, r.site);
    put<std::uint16_t>(os, r.node);
    put<std::uint8_t>(os, r.op);
    put<std::uint8_t>(os, r.size);
    put<std::uint8_t>(os, r.tag);
  }
}

Trace Trace::load(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  const bool v1 = is && std::memcmp(magic, kMagicV1, sizeof(magic)) == 0;
  const bool v21 = is && std::memcmp(magic, kMagicV21, sizeof(magic)) == 0;
  const bool v2 =
      v21 || (is && std::memcmp(magic, kMagicV2, sizeof(magic)) == 0);
  if (!v1 && !v2) {
    throw std::runtime_error("not an lssim trace file");
  }

  Trace trace;
  trace.meta_.hash_version = 0;
  if (v2) {
    if (v21) {
      trace.meta_.hash_version = get<std::uint32_t>(is);
    }
    trace.meta_.config_hash = get<std::uint64_t>(is);
    trace.meta_.seed = get<std::uint64_t>(is);
    const std::uint32_t name_len = get<std::uint32_t>(is);
    check_stream(is);
    if (name_len > (1u << 20)) {
      throw std::runtime_error("corrupt lssim trace file (workload name)");
    }
    trace.meta_.workload.resize(name_len);
    is.read(trace.meta_.workload.data(), name_len);
    const std::uint32_t gaps = get<std::uint32_t>(is);
    check_stream(is);
    if (gaps > static_cast<std::uint32_t>(kMaxNodes)) {
      throw std::runtime_error("corrupt lssim trace file (final gaps)");
    }
    trace.meta_.final_gaps.reserve(gaps);
    for (std::uint32_t i = 0; i < gaps; ++i) {
      trace.meta_.final_gaps.push_back(get<std::uint64_t>(is));
    }
    check_stream(is);
  }

  const std::uint64_t count = get<std::uint64_t>(is);
  check_stream(is);
  trace.records_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.addr = get<std::uint64_t>(is);
    r.issue_gap = get<std::uint64_t>(is);
    if (v2) {
      r.wdata = get<std::uint64_t>(is);
      r.expected = get<std::uint64_t>(is);
      r.site = get<std::uint32_t>(is);
      r.node = get<std::uint16_t>(is);
    } else {
      // Version-1 records carried no data payloads; replay historically
      // substituted the constant 1.
      r.wdata = 1;
      r.node = get<std::uint8_t>(is);
    }
    r.op = get<std::uint8_t>(is);
    r.size = get<std::uint8_t>(is);
    r.tag = get<std::uint8_t>(is);
    check_stream(is);
    trace.records_.push_back(r);
  }
  return trace;
}

ReplayResult replay_trace(const Trace& trace, const MachineConfig& config,
                          Stats& stats) {
  const ReplayCompareEngine engine(trace, config);
  ReplayResult result;
  (void)engine.replay_collect(config, stats, &result.total_cycles);
  result.accesses = trace.size();
  return result;
}

}  // namespace lssim
