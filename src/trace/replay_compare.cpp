#include "trace/replay_compare.hpp"

#include <algorithm>
#include <limits>

#include "exec/parallel_executor.hpp"
#include "machine/system.hpp"
#include "mem/address_space.hpp"
#include "trace/config_hash.hpp"
#include "trace/recorder.hpp"

namespace lssim {

CapturedTrace capture_trace(const MachineConfig& config,
                            const WorkloadBuilder& build, std::uint64_t seed,
                            const std::string& workload) {
  if (config.consistency != ConsistencyModel::kSc) {
    throw std::invalid_argument(
        "trace capture requires sequential consistency: buffered stores "
        "(PC) overlap compute with access latency, which the per-node "
        "completion-gap encoding cannot represent");
  }
  CapturedTrace captured;
  System sys(config, seed);
  TraceRecorder recorder(sys, captured.trace);
  build(sys);
  sys.run();
  if (sys.timed_out()) {
    throw std::runtime_error(
        "trace capture hit the max_cycles watchdog: refusing to record a "
        "truncated access stream");
  }
  recorder.finish(sys);
  captured.trace.meta().config_hash = trace_config_hash(config);
  captured.trace.meta().hash_version = kTraceConfigHashVersion;
  captured.trace.meta().seed = seed;
  captured.trace.meta().workload = workload;
  captured.executed = collect(sys);
  return captured;
}

TraceConfigMismatch::TraceConfigMismatch(std::uint64_t trace,
                                         std::uint64_t machine)
    : std::runtime_error(
          "trace/machine configuration mismatch: trace recorded on " +
          format_config_hash(trace) + ", replay machine is " +
          format_config_hash(machine) +
          " (protocol-insensitive fields differ; re-capture the trace)"),
      trace_hash(trace),
      machine_hash(machine) {}

namespace {

void check_config_compatible(const Trace& trace, const MachineConfig& cfg) {
  const std::uint64_t recorded = trace.meta().config_hash;
  if (recorded == 0) {
    return;  // Hand-built or version-1 trace: nothing to check against.
  }
  const std::uint32_t version = trace.meta().hash_version;
  if (version == 0 && cfg.interconnect != InterconnectKind::kNetwork) {
    // Pre-seam hash schemas do not cover the transport, and such
    // captures could only have run on the directory network — replaying
    // one on the bus is a config mismatch even where the hashed fields
    // agree.
    throw TraceConfigMismatch(recorded, trace_config_hash(cfg));
  }
  // Recompute under the capture's schema so older captures keep
  // replaying on machines they actually describe.
  const std::uint64_t machine = trace_config_hash(cfg, version);
  if (recorded != machine) {
    throw TraceConfigMismatch(recorded, machine);
  }
}

}  // namespace

ReplayCompareEngine::ReplayCompareEngine(const Trace& trace,
                                         const MachineConfig& base)
    : trace_(&trace), base_(base) {
  if (base_.consistency != ConsistencyModel::kSc) {
    throw std::invalid_argument(
        "trace replay requires sequential consistency (matching capture)");
  }
  check_config_compatible(trace, base_);
  streams_.resize(static_cast<std::size_t>(base_.num_nodes));
  const auto& records = trace.records();
  for (const TraceRecord& r : records) {
    if (r.node >= streams_.size()) {
      throw std::out_of_range("trace record for node outside machine");
    }
    DecodedAccess d;
    d.addr = r.addr;
    d.gap = r.issue_gap;
    d.site = r.site;
    d.op = static_cast<MemOpKind>(r.op);
    d.tag = static_cast<StreamTag>(r.tag);
    d.size = static_cast<std::uint8_t>(r.size);
    streams_[r.node].push_back(d);
  }
}

RunResult ReplayCompareEngine::replay_collect(const MachineConfig& config,
                                              Stats& stats,
                                              Cycles* total_cycles) const {
  check_config_compatible(*trace_, config);
  AddressSpace space(config.num_nodes, config.page_bytes);
  MemorySystem memory(config, space, stats);
  // No workload consumes the replayed values and no checker is attached:
  // skip the simulated data movement (stat-neutral; see protocol.hpp).
  memory.enable_lean_replay();
  // Pre-size the block-keyed tables from an earlier replay's observed
  // population (see the hint members' doc for why this is unobservable
  // and why the directory hint is full-map-only).
  if (const std::size_t hint =
          oracle_population_hint_.load(std::memory_order_relaxed);
      hint != 0) {
    memory.oracle().reserve(hint);
  }
  if (const std::size_t hint =
          dir_population_hint_.load(std::memory_order_relaxed);
      hint != 0 && config.directory_scheme == DirectoryKind::kFullMap) {
    memory.directory().reserve(hint);
  }

  constexpr Cycles kDone = std::numeric_limits<Cycles>::max();
  const auto& final_gaps = trace_->meta().final_gaps;
  const std::size_t nodes = streams_.size();
  std::vector<std::size_t> cursor(nodes, 0);
  std::vector<Cycles> clock(nodes, 0);
  // Cached next issue time per node: only the node that issued changes
  // between iterations, so the min-scan reads a flat Cycles array
  // instead of chasing cursors into the record stream.
  std::vector<Cycles> next_issue(nodes, kDone);
  for (std::size_t n = 0; n < nodes; ++n) {
    if (!streams_[n].empty()) next_issue[n] = streams_[n][0].gap;
  }

  // The live scheduler, without the coroutines: always issue the pending
  // access with the earliest issue time (strict < with ascending node
  // scan = ties to the lowest node id, exactly like System::run), then
  // advance that node's clock by the access latency. The recorded gap is
  // the compute the program did between the accesses.
  for (;;) {
    // Min-reduction first (branchless, vectorizable), then the first
    // index holding the minimum — identical to a strict-< ascending scan
    // (ties resolve to the lowest node id, exactly like System::run).
    Cycles best_issue = next_issue[0];
    for (std::size_t n = 1; n < nodes; ++n) {
      best_issue = std::min(best_issue, next_issue[n]);
    }
    if (best_issue == kDone) break;
    std::size_t best = 0;
    while (next_issue[best] != best_issue) {
      ++best;
    }

    const DecodedAccess& d = streams_[best][cursor[best]++];
    AccessRequest req;
    req.op = d.op;
    req.addr = d.addr;
    req.size = d.size;
    req.tag = d.tag;
    req.site = d.site;
    const AccessResult res =
        memory.access(static_cast<NodeId>(best), req, best_issue);

    const bool is_write = req.is_write();
    if (is_write) {
      stats.write_latency.record(res.latency);
    } else {
      stats.read_latency.record(res.latency);
    }
    // SC time accounting, verbatim from System::run: one issue-width
    // slice is busy, the rest of the latency is read or write stall, and
    // the inter-access gap itself was compute (busy) time.
    TimeBreakdown& tb = stats.per_proc[best];
    const Cycles issue_cost =
        std::min<Cycles>(res.latency, config.latency.l1_access);
    tb.busy += d.gap + issue_cost;
    const Cycles stall = res.latency - issue_cost;
    if (is_write) {
      tb.write_stall += stall;
    } else {
      tb.read_stall += stall;
    }
    clock[best] = best_issue + res.latency;
    if (cursor[best] < streams_[best].size()) {
      const DecodedAccess& up = streams_[best][cursor[best]];
      next_issue[best] = clock[best] + up.gap;
      // The replay engine knows each node's future accesses — something a
      // live execution never does. Warm the host cache for the simulated
      // structures the upcoming access will probe; by the time this node
      // issues again, other nodes' accesses have covered the miss
      // latency. Stat-neutral: prefetch touches no simulated state.
      memory.prefetch(static_cast<NodeId>(best), up.addr);
    } else {
      next_issue[best] = kDone;
    }
  }

  // Trailing compute after each node's last access (or a node's whole
  // program, when it never touched memory).
  Cycles exec_time = 0;
  Cycles clock_sum = 0;
  for (std::size_t n = 0; n < nodes; ++n) {
    const Cycles gap = n < final_gaps.size() ? final_gaps[n] : 0;
    stats.per_proc[n].busy += gap;
    clock[n] += gap;
    exec_time = std::max(exec_time, clock[n]);
    clock_sum += clock[n];
  }
  memory.finalize();
  // Publish the populations this replay discovered for the next cell.
  // Different protocols tag differently but touch the same block set, so
  // any cell's population is the right hint for every other; max() keeps
  // the largest seen under concurrent publication.
  const std::size_t dir_seen = memory.directory().size();
  std::size_t prev = dir_population_hint_.load(std::memory_order_relaxed);
  while (prev < dir_seen && !dir_population_hint_.compare_exchange_weak(
                                prev, dir_seen, std::memory_order_relaxed)) {
  }
  const std::size_t oracle_seen = memory.oracle().population();
  prev = oracle_population_hint_.load(std::memory_order_relaxed);
  while (prev < oracle_seen &&
         !oracle_population_hint_.compare_exchange_weak(
             prev, oracle_seen, std::memory_order_relaxed)) {
  }
  if (total_cycles != nullptr) {
    *total_cycles = clock_sum;
  }
  return collect(config, stats, memory, exec_time);
}

RunResult ReplayCompareEngine::replay_config(
    const MachineConfig& config) const {
  Stats stats(config.num_nodes);
  return replay_collect(config, stats);
}

RunResult ReplayCompareEngine::replay(ProtocolKind protocol) const {
  MachineConfig cfg = base_;
  cfg.protocol.kind = protocol;
  return replay_config(cfg);
}

RunResult ReplayCompareEngine::replay(ProtocolKind protocol,
                                      DirectoryKind directory) const {
  MachineConfig cfg = base_;
  cfg.protocol.kind = protocol;
  cfg.directory_scheme = directory;
  return replay_config(cfg);
}

std::vector<RunResult> ReplayCompareEngine::replay_matrix(
    std::span<const ProtocolKind> protocols,
    std::span<const DirectoryKind> directories, int jobs) const {
  const std::size_t dirs = std::max<std::size_t>(1, directories.size());
  return parallel_map<RunResult>(
      protocols.size() * dirs, jobs, [&, this](std::size_t i) {
        MachineConfig cfg = base_;
        cfg.protocol.kind = protocols[i / dirs];
        if (!directories.empty()) {
          cfg.directory_scheme = directories[i % dirs];
        }
        return replay_config(cfg);
      });
}

std::vector<std::string> compare_replay(const RunResult& executed,
                                        const RunResult& replayed) {
  std::vector<std::string> diffs;
  const auto field = [&diffs](const char* name, std::uint64_t exec,
                              std::uint64_t replay) {
    if (exec != replay) {
      diffs.push_back(std::string(name) + ": executed " +
                      std::to_string(exec) + ", replayed " +
                      std::to_string(replay));
    }
  };
  field("exec_cycles", executed.exec_time, replayed.exec_time);
  field("busy", executed.time.busy, replayed.time.busy);
  field("read_stall", executed.time.read_stall, replayed.time.read_stall);
  field("write_stall", executed.time.write_stall, replayed.time.write_stall);
  field("accesses", executed.accesses, replayed.accesses);
  field("l1_hits", executed.l1_hits, replayed.l1_hits);
  field("l2_hits", executed.l2_hits, replayed.l2_hits);
  field("messages", executed.traffic_total, replayed.traffic_total);
  field("global_read_misses", executed.global_read_misses,
        replayed.global_read_misses);
  field("global_write_actions", executed.global_write_actions,
        replayed.global_write_actions);
  field("ownership_acquisitions", executed.ownership_acquisitions,
        replayed.ownership_acquisitions);
  field("invalidations", executed.invalidations, replayed.invalidations);
  field("eliminated_acquisitions", executed.eliminated_acquisitions,
        replayed.eliminated_acquisitions);
  field("update_transactions", executed.update_transactions,
        replayed.update_transactions);
  field("updates_sent", executed.updates_sent, replayed.updates_sent);
  field("blocks_tagged", executed.blocks_tagged, replayed.blocks_tagged);
  field("blocks_detagged", executed.blocks_detagged,
        replayed.blocks_detagged);
  field("dir_entry_evictions", executed.dir_entry_evictions,
        replayed.dir_entry_evictions);
  return diffs;
}

}  // namespace lssim
