// Machine-configuration hash for cached access traces.
//
// A recorded trace is only meaningful against machines whose
// *protocol-insensitive* configuration matches the capture machine: node
// count and page interleaving (which addresses exist and where they
// live), cache geometry and latencies (which determine the issue times
// the per-record gaps were measured against), consistency model and
// topology. Protocol and directory-organisation knobs are deliberately
// excluded — sweeping those over one trace is the entire point of the
// capture-once/replay-many engine (trace/replay_compare.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "sim/config.hpp"

namespace lssim {

/// FNV-1a hash over the protocol-insensitive MachineConfig fields.
/// Stable across runs and platforms (field-by-field, little-endian
/// widths); NOT stable across releases that add hashed fields — which is
/// the desired behaviour: a layout change invalidates cached traces.
[[nodiscard]] std::uint64_t trace_config_hash(
    const MachineConfig& config) noexcept;

/// `hash` as the fixed-width lowercase hex string used in mismatch
/// messages, e.g. "0x00c0ffee00c0ffee".
[[nodiscard]] std::string format_config_hash(std::uint64_t hash);

}  // namespace lssim
