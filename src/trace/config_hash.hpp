// Machine-configuration hash for cached access traces.
//
// A recorded trace is only meaningful against machines whose
// *protocol-insensitive* configuration matches the capture machine: node
// count and page interleaving (which addresses exist and where they
// live), cache geometry and latencies (which determine the issue times
// the per-record gaps were measured against), consistency model and
// topology. Protocol and directory-organisation knobs are deliberately
// excluded — sweeping those over one trace is the entire point of the
// capture-once/replay-many engine (trace/replay_compare.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/config.hpp"

namespace lssim {

/// Config-hash schema version recorded in capture-trace headers (the
/// trace format's minor version). Version 0 — implicit in files written
/// before the interconnect seam — hashes the original field set; version
/// 1 additionally covers the coherence transport (interconnect kind and
/// bus arbitration), so a bus capture can never be replayed against a
/// directory-network machine or vice versa.
inline constexpr std::uint32_t kTraceConfigHashVersion = 1;

/// FNV-1a hash over the protocol-insensitive MachineConfig fields, as
/// defined by `version` (clamped to the newest known schema). Stable
/// across runs and platforms (field-by-field, little-endian widths);
/// NOT stable across schema versions that add hashed fields — which is
/// the desired behaviour: a layout change invalidates cached traces.
[[nodiscard]] std::uint64_t trace_config_hash(
    const MachineConfig& config,
    std::uint32_t version = kTraceConfigHashVersion) noexcept;

/// `hash` as the fixed-width lowercase hex string used in mismatch
/// messages, e.g. "0x00c0ffee00c0ffee".
[[nodiscard]] std::string format_config_hash(std::uint64_t hash);

/// Inverse of format_config_hash (also accepts bare hex without the 0x
/// prefix). Returns false on junk.
bool parse_config_hash(std::string_view text, std::uint64_t* out) noexcept;

/// Sweep-key schema version recorded in results-store headers. Version 1
/// covers everything below; bumping it (because a hashed field was
/// added) invalidates stored completion keys, which is the desired
/// behaviour — a key-layout change must force re-execution.
inline constexpr std::uint32_t kSweepConfigHashVersion = 1;

/// FNV-1a key identifying one sweep cell: the full machine configuration
/// — *including* the protocol, directory-organisation and interconnect
/// knobs that trace_config_hash deliberately excludes — plus the
/// workload name, its parameter overrides and the seed. Two sweep cells
/// collide only if they would run the identical simulation, so the
/// results store can skip completed keys on resume. Same stability
/// contract as trace_config_hash: stable across runs and platforms, not
/// across schema versions.
[[nodiscard]] std::uint64_t sweep_config_hash(
    const MachineConfig& config, std::string_view workload,
    const std::vector<std::pair<std::string, std::string>>& params,
    std::uint64_t seed) noexcept;

}  // namespace lssim
