#include "trace/config_hash.hpp"

#include <cstdio>

namespace lssim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

class Fnv1a {
 public:
  void mix(std::uint64_t value) noexcept {
    // Hash all 8 bytes explicitly so the result is independent of host
    // endianness and of the caller's integer width.
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xff;
      hash_ *= kFnvPrime;
    }
  }
  void mix(std::string_view text) noexcept {
    // Length-prefixed so adjacent strings can't alias ("ab","c" vs
    // "a","bc").
    mix(static_cast<std::uint64_t>(text.size()));
    for (const char c : text) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kFnvPrime;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

}  // namespace

std::uint64_t trace_config_hash(const MachineConfig& config,
                                std::uint32_t version) noexcept {
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(config.num_nodes));
  h.mix(config.page_bytes);
  for (const CacheConfig* cache : {&config.l1, &config.l2}) {
    h.mix(cache->size_bytes);
    h.mix(cache->assoc);
    h.mix(cache->block_bytes);
  }
  const LatencyConfig& lat = config.latency;
  h.mix(lat.l1_access);
  h.mix(lat.l2_access);
  h.mix(lat.l2_readout);
  h.mix(lat.controller);
  h.mix(lat.memory);
  h.mix(lat.hop);
  h.mix(lat.fill);
  h.mix(lat.link_occupancy);
  h.mix(config.word_bytes);
  h.mix(static_cast<std::uint64_t>(config.consistency));
  h.mix(config.write_buffer_depth);
  h.mix(static_cast<std::uint64_t>(config.topology));
  if (version >= 1) {
    // Schema 1 (the interconnect seam): the transport changes every
    // issue-time the per-record gaps were measured against, so it is as
    // capture-binding as topology.
    h.mix(static_cast<std::uint64_t>(config.interconnect));
    h.mix(static_cast<std::uint64_t>(config.bus_arbitration));
  }
  return h.value();
}

std::string format_config_hash(std::uint64_t hash) {
  char buffer[2 + 16 + 1];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

bool parse_config_hash(std::string_view text, std::uint64_t* out) noexcept {
  if (text.size() >= 2 && text[0] == '0' &&
      (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

std::uint64_t sweep_config_hash(
    const MachineConfig& config, std::string_view workload,
    const std::vector<std::pair<std::string, std::string>>& params,
    std::uint64_t seed) noexcept {
  Fnv1a h;
  h.mix(std::uint64_t{kSweepConfigHashVersion});
  // The protocol-insensitive machine fields, exactly as a trace capture
  // would hash them (node count, caches, latencies, consistency,
  // topology, transport).
  h.mix(trace_config_hash(config));
  // The axes trace_config_hash deliberately leaves out: the protocol and
  // its behavioural knobs, the directory organisation and its knobs.
  const ProtocolConfig& p = config.protocol;
  h.mix(static_cast<std::uint64_t>(p.kind));
  h.mix(static_cast<std::uint64_t>(p.default_tagged));
  h.mix(p.tag_hysteresis);
  h.mix(p.detag_hysteresis);
  h.mix(static_cast<std::uint64_t>(p.keep_tag_on_lone_write));
  h.mix(static_cast<std::uint64_t>(p.ad_detag_on_replacement));
  h.mix(static_cast<std::uint64_t>(config.directory_scheme));
  h.mix(config.directory_pointers);
  h.mix(config.directory_region);
  h.mix(config.directory_entries);
  h.mix(static_cast<std::uint64_t>(config.classify_false_sharing));
  // What ran on the machine: workload, parameter overrides (in the
  // caller-supplied order — the sweep generator emits them sorted), seed.
  h.mix(workload);
  h.mix(static_cast<std::uint64_t>(params.size()));
  for (const auto& [key, value] : params) {
    h.mix(key);
    h.mix(value);
  }
  h.mix(seed);
  return h.value();
}

}  // namespace lssim
