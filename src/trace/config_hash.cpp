#include "trace/config_hash.hpp"

#include <cstdio>

namespace lssim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

class Fnv1a {
 public:
  void mix(std::uint64_t value) noexcept {
    // Hash all 8 bytes explicitly so the result is independent of host
    // endianness and of the caller's integer width.
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xff;
      hash_ *= kFnvPrime;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

}  // namespace

std::uint64_t trace_config_hash(const MachineConfig& config,
                                std::uint32_t version) noexcept {
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(config.num_nodes));
  h.mix(config.page_bytes);
  for (const CacheConfig* cache : {&config.l1, &config.l2}) {
    h.mix(cache->size_bytes);
    h.mix(cache->assoc);
    h.mix(cache->block_bytes);
  }
  const LatencyConfig& lat = config.latency;
  h.mix(lat.l1_access);
  h.mix(lat.l2_access);
  h.mix(lat.l2_readout);
  h.mix(lat.controller);
  h.mix(lat.memory);
  h.mix(lat.hop);
  h.mix(lat.fill);
  h.mix(lat.link_occupancy);
  h.mix(config.word_bytes);
  h.mix(static_cast<std::uint64_t>(config.consistency));
  h.mix(config.write_buffer_depth);
  h.mix(static_cast<std::uint64_t>(config.topology));
  if (version >= 1) {
    // Schema 1 (the interconnect seam): the transport changes every
    // issue-time the per-record gaps were measured against, so it is as
    // capture-binding as topology.
    h.mix(static_cast<std::uint64_t>(config.interconnect));
    h.mix(static_cast<std::uint64_t>(config.bus_arbitration));
  }
  return h.value();
}

std::string format_config_hash(std::uint64_t hash) {
  char buffer[2 + 16 + 1];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

}  // namespace lssim
