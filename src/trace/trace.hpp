// Access-trace capture and replay.
//
// The paper's methodology is execution-driven, but trace-driven replay is
// the standard way to (a) archive a workload's access stream, (b) rerun
// it against many protocol/cache configurations quickly, and (c) debug
// protocol behaviour on a fixed input. A TraceRecorder tees every access
// a System executes into an in-memory trace (optionally saved to a
// compact binary file); replay_trace() drives a fresh MemorySystem with
// it. Replay is timing-faithful in program order per processor but, by
// construction, cannot model timing feedback (a stalled lock acquire
// still spins the recorded number of times) — the classic trace-driven
// limitation the paper's execution-driven setup avoids. Replay is
// therefore used for protocol state exploration and regression tests,
// not for the headline figures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "sim/types.hpp"

namespace lssim {

/// One recorded access. 24 bytes; streams compress well.
struct TraceRecord {
  Addr addr = 0;
  Cycles issue_gap = 0;  ///< Cycles of compute since the previous access.
  std::uint8_t node = 0;
  std::uint8_t op = 0;    ///< MemOpKind.
  std::uint8_t size = 4;
  std::uint8_t tag = 0;   ///< StreamTag.

  [[nodiscard]] bool operator==(const TraceRecord&) const = default;
};

class Trace {
 public:
  void append(const TraceRecord& record) { records_.push_back(record); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Binary serialization (little-endian, versioned header).
  void save(std::ostream& os) const;
  [[nodiscard]] static Trace load(std::istream& is);

  [[nodiscard]] bool operator==(const Trace&) const = default;

 private:
  std::vector<TraceRecord> records_;
};

/// Statistics from replaying a trace.
struct ReplayResult {
  Cycles total_cycles = 0;       ///< Sum over processors of local time.
  std::uint64_t accesses = 0;
};

/// Replays `trace` against a fresh MemorySystem built from `config`.
/// Per-processor program order is preserved; accesses are interleaved by
/// per-processor virtual time exactly like the live scheduler.
ReplayResult replay_trace(const Trace& trace, const MachineConfig& config,
                          Stats& stats);

}  // namespace lssim
