// Access-trace capture and replay.
//
// The paper's methodology is execution-driven, but trace-driven replay is
// the standard way to (a) archive a workload's access stream, (b) rerun
// it against many protocol/cache configurations quickly, and (c) debug
// protocol behaviour on a fixed input. A TraceRecorder tees every access
// a System executes into an in-memory trace (optionally saved to a
// compact binary file); replay_trace() drives a fresh MemorySystem with
// it, and trace/replay_compare.hpp builds the capture-once/replay-many
// protocol-comparison engine on top. Replay is timing-faithful in
// program order per processor but, by construction, cannot model timing
// feedback (a stalled lock acquire still spins the recorded number of
// times) — the classic trace-driven limitation the paper's
// execution-driven setup avoids. Replay is therefore used for protocol
// sweeps, state exploration and regression tests, not for the headline
// figures (see docs/PERFORMANCE.md "Capture once, replay many").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "sim/types.hpp"
#include "trace/config_hash.hpp"

namespace lssim {

/// One recorded access. Version-2 records carry the full AccessRequest
/// payload (store value, CAS expected value, access-site id) so a replay
/// reproduces memory values and ILS predictor training exactly, and a
/// 16-bit node id so machines beyond 255 nodes are representable.
struct TraceRecord {
  Addr addr = 0;
  Cycles issue_gap = 0;  ///< Cycles of compute since the previous access.
  std::uint64_t wdata = 0;     ///< Store value / addend / CAS desired.
  std::uint64_t expected = 0;  ///< CAS expected value.
  std::uint32_t site = 0;      ///< Access-site id (ILS predictor input).
  NodeId node = 0;
  std::uint8_t op = 0;    ///< MemOpKind.
  std::uint8_t size = 4;
  std::uint8_t tag = 0;   ///< StreamTag.

  [[nodiscard]] bool operator==(const TraceRecord&) const = default;
};

/// Capture provenance stored in the version-2 file header.
struct TraceMeta {
  /// trace_config_hash() of the capture machine's protocol-insensitive
  /// configuration. 0 = unknown (a version-1 file or a hand-built
  /// trace): compatibility is not checked.
  std::uint64_t config_hash = 0;
  /// Config-hash schema the hash was computed under (the format's minor
  /// version; see trace/config_hash.hpp). Files older than v2.1 load as
  /// 0 — the pre-interconnect-seam schema, whose captures could only
  /// have run on the directory network and therefore only replay there.
  std::uint32_t hash_version = kTraceConfigHashVersion;
  std::uint64_t seed = 0;
  std::string workload;  ///< Informational; empty when unknown.
  /// Per-node compute cycles after the node's last access completed
  /// (e.g. a trailing proc.compute()). Without these, replay would
  /// under-account busy time and exec_time for workloads that end on
  /// compute. Empty = all zero.
  std::vector<Cycles> final_gaps;

  [[nodiscard]] bool operator==(const TraceMeta&) const = default;
};

class Trace {
 public:
  void append(const TraceRecord& record) { records_.push_back(record); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  [[nodiscard]] TraceMeta& meta() noexcept { return meta_; }
  [[nodiscard]] const TraceMeta& meta() const noexcept { return meta_; }

  /// Binary serialization (little-endian, versioned header). save()
  /// always writes the current version (v2.1: the v2 layout plus the
  /// config-hash schema version); load() additionally accepts plain v2
  /// files (hash_version loads as 0) and version-1 files (whose records
  /// carry no data payloads — their wdata loads as the historical
  /// placeholder value 1 — and no metadata, so config compatibility is
  /// unchecked).
  void save(std::ostream& os) const;
  [[nodiscard]] static Trace load(std::istream& is);

  [[nodiscard]] bool operator==(const Trace&) const = default;

 private:
  std::vector<TraceRecord> records_;
  TraceMeta meta_;
};

/// Statistics from replaying a trace.
struct ReplayResult {
  Cycles total_cycles = 0;       ///< Sum over processors of local time.
  std::uint64_t accesses = 0;
};

/// Replays `trace` against a fresh MemorySystem built from `config`.
/// Per-processor program order is preserved; accesses are interleaved by
/// per-processor virtual time exactly like the live scheduler. Thin
/// wrapper over ReplayCompareEngine (trace/replay_compare.hpp), kept for
/// single-configuration replays; throws TraceConfigMismatch when the
/// trace records a config hash incompatible with `config`.
ReplayResult replay_trace(const Trace& trace, const MachineConfig& config,
                          Stats& stats);

}  // namespace lssim
