// Capture-once / replay-many protocol comparison.
//
// Every execution-driven protocol comparison pays the full workload cost
// (coroutine frames, workload arithmetic, RNG, heap data movement) once
// per protocol x directory cell, even though — for a fixed machine
// timing model — the *access stream* those runs consume is the same.
// This engine separates the two: capture_trace() executes the workload
// exactly once, recording the resolved access stream plus per-node
// trailing-compute gaps; ReplayCompareEngine then drives any number of
// CoherencePolicy x DirectoryPolicy combinations from that one in-memory
// Trace, reproducing the live scheduler's interleaving and time
// accounting cycle-for-cycle.
//
// Validity: replay is exact (bit-identical RunResult stats) whenever the
// workload's access stream does not depend on protocol-induced timing —
// same-protocol replays always agree; cross-protocol replays agree for
// feedback-insensitive workloads (no spin loops, no timing-dependent
// control flow). Workloads that spin (locks, barriers) replay the
// *recorded* spin count, so cross-protocol replays legitimately diverge
// from execution; compare_replay() makes that divergence explicit
// instead of silent. Headline figures stay execution-driven (see
// docs/PERFORMANCE.md "Capture once, replay many").
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "trace/trace.hpp"
#include "workloads/harness.hpp"

namespace lssim {

/// A recorded trace plus the ground-truth result of the run it was
/// recorded from.
struct CapturedTrace {
  Trace trace;
  RunResult executed;
};

/// Runs `build` once under `config` (seed as in run_experiment) with a
/// TraceRecorder attached, returning the trace — metadata filled in:
/// config hash, seed, per-node final compute gaps — and the executed
/// run's collected result. Throws std::invalid_argument for machines
/// whose access streams cannot be replayed (processor consistency:
/// buffered stores break the per-node completion-time gap encoding) and
/// std::runtime_error when the run hits the max_cycles watchdog (a
/// truncated stream must not masquerade as the workload).
[[nodiscard]] CapturedTrace capture_trace(const MachineConfig& config,
                                          const WorkloadBuilder& build,
                                          std::uint64_t seed = 1,
                                          const std::string& workload = "");

/// Thrown when a trace's recorded machine-config hash does not match the
/// machine it is being replayed on; what() lists both hashes.
class TraceConfigMismatch : public std::runtime_error {
 public:
  TraceConfigMismatch(std::uint64_t trace_hash, std::uint64_t machine_hash);

  std::uint64_t trace_hash;
  std::uint64_t machine_hash;
};

/// Replays one captured Trace against many protocol / directory
/// combinations. The trace (and the per-node program-order index built
/// at construction) is shared read-only across replays, so
/// replay_matrix() can fan cells out across host threads with zero
/// workload re-execution — each cell builds only its own MemorySystem
/// and Stats, per the executor's ownership rule.
///
/// The referenced Trace must outlive the engine.
class ReplayCompareEngine {
 public:
  /// `base` supplies the machine configuration every replay runs under
  /// (protocol/directory fields overridden per cell). Throws
  /// TraceConfigMismatch when the trace carries a config hash and it
  /// does not match `base`; throws std::out_of_range when a record
  /// names a node outside the machine and std::invalid_argument for
  /// processor-consistency machines (same limitation as capture).
  ReplayCompareEngine(const Trace& trace, const MachineConfig& base);

  /// Replays under the base config with `protocol` (and optionally
  /// `directory`) substituted.
  [[nodiscard]] RunResult replay(ProtocolKind protocol) const;
  [[nodiscard]] RunResult replay(ProtocolKind protocol,
                                 DirectoryKind directory) const;

  /// Replays under an explicit configuration — ablation knobs included.
  /// `config` must agree with the trace on the protocol-insensitive
  /// fields (TraceConfigMismatch otherwise).
  [[nodiscard]] RunResult replay_config(const MachineConfig& config) const;

  /// The full protocols x directories matrix, protocol-major (the
  /// driver's run order), fanned out across up to `jobs` host threads
  /// (<= 0 = all cores). Results are index-ordered: identical to a
  /// serial sweep for any jobs value.
  [[nodiscard]] std::vector<RunResult> replay_matrix(
      std::span<const ProtocolKind> protocols,
      std::span<const DirectoryKind> directories, int jobs = 1) const;

  /// Low-level single replay: accumulates into the caller's Stats and
  /// (optionally) reports the summed per-node completion clocks —
  /// replay_trace()'s historical total_cycles. Used by that wrapper;
  /// prefer replay()/replay_config().
  RunResult replay_collect(const MachineConfig& config, Stats& stats,
                           Cycles* total_cycles = nullptr) const;

  [[nodiscard]] const MachineConfig& base_config() const noexcept {
    return base_;
  }
  [[nodiscard]] const Trace& trace() const noexcept { return *trace_; }

 private:
  /// One pre-decoded access: the fields replay actually consumes, packed
  /// to 24 bytes so a multi-million-access stream walks the host memory
  /// system gently. Store values (wdata / expected) are omitted on
  /// purpose: replay runs the memory system in lean mode (no simulated
  /// data movement), so only the address, operation, stream tag, access
  /// size (classifier word masks) and site (ILS) matter — plus the
  /// compute gap separating the access from the node's previous
  /// completion.
  struct DecodedAccess {
    Addr addr = 0;
    Cycles gap = 0;
    std::uint32_t site = 0;
    MemOpKind op = MemOpKind::kRead;
    StreamTag tag = StreamTag::kApp;
    std::uint8_t size = 0;
  };

  const Trace* trace_;
  MachineConfig base_;
  /// Per-node program-order access streams — precomputed once, shared
  /// read-only by every replay.
  std::vector<std::vector<DecodedAccess>> streams_;
  /// Block populations observed by earlier replays of this trace: the
  /// next replay pre-sizes its directory and oracle tables to skip the
  /// grow-rehash ramp (a replay-many advantage execution can never have
  /// — a live run discovers its working set as it goes). Capacity is
  /// unobservable for the oracle always, and for the directory under the
  /// full-map organisation (no evictions); sparse-family organisations
  /// pick eviction victims by probe order, so the directory hint is
  /// applied only to full-map machines. Relaxed atomics: replay_matrix
  /// runs cells concurrently and any published value is a valid hint.
  mutable std::atomic<std::size_t> dir_population_hint_{0};
  mutable std::atomic<std::size_t> oracle_population_hint_{0};
};

/// Field-by-field comparison of an executed run against its replay: one
/// human-readable message per differing stat ("exec_cycles: executed
/// 1234, replayed 1200"), empty when the runs agree. Covers the cycle
/// accounting (exec_cycles, busy, read/write stall), access and miss
/// counters, traffic, and the protocol's tagging behaviour
/// (blocks_tagged / detagged, eliminated acquisitions) — the stats the
/// cross-check mode asserts bit-identical on feedback-insensitive runs.
[[nodiscard]] std::vector<std::string> compare_replay(
    const RunResult& executed, const RunResult& replayed);

}  // namespace lssim
