// TraceRecorder: tees a System's executed accesses into a Trace.
//
// Usage:
//   System sys(cfg);
//   Trace trace;
//   TraceRecorder recorder(sys, trace);
//   build_workload(sys, ...);
//   sys.run();                 // trace now holds the full access stream
#pragma once

#include <vector>

#include "machine/system.hpp"
#include "trace/trace.hpp"

namespace lssim {

class TraceRecorder {
 public:
  TraceRecorder(System& sys, Trace& trace)
      : trace_(trace),
        last_completion_(static_cast<std::size_t>(sys.num_procs()), 0) {
    sys.set_access_observer([this](NodeId node, const AccessRequest& req,
                                   Cycles issue, Cycles latency) {
      TraceRecord record;
      record.addr = req.addr;
      record.issue_gap = issue - last_completion_[node];
      record.node = node;
      record.op = static_cast<std::uint8_t>(req.op);
      record.size = static_cast<std::uint8_t>(req.size);
      record.tag = static_cast<std::uint8_t>(req.tag);
      trace_.append(record);
      last_completion_[node] = issue + latency;
    });
  }

 private:
  Trace& trace_;
  std::vector<Cycles> last_completion_;
};

}  // namespace lssim
