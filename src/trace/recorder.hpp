// TraceRecorder: tees a System's executed accesses into a Trace.
//
// Usage:
//   System sys(cfg);
//   Trace trace;
//   TraceRecorder recorder(sys, trace);
//   build_workload(sys, ...);
//   sys.run();                 // trace now holds the full access stream
//   recorder.finish(sys);      // record trailing compute per node
//
// The recorder registers through System::add_access_observer, so it
// COMPOSES with other observers (telemetry, tests) instead of replacing
// them — attaching a second observer after the recorder must not drop
// records (regression-tested in tests/trace/trace_test.cpp).
#pragma once

#include <stdexcept>
#include <vector>

#include "machine/system.hpp"
#include "trace/trace.hpp"

namespace lssim {

class TraceRecorder {
 public:
  TraceRecorder(System& sys, Trace& trace)
      : trace_(trace),
        last_completion_(static_cast<std::size_t>(sys.num_procs()), 0) {
    sys.add_access_observer([this](NodeId node, const AccessRequest& req,
                                   Cycles issue, Cycles latency) {
      // last_completion_ was sized at construction; a record for a node
      // beyond it means the recorder was attached to a different System
      // than the one running.
      if (node >= last_completion_.size()) {
        throw std::logic_error(
            "TraceRecorder: access from a node outside the System the "
            "recorder was constructed for");
      }
      if (issue < last_completion_[node]) {
        // Gaps are unsigned compute times; a completion after the next
        // issue (processor-consistency buffered stores) cannot be
        // encoded. capture_trace() rejects PC up front; this guards
        // direct TraceRecorder use.
        throw std::logic_error(
            "TraceRecorder: access issued before the previous one "
            "completed (non-SC machine?)");
      }
      TraceRecord record;
      record.addr = req.addr;
      record.issue_gap = issue - last_completion_[node];
      record.wdata = req.wdata;
      record.expected = req.expected;
      record.site = req.site;
      record.node = node;
      record.op = static_cast<std::uint8_t>(req.op);
      record.size = static_cast<std::uint8_t>(req.size);
      record.tag = static_cast<std::uint8_t>(req.tag);
      trace_.append(record);
      last_completion_[node] = issue + latency;
    });
  }

  /// Call after sys.run(): stores each node's trailing compute (local
  /// time beyond its last access completion) in the trace metadata, so
  /// replay accounts workloads that end on compute() correctly.
  void finish(System& sys) {
    auto& gaps = trace_.meta().final_gaps;
    gaps.assign(last_completion_.size(), 0);
    for (std::size_t n = 0; n < last_completion_.size(); ++n) {
      const Cycles end = sys.proc(static_cast<NodeId>(n)).time();
      gaps[n] = end >= last_completion_[n] ? end - last_completion_[n] : 0;
    }
  }

 private:
  Trace& trace_;
  std::vector<Cycles> last_completion_;
};

}  // namespace lssim
