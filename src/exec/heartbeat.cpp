#include "exec/heartbeat.hpp"

#include <utility>

#include "telemetry/json.hpp"

namespace lssim {

HeartbeatEmitter::HeartbeatEmitter(std::ostream* os, double interval_seconds,
                                   std::uint64_t total_units,
                                   std::string unit_name)
    : os_(os),
      interval_seconds_(interval_seconds),
      total_units_(total_units),
      unit_name_(std::move(unit_name)),
      start_(std::chrono::steady_clock::now()),
      last_emit_(start_) {}

void HeartbeatEmitter::unit_done(std::uint64_t accesses) {
  if (os_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(mu_);
  done_ += 1;
  accesses_ += accesses;
  const auto now = std::chrono::steady_clock::now();
  const std::chrono::duration<double> since_last = now - last_emit_;
  if (since_last.count() >= interval_seconds_) {
    last_emit_ = now;
    emit_locked("heartbeat");
  }
}

void HeartbeatEmitter::add_phase_seconds(const std::string& phase,
                                         double seconds) {
  if (os_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(mu_);
  phase_seconds_[phase] += seconds;
}

void HeartbeatEmitter::finish() {
  if (os_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  emit_locked("final");
}

void HeartbeatEmitter::emit_locked(const char* type) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  const double secs = elapsed.count();
  Json::Object o;
  o.emplace_back("type", Json(type));
  o.emplace_back("unit", Json(unit_name_));
  o.emplace_back("done", Json(done_));
  if (total_units_ > 0) {
    o.emplace_back("total", Json(total_units_));
  }
  o.emplace_back("accesses", Json(accesses_));
  o.emplace_back("elapsed_seconds", Json(secs));
  o.emplace_back("accesses_per_sec",
                 Json(secs > 0.0 ? static_cast<double>(accesses_) / secs
                                 : 0.0));
  if (!phase_seconds_.empty()) {
    Json::Object phases;
    for (const auto& [name, seconds] : phase_seconds_) {
      phases.emplace_back(name, Json(seconds));
    }
    o.emplace_back("phases", Json(std::move(phases)));
  }
  Json(std::move(o)).write(*os_, 0);
  *os_ << '\n' << std::flush;
}

}  // namespace lssim
