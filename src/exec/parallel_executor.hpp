// Parallel run executor: fans independent, deterministic simulations out
// across host threads.
//
// OWNERSHIP RULE (the thread-safety contract for everything above this
// seam): each task must build its OWN System — and with it its own
// MetricsRegistry, Stats, coherence trace, event log and workload RNG
// state — and may only write to the result slot owned by its index.
// Nothing in the simulator is shared between concurrently running
// Systems: the protocol registry and name tables are immutable, and the
// library keeps no mutable globals (audited for PR 3; grep for non-const
// statics before adding one). Task inputs (MachineConfig, the
// WorkloadBuilder functor) are shared read-only across tasks, so builders
// must not mutate captured state when invoked.
//
// Determinism: results are keyed by task index, never by completion
// order, so a parallel sweep yields byte-identical reports, manifests
// and traces to a serial one (wall-clock fields excepted).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace lssim {

/// Worker count for `jobs <= 0`: hardware_concurrency, at least 1.
[[nodiscard]] int default_jobs() noexcept;

/// Runs `fn(0) .. fn(count-1)`, each exactly once, across up to `jobs`
/// worker threads (`jobs <= 0` means default_jobs()). Blocks until every
/// task finished. Tasks are handed out dynamically (an atomic cursor),
/// so long runs don't serialise behind a bad static partition. With
/// `jobs == 1` or `count <= 1` everything runs inline on the caller's
/// thread. The first exception thrown by any task is rethrown here once
/// all workers have stopped.
void parallel_for_index(std::size_t count, int jobs,
                        const std::function<void(std::size_t)>& fn);

/// Maps `fn` over 0..count-1 into an index-ordered result vector.
/// `T` must be default-constructible and movable.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(std::size_t count, int jobs,
                                          Fn&& fn) {
  std::vector<T> results(count);
  parallel_for_index(count, jobs,
                     [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace lssim
