#include "exec/parallel_executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace lssim {

int default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for_index(std::size_t count, int jobs,
                        const std::function<void(std::size_t)>& fn) {
  if (jobs <= 0) {
    jobs = default_jobs();
  }
  if (count == 0) {
    return;
  }
  if (jobs == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count);
  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Drain the remaining indices so other workers stop soon; the
        // tasks already running are allowed to finish.
        cursor.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    threads.emplace_back(worker);
  }
  worker();  // The calling thread participates.
  for (std::thread& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace lssim
