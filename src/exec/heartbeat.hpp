// Heartbeat/progress reporting for long runs: periodic JSONL lines with
// units completed, simulated accesses/sec and per-phase wall-time
// attribution, so a multi-hour sweep or fuzz campaign is observable from
// the outside (tail the file) instead of a silent process.
//
// Design notes:
//   * No background thread — emission piggybacks on unit completion
//     (`unit_done`), which long runs hit frequently. A mutex makes the
//     emitter safe to share across the parallel executor's workers.
//   * Wall-clock timestamps make heartbeat output explicitly
//     non-deterministic; it is an observability stream, never an input
//     to results, and it is off by default (null emitter pointer).
//   * `interval_seconds == 0` emits on every unit — used by tests and
//     the CI smoke step to make output deterministic in count.
// Schema: docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace lssim {

class HeartbeatEmitter {
 public:
  /// `os` receives one compact JSON object per line. `total_units` is the
  /// expected unit count (0 = unknown, omitted from output). `unit_name`
  /// names the unit in the output ("run", "trace", ...).
  HeartbeatEmitter(std::ostream* os, double interval_seconds,
                   std::uint64_t total_units, std::string unit_name);

  HeartbeatEmitter(const HeartbeatEmitter&) = delete;
  HeartbeatEmitter& operator=(const HeartbeatEmitter&) = delete;

  /// One unit of work finished, contributing `accesses` simulated
  /// accesses. Emits a heartbeat line when the interval has elapsed.
  void unit_done(std::uint64_t accesses);

  /// Attributes `seconds` of wall time to `phase` (accumulated; reported
  /// in every subsequent line). Usually driven via PhaseTimer.
  void add_phase_seconds(const std::string& phase, double seconds);

  /// Emits the final line (`"type":"final"`) with the totals. Idempotent.
  void finish();

 private:
  void emit_locked(const char* type);

  std::ostream* os_;
  double interval_seconds_;
  std::uint64_t total_units_;
  std::string unit_name_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_emit_;

  std::mutex mu_;
  std::uint64_t done_ = 0;
  std::uint64_t accesses_ = 0;
  std::map<std::string, double> phase_seconds_;
  bool finished_ = false;
};

/// RAII phase timer: attributes its scope's wall time to `phase` on the
/// (possibly null) emitter. Null emitter = zero-cost no-op.
class PhaseTimer {
 public:
  PhaseTimer(HeartbeatEmitter* hb, std::string phase)
      : hb_(hb), phase_(std::move(phase)) {
    if (hb_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() {
    if (hb_ != nullptr) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      hb_->add_phase_seconds(phase_, elapsed.count());
    }
  }

 private:
  HeartbeatEmitter* hb_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lssim
