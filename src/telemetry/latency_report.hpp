// Ownership-latency report (--latency-out): turns the engine's
// per-transaction `ownership.latency{op=...}` histograms into a compact
// JSON document with p50/p95/p99 percentiles per protocol and access
// type, so "ownership overhead reduced" is a measured distribution
// rather than an inference from figure deltas. The same per-run section
// is embedded into the manifest (a pure schema addition — version
// unchanged; see telemetry/manifest.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"

namespace lssim {

/// The access types the engine profiles, matching the `op` label values
/// of the `ownership.latency` histograms it registers.
inline constexpr const char* kOwnershipLatencyOps[] = {"read-miss",
                                                       "write-miss",
                                                       "upgrade"};

/// The `ownership_latency` section for one run: an object keyed by op
/// ("read-miss"/"write-miss"/"upgrade"), each with samples, sum, mean,
/// p50/p95/p99 and the trimmed bucket counts. Returns a null Json when
/// the snapshot carries no ownership.latency histograms (metrics off or
/// an engine predating them).
[[nodiscard]] Json ownership_latency_to_json(const MetricsSnapshot& snapshot);

/// One protocol run's input to the report.
struct LatencyReportRun {
  std::string protocol;
  const MetricsSnapshot* metrics = nullptr;
};

/// The full --latency-out document: schema_version, generator, workload,
/// seed and one entry per run. Schema: docs/OBSERVABILITY.md.
[[nodiscard]] Json latency_report_to_json(
    const std::string& workload, std::uint64_t seed,
    const std::vector<LatencyReportRun>& runs);

}  // namespace lssim
