#include "telemetry/registry.hpp"

#include <cassert>
#include <ostream>
#include <stdexcept>
#include <string>

namespace lssim {

std::string MetricDesc::full_name() const {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

std::uint32_t MetricsRegistry::register_metric(std::string name,
                                               MetricLabels labels,
                                               MetricKind kind) {
  MetricDesc desc{std::move(name), kind, std::move(labels), 0};
  const std::string full = desc.full_name();
  if (const auto it = by_name_.find(full); it != by_name_.end()) {
    assert(descs_[it->second].kind == kind &&
           "metric re-registered with a different kind");
    return it->second;
  }
  switch (kind) {
    case MetricKind::kCounter:
      desc.slot = static_cast<std::uint32_t>(counters_.size());
      counters_.push_back(0);
      break;
    case MetricKind::kGauge:
      desc.slot = static_cast<std::uint32_t>(gauges_.size());
      gauges_.push_back(0);
      break;
    case MetricKind::kHistogram:
      desc.slot = static_cast<std::uint32_t>(histograms_.size());
      histograms_.emplace_back();
      break;
  }
  const auto index = static_cast<std::uint32_t>(descs_.size());
  descs_.push_back(std::move(desc));
  by_name_.emplace(full, index);
  return index;
}

CounterHandle MetricsRegistry::counter(std::string name,
                                       MetricLabels labels) {
  const std::uint32_t idx =
      register_metric(std::move(name), std::move(labels),
                      MetricKind::kCounter);
  return CounterHandle{descs_[idx].slot};
}

GaugeHandle MetricsRegistry::gauge(std::string name, MetricLabels labels) {
  const std::uint32_t idx = register_metric(
      std::move(name), std::move(labels), MetricKind::kGauge);
  return GaugeHandle{descs_[idx].slot};
}

HistogramHandle MetricsRegistry::histogram(std::string name,
                                           MetricLabels labels) {
  const std::uint32_t idx = register_metric(
      std::move(name), std::move(labels), MetricKind::kHistogram);
  return HistogramHandle{descs_[idx].slot};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.descs = descs_;
  snap.counters = counters_;
  snap.gauges = gauges_;
  snap.histograms = histograms_;
  return snap;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& full) const {
  for (const MetricDesc& d : descs) {
    if (d.kind == MetricKind::kCounter && d.full_name() == full) {
      return counters[d.slot];
    }
  }
  return 0;
}

std::uint64_t MetricsSnapshot::counter_total(const std::string& name) const {
  std::uint64_t sum = 0;
  for (const MetricDesc& d : descs) {
    if (d.kind == MetricKind::kCounter && d.name == name) {
      sum += counters[d.slot];
    }
  }
  return sum;
}

const HistogramData* MetricsSnapshot::histogram(
    const std::string& full) const {
  for (const MetricDesc& d : descs) {
    if (d.kind == MetricKind::kHistogram && d.full_name() == full) {
      return &histograms[d.slot];
    }
  }
  return nullptr;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& later,
                               const MetricsSnapshot& earlier) {
  // Metrics are append-only, so earlier's slots must be a prefix of
  // later's; a "later" snapshot with fewer slots is from a different
  // registry (or the arguments are swapped), and subtracting would
  // silently produce garbage deltas.
  const auto check = [](std::size_t later_n, std::size_t earlier_n,
                        const char* kind) {
    if (later_n < earlier_n) {
      throw std::invalid_argument(
          std::string("snapshot_delta: 'later' has fewer ") + kind +
          " slots (" + std::to_string(later_n) + ") than 'earlier' (" +
          std::to_string(earlier_n) +
          "); snapshots are not from the same registry in that order");
    }
  };
  check(later.counters.size(), earlier.counters.size(), "counter");
  check(later.histograms.size(), earlier.histograms.size(), "histogram");
  check(later.gauges.size(), earlier.gauges.size(), "gauge");

  MetricsSnapshot out = later;
  for (std::size_t i = 0; i < earlier.counters.size(); ++i) {
    out.counters[i] -= earlier.counters[i];
  }
  for (std::size_t i = 0; i < earlier.histograms.size(); ++i) {
    out.histograms[i] -= earlier.histograms[i];
  }
  // Gauges are instantaneous: keep the later value.
  return out;
}

Json snapshot_to_json(const MetricsSnapshot& snapshot) {
  Json::Array metrics;
  metrics.reserve(snapshot.descs.size());
  for (const MetricDesc& d : snapshot.descs) {
    Json::Object m;
    m.emplace_back("name", Json(d.name));
    m.emplace_back("kind", Json(to_string(d.kind)));
    if (!d.labels.empty()) {
      Json::Object labels;
      for (const auto& [k, v] : d.labels) labels.emplace_back(k, Json(v));
      m.emplace_back("labels", Json(std::move(labels)));
    }
    switch (d.kind) {
      case MetricKind::kCounter:
        m.emplace_back("value", Json(snapshot.counters[d.slot]));
        break;
      case MetricKind::kGauge:
        m.emplace_back("value", Json(snapshot.gauges[d.slot]));
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = snapshot.histograms[d.slot];
        m.emplace_back("samples", Json(h.samples));
        m.emplace_back("sum", Json(h.sum));
        Json::Array buckets;
        buckets.reserve(HistogramData::kBuckets);
        int top = HistogramData::kBuckets;
        while (top > 0 && h.counts[static_cast<std::size_t>(top - 1)] == 0) {
          --top;  // Trim trailing empty buckets.
        }
        for (int b = 0; b < top; ++b) {
          buckets.emplace_back(h.counts[static_cast<std::size_t>(b)]);
        }
        m.emplace_back("buckets", Json(std::move(buckets)));
        break;
      }
    }
    metrics.emplace_back(std::move(m));
  }
  return Json(std::move(metrics));
}

bool snapshot_from_json(const Json& json, MetricsSnapshot* out,
                        std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!json.is_array()) return fail("metrics snapshot must be an array");
  *out = MetricsSnapshot{};
  for (const Json& m : json.as_array()) {
    if (!m.is_object()) return fail("metric entry must be an object");
    const Json* name = m.find("name");
    const Json* kind = m.find("kind");
    if (name == nullptr || !name->is_string() || kind == nullptr ||
        !kind->is_string()) {
      return fail("metric entry needs string 'name' and 'kind'");
    }
    MetricDesc desc;
    desc.name = name->as_string();
    if (const Json* labels = m.find("labels"); labels != nullptr) {
      if (!labels->is_object()) return fail("metric labels must be an object");
      for (const auto& [k, v] : labels->as_object()) {
        if (!v.is_string()) return fail("label values must be strings");
        desc.labels.emplace_back(k, v.as_string());
      }
    }
    const std::string& kind_name = kind->as_string();
    if (kind_name == "counter") {
      const Json* value = m.find("value");
      if (value == nullptr || !value->is_number()) {
        return fail("counter needs a numeric 'value'");
      }
      desc.kind = MetricKind::kCounter;
      desc.slot = static_cast<std::uint32_t>(out->counters.size());
      out->counters.push_back(value->as_uint());
    } else if (kind_name == "gauge") {
      const Json* value = m.find("value");
      if (value == nullptr || !value->is_number()) {
        return fail("gauge needs a numeric 'value'");
      }
      desc.kind = MetricKind::kGauge;
      desc.slot = static_cast<std::uint32_t>(out->gauges.size());
      out->gauges.push_back(static_cast<std::int64_t>(value->as_double()));
    } else if (kind_name == "histogram") {
      const Json* samples = m.find("samples");
      const Json* sum = m.find("sum");
      const Json* buckets = m.find("buckets");
      if (samples == nullptr || !samples->is_number() || sum == nullptr ||
          !sum->is_number() || buckets == nullptr || !buckets->is_array() ||
          buckets->as_array().size() >
              static_cast<std::size_t>(HistogramData::kBuckets)) {
        return fail("histogram needs 'samples', 'sum' and 'buckets'");
      }
      HistogramData h;
      h.samples = samples->as_uint();
      h.sum = sum->as_uint();
      const Json::Array& counts = buckets->as_array();
      for (std::size_t b = 0; b < counts.size(); ++b) {
        if (!counts[b].is_number()) return fail("histogram bucket not numeric");
        h.counts[b] = counts[b].as_uint();
      }
      desc.kind = MetricKind::kHistogram;
      desc.slot = static_cast<std::uint32_t>(out->histograms.size());
      out->histograms.push_back(h);
    } else {
      return fail("unknown metric kind");
    }
    out->descs.push_back(std::move(desc));
  }
  return true;
}

void print_metrics(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const MetricDesc& d : snapshot.descs) {
    os << d.full_name() << ' ';
    switch (d.kind) {
      case MetricKind::kCounter:
        os << snapshot.counters[d.slot];
        break;
      case MetricKind::kGauge:
        os << snapshot.gauges[d.slot];
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = snapshot.histograms[d.slot];
        os << "samples=" << h.samples << " mean=" << h.mean()
           << " p99<=" << h.percentile(0.99);
        break;
      }
    }
    os << '\n';
  }
}

}  // namespace lssim
