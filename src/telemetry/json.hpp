// Minimal JSON document model for the telemetry layer: the metrics
// snapshot, the Perfetto trace export and the run manifest all emit JSON,
// and the tests (and `--manifest-out` consumers) need to parse it back.
//
// Deliberately small: a value variant, a writer and a recursive-descent
// parser. Unsigned integers round-trip exactly (counters can exceed the
// 2^53 double range); everything else is stored as double. No external
// dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lssim {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kUint,    ///< Exact unsigned integer (counters, cycles).
    kNumber,  ///< Any other number, stored as double.
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Json>;
  /// Insertion-ordered object (stable output, preserves schema ordering).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(std::uint64_t value) : type_(Type::kUint), uint_(value) {}
  Json(std::uint32_t value) : Json(static_cast<std::uint64_t>(value)) {}
  Json(int value)
      : type_(value < 0 ? Type::kNumber : Type::kUint),
        uint_(value < 0 ? 0 : static_cast<std::uint64_t>(value)),
        num_(static_cast<double>(value)) {}
  Json(std::int64_t value)
      : type_(value < 0 ? Type::kNumber : Type::kUint),
        uint_(value < 0 ? 0 : static_cast<std::uint64_t>(value)),
        num_(static_cast<double>(value)) {}
  Json(double value) : type_(Type::kNumber), num_(value) {}
  Json(const char* value) : type_(Type::kString), str_(value) {}
  Json(std::string value) : type_(Type::kString), str_(std::move(value)) {}
  Json(Array value) : type_(Type::kArray), arr_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), obj_(std::move(value)) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kUint || type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] std::uint64_t as_uint() const noexcept {
    return type_ == Type::kUint ? uint_
                                : static_cast<std::uint64_t>(num_ < 0 ? 0
                                                                      : num_);
  }
  [[nodiscard]] double as_double() const noexcept {
    return type_ == Type::kUint ? static_cast<double>(uint_) : num_;
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }
  [[nodiscard]] const Array& as_array() const noexcept { return arr_; }
  [[nodiscard]] const Object& as_object() const noexcept { return obj_; }
  [[nodiscard]] Array& as_array() noexcept { return arr_; }
  [[nodiscard]] Object& as_object() noexcept { return obj_; }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : obj_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Appends a member to an object value (or turns a null into an object).
  void set(std::string key, Json value) {
    if (type_ == Type::kNull) type_ = Type::kObject;
    obj_.emplace_back(std::move(key), std::move(value));
  }

  /// Serialises to `os`. `indent` > 0 pretty-prints with that many spaces
  /// per level; 0 emits a compact single line.
  void write(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses `text`; on failure returns a null value and sets `*error` to
  /// a description with an offset. A successful parse of the literal
  /// `null` also yields a null value with `*error` left empty.
  static Json parse(std::string_view text, std::string* error);

 private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Writes `text` as a quoted JSON string with escapes to `os`.
void write_json_string(std::ostream& os, std::string_view text);

}  // namespace lssim
