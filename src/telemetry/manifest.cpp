#include "telemetry/manifest.hpp"

#include <utility>

#include "telemetry/latency_report.hpp"

namespace lssim {
namespace {

bool topology_from_string(const std::string& name, Topology* out) {
  if (name == "crossbar") {
    *out = Topology::kCrossbar;
  } else if (name == "ring") {
    *out = Topology::kRing;
  } else if (name == "mesh2d") {
    *out = Topology::kMesh2D;
  } else {
    return false;
  }
  return true;
}

bool consistency_from_string(const std::string& name, ConsistencyModel* out) {
  if (name == "SC") {
    *out = ConsistencyModel::kSc;
  } else if (name == "PC") {
    *out = ConsistencyModel::kPc;
  } else {
    return false;
  }
  return true;
}

/// Reads object member `key` as an unsigned integer into `*out`; leaves
/// `*out` untouched (schema-addition tolerance) when the member is absent.
bool read_u64(const Json& obj, const char* key, std::uint64_t* out,
              std::string* error) {
  const Json* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_number()) {
    if (error != nullptr) *error = std::string("field '") + key +
                                   "' must be a number";
    return false;
  }
  *out = v->as_uint();
  return true;
}

template <typename T>
bool read_uint_as(const Json& obj, const char* key, T* out,
                  std::string* error) {
  std::uint64_t v = *out;
  if (!read_u64(obj, key, &v, error)) return false;
  *out = static_cast<T>(v);
  return true;
}

Json cache_config_to_json(const CacheConfig& cache) {
  Json::Object o;
  o.emplace_back("size_bytes", Json(cache.size_bytes));
  o.emplace_back("assoc", Json(cache.assoc));
  o.emplace_back("block_bytes", Json(cache.block_bytes));
  return Json(std::move(o));
}

bool cache_config_from_json(const Json& json, CacheConfig* out,
                            std::string* error) {
  if (!json.is_object()) {
    if (error != nullptr) *error = "cache config must be an object";
    return false;
  }
  return read_uint_as(json, "size_bytes", &out->size_bytes, error) &&
         read_uint_as(json, "assoc", &out->assoc, error) &&
         read_uint_as(json, "block_bytes", &out->block_bytes, error);
}

Json machine_to_json(const MachineConfig& machine) {
  Json::Object o;
  o.emplace_back("protocol", Json(protocol_name(machine.protocol.kind)));
  o.emplace_back("num_nodes", Json(machine.num_nodes));
  o.emplace_back("page_bytes", Json(machine.page_bytes));
  o.emplace_back("l1", cache_config_to_json(machine.l1));
  o.emplace_back("l2", cache_config_to_json(machine.l2));
  o.emplace_back("topology", Json(to_string(machine.topology)));
  o.emplace_back("consistency", Json(to_string(machine.consistency)));
  // Schema version 3: "directory" is the registry name of the directory
  // organisation, followed by the knob relevant to it (absent knobs mean
  // "default / not applicable").
  o.emplace_back("directory", Json(directory_name(machine.directory_scheme)));
  switch (machine.directory_scheme) {
    case DirectoryKind::kFullMap:
      break;
    case DirectoryKind::kLimitedPtr:
      o.emplace_back("directory_pointers", Json(machine.directory_pointers));
      break;
    case DirectoryKind::kCoarseVector:
      o.emplace_back("directory_region", Json(machine.directory_region));
      break;
    case DirectoryKind::kSparse:
      o.emplace_back("directory_entries", Json(machine.directory_entries));
      break;
  }
  // Pure addition (schema version kept): the coherence transport, with
  // the arbitration knob only where it applies — mirroring the
  // directory-knob pattern above.
  o.emplace_back("interconnect", Json(interconnect_name(machine.interconnect)));
  if (machine.interconnect == InterconnectKind::kBus) {
    o.emplace_back("bus_arbitration",
                   Json(to_string(machine.bus_arbitration)));
  }
  o.emplace_back("classify_false_sharing",
                 Json(machine.classify_false_sharing));
  return Json(std::move(o));
}

bool machine_from_json(const Json& json, MachineConfig* out,
                       std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!json.is_object()) return fail("machine config must be an object");
  // Absent in schema-version-1 documents; parsed by registry name since 2.
  if (const Json* proto = json.find("protocol"); proto != nullptr) {
    if (!proto->is_string() ||
        !protocol_from_name(proto->as_string(), &out->protocol.kind)) {
      return fail("unknown protocol name in machine config");
    }
  }
  std::uint64_t nodes = static_cast<std::uint64_t>(out->num_nodes);
  if (!read_u64(json, "num_nodes", &nodes, error)) return false;
  out->num_nodes = static_cast<int>(nodes);
  if (!read_uint_as(json, "page_bytes", &out->page_bytes, error)) return false;
  if (const Json* l1 = json.find("l1"); l1 != nullptr) {
    if (!cache_config_from_json(*l1, &out->l1, error)) return false;
  }
  if (const Json* l2 = json.find("l2"); l2 != nullptr) {
    if (!cache_config_from_json(*l2, &out->l2, error)) return false;
  }
  if (const Json* topo = json.find("topology"); topo != nullptr) {
    if (!topo->is_string() ||
        !topology_from_string(topo->as_string(), &out->topology)) {
      return fail("unknown topology");
    }
  }
  if (const Json* cons = json.find("consistency"); cons != nullptr) {
    if (!cons->is_string() ||
        !consistency_from_string(cons->as_string(), &out->consistency)) {
      return fail("unknown consistency model");
    }
  }
  // Absent before schema version 3 (version-2 documents carried the
  // field but it was never parsed; the same names resolve either way).
  if (const Json* dir = json.find("directory"); dir != nullptr) {
    if (!dir->is_string() ||
        !directory_from_name(dir->as_string(), &out->directory_scheme)) {
      return fail("unknown directory organisation in machine config");
    }
  }
  if (!read_uint_as(json, "directory_pointers", &out->directory_pointers,
                    error) ||
      !read_uint_as(json, "directory_region", &out->directory_region,
                    error) ||
      !read_uint_as(json, "directory_entries", &out->directory_entries,
                    error)) {
    return false;
  }
  // Absent in pre-interconnect-seam documents (implies the directory
  // network).
  if (const Json* net = json.find("interconnect"); net != nullptr) {
    if (!net->is_string() ||
        !interconnect_from_name(net->as_string(), &out->interconnect)) {
      return fail("unknown interconnect in machine config");
    }
  }
  if (const Json* arb = json.find("bus_arbitration"); arb != nullptr) {
    if (!arb->is_string() ||
        !bus_arbitration_from_name(arb->as_string(),
                                   &out->bus_arbitration)) {
      return fail("unknown bus arbitration in machine config");
    }
  }
  if (const Json* fs = json.find("classify_false_sharing");
      fs != nullptr && fs->is_bool()) {
    out->classify_false_sharing = fs->as_bool();
  }
  return true;
}

}  // namespace

Json run_result_to_json(const RunResult& result) {
  Json::Object o;
  o.emplace_back("protocol", Json(to_string(result.protocol)));
  o.emplace_back("directory", Json(to_string(result.directory)));
  o.emplace_back("interconnect", Json(to_string(result.interconnect)));
  o.emplace_back("exec_cycles", Json(result.exec_time));
  Json::Object time;
  time.emplace_back("busy", Json(result.time.busy));
  time.emplace_back("read_stall", Json(result.time.read_stall));
  time.emplace_back("write_stall", Json(result.time.write_stall));
  o.emplace_back("time", Json(std::move(time)));
  Json::Object traffic;
  for (int c = 0; c < kNumMsgClasses; ++c) {
    traffic.emplace_back(to_string(static_cast<MsgClass>(c)),
                         Json(result.traffic[static_cast<std::size_t>(c)]));
  }
  traffic.emplace_back("total", Json(result.traffic_total));
  o.emplace_back("traffic", Json(std::move(traffic)));
  Json::Array home;
  for (int s = 0; s < kNumHomeStates; ++s) {
    home.emplace_back(result.read_miss_home[static_cast<std::size_t>(s)]);
  }
  o.emplace_back("read_miss_home", Json(std::move(home)));
  o.emplace_back("global_read_misses", Json(result.global_read_misses));
  o.emplace_back("global_write_actions", Json(result.global_write_actions));
  o.emplace_back("ownership_acquisitions",
                 Json(result.ownership_acquisitions));
  o.emplace_back("invalidations", Json(result.invalidations));
  o.emplace_back("single_invalidations", Json(result.single_invalidations));
  o.emplace_back("eliminated_acquisitions",
                 Json(result.eliminated_acquisitions));
  o.emplace_back("update_transactions", Json(result.update_transactions));
  o.emplace_back("updates_sent", Json(result.updates_sent));
  o.emplace_back("data_misses", Json(result.data_misses));
  o.emplace_back("coherence_misses", Json(result.coherence_misses));
  o.emplace_back("false_sharing_misses", Json(result.false_sharing_misses));
  o.emplace_back("accesses", Json(result.accesses));
  o.emplace_back("l1_hits", Json(result.l1_hits));
  o.emplace_back("l2_hits", Json(result.l2_hits));
  o.emplace_back("blocks_tagged", Json(result.blocks_tagged));
  o.emplace_back("blocks_detagged", Json(result.blocks_detagged));
  o.emplace_back("dir_entry_evictions", Json(result.dir_entry_evictions));
  // Derived ratios for human/plotting convenience; ignored on parse.
  Json::Object derived;
  derived.emplace_back("invalidations_per_write",
                       Json(result.invalidations_per_write()));
  derived.emplace_back("ls_fraction", Json(result.oracle_total.ls_fraction()));
  derived.emplace_back("migratory_fraction",
                       Json(result.oracle_total.migratory_fraction()));
  o.emplace_back("derived", Json(std::move(derived)));
  return Json(std::move(o));
}

bool run_result_from_json(const Json& json, RunResult* out,
                          std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!json.is_object()) return fail("run result must be an object");
  *out = RunResult{};
  if (const Json* proto = json.find("protocol");
      proto != nullptr && proto->is_string()) {
    if (!protocol_from_name(proto->as_string(), &out->protocol)) {
      return fail("unknown protocol name");
    }
  }
  if (const Json* dir = json.find("directory");
      dir != nullptr && dir->is_string()) {
    if (!directory_from_name(dir->as_string(), &out->directory)) {
      return fail("unknown directory organisation name");
    }
  }
  if (const Json* net = json.find("interconnect");
      net != nullptr && net->is_string()) {
    if (!interconnect_from_name(net->as_string(), &out->interconnect)) {
      return fail("unknown interconnect name");
    }
  }
  if (!read_u64(json, "exec_cycles", &out->exec_time, error)) return false;
  if (const Json* time = json.find("time"); time != nullptr) {
    if (!time->is_object()) return fail("'time' must be an object");
    if (!read_u64(*time, "busy", &out->time.busy, error) ||
        !read_u64(*time, "read_stall", &out->time.read_stall, error) ||
        !read_u64(*time, "write_stall", &out->time.write_stall, error)) {
      return false;
    }
  }
  if (const Json* traffic = json.find("traffic"); traffic != nullptr) {
    if (!traffic->is_object()) return fail("'traffic' must be an object");
    for (int c = 0; c < kNumMsgClasses; ++c) {
      if (!read_u64(*traffic, to_string(static_cast<MsgClass>(c)),
                    &out->traffic[static_cast<std::size_t>(c)], error)) {
        return false;
      }
    }
    if (!read_u64(*traffic, "total", &out->traffic_total, error)) {
      return false;
    }
  }
  if (const Json* home = json.find("read_miss_home"); home != nullptr) {
    if (!home->is_array() ||
        home->as_array().size() !=
            static_cast<std::size_t>(kNumHomeStates)) {
      return fail("'read_miss_home' must be a 4-element array");
    }
    for (int s = 0; s < kNumHomeStates; ++s) {
      const Json& v = home->as_array()[static_cast<std::size_t>(s)];
      if (!v.is_number()) return fail("'read_miss_home' entries not numeric");
      out->read_miss_home[static_cast<std::size_t>(s)] = v.as_uint();
    }
  }
  return read_u64(json, "global_read_misses", &out->global_read_misses,
                  error) &&
         read_u64(json, "global_write_actions", &out->global_write_actions,
                  error) &&
         read_u64(json, "ownership_acquisitions",
                  &out->ownership_acquisitions, error) &&
         read_u64(json, "invalidations", &out->invalidations, error) &&
         read_u64(json, "single_invalidations", &out->single_invalidations,
                  error) &&
         read_u64(json, "eliminated_acquisitions",
                  &out->eliminated_acquisitions, error) &&
         read_u64(json, "update_transactions", &out->update_transactions,
                  error) &&
         read_u64(json, "updates_sent", &out->updates_sent, error) &&
         read_u64(json, "data_misses", &out->data_misses, error) &&
         read_u64(json, "coherence_misses", &out->coherence_misses, error) &&
         read_u64(json, "false_sharing_misses", &out->false_sharing_misses,
                  error) &&
         read_u64(json, "accesses", &out->accesses, error) &&
         read_u64(json, "l1_hits", &out->l1_hits, error) &&
         read_u64(json, "l2_hits", &out->l2_hits, error) &&
         read_u64(json, "blocks_tagged", &out->blocks_tagged, error) &&
         read_u64(json, "blocks_detagged", &out->blocks_detagged, error) &&
         read_u64(json, "dir_entry_evictions", &out->dir_entry_evictions,
                  error);
}

Json manifest_to_json(const RunManifest& manifest) {
  Json::Object o;
  o.emplace_back("schema_version", Json(manifest.schema_version));
  o.emplace_back("generator", Json(manifest.generator));
  o.emplace_back("workload", Json(manifest.workload));
  o.emplace_back("seed", Json(manifest.seed));
  if (!manifest.params.empty()) {
    Json::Object params;
    for (const auto& [k, v] : manifest.params) params.emplace_back(k, Json(v));
    o.emplace_back("params", Json(std::move(params)));
  }
  o.emplace_back("machine", machine_to_json(manifest.machine));
  o.emplace_back("wall_seconds", Json(manifest.wall_seconds));
  Json::Array runs;
  for (const RunManifest::ProtocolRun& run : manifest.runs) {
    Json::Object r;
    r.emplace_back("result", run_result_to_json(run.result));
    if (!run.metrics.empty()) {
      r.emplace_back("metrics", snapshot_to_json(run.metrics));
      // Ownership-latency digest (pure addition, schema version kept;
      // consumers ignore unknown members). Null-free: only emitted when
      // the run's snapshot carries the ownership.latency histograms.
      Json latency = ownership_latency_to_json(run.metrics);
      if (!latency.is_null()) {
        r.emplace_back("ownership_latency", std::move(latency));
      }
    }
    runs.emplace_back(std::move(r));
  }
  o.emplace_back("runs", Json(std::move(runs)));
  return Json(std::move(o));
}

bool manifest_from_json(const Json& json, RunManifest* out,
                        std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!json.is_object()) return fail("manifest must be an object");
  *out = RunManifest{};
  const Json* version = json.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return fail("manifest needs a numeric 'schema_version'");
  }
  out->schema_version = static_cast<std::uint32_t>(version->as_uint());
  if (out->schema_version > kManifestSchemaVersion) {
    return fail("manifest schema_version is newer than this build");
  }
  if (const Json* gen = json.find("generator");
      gen != nullptr && gen->is_string()) {
    out->generator = gen->as_string();
  }
  if (const Json* wl = json.find("workload");
      wl != nullptr && wl->is_string()) {
    out->workload = wl->as_string();
  }
  if (!read_u64(json, "seed", &out->seed, error)) return false;
  if (const Json* params = json.find("params"); params != nullptr) {
    if (!params->is_object()) return fail("'params' must be an object");
    for (const auto& [k, v] : params->as_object()) {
      if (!v.is_string()) return fail("'params' values must be strings");
      out->params[k] = v.as_string();
    }
  }
  if (const Json* machine = json.find("machine"); machine != nullptr) {
    if (!machine_from_json(*machine, &out->machine, error)) return false;
  }
  if (const Json* wall = json.find("wall_seconds");
      wall != nullptr && wall->is_number()) {
    out->wall_seconds = wall->as_double();
  }
  const Json* runs = json.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return fail("manifest needs a 'runs' array");
  }
  for (const Json& r : runs->as_array()) {
    if (!r.is_object()) return fail("run entry must be an object");
    RunManifest::ProtocolRun run;
    const Json* result = r.find("result");
    if (result == nullptr) return fail("run entry needs a 'result'");
    if (!run_result_from_json(*result, &run.result, error)) return false;
    if (const Json* metrics = r.find("metrics"); metrics != nullptr) {
      if (!snapshot_from_json(*metrics, &run.metrics, error)) return false;
    }
    out->runs.push_back(std::move(run));
  }
  return true;
}

bool manifest_from_text(std::string_view text, RunManifest* out,
                        std::string* error) {
  std::string parse_error;
  const Json doc = Json::parse(text, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  return manifest_from_json(doc, out, error);
}

void write_manifest(std::ostream& os, const RunManifest& manifest) {
  manifest_to_json(manifest).write(os, 1);
  os << '\n';
}

}  // namespace lssim
