#include "telemetry/latency_report.hpp"

#include <utility>

namespace lssim {
namespace {

Json histogram_summary(const HistogramData& h) {
  Json::Object o;
  o.emplace_back("samples", Json(h.samples));
  o.emplace_back("sum", Json(h.sum));
  o.emplace_back("mean", Json(h.mean()));
  o.emplace_back("p50", Json(h.percentile(0.50)));
  o.emplace_back("p95", Json(h.percentile(0.95)));
  o.emplace_back("p99", Json(h.percentile(0.99)));
  Json::Array buckets;
  int top = HistogramData::kBuckets;
  while (top > 0 && h.counts[static_cast<std::size_t>(top - 1)] == 0) {
    --top;  // Trim trailing empty buckets, as snapshot_to_json does.
  }
  buckets.reserve(static_cast<std::size_t>(top));
  for (int b = 0; b < top; ++b) {
    buckets.emplace_back(h.counts[static_cast<std::size_t>(b)]);
  }
  o.emplace_back("buckets", Json(std::move(buckets)));
  return Json(std::move(o));
}

}  // namespace

Json ownership_latency_to_json(const MetricsSnapshot& snapshot) {
  Json::Object ops;
  for (const char* op : kOwnershipLatencyOps) {
    const std::string full =
        std::string("ownership.latency{op=") + op + "}";
    if (const HistogramData* h = snapshot.histogram(full); h != nullptr) {
      ops.emplace_back(op, histogram_summary(*h));
    }
  }
  if (ops.empty()) return Json();
  return Json(std::move(ops));
}

Json latency_report_to_json(const std::string& workload, std::uint64_t seed,
                            const std::vector<LatencyReportRun>& runs) {
  Json::Object doc;
  doc.emplace_back("schema_version", Json(1));
  doc.emplace_back("generator", Json("lssim"));
  doc.emplace_back("workload", Json(workload));
  doc.emplace_back("seed", Json(seed));
  Json::Array out_runs;
  out_runs.reserve(runs.size());
  for (const LatencyReportRun& run : runs) {
    Json::Object r;
    r.emplace_back("protocol", Json(run.protocol));
    Json latency = run.metrics != nullptr
                       ? ownership_latency_to_json(*run.metrics)
                       : Json();
    r.emplace_back("ownership_latency", std::move(latency));
    out_runs.emplace_back(Json(std::move(r)));
  }
  doc.emplace_back("runs", Json(std::move(out_runs)));
  return Json(std::move(doc));
}

}  // namespace lssim
