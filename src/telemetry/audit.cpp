#include "telemetry/audit.hpp"

#include "telemetry/json.hpp"

namespace lssim {

void write_audit_jsonl(std::ostream& os, const TagAuditLog& log,
                       std::string_view protocol) {
  const std::string proto(protocol);
  log.for_each([&os, &proto](const TagAuditRecord& rec) {
    Json::Object o;
    o.emplace_back("protocol", Json(proto));
    o.emplace_back("time", Json(rec.time));
    o.emplace_back("block", Json(rec.block));
    o.emplace_back("node", Json(static_cast<int>(rec.node)));
    o.emplace_back("event", Json(to_string(rec.event)));
    o.emplace_back("reason", Json(to_string(rec.reason)));
    o.emplace_back("tag_progress", Json(static_cast<int>(rec.tag_progress)));
    o.emplace_back("detag_progress",
                   Json(static_cast<int>(rec.detag_progress)));
    o.emplace_back("tagged", Json(rec.tagged));
    Json(std::move(o)).write(os, 0);
    os << '\n';
  });
  Json::Object summary;
  summary.emplace_back("protocol", Json(proto));
  summary.emplace_back("event", Json("summary"));
  summary.emplace_back("recorded", Json(log.total()));
  summary.emplace_back("retained",
                       Json(static_cast<std::uint64_t>(log.size())));
  Json(std::move(summary)).write(os, 0);
  os << '\n';
}

}  // namespace lssim
