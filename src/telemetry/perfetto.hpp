// Chrome trace-event JSON export (the format ui.perfetto.dev and
// chrome://tracing open directly).
//
// Mapping: one *process* per protocol run (pid = run index, named after
// the protocol), one *thread* per node (tid = node id, named "node N").
// Global coherence transactions become complete ("X") duration events
// whose ts/dur are the request/reply cycles; point events (tag, detag,
// NotLS, local write, migrate) become thread-scoped instants ("i").
// Timestamps are simulated cycles written as microseconds (1 cycle ==
// 1 us), so Perfetto's time axis reads directly in cycles.
//
// Schema (docs/OBSERVABILITY.md has the full description):
//   {"displayTimeUnit":"ms",
//    "otherData": {...},
//    "traceEvents":[
//      {"name":"read-miss","cat":"coherence","ph":"X","ts":120,"dur":220,
//       "pid":0,"tid":1,"args":{"block":"0x000040"}}, ...]}
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/event_log.hpp"
#include "telemetry/coherence_trace.hpp"
#include "telemetry/json.hpp"

namespace lssim {

/// One named timeline process for the exporter (typically one protocol
/// run). `trace` or `log` may be null; log events export as instants.
struct TraceProcess {
  std::string name;
  const CoherenceTrace* trace = nullptr;
  const EventLog* log = nullptr;
};

/// Builds the full Chrome trace-event document.
[[nodiscard]] Json chrome_trace_to_json(
    const std::vector<TraceProcess>& processes);

/// Serialises the document for `processes` to `os` (newline-terminated).
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceProcess>& processes);

/// Convenience: a single-process trace.
void write_chrome_trace(std::ostream& os, const std::string& name,
                        const CoherenceTrace& trace);

/// One parsed trace event (enough to reconstruct spans/instants; used by
/// the round-trip tests and any downstream tooling).
struct ChromeTraceEvent {
  std::string name;
  std::string cat;
  std::string ph;   ///< "X" complete, "i" instant, "M" metadata.
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  int pid = 0;
  int tid = 0;
  std::string arg_block;  ///< args.block when present.
};

/// Parses a Chrome trace-event JSON document back into events. Returns
/// false and sets `*error` on malformed input.
bool parse_chrome_trace(std::string_view text,
                        std::vector<ChromeTraceEvent>* out,
                        std::string* error);

}  // namespace lssim
