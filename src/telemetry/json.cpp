#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace lssim {

void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      os << '\n';
      for (int i = 0; i < d * indent; ++i) os << ' ';
    }
  };
  switch (type_) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Type::kUint:
      os << uint_;
      break;
    case Type::kNumber: {
      if (std::isfinite(num_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        os << buf;
      } else {
        os << "null";  // JSON has no Inf/NaN.
      }
      break;
    }
    case Type::kString:
      write_json_string(os, str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) os << ',';
        newline(depth + 1);
        arr_[i].write_impl(os, indent, depth + 1);
      }
      newline(depth);
      os << ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) os << ',';
        newline(depth + 1);
        write_json_string(os, obj_[i].first);
        os << ':';
        if (indent > 0) os << ' ';
        obj_[i].second.write_impl(os, indent, depth + 1);
      }
      newline(depth);
      os << '}';
      break;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  Json parse_document() {
    Json value = parse_value();
    if (failed_) return Json();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return Json();
    }
    return value;
  }

 private:
  void fail(const std::string& what) {
    if (!failed_ && error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    failed_ = true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    fail(std::string("invalid literal, expected '") + std::string(lit) + "'");
    return false;
  }

  Json parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return Json();
    }
    switch (text_[pos_]) {
      case 'n': expect_literal("null"); return Json();
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case '"': return parse_string();
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  Json parse_string() {
    ++pos_;  // Opening quote.
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return Json();
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape digit");
                return Json();
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs are not needed for
            // the telemetry documents, which are ASCII).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape sequence");
            return Json();
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return Json();
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") {
      fail("invalid number");
      return Json();
    }
    char* end = nullptr;
    if (integral && !negative) {
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size()) {
        return Json(static_cast<std::uint64_t>(v));
      }
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("invalid number '" + token + "'");
      return Json();
    }
    return Json(d);
  }

  Json parse_array() {
    ++pos_;  // '['
    Json::Array items;
    skip_ws();
    if (consume(']')) return Json(std::move(items));
    for (;;) {
      items.push_back(parse_value());
      if (failed_) return Json();
      skip_ws();
      if (consume(']')) return Json(std::move(items));
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return Json();
      }
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json::Object members;
    skip_ws();
    if (consume('}')) return Json(std::move(members));
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected string key in object");
        return Json();
      }
      Json key = parse_string();
      if (failed_) return Json();
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return Json();
      }
      Json value = parse_value();
      if (failed_) return Json();
      members.emplace_back(key.as_string(), std::move(value));
      skip_ws();
      if (consume('}')) return Json(std::move(members));
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return Json();
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

Json Json::parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser(text, error);
  return parser.parse_document();
}

}  // namespace lssim
