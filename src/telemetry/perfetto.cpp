#include "telemetry/perfetto.hpp"

#include <algorithm>
#include <cstdio>

namespace lssim {
namespace {

Json block_args(Addr block) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%06llx",
                static_cast<unsigned long long>(block));
  Json::Object args;
  args.emplace_back("block", Json(std::string(buf)));
  return Json(std::move(args));
}

Json metadata_event(const char* what, int pid, int tid, std::string name) {
  Json::Object ev;
  ev.emplace_back("name", Json(what));
  ev.emplace_back("ph", Json("M"));
  ev.emplace_back("pid", Json(pid));
  if (tid >= 0) ev.emplace_back("tid", Json(tid));
  Json::Object args;
  args.emplace_back("name", Json(std::move(name)));
  ev.emplace_back("args", Json(std::move(args)));
  return Json(std::move(ev));
}

Json span_event(int pid, const TraceSpan& s) {
  Json::Object ev;
  ev.emplace_back("name", Json(to_string(s.kind)));
  ev.emplace_back("cat", Json("coherence"));
  ev.emplace_back("ph", Json("X"));
  ev.emplace_back("ts", Json(s.begin));
  ev.emplace_back("dur", Json(s.end - s.begin));
  ev.emplace_back("pid", Json(pid));
  ev.emplace_back("tid", Json(static_cast<int>(s.node)));
  ev.emplace_back("args", block_args(s.block));
  return Json(std::move(ev));
}

Json instant_event(int pid, NodeId node, ProtoEventKind kind, Addr block,
                   Cycles time) {
  Json::Object ev;
  ev.emplace_back("name", Json(to_string(kind)));
  ev.emplace_back("cat", Json("coherence"));
  ev.emplace_back("ph", Json("i"));
  ev.emplace_back("s", Json("t"));  // Thread-scoped instant.
  ev.emplace_back("ts", Json(time));
  ev.emplace_back("pid", Json(pid));
  ev.emplace_back("tid", Json(static_cast<int>(node)));
  ev.emplace_back("args", block_args(block));
  return Json(std::move(ev));
}

}  // namespace

Json chrome_trace_to_json(const std::vector<TraceProcess>& processes) {
  Json::Array events;
  std::uint64_t dropped_total = 0;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    const TraceProcess& proc = processes[p];
    const int pid = static_cast<int>(p);
    events.push_back(metadata_event("process_name", pid, -1, proc.name));

    std::vector<NodeId> nodes_seen;
    const auto note_node = [&nodes_seen](NodeId node) {
      if (std::find(nodes_seen.begin(), nodes_seen.end(), node) ==
          nodes_seen.end()) {
        nodes_seen.push_back(node);
      }
    };

    if (proc.trace != nullptr) {
      for (const TraceSpan& s : proc.trace->spans()) {
        events.push_back(span_event(pid, s));
        note_node(s.node);
      }
      for (const TraceInstant& i : proc.trace->instants()) {
        events.push_back(instant_event(pid, i.node, i.kind, i.block, i.time));
        note_node(i.node);
      }
      dropped_total += proc.trace->dropped();
    }
    if (proc.log != nullptr) {
      proc.log->for_each([&](const ProtocolEvent& e) {
        events.push_back(instant_event(pid, e.actor, e.kind, e.block, e.time));
        note_node(e.actor);
      });
    }

    std::sort(nodes_seen.begin(), nodes_seen.end());
    for (const NodeId node : nodes_seen) {
      events.push_back(metadata_event("thread_name", pid,
                                      static_cast<int>(node),
                                      "node " + std::to_string(node)));
    }
  }

  Json::Object doc;
  doc.emplace_back("displayTimeUnit", Json("ms"));
  Json::Object other;
  other.emplace_back("generator", Json("lssim"));
  other.emplace_back("time_unit", Json("1 cycle = 1us"));
  other.emplace_back("dropped_events", Json(dropped_total));
  doc.emplace_back("otherData", Json(std::move(other)));
  doc.emplace_back("traceEvents", Json(std::move(events)));
  return Json(std::move(doc));
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceProcess>& processes) {
  chrome_trace_to_json(processes).write(os, 1);
  os << '\n';
}

void write_chrome_trace(std::ostream& os, const std::string& name,
                        const CoherenceTrace& trace) {
  write_chrome_trace(os, {TraceProcess{name, &trace, nullptr}});
}

bool parse_chrome_trace(std::string_view text,
                        std::vector<ChromeTraceEvent>* out,
                        std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::string parse_error;
  const Json doc = Json::parse(text, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  if (!doc.is_object()) return fail("trace document must be an object");
  const Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("trace document needs a 'traceEvents' array");
  }
  out->clear();
  for (const Json& ev : events->as_array()) {
    if (!ev.is_object()) return fail("trace event must be an object");
    ChromeTraceEvent parsed;
    const Json* name = ev.find("name");
    const Json* ph = ev.find("ph");
    if (name == nullptr || !name->is_string() || ph == nullptr ||
        !ph->is_string()) {
      return fail("trace event needs string 'name' and 'ph'");
    }
    parsed.name = name->as_string();
    parsed.ph = ph->as_string();
    if (const Json* cat = ev.find("cat"); cat != nullptr && cat->is_string()) {
      parsed.cat = cat->as_string();
    }
    if (const Json* ts = ev.find("ts"); ts != nullptr && ts->is_number()) {
      parsed.ts = ts->as_uint();
    }
    if (const Json* dur = ev.find("dur"); dur != nullptr && dur->is_number()) {
      parsed.dur = dur->as_uint();
    }
    if (const Json* pid = ev.find("pid"); pid != nullptr && pid->is_number()) {
      parsed.pid = static_cast<int>(pid->as_uint());
    }
    if (const Json* tid = ev.find("tid"); tid != nullptr && tid->is_number()) {
      parsed.tid = static_cast<int>(tid->as_uint());
    }
    if (const Json* args = ev.find("args"); args != nullptr) {
      if (const Json* block = args->find("block");
          block != nullptr && block->is_string()) {
        parsed.arg_block = block->as_string();
      }
    }
    out->push_back(std::move(parsed));
  }
  return true;
}

}  // namespace lssim
