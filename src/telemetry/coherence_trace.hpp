// Capacity-bounded recording of coherence activity for timeline export.
//
// Unlike core/event_log.hpp (a last-N debugging ring), this buffer keeps
// the *first* N spans/instants of a run so a whole workload opens as a
// contiguous timeline in ui.perfetto.dev. Spans carry begin/end cycles
// (request issue .. reply completion) for the global transactions —
// read miss, write miss, upgrade — and instants mark the protocol's
// point events (tag, detag, NotLS, local write, migrate).
//
// Disabled (capacity 0) the hooks cost one null-pointer branch, matching
// the event-log pattern.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/event_log.hpp"
#include "sim/types.hpp"

namespace lssim {

struct TraceSpan {
  Cycles begin = 0;
  Cycles end = 0;
  Addr block = 0;
  NodeId node = kInvalidNode;
  ProtoEventKind kind = ProtoEventKind::kReadMiss;
};

struct TraceInstant {
  Cycles time = 0;
  Addr block = 0;
  NodeId node = kInvalidNode;
  ProtoEventKind kind = ProtoEventKind::kReadMiss;
};

class CoherenceTrace {
 public:
  explicit CoherenceTrace(std::size_t capacity = 0) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void span(NodeId node, ProtoEventKind kind, Addr block, Cycles begin,
            Cycles end) {
    if (spans_.size() + instants_.size() >= capacity_) {
      dropped_ += 1;
      return;
    }
    spans_.push_back(TraceSpan{begin, end, block, node, kind});
  }

  void instant(NodeId node, ProtoEventKind kind, Addr block, Cycles time) {
    if (spans_.size() + instants_.size() >= capacity_) {
      dropped_ += 1;
      return;
    }
    instants_.push_back(TraceInstant{time, block, node, kind});
  }

  [[nodiscard]] const std::vector<TraceSpan>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<TraceInstant>& instants() const noexcept {
    return instants_;
  }
  /// Events discarded once the capacity was reached (never silently: the
  /// exporter records this in the trace metadata).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::size_t capacity_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
  std::uint64_t dropped_ = 0;
};

}  // namespace lssim
