// Tag-decision audit trail: a bounded ring of every tag, de-tag and
// hysteresis-counter transition the engine applies, each stamped with the
// reason code of the policy rule (or engine hook) that caused it.
//
// Same shape as core/event_log.hpp (last-N ring, capacity 0 = disabled,
// one branch per hook when off), but a separate buffer with a richer
// record: the audit trail answers "why is this block (not) tagged?",
// which the event log's state-transition view cannot — it only records
// threshold crossings, never the hysteresis progress or the rule that
// fired. `lssim_run --audit-out` dumps it as JSONL; the reason taxonomy
// (TagReason, core/coherence_policy.hpp) is cross-checkable against the
// independent LS model in src/check/invariants.cpp because both observe
// the same engine hook sites.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "core/coherence_policy.hpp"
#include "sim/types.hpp"

namespace lssim {

/// What happened to the entry's tag state.
enum class TagAuditEvent : std::uint8_t {
  kTag,            ///< Tag bit set (hysteresis threshold crossed).
  kDetag,          ///< Tag bit cleared (threshold crossed).
  kTagProgress,    ///< tag_progress changed without crossing the threshold.
  kDetagProgress,  ///< detag_progress changed without crossing.
};

[[nodiscard]] constexpr const char* to_string(TagAuditEvent e) noexcept {
  switch (e) {
    case TagAuditEvent::kTag: return "tag";
    case TagAuditEvent::kDetag: return "detag";
    case TagAuditEvent::kTagProgress: return "tag-progress";
    case TagAuditEvent::kDetagProgress: return "detag-progress";
  }
  return "?";
}

struct TagAuditRecord {
  Cycles time = 0;
  Addr block = 0;
  /// The node whose access caused the transition (requester for foreign
  /// accesses, evicting node for replacements).
  NodeId node = kInvalidNode;
  TagAuditEvent event = TagAuditEvent::kTag;
  TagReason reason = TagReason::kLsSequence;
  /// §5.5 hysteresis counters *after* the event.
  std::uint8_t tag_progress = 0;
  std::uint8_t detag_progress = 0;
  /// Tag bit after the event.
  bool tagged = false;
};

class TagAuditLog {
 public:
  explicit TagAuditLog(std::size_t capacity = 0) : capacity_(capacity) {
    if (capacity_ > 0) ring_.reserve(capacity_);
  }

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void record(Cycles time, Addr block, NodeId node, TagAuditEvent event,
              TagReason reason, std::uint8_t tag_progress,
              std::uint8_t detag_progress, bool tagged) {
    if (!enabled()) return;
    const TagAuditRecord rec{time,         block,        node,
                             event,        reason,       tag_progress,
                             detag_progress, tagged};
    if (ring_.size() < capacity_) {
      ring_.push_back(rec);
    } else {
      ring_[next_] = rec;
      wrapped_ = true;
    }
    next_ = (next_ + 1) % capacity_;
    total_ += 1;
  }

  /// Number of records ever made (may exceed capacity).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Retained records (min(total, capacity)).
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }

  /// Applies `fn` to the retained records, oldest first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (ring_.empty()) return;
    const std::size_t start = wrapped_ ? next_ : 0;
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      fn(ring_[(start + i) % ring_.size()]);
    }
  }

 private:
  std::size_t capacity_;
  std::vector<TagAuditRecord> ring_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::uint64_t total_ = 0;
};

/// Writes the retained records as JSONL (one object per line, oldest
/// first), each carrying `protocol`, followed by one summary line with
/// the recorded/retained totals — so truncation by the ring is always
/// machine-detectable, never silent. Schema: docs/OBSERVABILITY.md.
void write_audit_jsonl(std::ostream& os, const TagAuditLog& log,
                       std::string_view protocol);

}  // namespace lssim
