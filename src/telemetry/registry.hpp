// Metrics registry: named counters, gauges and log-scale histograms with
// O(1) hot-path updates.
//
// Components register metrics once at construction (slow path: a name /
// label-set lookup) and receive a stable integer handle; every update is
// then a plain indexed `uint64_t` bump — no maps, no strings, no hashing
// on the fast path. Snapshots copy the value arrays; deltas subtract two
// snapshots so epoch sampling composes with the existing EpochTimeline.
//
// Components hold a `MetricsRegistry*` that is null when telemetry is
// disabled, so a disabled run pays one predictable branch per hook — the
// same pattern as core/event_log.hpp.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace lssim {

/// Metric label set: ordered key/value pairs ({"node","3"}, ...). Small
/// and only touched at registration/snapshot time.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

struct CounterHandle {
  std::uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const noexcept { return index != UINT32_MAX; }
};
struct GaugeHandle {
  std::uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const noexcept { return index != UINT32_MAX; }
};
struct HistogramHandle {
  std::uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const noexcept { return index != UINT32_MAX; }
};

/// Log-scale (power-of-two bucket) histogram data: bucket i counts values
/// in [2^i, 2^(i+1)); bucket 0 also holds zeros.
struct HistogramData {
  static constexpr int kBuckets = 32;

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t samples = 0;
  std::uint64_t sum = 0;

  static constexpr int bucket_of(std::uint64_t value) noexcept {
    return value == 0
               ? 0
               : std::min(kBuckets - 1, 63 - std::countl_zero(value));
  }

  void observe(std::uint64_t value) noexcept {
    counts[static_cast<std::size_t>(bucket_of(value))] += 1;
    samples += 1;
    sum += value;
  }

  [[nodiscard]] double mean() const noexcept {
    return samples == 0
               ? 0.0
               : static_cast<double>(sum) / static_cast<double>(samples);
  }

  /// Upper edge of the bucket holding the q'th (0..1) sample.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept {
    if (samples == 0) return 0;
    const auto want =
        static_cast<std::uint64_t>(q * static_cast<double>(samples));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[static_cast<std::size_t>(b)];
      if (seen >= want && seen > 0) {
        return (std::uint64_t{1} << (b + 1)) - 1;
      }
    }
    return ~std::uint64_t{0};
  }

  HistogramData& operator-=(const HistogramData& other) noexcept {
    for (int b = 0; b < kBuckets; ++b) {
      counts[static_cast<std::size_t>(b)] -=
          other.counts[static_cast<std::size_t>(b)];
    }
    samples -= other.samples;
    sum -= other.sum;
    return *this;
  }
};

/// Registration-time description of one metric.
struct MetricDesc {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  MetricLabels labels;
  /// Index into the value array of the metric's kind.
  std::uint32_t slot = 0;

  /// "name{k=v,k2=v2}" — the registry's uniqueness key and the display
  /// form used by text dumps.
  [[nodiscard]] std::string full_name() const;
};

/// A point-in-time copy of every metric value, self-contained (owns the
/// descriptors) so it outlives the registry that produced it.
struct MetricsSnapshot {
  std::vector<MetricDesc> descs;
  std::vector<std::uint64_t> counters;
  std::vector<std::int64_t> gauges;
  std::vector<HistogramData> histograms;

  [[nodiscard]] bool empty() const noexcept { return descs.empty(); }

  /// Counter value by full name ("name{k=v}"); 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& full) const;

  /// Sum of all counters sharing `name` across label sets.
  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;

  /// Histogram data by full name ("name{k=v}"); nullptr when absent.
  [[nodiscard]] const HistogramData* histogram(const std::string& full) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (slow path; idempotent per name+labels) ------------
  CounterHandle counter(std::string name, MetricLabels labels = {});
  GaugeHandle gauge(std::string name, MetricLabels labels = {});
  HistogramHandle histogram(std::string name, MetricLabels labels = {});

  // --- hot path --------------------------------------------------------
  void add(CounterHandle h, std::uint64_t delta = 1) noexcept {
    counters_[h.index] += delta;
  }
  void set(GaugeHandle h, std::int64_t value) noexcept {
    gauges_[h.index] = value;
  }
  void observe(HistogramHandle h, std::uint64_t value) noexcept {
    histograms_[h.index].observe(value);
  }

  // --- inspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t value(CounterHandle h) const noexcept {
    return counters_[h.index];
  }
  [[nodiscard]] std::int64_t value(GaugeHandle h) const noexcept {
    return gauges_[h.index];
  }
  [[nodiscard]] const HistogramData& data(HistogramHandle h) const noexcept {
    return histograms_[h.index];
  }
  [[nodiscard]] std::size_t num_metrics() const noexcept {
    return descs_.size();
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::uint32_t register_metric(std::string name, MetricLabels labels,
                                MetricKind kind);

  std::vector<MetricDesc> descs_;
  std::map<std::string, std::uint32_t> by_name_;  ///< full_name -> desc idx.
  std::vector<std::uint64_t> counters_;
  std::vector<std::int64_t> gauges_;
  std::vector<HistogramData> histograms_;
};

/// later - earlier, element-wise: counters and histogram buckets subtract,
/// gauges keep the later value. Descriptors must match (same registry,
/// `earlier` taken first); extra metrics registered after `earlier` are
/// kept as-is. Throws std::invalid_argument when `later` has fewer slots
/// of any kind than `earlier` — the snapshots cannot be from the same
/// registry in that order, and a silent partial subtraction would corrupt
/// every downstream epoch delta.
[[nodiscard]] MetricsSnapshot snapshot_delta(const MetricsSnapshot& later,
                                             const MetricsSnapshot& earlier);

/// JSON document for a snapshot: an array of {name, kind, labels, value}
/// (histograms carry buckets/samples/sum). Stable ordering.
[[nodiscard]] Json snapshot_to_json(const MetricsSnapshot& snapshot);

/// Inverse of snapshot_to_json (tests, manifest round-trips). Returns
/// false and sets `*error` on malformed input.
bool snapshot_from_json(const Json& json, MetricsSnapshot* out,
                        std::string* error);

/// One "name{labels} value" line per metric (histograms print mean/p99).
void print_metrics(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace lssim
