// Versioned machine-readable run manifests.
//
// A manifest is the single JSON document a driver or bench binary emits
// per invocation (`--manifest-out`): the full configuration (workload,
// protocols, machine geometry, seed, workload parameters), host wall
// clock, and per-protocol results — the RunResult totals plus, when
// telemetry is on, the complete metrics snapshot. BENCH_*.json
// trajectories are built from these documents.
//
// Schema versioning policy (docs/OBSERVABILITY.md): `schema_version` is
// bumped on any field removal or meaning change; pure additions keep the
// version. Consumers must ignore unknown fields.
//
// Version history:
//   1 — initial schema.
//   2 — machine object records the configured `protocol` by registry name;
//       protocol names everywhere resolve through the protocol registry
//       (adds LS+AD). Version-1 documents still parse.
//       Later addition (version kept, per the policy above): run objects
//       carry an `ownership_latency` digest when the run's metrics
//       include the ownership.latency histograms
//       (telemetry/latency_report.hpp).
//   3 — machine object's `directory` field changes meaning: it is now the
//       registry name of the directory organisation (full-map,
//       limited-ptr, coarse, sparse) and is parsed on load, with the
//       organisation's knob alongside it (`directory_pointers`,
//       `directory_region` or `directory_entries`). Run objects record
//       the organisation they executed under (`directory`) and
//       `dir_entry_evictions`. Version-2 documents still parse.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/config.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"
#include "workloads/harness.hpp"

namespace lssim {

inline constexpr std::uint32_t kManifestSchemaVersion = 3;

struct RunManifest {
  struct ProtocolRun {
    RunResult result;
    MetricsSnapshot metrics;  ///< Empty when telemetry was disabled.
  };

  std::uint32_t schema_version = kManifestSchemaVersion;
  std::string generator = "lssim";
  std::string workload;
  std::uint64_t seed = 1;
  std::map<std::string, std::string> params;  ///< --set key=value pairs.
  MachineConfig machine;
  double wall_seconds = 0.0;  ///< Host wall clock for the whole invocation.
  std::vector<ProtocolRun> runs;
};

/// Serialises one RunResult (every counter the text/CSV reports print).
[[nodiscard]] Json run_result_to_json(const RunResult& result);

/// Inverse of run_result_to_json; returns false + `*error` on bad input.
bool run_result_from_json(const Json& json, RunResult* out,
                          std::string* error);

[[nodiscard]] Json manifest_to_json(const RunManifest& manifest);

/// Parses a manifest document. Rejects documents whose schema_version is
/// newer than this build understands.
bool manifest_from_json(const Json& json, RunManifest* out,
                        std::string* error);

/// Convenience: parse from raw text.
bool manifest_from_text(std::string_view text, RunManifest* out,
                        std::string* error);

/// Pretty-prints the manifest document to `os` (newline-terminated).
void write_manifest(std::ostream& os, const RunManifest& manifest);

}  // namespace lssim
