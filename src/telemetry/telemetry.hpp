// The per-System telemetry bundle: one metrics registry, one
// coherence-trace buffer and one tag-decision audit ring, constructed
// from MachineConfig::telemetry.
//
// Components receive a `Telemetry*` and cache `metrics()` / `trace()` /
// `audit()` pointers, which are null when the corresponding pillar is
// disabled — every hot-path hook is then a single predictable branch.
#pragma once

#include "sim/config.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/coherence_trace.hpp"
#include "telemetry/registry.hpp"

namespace lssim {

class Telemetry {
 public:
  Telemetry() = default;
  explicit Telemetry(const TelemetryConfig& config)
      : metrics_enabled_(config.metrics),
        trace_(config.trace_capacity),
        audit_(config.audit_capacity) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] bool metrics_enabled() const noexcept {
    return metrics_enabled_;
  }

  /// The registry, or null when metrics are disabled. Components must
  /// treat null as "skip the hook".
  [[nodiscard]] MetricsRegistry* metrics() noexcept {
    return metrics_enabled_ ? &registry_ : nullptr;
  }

  /// The trace buffer, or null when tracing is disabled.
  [[nodiscard]] CoherenceTrace* trace() noexcept {
    return trace_.enabled() ? &trace_ : nullptr;
  }

  /// The tag-decision audit ring, or null when auditing is disabled.
  [[nodiscard]] TagAuditLog* audit() noexcept {
    return audit_.enabled() ? &audit_ : nullptr;
  }

  [[nodiscard]] const MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const CoherenceTrace& coherence_trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] const TagAuditLog& audit_log() const noexcept {
    return audit_;
  }

 private:
  bool metrics_enabled_ = false;
  MetricsRegistry registry_;
  CoherenceTrace trace_;
  TagAuditLog audit_;
};

}  // namespace lssim
