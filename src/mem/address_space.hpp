// Simulated physical address space.
//
// Backing storage is allocated lazily page-by-page; pages are assigned
// home nodes round-robin (paper §4.2: "physical memory pages are
// distributed in round-robin fashion among the nodes").
//
// Accesses are strongly page-local (a workload touches the same stack /
// array page many times in a row), so both load and store consult a
// one-entry last-page cache before the page map. Page storage is heap
// blocks owned by unique_ptr, so the cached pointer stays valid across
// map rehashes; the map never erases.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sim/types.hpp"

namespace lssim {

class AddressSpace {
 public:
  AddressSpace(int num_nodes, std::uint32_t page_bytes);

  /// Home node of the page containing `addr`.
  [[nodiscard]] NodeId home_of(Addr addr) const noexcept {
    return static_cast<NodeId>((addr >> page_shift_) %
                               static_cast<Addr>(num_nodes_));
  }

  /// Loads `size` bytes (1, 2, 4 or 8; must not cross a page boundary)
  /// as a little-endian integer. Untouched memory reads as zero.
  [[nodiscard]] std::uint64_t load(Addr addr, unsigned size) const;

  /// Stores the low `size` bytes of `value` at `addr`.
  void store(Addr addr, unsigned size, std::uint64_t value);

  [[nodiscard]] std::uint32_t page_bytes() const noexcept {
    return page_bytes_;
  }
  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }

  /// Number of pages materialised so far (for tests / footprint reports).
  [[nodiscard]] std::size_t resident_pages() const noexcept {
    return pages_.size();
  }

 private:
  [[nodiscard]] std::byte* page_for(Addr addr);
  [[nodiscard]] const std::byte* page_if_present(Addr addr) const noexcept;

  static constexpr Addr kNoPage = ~Addr{0};

  int num_nodes_;
  std::uint32_t page_bytes_;
  // page_bytes_ is a validated power of two: page and offset math is
  // shift-and-mask (load/store sit on the simulator's per-access path).
  std::uint32_t page_shift_;
  Addr offset_mask_;
  std::unordered_map<Addr, std::unique_ptr<std::byte[]>> pages_;
  // Last-page cache (mutable: load() is logically const). Only ever
  // caches a materialised page, so load-after-store stays coherent.
  mutable Addr last_page_ = kNoPage;
  mutable std::byte* last_data_ = nullptr;
};

}  // namespace lssim
