#include "mem/address_space.hpp"

#include <cassert>
#include <cstring>

namespace lssim {

AddressSpace::AddressSpace(int num_nodes, std::uint32_t page_bytes)
    : num_nodes_(num_nodes),
      page_bytes_(page_bytes),
      page_shift_(static_cast<std::uint32_t>(std::countr_zero(page_bytes))),
      offset_mask_(static_cast<Addr>(page_bytes) - 1) {
  assert(num_nodes >= 1);
  assert(page_bytes >= 8);
  assert(std::has_single_bit(page_bytes));
}

std::byte* AddressSpace::page_for(Addr addr) {
  const Addr page = addr >> page_shift_;
  if (page == last_page_) {
    return last_data_;
  }
  auto& slot = pages_[page];
  if (!slot) {
    slot = std::make_unique<std::byte[]>(page_bytes_);
    std::memset(slot.get(), 0, page_bytes_);
  }
  last_page_ = page;
  last_data_ = slot.get();
  return slot.get();
}

const std::byte* AddressSpace::page_if_present(Addr addr) const noexcept {
  const Addr page = addr >> page_shift_;
  if (page == last_page_) {
    return last_data_;
  }
  const auto it = pages_.find(page);
  if (it == pages_.end()) {
    return nullptr;
  }
  last_page_ = page;
  last_data_ = it->second.get();
  return it->second.get();
}

std::uint64_t AddressSpace::load(Addr addr, unsigned size) const {
  assert(size == 1 || size == 2 || size == 4 || size == 8);
  assert((addr & offset_mask_) + size <= page_bytes_ &&
         "access must not cross a page boundary");
  const std::byte* page = page_if_present(addr);
  if (page == nullptr) {
    return 0;
  }
  std::uint64_t value = 0;
  std::memcpy(&value, page + (addr & offset_mask_), size);
  return value;
}

void AddressSpace::store(Addr addr, unsigned size, std::uint64_t value) {
  assert(size == 1 || size == 2 || size == 4 || size == 8);
  assert((addr & offset_mask_) + size <= page_bytes_ &&
         "access must not cross a page boundary");
  std::byte* page = page_for(addr);
  std::memcpy(page + (addr & offset_mask_), &value, size);
}

}  // namespace lssim
