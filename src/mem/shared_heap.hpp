// Allocation of *simulated* shared memory and typed views over it.
//
// Workload data structures live in the simulated address space so that
// every access to them goes through the modelled cache hierarchy and
// coherence protocol. The heap hands out simulated addresses only; actual
// bytes live in AddressSpace's lazily materialised pages.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "mem/address_space.hpp"
#include "sim/types.hpp"

namespace lssim {

/// Bump allocator over the simulated address space.
///
/// Two placement policies:
///  * alloc()          — contiguous virtual layout; pages interleave
///                       round-robin across homes (the default placement
///                       the paper assumes).
///  * alloc_on_node(n) — placed on pages whose home is node n, for data
///                       a workload wants node-local (stacks, partitions).
class SharedHeap {
 public:
  explicit SharedHeap(AddressSpace& space);

  [[nodiscard]] Addr alloc(std::uint64_t bytes, std::uint32_t align = 8);
  [[nodiscard]] Addr alloc_on_node(NodeId node, std::uint64_t bytes,
                                   std::uint32_t align = 8);

  /// Total bytes handed out (diagnostics).
  [[nodiscard]] std::uint64_t bytes_allocated() const noexcept {
    return bytes_allocated_;
  }

  [[nodiscard]] AddressSpace& space() noexcept { return space_; }

 private:
  AddressSpace& space_;
  Addr global_cursor_;
  std::vector<Addr> node_cursor_;       // next free addr in node arena
  std::vector<Addr> node_arena_limit_;  // end of the current node page
  std::uint64_t bytes_allocated_ = 0;
};

/// Fixed-size array of POD elements in simulated memory. T must be a
/// trivially copyable type of 1/2/4/8 bytes; elements are naturally
/// aligned so they never straddle a cache block or page boundary.
template <typename T>
class SharedArray {
  static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                    sizeof(T) == 8,
                "element must be 1/2/4/8 bytes");

 public:
  SharedArray() = default;
  SharedArray(SharedHeap& heap, std::uint64_t count,
              std::uint32_t align = alignof(T))
      : base_(heap.alloc(count * sizeof(T),
                         std::max<std::uint32_t>(align, sizeof(T)))),
        count_(count) {}

  [[nodiscard]] static SharedArray on_node(SharedHeap& heap, NodeId node,
                                           std::uint64_t count,
                                           std::uint32_t align = alignof(T)) {
    SharedArray array;
    array.base_ = heap.alloc_on_node(
        node, count * sizeof(T), std::max<std::uint32_t>(align, sizeof(T)));
    array.count_ = count;
    return array;
  }

  [[nodiscard]] Addr addr(std::uint64_t index) const noexcept {
    assert(index < count_);
    return base_ + index * sizeof(T);
  }
  [[nodiscard]] Addr base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }
  [[nodiscard]] static constexpr unsigned element_bytes() noexcept {
    return sizeof(T);
  }

 private:
  Addr base_ = 0;
  std::uint64_t count_ = 0;
};

/// Bit-pattern conversions for storing floating point values through the
/// integer load/store interface.
[[nodiscard]] inline std::uint64_t to_bits(double value) noexcept {
  return std::bit_cast<std::uint64_t>(value);
}
[[nodiscard]] inline double from_bits(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

}  // namespace lssim
