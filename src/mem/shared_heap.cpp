#include "mem/shared_heap.hpp"

namespace lssim {
namespace {

constexpr Addr align_up(Addr addr, std::uint32_t align) noexcept {
  const Addr mask = align - 1;
  return (addr + mask) & ~mask;
}

}  // namespace

SharedHeap::SharedHeap(AddressSpace& space) : space_(space) {
  const int nodes = space.num_nodes();
  const Addr page = space.page_bytes();
  // The global arena starts high so it never collides with node arenas.
  global_cursor_ = Addr{1} << 40;
  node_cursor_.resize(static_cast<std::size_t>(nodes));
  node_arena_limit_.resize(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    // Page index ≡ n (mod nodes) has home n under round-robin placement.
    node_cursor_[static_cast<std::size_t>(n)] = static_cast<Addr>(n) * page;
    node_arena_limit_[static_cast<std::size_t>(n)] =
        static_cast<Addr>(n) * page + page;
  }
}

Addr SharedHeap::alloc(std::uint64_t bytes, std::uint32_t align) {
  assert(bytes > 0);
  assert(std::has_single_bit(align));
  global_cursor_ = align_up(global_cursor_, align);
  const Addr result = global_cursor_;
  global_cursor_ += bytes;
  bytes_allocated_ += bytes;
  return result;
}

Addr SharedHeap::alloc_on_node(NodeId node, std::uint64_t bytes,
                               std::uint32_t align) {
  assert(bytes > 0);
  assert(std::has_single_bit(align));
  assert(node < node_cursor_.size());
  const Addr page = space_.page_bytes();
  const Addr stride = page * static_cast<Addr>(space_.num_nodes());
  auto& cursor = node_cursor_[node];
  auto& limit = node_arena_limit_[node];

  cursor = align_up(cursor, align);
  // Allocations larger than a page cannot stay on one node's pages under
  // round-robin interleaving; carve them page-by-page is pointless for the
  // workloads we model, so require fitting within one page.
  assert(bytes <= page && "node-local allocations must fit in one page");
  if (cursor + bytes > limit) {
    // Advance to this node's next page (stride keeps home == node).
    const Addr next_page_start = limit - page + stride;
    cursor = next_page_start;
    limit = next_page_start + page;
    cursor = align_up(cursor, align);
  }
  const Addr result = cursor;
  cursor += bytes;
  bytes_allocated_ += bytes;
  assert(space_.home_of(result) == node);
  return result;
}

}  // namespace lssim
