// Coherence message taxonomy.
//
// The paper splits network traffic into Read-related, Write-related and
// Other (retries, hints, NotLS). Every concrete message type maps onto one
// of those classes; stats are kept per type and rolled up per class.
#pragma once

#include <cstdint>

namespace lssim {

enum class MsgClass : std::uint8_t { kRead = 0, kWrite = 1, kOther = 2 };
inline constexpr int kNumMsgClasses = 3;

enum class MsgType : std::uint8_t {
  // -- Read-related --------------------------------------------------
  kReadReq = 0,     ///< Read miss request, requester -> home.
  kReadFwd,         ///< Home forwards a read to the current owner.
  kDataShared,      ///< Shared data reply.
  kDataExclRead,    ///< Exclusive data reply to a read (tagged block).
  kSharingWb,       ///< Owner's sharing writeback to home on read-on-dirty.
  // -- Write-related --------------------------------------------------
  kOwnReq,          ///< Ownership upgrade request (write hit on Shared).
  kReadExReq,       ///< Read-exclusive request (write miss).
  kWriteFwd,        ///< Home forwards a write-exclusive to the owner.
  kDataExclWrite,   ///< Exclusive data reply to a write miss.
  kOwnAck,          ///< Home grants ownership (upgrade acknowledgement).
  kInval,           ///< Invalidation, home -> sharing cache.
  kInvalAck,        ///< Invalidation acknowledgement, sharer -> requester.
  kOwnerXferAck,    ///< Owner -> home notice that ownership moved.
  kUpdate,          ///< Write-update: new data, home -> sharing cache.
  kUpdateAck,       ///< Update acknowledgement, sharer -> writer.
  // -- Other ----------------------------------------------------------
  kWritebackData,   ///< Dirty replacement writeback, cache -> home.
  kReplHint,        ///< Clean/shared/LStemp replacement hint.
  kNotLs,           ///< Paper §3.1: block ceased to be load-store.
  kCount
};
inline constexpr int kNumMsgTypes = static_cast<int>(MsgType::kCount);

[[nodiscard]] constexpr MsgClass msg_class(MsgType type) noexcept {
  switch (type) {
    case MsgType::kReadReq:
    case MsgType::kReadFwd:
    case MsgType::kDataShared:
    case MsgType::kDataExclRead:
    case MsgType::kSharingWb:
      return MsgClass::kRead;
    case MsgType::kOwnReq:
    case MsgType::kReadExReq:
    case MsgType::kWriteFwd:
    case MsgType::kDataExclWrite:
    case MsgType::kOwnAck:
    case MsgType::kInval:
    case MsgType::kInvalAck:
    case MsgType::kOwnerXferAck:
    case MsgType::kUpdate:
    case MsgType::kUpdateAck:
      return MsgClass::kWrite;
    case MsgType::kWritebackData:
    case MsgType::kReplHint:
    case MsgType::kNotLs:
    case MsgType::kCount:
      return MsgClass::kOther;
  }
  return MsgClass::kOther;
}

[[nodiscard]] constexpr const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kReadReq: return "ReadReq";
    case MsgType::kReadFwd: return "ReadFwd";
    case MsgType::kDataShared: return "DataShared";
    case MsgType::kDataExclRead: return "DataExclRead";
    case MsgType::kSharingWb: return "SharingWb";
    case MsgType::kOwnReq: return "OwnReq";
    case MsgType::kReadExReq: return "ReadExReq";
    case MsgType::kWriteFwd: return "WriteFwd";
    case MsgType::kDataExclWrite: return "DataExclWrite";
    case MsgType::kOwnAck: return "OwnAck";
    case MsgType::kInval: return "Inval";
    case MsgType::kInvalAck: return "InvalAck";
    case MsgType::kOwnerXferAck: return "OwnerXferAck";
    case MsgType::kUpdate: return "Update";
    case MsgType::kUpdateAck: return "UpdateAck";
    case MsgType::kWritebackData: return "WritebackData";
    case MsgType::kReplHint: return "ReplHint";
    case MsgType::kNotLs: return "NotLS";
    case MsgType::kCount: break;
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(MsgClass cls) noexcept {
  switch (cls) {
    case MsgClass::kRead: return "Read";
    case MsgClass::kWrite: return "Write";
    case MsgClass::kOther: return "Other";
  }
  return "?";
}

}  // namespace lssim
