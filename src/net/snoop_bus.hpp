// Snooping shared bus (InterconnectKind::kBus).
//
// All nodes attach to one broadcast medium: every transaction a node
// places on the bus is observed by every other cache, so the directed
// forward/invalidate legs of the directory transaction become free snoop
// hits (snoops() == true; the engine skips those legs). The price is
// serialisation — the bus is a single resource, and a message departs
// only once the bus is free.
//
// Two arbitration disciplines are modelled (the shared-bus service
// disciplines of Nikolov & Lerato):
//
//   kFcfs       — grants in arrival order: depart = max(now, bus_free).
//   kRoundRobin — rotating priority: a grant that found the bus busy
//                 additionally waits for the rotation to walk from the
//                 last grantee to the requester (one cycle per position).
//                 An idle bus grants immediately, so both disciplines
//                 agree under no contention.
#pragma once

#include "net/interconnect.hpp"

namespace lssim {

class SnoopBus final : public Interconnect {
 public:
  SnoopBus(int num_nodes, const LatencyConfig& latency, Stats& stats,
           BusArbitration arbitration = BusArbitration::kFcfs,
           MetricsRegistry* metrics = nullptr);

  /// Broadcasts one message at time `now`; returns the time the
  /// transfer completes. The bus serialises: the message departs no
  /// earlier than the bus frees up (plus the rotation wait under
  /// round-robin when contended), occupies the bus for `link_occupancy`
  /// cycles, and completes `hop` cycles after departing. src == dst
  /// throws std::logic_error like Network::send, for the same reason.
  Cycles send(NodeId src, NodeId dst, MsgType type, Cycles now) override;

  /// Every attached node is one bus transfer away.
  [[nodiscard]] int hop_count(NodeId src, NodeId dst) const noexcept override {
    return src == dst ? 0 : 1;
  }

  [[nodiscard]] Cycles total_queueing() const noexcept override {
    return total_queueing_;
  }

  [[nodiscard]] int num_nodes() const noexcept override { return num_nodes_; }

  [[nodiscard]] bool snoops() const noexcept override { return true; }

  [[nodiscard]] BusArbitration arbitration() const noexcept {
    return arbitration_;
  }

 private:
  int num_nodes_;
  BusArbitration arbitration_;
  Cycles hop_;
  Cycles occupancy_;
  Cycles bus_free_ = 0;
  NodeId last_grantee_ = 0;
  Cycles total_queueing_ = 0;
  Stats& stats_;
  MetricsRegistry* metrics_ = nullptr;
  CounterHandle messages_;
  CounterHandle hops_;
  HistogramHandle queue_delay_;
};

}  // namespace lssim
