#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace lssim {

Network::Network(int num_nodes, const LatencyConfig& latency, Stats& stats,
                 Topology topology, MetricsRegistry* metrics)
    : num_nodes_(num_nodes),
      topology_(topology),
      hop_(latency.hop),
      occupancy_(latency.link_occupancy),
      stats_(stats),
      metrics_(metrics) {
  assert(num_nodes >= 1);
  if (metrics_ != nullptr) {
    messages_ = metrics_->counter("net.messages");
    hops_ = metrics_->counter("net.hops");
    queue_delay_ = metrics_->histogram("net.queue_delay");
  }
  switch (topology_) {
    case Topology::kCrossbar:
    case Topology::kRing:
      routers_ = num_nodes_;
      break;
    case Topology::kMesh2D: {
      mesh_w_ = static_cast<int>(
          std::ceil(std::sqrt(static_cast<double>(num_nodes_))));
      const int mesh_h = (num_nodes_ + mesh_w_ - 1) / mesh_w_;
      routers_ = mesh_w_ * mesh_h;  // Routers exist even on grid holes.
      break;
    }
  }
  link_free_.assign(static_cast<std::size_t>(routers_) *
                        static_cast<std::size_t>(routers_),
                    0);
}

int Network::next_router(int at, int dst) const noexcept {
  switch (topology_) {
    case Topology::kCrossbar:
      return dst;
    case Topology::kRing: {
      const int forward = (dst - at + num_nodes_) % num_nodes_;
      const int backward = (at - dst + num_nodes_) % num_nodes_;
      return forward <= backward ? (at + 1) % num_nodes_
                                 : (at + num_nodes_ - 1) % num_nodes_;
    }
    case Topology::kMesh2D: {
      // Dimension-order (X then Y) routing.
      const int ax = at % mesh_w_;
      const int ay = at / mesh_w_;
      const int dx = dst % mesh_w_;
      const int dy = dst / mesh_w_;
      if (ax != dx) {
        return ay * mesh_w_ + (ax < dx ? ax + 1 : ax - 1);
      }
      return (ay < dy ? ay + 1 : ay - 1) * mesh_w_ + ax;
    }
  }
  return dst;
}

int Network::hop_count(NodeId src, NodeId dst) const noexcept {
  if (src == dst) return 0;
  switch (topology_) {
    case Topology::kCrossbar:
      return 1;
    case Topology::kRing: {
      const int forward = (dst - src + num_nodes_) % num_nodes_;
      const int backward = (src - dst + num_nodes_) % num_nodes_;
      return std::min(forward, backward);
    }
    case Topology::kMesh2D: {
      const int dx = std::abs(src % mesh_w_ - dst % mesh_w_);
      const int dy = std::abs(src / mesh_w_ - dst / mesh_w_);
      return dx + dy;
    }
  }
  return 1;
}

Cycles Network::send(NodeId src, NodeId dst, MsgType type, Cycles now) {
  if (src == dst) {
    // A self-send never occupies a link (the routing loop below no-ops),
    // but it silently inflates the message count and traffic matrix —
    // exactly the statistics the paper's figures are built from. Checked
    // in all build types: an assert would let release builds publish
    // corrupted message counts.
    throw std::logic_error(
        "Network::send: src == dst (node " + std::to_string(int{src}) +
        "); node-internal transfers are not network messages");
  }
  stats_.messages_by_type[static_cast<std::size_t>(type)] += 1;
  if (src < num_nodes_ && dst < num_nodes_) {
    stats_.traffic_matrix.record(src, dst);
  }
  int at = src;
  Cycles t = now;
  Cycles queued = 0;
  std::uint64_t hops = 0;
  while (at != dst) {
    const int next = next_router(at, dst);
    Cycles& free_at = link_free(at, next);
    const Cycles depart = std::max(t, free_at);
    queued += depart - t;
    free_at = depart + occupancy_;
    t = depart + hop_;
    stats_.network_hops += 1;
    hops += 1;
    at = next;
  }
  total_queueing_ += queued;
  if (metrics_ != nullptr) {
    metrics_->add(messages_);
    metrics_->add(hops_, hops);
    metrics_->observe(queue_delay_, queued);
  }
  return t;
}

}  // namespace lssim
