#include "net/snoop_bus.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "net/network.hpp"

namespace lssim {

SnoopBus::SnoopBus(int num_nodes, const LatencyConfig& latency, Stats& stats,
                   BusArbitration arbitration, MetricsRegistry* metrics)
    : num_nodes_(num_nodes),
      arbitration_(arbitration),
      hop_(latency.hop),
      occupancy_(latency.link_occupancy),
      stats_(stats),
      metrics_(metrics) {
  assert(num_nodes >= 1);
  if (metrics_ != nullptr) {
    messages_ = metrics_->counter("net.messages");
    hops_ = metrics_->counter("net.hops");
    queue_delay_ = metrics_->histogram("net.queue_delay");
  }
}

Cycles SnoopBus::send(NodeId src, NodeId dst, MsgType type, Cycles now) {
  if (src == dst) {
    // Same contract as Network::send: a self-send is not a bus
    // transaction and would silently inflate the message counts.
    throw std::logic_error(
        "SnoopBus::send: src == dst (node " + std::to_string(int{src}) +
        "); node-internal transfers are not bus transactions");
  }
  stats_.messages_by_type[static_cast<std::size_t>(type)] += 1;
  if (src < num_nodes_ && dst < num_nodes_) {
    stats_.traffic_matrix.record(src, dst);
  }
  Cycles depart = std::max(now, bus_free_);
  if (arbitration_ == BusArbitration::kRoundRobin && bus_free_ > now) {
    // The requester contended: the rotating grant walks one position per
    // cycle from the node after the last grantee around to `src`.
    const int distance =
        (int{src} - int{last_grantee_} + num_nodes_) % num_nodes_;
    depart += static_cast<Cycles>(distance);
  }
  const Cycles queued = depart - now;
  bus_free_ = depart + occupancy_;
  last_grantee_ = src;
  total_queueing_ += queued;
  stats_.network_hops += 1;  // One broadcast transfer.
  if (metrics_ != nullptr) {
    metrics_->add(messages_);
    metrics_->add(hops_, 1);
    metrics_->observe(queue_delay_, queued);
  }
  return depart + hop_;
}

std::unique_ptr<Interconnect> make_interconnect(const MachineConfig& config,
                                                Stats& stats,
                                                MetricsRegistry* metrics) {
  switch (config.interconnect) {
    case InterconnectKind::kNetwork:
      return std::make_unique<Network>(config.num_nodes, config.latency,
                                       stats, config.topology, metrics);
    case InterconnectKind::kBus:
      return std::make_unique<SnoopBus>(config.num_nodes, config.latency,
                                        stats, config.bus_arbitration,
                                        metrics);
  }
  throw std::invalid_argument("unknown interconnect kind");
}

}  // namespace lssim
