// Interconnection network with per-link contention.
//
// The paper's machine uses a fixed-delay point-to-point network
// (modelled as kCrossbar: one hop between any pair). As an extension the
// simulator also provides a unidirectional-capable ring and a 2D mesh
// with dimension-order routing — every physical link along a route is a
// serialising resource, so topology changes both latency (hop count)
// and contention behaviour. `bench/ablation_topology` quantifies how the
// LS/AD/Baseline comparison shifts with the network.
#pragma once

#include <cstdint>
#include <vector>

#include "net/interconnect.hpp"
#include "net/message.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"
#include "stats/stats.hpp"
#include "telemetry/registry.hpp"

namespace lssim {

class Network final : public Interconnect {
 public:
  /// `metrics` (optional) publishes message/hop counters and a queueing-
  /// delay histogram; null disables the hooks (one branch per send).
  Network(int num_nodes, const LatencyConfig& latency, Stats& stats,
          Topology topology = Topology::kCrossbar,
          MetricsRegistry* metrics = nullptr);

  /// Sends one message at time `now`; returns its arrival time at `dst`.
  ///
  /// The route's physical links serialise messages: on each hop the
  /// message departs no earlier than the link's free time, occupies the
  /// link for `link_occupancy` cycles, and arrives `hop` cycles after
  /// departing. Node-internal transfers are not messages: src == dst
  /// throws std::logic_error (before any statistic is touched) in every
  /// build type, since a self-send would silently inflate the message
  /// counts the figures are built from.
  Cycles send(NodeId src, NodeId dst, MsgType type, Cycles now) override;

  /// Number of physical hops between two nodes under this topology.
  [[nodiscard]] int hop_count(NodeId src, NodeId dst) const noexcept override;

  /// Total cycles messages spent queued behind busy links (diagnostics).
  [[nodiscard]] Cycles total_queueing() const noexcept override {
    return total_queueing_;
  }

  [[nodiscard]] int num_nodes() const noexcept override { return num_nodes_; }
  [[nodiscard]] Topology topology() const noexcept { return topology_; }

 private:
  /// Grid node id of the next router on the route toward `dst`
  /// (dimension-order for the mesh, shorter way round for the ring).
  [[nodiscard]] int next_router(int at, int dst) const noexcept;

  [[nodiscard]] Cycles& link_free(int from, int to) noexcept {
    return link_free_[static_cast<std::size_t>(from) *
                          static_cast<std::size_t>(routers_) +
                      static_cast<std::size_t>(to)];
  }

  int num_nodes_;
  Topology topology_;
  int mesh_w_ = 0;   ///< Mesh grid width (kMesh2D only).
  int routers_ = 0;  ///< Router count (grid may exceed num_nodes_).
  Cycles hop_;
  Cycles occupancy_;
  std::vector<Cycles> link_free_;
  Cycles total_queueing_ = 0;
  Stats& stats_;
  MetricsRegistry* metrics_ = nullptr;
  CounterHandle messages_;
  CounterHandle hops_;
  HistogramHandle queue_delay_;
};

}  // namespace lssim
