// Coherence-transport seam.
//
// The transaction engine (core/protocol.cpp) charges every coherence
// message through this interface and never assumes how the message
// travels. Two implementations exist:
//
//   Network  (net/network.hpp)   — the directory machine's point-to-point
//                                  network: messages route hop by hop
//                                  over a crossbar / ring / 2D mesh.
//   SnoopBus (net/snoop_bus.hpp) — a snooping shared bus: every
//                                  transaction is broadcast, so directed
//                                  forward and invalidate legs become
//                                  free snoop hits (snoops() == true lets
//                                  the engine skip them) and all traffic
//                                  serialises through one arbiter.
//
// This mirrors the CoherencePolicy / DirectoryPolicy seams: the engine
// owns the transaction structure, the interconnect owns the transport
// cost model, and make_interconnect() resolves the configured kind.
#pragma once

#include <memory>

#include "net/message.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"
#include "stats/stats.hpp"
#include "telemetry/registry.hpp"

namespace lssim {

class Interconnect {
 public:
  virtual ~Interconnect() = default;

  /// Delivers one message and returns its arrival time. Implementations
  /// must account the message in Stats (messages_by_type, traffic
  /// matrix, network_hops) and may model contention by delaying the
  /// returned time. Throws std::logic_error on src == dst — a self-send
  /// is never a transport message and would corrupt the traffic stats.
  virtual Cycles send(NodeId src, NodeId dst, MsgType type, Cycles now) = 0;

  /// Topology distance in hops (0 for src == dst). Latency-model input
  /// only; does not touch stats.
  [[nodiscard]] virtual int hop_count(NodeId src,
                                      NodeId dst) const noexcept = 0;

  /// Total cycles messages spent queued for contended resources.
  [[nodiscard]] virtual Cycles total_queueing() const noexcept = 0;

  [[nodiscard]] virtual int num_nodes() const noexcept = 0;

  /// True when every transaction is observed by all caches (snooping
  /// broadcast). The engine then skips directed forward/invalidate legs:
  /// the request broadcast already reached owner and sharers.
  [[nodiscard]] virtual bool snoops() const noexcept { return false; }
};

/// Creates the transport `config.interconnect` selects, accounting into
/// `stats` (and `metrics` when attached).
[[nodiscard]] std::unique_ptr<Interconnect> make_interconnect(
    const MachineConfig& config, Stats& stats,
    MetricsRegistry* metrics = nullptr);

}  // namespace lssim
