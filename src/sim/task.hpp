// Coroutine task types used to express simulated-processor programs.
//
// A workload "thread" is an ordinary C++20 coroutine returning SimTask<void>.
// Every simulated memory access inside it is a co_await; the scheduler in
// machine/system.hpp resumes the processor whose local clock is earliest,
// which realises a sequentially consistent global interleaving.
//
// SimTask supports nesting (helper coroutines awaited with co_await) via
// continuation chaining with symmetric transfer, so locks, barriers and
// workload subroutines compose naturally.
//
// PORTABILITY WORKAROUND (GCC 12.x): a coroutine whose body contains
// `co_await` inside a *condition* expression — `while (co_await x)`,
// `do {...} while (co_await x)`, `if (co_await x)` — is miscompiled by
// GCC 12 when awaited through symmetric transfer (the child coroutine is
// never entered; verified with a 60-line standalone reproducer). Always
// hoist the await into a named local first:
//     for (;;) { const auto v = co_await p.read(a); if (v != 0) break; }
// Awaits in initializers, call arguments and ordinary binary expressions
// are unaffected.
#pragma once

#include <coroutine>
#include <cstdlib>
#include <exception>
#include <utility>

namespace lssim {

template <typename T>
class SimTask;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> handle) const noexcept {
      auto cont = handle.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
    return {};
  }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  // Workload coroutines must not leak exceptions into the scheduler; a
  // throwing workload is a bug in the simulation setup.
  [[noreturn]] void unhandled_exception() const noexcept { std::abort(); }
};

}  // namespace detail

/// Lazily-started coroutine task. Move-only; owns the coroutine frame.
template <typename T = void>
class [[nodiscard]] SimTask {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    SimTask get_return_object() noexcept {
      return SimTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) noexcept { value = std::move(v); }
  };

  SimTask() noexcept = default;
  SimTask(SimTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  /// Awaiting a SimTask starts the child coroutine and resumes the parent
  /// (via symmetric transfer) once the child co_returns.
  struct Awaiter {
    std::coroutine_handle<promise_type> child;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> parent) const noexcept {
      child.promise().continuation = parent;
      return child;
    }
    T await_resume() const { return std::move(child.promise().value); }
  };
  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

  /// Starts or continues the task from the outside (top-level only).
  void resume() const { handle_.resume(); }
  [[nodiscard]] bool done() const noexcept {
    return !handle_ || handle_.done();
  }
  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }
  [[nodiscard]] std::coroutine_handle<> handle() const noexcept {
    return handle_;
  }
  [[nodiscard]] const T& value() const noexcept {
    return handle_.promise().value;
  }

 private:
  explicit SimTask(std::coroutine_handle<promise_type> handle) noexcept
      : handle_(handle) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] SimTask<void> {
 public:
  struct promise_type : detail::PromiseBase {
    SimTask get_return_object() noexcept {
      return SimTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  SimTask() noexcept = default;
  SimTask(SimTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  struct Awaiter {
    std::coroutine_handle<promise_type> child;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> parent) const noexcept {
      child.promise().continuation = parent;
      return child;
    }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

  void resume() const { handle_.resume(); }
  [[nodiscard]] bool done() const noexcept {
    return !handle_ || handle_.done();
  }
  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }
  [[nodiscard]] std::coroutine_handle<> handle() const noexcept {
    return handle_;
  }

 private:
  explicit SimTask(std::coroutine_handle<promise_type> handle) noexcept
      : handle_(handle) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace lssim
