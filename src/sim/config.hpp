// Machine, protocol and latency configuration (paper Table 1 / Figure 2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace lssim {

/// Which coherence technique the memory system runs. Each kind is backed
/// by a CoherencePolicy implementation (src/core/policies/) resolved
/// through the protocol registry (src/core/protocol_registry.hpp).
///   kBaseline — DASH-like full-map write-invalidate protocol.
///   kAd       — adaptive migratory-sharing optimization
///               (Stenström/Brorsson/Sandberg, ISCA'93); the paper's "AD".
///   kLs       — the paper's load-store protocol extension.
///   kIls      — instruction-centric load-exclusive prediction (related
///               work: Kaxiras/Goodman HPCA'99, Nilsson/Dahlgren
///               ICPP'99); an extension for comparison, see
///               core/ils_predictor.hpp.
///   kLsAd     — LS tagging with AD's migratory detection as fallback
///               (the paper's §6 combination; see
///               core/policies/ls_ad_hybrid_policy.hpp).
///   kMesi     — classic MESI (Illinois): cold reads of uncached blocks
///               return an Exclusive copy; never tags
///               (core/policies/mesi_policy.hpp).
///   kMoesi    — MESI plus an Owned state: a dirty owner services read
///               misses cache-to-cache and keeps the (stale-at-home)
///               block (core/policies/moesi_policy.hpp).
///   kDragon   — write-update (Dragon): writes to shared blocks update
///               the remote copies instead of invalidating them
///               (core/policies/dragon_policy.hpp).
///   kLsMesi   — the paper's LS tagging composed over MESI
///               (core/policies/ls_mesi_policy.hpp).
///   kLsDragon — LS tagging composed over Dragon write-update
///               (core/policies/ls_dragon_policy.hpp).
enum class ProtocolKind : std::uint8_t {
  kBaseline,
  kAd,
  kLs,
  kIls,
  kLsAd,
  kMesi,
  kMoesi,
  kDragon,
  kLsMesi,
  kLsDragon,
};

inline constexpr int kNumProtocolKinds = 10;

/// One row of the protocol-name table: the canonical name (printed by
/// reports, manifests and to_string) plus the lowercase aliases the CLI
/// accepts. This is THE naming table: the protocol registry, the driver's
/// --protocol(s) parsing and the manifest reader all resolve through it,
/// so names round-trip exactly and adding a protocol means adding one row
/// here plus one registration in core/protocol_registry.cpp.
struct ProtocolNameEntry {
  ProtocolKind kind;
  const char* name;     ///< Canonical, e.g. "LS+AD".
  const char* aliases;  ///< Space-separated lowercase extras ("" = none).
};

inline constexpr ProtocolNameEntry kProtocolNameTable[kNumProtocolKinds] = {
    {ProtocolKind::kBaseline, "Baseline", "base wi"},
    {ProtocolKind::kAd, "AD", "migratory"},
    {ProtocolKind::kLs, "LS", ""},
    {ProtocolKind::kIls, "ILS", "instruction"},
    {ProtocolKind::kLsAd, "LS+AD", "lsad ls-ad hybrid"},
    {ProtocolKind::kMesi, "MESI", "illinois"},
    {ProtocolKind::kMoesi, "MOESI", "owned"},
    {ProtocolKind::kDragon, "Dragon", "update write-update"},
    {ProtocolKind::kLsMesi, "LS+MESI", "lsmesi ls-mesi"},
    {ProtocolKind::kLsDragon, "LS+Dragon", "lsdragon ls-dragon"},
};

/// Canonical display name of `kind` (the table's `name` column).
[[nodiscard]] const char* protocol_name(ProtocolKind kind) noexcept;

/// Inverse of protocol_name: resolves a canonical name or alias
/// (case-insensitive) back to the kind. Returns false on unknown names.
bool protocol_from_name(std::string_view text, ProtocolKind* out) noexcept;

[[nodiscard]] inline const char* to_string(ProtocolKind kind) noexcept {
  return protocol_name(kind);
}

/// Geometry of one cache level. Sizes in bytes; direct-mapped is assoc 1.
struct CacheConfig {
  std::uint32_t size_bytes = 0;
  std::uint32_t assoc = 1;
  std::uint32_t block_bytes = 16;

  [[nodiscard]] std::uint32_t num_sets() const noexcept {
    return size_bytes / (assoc * block_bytes);
  }
};

/// Component latencies (cycles), Figure 2 / Table 1. The composition rules
/// live in core/protocol.cpp; with these defaults an uncontended read miss
/// costs exactly 100 (local), 220 (2-hop clean) and 420 (4-hop read-on-
/// dirty) cycles, matching the paper's Table 1.
struct LatencyConfig {
  Cycles l1_access = 1;    ///< L1 hit.
  Cycles l2_access = 10;   ///< L2 tag+data access.
  Cycles l2_readout = 20;  ///< Reading a dirty block out of a remote L2.
  Cycles controller = 20;  ///< One pass through a node's memory controller.
  Cycles memory = 40;      ///< DRAM / directory access (done in parallel).
  Cycles hop = 40;         ///< One network traversal.
  Cycles fill = 10;        ///< Refilling the local cache on reply.
  /// How long a message occupies its source->dest link (contention model).
  Cycles link_occupancy = 8;
};

/// Knobs for the LS / AD techniques (paper §3.1 and §5.5 variations).
struct ProtocolConfig {
  ProtocolKind kind = ProtocolKind::kBaseline;

  /// §5.5: treat every block as tagged from the start (first cold read
  /// returns an exclusive copy).
  bool default_tagged = false;

  /// §5.5: hysteresis depth for tagging. 1 = tag on the first qualifying
  /// event (the paper's default); 2 = require two consecutive events.
  std::uint8_t tag_hysteresis = 1;

  /// §5.5: hysteresis depth for de-tagging (1 = immediate, the default).
  std::uint8_t detag_hysteresis = 1;

  /// §5.5 heuristic: keep the LS bit when an ownership request arrives
  /// that was not preceded by a read from the same processor.
  bool keep_tag_on_lone_write = false;

  /// AD only: the migratory property is dropped when the owning copy is
  /// replaced (the hand-off chain is broken — the fragility the paper's
  /// §3.1 exploits). With false, AD's tag persists across replacements
  /// like the LS bit does; kept as a knob because Stenström et al. leave
  /// the case under-specified. The default reproduces the paper's
  /// measured AD coverage (Table 3).
  bool ad_detag_on_replacement = true;

  /// Fault injection (verification only — never set in experiments):
  /// during a write-update fan-out, trust the directory's believed
  /// sharer set instead of probing each target cache, so a cache that
  /// silently evicted the block (or a non-holder covered by an imprecise
  /// believed set) is re-recorded as a sharer of the resulting Owned
  /// entry. Restores a historical update-propagation bug; exists so the
  /// checker selftests and tests/check/repros/dragon-update-
  /// propagation.repro can prove the invariant checker catches the
  /// class. Inert under invalidation-based protocols.
  bool trust_update_sharers = false;
};

/// Directory organisation. Each kind is backed by a DirectoryPolicy
/// implementation (src/core/directories/) resolved through the directory
/// registry (src/core/directory_registry.hpp).
///   kFullMap      — one presence bit per node (the paper's machine);
///                   exact sharer knowledge, at most kFullMapNodes nodes.
///   kLimitedPtr   — Dir_iB (Agarwal et al., ISCA'88):
///                   `directory_pointers` sharer pointers stored in the
///                   entry; when they overflow, the directory falls back
///                   to broadcast invalidation and loses precise-sharer
///                   knowledge (which also blinds AD's migratory
///                   detection — the LS bit needs no sharer list and is
///                   unaffected).
///   kCoarseVector — coarse bit-vector (Gupta et al.): each presence bit
///                   covers a region of `directory_region` consecutive
///                   nodes; invalidations go to whole regions.
///   kSparse       — sparse directory / directory cache (Gupta et al.,
///                   O'Krafka & Newton): at most `directory_entries`
///                   entries; inserting into a full directory evicts a
///                   victim entry, force-invalidating its cached copies.
enum class DirectoryKind : std::uint8_t {
  kFullMap,
  kLimitedPtr,
  kCoarseVector,
  kSparse,
};

inline constexpr int kNumDirectoryKinds = 4;

/// One row of the directory-name table — the directory registry's
/// equivalent of kProtocolNameTable above, and the same contract: the
/// registry, the driver's --directory/--directories parsing, repro files
/// and the manifest reader all resolve through it. Adding an
/// organisation means adding one row here plus one registration in
/// core/directory_registry.cpp.
struct DirectoryNameEntry {
  DirectoryKind kind;
  const char* name;     ///< Canonical, e.g. "full-map".
  const char* aliases;  ///< Space-separated lowercase extras ("" = none).
};

inline constexpr DirectoryNameEntry kDirectoryNameTable[kNumDirectoryKinds] = {
    {DirectoryKind::kFullMap, "full-map", "fullmap full"},
    {DirectoryKind::kLimitedPtr, "limited-ptr", "limited dir-ib dirib"},
    {DirectoryKind::kCoarseVector, "coarse", "coarse-vector region"},
    {DirectoryKind::kSparse, "sparse", "directory-cache dir-cache"},
};

/// Canonical display name of `kind` (the table's `name` column).
[[nodiscard]] const char* directory_name(DirectoryKind kind) noexcept;

/// Inverse of directory_name: resolves a canonical name or alias
/// (case-insensitive) back to the kind. Returns false on unknown names.
bool directory_from_name(std::string_view text, DirectoryKind* out) noexcept;

[[nodiscard]] inline const char* to_string(DirectoryKind kind) noexcept {
  return directory_name(kind);
}

/// Interconnection topology (paper baseline: fixed-delay point-to-point,
/// i.e. a crossbar; ring and 2D mesh are extensions for sensitivity
/// studies — see net/network.hpp).
enum class Topology : std::uint8_t { kCrossbar, kRing, kMesh2D };

[[nodiscard]] constexpr const char* to_string(Topology t) noexcept {
  switch (t) {
    case Topology::kCrossbar: return "crossbar";
    case Topology::kRing: return "ring";
    case Topology::kMesh2D: return "mesh2d";
  }
  return "?";
}

/// Coherence transport under the transaction engine. Each kind is backed
/// by an Interconnect implementation (src/net/interconnect.hpp) created
/// by make_interconnect().
///   kNetwork — the directory machine's point-to-point network
///              (net/network.hpp); messages route per `topology`.
///   kBus     — a snooping shared bus (net/snoop_bus.hpp): every
///              transaction is broadcast, so directed forward/invalidate
///              legs become free snoop hits and the bus serialises all
///              traffic through one arbiter.
enum class InterconnectKind : std::uint8_t { kNetwork, kBus };

inline constexpr int kNumInterconnectKinds = 2;

/// Bus arbitration discipline under InterconnectKind::kBus (the two
/// service disciplines of the shared-bus reference model).
///   kFcfs       — first-come-first-served: grants in arrival order.
///   kRoundRobin — rotating priority: a contended grant first walks the
///                 rotation from the last grantee to the requester.
enum class BusArbitration : std::uint8_t { kFcfs, kRoundRobin };

/// One row of the interconnect-name table — same contract as
/// kProtocolNameTable / kDirectoryNameTable above: the driver's
/// --interconnect(s) parsing, repro files and the manifest reader all
/// resolve through it.
struct InterconnectNameEntry {
  InterconnectKind kind;
  const char* name;     ///< Canonical, e.g. "network".
  const char* aliases;  ///< Space-separated lowercase extras ("" = none).
};

inline constexpr InterconnectNameEntry
    kInterconnectNameTable[kNumInterconnectKinds] = {
        {InterconnectKind::kNetwork, "network", "directory dir net"},
        {InterconnectKind::kBus, "bus", "snooping snoop shared-bus"},
};

/// Canonical display name of `kind` (the table's `name` column).
[[nodiscard]] const char* interconnect_name(InterconnectKind kind) noexcept;

/// Inverse of interconnect_name: resolves a canonical name or alias
/// (case-insensitive) back to the kind. Returns false on unknown names.
bool interconnect_from_name(std::string_view text,
                            InterconnectKind* out) noexcept;

[[nodiscard]] inline const char* to_string(InterconnectKind kind) noexcept {
  return interconnect_name(kind);
}

[[nodiscard]] constexpr const char* to_string(BusArbitration a) noexcept {
  switch (a) {
    case BusArbitration::kFcfs: return "fcfs";
    case BusArbitration::kRoundRobin: return "round-robin";
  }
  return "?";
}

/// Resolves "fcfs" / "round-robin" (alias "rr", case-insensitive) back
/// to the discipline. Returns false on unknown names.
bool bus_arbitration_from_name(std::string_view text,
                               BusArbitration* out) noexcept;

/// Memory consistency model (paper §6 discussion).
///   kSc — sequential consistency: the processor stalls for the full
///         latency of every L2 miss, reads and writes (paper default).
///   kPc — processor consistency: plain stores retire into a finite
///         per-processor write buffer and only stall when it is full;
///         reads and atomic RMWs remain blocking. Models the paper's
///         prediction that relaxed models shrink the write-stall benefit
///         while the traffic benefit stays.
enum class ConsistencyModel : std::uint8_t { kSc, kPc };

[[nodiscard]] constexpr const char* to_string(ConsistencyModel m) noexcept {
  switch (m) {
    case ConsistencyModel::kSc: return "SC";
    case ConsistencyModel::kPc: return "PC";
  }
  return "?";
}

/// Observability knobs (see src/telemetry/). Both default off; a disabled
/// run pays one null-pointer branch per hook (the event-log pattern).
struct TelemetryConfig {
  /// Registers and maintains the named metrics registry (per-node protocol
  /// event counters, cache/network/directory counters, latency histograms).
  bool metrics = false;

  /// When nonzero, the memory system records the first N coherence
  /// spans/instants for Perfetto export (telemetry/coherence_trace.hpp).
  std::size_t trace_capacity = 0;

  /// When nonzero, the memory system records the last N tag-decision
  /// audit records (tag/de-tag/hysteresis transitions with reason codes)
  /// in a ring for `--audit-out` (telemetry/audit.hpp).
  std::size_t audit_capacity = 0;

  [[nodiscard]] bool any() const noexcept {
    return metrics || trace_capacity > 0 || audit_capacity > 0;
  }
};

/// Whole-machine configuration.
struct MachineConfig {
  int num_nodes = 4;
  std::uint32_t page_bytes = 4096;  ///< Round-robin home interleaving unit.
  CacheConfig l1{4 * 1024, 1, 16};
  CacheConfig l2{64 * 1024, 1, 16};
  LatencyConfig latency;
  ProtocolConfig protocol;
  /// Word size for the Dubois false-sharing classifier; tracking is
  /// enabled per run because it costs memory.
  std::uint32_t word_bytes = 4;
  bool classify_false_sharing = false;

  ConsistencyModel consistency = ConsistencyModel::kSc;
  /// Write-buffer entries per processor under kPc.
  std::uint8_t write_buffer_depth = 8;

  Topology topology = Topology::kCrossbar;

  /// Coherence transport (see InterconnectKind above). `topology` only
  /// applies under kNetwork; the bus ignores it.
  InterconnectKind interconnect = InterconnectKind::kNetwork;
  /// Arbitration discipline under InterconnectKind::kBus.
  BusArbitration bus_arbitration = BusArbitration::kFcfs;

  DirectoryKind directory_scheme = DirectoryKind::kFullMap;
  /// Sharer pointers per entry under kLimitedPtr (Dir_iB); 1..7 (the
  /// pointers share the entry's 64-bit sharer word with a control byte).
  std::uint8_t directory_pointers = 4;
  /// Nodes covered per presence bit under kCoarseVector; 0 = auto
  /// (ceil(num_nodes / 64), the smallest region that fits the machine —
  /// which is 1, i.e. exact full-map behaviour, up to 64 nodes).
  std::uint16_t directory_region = 0;
  /// Directory entries under kSparse; 0 = auto (1024). Inserting past
  /// this bound evicts a victim entry and invalidates its cached copies.
  std::uint32_t directory_entries = 0;

  /// When nonzero, System records an EpochSample of headline counters
  /// every `stats_epoch` simulated cycles (see stats/timeline.hpp).
  Cycles stats_epoch = 0;

  /// When nonzero, the memory system retains the last N protocol events
  /// in a ring for debugging (see core/event_log.hpp).
  std::size_t event_log_capacity = 0;

  /// Observability: metrics registry and coherence-trace recording.
  TelemetryConfig telemetry;

  /// Attach the protocol invariant checker (src/check/invariants.hpp) to
  /// the memory system and verify SWMR / data-value / directory-cache
  /// agreement / LS-tag consistency after every access. Off (default)
  /// costs one pointer compare per access; on costs a full directory ×
  /// cache scan per access — a verification mode, not a measurement mode.
  bool check_invariants = false;

  /// Watchdog: when nonzero, System::run() stops once any processor's
  /// clock passes this budget and reports timed_out() — turning workload
  /// livelocks (e.g. an unfair lock under a pathological schedule) into
  /// a diagnosable condition instead of a hung process.
  Cycles max_cycles = 0;

  /// Baseline configuration used for the scientific applications
  /// (paper §4.2): 4 kB DM L1, 64 kB DM L2, 16-byte blocks.
  [[nodiscard]] static MachineConfig scientific_default(
      ProtocolKind kind = ProtocolKind::kBaseline, int nodes = 4);

  /// OLTP configuration (paper §4.2): 64 kB 2-way L1, 512 kB DM L2,
  /// 32-byte blocks.
  [[nodiscard]] static MachineConfig oltp_default(
      ProtocolKind kind = ProtocolKind::kBaseline, int nodes = 4);

  /// Validates invariants (power-of-two geometry, node count); returns an
  /// empty string when valid, otherwise a description of the problem.
  [[nodiscard]] std::string validate() const;
};

}  // namespace lssim
