// Fundamental simulator-wide types.
//
// The simulator models a CC-NUMA multiprocessor in *simulated* time; all
// quantities here are about the simulated machine, never about host time.
#pragma once

#include <cstdint>
#include <limits>

namespace lssim {

/// Simulated physical address (byte granularity).
using Addr = std::uint64_t;

/// Simulated time, in processor clock cycles.
using Cycles = std::uint64_t;

/// Node (processor/memory-module) identifier. 16 bits so machines larger
/// than 255 nodes are representable alongside the invalid sentinel.
using NodeId = std::uint16_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Machine-size ceiling. Directory organisations bound what is actually
/// reachable: the full-map organisation tracks at most kFullMapNodes
/// (one presence bit per node in a 64-bit word); limited-pointer, coarse
/// bit-vector and sparse organisations scale to kMaxNodes (see
/// core/directory_policy.hpp).
inline constexpr int kMaxNodes = 256;

/// Node ceiling of the full-map directory organisation (and of features
/// that use per-node 64-bit masks, e.g. the Dubois false-sharing
/// classifier).
inline constexpr int kFullMapNodes = 64;

/// Kind of data access issued by a processor.
enum class AccessType : std::uint8_t { kRead, kWrite };

/// Which part of the workload issued an access. Mirrors the paper's
/// Table 2 split of the OLTP workload into MySQL / libraries / OS; other
/// workloads use kApp only.
enum class StreamTag : std::uint8_t { kApp = 0, kLibrary = 1, kOs = 2 };
inline constexpr int kNumStreamTags = 3;

[[nodiscard]] constexpr const char* to_string(StreamTag tag) noexcept {
  switch (tag) {
    case StreamTag::kApp: return "app";
    case StreamTag::kLibrary: return "library";
    case StreamTag::kOs: return "os";
  }
  return "?";
}

}  // namespace lssim
