// Fundamental simulator-wide types.
//
// The simulator models a CC-NUMA multiprocessor in *simulated* time; all
// quantities here are about the simulated machine, never about host time.
#pragma once

#include <cstdint>
#include <limits>

namespace lssim {

/// Simulated physical address (byte granularity).
using Addr = std::uint64_t;

/// Simulated time, in processor clock cycles.
using Cycles = std::uint64_t;

/// Node (processor/memory-module) identifier. The full-map directory
/// supports up to 64 nodes.
using NodeId = std::uint8_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr int kMaxNodes = 64;

/// Kind of data access issued by a processor.
enum class AccessType : std::uint8_t { kRead, kWrite };

/// Which part of the workload issued an access. Mirrors the paper's
/// Table 2 split of the OLTP workload into MySQL / libraries / OS; other
/// workloads use kApp only.
enum class StreamTag : std::uint8_t { kApp = 0, kLibrary = 1, kOs = 2 };
inline constexpr int kNumStreamTags = 3;

[[nodiscard]] constexpr const char* to_string(StreamTag tag) noexcept {
  switch (tag) {
    case StreamTag::kApp: return "app";
    case StreamTag::kLibrary: return "library";
    case StreamTag::kOs: return "os";
  }
  return "?";
}

}  // namespace lssim
