// Deterministic pseudo-random number generation for workloads.
//
// Simulations must be bit-for-bit reproducible across runs and platforms,
// so we implement xoshiro256** (public domain, Blackman & Vigna) rather
// than relying on implementation-defined std::mt19937 distributions.
#pragma once

#include <array>
#include <cstdint>

namespace lssim {

/// xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64
  /// so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t next_range(std::uint64_t lo,
                                         std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool next_bool(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lssim
