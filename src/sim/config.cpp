#include "sim/config.hpp"

#include <bit>
#include <cctype>

namespace lssim {
namespace {

/// Case-insensitive comparison of `text` against a NUL-terminated name.
bool iequals(std::string_view text, const char* name) noexcept {
  for (char c : text) {
    if (*name == '\0' ||
        std::tolower(static_cast<unsigned char>(c)) !=
            std::tolower(static_cast<unsigned char>(*name))) {
      return false;
    }
    ++name;
  }
  return *name == '\0';
}

/// Matches `text` against space-separated `aliases` (already lowercase).
bool matches_alias(std::string_view text, const char* aliases) noexcept {
  std::string_view rest(aliases);
  while (!rest.empty()) {
    const std::size_t space = rest.find(' ');
    const std::string_view alias = rest.substr(0, space);
    if (alias.size() == text.size()) {
      bool equal = true;
      for (std::size_t i = 0; i < text.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(text[i])) != alias[i]) {
          equal = false;
          break;
        }
      }
      if (equal) {
        return true;
      }
    }
    if (space == std::string_view::npos) {
      break;
    }
    rest.remove_prefix(space + 1);
  }
  return false;
}

}  // namespace

const char* directory_name(DirectoryKind kind) noexcept {
  for (const DirectoryNameEntry& entry : kDirectoryNameTable) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

bool directory_from_name(std::string_view text, DirectoryKind* out) noexcept {
  if (text.empty()) {
    return false;
  }
  for (const DirectoryNameEntry& entry : kDirectoryNameTable) {
    if (iequals(text, entry.name) || matches_alias(text, entry.aliases)) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

const char* interconnect_name(InterconnectKind kind) noexcept {
  for (const InterconnectNameEntry& entry : kInterconnectNameTable) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

bool interconnect_from_name(std::string_view text,
                            InterconnectKind* out) noexcept {
  if (text.empty()) {
    return false;
  }
  for (const InterconnectNameEntry& entry : kInterconnectNameTable) {
    if (iequals(text, entry.name) || matches_alias(text, entry.aliases)) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

bool bus_arbitration_from_name(std::string_view text,
                               BusArbitration* out) noexcept {
  if (iequals(text, "fcfs")) {
    *out = BusArbitration::kFcfs;
    return true;
  }
  if (iequals(text, "round-robin") || iequals(text, "rr")) {
    *out = BusArbitration::kRoundRobin;
    return true;
  }
  return false;
}

const char* protocol_name(ProtocolKind kind) noexcept {
  for (const ProtocolNameEntry& entry : kProtocolNameTable) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

bool protocol_from_name(std::string_view text, ProtocolKind* out) noexcept {
  if (text.empty()) {
    return false;
  }
  for (const ProtocolNameEntry& entry : kProtocolNameTable) {
    if (iequals(text, entry.name) || matches_alias(text, entry.aliases)) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

MachineConfig MachineConfig::scientific_default(ProtocolKind kind,
                                                int nodes) {
  MachineConfig config;
  config.num_nodes = nodes;
  config.l1 = CacheConfig{4 * 1024, 1, 16};
  config.l2 = CacheConfig{64 * 1024, 1, 16};
  config.protocol.kind = kind;
  return config;
}

MachineConfig MachineConfig::oltp_default(ProtocolKind kind, int nodes) {
  MachineConfig config;
  config.num_nodes = nodes;
  config.l1 = CacheConfig{64 * 1024, 2, 32};
  config.l2 = CacheConfig{512 * 1024, 1, 32};
  config.protocol.kind = kind;
  return config;
}

std::string MachineConfig::validate() const {
  if (num_nodes < 1 || num_nodes > kMaxNodes) {
    return "num_nodes must be in [1, 256]";
  }
  if (directory_scheme == DirectoryKind::kFullMap &&
      num_nodes > kFullMapNodes) {
    return "full-map directory supports at most 64 nodes (use the "
           "limited-ptr, coarse or sparse organisation)";
  }
  if (directory_scheme == DirectoryKind::kLimitedPtr &&
      (directory_pointers < 1 || directory_pointers > 7)) {
    return "directory_pointers must be in [1, 7] (Dir_iB pointers share "
           "the entry's sharer word with a control byte)";
  }
  if (directory_scheme == DirectoryKind::kCoarseVector &&
      directory_region != 0 &&
      static_cast<int>(directory_region) * kFullMapNodes < num_nodes) {
    return "directory_region too small: 64 region bits must cover every "
           "node (region * 64 >= num_nodes)";
  }
  if (classify_false_sharing && num_nodes > kFullMapNodes) {
    return "classify_false_sharing tracks per-node word masks in 64-bit "
           "words and requires num_nodes <= 64";
  }
  if (!std::has_single_bit(page_bytes)) {
    return "page_bytes must be a power of two";
  }
  for (const CacheConfig* cache : {&l1, &l2}) {
    if (cache->size_bytes == 0 || cache->assoc == 0 ||
        cache->block_bytes == 0) {
      return "cache geometry fields must be nonzero";
    }
    if (!std::has_single_bit(cache->block_bytes) ||
        !std::has_single_bit(cache->num_sets())) {
      return "cache block size and set count must be powers of two";
    }
    if (cache->size_bytes % (cache->assoc * cache->block_bytes) != 0) {
      return "cache size must be divisible by assoc * block size";
    }
    if (cache->block_bytes > 256) {
      return "block size above 256 bytes is not supported";
    }
  }
  if (l1.block_bytes != l2.block_bytes) {
    return "L1 and L2 must use the same block size (inclusive hierarchy)";
  }
  if (l2.size_bytes < l1.size_bytes) {
    return "L2 must be at least as large as L1 (inclusive hierarchy)";
  }
  if (word_bytes == 0 || !std::has_single_bit(word_bytes) ||
      word_bytes > l1.block_bytes) {
    return "word_bytes must be a power of two no larger than a block";
  }
  if (protocol.tag_hysteresis == 0 || protocol.detag_hysteresis == 0) {
    return "hysteresis depths must be at least 1";
  }
  if (protocol.tag_hysteresis > 7 || protocol.detag_hysteresis > 7) {
    return "hysteresis depths above 7 are not supported (3-bit progress "
           "counters in DirEntry)";
  }
  return {};
}

}  // namespace lssim
