#include "sim/rng.hpp"

namespace lssim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

constexpr std::uint64_t splitmix64(std::uint64_t& s) noexcept {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& word : state_) {
    word = splitmix64(seed);
  }
  // All-zero state is the single invalid state of xoshiro; SplitMix64
  // cannot produce four zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection-free mapping is fine here: the bias for
  // bound << 2^64 is far below anything a simulation could observe.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace lssim
