// LU: dense LU decomposition without pivoting, 256x256 doubles
// (paper §5.3).
//
// Columns are owned round-robin by processors; the matrix is stored
// row-major, so with 16-byte blocks two adjacent columns (owned by
// *different* processors) share every cache block. Each elimination step
// k the owner of column k scales it, everyone synchronizes at a barrier,
// then every processor updates its own columns j > k. The interleaved
// per-element read-modify-writes by different owners within one block
// create the false-sharing "illusion of migratory behaviour" the paper
// reports for LU at 4 processors.
#pragma once

#include <cstdint>

#include "machine/system.hpp"

namespace lssim {

struct LuParams {
  int n = 256;  ///< Paper: 256x256 matrix.
  std::uint64_t seed = 3;
  Cycles compute_per_update = 10;  ///< Modelled FP work per inner update.
};

/// Allocates the matrix on `sys` and spawns one program per processor.
void build_lu(System& sys, const LuParams& params);

}  // namespace lssim
