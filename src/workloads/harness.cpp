#include "workloads/harness.hpp"

#include "exec/parallel_executor.hpp"

namespace lssim {

RunResult collect(System& sys) {
  return collect(sys.config(), sys.stats(), sys.memory(), sys.exec_time());
}

RunResult collect(const MachineConfig& config, const Stats& stats,
                  MemorySystem& memory, Cycles exec_time) {
  RunResult result;
  result.protocol = config.protocol.kind;
  result.directory = config.directory_scheme;
  result.interconnect = config.interconnect;
  result.exec_time = exec_time;
  result.time = stats.time_total();
  for (int c = 0; c < kNumMsgClasses; ++c) {
    result.traffic[static_cast<std::size_t>(c)] =
        stats.messages_of_class(static_cast<MsgClass>(c));
  }
  result.traffic_total = stats.messages_total();
  result.read_miss_home = stats.read_miss_home_state;
  result.global_read_misses = stats.global_read_misses;
  result.global_write_actions = stats.global_write_actions;
  result.ownership_acquisitions = stats.ownership_acquisitions;
  result.invalidations = stats.invalidations_sent;
  result.single_invalidations = stats.single_invalidations;
  result.eliminated_acquisitions = stats.eliminated_acquisitions;
  result.update_transactions = stats.update_transactions;
  result.updates_sent = stats.updates_sent;
  result.data_misses = stats.data_misses;
  result.coherence_misses = stats.coherence_misses;
  result.false_sharing_misses = stats.false_sharing_misses;
  result.accesses = stats.accesses;
  result.l1_hits = stats.l1_hits;
  result.l2_hits = stats.l2_hits;
  result.blocks_tagged = stats.blocks_tagged;
  result.blocks_detagged = stats.blocks_detagged;
  result.dir_entry_evictions = stats.dir_entry_evictions;
  LoadStoreOracle& oracle = memory.oracle();
  result.oracle_total = oracle.total();
  for (int t = 0; t < kNumStreamTags; ++t) {
    result.oracle_by_tag[static_cast<std::size_t>(t)] =
        oracle.counters(static_cast<StreamTag>(t));
  }
  return result;
}

RunResult run_experiment(const MachineConfig& config,
                         const WorkloadBuilder& build, std::uint64_t seed) {
  return run_experiment(config, build, seed, nullptr);
}

RunResult run_experiment(const MachineConfig& config,
                         const WorkloadBuilder& build, std::uint64_t seed,
                         const RunInspector& inspect) {
  System sys(config, seed);
  build(sys);
  sys.run();
  RunResult result = collect(sys);
  if (inspect) {
    inspect(sys);
  }
  return result;
}

std::vector<RunResult> run_experiments(const MachineConfig& config,
                                       const WorkloadBuilder& build,
                                       std::span<const ProtocolKind> kinds,
                                       std::uint64_t seed, int jobs) {
  return parallel_map<RunResult>(kinds.size(), jobs, [&](std::size_t i) {
    MachineConfig cfg = config;
    cfg.protocol.kind = kinds[i];
    return run_experiment(cfg, build, seed);
  });
}

}  // namespace lssim
