#include "workloads/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "mem/shared_heap.hpp"
#include "sim/rng.hpp"
#include "sync/barrier.hpp"
#include "sync/spinlock.hpp"
#include "sync/task_queue.hpp"

namespace lssim {
namespace {

// Right-looking column Cholesky in the SPLASH style: per-processor task
// queues with data affinity and work stealing. Column k is owned by
// processor owner(k); both its cdiv task and all cmod(k, j) tasks are
// pushed to the owner's queue, so (at low processor counts) a column is
// read-modify-written by the *same* processor every visit, with the
// blocks evicted in between visits by the owner's other columns — the
// non-migratory load-store sequences of paper §5.2 that AD cannot detect
// and LS eliminates. At higher processor counts stealing and queue
// contention introduce the migration the paper observes at 16-32p.
//
// Task encoding in the 32-bit queue slots:
//   cdiv(k):    0x80000000 | k
//   cmod(k, j): (j << 15) | k        (requires n < 32768)
constexpr std::uint32_t kCdivFlag = 0x80000000u;

struct CholeskyContext {
  CholeskyParams params;
  int window = 0;
  int chunk = 1;  ///< Columns per ownership chunk.
  SharedArray<std::uint64_t> band;       ///< Column-major packed storage.
  SharedArray<std::uint32_t> mods_done;  ///< cmods applied into column k.
  SharedArray<std::uint32_t> col_locks;  ///< One lock word per column.
  Addr done_count = 0;                   ///< Completed-column counter.
  std::vector<std::unique_ptr<TaskQueue>> queues;  ///< One per processor.
  std::unique_ptr<Barrier> barrier;

  // Dependency structure (host-side mirror; the simulated program reads
  // the flattened read-only copy in succ_list).
  std::vector<std::vector<int>> succ;
  std::vector<int> needed;
  SharedArray<std::uint32_t> succ_list;
  std::vector<std::uint32_t> succ_offset;

  [[nodiscard]] Addr elem(int j, int r) const {
    return band.addr(static_cast<std::uint64_t>(j) * params.bandwidth +
                     static_cast<std::uint64_t>(r));
  }
  [[nodiscard]] NodeId owner(int k, int nprocs) const {
    return static_cast<NodeId>((k / chunk) % nprocs);
  }
};

void build_structure(CholeskyContext& ctx, int nprocs) {
  const CholeskyParams& p = ctx.params;
  ctx.succ.assign(static_cast<std::size_t>(p.n), {});
  ctx.needed.assign(static_cast<std::size_t>(p.n), 0);
  Rng rng(p.seed * 0x9e3779b9u + 1);
  const int chunk = ctx.chunk;
  for (int j = 0; j < p.n; ++j) {
    auto& list = ctx.succ[static_cast<std::size_t>(j)];
    if (p.mode == CholeskyMode::kDenseBand) {
      for (int k = j + 1; k < std::min(p.n, j + p.bandwidth); ++k) {
        list.push_back(k);
      }
    } else {
      // Clustered successors inside one ownership chunk, usually a chunk
      // owned by the same processor (tk15.0 subtree locality): a
      // completed column then has at most one or two reader processors,
      // while the columns feeding INTO any k remain scattered across the
      // window, keeping its visits far apart in time.
      const int first_chunk = j / chunk;  // j's own chunk is allowed
      const int last_chunk =
          std::min((p.n - 1) / chunk, (j + ctx.window) / chunk);
      if (first_chunk <= last_chunk) {
        const int my_owner = (j / chunk) % nprocs;
        const bool want_local = rng.next_bool(p.locality);
        int target = -1;
        for (int attempt = 0; attempt < 8 && target < 0; ++attempt) {
          const int cand =
              first_chunk +
              static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                  last_chunk - first_chunk + 1)));
          if (!want_local || cand % nprocs == my_owner) {
            target = cand;
          }
        }
        if (target < 0) {
          target = first_chunk +
                   static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                       last_chunk - first_chunk + 1)));
        }
        const int max_off = std::max(0, chunk - p.successors);
        const int off =
            static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(max_off) + 1));
        for (int s = 0; s < p.successors; ++s) {
          const int k = target * chunk + off + s;
          if (k > j && k < p.n) {
            list.push_back(k);
          }
        }
      }
    }
    for (int k : list) {
      ctx.needed[static_cast<std::size_t>(k)] += 1;
    }
  }
}

SimTask<void> do_cdiv(System& sys, std::shared_ptr<CholeskyContext> ctx,
                      NodeId id, int j) {
  Processor& proc = sys.proc(id);
  const CholeskyParams& p = ctx->params;
  const int jcols = p.mode == CholeskyMode::kDenseBand
                        ? std::min(p.bandwidth, p.n - j)
                        : p.bandwidth;
  const double diag = from_bits(co_await proc.read(ctx->elem(j, 0), 8));
  const double root = std::sqrt(std::fabs(diag)) + 1e-30;
  proc.compute(24);
  co_await proc.write(ctx->elem(j, 0), to_bits(root), 8);
  for (int r = 1; r < jcols; ++r) {
    const double v = from_bits(co_await proc.read(ctx->elem(j, r), 8));
    proc.compute(p.compute_per_update);
    co_await proc.write(ctx->elem(j, r), to_bits(v / root), 8);
  }
  // Fan the cmod tasks out to the owners of the destination columns.
  const std::uint32_t base = ctx->succ_offset[static_cast<std::size_t>(j)];
  const int count =
      static_cast<int>(ctx->succ[static_cast<std::size_t>(j)].size());
  const int nprocs = sys.num_procs();
  for (int s = 0; s < count; ++s) {
    const int k = static_cast<int>(
        co_await proc.read(ctx->succ_list.addr(base + s)));
    const std::uint32_t encoded =
        (static_cast<std::uint32_t>(j) << 15) |
        static_cast<std::uint32_t>(k);
    (void)co_await ctx->queues[ctx->owner(k, nprocs)]->push(proc, encoded);
  }
}

SimTask<void> do_cmod(System& sys, std::shared_ptr<CholeskyContext> ctx,
                      NodeId id, int k, int j) {
  Processor& proc = sys.proc(id);
  const CholeskyParams& p = ctx->params;
  const bool dense = p.mode == CholeskyMode::kDenseBand;
  const int len = p.bandwidth;
  const int jcols = dense ? std::min(len, p.n - j) : len;

  const SpinLock col_lock(
      ctx->col_locks.addr(static_cast<std::uint64_t>(k)));
  co_await col_lock.acquire(proc);
  if (dense) {
    // True banded cmod: A(r, k) -= L(r, j) * L(k, j), in packed slots.
    const int kcols = std::min(len, p.n - k);
    const double l_kj =
        from_bits(co_await proc.read(ctx->elem(j, k - j), 8));
    for (int r = 0; r < kcols && k - j + r < jcols; ++r) {
      const double l_rj =
          from_bits(co_await proc.read(ctx->elem(j, k - j + r), 8));
      const double a_rk = from_bits(co_await proc.read(ctx->elem(k, r), 8));
      proc.compute(p.compute_per_update);
      co_await proc.write(ctx->elem(k, r), to_bits(a_rk - l_rj * l_kj), 8);
    }
  } else {
    // Synthetic sparse cmod: elementwise column update (real FP work,
    // not a true factorization; see header).
    const double l_kj = from_bits(co_await proc.read(ctx->elem(j, 0), 8));
    for (int r = 0; r < len; ++r) {
      const double l_rj = from_bits(co_await proc.read(ctx->elem(j, r), 8));
      const double a_rk = from_bits(co_await proc.read(ctx->elem(k, r), 8));
      proc.compute(p.compute_per_update);
      co_await proc.write(ctx->elem(k, r),
                          to_bits(a_rk - l_rj * l_kj * 1e-3), 8);
    }
  }
  co_await col_lock.release(proc);

  // Publish the modification; the last one schedules cdiv(k) on the
  // owner's queue.
  const std::uint64_t done = co_await proc.fetch_add(
      ctx->mods_done.addr(static_cast<std::uint64_t>(k)), 1);
  if (done + 1 ==
      static_cast<std::uint64_t>(ctx->needed[static_cast<std::size_t>(k)])) {
    (void)co_await ctx->queues[ctx->owner(k, sys.num_procs())]->push(
        proc, kCdivFlag | static_cast<std::uint32_t>(k));
  }
}

SimTask<void> cholesky_program(System& sys,
                               std::shared_ptr<CholeskyContext> ctx,
                               NodeId id) {
  Processor& proc = sys.proc(id);
  const CholeskyParams& p = ctx->params;
  const int n = p.n;
  const int nprocs = sys.num_procs();

  // Processor 0 seeds the matrix, publishes the read-only successor
  // lists, and schedules the dependency-free columns on their owners.
  if (id == 0) {
    const bool dense = p.mode == CholeskyMode::kDenseBand;
    for (int j = 0; j < n; ++j) {
      const int cols = dense ? std::min(p.bandwidth, n - j) : p.bandwidth;
      for (int r = 0; r < cols; ++r) {
        const double value =
            (r == 0) ? 2.0 * p.bandwidth : 1.0 / (1.0 + r);
        co_await proc.write(ctx->elem(j, r), to_bits(value), 8);
      }
    }
    std::uint32_t cursor = 0;
    for (int j = 0; j < n; ++j) {
      for (int k : ctx->succ[static_cast<std::size_t>(j)]) {
        co_await proc.write(ctx->succ_list.addr(cursor++),
                            static_cast<std::uint64_t>(k));
      }
    }
    for (int k = 0; k < n; ++k) {
      if (ctx->needed[static_cast<std::size_t>(k)] == 0) {
        (void)co_await ctx->queues[ctx->owner(k, nprocs)]->push(
            proc, kCdivFlag | static_cast<std::uint32_t>(k));
      }
    }
  }
  co_await ctx->barrier->wait(proc);

  int empty_polls = 0;
  for (;;) {
    const std::uint64_t finished = co_await proc.read(ctx->done_count);
    if (finished == static_cast<std::uint64_t>(n)) {
      break;  // Factorization complete.
    }
    // Own queue first; steal only as a last resort (after several empty
    // polls) so column-processor affinity survives transient droughts.
    std::int64_t task = co_await ctx->queues[id]->pop(proc);
    if (task < 0 && ++empty_polls >= 10) {
      for (int offset = 1; task < 0 && offset < nprocs; ++offset) {
        task = co_await ctx->queues[(id + offset) % nprocs]->pop(proc);
      }
    }
    if (task < 0) {
      proc.compute(120 + proc.rng().next_below(120));
      continue;
    }
    empty_polls = 0;
    const auto encoded = static_cast<std::uint32_t>(task);
    if ((encoded & kCdivFlag) != 0) {
      const int j = static_cast<int>(encoded & ~kCdivFlag);
      co_await do_cdiv(sys, ctx, id, j);
      (void)co_await proc.fetch_add(ctx->done_count, 1);
    } else {
      const int k = static_cast<int>(encoded & 0x7fffu);
      const int j = static_cast<int>(encoded >> 15);
      co_await do_cmod(sys, ctx, id, k, j);
    }
  }
}

}  // namespace

void build_cholesky(System& sys, const CholeskyParams& params) {
  auto ctx = std::make_shared<CholeskyContext>();
  ctx->params = params;
  ctx->window =
      params.window > 0 ? params.window : std::max(2, params.n / 2);
  // Ownership granularity: contiguous runs of columns per processor,
  // like SPLASH's panel placement; wide enough to hold one successor run.
  ctx->chunk = std::max(8, params.successors + 2);
  build_structure(*ctx, sys.num_procs());

  std::uint64_t total_succ = 0;
  ctx->succ_offset.resize(static_cast<std::size_t>(params.n));
  for (int j = 0; j < params.n; ++j) {
    ctx->succ_offset[static_cast<std::size_t>(j)] =
        static_cast<std::uint32_t>(total_succ);
    total_succ += ctx->succ[static_cast<std::size_t>(j)].size();
  }

  ctx->band = SharedArray<std::uint64_t>(
      sys.heap(),
      static_cast<std::uint64_t>(params.n) * params.bandwidth, 16);
  ctx->mods_done = SharedArray<std::uint32_t>(
      sys.heap(), static_cast<std::uint64_t>(params.n), 4);
  ctx->col_locks = SharedArray<std::uint32_t>(
      sys.heap(), static_cast<std::uint64_t>(params.n), 4);
  ctx->done_count = sys.heap().alloc(4, 4);
  ctx->succ_list = SharedArray<std::uint32_t>(
      sys.heap(), std::max<std::uint64_t>(total_succ, 1), 4);
  for (int q = 0; q < sys.num_procs(); ++q) {
    // Queue capacity: every cmod plus every cdiv could momentarily sit in
    // one queue.
    ctx->queues.push_back(std::make_unique<TaskQueue>(
        sys.heap(),
        static_cast<std::uint32_t>(total_succ + params.n + 1)));
  }
  ctx->barrier = std::make_unique<Barrier>(sys.heap(), sys.num_procs());

  for (int n = 0; n < sys.num_procs(); ++n) {
    sys.spawn(static_cast<NodeId>(n),
              cholesky_program(sys, ctx, static_cast<NodeId>(n)));
  }
  sys.retain(ctx);
}

}  // namespace lssim
