#include "workloads/lu.hpp"

#include <memory>

#include "mem/shared_heap.hpp"
#include "sync/barrier.hpp"

namespace lssim {
namespace {

struct LuContext {
  LuParams params;
  SharedArray<std::uint64_t> matrix;  ///< Row-major n*n doubles.
  std::unique_ptr<Barrier> barrier;

  [[nodiscard]] Addr elem(int i, int j) const {
    return matrix.addr(static_cast<std::uint64_t>(i) * params.n +
                       static_cast<std::uint64_t>(j));
  }
};

SimTask<void> lu_program(System& sys, std::shared_ptr<LuContext> ctx,
                         NodeId id) {
  Processor& proc = sys.proc(id);
  const int nprocs = sys.num_procs();
  const int n = ctx->params.n;

  // Initialise owned columns (column j belongs to processor j mod P):
  // diagonally dominant so elimination without pivoting is stable.
  for (int j = id; j < n; j += nprocs) {
    for (int i = 0; i < n; ++i) {
      const double value =
          (i == j) ? 2.0 * n
                   : 1.0 / (1.0 + static_cast<double>((i * 31 + j * 17) %
                                                      97));
      co_await proc.write(ctx->elem(i, j), to_bits(value), 8);
    }
  }
  co_await ctx->barrier->wait(proc);

  for (int k = 0; k < n - 1; ++k) {
    if (k % nprocs == id) {
      // Compute the multipliers of column k.
      const double pivot = from_bits(co_await proc.read(ctx->elem(k, k), 8));
      for (int i = k + 1; i < n; ++i) {
        const double a_ik = from_bits(co_await proc.read(ctx->elem(i, k), 8));
        proc.compute(ctx->params.compute_per_update);
        co_await proc.write(ctx->elem(i, k), to_bits(a_ik / pivot), 8);
      }
    }
    co_await ctx->barrier->wait(proc);

    // Update owned columns j > k.
    for (int j = k + 1; j < n; ++j) {
      if (j % nprocs != id) continue;
      const double a_kj = from_bits(co_await proc.read(ctx->elem(k, j), 8));
      for (int i = k + 1; i < n; ++i) {
        const double l_ik = from_bits(co_await proc.read(ctx->elem(i, k), 8));
        const double a_ij = from_bits(co_await proc.read(ctx->elem(i, j), 8));
        proc.compute(ctx->params.compute_per_update);
        co_await proc.write(ctx->elem(i, j), to_bits(a_ij - l_ik * a_kj), 8);
      }
    }
    co_await ctx->barrier->wait(proc);
  }
}

}  // namespace

void build_lu(System& sys, const LuParams& params) {
  auto ctx = std::make_shared<LuContext>();
  ctx->params = params;
  ctx->matrix = SharedArray<std::uint64_t>(
      sys.heap(),
      static_cast<std::uint64_t>(params.n) * params.n, 16);
  ctx->barrier = std::make_unique<Barrier>(sys.heap(), sys.num_procs());

  for (int n = 0; n < sys.num_procs(); ++n) {
    sys.spawn(static_cast<NodeId>(n),
              lu_program(sys, ctx, static_cast<NodeId>(n)));
  }
  sys.retain(ctx);
}

}  // namespace lssim
