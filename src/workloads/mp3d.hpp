// MP3D: particle-based wind-tunnel simulation (SPLASH), reimplemented for
// its memory behaviour (paper §5.1).
//
// Particles are statically partitioned across processors; each step every
// processor moves its particles (read-modify-writes on 32-byte particle
// records) and accumulates collisions into the space-cell array. Cell
// records are one cache block each and are updated by whichever processor
// owns the particle currently in the cell — the classic migratory-sharing
// pattern Gupta/Weber identified in MP3D. A shared reservoir counter adds
// a high-contention migratory word. Steps are separated by a barrier.
#pragma once

#include <cstdint>

#include "machine/system.hpp"

namespace lssim {

struct Mp3dParams {
  int particles = 10000;  ///< Paper: 10 k particles.
  int steps = 10;         ///< Paper: 10 time steps.
  int cells_x = 14;
  int cells_y = 24;
  int cells_z = 7;
  std::uint64_t seed = 42;
  Cycles compute_per_particle = 80;  ///< Modelled FP work per move.
};

/// Allocates MP3D's shared data on `sys` and spawns one program per
/// processor. Call before System::run().
void build_mp3d(System& sys, const Mp3dParams& params);

}  // namespace lssim
