#include "workloads/oltp.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "mem/shared_heap.hpp"
#include "sync/barrier.hpp"
#include "sync/spinlock.hpp"

namespace lssim {
namespace {

// Record layouts (bytes). 16-byte records put two tellers / branches into
// one 32-byte OLTP cache block: deliberate false sharing (paper Table 4).
constexpr std::uint64_t kRecordWords = 2;  // 2 x 8B.

struct OltpContext {
  OltpParams params;
  int tellers = 0;

  // --- database (app) --------------------------------------------------
  SharedArray<std::uint64_t> branch_recs;
  SharedArray<std::uint64_t> teller_recs;
  SharedArray<std::uint64_t> account_recs;
  SharedArray<std::uint64_t> index_root;      // 16 words, read-shared.
  SharedArray<std::uint64_t> index_interior;  // 64 nodes x 1 word.
  SharedArray<std::uint64_t> index_leaf;      // 1024 leaf words.
  Addr history_tail = 0;
  SharedArray<std::uint64_t> history;
  SharedArray<std::uint64_t> bufpool_frames;  // Frame metadata words.
  Addr bufpool_clock = 0;
  // ISAM key-cache block headers: one word per 256-account page, read-
  // modify-written on every update. Constantly reused by all processors
  // but evicted between uses (the array exceeds the scaled cache), so
  // its migration is invisible to live-copy detection — the paper's
  // "changing access behavior" metadata. Four headers share a cache
  // block: genuine false sharing (Table 4).
  SharedArray<std::uint64_t> key_cache;

  // --- lock manager (library) ------------------------------------------
  // 256 TATAS lock words, one cache block apart (a packed lock table
  // would add false sharing between unrelated spinners).
  SharedArray<std::uint32_t> lock_table;
  Addr alloc_freelist = 0;  // Shared allocator head.

  [[nodiscard]] Addr lock_addr(std::uint32_t resource) const {
    return lock_table.addr(static_cast<std::uint64_t>(resource & 255u) *
                           kLockStrideWords);
  }
  static constexpr std::uint64_t kLockStrideWords = 64;  // 256 B apart.

  // --- operating system (os) -------------------------------------------
  std::unique_ptr<TicketLock> runqueue_lock;
  Addr ready_count = 0;
  // Per-CPU usage slots, one cache block apart (per-CPU data is padded
  // even in 1990s kernels).
  SharedArray<std::uint64_t> cpu_usage;
  static constexpr std::uint64_t kCpuStrideWords = 32;  // 256 B apart.
  [[nodiscard]] Addr cpu_slot(int cpu) const {
    return cpu_usage.addr(static_cast<std::uint64_t>(cpu) *
                          kCpuStrideWords);
  }

  std::unique_ptr<Barrier> barrier;

  [[nodiscard]] Addr rec(const SharedArray<std::uint64_t>& table,
                         int id) const {
    return table.addr(static_cast<std::uint64_t>(id) * kRecordWords);
  }
};

// TATAS acquire/release on a lock-table word, tagged as library code.
SimTask<void> lock_acquire(Processor& proc, const OltpContext& ctx,
                           std::uint32_t resource) {
  const SpinLock lock(ctx.lock_addr(resource));
  const StreamTag saved = proc.stream();
  proc.set_stream(StreamTag::kLibrary);
  co_await lock.acquire(proc);
  proc.set_stream(saved);
}

SimTask<void> lock_release(Processor& proc, const OltpContext& ctx,
                           std::uint32_t resource) {
  const SpinLock lock(ctx.lock_addr(resource));
  const StreamTag saved = proc.stream();
  proc.set_stream(StreamTag::kLibrary);
  co_await lock.release(proc);
  proc.set_stream(saved);
}

// OS scheduler entry/exit around each transaction.
SimTask<void> os_schedule(Processor& proc, OltpContext& ctx) {
  proc.set_stream(StreamTag::kOs);
  co_await ctx.runqueue_lock->acquire(proc);
  const std::uint64_t ready = co_await proc.read(ctx.ready_count, 8);
  co_await proc.write(ctx.ready_count, ready + 1, 8);
  co_await ctx.runqueue_lock->release(proc);
  // Quantum accounting in this CPU's usage slot.
  const Addr slot = ctx.cpu_slot(proc.id());
  const std::uint64_t used = co_await proc.read(slot, 8);
  co_await proc.write(slot, used + 1, 8);
  proc.set_stream(StreamTag::kApp);
}

// Periodic OS load balancing: read every CPU's usage slot (foreign reads
// that break load-store sequences on those slots).
SimTask<void> os_load_balance(Processor& proc, OltpContext& ctx,
                              int nprocs) {
  proc.set_stream(StreamTag::kOs);
  std::uint64_t total = 0;
  for (int c = 0; c < nprocs; ++c) {
    total += co_await proc.read(ctx.cpu_slot(c), 8);
  }
  co_await ctx.runqueue_lock->acquire(proc);
  co_await proc.write(ctx.ready_count, total & 0xffff, 8);
  co_await ctx.runqueue_lock->release(proc);
  proc.set_stream(StreamTag::kApp);
}

// Generic record accessors: ALL table-record traffic funnels through
// these two call sites, like a real DBMS's shared row-access routines
// (rec_get/rec_set in MySQL terms). For the instruction-centric kIls
// technique this is the crucial property: one static site serves both
// read-only and read-modify-write paths over both private and shared
// records, so per-site prediction cannot separate them (the ICPP'99
// OLTP finding) — whereas the data-centric LS bit adapts per block.
SimTask<std::uint64_t> rec_read(Processor& proc, Addr addr) {
  co_return co_await proc.read(addr, 8);
}

SimTask<void> rec_write(Processor& proc, Addr addr, std::uint64_t value) {
  co_await proc.write(addr, value, 8);
}

// Index walk: root -> interior -> leaf (read-shared path).
SimTask<std::uint32_t> index_lookup(Processor& proc, OltpContext& ctx,
                                    std::uint32_t account) {
  const std::uint64_t root =
      co_await proc.read(ctx.index_root.addr(account & 15u), 8);
  const std::uint64_t interior = co_await proc.read(
      ctx.index_interior.addr((account >> 4) & 63u), 8);
  const std::uint64_t leaf = co_await proc.read(
      ctx.index_leaf.addr(account & 1023u), 8);
  proc.compute(80);  // Key comparisons and record decoding.
  co_return static_cast<std::uint32_t>((root + interior + leaf) & 0u) +
      account;  // The walk is structural; the key maps to itself.
}

// Buffer-pool touch: read the frame word; every 8th touch updates the
// reference bit (a write to a widely read block).
SimTask<void> bufpool_touch(Processor& proc, OltpContext& ctx,
                            std::uint32_t page, bool write_ref) {
  const Addr frame = ctx.bufpool_frames.addr(page & 511u);
  const std::uint64_t meta = co_await proc.read(frame, 8);
  if (write_ref) {
    co_await proc.write(frame, meta | 1u, 8);
  }
}

SimTask<void> oltp_program(System& sys, std::shared_ptr<OltpContext> ctx,
                           NodeId id) {
  Processor& proc = sys.proc(id);
  const int nprocs = sys.num_procs();
  const OltpParams& p = ctx->params;

  // Processor 0 seeds the database.
  if (id == 0) {
    proc.set_stream(StreamTag::kApp);
    for (int b = 0; b < p.branches; ++b) {
      co_await proc.write(ctx->rec(ctx->branch_recs, b), 1000, 8);
    }
    for (int t = 0; t < ctx->tellers; ++t) {
      co_await proc.write(ctx->rec(ctx->teller_recs, t), 100, 8);
    }
    for (std::uint64_t i = 0; i < ctx->index_root.size(); ++i) {
      co_await proc.write(ctx->index_root.addr(i), i, 8);
    }
    for (std::uint64_t i = 0; i < ctx->index_interior.size(); ++i) {
      co_await proc.write(ctx->index_interior.addr(i), i, 8);
    }
    for (std::uint64_t i = 0; i < ctx->index_leaf.size(); ++i) {
      co_await proc.write(ctx->index_leaf.addr(i), i, 8);
    }
  }
  co_await ctx->barrier->wait(proc);

  Rng& rng = proc.rng();
  int updates_done = 0;

  for (int txn = 0; txn < p.txns_per_proc; ++txn) {
    // Scheduler involvement once per timeslice (several transactions fit
    // in one quantum), not per transaction.
    if (txn % 8 == 0) {
      co_await os_schedule(proc, *ctx);
    }
    if (p.balance_interval > 0 && txn % p.balance_interval == 0) {
      co_await os_load_balance(proc, *ctx, nprocs);
    }

    // Pick the working set for this transaction. Terminals are bound to
    // home branches (TPC-B): mostly processor-local branch/teller, with
    // a remote fraction that migrates between processors. Hot accounts
    // are connection-affine (per-processor partition).
    const bool hot = rng.next_bool(p.hot_fraction);
    std::uint32_t account;
    if (hot) {
      // Skewed pick within this processor's hot span: the popular head
      // is revisited often, the tail occasionally (after eviction).
      double u = rng.next_double();
      double frac = 1.0;
      for (double e = p.zipf_exponent; e >= 1.0; e -= 1.0) frac *= u;
      frac *= 1.0 + (p.zipf_exponent - static_cast<int>(p.zipf_exponent)) *
                        (u - 1.0);  // Linear blend for fractional part.
      const auto span = static_cast<std::uint64_t>(p.hot_accounts);
      const std::uint64_t offset = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(frac * static_cast<double>(span)),
          span - 1);
      account = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(id) * span + offset);
    } else {
      account = static_cast<std::uint32_t>(
          rng.next_below(static_cast<std::uint64_t>(p.accounts)));
    }
    const bool home = rng.next_bool(p.home_branch_fraction);
    int branch;
    if (home) {
      // Branches with (branch % nprocs) == id are this terminal's.
      const int local_count = (p.branches + nprocs - 1 - id) / nprocs;
      branch = id + nprocs * static_cast<int>(rng.next_below(
                                 static_cast<std::uint64_t>(local_count)));
    } else {
      branch = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(p.branches)));
    }
    const int teller = branch * p.tellers_per_branch +
                       static_cast<int>(rng.next_below(
                           static_cast<std::uint64_t>(p.tellers_per_branch)));
    const std::int64_t delta =
        static_cast<std::int64_t>(rng.next_range(1, 99)) - 50;

    const std::uint32_t key = co_await index_lookup(proc, *ctx, account);
    co_await bufpool_touch(proc, *ctx, key >> 3, (txn & 3) == 0);

    if (rng.next_bool(p.lookup_fraction)) {
      // Read-only balance query: account, teller and a couple of branch
      // balances — the read-sharing that later updates must invalidate.
      (void)co_await rec_read(proc, ctx->rec(ctx->account_recs,
                                             static_cast<int>(key)));
      (void)co_await rec_read(proc, ctx->rec(ctx->teller_recs, teller));
      (void)co_await rec_read(proc, ctx->rec(ctx->branch_recs, branch));
      // Branch-summary scan: balance queries aggregate several branches,
      // keeping branch records read-shared across processors (the writes
      // to them then invalidate several copies — paper §5.4's ~1.4
      // invalidations per global write).
      for (int scan = 0; scan < 4; ++scan) {
        const int other_branch = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(p.branches)));
        (void)co_await rec_read(
            proc, ctx->rec(ctx->branch_recs, other_branch));
      }
      proc.compute(p.think_cycles / 2);
      continue;
    }

    // Update transaction: teller lock, branch lock, balance updates,
    // history append (classic TPC-B profile). Teller locks hash into
    // slots 0-127 and branch locks into 128-255: the classes must not
    // collide or a teller-then-branch transaction can deadlock against
    // one whose branch slot equals the first's teller slot.
    const std::uint32_t teller_res =
        static_cast<std::uint32_t>(teller) & 127u;
    const std::uint32_t branch_res =
        128u + (static_cast<std::uint32_t>(branch) & 127u);
    co_await lock_acquire(proc, *ctx, teller_res);
    co_await lock_acquire(proc, *ctx, branch_res);

    // Account balance (read-modify-write through the shared accessors).
    const Addr acct = ctx->rec(ctx->account_recs, static_cast<int>(key));
    const std::uint64_t abal = co_await rec_read(proc, acct);
    co_await rec_write(proc, acct, abal + static_cast<std::uint64_t>(delta));
    co_await rec_write(proc, acct + 8, static_cast<std::uint64_t>(txn));

    // Teller balance.
    const Addr tell = ctx->rec(ctx->teller_recs, teller);
    const std::uint64_t tbal = co_await rec_read(proc, tell);
    co_await rec_write(proc, tell, tbal + static_cast<std::uint64_t>(delta));

    // Branch balance.
    const Addr bran = ctx->rec(ctx->branch_recs, branch);
    const std::uint64_t bbal = co_await rec_read(proc, bran);
    co_await rec_write(proc, bran, bbal + static_cast<std::uint64_t>(delta));

    // Key-cache header for the account's page (read-modify-write).
    {
      const Addr header = ctx->key_cache.addr((account >> 8) & 4095u);
      const std::uint64_t uses = co_await rec_read(proc, header);
      co_await rec_write(proc, header, uses + 1);
    }

    // History append: migratory tail counter + record write.
    const std::uint64_t slot =
        co_await proc.fetch_add(ctx->history_tail, 1, 8) %
        (ctx->history.size() / kRecordWords);
    const Addr hist = ctx->rec(ctx->history, static_cast<int>(slot));
    co_await proc.write(hist, (static_cast<std::uint64_t>(branch) << 32) |
                                  key, 8);
    co_await proc.write(hist + 8, static_cast<std::uint64_t>(delta), 8);

    // Occasional index split: a write to a widely read-shared node.
    ++updates_done;
    if (p.split_interval > 0 && updates_done % p.split_interval == 0) {
      const std::uint64_t node = (account >> 4) & 63u;
      const std::uint64_t v =
          co_await proc.read(ctx->index_interior.addr(node), 8);
      co_await proc.write(ctx->index_interior.addr(node), v + 1, 8);
    }

    // Shared allocator bump every few transactions (library).
    if ((txn & 3) == 0) {
      proc.set_stream(StreamTag::kLibrary);
      co_await proc.fetch_add(ctx->alloc_freelist, 16, 8);
      proc.set_stream(StreamTag::kApp);
    }

    co_await lock_release(proc, *ctx, branch_res);
    co_await lock_release(proc, *ctx, teller_res);
    proc.compute(p.think_cycles);
  }
}

}  // namespace

void build_oltp(System& sys, const OltpParams& params) {
  auto ctx = std::make_shared<OltpContext>();
  ctx->params = params;
  ctx->tellers = params.branches * params.tellers_per_branch;

  SharedHeap& heap = sys.heap();
  ctx->branch_recs = SharedArray<std::uint64_t>(
      heap, static_cast<std::uint64_t>(params.branches) * kRecordWords, 16);
  ctx->teller_recs = SharedArray<std::uint64_t>(
      heap, static_cast<std::uint64_t>(ctx->tellers) * kRecordWords, 16);
  ctx->account_recs = SharedArray<std::uint64_t>(
      heap, static_cast<std::uint64_t>(params.accounts) * kRecordWords, 16);
  ctx->index_root = SharedArray<std::uint64_t>(heap, 16, 8);
  ctx->index_interior = SharedArray<std::uint64_t>(heap, 64, 8);
  ctx->index_leaf = SharedArray<std::uint64_t>(heap, 1024, 8);
  ctx->history_tail = heap.alloc(8, 8);
  ctx->history = SharedArray<std::uint64_t>(heap, 8192 * kRecordWords, 16);
  ctx->bufpool_frames = SharedArray<std::uint64_t>(heap, 512, 8);
  ctx->bufpool_clock = heap.alloc(8, 8);
  ctx->key_cache = SharedArray<std::uint64_t>(heap, 4096, 8);
  ctx->lock_table = SharedArray<std::uint32_t>(
      heap, 256 * OltpContext::kLockStrideWords, 256);
  ctx->alloc_freelist = heap.alloc(8, 8);
  ctx->runqueue_lock = std::make_unique<TicketLock>(heap);
  ctx->ready_count = heap.alloc(8, 256);
  // Sized for the running processor count but never below the historical
  // kMaxNodes of 64: heap layout (and hence every figure derived from
  // this workload) must not shift just because the node-id ceiling grew.
  const std::uint64_t cpu_slots =
      std::max<std::uint64_t>(64, static_cast<std::uint64_t>(sys.num_procs()));
  ctx->cpu_usage = SharedArray<std::uint64_t>(
      heap, cpu_slots * OltpContext::kCpuStrideWords, 256);
  ctx->barrier = std::make_unique<Barrier>(heap, sys.num_procs());

  for (int n = 0; n < sys.num_procs(); ++n) {
    sys.spawn(static_cast<NodeId>(n),
              oltp_program(sys, ctx, static_cast<NodeId>(n)));
  }
  sys.retain(ctx);
}

}  // namespace lssim
