#include "workloads/radix.hpp"

#include <memory>
#include <vector>

#include "mem/shared_heap.hpp"
#include "sync/barrier.hpp"

namespace lssim {
namespace {

struct RadixContext {
  RadixParams params;
  int radix = 0;
  int passes = 0;
  SharedArray<std::uint32_t> array_a;  ///< Keys (ping).
  SharedArray<std::uint32_t> array_b;  ///< Keys (pong).
  /// Per-processor digit histograms, node-local pages.
  std::vector<SharedArray<std::uint32_t>> hist;
  /// offsets[d * P + p]: first destination slot for processor p's keys
  /// with digit d (written by processor 0 in the prefix phase).
  SharedArray<std::uint32_t> offsets;
  std::unique_ptr<Barrier> barrier;
};

SimTask<void> radix_program(System& sys, std::shared_ptr<RadixContext> ctx,
                            NodeId id) {
  Processor& proc = sys.proc(id);
  const int nprocs = sys.num_procs();
  const RadixParams& p = ctx->params;
  const int radix = ctx->radix;
  const int keys = p.keys;
  const int first = static_cast<int>(
      static_cast<std::int64_t>(keys) * id / nprocs);
  const int last = static_cast<int>(
      static_cast<std::int64_t>(keys) * (id + 1) / nprocs);

  // Seed this processor's key range.
  for (int i = first; i < last; ++i) {
    const std::uint64_t key =
        proc.rng().next_below(std::uint64_t{1} << p.key_bits);
    co_await proc.write(ctx->array_a.addr(static_cast<std::uint64_t>(i)),
                        key);
  }
  co_await ctx->barrier->wait(proc);

  for (int pass = 0; pass < ctx->passes; ++pass) {
    const SharedArray<std::uint32_t>& src =
        (pass % 2 == 0) ? ctx->array_a : ctx->array_b;
    const SharedArray<std::uint32_t>& dst =
        (pass % 2 == 0) ? ctx->array_b : ctx->array_a;
    const int shift = pass * p.radix_bits;

    // Phase 1: local histogram (private counters, read-modify-write).
    SharedArray<std::uint32_t>& my_hist = ctx->hist[id];
    for (int d = 0; d < radix; ++d) {
      co_await proc.write(my_hist.addr(static_cast<std::uint64_t>(d)), 0);
    }
    for (int i = first; i < last; ++i) {
      const std::uint64_t key =
          co_await proc.read(src.addr(static_cast<std::uint64_t>(i)));
      const int digit = static_cast<int>((key >> shift) & (radix - 1));
      const Addr counter = my_hist.addr(static_cast<std::uint64_t>(digit));
      const std::uint64_t count = co_await proc.read(counter);
      proc.compute(p.compute_per_key);
      co_await proc.write(counter, count + 1);
    }
    co_await ctx->barrier->wait(proc);

    // Phase 2: processor 0 turns the histograms into global offsets.
    if (id == 0) {
      std::uint32_t running = 0;
      for (int d = 0; d < radix; ++d) {
        for (int q = 0; q < nprocs; ++q) {
          co_await proc.write(
              ctx->offsets.addr(static_cast<std::uint64_t>(d) * nprocs + q),
              running);
          running += static_cast<std::uint32_t>(co_await proc.read(
              ctx->hist[q].addr(static_cast<std::uint64_t>(d))));
          proc.compute(2);
        }
      }
    }
    co_await ctx->barrier->wait(proc);

    // Phase 3: permutation. Cursors live in host "registers" after one
    // simulated read each; destination writes are lone writes to
    // scattered (often remote) blocks.
    std::vector<std::int64_t> cursor(static_cast<std::size_t>(radix), -1);
    for (int i = first; i < last; ++i) {
      const std::uint64_t key =
          co_await proc.read(src.addr(static_cast<std::uint64_t>(i)));
      const int digit = static_cast<int>((key >> shift) & (radix - 1));
      auto& cur = cursor[static_cast<std::size_t>(digit)];
      if (cur < 0) {
        cur = static_cast<std::int64_t>(co_await proc.read(ctx->offsets.addr(
            static_cast<std::uint64_t>(digit) * nprocs + id)));
      }
      proc.compute(p.compute_per_key);
      co_await proc.write(dst.addr(static_cast<std::uint64_t>(cur)), key);
      ++cur;
    }
    co_await ctx->barrier->wait(proc);
  }
}

}  // namespace

void build_radix(System& sys, const RadixParams& params) {
  auto ctx = std::make_shared<RadixContext>();
  ctx->params = params;
  ctx->radix = 1 << params.radix_bits;
  ctx->passes = (params.key_bits + params.radix_bits - 1) /
                params.radix_bits;

  SharedHeap& heap = sys.heap();
  ctx->array_a = SharedArray<std::uint32_t>(
      heap, static_cast<std::uint64_t>(params.keys), 16);
  ctx->array_b = SharedArray<std::uint32_t>(
      heap, static_cast<std::uint64_t>(params.keys), 16);
  for (int n = 0; n < sys.num_procs(); ++n) {
    ctx->hist.push_back(SharedArray<std::uint32_t>::on_node(
        heap, static_cast<NodeId>(n),
        static_cast<std::uint64_t>(ctx->radix), 16));
  }
  ctx->offsets = SharedArray<std::uint32_t>(
      heap,
      static_cast<std::uint64_t>(ctx->radix) * sys.num_procs(), 16);
  ctx->barrier = std::make_unique<Barrier>(heap, sys.num_procs());

  for (int n = 0; n < sys.num_procs(); ++n) {
    sys.spawn(static_cast<NodeId>(n),
              radix_program(sys, ctx, static_cast<NodeId>(n)));
  }
  sys.retain(ctx);
}

Addr radix_result_base(const RadixParams& params) {
  const int passes = (params.key_bits + params.radix_bits - 1) /
                     params.radix_bits;
  const Addr base = Addr{1} << 40;  // First global heap allocation (A).
  if (passes % 2 == 0) {
    return base;  // Even number of swaps: result back in A.
  }
  const Addr a_bytes = static_cast<Addr>(params.keys) * 4;
  return base + ((a_bytes + 15) & ~Addr{15});  // B follows A, 16-aligned.
}

}  // namespace lssim
