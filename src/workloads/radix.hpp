// Radix sort (SPLASH-2-style, extension workload).
//
// Not part of the paper's evaluation — included as a *negative control*:
// radix's permutation phase is dominated by scattered writes to
// locations the writer never read (lone writes), which are not
// load-store sequences, so neither LS nor AD should find much to
// eliminate here. A technique that "wins" on radix is over-claiming.
//
// Structure per digit pass (keys move between two arrays):
//   1. local histogram   — each processor counts its keys' digits in its
//                          own counter block (private RMWs);
//   2. global prefix sum — processors combine histograms under a lock
//                          (migratory);
//   3. permutation       — each processor copies its keys to their
//                          destination slots (reads its source range,
//                          lone-writes scattered destinations).
#pragma once

#include <cstdint>

#include "machine/system.hpp"

namespace lssim {

struct RadixParams {
  int keys = 32768;
  int radix_bits = 8;   ///< Digit width; passes = key_bits / radix_bits.
  int key_bits = 16;    ///< Sorted key width.
  std::uint64_t seed = 23;
  Cycles compute_per_key = 4;
};

/// Allocates the key arrays and histograms on `sys` and spawns one
/// program per processor. After System::run() the sorted keys are in the
/// array reported by radix_result_base() (tests verify sortedness).
void build_radix(System& sys, const RadixParams& params);

/// Simulated address of the array holding the final sorted keys, given
/// the same params used to build (valid after the run).
[[nodiscard]] Addr radix_result_base(const RadixParams& params);

}  // namespace lssim
