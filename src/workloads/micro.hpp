// Micro-workloads with analytically predictable sharing patterns.
//
// Used by the test suite (protocol behaviour is assertable), by the
// quickstart example and by ablation benches. Each exercises one of the
// access patterns the paper discusses:
//   * ping-pong   — token-passing: counters incremented by processors in
//                   strict turn order — pure migratory sharing (AD and LS
//                   both optimize it). A `turn` word (its own block) is
//                   spin-read to serialize the rounds.
//   * private RMW — each processor sweeps read-modify-writes over its own
//                   region larger than L2: load-store sequences broken by
//                   capacity evictions with NO migration (only LS helps —
//                   the paper's Cholesky scenario).
//   * read-mostly — a region everyone reads, one writer updates it
//                   periodically (writes to read-shared data; mis-tagging
//                   risk, extra read misses under LS).
#pragma once

#include <cstdint>

#include "machine/system.hpp"

namespace lssim {

// Each micro workload takes a `sync` knob (default on): when set, the
// programs rendezvous on a spin barrier before their main loop. Turning
// it off (`sync = 0`) removes the only timing-dependent control flow in
// private-RMW and read-mostly, making their access streams independent
// of protocol-induced latencies — the feedback-insensitive workloads the
// trace replay cross-check asserts bit-identical stats on (ping-pong
// stays feedback-sensitive regardless: its turn-word spin count depends
// on timing by design). See docs/PERFORMANCE.md "Capture once, replay
// many".

struct PingPongParams {
  int rounds = 1000;       ///< Turns per processor.
  int counters = 1;        ///< Migratory counters updated each turn.
  Cycles think_cycles = 40;
  int sync = 1;            ///< Spin-barrier rendezvous before the loop.
};
void build_pingpong(System& sys, const PingPongParams& params);

struct PrivateRmwParams {
  std::uint64_t words_per_proc = 16 * 1024;  ///< 128 kB per processor.
  int sweeps = 4;
  Cycles compute = 2;
  int sync = 1;  ///< 0 = feedback-insensitive (no spin barrier).
};
void build_private_rmw(System& sys, const PrivateRmwParams& params);

struct ReadMostlyParams {
  std::uint64_t words = 1024;
  int rounds = 200;
  int writes_per_round = 4;  ///< Writer updates this many words per round.
  Cycles compute = 4;
  int sync = 1;  ///< 0 = feedback-insensitive (no spin barrier).
};
void build_read_mostly(System& sys, const ReadMostlyParams& params);

}  // namespace lssim
