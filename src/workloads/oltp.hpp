// OLTP: synthetic TPC-B-style transaction processing workload
// (paper §4.1, §5.4).
//
// Substitution for the paper's MySQL-on-SparcLinux setup (see DESIGN.md):
// a bank schema (branches / tellers / accounts / history), a two-level
// index whose nodes are read-shared and occasionally split, a per-resource
// lock manager, buffer-pool metadata, and an "operating system" layer
// (run-queue lock, usage accounting, load balancing). Accesses are tagged
// app / library / os so Table 2's three-way split can be reproduced.
//
// The sharing mix is tuned for the regime the paper reports: many
// capacity/conflict misses to shared data (the account table exceeds L2),
// ~1.4 invalidations per global write (balances read-shared by lookup
// transactions), and load-store sequences of which only about half are
// migratory.
#pragma once

#include <cstdint>

#include "machine/system.hpp"

namespace lssim {

struct OltpParams {
  int branches = 40;  ///< Paper: TPC-B with 40 branches.
  int tellers_per_branch = 10;
  /// Paper: ~600 MB of database data; 16 MB of account records is the
  /// scaled-down equivalent — far beyond L2, so account accesses miss
  /// for capacity reasons like the paper's workload.
  int accounts = 1 << 20;
  int txns_per_proc = 3000;
  double lookup_fraction = 0.35;  ///< Read-only balance queries.
  /// TPC-B terminals are bound to a home branch: this fraction of
  /// transactions uses a branch local to the issuing processor. The
  /// remainder crosses processors (the migratory share of Table 2).
  double home_branch_fraction = 0.85;
  double hot_fraction = 0.7;  ///< Probability of hitting the hot set.
  /// Hot accounts are partitioned per processor (connection affinity)
  /// and drawn with a skew (see zipf_exponent): the popular head is
  /// reused across transactions but its span far exceeds the cache, so
  /// hot read-modify-writes are same-processor load-store sequences
  /// broken by capacity evictions — LS's target pattern, invisible to
  /// migratory detection.
  int hot_accounts = 65536;  ///< Per-processor hot span.
  double zipf_exponent = 2.5;  ///< hot pick = span * u^zipf (u uniform).
  int split_interval = 64;     ///< Index-node write every Nth update.
  int balance_interval = 32;   ///< OS load-balance scan every Nth txn.
  Cycles think_cycles = 700;
  std::uint64_t seed = 7;
};

/// Allocates the database and OS structures on `sys` and spawns one
/// worker per processor.
void build_oltp(System& sys, const OltpParams& params);

}  // namespace lssim
