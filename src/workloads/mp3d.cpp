#include "workloads/mp3d.hpp"

#include <memory>

#include "mem/shared_heap.hpp"
#include "sync/barrier.hpp"

namespace lssim {
namespace {

// Particle record: 4 x 8B = 32 bytes (two 16-byte blocks in the default
// scientific configuration): position, velocity, cell cache, energy.
constexpr int kParticleWords = 4;
// Cell record: 2 x 8B = 16 bytes = exactly one block: count + momentum.
constexpr int kCellWords = 2;

struct Mp3dContext {
  Mp3dParams params;
  int num_cells = 0;
  SharedArray<std::uint64_t> particles;
  SharedArray<std::uint64_t> cells;
  Addr reservoir = 0;  ///< Global boundary-crossing counter (migratory).
  Barrier* barrier = nullptr;
  std::unique_ptr<Barrier> barrier_storage;
};

SimTask<void> mp3d_program(System& sys, std::shared_ptr<Mp3dContext> ctx,
                           NodeId id) {
  Processor& proc = sys.proc(id);
  const int nprocs = sys.num_procs();
  const int total = ctx->params.particles;
  const int first = static_cast<int>(
      static_cast<std::int64_t>(total) * id / nprocs);
  const int last = static_cast<int>(
      static_cast<std::int64_t>(total) * (id + 1) / nprocs);
  const double space = 1024.0;

  // Initialise owned particles (cold writes; round-robin pages spread the
  // records across homes as the real allocator would).
  for (int p = first; p < last; ++p) {
    const Addr base = ctx->particles.addr(
        static_cast<std::uint64_t>(p) * kParticleWords);
    const double pos = proc.rng().next_double() * space;
    const double vel = 1.0 + proc.rng().next_double() * 15.0;
    co_await proc.write(base + 0, to_bits(pos), 8);
    co_await proc.write(base + 8, to_bits(vel), 8);
    co_await proc.write(base + 16, 0, 8);
    co_await proc.write(base + 24, to_bits(0.5 * vel * vel), 8);
  }
  co_await ctx->barrier->wait(proc);

  for (int step = 0; step < ctx->params.steps; ++step) {
    for (int p = first; p < last; ++p) {
      const Addr base = ctx->particles.addr(
          static_cast<std::uint64_t>(p) * kParticleWords);
      // Move: read position/velocity, integrate, write the position back
      // (a load-store sequence on the first record block) and store the
      // recomputed energy (a write not preceded by a read of its block,
      // like MP3D's derived fields — no load-store sequence there).
      double pos = from_bits(co_await proc.read(base + 0, 8));
      const double vel = from_bits(co_await proc.read(base + 8, 8));
      proc.compute(ctx->params.compute_per_particle);
      pos += vel;
      if (pos >= space) {
        pos -= space;
        // Boundary crossing: reservoir bookkeeping (hot migratory word).
        co_await proc.fetch_add(ctx->reservoir, 1, 8);
      }
      co_await proc.write(base + 0, to_bits(pos), 8);
      co_await proc.write(base + 24, to_bits(0.5 * vel * vel), 8);

      // Cell update: whichever processor's particle sits in the cell
      // read-modify-writes the cell record -> migratory sharing.
      const int cell = static_cast<int>(pos / space *
                                        static_cast<double>(ctx->num_cells));
      const Addr cell_base = ctx->cells.addr(
          static_cast<std::uint64_t>(cell) * kCellWords);
      const std::uint64_t count = co_await proc.read(cell_base + 0, 8);
      co_await proc.write(cell_base + 0, count + 1, 8);
      const double momentum = from_bits(co_await proc.read(cell_base + 8, 8));
      co_await proc.write(cell_base + 8, to_bits(momentum + vel), 8);

      // Collision attempt for co-resident particles (cheap model: the
      // cell count parity decides), touching the record again.
      if ((count & 1) != 0) {
        proc.compute(6);
        co_await proc.write(base + 16,
                            static_cast<std::uint64_t>(cell), 8);
      }
    }
    co_await ctx->barrier->wait(proc);
  }
}

}  // namespace

void build_mp3d(System& sys, const Mp3dParams& params) {
  auto ctx = std::make_shared<Mp3dContext>();
  ctx->params = params;
  ctx->num_cells = params.cells_x * params.cells_y * params.cells_z;
  ctx->particles = SharedArray<std::uint64_t>(
      sys.heap(),
      static_cast<std::uint64_t>(params.particles) * kParticleWords, 32);
  ctx->cells = SharedArray<std::uint64_t>(
      sys.heap(), static_cast<std::uint64_t>(ctx->num_cells) * kCellWords,
      16);
  ctx->reservoir = sys.heap().alloc(8, 8);
  ctx->barrier_storage = std::make_unique<Barrier>(sys.heap(),
                                                   sys.num_procs());
  ctx->barrier = ctx->barrier_storage.get();

  for (int n = 0; n < sys.num_procs(); ++n) {
    sys.spawn(static_cast<NodeId>(n),
              mp3d_program(sys, ctx, static_cast<NodeId>(n)));
  }
  sys.retain(ctx);
}

}  // namespace lssim
