// Cholesky: right-looking column factorization with a dynamic,
// lock-protected task queue (paper §5.2, SPLASH tk15.0).
//
// A task is a completed column j: the worker runs cdiv(j), then applies
// cmod(k, j) to each dependent column k (under k's column lock) and
// enqueues k once its last modification lands — the SPLASH structure.
//
// Two structure modes:
//  * kDenseBand — every column modifies all band successors. This is a
//    genuine banded Cholesky factorization (numerically verified by the
//    test suite), but adjacent tasks run concurrently and revisit the
//    same columns back-to-back, which makes the data look migratory.
//  * kSyntheticSparse (default) — each column modifies a few successors
//    drawn from a wide window, modeling the tk15.0 sparse matrix's
//    elimination-tree parallelism: a destination column is visited by a
//    handful of tasks spread far apart in time, so the previous
//    visitor's copy is evicted before the next visit. This reproduces
//    the paper's signature: ownership requests without migration
//    evidence — AD detects (essentially) nothing at 4 processors while
//    LS removes nearly all of the overhead. The arithmetic is real FP
//    work on the columns but not a true factorization (see DESIGN.md).
#pragma once

#include <cstdint>

#include "machine/system.hpp"

namespace lssim {

enum class CholeskyMode : std::uint8_t { kDenseBand, kSyntheticSparse };

struct CholeskyParams {
  CholeskyMode mode = CholeskyMode::kSyntheticSparse;
  int n = 600;         ///< Number of columns (== tasks).
  /// Column length (rows stored per column). In dense-band mode this is
  /// the semi-bandwidth. Long columns keep the data-to-synchronization
  /// write ratio high, like tk15.0's supernodes.
  int bandwidth = 96;
  /// kSyntheticSparse: how many successor columns each column modifies.
  int successors = 6;
  /// kSyntheticSparse: successors are drawn from (j, j+window]; 0 means
  /// n/2. Wide windows spread the visits to a column far enough apart
  /// that the owner's cache turns over in between.
  int window = 0;
  /// kSyntheticSparse: probability that a column's successors live in a
  /// chunk owned by the same processor — tk15.0's elimination-subtree
  /// locality. High locality keeps completed columns single-reader, so
  /// LS's exclusive read replies do not bounce.
  double locality = 0.9;
  std::uint64_t seed = 17;
  Cycles compute_per_update = 10;  ///< Modelled FP work per cmod element.
};

/// Allocates the matrix and the task queue on `sys` and spawns one
/// worker per processor. Call before System::run().
void build_cholesky(System& sys, const CholeskyParams& params);

}  // namespace lssim
