// Experiment harness: run a workload under a machine configuration and
// collect the metrics the paper reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "machine/system.hpp"
#include "sim/config.hpp"
#include "stats/ls_oracle.hpp"
#include "stats/stats.hpp"

namespace lssim {

/// Everything a figure/table needs from one simulation run.
struct RunResult {
  ProtocolKind protocol = ProtocolKind::kBaseline;
  DirectoryKind directory = DirectoryKind::kFullMap;
  InterconnectKind interconnect = InterconnectKind::kNetwork;
  Cycles exec_time = 0;       ///< Wall clock: latest processor time.
  TimeBreakdown time;         ///< Summed over processors.
  std::array<std::uint64_t, kNumMsgClasses> traffic{};
  std::uint64_t traffic_total = 0;
  std::array<std::uint64_t, kNumHomeStates> read_miss_home{};
  std::uint64_t global_read_misses = 0;
  std::uint64_t global_write_actions = 0;
  std::uint64_t ownership_acquisitions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t single_invalidations = 0;
  std::uint64_t eliminated_acquisitions = 0;
  std::uint64_t update_transactions = 0;  ///< Write-update (Dragon) writes.
  std::uint64_t updates_sent = 0;         ///< Remote copies they refreshed.
  std::uint64_t data_misses = 0;
  std::uint64_t coherence_misses = 0;
  std::uint64_t false_sharing_misses = 0;
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t blocks_tagged = 0;
  std::uint64_t blocks_detagged = 0;
  std::uint64_t dir_entry_evictions = 0;
  LsOracleCounters oracle_total;
  std::array<LsOracleCounters, kNumStreamTags> oracle_by_tag{};

  /// Average invalidations per global write action (paper §5.4 quotes
  /// ~1.4 for OLTP).
  [[nodiscard]] double invalidations_per_write() const noexcept {
    return global_write_actions == 0
               ? 0.0
               : static_cast<double>(invalidations) /
                     static_cast<double>(global_write_actions);
  }
};

/// Snapshot of a finished System into a RunResult.
[[nodiscard]] RunResult collect(System& sys);

/// As collect(System&), from the pieces a System owns — used by trace
/// replay, which drives a MemorySystem without a System around it.
[[nodiscard]] RunResult collect(const MachineConfig& config,
                                const Stats& stats, MemorySystem& memory,
                                Cycles exec_time);

/// Builds the workload onto `sys` (allocate shared data, spawn programs).
using WorkloadBuilder = std::function<void(System&)>;

/// Creates a System for `config`, builds the workload, runs it to
/// completion and returns the collected result.
[[nodiscard]] RunResult run_experiment(const MachineConfig& config,
                                       const WorkloadBuilder& build,
                                       std::uint64_t seed = 1);

/// Called on the finished System before it is destroyed; used by the
/// driver to capture telemetry (metrics snapshot, coherence trace).
using RunInspector = std::function<void(System&)>;

/// As run_experiment, additionally invoking `inspect` (when non-null)
/// after the run while the System is still alive.
[[nodiscard]] RunResult run_experiment(const MachineConfig& config,
                                       const WorkloadBuilder& build,
                                       std::uint64_t seed,
                                       const RunInspector& inspect);

/// Runs `build` once per protocol in `kinds` (config's kind overridden
/// per run), fanning the independent simulations out across up to `jobs`
/// host threads (<= 0 = all cores; see exec/parallel_executor.hpp).
/// Each run gets its own System — own Stats, MetricsRegistry, RNG — and
/// results come back in `kinds` order, so any jobs value produces
/// results identical to a serial sweep. `build` is invoked concurrently
/// and must not mutate captured state.
[[nodiscard]] std::vector<RunResult> run_experiments(
    const MachineConfig& config, const WorkloadBuilder& build,
    std::span<const ProtocolKind> kinds, std::uint64_t seed = 1,
    int jobs = 1);

}  // namespace lssim
