#include "workloads/stencil.hpp"

#include <cmath>
#include <memory>

#include "mem/shared_heap.hpp"
#include "sync/barrier.hpp"
#include "sync/spinlock.hpp"

namespace lssim {
namespace {

struct StencilContext {
  StencilParams params;
  SharedArray<std::uint64_t> grid;       ///< width*height doubles.
  SharedArray<std::uint64_t> residuals;  ///< One double per sweep.
  std::unique_ptr<SpinLock> residual_lock;
  std::unique_ptr<Barrier> barrier;

  [[nodiscard]] Addr at(int x, int y) const {
    return grid.addr(static_cast<std::uint64_t>(y) * params.width + x);
  }
};

SimTask<void> stencil_program(System& sys,
                              std::shared_ptr<StencilContext> ctx,
                              NodeId id) {
  Processor& proc = sys.proc(id);
  const int nprocs = sys.num_procs();
  const StencilParams& p = ctx->params;
  const int first_row = 1 + (p.height - 2) * id / nprocs;
  const int last_row = 1 + (p.height - 2) * (id + 1) / nprocs;

  // Initialise the owned rows (plus the global boundary rows at the
  // first/last band): hot left edge, cold elsewhere.
  for (int y = (id == 0 ? 0 : first_row);
       y < (id == nprocs - 1 ? p.height : last_row); ++y) {
    for (int x = 0; x < p.width; ++x) {
      const double value = (x == 0) ? 100.0 : 0.0;
      co_await proc.write(ctx->at(x, y), to_bits(value), 8);
    }
  }
  co_await ctx->barrier->wait(proc);

  for (int sweep = 0; sweep < p.sweeps; ++sweep) {
    double local_residual = 0.0;
    for (int colour = 0; colour < 2; ++colour) {
      for (int y = first_row; y < last_row; ++y) {
        for (int x = 1 + ((y + colour) & 1); x < p.width - 1; x += 2) {
          const double up =
              from_bits(co_await proc.read(ctx->at(x, y - 1), 8));
          const double down =
              from_bits(co_await proc.read(ctx->at(x, y + 1), 8));
          const double left =
              from_bits(co_await proc.read(ctx->at(x - 1, y), 8));
          const double right =
              from_bits(co_await proc.read(ctx->at(x + 1, y), 8));
          // In-place read-modify-write: the load-store sequence.
          const double old =
              from_bits(co_await proc.read(ctx->at(x, y), 8));
          proc.compute(p.compute_per_cell);
          const double next = 0.25 * (up + down + left + right);
          local_residual += std::fabs(next - old);
          co_await proc.write(ctx->at(x, y), to_bits(next), 8);
        }
      }
      co_await ctx->barrier->wait(proc);
    }
    // Fold the band's residual into the sweep's global accumulator.
    co_await ctx->residual_lock->acquire(proc);
    const Addr slot =
        ctx->residuals.addr(static_cast<std::uint64_t>(sweep));
    const double sum = from_bits(co_await proc.read(slot, 8));
    co_await proc.write(slot, to_bits(sum + local_residual), 8);
    co_await ctx->residual_lock->release(proc);
    co_await ctx->barrier->wait(proc);
  }
}

}  // namespace

void build_stencil(System& sys, const StencilParams& params) {
  auto ctx = std::make_shared<StencilContext>();
  ctx->params = params;
  ctx->grid = SharedArray<std::uint64_t>(
      sys.heap(),
      static_cast<std::uint64_t>(params.width) * params.height, 16);
  ctx->residuals = SharedArray<std::uint64_t>(
      sys.heap(), static_cast<std::uint64_t>(params.sweeps), 16);
  ctx->residual_lock = std::make_unique<SpinLock>(sys.heap());
  ctx->barrier = std::make_unique<Barrier>(sys.heap(), sys.num_procs());

  for (int n = 0; n < sys.num_procs(); ++n) {
    sys.spawn(static_cast<NodeId>(n),
              stencil_program(sys, ctx, static_cast<NodeId>(n)));
  }
  sys.retain(ctx);
}

Addr stencil_residual_base(const StencilParams& params) {
  const Addr base = Addr{1} << 40;
  const Addr grid_bytes =
      ((static_cast<Addr>(params.width) * params.height * 8) + 15) &
      ~Addr{15};
  return base + grid_bytes;
}

Addr stencil_cell_addr(const StencilParams& params, int x, int y) {
  return (Addr{1} << 40) +
         (static_cast<Addr>(y) * params.width + x) * 8;
}

}  // namespace lssim
