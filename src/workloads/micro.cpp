#include "workloads/micro.hpp"

#include <memory>

#include "mem/shared_heap.hpp"
#include "sync/barrier.hpp"

namespace lssim {
namespace {

struct MicroContext {
  SharedArray<std::uint64_t> data;
  Addr turn = 0;
  std::unique_ptr<Barrier> barrier;
};

SimTask<void> pingpong_program(System& sys,
                               std::shared_ptr<MicroContext> ctx,
                               NodeId id, PingPongParams p) {
  Processor& proc = sys.proc(id);
  const int nprocs = sys.num_procs();
  if (p.sync) co_await ctx->barrier->wait(proc);
  for (int r = 0; r < p.rounds; ++r) {
    // Wait for this processor's turn (strict round-robin): serialized
    // turns make the counter updates genuinely migratory.
    const std::uint64_t my_turn =
        static_cast<std::uint64_t>(r) * nprocs + id;
    for (;;) {
      const std::uint64_t turn = co_await proc.read(ctx->turn, 8);
      if (turn == my_turn) break;
      proc.compute(8 + proc.rng().next_below(8));
    }
    for (int c = 0; c < p.counters; ++c) {
      // Read-modify-write: a global read followed by a write from the
      // same processor — a load-store sequence; with processors taking
      // strict turns the data migrates.
      const Addr addr = ctx->data.addr(static_cast<std::uint64_t>(c) * 2);
      const std::uint64_t v = co_await proc.read(addr, 8);
      co_await proc.write(addr, v + 1, 8);
    }
    proc.compute(p.think_cycles);
    co_await proc.write(ctx->turn, my_turn + 1, 8);
  }
}

SimTask<void> private_rmw_program(System& sys,
                                  std::shared_ptr<MicroContext> ctx,
                                  NodeId id, PrivateRmwParams p) {
  Processor& proc = sys.proc(id);
  const std::uint64_t base = id * p.words_per_proc;
  if (p.sync) co_await ctx->barrier->wait(proc);
  for (int sweep = 0; sweep < p.sweeps; ++sweep) {
    for (std::uint64_t w = 0; w < p.words_per_proc; ++w) {
      const Addr addr = ctx->data.addr(base + w);
      const std::uint64_t v = co_await proc.read(addr, 8);
      proc.compute(p.compute);
      co_await proc.write(addr, v + 1, 8);
    }
  }
}

SimTask<void> read_mostly_program(System& sys,
                                  std::shared_ptr<MicroContext> ctx,
                                  NodeId id, ReadMostlyParams p) {
  Processor& proc = sys.proc(id);
  if (p.sync) co_await ctx->barrier->wait(proc);
  for (int r = 0; r < p.rounds; ++r) {
    if (id == 0) {
      for (int w = 0; w < p.writes_per_round; ++w) {
        const Addr addr = ctx->data.addr(
            (static_cast<std::uint64_t>(r) * 37 + w * 101) % p.words);
        const std::uint64_t v = co_await proc.read(addr, 8);
        co_await proc.write(addr, v + 1, 8);
      }
    }
    std::uint64_t sum = 0;
    for (std::uint64_t w = 0; w < p.words; w += 8) {
      sum += co_await proc.read(ctx->data.addr(w), 8);
    }
    (void)sum;
    proc.compute(p.compute);
  }
}

}  // namespace

void build_pingpong(System& sys, const PingPongParams& params) {
  auto ctx = std::make_shared<MicroContext>();
  ctx->data = SharedArray<std::uint64_t>(
      sys.heap(), static_cast<std::uint64_t>(params.counters) * 2, 16);
  ctx->turn = sys.heap().alloc(16, 16);  // Own block: spin reads stay off
                                         // the counters.
  ctx->barrier = std::make_unique<Barrier>(sys.heap(), sys.num_procs());
  for (int n = 0; n < sys.num_procs(); ++n) {
    sys.spawn(static_cast<NodeId>(n),
              pingpong_program(sys, ctx, static_cast<NodeId>(n), params));
  }
  sys.retain(ctx);
}

void build_private_rmw(System& sys, const PrivateRmwParams& params) {
  auto ctx = std::make_shared<MicroContext>();
  ctx->data = SharedArray<std::uint64_t>(
      sys.heap(),
      params.words_per_proc * static_cast<std::uint64_t>(sys.num_procs()),
      16);
  ctx->barrier = std::make_unique<Barrier>(sys.heap(), sys.num_procs());
  for (int n = 0; n < sys.num_procs(); ++n) {
    sys.spawn(static_cast<NodeId>(n),
              private_rmw_program(sys, ctx, static_cast<NodeId>(n), params));
  }
  sys.retain(ctx);
}

void build_read_mostly(System& sys, const ReadMostlyParams& params) {
  auto ctx = std::make_shared<MicroContext>();
  ctx->data = SharedArray<std::uint64_t>(sys.heap(), params.words, 16);
  ctx->barrier = std::make_unique<Barrier>(sys.heap(), sys.num_procs());
  for (int n = 0; n < sys.num_procs(); ++n) {
    sys.spawn(static_cast<NodeId>(n),
              read_mostly_program(sys, ctx, static_cast<NodeId>(n), params));
  }
  sys.retain(ctx);
}

}  // namespace lssim
