// Red-black Gauss-Seidel grid relaxation (Ocean-style stencil,
// extension workload).
//
// Each processor owns a horizontal band of one 2D grid and relaxes it
// in place: a red phase updates cells with (x+y) even from their (all
// black) neighbours, a barrier, then the black phase, another barrier.
// In-place updates make every cell a read-modify-write — with a grid
// larger than L2 the interior becomes replacement-broken load-store
// sequences by a single owner (LS's target, invisible to migratory
// detection), while band-boundary rows add producer-consumer sharing
// and the convergence norm a migratory lock-protected accumulator.
//
// The computation is a real solver: tests assert the residual decreases
// and that heat diffuses from the hot edge.
#pragma once

#include <cstdint>

#include "machine/system.hpp"

namespace lssim {

struct StencilParams {
  int width = 128;
  int height = 128;
  int sweeps = 12;  ///< One sweep = red phase + black phase.
  Cycles compute_per_cell = 8;
  std::uint64_t seed = 5;
};

/// Allocates the grid on `sys` and spawns one program per processor.
void build_stencil(System& sys, const StencilParams& params);

/// Simulated address of the per-sweep residual array (sweeps doubles).
[[nodiscard]] Addr stencil_residual_base(const StencilParams& params);

/// Simulated address of grid cell (x, y).
[[nodiscard]] Addr stencil_cell_addr(const StencilParams& params, int x,
                                     int y);

}  // namespace lssim
