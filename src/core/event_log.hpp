// Protocol event log: a bounded ring of coherence events for debugging
// and for walkthrough tooling.
//
// Disabled (capacity 0) it costs one branch per hook. Enabled, it keeps
// the last N events; dump() renders them like:
//   @12340  P1 upgrade    blk 0x000040  dir Shared->Dirty  [tag]
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "core/directory.hpp"
#include "sim/types.hpp"

namespace lssim {

enum class ProtoEventKind : std::uint8_t {
  kReadMiss,    ///< Global read transaction.
  kWriteMiss,   ///< Global write-miss transaction.
  kUpgrade,     ///< Ownership acquisition on a Shared copy.
  kLocalWrite,  ///< Store satisfied in LStemp: eliminated acquisition.
  kTag,         ///< Block tagged (LS bit / migratory).
  kDetag,       ///< Block de-tagged.
  kMigrate,     ///< Exclusive read reply (data migrates).
  kNotLs,       ///< Foreign access broke an LStemp copy.
  kWriteback,   ///< Dirty replacement.
  kReplHint,    ///< Clean/LStemp replacement.
};
inline constexpr int kNumProtoEventKinds = 10;

[[nodiscard]] constexpr const char* to_string(ProtoEventKind k) noexcept {
  switch (k) {
    case ProtoEventKind::kReadMiss: return "read-miss";
    case ProtoEventKind::kWriteMiss: return "write-miss";
    case ProtoEventKind::kUpgrade: return "upgrade";
    case ProtoEventKind::kLocalWrite: return "local-write";
    case ProtoEventKind::kTag: return "tag";
    case ProtoEventKind::kDetag: return "detag";
    case ProtoEventKind::kMigrate: return "migrate";
    case ProtoEventKind::kNotLs: return "notls";
    case ProtoEventKind::kWriteback: return "writeback";
    case ProtoEventKind::kReplHint: return "repl-hint";
  }
  return "?";
}

struct ProtocolEvent {
  Cycles time = 0;
  Addr block = 0;
  ProtoEventKind kind = ProtoEventKind::kReadMiss;
  NodeId actor = kInvalidNode;
  DirState dir_state = DirState::kUncached;  ///< State after the event.
  bool tagged = false;
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 0) : capacity_(capacity) {
    if (capacity_ > 0) ring_.reserve(capacity_);
  }

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }

  void record(Cycles time, ProtoEventKind kind, Addr block, NodeId actor,
              DirState dir_state, bool tagged) {
    if (!enabled()) return;
    const ProtocolEvent event{time, block, kind, actor, dir_state, tagged};
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[next_] = event;
      wrapped_ = true;
    }
    next_ = (next_ + 1) % capacity_;
    total_ += 1;
  }

  /// Number of events ever recorded (may exceed capacity).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }

  /// Applies `fn` to the retained events, oldest first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (ring_.empty()) return;
    const std::size_t start = wrapped_ ? next_ : 0;
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      fn(ring_[(start + i) % ring_.size()]);
    }
  }

  /// Renders the retained events, one per line.
  void dump(std::ostream& os) const {
    for_each([&os](const ProtocolEvent& e) {
      char line[128];
      std::snprintf(line, sizeof(line),
                    "@%-10llu P%-2d %-11s blk 0x%06llx  dir %-10s%s",
                    static_cast<unsigned long long>(e.time),
                    static_cast<int>(e.actor), to_string(e.kind),
                    static_cast<unsigned long long>(e.block),
                    to_string(e.dir_state), e.tagged ? "  [tagged]" : "");
      os << line << "\n";
    });
  }

 private:
  std::size_t capacity_;
  std::vector<ProtocolEvent> ring_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::uint64_t total_ = 0;
};

}  // namespace lssim
