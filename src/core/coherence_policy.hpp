// The pluggable protocol-policy seam of the memory system.
//
// The paper's observation (§2.1/§3.1) is that Baseline, AD and LS differ
// only in *when* a block gets tagged/de-tagged and in *whether* reads of
// tagged blocks return exclusive copies; the transaction mechanics —
// message legs, directory state machine, invalidation fan-out, latency
// composition — are shared. MemorySystem (core/protocol.cpp) implements
// exactly those shared mechanics and delegates every policy decision to
// a CoherencePolicy through the hooks below. Implementations live under
// src/core/policies/ and are constructed by the protocol registry
// (core/protocol_registry.hpp); adding a protocol means writing one
// policy class and registering it — the engine never changes.
//
// Hook contract (docs/PROTOCOL.md "Adding a protocol" has the prose):
//   * Hooks return *decisions* (TagAction / WriteTagDecision / bool); the
//     engine applies them through its tag/de-tag machinery, which owns
//     the §5.5 hysteresis counters, statistics, the event log and
//     telemetry. Policies never mutate directory entries themselves.
//   * Hooks fire at the same points for every protocol, in transaction
//     order: observe_access (every access, before the cache probe) →
//     read_grants_exclusive / on_global_write (miss classification) →
//     on_upgrade_invalidations / on_foreign_access (remote effects) →
//     on_victim_writeback (replacement). A policy that returns the
//     defaults everywhere is exactly the Baseline protocol.
//   * Per-node predictor state (ILS's confidence tables) is owned by the
//     policy, not the engine; ils_predictor() exposes it to tests.
#pragma once

#include <cstdint>

#include "core/directory.hpp"
#include "core/directory_policy.hpp"
#include "cache/cache.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace lssim {

class IlsPredictor;

/// A tag/de-tag decision applied by the engine's hysteresis machinery
/// (MemorySystem::tag_event / detag_event).
enum class TagAction : std::uint8_t { kNone, kTag, kDetag };

/// Why a tag/de-tag decision was made — the audit trail's reason code
/// (telemetry/audit.hpp). The engine knows the reason at three of its
/// four hook sites (foreign access, replacement, upgrade invalidations);
/// on_global_write decisions carry their reason in WriteTagDecision
/// because only the policy knows which of its rules fired.
enum class TagReason : std::uint8_t {
  kLsSequence,           ///< §3.1: ownership request source == LR field.
  kMigratoryDetect,      ///< AD: unbroken read→write hand-off at upgrade.
  kMigratoryFallback,    ///< LS+AD hybrid: AD evidence where LR is blind.
  kLoneWrite,            ///< Write miss without the writer's own read.
  kForeignAccess,        ///< Foreign access hit an LStemp owner (§3.1).
  kReplacement,          ///< Owning copy replaced (hand-off chain broken).
  kUpgradeInvalidations, ///< Upgrade invalidated several copies (AD).
};

[[nodiscard]] constexpr const char* to_string(TagReason reason) noexcept {
  switch (reason) {
    case TagReason::kLsSequence: return "ls-sequence";
    case TagReason::kMigratoryDetect: return "migratory-detect";
    case TagReason::kMigratoryFallback: return "migratory-fallback";
    case TagReason::kLoneWrite: return "lone-write";
    case TagReason::kForeignAccess: return "foreign-access";
    case TagReason::kReplacement: return "replacement";
    case TagReason::kUpgradeInvalidations: return "upgrade-invalidations";
  }
  return "?";
}

/// How the home resolves a read miss on a kDirty block
/// (CoherencePolicy::on_dirty_read).
///   kWriteback  — the owner writes the block back and downgrades to
///                 Shared; home memory becomes clean (MESI-family and
///                 the paper's baseline machine).
///   kOwnerKeeps — the owner supplies the data cache-to-cache and keeps
///                 the dirty block in Owned; home memory stays stale
///                 (MOESI / Dragon).
enum class DirtyReadResolution : std::uint8_t { kWriteback, kOwnerKeeps };

/// Decision returned by CoherencePolicy::on_global_write.
struct WriteTagDecision {
  TagAction action = TagAction::kNone;
  /// True when the de-tag was caused by a lone write (a write miss not
  /// preceded by the writer's own read, paper §3.1): the engine must not
  /// de-tag a second time when the same transaction later finds the old
  /// owner's copy in LStemp.
  bool lone_write_detag = false;
  /// Which rule fired (audit trail); meaningless when action is kNone.
  TagReason reason = TagReason::kLsSequence;
};

class CoherencePolicy {
 public:
  virtual ~CoherencePolicy() = default;

  [[nodiscard]] virtual ProtocolKind kind() const noexcept = 0;

  /// Whether the §5.5 `default_tagged` knob applies: may every directory
  /// entry start out tagged? Baseline (which never grants exclusive
  /// reads) returns false.
  [[nodiscard]] virtual bool supports_default_tagged() const noexcept {
    return true;
  }

  /// True when the policy needs observe_access() on every access (hits
  /// included). The engine caches this once so passive policies keep the
  /// L1-hit fast path at a single predictable branch.
  [[nodiscard]] virtual bool observes_accesses() const noexcept {
    return false;
  }

  /// Called for every access before the cache probe. Instruction-centric
  /// policies train/query their per-node predictor here. Returns true
  /// when a *read* should request an exclusive copy regardless of the
  /// home's tag bit. Only called when observes_accesses() is true.
  virtual bool observe_access(NodeId node, Addr block, std::uint32_t site,
                              bool is_write) {
    (void)node;
    (void)block;
    (void)site;
    (void)is_write;
    return false;
  }

  /// Classifies a read miss at the home: should the reply carry an
  /// exclusive (LStemp) copy? `predicted` is observe_access()'s verdict.
  /// The default is the paper's rule: data-centric tag OR requester-side
  /// prediction.
  [[nodiscard]] virtual bool read_grants_exclusive(
      const DirEntry& entry, bool predicted) const {
    return entry.tagged || predicted;
  }

  /// Tag rules at a global write action (ownership upgrade or write
  /// miss), evaluated before the directory transitions. `entry` still
  /// holds the pre-write state (sharers, last_reader, last_writer).
  virtual WriteTagDecision on_global_write(const DirEntry& entry,
                                           NodeId writer, bool upgrade) {
    (void)entry;
    (void)writer;
    (void)upgrade;
    return {};
  }

  /// How a read miss on a kDirty block resolves (see DirtyReadResolution).
  /// The default reproduces the baseline machine: the owner writes back
  /// and home memory becomes clean.
  [[nodiscard]] virtual DirtyReadResolution on_dirty_read(
      const DirEntry& entry) const {
    (void)entry;
    return DirtyReadResolution::kWriteback;
  }

  /// True for write-update protocols (Dragon): a write to a block with
  /// remote shared copies pushes the new data to them instead of
  /// invalidating, and the writer's line lands in Owned rather than
  /// Modified. The engine caches this once at construction.
  [[nodiscard]] virtual bool writes_update_sharers() const noexcept {
    return false;
  }

  /// Called when an ownership upgrade sends `count` invalidations to
  /// other sharers. AD's de-detection: several copies invalidated means
  /// the block is read-shared, not migratory.
  [[nodiscard]] virtual TagAction on_upgrade_invalidations(
      const DirEntry& entry, int count) const {
    (void)entry;
    (void)count;
    return TagAction::kNone;
  }

  /// Called when a foreign access reaches a block whose owner holds it
  /// in LStemp (exclusive, not yet written): paper §3.1 case 2. The
  /// default de-tags — a no-op for untagged entries, so policies that
  /// never tag need not override.
  [[nodiscard]] virtual TagAction on_foreign_access(
      const DirEntry& entry) const {
    (void)entry;
    return TagAction::kDetag;
  }

  /// Predictor feedback: the exclusive copy granted to `node` (from
  /// static access site `site`) was downgraded, invalidated or replaced
  /// before the owning write — the grant went unused.
  virtual void on_exclusive_grant_unused(NodeId node, std::uint32_t site) {
    (void)node;
    (void)site;
  }

  /// Called when a node replaces an L2 line (any state) before the
  /// victim's directory bookkeeping runs. AD drops the migratory tag
  /// here when the *owning* copy is replaced: the hand-off chain is
  /// broken (exactly the fragility the paper's §3.1 exploits — LS keeps
  /// its bit across replacements by design).
  [[nodiscard]] virtual TagAction on_victim_writeback(
      const DirEntry& entry, CacheState victim_state) const {
    (void)entry;
    (void)victim_state;
    return TagAction::kNone;
  }

  /// Per-node predictor state, when the policy has any (ILS). Exposed
  /// for tests and inspection tools; null for data-centric policies.
  [[nodiscard]] virtual IlsPredictor* ils_predictor() noexcept {
    return nullptr;
  }

  /// Lets the policy decode sharer words through the machine's directory
  /// organisation. The engine calls this once at construction; policies
  /// driven standalone (unit tests) keep the null default and fall back
  /// to the full-map bitmap encoding.
  void attach_directory_policy(const DirectoryPolicy* directory) noexcept {
    directory_ = directory;
  }

 protected:
  /// AD's migratory evidence at an ownership upgrade: exactly one other
  /// believed sharer, and it is the previous writer — a read→write
  /// hand-off. Imprecise entries (pointer overflow, coarse regions)
  /// yield no evidence: the believed set is a superset, so "exactly one
  /// other sharer" cannot be trusted.
  [[nodiscard]] bool migratory_evidence(const DirEntry& entry,
                                        NodeId writer) const {
    if (entry.imprecise || entry.last_writer == kInvalidNode ||
        entry.last_writer == writer) {
      return false;
    }
    if (directory_ == nullptr) {
      // Standalone fallback: interpret the word as a full-map bitmap.
      if (writer >= kFullMapNodes || entry.last_writer >= kFullMapNodes) {
        return false;
      }
      const std::uint64_t others =
          entry.sharers & ~(std::uint64_t{1} << writer);
      return others == (std::uint64_t{1} << entry.last_writer);
    }
    SharerSet others = directory_->believed_sharers(entry);
    others.reset(writer);
    return others.count() == 1 && others.test(entry.last_writer);
  }

  const DirectoryPolicy* directory_ = nullptr;
};

}  // namespace lssim
