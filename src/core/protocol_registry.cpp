#include "core/protocol_registry.hpp"

#include <cassert>
#include <vector>

#include "core/policies/ad_policy.hpp"
#include "core/policies/baseline_policy.hpp"
#include "core/policies/dragon_policy.hpp"
#include "core/policies/ils_policy.hpp"
#include "core/policies/ls_ad_hybrid_policy.hpp"
#include "core/policies/ls_dragon_policy.hpp"
#include "core/policies/ls_mesi_policy.hpp"
#include "core/policies/ls_policy.hpp"
#include "core/policies/mesi_policy.hpp"
#include "core/policies/moesi_policy.hpp"

namespace lssim {
namespace {

template <typename Policy>
std::unique_ptr<CoherencePolicy> make_from_protocol(
    const MachineConfig& config) {
  return std::make_unique<Policy>(config.protocol);
}

std::unique_ptr<CoherencePolicy> make_baseline(const MachineConfig&) {
  return std::make_unique<BaselinePolicy>();
}

template <typename Policy>
std::unique_ptr<CoherencePolicy> make_simple(const MachineConfig&) {
  return std::make_unique<Policy>();
}

std::unique_ptr<CoherencePolicy> make_ils(const MachineConfig& config) {
  return std::make_unique<IlsPolicy>(config.num_nodes);
}

// THE registration site: one row per protocol, in ProtocolKind order.
// Names come from the shared table in sim/config.hpp so that parsing
// (protocol_from_name) and printing (protocol_name) stay in lock-step.
const ProtocolInfo kRegistry[kNumProtocolKinds] = {
    {ProtocolKind::kBaseline, protocol_name(ProtocolKind::kBaseline),
     "DASH-like full-map write-invalidate (no load-store optimization)",
     &make_baseline},
    {ProtocolKind::kAd, protocol_name(ProtocolKind::kAd),
     "adaptive migratory detection (Stenström et al., ISCA'93)",
     &make_from_protocol<AdPolicy>},
    {ProtocolKind::kLs, protocol_name(ProtocolKind::kLs),
     "the paper's load-store extension (home-resident LS bit)",
     &make_from_protocol<LsPolicy>},
    {ProtocolKind::kIls, protocol_name(ProtocolKind::kIls),
     "instruction-centric load-exclusive prediction (per-site tables)",
     &make_ils},
    {ProtocolKind::kLsAd, protocol_name(ProtocolKind::kLsAd),
     "LS tagging with AD's migratory fallback (paper §6 combination)",
     &make_from_protocol<LsAdHybridPolicy>},
    {ProtocolKind::kMesi, protocol_name(ProtocolKind::kMesi),
     "classic MESI / Illinois (exclusive-clean cold reads, no tagging)",
     &make_simple<MesiPolicy>},
    {ProtocolKind::kMoesi, protocol_name(ProtocolKind::kMoesi),
     "MESI plus Owned: dirty owner services read misses cache-to-cache",
     &make_simple<MoesiPolicy>},
    {ProtocolKind::kDragon, protocol_name(ProtocolKind::kDragon),
     "Dragon write-update: writes push data to surviving sharers",
     &make_simple<DragonPolicy>},
    {ProtocolKind::kLsMesi, protocol_name(ProtocolKind::kLsMesi),
     "the paper's LS tagging composed over a MESI base",
     &make_from_protocol<LsMesiPolicy>},
    {ProtocolKind::kLsDragon, protocol_name(ProtocolKind::kLsDragon),
     "LS tagging over Dragon: tagged blocks migrate instead of updating",
     &make_from_protocol<LsDragonPolicy>},
};

}  // namespace

std::span<const ProtocolInfo> registered_protocols() { return kRegistry; }

const ProtocolInfo& protocol_info(ProtocolKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  assert(index < std::size(kRegistry) && kRegistry[index].kind == kind);
  return kRegistry[index];
}

const ProtocolInfo* find_protocol(std::string_view name) {
  ProtocolKind kind;
  if (!protocol_from_name(name, &kind)) {
    return nullptr;
  }
  return &protocol_info(kind);
}

std::string registered_protocol_names(const char* separator) {
  std::string names;
  for (const ProtocolInfo& info : kRegistry) {
    if (!names.empty()) {
      names += separator;
    }
    names += info.name;
  }
  return names;
}

std::vector<ProtocolKind> all_protocol_kinds() {
  std::vector<ProtocolKind> kinds;
  kinds.reserve(std::size(kRegistry));
  for (const ProtocolInfo& info : kRegistry) {
    kinds.push_back(info.kind);
  }
  return kinds;
}

std::unique_ptr<CoherencePolicy> make_policy(const MachineConfig& config) {
  return protocol_info(config.protocol.kind).make(config);
}

}  // namespace lssim
