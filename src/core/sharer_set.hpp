// A set of node identifiers sized for the largest supported machine.
//
// The directory-organisation seam (core/directory_policy.hpp) resolves
// every sharer question into one of these: invalidation targets, the
// believed-sharer set, checker snapshots. The 64-bit presence word inside
// DirEntry stays an *encoding* owned by the active DirectoryPolicy; this
// type is the decoded, organisation-independent answer, wide enough for
// kMaxNodes (256) nodes.
//
// Fixed-size (four words) and allocation-free: verification code builds
// and compares these per access.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

#include "sim/types.hpp"

namespace lssim {

class SharerSet {
 public:
  constexpr SharerSet() = default;

  /// The set {0, 1, ..., count-1} (every node of a `count`-node machine).
  [[nodiscard]] static constexpr SharerSet first_n(int count) noexcept {
    assert(count >= 0 && count <= kMaxNodes);
    SharerSet s;
    for (int w = 0; w < kWords; ++w) {
      const int low = w * 64;
      if (count >= low + 64) {
        s.words_[w] = ~std::uint64_t{0};
      } else if (count > low) {
        s.words_[w] = (std::uint64_t{1} << (count - low)) - 1;
      }
    }
    return s;
  }

  /// Decodes a full-map presence word (bit n = node n, nodes 0..63).
  [[nodiscard]] static constexpr SharerSet from_bitmap(
      std::uint64_t bits) noexcept {
    SharerSet s;
    s.words_[0] = bits;
    return s;
  }

  constexpr void set(NodeId node) noexcept {
    assert(node < kMaxNodes);
    words_[node >> 6] |= std::uint64_t{1} << (node & 63);
  }
  constexpr void reset(NodeId node) noexcept {
    assert(node < kMaxNodes);
    words_[node >> 6] &= ~(std::uint64_t{1} << (node & 63));
  }
  [[nodiscard]] constexpr bool test(NodeId node) const noexcept {
    assert(node < kMaxNodes);
    return (words_[node >> 6] >> (node & 63)) & 1u;
  }

  [[nodiscard]] constexpr int count() const noexcept {
    int n = 0;
    for (const std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }
  [[nodiscard]] constexpr bool empty() const noexcept {
    return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
  }

  /// True when every member of `other` is also a member of this set.
  [[nodiscard]] constexpr bool contains(const SharerSet& other) const noexcept {
    for (int w = 0; w < kWords; ++w) {
      if ((other.words_[w] & ~words_[w]) != 0) return false;
    }
    return true;
  }

  constexpr SharerSet& operator|=(const SharerSet& other) noexcept {
    for (int w = 0; w < kWords; ++w) words_[w] |= other.words_[w];
    return *this;
  }
  constexpr SharerSet& operator&=(const SharerSet& other) noexcept {
    for (int w = 0; w < kWords; ++w) words_[w] &= other.words_[w];
    return *this;
  }
  [[nodiscard]] constexpr bool operator==(const SharerSet&) const = default;

  /// Visits members in ascending node order — the order the engine
  /// issues invalidations in, so full-map behaviour is reproduced
  /// exactly by decode-then-iterate.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (int w = 0; w < kWords; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        fn(static_cast<NodeId>(w * 64 + bit));
      }
    }
  }

 private:
  static constexpr int kWords = (kMaxNodes + 63) / 64;
  static_assert(kWords == 4);
  std::uint64_t words_[kWords] = {0, 0, 0, 0};
};

}  // namespace lssim
