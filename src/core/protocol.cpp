#include "core/protocol.hpp"

#include <algorithm>
#include <cassert>

#include "check/invariants.hpp"
#include "core/directory_registry.hpp"
#include "core/protocol_registry.hpp"

namespace lssim {

MemorySystem::MemorySystem(const MachineConfig& config, AddressSpace& space,
                           Stats& stats, Telemetry* telemetry,
                           std::unique_ptr<CoherencePolicy> policy_override)
    : cfg_(config),
      lat_(config.latency),
      space_(space),
      stats_(stats),
      policy_(policy_override != nullptr ? std::move(policy_override)
                                         : make_policy(config)),
      policy_observes_accesses_(policy_->observes_accesses()),
      dirpol_(make_directory_policy(config)),
      dir_entry_limit_(dirpol_->max_entries()),
      net_(make_interconnect(
          config, stats,
          telemetry != nullptr ? telemetry->metrics() : nullptr)),
      dir_(config.protocol.default_tagged &&
           policy_->supports_default_tagged()),
      fs_(config.classify_false_sharing, stats),
      oracle_(true),
      log_(config.event_log_capacity),
      metrics_(telemetry != nullptr ? telemetry->metrics() : nullptr),
      trace_(telemetry != nullptr ? telemetry->trace() : nullptr),
      audit_(telemetry != nullptr ? telemetry->audit() : nullptr) {
  assert(config.validate().empty());
  snoops_ = net_->snoops();
  update_mode_ = policy_->writes_update_sharers();
  trust_updates_ = config.protocol.trust_update_sharers;
  fs_enabled_ = config.classify_false_sharing;
  l1_fast_hit_ = !fs_enabled_ && config.l2.assoc == 1;
  l1_lru_live_ = config.l1.assoc > 1;
  policy_->attach_directory_policy(dirpol_.get());
  if (dir_entry_limit_ != 0) {
    // Pre-size the table so entry() never rehashes: the eviction path
    // keeps the population at the bound, and a held entry reference must
    // survive a transaction (see Directory::entry).
    dir_.reserve(dir_entry_limit_);
  }
  caches_.reserve(static_cast<std::size_t>(config.num_nodes));
  for (int n = 0; n < config.num_nodes; ++n) {
    caches_.emplace_back(config.l1, config.l2);
    caches_.back().attach_telemetry(metrics_, static_cast<NodeId>(n));
  }
  dir_.attach_telemetry(metrics_);
  if (metrics_ != nullptr) {
    // Pre-register one counter per (node, protocol event kind) so the
    // hot path is a single indexed bump behind a stable handle.
    ev_counters_.resize(static_cast<std::size_t>(config.num_nodes));
    for (int n = 0; n < config.num_nodes; ++n) {
      const MetricLabels labels{{"node", std::to_string(n)}};
      for (int k = 0; k < kNumProtoEventKinds; ++k) {
        const auto kind = static_cast<ProtoEventKind>(k);
        ev_counters_[static_cast<std::size_t>(n)]
                    [static_cast<std::size_t>(k)] = metrics_->counter(
                        std::string("coherence.") + to_string(kind), labels);
      }
    }
    // Ownership-latency profiling: one histogram per transaction kind,
    // fed with issue->grant cycles at the end of each global transaction.
    lat_read_miss_ =
        metrics_->histogram("ownership.latency", {{"op", "read-miss"}});
    lat_write_miss_ =
        metrics_->histogram("ownership.latency", {{"op", "write-miss"}});
    lat_upgrade_ =
        metrics_->histogram("ownership.latency", {{"op", "upgrade"}});
  }
}

MemorySystem::~MemorySystem() = default;

Cycles MemorySystem::leg(NodeId src, NodeId dst, MsgType type, Cycles t) {
  t += lat_.controller;  // Egress through the sender's controller.
  if (src != dst) {
    t = net_->send(src, dst, type, t);
    t += lat_.controller;  // Ingress at the receiver.
  }
  return t;
}

Cycles MemorySystem::leg_noegress(NodeId src, NodeId dst, MsgType type,
                                  Cycles t) {
  if (src != dst) {
    t = net_->send(src, dst, type, t);
    t += lat_.controller;
  }
  return t;
}

std::uint64_t MemorySystem::word_mask(const AccessRequest& req) const {
  if (!cfg_.classify_false_sharing) {
    return 0;
  }
  return word_mask_of(req.addr, req.size, cfg_.l2.block_bytes,
                      cfg_.word_bytes);
}

std::uint64_t MemorySystem::apply_data(const AccessRequest& req) {
  switch (req.op) {
    case MemOpKind::kRead:
      return space_.load(req.addr, req.size);
    case MemOpKind::kWrite:
      space_.store(req.addr, req.size, req.wdata);
      return 0;
    case MemOpKind::kSwap: {
      const std::uint64_t old = space_.load(req.addr, req.size);
      space_.store(req.addr, req.size, req.wdata);
      return old;
    }
    case MemOpKind::kFetchAdd: {
      const std::uint64_t old = space_.load(req.addr, req.size);
      space_.store(req.addr, req.size, old + req.wdata);
      return old;
    }
    case MemOpKind::kCas: {
      const std::uint64_t old = space_.load(req.addr, req.size);
      if (old == req.expected) {
        space_.store(req.addr, req.size, req.wdata);
      }
      return old;
    }
  }
  return 0;
}

void MemorySystem::tag_event(DirEntry& entry, TagReason reason, Addr block,
                             NodeId node) {
  // Positive evidence resets any de-tag hysteresis progress; audit the
  // reset only when it actually rewinds a counter.
  if (entry.detag_progress != 0) {
    entry.detag_progress = 0;
    audit_event(TagAuditEvent::kDetagProgress, reason, entry, block, node);
  }
  if (entry.tagged) {
    return;
  }
  if (++entry.tag_progress >= cfg_.protocol.tag_hysteresis) {
    entry.tagged = true;
    entry.tag_progress = 0;
    stats_.blocks_tagged += 1;
    log_.record(current_time_, ProtoEventKind::kTag, current_block_,
                current_node_, entry.state, true);
    count_event(current_node_, ProtoEventKind::kTag);
    trace_instant(current_node_, ProtoEventKind::kTag, current_block_,
                  current_time_);
    audit_event(TagAuditEvent::kTag, reason, entry, block, node);
  } else {
    audit_event(TagAuditEvent::kTagProgress, reason, entry, block, node);
  }
}

void MemorySystem::detag_event(DirEntry& entry, TagReason reason, Addr block,
                               NodeId node) {
  if (entry.tag_progress != 0) {
    entry.tag_progress = 0;
    audit_event(TagAuditEvent::kTagProgress, reason, entry, block, node);
  }
  if (!entry.tagged) {
    return;
  }
  if (++entry.detag_progress >= cfg_.protocol.detag_hysteresis) {
    entry.tagged = false;
    entry.detag_progress = 0;
    stats_.blocks_detagged += 1;
    log_.record(current_time_, ProtoEventKind::kDetag, current_block_,
                current_node_, entry.state, false);
    count_event(current_node_, ProtoEventKind::kDetag);
    trace_instant(current_node_, ProtoEventKind::kDetag, current_block_,
                  current_time_);
    audit_event(TagAuditEvent::kDetag, reason, entry, block, node);
  } else {
    audit_event(TagAuditEvent::kDetagProgress, reason, entry, block, node);
  }
}

void MemorySystem::apply_tag_action(TagAction action, DirEntry& entry,
                                    TagReason reason, Addr block,
                                    NodeId node) {
  switch (action) {
    case TagAction::kNone:
      break;
    case TagAction::kTag:
      tag_event(entry, reason, block, node);
      break;
    case TagAction::kDetag:
      detag_event(entry, reason, block, node);
      break;
  }
}

HomeStateAtMiss MemorySystem::classify_home_state(Addr block,
                                                  const DirEntry& e) const {
  bool home_valid = true;
  if (e.state == DirState::kDirty || e.state == DirState::kOwned) {
    home_valid = false;
  } else if (e.state == DirState::kExcl) {
    const ProbeResult owner = caches_[e.owner].probe(block);
    home_valid = owner.state == CacheState::kLStemp;
  }
  if (e.tagged) {
    return home_valid ? HomeStateAtMiss::kCleanExcl
                      : HomeStateAtMiss::kDirtyExcl;
  }
  return home_valid ? HomeStateAtMiss::kClean : HomeStateAtMiss::kDirty;
}

void MemorySystem::invalidate_cached_copy(NodeId node, Addr block) {
  const CacheLine removed = caches_[node].invalidate(block);
  assert(removed.valid());
  fs_.on_line_death(removed);
  fs_.on_invalidated(node, block);
}

void MemorySystem::handle_l2_victim(NodeId node, const CacheLine& victim,
                                    Cycles t) {
  if (!victim.valid()) {
    return;
  }
  if (checker_ != nullptr) {
    checker_->note_touched(victim.block);
  }
  fs_.on_line_death(victim);
  const Addr block = victim.block;
  const NodeId home = space_.home_of(block);
  DirEntry& e = dir_.entry(block);
  // Policy decision: does replacing this copy drop the tag? (AD's
  // migratory hand-off chain breaks here; LS's home-resident bit and the
  // LS+AD hybrid survive replacements by design.)
  apply_tag_action(policy_->on_victim_writeback(e, victim.state), e,
                   TagReason::kReplacement, block, node);
  switch (victim.state) {
    case CacheState::kShared:
      assert((e.state == DirState::kShared || e.state == DirState::kOwned) &&
             dirpol_->may_be_sharer(e, node));
      dirpol_->remove_sharer(e, node);
      // An Owned entry stays Owned with an empty sharer set: the owner
      // still holds the dirty copy, and its next write collapses the
      // entry to Dirty (zero-target upgrade).
      if (e.state == DirState::kShared && dirpol_->believed_empty(e)) {
        e.state = DirState::kUncached;
        dirpol_->clear_sharers(e);
      }
      count_event(node, ProtoEventKind::kReplHint);
      if (home != node) {
        net_->send(node, home, MsgType::kReplHint, t);
      }
      break;
    case CacheState::kModified:
      log_.record(t, ProtoEventKind::kWriteback, block, node, e.state,
                  e.tagged);
      count_event(node, ProtoEventKind::kWriteback);
      assert((e.state == DirState::kDirty || e.state == DirState::kExcl) &&
             e.owner == node);
      e.state = DirState::kUncached;
      e.owner = kInvalidNode;
      if (home != node) {
        net_->send(node, home, MsgType::kWritebackData, t);
      }
      break;
    case CacheState::kLStemp:
      // Paper §3.1 case 3: replacement before the write; the home keeps
      // the current LS-bit value. Under ILS the unused grant penalises
      // the predicting site.
      policy_->on_exclusive_grant_unused(node, victim.grant_site);
      assert(e.state == DirState::kExcl && e.owner == node);
      e.state = DirState::kUncached;
      e.owner = kInvalidNode;
      count_event(node, ProtoEventKind::kReplHint);
      if (home != node) {
        net_->send(node, home, MsgType::kReplHint, t);
      }
      break;
    case CacheState::kOwned:
      // The owner evicts its dirty copy while other caches still share
      // the block: the writeback makes home memory clean again, and the
      // entry downgrades to plain Shared over the surviving sharers.
      log_.record(t, ProtoEventKind::kWriteback, block, node, e.state,
                  e.tagged);
      count_event(node, ProtoEventKind::kWriteback);
      assert(e.state == DirState::kOwned && e.owner == node);
      e.owner = kInvalidNode;
      if (dirpol_->believed_empty(e)) {
        e.state = DirState::kUncached;
        dirpol_->clear_sharers(e);
      } else {
        e.state = DirState::kShared;
      }
      if (home != node) {
        net_->send(node, home, MsgType::kWritebackData, t);
      }
      break;
    case CacheState::kInvalid:
      break;
  }
}

DirEntry& MemorySystem::dir_entry_at(Addr block, Cycles now) {
  if (dir_entry_limit_ != 0 && dir_.size() >= dir_entry_limit_ &&
      dir_.find(block) == nullptr) {
    evict_directory_entry(block, now);
  }
  return dir_.entry(block);
}

void MemorySystem::evict_directory_entry(Addr incoming, Cycles now) {
  const Addr victim = dir_.victim_for(incoming);
  DirEntry& e = dir_.entry(victim);
  const NodeId home = space_.home_of(victim);
  stats_.dir_entry_evictions += 1;
  if (checker_ != nullptr) {
    checker_->note_touched(victim);
  }
  switch (e.state) {
    case DirState::kUncached:
      break;
    case DirState::kShared: {
      // Eviction-forced invalidations: a block without a directory entry
      // must be uncached everywhere, so every believed sharer that still
      // holds a copy gives it up. Off the requesting transaction's
      // critical path; the messages still load the network.
      dirpol_->believed_sharers(e).for_each([&](NodeId s) {
        if (!caches_[s].probe(victim).l2_hit) {
          return;
        }
        leg(home, s, MsgType::kInval, now);
        invalidate_cached_copy(s, victim);
        leg(s, home, MsgType::kInvalAck, now);
      });
      break;
    }
    case DirState::kDirty:
    case DirState::kExcl: {
      const NodeId owner = e.owner;
      assert(owner != kInvalidNode);
      const ProbeResult op = caches_[owner].probe(victim);
      assert(op.l2_hit);
      leg(home, owner, MsgType::kInval, now);
      if (op.state == CacheState::kLStemp) {
        // The exclusive grant dies unused (predictor feedback, §3.1).
        policy_->on_exclusive_grant_unused(
            owner, caches_[owner].l2().find(victim)->grant_site);
        leg(owner, home, MsgType::kInvalAck, now);
      } else {
        assert(op.state == CacheState::kModified);
        leg(owner, home, MsgType::kWritebackData, now);
      }
      invalidate_cached_copy(owner, victim);
      break;
    }
    case DirState::kOwned: {
      // Sharers give up their clean copies; the owner's dirty copy is
      // written back so the block can live without a directory entry.
      const NodeId owner = e.owner;
      assert(owner != kInvalidNode);
      dirpol_->believed_sharers(e).for_each([&](NodeId s) {
        if (!caches_[s].probe(victim).l2_hit) {
          return;
        }
        leg(home, s, MsgType::kInval, now);
        invalidate_cached_copy(s, victim);
        leg(s, home, MsgType::kInvalAck, now);
      });
      assert(caches_[owner].probe(victim).state == CacheState::kOwned);
      leg(home, owner, MsgType::kInval, now);
      leg(owner, home, MsgType::kWritebackData, now);
      invalidate_cached_copy(owner, victim);
      break;
    }
  }
  dir_.erase(victim);
}

Cycles MemorySystem::do_read_miss(NodeId node, Addr block, Cycles now,
                                  bool predicted_exclusive,
                                  std::uint32_t site) {
  const NodeId home = space_.home_of(block);
  DirEntry& e = dir_entry_at(block, now);
  // Exclusive read replies: data-centric (home tag, LS/AD) or
  // instruction-centric (requester-side prediction, ILS).
  const bool want_exclusive =
      policy_->read_grants_exclusive(e, predicted_exclusive);

  stats_.global_read_misses += 1;
  stats_.data_misses += 1;
  log_.record(now, ProtoEventKind::kReadMiss, block, node, e.state,
              e.tagged);
  count_event(node, ProtoEventKind::kReadMiss);
  stats_.read_miss_home_state[static_cast<std::size_t>(
      classify_home_state(block, e))] += 1;
  oracle_.on_global_read(node, block);

  Cycles t = now + lat_.l2_access;
  t = leg(node, home, MsgType::kReadReq, t);
  t += lat_.memory;  // Directory + memory lookup (parallel).

  CacheState fill_state = CacheState::kShared;

  switch (e.state) {
    case DirState::kUncached: {
      if (want_exclusive) {
        fill_state = CacheState::kLStemp;
        e.state = DirState::kExcl;
        e.owner = node;
        stats_.exclusive_read_replies += 1;
      } else {
        e.state = DirState::kShared;
        dirpol_->add_sharer(e, node);
      }
      t = leg(home, node,
              fill_state == CacheState::kLStemp ? MsgType::kDataExclRead
                                                : MsgType::kDataShared,
              t);
      t += lat_.fill;
      break;
    }
    case DirState::kShared: {
      dirpol_->add_sharer(e, node);
      t = leg(home, node, MsgType::kDataShared, t);
      t += lat_.fill;
      break;
    }
    case DirState::kDirty:
    case DirState::kExcl: {
      const NodeId owner = e.owner;
      assert(owner != node && owner != kInvalidNode);
      CacheHierarchy& oc = caches_[owner];
      const ProbeResult op = oc.probe(block);
      assert(op.l2_hit);
      if (!snoops_) {
        // On a snooping transport the owner saw the request broadcast;
        // no directed forward is needed.
        t = leg(home, owner, MsgType::kReadFwd, t);
      }
      if (op.state == CacheState::kLStemp) {
        // Paper §3.1 case 2: foreign read before the owning write.
        // Owner's copy downgrades to Shared; home de-tags via NotLS (and
        // under ILS the granting site is penalised).
        t += lat_.l2_access;
        policy_->on_exclusive_grant_unused(owner,
                                           oc.l2().find(block)->grant_site);
        oc.set_state(block, CacheState::kShared);
        apply_tag_action(policy_->on_foreign_access(e), e,
                         TagReason::kForeignAccess, block, node);
        stats_.notls_messages += 1;
        log_.record(now, ProtoEventKind::kNotLs, block, owner, e.state,
                    e.tagged);
        count_event(owner, ProtoEventKind::kNotLs);
        trace_instant(owner, ProtoEventKind::kNotLs, block, now);
        t = leg_noegress(owner, home, MsgType::kNotLs, t);
        e.state = DirState::kShared;
        dirpol_->clear_sharers(e);
        dirpol_->add_sharer(e, owner);
        dirpol_->add_sharer(e, node);
        e.owner = kInvalidNode;
        t = leg(home, node, MsgType::kDataShared, t);
        t += lat_.fill;
      } else {
        assert(op.state == CacheState::kModified);
        t += lat_.l2_readout;
        if (want_exclusive) {
          // Tagged + dirty: migrate an exclusive copy to the reader; the
          // home memory is updated in passing so LStemp stays clean.
          invalidate_cached_copy(owner, block);
          if (snoops_) {
            // Cache-to-cache supply: memory snarfs the bus transfer.
            t = leg_noegress(owner, node, MsgType::kDataExclRead, t);
          } else {
            t = leg_noegress(owner, home, MsgType::kSharingWb, t);
            t += lat_.memory;
            t = leg(home, node, MsgType::kDataExclRead, t);
          }
          t += lat_.fill;
          e.state = DirState::kExcl;
          e.owner = node;
          dirpol_->clear_sharers(e);
          fill_state = CacheState::kLStemp;
          stats_.exclusive_read_replies += 1;
          log_.record(now, ProtoEventKind::kMigrate, block, node, e.state,
                      e.tagged);
          count_event(node, ProtoEventKind::kMigrate);
          trace_instant(node, ProtoEventKind::kMigrate, block, now);
        } else if (policy_->on_dirty_read(e) ==
                   DirtyReadResolution::kOwnerKeeps) {
          // MOESI / Dragon: the owner keeps the dirty block (Owned) and
          // supplies the data cache-to-cache; home memory stays stale.
          oc.set_state(block, CacheState::kOwned);
          e.state = DirState::kOwned;
          dirpol_->clear_sharers(e);
          dirpol_->add_sharer(e, node);
          t = leg_noegress(owner, node, MsgType::kDataShared, t);
          t += lat_.fill;
        } else {
          // Plain read-on-dirty: 4 network hops (paper §4.2).
          oc.set_state(block, CacheState::kShared);
          if (snoops_) {
            // The writeback and the reader's copy are one bus transfer.
            t = leg_noegress(owner, home, MsgType::kSharingWb, t);
          } else {
            t = leg_noegress(owner, home, MsgType::kSharingWb, t);
            t += lat_.memory;
            t = leg(home, node, MsgType::kDataShared, t);
          }
          t += lat_.fill;
          e.state = DirState::kShared;
          dirpol_->clear_sharers(e);
          dirpol_->add_sharer(e, owner);
          dirpol_->add_sharer(e, node);
          e.owner = kInvalidNode;
        }
      }
      break;
    }
    case DirState::kOwned: {
      // MOESI / Dragon: the Owned copy services the miss cache-to-cache
      // (3-hop: requester -> home -> owner -> requester). Under an LS
      // hybrid a tagged block instead migrates exclusively, purging every
      // other copy.
      const NodeId owner = e.owner;
      assert(owner != node && owner != kInvalidNode);
      assert(caches_[owner].probe(block).state == CacheState::kOwned);
      if (!snoops_) {
        t = leg(home, owner, MsgType::kReadFwd, t);
      }
      t += lat_.l2_readout;
      if (want_exclusive) {
        const SharerSet targets = dirpol_->invalidation_targets(e, node);
        stats_.invalidations_sent +=
            static_cast<std::uint64_t>(targets.count());
        Cycles acks = t;
        Cycles issue = t;
        targets.for_each([&](NodeId s) {
          if (caches_[s].probe(block).l2_hit) {
            invalidate_cached_copy(s, block);
          }
          if (snoops_) {
            return;
          }
          Cycles a = leg(home, s, MsgType::kInval, issue);
          a += lat_.l2_access;
          a = leg(s, node, MsgType::kInvalAck, a);
          acks = std::max(acks, a);
          issue += lat_.controller;
        });
        invalidate_cached_copy(owner, block);
        if (snoops_) {
          t = leg_noegress(owner, node, MsgType::kDataExclRead, t);
        } else {
          t = leg_noegress(owner, home, MsgType::kSharingWb, t);
          t += lat_.memory;
          t = leg(home, node, MsgType::kDataExclRead, t);
          t = std::max(t, acks);
        }
        t += lat_.fill;
        e.state = DirState::kExcl;
        e.owner = node;
        dirpol_->clear_sharers(e);
        fill_state = CacheState::kLStemp;
        stats_.exclusive_read_replies += 1;
        log_.record(now, ProtoEventKind::kMigrate, block, node, e.state,
                    e.tagged);
        count_event(node, ProtoEventKind::kMigrate);
        trace_instant(node, ProtoEventKind::kMigrate, block, now);
      } else {
        t = leg_noegress(owner, node, MsgType::kDataShared, t);
        t += lat_.fill;
        dirpol_->add_sharer(e, node);
      }
      break;
    }
  }
  e.last_reader = node;

  const CacheLine victim = caches_[node].fill(block, fill_state);
  handle_l2_victim(node, victim, t);
  CacheLine* filled = caches_[node].l2().find(block);
  if (fill_state == CacheState::kLStemp) {
    filled->grant_site = site;
  }
  fs_.on_fill(node, block, *filled);
  trace_span(node, ProtoEventKind::kReadMiss, block, now, t);
  observe_latency(lat_read_miss_, t - now);
  return t;
}

Cycles MemorySystem::do_write_global(NodeId node, Addr block, Cycles now,
                                     bool upgrade) {
  const NodeId home = space_.home_of(block);
  DirEntry& e = dir_entry_at(block, now);

  stats_.global_write_actions += 1;
  if (!upgrade) {
    stats_.data_misses += 1;
    count_event(node, ProtoEventKind::kWriteMiss);
  }

  // Policy tag rules run on the pre-transition entry (paper §3.1 reads
  // the LR field and the sharer set as they were at the request).
  const WriteTagDecision tag_decision =
      policy_->on_global_write(e, node, upgrade);
  apply_tag_action(tag_decision.action, e, tag_decision.reason, block, node);
  const bool lone_write_detag = tag_decision.lone_write_detag;
  oracle_.on_global_write(node, block, /*eliminated=*/false, current_tag_);
  e.last_writer = node;
  // A write by anyone consumes the LR field: a later write can only be
  // part of a load-store sequence if a fresh read precedes it.
  e.last_reader = kInvalidNode;

  Cycles t = now + lat_.l2_access;
  t = leg(node, home, upgrade ? MsgType::kOwnReq : MsgType::kReadExReq, t);
  t += lat_.memory;  // Directory (+ speculative data) access.
  const Cycles t_dir = t;

  Cycles completion = 0;

  if (upgrade) {
    // Paper Fig 5: "Global Inv's" are ownership acquisitions — global
    // write actions to a block that is Shared (or Owned) in the local
    // cache.
    stats_.ownership_acquisitions += 1;
    log_.record(now, ProtoEventKind::kUpgrade, block, node, e.state,
                e.tagged);
    count_event(node, ProtoEventKind::kUpgrade);
    assert((e.state == DirState::kShared &&
            dirpol_->may_be_sharer(e, node)) ||
           (e.state == DirState::kOwned &&
            (e.owner == node || dirpol_->may_be_sharer(e, node))));
    completion = leg(home, node, MsgType::kOwnAck, t_dir);

    // The organisation resolves who must be invalidated (or updated):
    // the exact sharer set under full-map, a broadcast after Dir_iB
    // overflow, whole regions under coarse vectors. A previous Owned
    // owner is a target too — it is not in the sharer word.
    SharerSet targets = dirpol_->invalidation_targets(e, node);
    if (e.state == DirState::kOwned && e.owner != node) {
      targets.set(e.owner);
    }
    const int count = targets.count();
    if (update_mode_ && count > 0) {
      // Dragon write-update: push the new data to every remote copy
      // instead of invalidating it. The writer becomes the Owned
      // supplier; a previous owner downgrades to a plain (updated)
      // sharer. Every write while copies survive repeats this global
      // update transaction — the cost the protocol trades for the
      // eliminated re-read misses.
      stats_.update_transactions += 1;
      stats_.updates_sent += static_cast<std::uint64_t>(count);
      // Only targets that still hold a copy survive as sharers: an
      // update reaching a cache that silently evicted the block (or an
      // imprecise believed set covering non-holders) updates nothing.
      SharerSet survivors;
      Cycles issue = t_dir;
      targets.for_each([&](NodeId s) {
        const ProbeResult sp = caches_[s].probe(block);
        if (sp.l2_hit || trust_updates_) {
          survivors.set(s);
        }
        if (sp.l2_hit && sp.state == CacheState::kOwned) {
          caches_[s].set_state(block, CacheState::kShared);
        }
        if (snoops_) {
          return;  // The bus write broadcast updated every snooper.
        }
        Cycles a = leg(home, s, MsgType::kUpdate, issue);
        a += lat_.l2_access;
        a = leg(s, node, MsgType::kUpdateAck, a);
        completion = std::max(completion, a);
        issue += lat_.controller;  // Updates issue serially, like invals.
      });
      e.state = DirState::kOwned;
      e.owner = node;
      dirpol_->clear_sharers(e);
      survivors.for_each([&](NodeId s) { dirpol_->add_sharer(e, s); });
      caches_[node].set_state(block, CacheState::kOwned);
    } else {
      // AD-style de-detection: a write invalidating several copies is
      // evidence the block is read-shared, not migratory.
      apply_tag_action(policy_->on_upgrade_invalidations(e, count), e,
                       TagReason::kUpgradeInvalidations, block, node);
      stats_.invalidations_sent += static_cast<std::uint64_t>(count);
      if (count == 1) {
        stats_.single_invalidations += 1;
      }
      Cycles issue = t_dir;
      targets.for_each([&](NodeId s) {
        if (snoops_) {
          // Snoop-invalidate: the request broadcast reached every cache.
          if (caches_[s].probe(block).l2_hit) {
            invalidate_cached_copy(s, block);
          }
          return;
        }
        Cycles a = leg(home, s, MsgType::kInval, issue);
        a += lat_.l2_access;
        if (caches_[s].probe(block).l2_hit) {
          invalidate_cached_copy(s, block);
        }
        a = leg(s, node, MsgType::kInvalAck, a);
        completion = std::max(completion, a);
        issue += lat_.controller;  // Directory issues invalidations serially.
      });
      e.state = DirState::kDirty;
      e.owner = node;
      dirpol_->clear_sharers(e);
      caches_[node].set_state(block, CacheState::kModified);
    }
  } else {
    CacheState fill_state = CacheState::kModified;
    // Update-mode transactions leave remote copies alive: the writer
    // then fills Owned over these surviving sharers.
    SharerSet survivors;
    switch (e.state) {
      case DirState::kUncached: {
        completion = leg(home, node, MsgType::kDataExclWrite, t_dir);
        completion += lat_.fill;
        break;
      }
      case DirState::kShared: {
        const SharerSet targets = dirpol_->invalidation_targets(e, node);
        const int count = targets.count();
        Cycles data = leg(home, node, MsgType::kDataExclWrite, t_dir);
        data += lat_.fill;
        completion = data;
        Cycles issue = t_dir;
        if (update_mode_ && count > 0) {
          // Dragon: the remote copies are updated, not invalidated. Only
          // targets that still hold a copy survive as sharers.
          stats_.update_transactions += 1;
          stats_.updates_sent += static_cast<std::uint64_t>(count);
          targets.for_each([&](NodeId s) {
            if (caches_[s].probe(block).l2_hit || trust_updates_) {
              survivors.set(s);
            }
            if (snoops_) {
              return;  // The bus write broadcast updated every snooper.
            }
            Cycles a = leg(home, s, MsgType::kUpdate, issue);
            a += lat_.l2_access;
            a = leg(s, node, MsgType::kUpdateAck, a);
            completion = std::max(completion, a);
            issue += lat_.controller;
          });
          fill_state = CacheState::kOwned;
        } else {
          stats_.invalidations_sent += static_cast<std::uint64_t>(count);
          if (count == 1) {
            stats_.single_invalidations += 1;
          }
          targets.for_each([&](NodeId s) {
            if (snoops_) {
              if (caches_[s].probe(block).l2_hit) {
                invalidate_cached_copy(s, block);
              }
              return;
            }
            Cycles a = leg(home, s, MsgType::kInval, issue);
            a += lat_.l2_access;
            if (caches_[s].probe(block).l2_hit) {
              invalidate_cached_copy(s, block);
            }
            a = leg(s, node, MsgType::kInvalAck, a);
            completion = std::max(completion, a);
            issue += lat_.controller;
          });
        }
        break;
      }
      case DirState::kDirty:
      case DirState::kExcl: {
        const NodeId owner = e.owner;
        assert(owner != node && owner != kInvalidNode);
        const ProbeResult op = caches_[owner].probe(block);
        assert(op.l2_hit);
        Cycles t2 = t_dir;
        if (!snoops_) {
          t2 = leg(home, owner, MsgType::kWriteFwd, t2);
        }
        if (op.state == CacheState::kLStemp) {
          // Paper §3.1 case 2 (foreign write): de-tag, unless the lone-
          // write rule above already consumed this event.
          policy_->on_exclusive_grant_unused(
              owner, caches_[owner].l2().find(block)->grant_site);
          if (!lone_write_detag) {
            apply_tag_action(policy_->on_foreign_access(e), e,
                             TagReason::kForeignAccess, block, node);
          }
          t2 += lat_.l2_access;
        } else {
          assert(op.state == CacheState::kModified);
          t2 += lat_.l2_readout;
        }
        if (update_mode_) {
          // Dragon: the previous holder keeps an updated shared copy.
          stats_.update_transactions += 1;
          stats_.updates_sent += 1;
          caches_[owner].set_state(block, CacheState::kShared);
          fill_state = CacheState::kOwned;
          survivors.set(owner);
        } else {
          invalidate_cached_copy(owner, block);
        }
        if (snoops_) {
          // Cache-to-cache supply; memory snarfs the bus transfer.
          t2 = leg_noegress(owner, node, MsgType::kDataExclWrite, t2);
        } else {
          t2 = leg_noegress(owner, home, MsgType::kOwnerXferAck, t2);
          t2 += lat_.memory;
          t2 = leg(home, node, MsgType::kDataExclWrite, t2);
        }
        t2 += lat_.fill;
        completion = t2;
        break;
      }
      case DirState::kOwned: {
        const NodeId owner = e.owner;
        assert(owner != node && owner != kInvalidNode);
        assert(caches_[owner].probe(block).state == CacheState::kOwned);
        const SharerSet targets = dirpol_->invalidation_targets(e, node);
        Cycles t2 = t_dir;
        if (!snoops_) {
          t2 = leg(home, owner, MsgType::kWriteFwd, t2);
        }
        t2 += lat_.l2_readout;
        Cycles acks = t_dir;
        Cycles issue = t_dir;
        if (update_mode_) {
          stats_.update_transactions += 1;
          stats_.updates_sent +=
              static_cast<std::uint64_t>(targets.count() + 1);
          caches_[owner].set_state(block, CacheState::kShared);
          targets.for_each([&](NodeId s) {
            if (caches_[s].probe(block).l2_hit || trust_updates_) {
              survivors.set(s);
            }
            if (snoops_) {
              return;
            }
            Cycles a = leg(home, s, MsgType::kUpdate, issue);
            a += lat_.l2_access;
            a = leg(s, node, MsgType::kUpdateAck, a);
            acks = std::max(acks, a);
            issue += lat_.controller;
          });
          fill_state = CacheState::kOwned;
          survivors.set(owner);
        } else {
          const int count = targets.count();
          stats_.invalidations_sent += static_cast<std::uint64_t>(count);
          if (count == 1) {
            stats_.single_invalidations += 1;
          }
          targets.for_each([&](NodeId s) {
            if (caches_[s].probe(block).l2_hit) {
              invalidate_cached_copy(s, block);
            }
            if (snoops_) {
              return;
            }
            Cycles a = leg(home, s, MsgType::kInval, issue);
            a += lat_.l2_access;
            a = leg(s, node, MsgType::kInvalAck, a);
            acks = std::max(acks, a);
            issue += lat_.controller;
          });
          invalidate_cached_copy(owner, block);
        }
        if (snoops_) {
          t2 = leg_noegress(owner, node, MsgType::kDataExclWrite, t2);
        } else {
          t2 = leg_noegress(owner, home, MsgType::kOwnerXferAck, t2);
          t2 += lat_.memory;
          t2 = leg(home, node, MsgType::kDataExclWrite, t2);
        }
        t2 += lat_.fill;
        completion = std::max(t2, acks);
        break;
      }
    }
    if (fill_state == CacheState::kOwned) {
      e.state = DirState::kOwned;
      e.owner = node;
      dirpol_->clear_sharers(e);
      survivors.for_each([&](NodeId s) { dirpol_->add_sharer(e, s); });
    } else {
      e.state = DirState::kDirty;
      e.owner = node;
      dirpol_->clear_sharers(e);
    }
    const CacheLine victim = caches_[node].fill(block, fill_state);
    handle_l2_victim(node, victim, completion);
    fs_.on_fill(node, block, *caches_[node].l2().find(block));
  }
  trace_span(node,
             upgrade ? ProtoEventKind::kUpgrade : ProtoEventKind::kWriteMiss,
             block, now, completion);
  observe_latency(upgrade ? lat_upgrade_ : lat_write_miss_,
                  completion - now);
  return completion;
}

AccessResult MemorySystem::access(NodeId node, const AccessRequest& req,
                                  Cycles now) {
  assert(node < caches_.size());
  stats_.accesses += 1;

  CacheHierarchy& ch = caches_[node];
  const Addr block = ch.l2().block_of(req.addr);
  const bool is_write = req.is_write();

  AccessResult result;
  bool predicted_exclusive = false;
  if (policy_observes_accesses_) {
    predicted_exclusive =
        policy_->observe_access(node, block, req.site, is_write);
  }

  // L1-hit fast path: valid L1 lines mirror their L2 twin's state
  // (inclusion invariant), so one small-array probe classifies the
  // access. Eligible only when the L2-side per-hit bookkeeping is dead:
  // classifier off (no accessed-word mask) and direct-mapped L2 (no LRU
  // stamp). Everything observable — counters, latency, policy training,
  // LStemp conversion, checker — matches the general path exactly.
  if (l1_fast_hit_) {
    CacheLine* line1 = ch.l1().find(block);
    if (line1 != nullptr &&
        (!is_write || line1->state == CacheState::kModified ||
         line1->state == CacheState::kLStemp)) {
      result.l1_hit = true;
      result.l2_hit = true;
      result.latency = lat_.l1_access;
      stats_.l1_hits += 1;
      ch.l1().touch(*line1);
      if (is_write && line1->state == CacheState::kLStemp) {
        CacheLine* line2 = ch.l2().find(block);
        line2->state = CacheState::kModified;
        line1->state = CacheState::kModified;
        stats_.eliminated_acquisitions += 1;
        log_.record(now, ProtoEventKind::kLocalWrite, block, node,
                    DirState::kExcl, true);
        count_event(node, ProtoEventKind::kLocalWrite);
        trace_instant(node, ProtoEventKind::kLocalWrite, block, now);
        // This store would have been a global write action under the
        // baseline protocol; the home learns about it lazily.
        oracle_.on_global_write(node, block, /*eliminated=*/true, req.tag);
      }
      if (!lean_replay_) {
        result.value = apply_data(req);
      }
      if (checker_ != nullptr) {
        checker_->on_access(*this, node, req, result, now);
      }
      return result;
    }
  }

  // One associative search resolves both levels; the returned line
  // pointers carry the whole access (LRU touch, state change, classifier
  // mask) so hits never repeat the lookup.
  LineLookup lines = ch.lookup(block);

  if (lines.l2 != nullptr &&
      (!is_write || lines.l2->state == CacheState::kModified ||
       lines.l2->state == CacheState::kLStemp)) {
    // Cache hit (including the technique's payoff: a write on an
    // exclusive-unwritten LStemp line completes locally).
    result.l1_hit = lines.l1 != nullptr;
    result.l2_hit = true;
    result.latency = result.l1_hit ? lat_.l1_access
                                   : lat_.l1_access + lat_.l2_access;
    if (result.l1_hit) {
      stats_.l1_hits += 1;
    } else {
      stats_.l2_hits += 1;
      lines.l1 = ch.refill_l1(*lines.l2);
    }
    if (is_write && lines.l2->state == CacheState::kLStemp) {
      lines.l2->state = CacheState::kModified;
      lines.l1->state = CacheState::kModified;
      stats_.eliminated_acquisitions += 1;
      log_.record(now, ProtoEventKind::kLocalWrite, block, node,
                  DirState::kExcl, true);
      count_event(node, ProtoEventKind::kLocalWrite);
      trace_instant(node, ProtoEventKind::kLocalWrite, block, now);
      // This store would have been a global write action under the
      // baseline protocol; the home learns about it lazily.
      oracle_.on_global_write(node, block, /*eliminated=*/true, req.tag);
    }
  } else {
    // Global transaction: publish the in-flight access context for the
    // oracle/log/audit hooks reached through the tag machinery.
    current_tag_ = req.tag;
    current_time_ = now;
    current_node_ = node;
    current_block_ = block;
    if (lines.l2 != nullptr) {
      // Write on a Shared (or update-protocol Owned) line: ownership
      // upgrade.
      assert(lines.l2->state == CacheState::kShared ||
             lines.l2->state == CacheState::kOwned);
      result.l2_hit = true;
      result.global = true;
      result.latency =
          do_write_global(node, block, now, /*upgrade=*/true) - now;
    } else {
      result.global = true;
      const Cycles done =
          is_write ? do_write_global(node, block, now, false)
                   : do_read_miss(node, block, now, predicted_exclusive,
                                  req.site);
      result.latency = done - now;
    }
    // The transaction refilled (or re-created) the line. When the fast
    // hit path is eligible the post-transaction bookkeeping is almost
    // entirely dead (classifier off, direct-mapped L2): only a
    // set-associative L1's LRU stamp survives, so skip the L2 re-probe
    // and finish here.
    if (l1_fast_hit_) {
      if (l1_lru_live_) {
        CacheLine* line1 = ch.l1().find(block);
        if (line1 != nullptr) {
          ch.l1().touch(*line1);
        }
      }
      if (!lean_replay_) {
        result.value = apply_data(req);
      }
      if (checker_ != nullptr) {
        checker_->on_access(*this, node, req, result, now);
      }
      return result;
    }
    lines.l2 = ch.l2().find(block);
    lines.l1 = ch.l1().find(block);
  }

  assert(lines.l2 != nullptr);
  if (fs_enabled_) {
    const std::uint64_t wmask = word_mask(req);
    ch.record_access(lines.l1, *lines.l2, wmask);
    fs_.on_access(*lines.l2, wmask);
    if (is_write) {
      fs_.on_write_words(node, block, wmask);
    }
  } else {
    ch.record_access(lines.l1, *lines.l2, 0);
  }
  if (!lean_replay_) {
    result.value = apply_data(req);
  }
  if (checker_ != nullptr) {
    checker_->on_access(*this, node, req, result, now);
  }
  return result;
}

void MemorySystem::finalize() {
  for (auto& ch : caches_) {
    ch.l2().for_each_valid(
        [this](const CacheLine& line) { fs_.on_line_death(line); });
  }
}

bool MemorySystem::check_coherence_invariants() const {
  bool ok = true;
  dir_.for_each([&](Addr block, const DirEntry& e) {
    int shared_copies = 0;
    int excl_copies = 0;
    int owned_copies = 0;
    for (std::size_t n = 0; n < caches_.size(); ++n) {
      const NodeId id = static_cast<NodeId>(n);
      const ProbeResult p = caches_[n].probe(block);
      if (!p.l2_hit) {
        // A precise entry claims exact membership; an imprecise believed
        // set (Dir_iB overflow, coarse regions) may cover caches that
        // hold nothing.
        if (e.state == DirState::kShared && !e.imprecise &&
            dirpol_->may_be_sharer(e, id))
          ok = false;
        if (e.state == DirState::kOwned && !e.imprecise &&
            (e.owner == id || dirpol_->may_be_sharer(e, id)))
          ok = false;
        continue;
      }
      switch (p.state) {
        case CacheState::kShared:
          ++shared_copies;
          // Superset rule: a real holder must always be believed. Under
          // kOwned the sharer word tracks the non-owner copies.
          if (e.state == DirState::kShared || e.state == DirState::kOwned) {
            if (!dirpol_->may_be_sharer(e, id)) ok = false;
          } else {
            ok = false;
          }
          break;
        case CacheState::kModified:
          ++excl_copies;
          if ((e.state != DirState::kDirty && e.state != DirState::kExcl) ||
              e.owner != id)
            ok = false;
          break;
        case CacheState::kLStemp:
          ++excl_copies;
          if (e.state != DirState::kExcl || e.owner != id) ok = false;
          break;
        case CacheState::kOwned:
          ++owned_copies;
          if (e.state != DirState::kOwned || e.owner != id) ok = false;
          break;
        case CacheState::kInvalid:
          break;
      }
    }
    if (excl_copies > 1 || (excl_copies == 1 && shared_copies > 0)) ok = false;
    // SWMR relaxation under ownership: at most one Owned copy, never
    // alongside a Modified/LStemp copy.
    if (owned_copies > 1 || (owned_copies == 1 && excl_copies > 0)) ok = false;
    if (e.state == DirState::kShared && !e.imprecise &&
        shared_copies != dirpol_->believed_sharers(e).count())
      ok = false;
    if ((e.state == DirState::kDirty || e.state == DirState::kExcl) &&
        (excl_copies != 1 || owned_copies != 0))
      ok = false;
    if (e.state == DirState::kOwned) {
      if (owned_copies != 1 || excl_copies != 0) ok = false;
      if (!e.imprecise &&
          shared_copies != dirpol_->believed_sharers(e).count())
        ok = false;
    }
    if ((e.state == DirState::kShared || e.state == DirState::kUncached) &&
        owned_copies != 0)
      ok = false;
    if (e.state == DirState::kUncached && (shared_copies + excl_copies) != 0)
      ok = false;
  });
  for (const auto& ch : caches_) {
    if (!ch.check_inclusion()) ok = false;
  }
  return ok;
}

}  // namespace lssim
