// Directory-organisation seam: who the home believes holds a block.
//
// The transaction engine (core/protocol.cpp) never interprets the
// 64-bit sharer word in a DirEntry itself; it routes every sharer
// mutation and every sharer question through the machine's single
// DirectoryPolicy. Each organisation owns its encoding of that word:
//
//   full-map      presence bitmap, bit n = node n (<= 64 nodes, exact)
//   limited-ptr   Dir_iB: up to 7 packed 8-bit node pointers plus a
//                 control byte; broadcast once the pointers overflow
//   coarse        coarse bit-vector: bit r = a region of `region`
//                 consecutive nodes; imprecise whenever region > 1
//   sparse        coarse encoding with auto-sized regions *and* a
//                 bounded entry population — the engine evicts victim
//                 entries (forcing invalidations) to stay under it
//
// The contract that keeps verification meaningful under imprecision:
// believed_sharers() must always be a *superset* of the caches that
// actually hold the block, and must equal it exactly whenever the
// entry's `imprecise` bit is clear. Organisations set/clear that bit
// themselves; the engine and the invariant checker only read it.
#pragma once

#include <cstdint>

#include "core/directory.hpp"
#include "core/sharer_set.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace lssim {

class DirectoryPolicy {
 public:
  virtual ~DirectoryPolicy() = default;

  [[nodiscard]] virtual DirectoryKind kind() const noexcept = 0;

  /// Forgets every sharer (transition to kUncached/kDirty/kExcl) and
  /// clears `imprecise` — the organisation is exact about an empty set.
  virtual void clear_sharers(DirEntry& entry) const noexcept = 0;

  /// Records that `node` received a shared copy.
  virtual void add_sharer(DirEntry& entry, NodeId node) const noexcept = 0;

  /// Processes a replacement hint from `node`. Imprecise encodings may
  /// be unable to act on it (a coarse region bit covers other nodes);
  /// the believed set stays a superset either way.
  virtual void remove_sharer(DirEntry& entry, NodeId node) const noexcept = 0;

  /// True when the organisation cannot rule out that `node` holds a
  /// shared copy. Exact membership under precise encodings.
  [[nodiscard]] virtual bool may_be_sharer(const DirEntry& entry,
                                           NodeId node) const noexcept = 0;

  /// True when the believed sharer set is empty (the entry can drop to
  /// kUncached after a replacement hint).
  [[nodiscard]] virtual bool believed_empty(
      const DirEntry& entry) const noexcept = 0;

  /// The decoded believed sharer set: always a superset of the actual
  /// holders, exact when `entry.imprecise` is clear.
  [[nodiscard]] virtual SharerSet believed_sharers(
      const DirEntry& entry) const noexcept = 0;

  /// Caches that must receive an invalidation when `requester` acquires
  /// ownership: the believed sharers minus the requester itself.
  [[nodiscard]] SharerSet invalidation_targets(const DirEntry& entry,
                                               NodeId requester) const {
    SharerSet targets = believed_sharers(entry);
    targets.reset(requester);
    return targets;
  }

  /// Entry-population bound of the sparse organisation; 0 = unbounded.
  [[nodiscard]] virtual std::uint32_t max_entries() const noexcept {
    return 0;
  }
};

}  // namespace lssim
