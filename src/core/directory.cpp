#include "core/directory.hpp"

namespace lssim {

void Directory::attach_telemetry(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    entries_created_ = metrics_->counter("directory.entries_created");
  }
}

}  // namespace lssim
