#include "core/directory.hpp"

// Directory is header-only today; this TU anchors the module.

namespace lssim {}  // namespace lssim
