// The memory-system transaction engine: caches + directory + network
// glued into atomic, synchronously executed coherence transactions.
//
// This is the core of the reproduction. One protocol-agnostic engine
// implements the shared transaction mechanics (paper §2.1, §3.1): message
// legs, the directory state machine, invalidation fan-out and latency
// composition. Everything protocol-specific — when a block gets tagged or
// de-tagged, whether a read of a tagged block returns an exclusive
// (LStemp) copy, predictor training — is delegated to a CoherencePolicy
// (core/coherence_policy.hpp) resolved from the protocol registry:
// Baseline, AD, LS, ILS and the LS+AD hybrid all run through the exact
// same engine code.
//
// Because the simulated machine is sequentially consistent and processors
// stall on every L2 miss (paper §4.2), each access can be executed as one
// atomic transaction at its issue time: there are no transient directory
// states and no retries. Latency is composed from the Table 1 components;
// with default latencies an uncontended read costs exactly 100 (local),
// 220 (2-hop clean) or 420 (4-hop read-on-dirty) cycles.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/hierarchy.hpp"
#include "core/coherence_policy.hpp"
#include "core/directory.hpp"
#include "core/directory_policy.hpp"
#include "mem/address_space.hpp"
#include "net/interconnect.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"
#include "core/event_log.hpp"
#include "core/ils_predictor.hpp"
#include "stats/false_sharing.hpp"
#include "stats/ls_oracle.hpp"
#include "stats/stats.hpp"
#include "telemetry/telemetry.hpp"

namespace lssim {

namespace check {
class InvariantChecker;  // src/check/invariants.hpp
}

/// Operation kinds a processor can issue. Atomic read-modify-writes are
/// single coherence transactions treated as writes (like SPARC ldstub /
/// swap), returning the old value.
enum class MemOpKind : std::uint8_t {
  kRead,
  kWrite,
  kSwap,
  kFetchAdd,
  kCas,
};

struct AccessRequest {
  MemOpKind op = MemOpKind::kRead;
  Addr addr = 0;
  unsigned size = 4;
  std::uint64_t wdata = 0;     ///< Store value / addend / CAS desired.
  std::uint64_t expected = 0;  ///< CAS expected value.
  StreamTag tag = StreamTag::kApp;
  /// Static access-site id (hash of the issuing source location); the
  /// simulator's stand-in for the program counter, used by kIls.
  std::uint32_t site = 0;

  [[nodiscard]] bool is_write() const noexcept {
    return op != MemOpKind::kRead;
  }
};

struct AccessResult {
  Cycles latency = 0;
  std::uint64_t value = 0;  ///< Loaded value (read) or old value (RMW).
  bool l1_hit = false;
  bool l2_hit = false;
  bool global = false;  ///< Transaction reached the home node.
};

class MemorySystem {
 public:
  /// `telemetry` (optional) attaches the observability layer: per-node
  /// protocol-event counters in the metrics registry and begin/end spans
  /// in the coherence trace. Null (the default) keeps every hook to a
  /// single branch.
  ///
  /// `policy_override` (optional) replaces the registry-resolved policy;
  /// the verification subsystem uses it to inject deliberately buggy
  /// policies (fault injection) without registering them.
  MemorySystem(const MachineConfig& config, AddressSpace& space,
               Stats& stats, Telemetry* telemetry = nullptr,
               std::unique_ptr<CoherencePolicy> policy_override = nullptr);
  ~MemorySystem();

  /// Executes one access atomically at simulated time `now`.
  AccessResult access(NodeId node, const AccessRequest& req, Cycles now);

  /// Trace-replay fast path: skips simulated data movement (the
  /// AddressSpace load/store per access). Values feed only the live
  /// workload's control flow and the invariant checker — never statistics
  /// — so a replayed run's results are unchanged; AccessResult::value
  /// reads as zero. Only the ReplayCompareEngine may enable this (a
  /// driving workload or attached checker requires real values).
  void enable_lean_replay() noexcept { lean_replay_ = true; }

  /// Host-cache warming hint for callers that know a node's *future*
  /// accesses (the replay engine does; a live workload cannot): pulls the
  /// simulated L1/L2 sets, directory probe slot and oracle slot that
  /// `access(node, addr, ...)` will touch into the host cache. Purely a
  /// host-side latency optimisation — no simulated state is read or
  /// written, so results are identical with or without the hint.
  void prefetch(NodeId node, Addr addr) const noexcept {
    const CacheHierarchy& ch = caches_[node];
    const Addr block = ch.l2().block_of(addr);
    ch.l1().prefetch(block);
    ch.l2().prefetch(block);
    dir_.prefetch(block);
    oracle_.prefetch(block);
  }

  /// End-of-run bookkeeping: resolves deferred false-sharing
  /// classifications for lines still resident.
  void finalize();

  [[nodiscard]] const MachineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] LoadStoreOracle& oracle() noexcept { return oracle_; }
  /// The protocol policy driving this engine's tag/grant decisions.
  [[nodiscard]] CoherencePolicy& policy() noexcept { return *policy_; }
  /// ILS's per-node predictor tables; only valid when the active policy
  /// is instruction-centric (policy().ils_predictor() != nullptr).
  [[nodiscard]] IlsPredictor& predictor() noexcept {
    return *policy_->ils_predictor();
  }
  [[nodiscard]] const CoherencePolicy& policy() const noexcept {
    return *policy_;
  }
  [[nodiscard]] const EventLog& event_log() const noexcept { return log_; }
  [[nodiscard]] FalseSharingClassifier& classifier() noexcept { return fs_; }
  /// The coherence transport (directory network or snooping bus; see
  /// net/interconnect.hpp).
  [[nodiscard]] Interconnect& interconnect() noexcept { return *net_; }
  [[nodiscard]] Directory& directory() noexcept { return dir_; }
  [[nodiscard]] const Directory& directory() const noexcept { return dir_; }
  /// The directory organisation decoding this machine's sharer words.
  [[nodiscard]] const DirectoryPolicy& directory_policy() const noexcept {
    return *dirpol_;
  }
  [[nodiscard]] CacheHierarchy& cache(NodeId node) noexcept {
    return caches_[node];
  }
  [[nodiscard]] const CacheHierarchy& cache(NodeId node) const noexcept {
    return caches_[node];
  }

  /// Attaches (or detaches, with nullptr) the protocol invariant checker
  /// (src/check/invariants.hpp). Same null-gated pattern as telemetry:
  /// detached, the per-access cost is one pointer compare. The checker
  /// must outlive this engine or be detached first.
  void attach_checker(check::InvariantChecker* checker) noexcept {
    checker_ = checker;
  }

  /// Verifies directory/cache agreement (tests): sharer maps, owner
  /// states, inclusion. Returns true when all invariants hold.
  [[nodiscard]] bool check_coherence_invariants() const;

 private:
  // One protocol "leg": a message src -> dst paying one controller
  // traversal per endpoint crossing; same-node legs cost one controller
  // pass (the request stays inside the node).
  Cycles leg(NodeId src, NodeId dst, MsgType type, Cycles t);
  // Variant whose egress controller cost is folded into the preceding
  // cache readout (owner replies); free for same-node.
  Cycles leg_noegress(NodeId src, NodeId dst, MsgType type, Cycles t);

  Cycles do_read_miss(NodeId node, Addr block, Cycles now,
                      bool predicted_exclusive, std::uint32_t site);
  Cycles do_write_global(NodeId node, Addr block, Cycles now, bool upgrade);

  void handle_l2_victim(NodeId node, const CacheLine& victim, Cycles t);
  void invalidate_cached_copy(NodeId node, Addr block);

  /// Directory entry for `block` at the start of a global transaction.
  /// Under the sparse organisation this is where the bounded population
  /// is enforced: inserting a new block into a full table first evicts a
  /// victim entry (invalidating its cached copies).
  DirEntry& dir_entry_at(Addr block, Cycles now);
  void evict_directory_entry(Addr incoming, Cycles now);

  /// Telemetry hooks (no-ops when the corresponding pillar is off).
  void count_event(NodeId node, ProtoEventKind kind) {
    if (metrics_ != nullptr) {
      metrics_->add(ev_counters_[node][static_cast<std::size_t>(kind)]);
    }
  }
  void trace_span(NodeId node, ProtoEventKind kind, Addr block,
                  Cycles begin, Cycles end) {
    if (trace_ != nullptr) {
      trace_->span(node, kind, block, begin, end);
    }
  }
  void trace_instant(NodeId node, ProtoEventKind kind, Addr block,
                     Cycles time) {
    if (trace_ != nullptr) {
      trace_->instant(node, kind, block, time);
    }
  }
  /// Ownership-latency profiling: one sample per completed coherence
  /// transaction (issue -> grant, cycles).
  void observe_latency(HistogramHandle h, Cycles latency) {
    if (metrics_ != nullptr) {
      metrics_->observe(h, latency);
    }
  }
  /// Tag-decision audit: records `entry`'s state AFTER the transition.
  /// `block`/`node` are passed explicitly (not taken from current_*)
  /// because victim writebacks audit a different block than the one the
  /// in-flight access targets.
  void audit_event(TagAuditEvent event, TagReason reason,
                   const DirEntry& entry, Addr block, NodeId node) {
    if (audit_ != nullptr) {
      audit_->record(current_time_, block, node, event, reason,
                     entry.tag_progress, entry.detag_progress, entry.tagged);
    }
  }

  void tag_event(DirEntry& entry, TagReason reason, Addr block, NodeId node);
  void detag_event(DirEntry& entry, TagReason reason, Addr block,
                   NodeId node);
  /// Applies a policy decision through the tag/de-tag machinery. `reason`
  /// is the audit reason code of the rule that produced `action`;
  /// `block`/`node` identify the audited block and the node whose access
  /// caused the decision (requester, or evicting node for replacements).
  void apply_tag_action(TagAction action, DirEntry& entry, TagReason reason,
                        Addr block, NodeId node);

  [[nodiscard]] HomeStateAtMiss classify_home_state(Addr block,
                                                    const DirEntry& e) const;

  std::uint64_t apply_data(const AccessRequest& req);
  [[nodiscard]] std::uint64_t word_mask(const AccessRequest& req) const;

  MachineConfig cfg_;
  LatencyConfig lat_;
  AddressSpace& space_;
  Stats& stats_;
  /// The pluggable protocol policy (declared before dir_: the directory's
  /// default-tagged knob asks the policy whether tagging applies at all).
  std::unique_ptr<CoherencePolicy> policy_;
  /// Cached policy_->observes_accesses() so passive policies keep the
  /// L1-hit fast path free of virtual dispatch.
  bool policy_observes_accesses_ = false;
  /// The directory organisation (full-map, limited-ptr, coarse, sparse):
  /// owns the sharer-word encoding, resolves invalidation targets.
  std::unique_ptr<DirectoryPolicy> dirpol_;
  /// Sparse organisation's entry-population bound; 0 = unbounded.
  std::uint32_t dir_entry_limit_ = 0;
  /// The coherence transport (net/interconnect.hpp): the directory
  /// network or the snooping bus, per cfg_.interconnect.
  std::unique_ptr<Interconnect> net_;
  /// Cached net_->snoops(): on a snooping transport the engine skips the
  /// directed forward/invalidate/update legs — the request broadcast
  /// already reached every cache.
  bool snoops_ = false;
  /// Cached policy_->writes_update_sharers() (Dragon write-update).
  bool update_mode_ = false;
  /// Cached ProtocolConfig::trust_update_sharers (fault injection).
  bool trust_updates_ = false;
  Directory dir_;
  std::vector<CacheHierarchy> caches_;
  FalseSharingClassifier fs_;
  LoadStoreOracle oracle_;
  EventLog log_;
  // Observability (null when disabled; see src/telemetry/).
  MetricsRegistry* metrics_ = nullptr;
  CoherenceTrace* trace_ = nullptr;
  TagAuditLog* audit_ = nullptr;
  /// Invariant checker hook (null when verification is off).
  check::InvariantChecker* checker_ = nullptr;
  /// Cached cfg_.classify_false_sharing: gates the word-mask computation
  /// and classifier hooks out of the hot path in the common (off) case.
  bool fs_enabled_ = false;
  /// L1 hits may resolve from the L1 probe alone: requires the classifier
  /// off (no accessed-word mask on the L2 line) and a direct-mapped L2
  /// (no LRU stamp) — then the per-hit L2-side bookkeeping is dead and
  /// the inclusion invariant (L1 state == L2 state) decides the access.
  bool l1_fast_hit_ = false;
  /// Set-associative L1 (its LRU stamp is live): after a global fill the
  /// fast path must still re-find and touch the L1 line.
  bool l1_lru_live_ = false;
  /// Replay fast path: skip simulated data movement (see
  /// enable_lean_replay).
  bool lean_replay_ = false;
  /// Per-node, per-kind counter handles (registered once at startup).
  std::vector<std::array<CounterHandle, kNumProtoEventKinds>> ev_counters_;
  /// Ownership-latency histograms (`ownership.latency{op=...}`), one per
  /// transaction kind; invalid handles when metrics are off.
  HistogramHandle lat_read_miss_;
  HistogramHandle lat_write_miss_;
  HistogramHandle lat_upgrade_;
  // Scratch: context of the in-flight access (for oracle/log hooks).
  StreamTag current_tag_ = StreamTag::kApp;
  Cycles current_time_ = 0;
  Addr current_block_ = 0;
  NodeId current_node_ = 0;
};

}  // namespace lssim
