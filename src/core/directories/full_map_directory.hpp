// Full-map directory organisation (DASH, paper §2): one presence bit
// per node in the entry's sharer word, exact at all times. Limited to
// kFullMapNodes (64) nodes by the word width — that limit is this
// organisation's, not the simulator's.
#pragma once

#include "core/directory_policy.hpp"

namespace lssim {

class FullMapDirectory final : public DirectoryPolicy {
 public:
  [[nodiscard]] DirectoryKind kind() const noexcept override {
    return DirectoryKind::kFullMap;
  }

  void clear_sharers(DirEntry& entry) const noexcept override {
    entry.sharers = 0;
    entry.imprecise = false;
  }

  void add_sharer(DirEntry& entry, NodeId node) const noexcept override {
    entry.add_sharer(node);
  }

  void remove_sharer(DirEntry& entry, NodeId node) const noexcept override {
    entry.remove_sharer(node);
  }

  [[nodiscard]] bool may_be_sharer(const DirEntry& entry,
                                   NodeId node) const noexcept override {
    return entry.is_sharer(node);
  }

  [[nodiscard]] bool believed_empty(
      const DirEntry& entry) const noexcept override {
    return entry.sharers == 0;
  }

  [[nodiscard]] SharerSet believed_sharers(
      const DirEntry& entry) const noexcept override {
    return SharerSet::from_bitmap(entry.sharers);
  }
};

}  // namespace lssim
