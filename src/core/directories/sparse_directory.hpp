// Sparse directory organisation (directory cache): entries exist for a
// bounded number of blocks at a time instead of one per block ever
// shared. When the population limit is hit, the engine evicts a victim
// entry — invalidating (and writing back) every cached copy of the
// victim block first, because a block without an entry must be uncached.
//
// Per-entry sharer tracking reuses the coarse bit-vector encoding with
// auto-sized regions (exact full-map bits up to 64 nodes, regions
// beyond), so the sparse organisation's distinguishing cost is entry
// evictions, not encoding imprecision.
#pragma once

#include "core/directories/coarse_vector_directory.hpp"

namespace lssim {

class SparseDirectory final : public CoarseVectorDirectory {
 public:
  /// `entries` == 0 selects the default population bound of 1024.
  SparseDirectory(std::uint32_t entries, int num_nodes) noexcept
      : CoarseVectorDirectory(0, num_nodes),
        max_entries_(entries != 0 ? entries : kDefaultEntries) {}

  [[nodiscard]] DirectoryKind kind() const noexcept override {
    return DirectoryKind::kSparse;
  }

  [[nodiscard]] std::uint32_t max_entries() const noexcept override {
    return max_entries_;
  }

  static constexpr std::uint32_t kDefaultEntries = 1024;

 private:
  std::uint32_t max_entries_;
};

}  // namespace lssim
