// Limited-pointer Dir_iB organisation (Agarwal et al., ISCA'88).
//
// The sharer word stores up to `pointers` (<= 7) real node identifiers
// instead of a presence bitmap:
//
//   bits  0..55   seven 8-bit pointer slots, slot k = bits [8k, 8k+8)
//   bits 56..58   pointer count (0..7)
//   bit  63       overflow ("B" for broadcast): more sharers appeared
//                 than pointers exist, the set is no longer tracked
//
// On overflow the entry turns imprecise and an ownership acquisition
// must broadcast invalidations to every node (minus the requester).
// Node ids fit the 8-bit slots because kMaxNodes is 256.
#pragma once

#include <cassert>

#include "core/directory_policy.hpp"

namespace lssim {

class LimitedPtrDirectory final : public DirectoryPolicy {
 public:
  LimitedPtrDirectory(int pointers, int num_nodes) noexcept
      : pointers_(pointers), num_nodes_(num_nodes) {
    assert(pointers >= 1 && pointers <= kMaxPointers);
  }

  [[nodiscard]] DirectoryKind kind() const noexcept override {
    return DirectoryKind::kLimitedPtr;
  }

  void clear_sharers(DirEntry& entry) const noexcept override {
    entry.sharers = 0;
    entry.imprecise = false;
  }

  void add_sharer(DirEntry& entry, NodeId node) const noexcept override {
    if (overflowed(entry.sharers)) {
      return;  // Broadcast already covers every node.
    }
    const int n = count(entry.sharers);
    for (int k = 0; k < n; ++k) {
      if (pointer(entry.sharers, k) == node) {
        return;
      }
    }
    if (n == pointers_) {
      entry.sharers |= kOverflowBit;
      entry.imprecise = true;
      return;
    }
    entry.sharers |= std::uint64_t{node} << (8 * n);
    entry.sharers = (entry.sharers & ~kCountMask) |
                    (std::uint64_t(n + 1) << kCountShift);
  }

  void remove_sharer(DirEntry& entry, NodeId node) const noexcept override {
    if (overflowed(entry.sharers)) {
      return;  // Identity of the departing sharer is already lost.
    }
    const int n = count(entry.sharers);
    for (int k = 0; k < n; ++k) {
      if (pointer(entry.sharers, k) != node) {
        continue;
      }
      // Compact: move the last pointer into the vacated slot.
      const std::uint64_t last = pointer(entry.sharers, n - 1);
      std::uint64_t word = entry.sharers;
      word = (word & ~(std::uint64_t{0xFF} << (8 * k))) | (last << (8 * k));
      word &= ~(std::uint64_t{0xFF} << (8 * (n - 1)));
      entry.sharers =
          (word & ~kCountMask) | (std::uint64_t(n - 1) << kCountShift);
      return;
    }
  }

  [[nodiscard]] bool may_be_sharer(const DirEntry& entry,
                                   NodeId node) const noexcept override {
    if (overflowed(entry.sharers)) {
      return node < num_nodes_;
    }
    const int n = count(entry.sharers);
    for (int k = 0; k < n; ++k) {
      if (pointer(entry.sharers, k) == node) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool believed_empty(
      const DirEntry& entry) const noexcept override {
    return entry.sharers == 0;
  }

  [[nodiscard]] SharerSet believed_sharers(
      const DirEntry& entry) const noexcept override {
    if (overflowed(entry.sharers)) {
      return SharerSet::first_n(num_nodes_);
    }
    SharerSet set;
    const int n = count(entry.sharers);
    for (int k = 0; k < n; ++k) {
      set.set(pointer(entry.sharers, k));
    }
    return set;
  }

  static constexpr int kMaxPointers = 7;

 private:
  static constexpr int kCountShift = 56;
  static constexpr std::uint64_t kCountMask = std::uint64_t{0x7}
                                              << kCountShift;
  static constexpr std::uint64_t kOverflowBit = std::uint64_t{1} << 63;

  [[nodiscard]] static bool overflowed(std::uint64_t word) noexcept {
    return (word & kOverflowBit) != 0;
  }
  [[nodiscard]] static int count(std::uint64_t word) noexcept {
    return static_cast<int>((word & kCountMask) >> kCountShift);
  }
  [[nodiscard]] static NodeId pointer(std::uint64_t word, int k) noexcept {
    return static_cast<NodeId>((word >> (8 * k)) & 0xFF);
  }

  int pointers_;
  int num_nodes_;
};

}  // namespace lssim
