// Coarse bit-vector directory organisation (Gupta et al.).
//
// Bit r of the sharer word covers the `region` consecutive nodes
// [r*region, (r+1)*region); an invalidation aimed at any node in a set
// region goes to the whole region. With region == 1 this degenerates to
// the exact full-map encoding; with region > 1 the entry turns
// imprecise the moment a sharer is recorded, and replacement hints
// cannot clear region bits (other nodes of the region may still hold
// the block), so believed sharers can outlive the last real copy.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>

#include "core/directory_policy.hpp"

namespace lssim {

class CoarseVectorDirectory : public DirectoryPolicy {
 public:
  /// `region` == 0 selects the smallest region that covers `num_nodes`
  /// with the word's 64 bits: ceil(num_nodes / 64).
  CoarseVectorDirectory(int region, int num_nodes) noexcept
      : region_(region != 0 ? region : (num_nodes + 63) / 64),
        num_nodes_(num_nodes) {
    assert(region_ >= 1 && region_ * 64 >= num_nodes);
  }

  [[nodiscard]] DirectoryKind kind() const noexcept override {
    return DirectoryKind::kCoarseVector;
  }

  void clear_sharers(DirEntry& entry) const noexcept override {
    entry.sharers = 0;
    entry.imprecise = false;
  }

  void add_sharer(DirEntry& entry, NodeId node) const noexcept override {
    entry.sharers |= std::uint64_t{1} << (node / region_);
    if (region_ > 1) {
      entry.imprecise = true;
    }
  }

  void remove_sharer(DirEntry& entry, NodeId node) const noexcept override {
    if (region_ == 1) {
      entry.sharers &= ~(std::uint64_t{1} << node);
    }
    // region > 1: the bit covers other nodes — nothing can be cleared.
  }

  [[nodiscard]] bool may_be_sharer(const DirEntry& entry,
                                   NodeId node) const noexcept override {
    return (entry.sharers >> (node / region_)) & 1u;
  }

  [[nodiscard]] bool believed_empty(
      const DirEntry& entry) const noexcept override {
    return entry.sharers == 0;
  }

  [[nodiscard]] SharerSet believed_sharers(
      const DirEntry& entry) const noexcept override {
    if (region_ == 1) {
      return SharerSet::from_bitmap(entry.sharers);
    }
    SharerSet set;
    std::uint64_t bits = entry.sharers;
    while (bits != 0) {
      const int r = std::countr_zero(bits);
      bits &= bits - 1;
      const int first = r * region_;
      const int last = std::min(first + region_, num_nodes_);
      for (int n = first; n < last; ++n) {
        set.set(static_cast<NodeId>(n));
      }
    }
    return set;
  }

 private:
  int region_;
  int num_nodes_;
};

}  // namespace lssim
