// LS policy: the paper's load-store protocol extension (§3.1). The home
// tags a block when an ownership request's source equals the LR (last
// reader) field; a write miss not preceded by the writer's own read
// de-tags it (unless the §5.5 keep heuristic is on). The LS bit lives at
// the home and survives replacements — the key robustness advantage over
// AD's cache-resident hand-off chain.
#pragma once

#include "core/coherence_policy.hpp"

namespace lssim {

class LsPolicy final : public CoherencePolicy {
 public:
  explicit LsPolicy(const ProtocolConfig& config)
      : keep_tag_on_lone_write_(config.keep_tag_on_lone_write) {}

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kLs;
  }

  /// Paper §3.1: an ownership request whose source equals the LR field
  /// tags the block; a write request not preceded by a read from the
  /// same processor de-tags it. Works for upgrades *and* for write
  /// misses after the reading copy was evicted — unlike AD.
  WriteTagDecision on_global_write(const DirEntry& entry, NodeId writer,
                                   bool upgrade) override {
    if (entry.last_reader == writer) {
      return {TagAction::kTag, false, TagReason::kLsSequence};
    }
    if (!upgrade && !keep_tag_on_lone_write_) {
      return {TagAction::kDetag, true, TagReason::kLoneWrite};
    }
    return {};
  }

 private:
  bool keep_tag_on_lone_write_;
};

}  // namespace lssim
