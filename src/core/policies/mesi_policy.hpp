// MESI (Illinois) policy: the classic four-state invalidate protocol
// expressed through the policy seam. A cold read of an uncached block
// returns an Exclusive copy (the engine's LStemp state — exclusive, not
// yet written), so the first store completes silently without a global
// ownership transaction. MESI never tags blocks: exclusivity comes from
// the directory state alone, so the §5.5 default_tagged knob does not
// apply and read-on-shared misses stay plain shared fills.
#pragma once

#include "core/coherence_policy.hpp"

namespace lssim {

class MesiPolicy final : public CoherencePolicy {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kMesi;
  }

  [[nodiscard]] bool supports_default_tagged() const noexcept override {
    return false;
  }

  /// Illinois rule: a read miss that finds no other cached copy is
  /// granted Exclusive, regardless of any tag/prediction machinery.
  [[nodiscard]] bool read_grants_exclusive(const DirEntry& entry,
                                           bool predicted) const override {
    (void)predicted;
    return entry.state == DirState::kUncached;
  }
};

}  // namespace lssim
