// Baseline policy: the DASH-like full-map write-invalidate protocol with
// no load-store optimization at all. Every hook keeps its default except
// that blocks are never tagged — reads never return exclusive copies and
// the §5.5 default_tagged knob does not apply.
#pragma once

#include "core/coherence_policy.hpp"

namespace lssim {

class BaselinePolicy final : public CoherencePolicy {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kBaseline;
  }

  [[nodiscard]] bool supports_default_tagged() const noexcept override {
    return false;
  }
};

}  // namespace lssim
