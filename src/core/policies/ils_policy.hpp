// ILS policy: instruction-centric load-exclusive prediction (Kaxiras &
// Goodman HPCA'99; Nilsson & Dahlgren ICPP'99). All policy state lives
// in the per-node predictor tables (core/ils_predictor.hpp), keyed by
// static access site; the directory's tag bit is left alone — which is
// precisely why the technique struggles on workloads whose sites touch
// both private and read-shared data.
#pragma once

#include "core/coherence_policy.hpp"
#include "core/ils_predictor.hpp"

namespace lssim {

class IlsPolicy final : public CoherencePolicy {
 public:
  explicit IlsPolicy(int num_nodes) : predictor_(num_nodes) {}

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kIls;
  }

  [[nodiscard]] bool observes_accesses() const noexcept override {
    return true;
  }

  /// Trains on stores, predicts on loads: a load from a site whose
  /// confidence passed the threshold requests an exclusive copy.
  bool observe_access(NodeId node, Addr block, std::uint32_t site,
                      bool is_write) override {
    if (is_write) {
      predictor_.on_store(node, block);
      return false;
    }
    return predictor_.on_load(node, block, site);
  }

  /// An unused grant (downgraded, invalidated or replaced before the
  /// owning write) penalises the site that predicted it.
  void on_exclusive_grant_unused(NodeId node, std::uint32_t site) override {
    predictor_.on_misprediction(node, site);
  }

  [[nodiscard]] IlsPredictor* ils_predictor() noexcept override {
    return &predictor_;
  }

 private:
  IlsPredictor predictor_;
};

}  // namespace lssim
