// LS+AD hybrid policy: the combination the paper's §6 sketches — LS
// tagging as the primary rule, with AD's migratory detection as a
// fallback for read→write pairs the LR field cannot see.
//
// Semantics (docs/PROTOCOL.md has the rationale):
//   * Tag when the LS rule fires (writer == last_reader), OR — at an
//     ownership upgrade only — when AD's migratory evidence holds
//     (exactly one other copy, belonging to a different last writer).
//     The AD fallback catches migratory chains whose read was served
//     before the home started tracking the sequence (e.g. after a
//     de-tag), where LS alone would need one more round trip to relearn.
//   * De-tag on a lone write (LS rule, §5.5 knob respected) and on an
//     upgrade invalidating several copies (AD's read-shared
//     de-detection) — the union of both protocols' negative evidence.
//   * The tag survives replacement of the owning copy: the bit is
//     home-resident, so LS's robustness wins over AD's fragile hand-off
//     chain (ad_detag_on_replacement is deliberately ignored).
#pragma once

#include "core/coherence_policy.hpp"

namespace lssim {

class LsAdHybridPolicy final : public CoherencePolicy {
 public:
  explicit LsAdHybridPolicy(const ProtocolConfig& config)
      : keep_tag_on_lone_write_(config.keep_tag_on_lone_write) {}

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kLsAd;
  }

  WriteTagDecision on_global_write(const DirEntry& entry, NodeId writer,
                                   bool upgrade) override {
    if (entry.last_reader == writer) {
      // LS evidence dominates.
      return {TagAction::kTag, false, TagReason::kLsSequence};
    }
    if (upgrade && migratory_evidence(entry, writer)) {
      return {TagAction::kTag, false, TagReason::kMigratoryFallback};
    }
    if (!upgrade && !keep_tag_on_lone_write_) {
      return {TagAction::kDetag, true, TagReason::kLoneWrite};
    }
    return {};
  }

  [[nodiscard]] TagAction on_upgrade_invalidations(
      const DirEntry& entry, int count) const override {
    (void)entry;
    return count >= 2 ? TagAction::kDetag : TagAction::kNone;
  }

 private:
  // Stenström's detection reuses CoherencePolicy::migratory_evidence —
  // decoded through the machine's directory organisation, blind on
  // imprecise entries.

  bool keep_tag_on_lone_write_;
};

}  // namespace lssim
