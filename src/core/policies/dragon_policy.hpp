// Dragon policy: the classic write-update protocol. Writes to a block
// with remote copies push the new data to them (update transactions)
// instead of invalidating; the writer becomes the Owned supplier and the
// remote copies stay alive as plain sharers. Because those copies
// survive, *every* subsequent write while sharers exist is another
// global update — the traffic Dragon trades for eliminating the
// re-read misses an invalidate protocol would cause. Cold reads come
// back Exclusive (Dragon's Exclusive-clean state), so private data
// still writes locally.
#pragma once

#include "core/coherence_policy.hpp"

namespace lssim {

class DragonPolicy final : public CoherencePolicy {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kDragon;
  }

  [[nodiscard]] bool supports_default_tagged() const noexcept override {
    return false;
  }

  /// Exclusive-clean on cold reads, as in MESI.
  [[nodiscard]] bool read_grants_exclusive(const DirEntry& entry,
                                           bool predicted) const override {
    (void)predicted;
    return entry.state == DirState::kUncached;
  }

  /// Dirty read misses are serviced cache-to-cache by the owner
  /// (Dragon's Shared-Modified), exactly like MOESI's Owned.
  [[nodiscard]] DirtyReadResolution on_dirty_read(
      const DirEntry& entry) const override {
    (void)entry;
    return DirtyReadResolution::kOwnerKeeps;
  }

  /// The defining Dragon choice: update, don't invalidate.
  [[nodiscard]] bool writes_update_sharers() const noexcept override {
    return true;
  }
};

}  // namespace lssim
