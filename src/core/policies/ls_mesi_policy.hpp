// LS+MESI policy: the paper's load-store tagging (§3.1) composed over a
// MESI base. Reads return Exclusive copies when the block is tagged OR
// uncached (the Illinois cold-read rule), so load-store sequences on
// shared data are optimised by the LS bit while private data keeps
// MESI's silent first store. Tag rules are exactly LsPolicy's.
#pragma once

#include "core/coherence_policy.hpp"

namespace lssim {

class LsMesiPolicy final : public CoherencePolicy {
 public:
  explicit LsMesiPolicy(const ProtocolConfig& config)
      : keep_tag_on_lone_write_(config.keep_tag_on_lone_write) {}

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kLsMesi;
  }

  /// LS bit (or requester-side prediction) as usual, plus the Illinois
  /// cold-read rule.
  [[nodiscard]] bool read_grants_exclusive(const DirEntry& entry,
                                           bool predicted) const override {
    return entry.tagged || predicted || entry.state == DirState::kUncached;
  }

  /// Paper §3.1 tag rules, as in LsPolicy.
  WriteTagDecision on_global_write(const DirEntry& entry, NodeId writer,
                                   bool upgrade) override {
    if (entry.last_reader == writer) {
      return {TagAction::kTag, false, TagReason::kLsSequence};
    }
    if (!upgrade && !keep_tag_on_lone_write_) {
      return {TagAction::kDetag, true, TagReason::kLoneWrite};
    }
    return {};
  }

 private:
  bool keep_tag_on_lone_write_;
};

}  // namespace lssim
