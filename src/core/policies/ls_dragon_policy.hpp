// LS+Dragon policy: the paper's load-store tagging (§3.1) composed over
// Dragon write-update. Untagged blocks follow Dragon — writes update the
// surviving remote copies and the writer supplies the block from Owned.
// A tagged block instead migrates exclusively on the next read (the
// engine purges every other copy), so detected load-store sequences
// escape the repeated per-write update transactions that pure Dragon
// pays on migratory data. De-tag evidence under updates is the same
// §3.1 rule set: foreign accesses hitting an unwritten exclusive copy,
// and lone writes.
#pragma once

#include "core/coherence_policy.hpp"

namespace lssim {

class LsDragonPolicy final : public CoherencePolicy {
 public:
  explicit LsDragonPolicy(const ProtocolConfig& config)
      : keep_tag_on_lone_write_(config.keep_tag_on_lone_write) {}

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kLsDragon;
  }

  /// LS bit (or prediction) plus Dragon's Exclusive-clean cold reads.
  [[nodiscard]] bool read_grants_exclusive(const DirEntry& entry,
                                           bool predicted) const override {
    return entry.tagged || predicted || entry.state == DirState::kUncached;
  }

  /// Paper §3.1 tag rules, as in LsPolicy.
  WriteTagDecision on_global_write(const DirEntry& entry, NodeId writer,
                                   bool upgrade) override {
    if (entry.last_reader == writer) {
      return {TagAction::kTag, false, TagReason::kLsSequence};
    }
    if (!upgrade && !keep_tag_on_lone_write_) {
      return {TagAction::kDetag, true, TagReason::kLoneWrite};
    }
    return {};
  }

  [[nodiscard]] DirtyReadResolution on_dirty_read(
      const DirEntry& entry) const override {
    (void)entry;
    return DirtyReadResolution::kOwnerKeeps;
  }

  [[nodiscard]] bool writes_update_sharers() const noexcept override {
    return true;
  }

 private:
  bool keep_tag_on_lone_write_;
};

}  // namespace lssim
