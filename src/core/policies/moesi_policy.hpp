// MOESI policy: MESI plus an Owned state. A read miss that finds the
// block dirty in a remote cache is serviced cache-to-cache: the owner
// keeps its (stale-at-home) copy in Owned and supplies the data in a
// 3-hop transfer, skipping the baseline's 4-hop writeback-through-home
// sequence. Writes still invalidate every other copy.
#pragma once

#include "core/coherence_policy.hpp"

namespace lssim {

class MoesiPolicy final : public CoherencePolicy {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kMoesi;
  }

  [[nodiscard]] bool supports_default_tagged() const noexcept override {
    return false;
  }

  /// Illinois rule, as in MESI: cold reads come back Exclusive.
  [[nodiscard]] bool read_grants_exclusive(const DirEntry& entry,
                                           bool predicted) const override {
    (void)predicted;
    return entry.state == DirState::kUncached;
  }

  /// The O of MOESI: the dirty owner services the miss and keeps the
  /// block; home memory stays stale until the Owned copy is evicted.
  [[nodiscard]] DirtyReadResolution on_dirty_read(
      const DirEntry& entry) const override {
    (void)entry;
    return DirtyReadResolution::kOwnerKeeps;
  }
};

}  // namespace lssim
