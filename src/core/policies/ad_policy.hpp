// AD policy: adaptive migratory-sharing detection (Stenström, Brorsson &
// Sandberg, ISCA'93) expressed as CoherencePolicy hooks. Detection and
// de-detection rules only; the shared transaction engine does the rest.
#pragma once

#include "core/coherence_policy.hpp"

namespace lssim {

class AdPolicy final : public CoherencePolicy {
 public:
  explicit AdPolicy(const ProtocolConfig& config)
      : detag_on_replacement_(config.ad_detag_on_replacement) {}

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kAd;
  }

  /// Migratory detection: at an ownership acquisition (write hit on a
  /// Shared copy), exactly one other copy exists and it belongs to the
  /// last writer. Write *misses* carry no read-then-write evidence and
  /// do not detect; an imprecise sharer set (Dir_iB pointer overflow,
  /// coarse regions) blinds the detector.
  WriteTagDecision on_global_write(const DirEntry& entry, NodeId writer,
                                   bool upgrade) override {
    if (upgrade && migratory_evidence(entry, writer)) {
      return {TagAction::kTag, false, TagReason::kMigratoryDetect};
    }
    return {};
  }

  /// De-detection: a write invalidating several copies is evidence the
  /// block is read-shared, not migratory.
  [[nodiscard]] TagAction on_upgrade_invalidations(
      const DirEntry& entry, int count) const override {
    (void)entry;
    return count >= 2 ? TagAction::kDetag : TagAction::kNone;
  }

  /// The migratory property tracks an *unbroken* hand-off chain: once
  /// the owning copy is replaced the evidence is gone and the block
  /// reverts to ordinary (the fragility the LS paper's §3.1 exploits).
  [[nodiscard]] TagAction on_victim_writeback(
      const DirEntry& entry, CacheState victim_state) const override {
    (void)entry;
    if (detag_on_replacement_ && victim_state != CacheState::kShared) {
      return TagAction::kDetag;
    }
    return TagAction::kNone;
  }

 private:
  bool detag_on_replacement_;
};

}  // namespace lssim
