#include "core/directory_registry.hpp"

#include <cassert>

#include "core/directories/coarse_vector_directory.hpp"
#include "core/directories/full_map_directory.hpp"
#include "core/directories/limited_ptr_directory.hpp"
#include "core/directories/sparse_directory.hpp"

namespace lssim {
namespace {

std::unique_ptr<DirectoryPolicy> make_full_map(const MachineConfig&) {
  return std::make_unique<FullMapDirectory>();
}

std::unique_ptr<DirectoryPolicy> make_limited_ptr(
    const MachineConfig& config) {
  return std::make_unique<LimitedPtrDirectory>(config.directory_pointers,
                                               config.num_nodes);
}

std::unique_ptr<DirectoryPolicy> make_coarse(const MachineConfig& config) {
  return std::make_unique<CoarseVectorDirectory>(config.directory_region,
                                                 config.num_nodes);
}

std::unique_ptr<DirectoryPolicy> make_sparse(const MachineConfig& config) {
  return std::make_unique<SparseDirectory>(config.directory_entries,
                                           config.num_nodes);
}

// THE registration site: one row per organisation, in DirectoryKind
// order. Names come from the shared table in sim/config.hpp so that
// parsing (directory_from_name) and printing (directory_name) stay in
// lock-step.
const DirectoryInfo kRegistry[kNumDirectoryKinds] = {
    {DirectoryKind::kFullMap, directory_name(DirectoryKind::kFullMap),
     "exact presence bitmap, one bit per node (<= 64 nodes)",
     &make_full_map},
    {DirectoryKind::kLimitedPtr, directory_name(DirectoryKind::kLimitedPtr),
     "Dir_iB limited pointers (--dir-pointers), broadcast on overflow",
     &make_limited_ptr},
    {DirectoryKind::kCoarseVector,
     directory_name(DirectoryKind::kCoarseVector),
     "coarse bit-vector, one bit per --dir-region consecutive nodes",
     &make_coarse},
    {DirectoryKind::kSparse, directory_name(DirectoryKind::kSparse),
     "directory cache bounded to --dir-entries entries, evictions "
     "force invalidations",
     &make_sparse},
};

}  // namespace

std::span<const DirectoryInfo> registered_directories() { return kRegistry; }

const DirectoryInfo& directory_info(DirectoryKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  assert(index < std::size(kRegistry) && kRegistry[index].kind == kind);
  return kRegistry[index];
}

const DirectoryInfo* find_directory(std::string_view name) {
  DirectoryKind kind;
  if (!directory_from_name(name, &kind)) {
    return nullptr;
  }
  return &directory_info(kind);
}

std::string registered_directory_names(const char* separator) {
  std::string names;
  for (const DirectoryInfo& info : kRegistry) {
    if (!names.empty()) {
      names += separator;
    }
    names += info.name;
  }
  return names;
}

std::vector<DirectoryKind> all_directory_kinds() {
  std::vector<DirectoryKind> kinds;
  kinds.reserve(std::size(kRegistry));
  for (const DirectoryInfo& info : kRegistry) {
    kinds.push_back(info.kind);
  }
  return kinds;
}

std::unique_ptr<DirectoryPolicy> make_directory_policy(
    const MachineConfig& config) {
  return directory_info(config.directory_scheme).make(config);
}

}  // namespace lssim
